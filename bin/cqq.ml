(* cqq — client for the cqserved daemon.

   One request line per connection over the daemon's Unix-domain
   socket; see bin/cqserved.ml for the protocol.

   Exit codes: 0 success (for [submit --wait]: the job completed), 1
   the awaited job failed, 2 the submission was rejected or the job
   was shed, 3 the daemon is unreachable or replied with an error,
   5 internal error. *)

let connect_timeout = 5.0

let die_unreachable socket_path why =
  Printf.eprintf "cqq: cannot reach daemon at %s: %s\n" socket_path why;
  exit 3

(* A round trip that failed before a reply arrived. [transient] marks
   the failures a restarting daemon produces — connection refused (the
   listener is down), a missing socket file (not recreated yet), or a
   connection torn down mid-request — which a bounded retry can ride
   out. Everything else (permissions, reply timeout) is immediately
   fatal. *)
exception Unreachable of { why : string; transient : bool }

let unreachable err =
  let transient =
    match err with
    | Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET | Unix.EPIPE -> true
    | _ -> false
  in
  raise (Unreachable { why = Unix.error_message err; transient })

(* One round trip: connect, send the line, read the reply line. The fd
   is closed on every path; failures raise {!Unreachable}. *)
let request_once socket_path line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
      | () -> ()
      | exception Unix.Unix_error (err, _, _) -> unreachable err);
      let payload = Bytes.of_string (line ^ "\n") in
      let n = Bytes.length payload in
      let rec send off =
        if off < n then
          match Unix.write fd payload off (n - off) with
          | written -> send (off + written)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> send off
          | exception Unix.Unix_error (err, _, _) -> unreachable err
      in
      send 0;
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 1024 in
      let deadline = Unix.gettimeofday () +. connect_timeout in
      let timed_out () =
        raise (Unreachable { why = "reply timed out"; transient = false })
      in
      let rec recv () =
        let wait = deadline -. Unix.gettimeofday () in
        if wait <= 0.0 then timed_out ()
        else
          match Unix.select [ fd ] [] [] wait with
          | [], _, _ -> timed_out ()
          | _ -> begin
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> Buffer.contents buf
              | n -> begin
                  match Bytes.index_opt (Bytes.sub chunk 0 n) '\n' with
                  | Some i ->
                      Buffer.add_subbytes buf chunk 0 i;
                      Buffer.contents buf
                  | None ->
                      Buffer.add_subbytes buf chunk 0 n;
                      recv ()
                end
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
              | exception Unix.Unix_error (err, _, _) -> unreachable err
            end
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
      in
      recv ())

(* Retry policy for transient unreachability: the daemon's supervisor
   restarts it after a crash, so a refused connection is usually a
   window of a few hundred milliseconds. Delays follow the same
   doubling schedule as Guard.retrying, scaled by a deterministic
   xorshift draw from [1/2, 1) — same stream as Guard.jitter_stream —
   and sleep through Budget.Clock.sleep so tests can intercept the
   waiting. Disabled by --no-retry. *)
let retry_attempts = 5
let retry_backoff = 0.1

let jitter_stream seed =
  let state = ref ((seed + 1) * 0x2545F4914F6CDD1 land max_int) in
  if !state = 0 then state := 0x2545F4914F6CDD1;
  fun () ->
    let s = !state in
    let s = s lxor (s lsl 13) land max_int in
    let s = s lxor (s lsr 7) in
    let s = s lxor (s lsl 17) land max_int in
    state := s;
    0.5 +. (0.5 *. (float_of_int (s land 0xFFFFF) /. float_of_int 0x100000))

let retrying = ref true

let request socket_path line =
  let draw = jitter_stream 0x5eed in
  let rec attempt k =
    match request_once socket_path line with
    | reply -> reply
    | exception Unreachable { why; transient } ->
        if (not transient) || (not !retrying) || k >= retry_attempts then
          die_unreachable socket_path why
        else begin
          Budget.Clock.sleep
            (retry_backoff *. (2.0 ** float_of_int k) *. draw ());
          attempt (k + 1)
        end
  in
  attempt 0

(* Replies are "OK ...", "REJECT <code> <why>", "UNKNOWN <id>",
   "ERR <why>". *)
let split_reply reply =
  match String.index_opt reply ' ' with
  | None -> (reply, "")
  | Some i ->
      (String.sub reply 0 i, String.sub reply (i + 1) (String.length reply - i - 1))

let exit_of_reply reply =
  let tag, rest = split_reply reply in
  match tag with
  | "OK" | "UNKNOWN" ->
      print_endline (if rest = "" then reply else rest);
      if tag = "OK" then 0 else 3
  | "REJECT" ->
      Printf.eprintf "cqq: rejected: %s\n" rest;
      2
  | _ ->
      Printf.eprintf "cqq: daemon error: %s\n" rest;
      3

(* Poll the job to a terminal state. The interval backs off to spare
   the daemon; total patience is the caller's (ctrl-C). *)
let wait_for socket_path id =
  let rec go interval =
    let reply = request socket_path ("STATUS " ^ id) in
    let tag, rest = split_reply reply in
    if tag <> "OK" then begin
      Printf.eprintf "cqq: daemon error: %s\n" reply;
      3
    end
    else if String.length rest >= 5 && String.sub rest 0 5 = "done:" then begin
      print_endline rest;
      0
    end
    else if String.length rest >= 7 && String.sub rest 0 7 = "failed:" then begin
      Printf.eprintf "cqq: %s: %s\n" id rest;
      1
    end
    else if String.length rest >= 5 && String.sub rest 0 5 = "shed:" then begin
      Printf.eprintf "cqq: %s: %s\n" id rest;
      2
    end
    else begin
      Unix.sleepf interval;
      go (Float.min 0.5 (interval *. 1.5))
    end
  in
  go 0.02

(* --- CLI -------------------------------------------------------------- *)

open Cmdliner

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "s"; "socket" ] ~docv:"PATH" ~doc:"The daemon's socket path.")

let no_retry_arg =
  Arg.(
    value & flag
    & info [ "no-retry" ]
        ~doc:
          "Fail immediately when the daemon is unreachable instead of \
           retrying transient connection failures (refused, reset, \
           missing socket) with backoff while it restarts.")

let setup_retry no_retry = retrying := not no_retry

let duration_of_string s0 =
  let s = String.trim s0 in
  let bad () =
    Error
      (`Msg
        (Printf.sprintf "bad duration %S (expected e.g. 250ms, 2s, or plain seconds)" s0))
  in
  let ends_with suffix =
    let ls = String.length s and lx = String.length suffix in
    ls > lx && String.sub s (ls - lx) lx = suffix
  in
  let scaled scale suffix =
    let num = String.sub s 0 (String.length s - String.length suffix) in
    match float_of_string_opt (String.trim num) with
    | Some f when f >= 0.0 -> Ok (f *. scale)
    | _ -> bad ()
  in
  if s = "" then bad ()
  else if ends_with "us" then scaled 1e-6 "us"
  else if ends_with "ms" then scaled 1e-3 "ms"
  else if ends_with "s" then scaled 1.0 "s"
  else
    match float_of_string_opt s with
    | Some f when f >= 0.0 -> Ok f
    | _ -> bad ()

let duration_conv =
  Arg.conv (duration_of_string, fun fmt secs -> Format.fprintf fmt "%gs" secs)

let kind_arg =
  Arg.(
    value & opt string "sep"
    & info [ "k"; "kind" ] ~docv:"KIND"
        ~doc:"Job kind: sep, ladder, generate, or selftest.")

let lang_arg =
  Arg.(
    value & opt string "cq"
    & info [ "l"; "lang" ] ~docv:"LANG"
        ~doc:"Feature language (cqsep syntax: cq, cq[m], ghw(k), ...).")

let db_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "db" ] ~docv:"PATH" ~doc:"Training database (textfmt).")

let dim_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "d"; "dim" ] ~docv:"N" ~doc:"Bound the statistic dimension.")

let ghw_depth_arg =
  Arg.(
    value & opt int 2
    & info [ "ghw-depth" ] ~docv:"N"
        ~doc:"Unraveling depth for GHW generation (default 2).")

let spin_arg =
  Arg.(
    value & opt int 1000
    & info [ "spin" ] ~docv:"N" ~doc:"Selftest busy-work ticks (default 1000).")

let timeout_arg =
  Arg.(
    value
    & opt (some duration_conv) None
    & info [ "timeout" ] ~docv:"DURATION" ~doc:"Per-job budget wall clock.")

let fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"N" ~doc:"Per-job budget ticks.")

let deadline_arg =
  Arg.(
    value
    & opt (some duration_conv) None
    & info [ "deadline" ] ~docv:"DURATION"
        ~doc:
          "Admission deadline, relative: the job is shed (never run) if \
           it cannot finish by then.")

let wait_arg =
  Arg.(
    value & flag
    & info [ "wait" ] ~doc:"Poll until the job reaches a terminal state.")

let id_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"JOB-ID")

let spec_of ~kind ~lang ~db ~dim ~ghw_depth ~spin ~timeout ~fuel =
  let job_kind =
    match kind with
    | "sep" -> Ok (Job.Sep { lang; dim })
    | "ladder" -> Ok Job.Ladder
    | "generate" -> Ok (Job.Generate { lang; ghw_depth; dim })
    | "selftest" -> Ok (Job.Selftest { spin })
    | other -> Error ("unknown job kind: " ^ other)
  in
  match job_kind with
  | Error _ as e -> e
  | Ok k ->
      Ok
        {
          Job.kind = k;
          db_path = (match db with Some p -> p | None -> "");
          timeout;
          fuel;
        }

let submit_cmd =
  let run socket no_retry kind lang db dim ghw_depth spin timeout fuel deadline
      wait =
    setup_retry no_retry;
    match spec_of ~kind ~lang ~db ~dim ~ghw_depth ~spin ~timeout ~fuel with
    | Error msg ->
        Printf.eprintf "cqq: %s\n" msg;
        2
    | Ok spec -> begin
        match Job.validate spec with
        | Error msg ->
            Printf.eprintf "cqq: invalid job: %s\n" msg;
            2
        | Ok () ->
            let line =
              match deadline with
              | None -> "SUBMIT " ^ Job.spec_to_wire spec
              | Some r ->
                  Printf.sprintf "SUBMIT deadline=%g %s" r
                    (Job.spec_to_wire spec)
            in
            let reply = request socket line in
            let tag, rest = split_reply reply in
            if tag = "OK" && wait then wait_for socket rest
            else exit_of_reply reply
      end
  in
  Cmd.v
    (Cmd.info "submit" ~doc:"Submit a job; prints its id (or waits with --wait).")
    Term.(
      const run $ socket_arg $ no_retry_arg $ kind_arg $ lang_arg $ db_arg
      $ dim_arg $ ghw_depth_arg $ spin_arg $ timeout_arg $ fuel_arg
      $ deadline_arg $ wait_arg)

let status_cmd =
  let run socket no_retry id =
    setup_retry no_retry;
    exit_of_reply (request socket ("STATUS " ^ id))
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Print a job's state.")
    Term.(const run $ socket_arg $ no_retry_arg $ id_arg)

let simple_cmd name ~doc line =
  let run socket no_retry =
    setup_retry no_retry;
    exit_of_reply (request socket line)
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ socket_arg $ no_retry_arg)

let stats_cmd = simple_cmd "stats" ~doc:"Print service counters." "STATS"
let list_cmd = simple_cmd "list" ~doc:"List all known job ids." "LIST"
let ping_cmd = simple_cmd "ping" ~doc:"Check the daemon is alive." "PING"

(* --- serving-tier subcommands ---------------------------------------- *)

let model_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "model" ] ~docv:"PATH" ~doc:"Model file to publish (Model_io format).")

let classify_db_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "db" ] ~docv:"PATH"
        ~doc:"Database file (textfmt), as a path visible to the daemon.")

let entities_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "e"; "entities" ] ~docv:"A,B,C"
        ~doc:"Comma-separated entity names (default: all entities).")

let classify_cmd =
  let run socket no_retry db entities =
    setup_retry no_retry;
    let fields =
      Printf.sprintf "db=%s" (Job.enc_value db)
      ^
      match entities with
      | None -> ""
      | Some names -> Printf.sprintf " entities=%s" (Job.enc_value names)
    in
    let reply = request socket ("CLASSIFY " ^ fields) in
    let tag, rest = split_reply reply in
    if tag <> "OK" then exit_of_reply reply
    else begin
      (* "v<N> hits=H cold=C +a -b ..." — verdict tokens to stdout,
         one entity per line, names decoded; the header to stderr. *)
      match String.split_on_char ' ' rest with
      | header :: counters :: rest' ->
          let verdicts =
            List.filter (fun t -> t <> "" && (t.[0] = '+' || t.[0] = '-'))
              (counters :: rest')
          in
          Printf.eprintf "cqq: classified %d entities under %s\n"
            (List.length verdicts) header;
          List.iter
            (fun t ->
              let name =
                String.sub t 1 (String.length t - 1) |> Job.dec_value
              in
              Printf.printf "%c%s\n" t.[0] name)
            verdicts;
          0
      | _ ->
          Printf.eprintf "cqq: malformed reply: %s\n" reply;
          3
    end
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:
         "Classify entities of a database with the daemon's current \
          model; prints one [+name]/[-name] line per entity.")
    Term.(
      const run $ socket_arg $ no_retry_arg $ classify_db_arg $ entities_arg)

let publish_cmd =
  let run socket no_retry model =
    setup_retry no_retry;
    exit_of_reply
      (request socket
         (Printf.sprintf "PUBLISH model=%s" (Job.enc_value model)))
  in
  Cmd.v
    (Cmd.info "publish"
       ~doc:
         "Publish a model file as a new version and make it the \
          serving current; prints the version.")
    Term.(const run $ socket_arg $ no_retry_arg $ model_arg)

let models_cmd =
  simple_cmd "models" ~doc:"List published model versions and the current."
    "MODELS"

let rollback_cmd =
  simple_cmd "rollback"
    ~doc:"Repoint the serving model at the previous version." "ROLLBACK"

let drain_cmd =
  let run socket no_retry =
    setup_retry no_retry;
    exit_of_reply (request socket "DRAIN")
  in
  Cmd.v
    (Cmd.info "drain"
       ~doc:
         "Ask the daemon to drain: finish admitted jobs, accept nothing \
          new, exit when idle.")
    Term.(const run $ socket_arg $ no_retry_arg)

let () =
  let doc = "client for the cqserved solver job daemon" in
  let main =
    Cmd.group
      (Cmd.info "cqq" ~version:"1.0.0" ~doc)
      [
        submit_cmd;
        status_cmd;
        stats_cmd;
        list_cmd;
        drain_cmd;
        ping_cmd;
        classify_cmd;
        publish_cmd;
        models_cmd;
        rollback_cmd;
      ]
  in
  let code =
    try Cmd.eval' ~catch:false main
    with e ->
      Printf.eprintf "cqq: internal error: %s\n" (Printexc.to_string e);
      5
  in
  exit code
