(* cqsep — command-line interface to the separability library.

   Databases are given in the text format of {!Textfmt}:
     R(a, b)      facts
     +a  -b  ?c   positive / negative / unlabeled entities

   Subcommands: info, sep, generate, classify.

   Exit codes: 0 separable, 1 not separable, 2 degraded answer
   (a weaker rung of the fallback ladder answered), 3 budget
   exhausted, 4 input or solver error, 5 internal error (an
   unexpected exception; CQSEP_DEBUG=1 re-raises it with a
   backtrace), 6 an uncertified numeric linear-separation verdict was
   detected under --cert-stats (should be unreachable: the numeric
   tier escalates to the exact solver instead of answering
   uncertified; 6 is the tripwire that keeps it honest). *)

let read_training path =
  Textfmt.training_of_document (Textfmt.parse_file path)

let read_db path = (Textfmt.parse_file path).Textfmt.db

(* Parse and IO errors (malformed databases/models, unreadable files)
   exit 4 with the message on stderr. Nothing broader: catching, say,
   all Invalid_argument here would report internal bugs as user
   errors. Solver-raised Invalid_argument still exits 4, via
   [guarded]'s Guard.run -> Solver_error conversion. *)
let with_input f =
  try f () with
  | Textfmt.Parse_error msg ->
      Printf.eprintf "cqsep: %s\n" msg;
      exit 4
  | Model_io.Parse_error msg ->
      Printf.eprintf "cqsep: %s\n" msg;
      exit 4
  | Sys_error msg ->
      Printf.eprintf "cqsep: %s\n" msg;
      exit 4

let exit_of_failure = function
  | Guard.Timeout | Guard.Fuel_exhausted _ | Guard.Limit_exceeded _ -> 3
  | Guard.Solver_error _ -> 4

let fail_with failure =
  Printf.eprintf "cqsep: %s\n" (Guard.failure_to_string failure);
  exit (exit_of_failure failure)

(* --- argument converters -------------------------------------------- *)

let lang_of_string s =
  match Language.of_string s with Ok l -> Ok l | Error msg -> Error (`Msg msg)

let lang_conv =
  let printer fmt l = Language.pp fmt l in
  Cmdliner.Arg.conv (lang_of_string, printer)

let rat_of_string s =
  try
    match String.split_on_char '/' (String.trim s) with
    | [ n ] -> Ok (Rat.of_int (int_of_string n))
    | [ n; d ] -> Ok (Rat.of_ints (int_of_string n) (int_of_string d))
    | _ -> Error (`Msg "expected a rational like 1/4")
  with _ -> Error (`Msg "expected a rational like 1/4")

let rat_conv = Cmdliner.Arg.conv (rat_of_string, fun fmt r -> Rat.pp fmt r)

(* Durations: "500us", "250ms", "2s", or a plain number of seconds. *)
let duration_of_string s0 =
  let s = String.trim s0 in
  let bad () =
    Error
      (`Msg
        (Printf.sprintf
           "bad duration %S (expected e.g. 500us, 250ms, 2s, or plain \
            seconds)"
           s0))
  in
  let ends_with suffix =
    let ls = String.length s and lx = String.length suffix in
    ls > lx && String.sub s (ls - lx) lx = suffix
  in
  let scaled scale suffix =
    let num = String.sub s 0 (String.length s - String.length suffix) in
    match float_of_string_opt (String.trim num) with
    | Some f when f >= 0.0 -> Ok (f *. scale)
    | _ -> bad ()
  in
  if s = "" then bad ()
  else if ends_with "us" then scaled 1e-6 "us"
  else if ends_with "ms" then scaled 1e-3 "ms"
  else if ends_with "s" then scaled 1.0 "s"
  else
    match float_of_string_opt s with
    | Some f when f >= 0.0 -> Ok f
    | _ -> bad ()

let duration_conv =
  Cmdliner.Arg.conv
    (duration_of_string, fun fmt secs -> Format.fprintf fmt "%gs" secs)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Log decisions of the core library.")

let lang_arg =
  Arg.(
    value
    & opt lang_conv (Language.Cq_atoms { m = 2; p = None })
    & info [ "l"; "lang" ] ~docv:"LANG"
        ~doc:
          "Feature language: cq, cq[m], cq[m,p], ghw(k), fo, foK (e.g. \
           fo2) or epfo (default cq[2]).")

let dim_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "d"; "dim" ] ~docv:"N"
        ~doc:"Bound the statistic dimension (L-Sep[N]).")

let eps_arg =
  Arg.(
    value
    & opt (some rat_conv) None
    & info [ "e"; "eps" ] ~docv:"EPS"
        ~doc:"Allowed misclassified fraction, e.g. 1/4 (L-ApxSep).")

let depth_arg =
  Arg.(
    value & opt int 2
    & info [ "ghw-depth" ] ~docv:"N"
        ~doc:"Unraveling depth for GHW feature generation (default 2).")

let timeout_arg =
  Arg.(
    value
    & opt (some duration_conv) None
    & info [ "timeout" ] ~docv:"DURATION"
        ~doc:
          "Wall-clock budget, e.g. 500us, 250ms, 2s, or plain seconds. \
           When exceeded the answer degrades (sep) or the command exits \
           3.")

let fuel_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "fuel must be >= 1 (got %d)" n))
    | None -> Error (`Msg (Printf.sprintf "%S is not an integer" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let fuel_arg =
  Arg.(
    value
    & opt (some fuel_conv) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:
          "Abstract solver-step budget. When exhausted the answer \
           degrades (sep) or the command exits 3.")

let no_degrade_arg =
  Arg.(
    value & flag
    & info [ "no-degrade" ]
        ~doc:
          "Disable the graceful-degradation ladder: on budget \
           exhaustion exit 3 instead of retrying with weaker feature \
           languages.")

(* [budget_of] is [None] when no limit was requested ([guarded] then
   runs under [Budget.unlimited], whose ticks stay on the fast path);
   the ladder dispatch below keys on the option. *)
let budget_of ~timeout ~fuel =
  match (timeout, fuel) with
  | None, None -> None
  | _ -> Some (Budget.make ?timeout ?fuel ())

let isolate_arg =
  Arg.(
    value & flag
    & info [ "isolate" ]
        ~doc:
          "Run each solver call in a forked worker process with a hard \
           SIGKILL past the deadline: survives non-cooperative loops, \
           stack overflow and out-of-memory, at a fork+marshal cost per \
           call.")

let grace_arg =
  Arg.(
    value
    & opt duration_conv 1.0
    & info [ "grace" ] ~docv:"DURATION"
        ~doc:
          "With --isolate: extra wall-clock allowance past the deadline \
           before the worker is killed (default 1s).")

let retry_arg =
  Arg.(
    value & opt int 0
    & info [ "retry" ] ~docv:"N"
        ~doc:
          "Re-run a budget-exhausted solver call up to N more times, \
           escalating fuel and timeout by --retry-factor each attempt. \
           Solver errors are never retried.")

let retry_factor_arg =
  Arg.(
    value & opt float 4.0
    & info [ "retry-factor" ] ~docv:"F"
        ~doc:"Budget escalation factor between retry attempts (default 4).")

(* The execution strategy: in-process Guard.run or a forked worker,
   optionally wrapped in the budget-escalating retry policy. *)
let runner_of ~isolate ~grace ~retry ~retry_factor =
  if retry < 0 then begin
    Printf.eprintf "cqsep: --retry must be >= 0\n";
    exit 4
  end;
  if retry_factor < 1.0 then begin
    Printf.eprintf "cqsep: --retry-factor must be >= 1\n";
    exit 4
  end;
  let base = if isolate then Isolate.runner ~grace () else Guard.runner in
  if retry = 0 then base
  else
    Guard.retrying ~attempts:(retry + 1) ~factor:retry_factor
      ~extend_deadline:true base

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Fan the CQ[m] candidate space out over N shards dispatched \
           to fault-tolerant fork workers (the Shardexec engine): \
           killed workers are requeued with escalating budgets, \
           repeat offenders are bisected until the poison unit is \
           isolated, and stragglers are raced against a speculative \
           duplicate. Answers are byte-identical to the sequential \
           path. 1 (the default) disables sharding.")

let sharding_of ~shards =
  if shards < 1 then begin
    Printf.eprintf "cqsep: --shards must be >= 1\n";
    exit 4
  end;
  if shards > 1 then Some (Shardexec.plan ~shards ()) else None

(* --- numeric-tier controls ------------------------------------------- *)

let numeric_arg =
  Arg.(
    value & flag
    & info [ "numeric" ]
        ~doc:
          "Decide linear separations with the float-first tier (CG \
           logistic fit, then float simplex), certifying every answer \
           in exact arithmetic and escalating to the exact simplex \
           when certification fails. This is the default; the flag \
           exists to state it explicitly and to conflict with \
           --exact-only.")

let exact_only_arg =
  Arg.(
    value & flag
    & info [ "exact-only" ]
        ~doc:
          "Skip the float tier entirely: every linear separation runs \
           on the exact rational simplex. Slower, bit-for-bit the \
           reference behaviour.")

let cert_stats_arg =
  Arg.(
    value & flag
    & info [ "cert-stats" ]
        ~doc:
          "After answering, report linear-separation certification \
           counters on stderr (certified per solver, escalations, \
           uncertified). Exits 6 if any verdict was left uncertified \
           — which the escalation ladder is designed to make \
           impossible.")

let set_tier ~numeric ~exact_only =
  if numeric && exact_only then begin
    Printf.eprintf "cqsep: --numeric and --exact-only are mutually exclusive\n";
    exit 4
  end;
  Nsep.set_tier (if exact_only then Nsep.Exact_only else Nsep.Numeric)

let report_cert_stats () =
  let s = Nsep.stats () in
  Printf.eprintf
    "cqsep: linsep decisions %d: cg-certified %d, simplex-certified %d, \
     precheck %d, exact %d (escalations %d), uncertified %d\n"
    s.Nsep.decided s.Nsep.certified_cg s.Nsep.certified_simplex
    s.Nsep.certified_precheck s.Nsep.exact_solves s.Nsep.escalations
    s.Nsep.uncertified

(* Exit with [code], first honoring --cert-stats: print the counters
   and turn any uncertified verdict into the dedicated exit 6. *)
let finish ~cert_stats code =
  if cert_stats then begin
    report_cert_stats ();
    if (Nsep.stats ()).Nsep.uncertified > 0 then exit 6
  end;
  exit code

(* Run [f] through the runner under the optional budget, exiting 3/4
   on failure. Even without a budget the run goes through the runner:
   that is what routes solver-raised Invalid_argument to exit 4 and
   honors --isolate for unbudgeted calls. *)
let guarded runner budget f =
  let b = match budget with Some b -> b | None -> Budget.unlimited in
  match runner.Guard.run b f with
  | Ok v -> v
  | Error failure -> fail_with failure

let train_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRAIN" ~doc:"Training database file.")

(* --- subcommands ------------------------------------------------------ *)

let info_cmd =
  let run path =
    with_input @@ fun () ->
    let doc = Textfmt.parse_file path in
    let db = doc.Textfmt.db in
    Printf.printf "facts:     %d\n" (Db.size db);
    Printf.printf "domain:    %d\n" (Db.domain_size db);
    Printf.printf "entities:  %d (%d labeled)\n"
      (List.length (Db.entities db))
      (Labeling.cardinal doc.Textfmt.labeling);
    Printf.printf "max arity: %d\n" (Db.max_arity db);
    print_endline "relations:";
    List.iter
      (fun (r, ar) ->
        Printf.printf "  %s/%d: %d facts\n" r ar
          (List.length (Db.facts_of_rel r db)))
      (List.sort compare (Db.relations db))
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Describe a database file.")
    Term.(const run $ train_arg)

let sep_cmd =
  let run path lang dim eps timeout fuel no_degrade isolate grace retry
      retry_factor shards numeric exact_only cert_stats verbose =
    with_input @@ fun () ->
    setup_logs verbose;
    set_tier ~numeric ~exact_only;
    let t = read_training path in
    let budget = budget_of ~timeout ~fuel in
    let runner = runner_of ~isolate ~grace ~retry ~retry_factor in
    let sharding = sharding_of ~shards in
    let describe =
      Printf.sprintf "%s%s%s" (Language.to_string lang)
        (match dim with Some d -> Printf.sprintf " dim<=%d" d | None -> "")
        (match eps with
        | Some e -> Printf.sprintf " eps=%s" (Rat.to_string e)
        | None -> "")
    in
    match (budget, dim, eps, (lang : Language.t)) with
    | Some _, None, None, (Language.Cq_all | Language.Epfo) ->
        (* The graceful-degradation ladder: exact CQ-Sep, then CQ[m]
           with decreasing m, then approximate separability with
           reported slack. *)
        let result =
          Cq_sep.decide_with_fallback ?budget ~degrade:(not no_degrade)
            ~runner ?sharding t
        in
        begin
          match (result.Cq_sep.answer, result.Cq_sep.provenance) with
          | Some answer, Cq_sep.Exact ->
              Printf.printf "%s-separable: %b\n" describe answer;
              finish ~cert_stats (if answer then 0 else 1)
          | Some answer, provenance ->
              Printf.printf "%s-separable: %b (%s)\n" describe answer
                (Format.asprintf "%a" Cq_sep.pp_provenance provenance);
              finish ~cert_stats 2
          | None, Cq_sep.Gave_up failure -> fail_with failure
          | None, _ -> assert false
        end
    | _ ->
        (* Outside the ladder, sharding applies wherever a per-feature
           candidate space exists: the plain CQ[m] decision and the
           dimension-bounded one (whose CQ[m] branch fans out; other
           languages fall back to the sequential path under the same
           budget). *)
        let answer =
          match (sharding, eps, dim, (lang : Language.t)) with
          | Some plan, None, None, Language.Cq_atoms { m; p } -> begin
              match
                Atoms_sep.separable_sharded ~sharding:plan ?budget ~m ?p t
              with
              | Ok answer -> answer
              | Error failure -> fail_with failure
            end
          | Some plan, None, Some d, _ -> begin
              match
                Dim_sep.separable_sharded ~sharding:plan ?budget ~dim:d lang t
              with
              | Ok answer -> answer
              | Error failure -> fail_with failure
            end
          | _ ->
              guarded runner budget (fun () ->
                  match eps with
                  | None -> Cqfeat.separable ?dim lang t
                  | Some eps -> Cqfeat.apx_separable ?dim ~eps lang t)
        in
        Printf.printf "%s-separable: %b\n" describe answer;
        finish ~cert_stats (if answer then 0 else 1)
  in
  Cmd.v
    (Cmd.info "sep"
       ~doc:"Decide separability of a labeled training database.")
    Term.(
      const run $ train_arg $ lang_arg $ dim_arg $ eps_arg $ timeout_arg
      $ fuel_arg $ no_degrade_arg $ isolate_arg $ grace_arg $ retry_arg
      $ retry_factor_arg $ shards_arg $ numeric_arg $ exact_only_arg
      $ cert_stats_arg $ verbose_arg)

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Also save the generated model to FILE (see the apply command).")

let generate_cmd =
  let run path lang depth dim timeout fuel isolate grace retry retry_factor
      numeric exact_only out =
    with_input @@ fun () ->
    set_tier ~numeric ~exact_only;
    let t = read_training path in
    let budget = budget_of ~timeout ~fuel in
    let runner = runner_of ~isolate ~grace ~retry ~retry_factor in
    match
      guarded runner budget (fun () ->
          Cqfeat.generate ~ghw_depth:depth ?dim lang t)
    with
    | None ->
        print_endline "not separable: no statistic exists";
        exit 1
    | Some (stat, classifier) ->
        (match out with
        | Some file -> Model_io.save file (Model_io.make stat classifier)
        | None -> ());
        Printf.printf "# statistic with %d features\n"
          (Statistic.dimension stat);
        List.iteri
          (fun i q -> Printf.printf "q%d: %s\n" (i + 1) (Cq.to_string q))
          stat;
        Printf.printf "# classifier: Lambda(b) = 1 iff sum w_i b_i >= w0\n";
        Printf.printf "w0: %s\n" (Rat.to_string classifier.Linsep.threshold);
        Array.iteri
          (fun i w -> Printf.printf "w%d: %s\n" (i + 1) (Rat.to_string w))
          classifier.Linsep.weights;
        Printf.printf "# training errors: %d\n"
          (Statistic.errors stat classifier t)
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Generate a separating statistic and linear classifier.")
    Term.(
      const run $ train_arg $ lang_arg $ depth_arg $ dim_arg $ timeout_arg
      $ fuel_arg $ isolate_arg $ grace_arg $ retry_arg $ retry_factor_arg
      $ numeric_arg $ exact_only_arg $ out_arg)

let apply_cmd =
  let model_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"MODEL" ~doc:"Model file saved by generate --out.")
  in
  let db_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"DB" ~doc:"Database whose entities to label.")
  in
  let run model_path db_path =
    with_input @@ fun () ->
    let model = Model_io.load model_path in
    let db = read_db db_path in
    List.iter
      (fun (e, l) ->
        Printf.printf "%s%s\n"
          (match l with Labeling.Pos -> "+" | Labeling.Neg -> "-")
          (Elem.to_string e))
      (Labeling.bindings (Model_io.apply model db))
  in
  Cmd.v
    (Cmd.info "apply"
       ~doc:"Label a database with a previously saved model (no retraining).")
    Term.(const run $ model_arg $ db_arg)

let mindim_cmd =
  let max_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max" ] ~docv:"N" ~doc:"Search dimensions up to N.")
  in
  let run path lang max_dim timeout fuel isolate grace retry retry_factor =
    with_input @@ fun () ->
    let t = read_training path in
    let budget = budget_of ~timeout ~fuel in
    let runner = runner_of ~isolate ~grace ~retry ~retry_factor in
    match
      guarded runner budget (fun () -> Cqfeat.min_dimension ?max_dim lang t)
    with
    | Some d ->
        Printf.printf "minimum %s dimension: %d\n" (Language.to_string lang) d
    | None ->
        print_endline "not separable within the dimension bound";
        exit 1
  in
  Cmd.v
    (Cmd.info "mindim"
       ~doc:"Find the least statistic dimension that separates.")
    Term.(
      const run $ train_arg $ lang_arg $ max_arg $ timeout_arg $ fuel_arg
      $ isolate_arg $ grace_arg $ retry_arg $ retry_factor_arg)

let classify_cmd =
  let eval_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"EVAL" ~doc:"Evaluation database file.")
  in
  let run train_path eval_path lang dim eps timeout fuel isolate grace retry
      retry_factor numeric exact_only cert_stats verbose =
    with_input @@ fun () ->
    setup_logs verbose;
    set_tier ~numeric ~exact_only;
    let t = read_training train_path in
    let eval_db = read_db eval_path in
    let budget = budget_of ~timeout ~fuel in
    let runner = runner_of ~isolate ~grace ~retry ~retry_factor in
    let b = match budget with Some b -> b | None -> Budget.unlimited in
    (* Through the budgeted [_b] entry points, inside the runner: the
       runner supplies --isolate/--retry (as in sep), the [_b] layer
       turns exhaustion and solver errors into structured failures
       either way — [Ok (Error f)] is a failure the worker caught,
       [Error f] one the runner did (e.g. an isolate crash). *)
    let result =
      runner.Guard.run b (fun () ->
          match eps with
          | None -> Cqfeat.classify_b ?dim lang t eval_db
          | Some eps ->
              Result.map fst (Cqfeat.apx_classify_b ~eps lang t eval_db))
    in
    let labeling =
      match result with
      | Ok (Ok labeling) -> labeling
      | Ok (Error failure) | Error failure -> fail_with failure
    in
    List.iter
      (fun (e, l) ->
        Printf.printf "%s%s\n"
          (match l with Labeling.Pos -> "+" | Labeling.Neg -> "-")
          (Elem.to_string e))
      (Labeling.bindings labeling);
    finish ~cert_stats 0
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:
         "Label the entities of an evaluation database consistently with \
          a separating statistic for the training database.")
    Term.(
      const run $ train_arg $ eval_arg $ lang_arg $ dim_arg $ eps_arg
      $ timeout_arg $ fuel_arg $ isolate_arg $ grace_arg $ retry_arg
      $ retry_factor_arg $ numeric_arg $ exact_only_arg $ cert_stats_arg
      $ verbose_arg)

let dot_cmd =
  let k_arg =
    Arg.(
      value & opt int 1
      & info [ "k" ] ~docv:"K" ~doc:"Width bound of the cover game.")
  in
  let run path k =
    with_input @@ fun () ->
    let t = read_training path in
    let ch = Ghw_sep.chain ~k t in
    let labels =
      match Preorder_chain.consistent_labels ch t.Labeling.labeling with
      | Ok labels -> Some labels
      | Error _ -> None
    in
    print_string (Preorder_chain.to_dot ?labels ch)
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:
         "Render the ->_k equivalence-class DAG of a training database \
          in Graphviz format (the structure behind Lemma 5.4 and \
          Algorithm 1).")
    Term.(const run $ train_arg $ k_arg)

let () =
  let doc =
    "separability, feature generation and classification with regularized \
     conjunctive features (PODS'19)"
  in
  let main =
    Cmd.group
      (Cmd.info "cqsep" ~version:"1.0.0" ~doc)
      [
        info_cmd;
        sep_cmd;
        generate_cmd;
        classify_cmd;
        mindim_cmd;
        apply_cmd;
        dot_cmd;
      ]
  in
  (* Cmdliner reports command-line parse errors as 124; fold them
     into the documented input-error code. Unexpected exceptions are
     internal bugs, not user errors: exit 5 with a pointer to
     CQSEP_DEBUG=1, which re-raises them so the runtime prints a full
     backtrace. *)
  let debug =
    match Sys.getenv_opt "CQSEP_DEBUG" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true
  in
  let code =
    if debug then begin
      Printexc.record_backtrace true;
      Cmd.eval ~catch:false main
    end
    else
      try Cmd.eval ~catch:false main
      with e ->
        Printf.eprintf
          "cqsep: internal error: %s (set CQSEP_DEBUG=1 for a backtrace)\n"
          (Printexc.to_string e);
        5
  in
  exit (if code = 124 then 4 else code)
