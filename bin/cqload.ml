(* cqload — closed-loop load generator for cqserved's serving tier.

   Forks N worker processes, each hammering CLASSIFY requests over the
   daemon's Unix-domain socket for a fixed duration (one connection
   per request, like any other client), then aggregates: accepted /
   rejected / error counts, classifications per second, and latency
   quantiles of the *accepted* requests — the number that must stay
   bounded while the daemon sheds overload.

   Rejects are data here, not failures: a REJECT overload line is the
   daemon degrading as designed, and is counted separately from
   errors (daemon unreachable, ERR replies).

   Exit codes: 0 some requests were accepted, 3 none were, 5 internal
   error. *)

let reply_timeout = 5.0

(* One CLASSIFY round trip; returns the raw reply line. Raises
   [Failure] on connection or timeout problems. *)
let request_once socket_path line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
      | () -> ()
      | exception Unix.Unix_error (err, _, _) ->
          failwith (Unix.error_message err));
      let payload = Bytes.of_string (line ^ "\n") in
      let n = Bytes.length payload in
      let rec send off =
        if off < n then
          match Unix.write fd payload off (n - off) with
          | written -> send (off + written)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> send off
          | exception Unix.Unix_error (err, _, _) ->
              failwith (Unix.error_message err)
      in
      send 0;
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 1024 in
      let deadline = Unix.gettimeofday () +. reply_timeout in
      let rec recv () =
        let wait = deadline -. Unix.gettimeofday () in
        if wait <= 0.0 then failwith "reply timed out"
        else
          match Unix.select [ fd ] [] [] wait with
          | [], _, _ -> failwith "reply timed out"
          | _ -> begin
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> Buffer.contents buf
              | n -> begin
                  match Bytes.index_opt (Bytes.sub chunk 0 n) '\n' with
                  | Some i ->
                      Buffer.add_subbytes buf chunk 0 i;
                      Buffer.contents buf
                  | None ->
                      Buffer.add_subbytes buf chunk 0 n;
                      recv ()
                end
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
              | exception Unix.Unix_error (err, _, _) ->
                  failwith (Unix.error_message err)
            end
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
      in
      recv ())

(* Entities per accepted reply, from the "hits=H cold=C" counters. *)
let entities_of_reply rest =
  let value_of prefix tok =
    let lp = String.length prefix in
    if String.length tok > lp && String.sub tok 0 lp = prefix then
      int_of_string_opt (String.sub tok lp (String.length tok - lp))
    else None
  in
  List.fold_left
    (fun acc tok ->
      match (value_of "hits=" tok, value_of "cold=" tok) with
      | Some h, _ -> acc + h
      | _, Some c -> acc + c
      | None, None -> acc)
    0
    (String.split_on_char ' ' rest)

type tally = {
  mutable accepted : int;
  mutable entities : int;
  mutable rejected : int;
  mutable errors : int;
  mutable latencies : int list;  (* ns, accepted requests only *)
}

let worker_loop socket_path line ~deadline out =
  let t = { accepted = 0; entities = 0; rejected = 0; errors = 0; latencies = [] } in
  while Unix.gettimeofday () < deadline do
    let t0 = Unix.gettimeofday () in
    (match request_once socket_path line with
    | reply ->
        let ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
        let tag =
          match String.index_opt reply ' ' with
          | None -> reply
          | Some i -> String.sub reply 0 i
        in
        if tag = "OK" then begin
          t.accepted <- t.accepted + 1;
          t.entities <- t.entities + entities_of_reply reply;
          t.latencies <- ns :: t.latencies
        end
        else if tag = "REJECT" then t.rejected <- t.rejected + 1
        else t.errors <- t.errors + 1
    | exception Failure _ ->
        t.errors <- t.errors + 1;
        (* Brief pause so an unreachable daemon is not probed in a
           hot spin. *)
        (try Unix.sleepf 0.01 with Unix.Unix_error _ -> ()))
  done;
  Printf.fprintf out "T %d %d %d %d\n" t.accepted t.entities t.rejected
    t.errors;
  List.iter (fun ns -> Printf.fprintf out "L %d\n" ns) t.latencies;
  flush out

let quantile sorted p =
  match Array.length sorted with
  | 0 -> 0
  | n -> sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let run socket db entities workers duration json =
  let line =
    "CLASSIFY db=" ^ Job.enc_value db
    ^
    match entities with
    | None -> ""
    | Some names -> " entities=" ^ Job.enc_value names
  in
  let deadline = Unix.gettimeofday () +. duration in
  let spawn () =
    let r, w = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
        Unix.close r;
        let code =
          try
            let out = Unix.out_channel_of_descr w in
            Fun.protect
              ~finally:(fun () -> close_out_noerr out)
              (fun () -> worker_loop socket line ~deadline out);
            0
          with _ -> 5
        in
        exit code
    | pid ->
        Unix.close w;
        (pid, r)
  in
  let children = List.init workers (fun _ -> spawn ()) in
  let accepted = ref 0 and entities_n = ref 0 in
  let rejected = ref 0 and errors = ref 0 in
  let latencies = ref [] in
  List.iter
    (fun (pid, r) ->
      let ic = Unix.in_channel_of_descr r in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try
            while true do
              let line = input_line ic in
              match String.split_on_char ' ' line with
              | [ "T"; a; n; rj; e ] ->
                  accepted := !accepted + int_of_string a;
                  entities_n := !entities_n + int_of_string n;
                  rejected := !rejected + int_of_string rj;
                  errors := !errors + int_of_string e
              | [ "L"; ns ] -> latencies := int_of_string ns :: !latencies
              | _ -> ()
            done
          with End_of_file -> ());
      ignore (Unix.waitpid [] pid))
    children;
  let sorted = Array.of_list !latencies in
  Array.sort compare sorted;
  let cps = float_of_int !entities_n /. duration in
  let p50 = quantile sorted 0.50
  and p95 = quantile sorted 0.95
  and p99 = quantile sorted 0.99 in
  if json then
    Printf.printf
      "{\"workers\": %d, \"duration_s\": %g, \"accepted\": %d, \
       \"entities\": %d, \"rejected\": %d, \"errors\": %d, \
       \"classifications_per_sec\": %.1f, \"p50_ns\": %d, \"p95_ns\": %d, \
       \"p99_ns\": %d}\n"
      workers duration !accepted !entities_n !rejected !errors cps p50 p95 p99
  else begin
    Printf.printf "cqload: %d workers for %gs against %s\n" workers duration
      socket;
    Printf.printf "requests: %d accepted, %d rejected, %d errors\n" !accepted
      !rejected !errors;
    Printf.printf "classifications/sec: %.1f\n" cps;
    Printf.printf "latency of accepted: p50 %.3fms p95 %.3fms p99 %.3fms\n"
      (float_of_int p50 /. 1e6)
      (float_of_int p95 /. 1e6)
      (float_of_int p99 /. 1e6)
  end;
  if !accepted > 0 then 0 else 3

(* --- CLI -------------------------------------------------------------- *)

open Cmdliner

let duration_of_string s0 =
  let s = String.trim s0 in
  let bad () =
    Error
      (`Msg
        (Printf.sprintf "bad duration %S (expected e.g. 250ms, 2s, or plain seconds)" s0))
  in
  let ends_with suffix =
    let ls = String.length s and lx = String.length suffix in
    ls > lx && String.sub s (ls - lx) lx = suffix
  in
  let scaled scale suffix =
    let num = String.sub s 0 (String.length s - String.length suffix) in
    match float_of_string_opt (String.trim num) with
    | Some f when f >= 0.0 -> Ok (f *. scale)
    | _ -> bad ()
  in
  if s = "" then bad ()
  else if ends_with "us" then scaled 1e-6 "us"
  else if ends_with "ms" then scaled 1e-3 "ms"
  else if ends_with "s" then scaled 1.0 "s"
  else
    match float_of_string_opt s with
    | Some f when f >= 0.0 -> Ok f
    | _ -> bad ()

let duration_conv =
  Arg.conv (duration_of_string, fun fmt secs -> Format.fprintf fmt "%gs" secs)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "s"; "socket" ] ~docv:"PATH" ~doc:"The daemon's socket path.")

let db_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "db" ] ~docv:"PATH"
        ~doc:"Database file (textfmt), as a path visible to the daemon.")

let entities_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "e"; "entities" ] ~docv:"A,B,C"
        ~doc:"Comma-separated entity names (default: all entities).")

let workers_arg =
  Arg.(
    value & opt int 4
    & info [ "workers" ] ~docv:"N"
        ~doc:"Concurrent closed-loop client processes (default 4).")

let duration_arg =
  Arg.(
    value
    & opt duration_conv 2.0
    & info [ "duration" ] ~docv:"DURATION"
        ~doc:"How long to sustain the load (default 2s).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit one flat JSON object instead of prose.")

let () =
  let doc = "closed-loop load generator for cqserved's CLASSIFY path" in
  let cmd =
    Cmd.v
      (Cmd.info "cqload" ~version:"1.0.0" ~doc)
      Term.(
        const run $ socket_arg $ db_arg $ entities_arg $ workers_arg
        $ duration_arg $ json_arg)
  in
  let code =
    try Cmd.eval' ~catch:false cmd
    with e ->
      Printf.eprintf "cqload: internal error: %s\n" (Printexc.to_string e);
      5
  in
  exit code
