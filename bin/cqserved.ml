(* cqserved — the crash-safe solver job daemon.

   A single-threaded select loop over one Unix-domain listening socket
   and the worker pool's result pipes, multiplexing the {!Service}
   engine: admissions journal to the WAL before they are acknowledged,
   jobs run in supervised {!Isolate} workers, SIGTERM drains (finish
   admitted work, accept nothing new) and SIGKILL loses nothing that
   was acknowledged — on restart the WAL replays.

   Protocol: one request line per connection, one reply line back.
     SUBMIT [deadline=REL] key=value...   -> OK <id> | REJECT <code> <why>
     STATUS <id>                          -> OK <state> | UNKNOWN <id>
     STATS                                -> OK queued=... running=... ...
     LIST                                 -> OK <id> <id> ...
     DRAIN                                -> OK draining
     PING                                 -> OK pong
   With --models DIR the serving tier is enabled and adds:
     CLASSIFY db=PATH [entities=A,B,..]   -> OK v<N> hits=H cold=C +a -b ..
                                           | REJECT <code> <why> | ERR <why>
     PUBLISH model=PATH                   -> OK v<N> | REJECT invalid <why>
     MODELS                               -> OK current=v<N> versions=v1,v2..
     ROLLBACK                             -> OK v<N> | REJECT invalid <why>
   Anything else                          -> ERR <why>
   The spec key=value syntax is {!Job.spec_of_wire}'s (values
   percent-escaped); [deadline] is relative seconds from receipt;
   CLASSIFY replies list verdicts in request order, [+e] positive,
   [-e] negative, entity names percent-escaped.

   Exit codes: 0 clean shutdown (drained), 1 startup error (socket or
   WAL unusable, stale daemon already running), 5 internal error. *)

let log fmt = Printf.eprintf (fmt ^^ "\n%!")

(* --- one-line socket I/O ------------------------------------------- *)

let max_line = 65536
let client_io_timeout = 5.0

(* Read up to a newline, bounded in bytes and wall clock — a stalled or
   malicious client must not wedge the daemon. *)
let read_request fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let deadline = Budget.Clock.now () +. client_io_timeout in
  let rec go () =
    if Buffer.length buf > max_line then Error "request line too long"
    else begin
      let wait = deadline -. Budget.Clock.now () in
      if wait <= 0.0 then Error "client timed out"
      else
        match Unix.select [ fd ] [] [] wait with
        | [], _, _ -> Error "client timed out"
        | _, _, _ -> begin
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 ->
                if Buffer.length buf = 0 then Error "empty request"
                else Ok (Buffer.contents buf)
            | n -> begin
                match Bytes.index_opt (Bytes.sub chunk 0 n) '\n' with
                | Some i ->
                    Buffer.add_subbytes buf chunk 0 i;
                    Ok (Buffer.contents buf)
                | None ->
                    Buffer.add_subbytes buf chunk 0 n;
                    go ()
              end
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          end
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    end
  in
  go ()

let write_reply fd line =
  let s = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length s in
  let rec go off =
    if off < n then
      match Unix.write fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (Unix.EPIPE, _, _) -> ()
  in
  go 0

(* --- request handling ----------------------------------------------- *)

let split_command line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let handle_submit svc rest =
  let submit deadline spec_line =
    match Job.spec_of_wire spec_line with
    | Error msg -> "REJECT invalid " ^ msg
    | Ok spec -> begin
        match Service.submit svc ?deadline spec with
        | Ok id -> "OK " ^ id
        | Error reject ->
            Printf.sprintf "REJECT %s %s" (Jobq.reject_code reject)
              (Jobq.reject_to_string reject)
      end
  in
  let prefix = "deadline=" in
  let tok, rest' = split_command rest in
  if
    String.length tok > String.length prefix
    && String.sub tok 0 (String.length prefix) = prefix
  then begin
    let v = String.sub tok (String.length prefix)
        (String.length tok - String.length prefix)
    in
    match float_of_string_opt v with
    | Some r when r >= 0.0 -> submit (Some (Budget.Clock.now () +. r)) rest'
    | _ -> "REJECT invalid bad deadline: " ^ v
  end
  else submit None rest

(* --- serving-tier requests ------------------------------------------- *)

(* [key=value] fields of a serving request, values percent-escaped
   with the same codec the job wire format uses. *)
let parse_fields rest =
  let toks =
    List.filter (fun t -> t <> "") (String.split_on_char ' ' rest)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | tok :: toks -> (
        match String.index_opt tok '=' with
        | None -> Error (Printf.sprintf "expected key=value, got %S" tok)
        | Some i -> (
            let k = String.sub tok 0 i in
            let v = String.sub tok (i + 1) (String.length tok - i - 1) in
            match Job.dec_value v with
            | v -> go ((k, v) :: acc) toks
            | exception Failure _ ->
                Error (Printf.sprintf "bad percent escape in %s" k)))
  in
  go [] toks

let reject_reply reject =
  Printf.sprintf "REJECT %s %s" (Jobq.reject_code reject)
    (Jobq.reject_to_string reject)

let handle_classify sv rest =
  match parse_fields rest with
  | Error why -> "REJECT invalid " ^ why
  | Ok fields -> (
      match List.assoc_opt "db" fields with
      | None -> "REJECT invalid CLASSIFY needs db=PATH"
      | Some path -> (
          match Serve.load_db sv path with
          | Error why -> "ERR " ^ why
          | Ok (db_key, db) -> (
              let all = Db.entities db in
              let requested =
                match List.assoc_opt "entities" fields with
                | None -> Ok all
                | Some names ->
                    let names =
                      List.filter
                        (fun s -> s <> "")
                        (String.split_on_char ',' names)
                    in
                    let by_name =
                      List.map (fun e -> (Elem.to_string e, e)) all
                    in
                    let rec resolve acc = function
                      | [] -> Ok (List.rev acc)
                      | n :: ns -> (
                          match List.assoc_opt n by_name with
                          | Some e -> resolve (e :: acc) ns
                          | None ->
                              Error
                                (Printf.sprintf "unknown entity %S in %s" n
                                   path))
                    in
                    resolve [] names
              in
              match requested with
              | Error why -> "REJECT invalid " ^ why
              | Ok entities -> (
                  match Serve.classify sv ~db_key ~db entities with
                  | Serve.Shed reject -> reject_reply reject
                  | Serve.Failed f -> "ERR eval: " ^ Guard.failure_to_string f
                  | Serve.Served s ->
                      let verdicts =
                        List.map
                          (fun (e, lab) ->
                            let sign =
                              match lab with
                              | Labeling.Pos -> "+"
                              | Labeling.Neg -> "-"
                            in
                            sign ^ Job.enc_value (Elem.to_string e))
                          s.Serve.sv_results
                      in
                      String.concat " "
                        (Printf.sprintf "OK v%d hits=%d cold=%d"
                           s.Serve.sv_version s.Serve.sv_hits s.Serve.sv_cold
                        :: verdicts)))))

let handle_publish sv rest =
  match parse_fields rest with
  | Error why -> "REJECT invalid " ^ why
  | Ok fields -> (
      match List.assoc_opt "model" fields with
      | None -> "REJECT invalid PUBLISH needs model=PATH"
      | Some path -> (
          match Model_io.load path with
          | exception Model_io.Parse_error why ->
              "REJECT invalid model file rejected: " ^ why
          | exception Sys_error why -> "ERR " ^ why
          | m -> (
              match Serve.publish sv m with
              | v -> Printf.sprintf "OK v%d" v
              | exception Sys_error why -> "ERR publish failed: " ^ why
              | exception Unix.Unix_error (e, _, _) ->
                  "ERR publish failed: " ^ Unix.error_message e)))

let handle_models sv =
  let current, versions = Serve.models sv in
  let cur =
    match current with Some v -> Printf.sprintf "v%d" v | None -> "none"
  in
  Printf.sprintf "OK current=%s versions=%s" cur
    (String.concat "," (List.map (Printf.sprintf "v%d") versions))

let handle_rollback sv =
  match Serve.rollback sv with
  | Ok v -> Printf.sprintf "OK v%d" v
  | Error why -> "REJECT invalid " ^ why
  | exception Sys_error why -> "ERR rollback failed: " ^ why
  | exception Unix.Unix_error (e, _, _) ->
      "ERR rollback failed: " ^ Unix.error_message e

let serve_stats sv =
  let s = Serve.stats sv in
  let cur =
    match s.Serve.st_version with
    | Some v -> Printf.sprintf "v%d" v
    | None -> "none"
  in
  Printf.sprintf
    " model=%s eval_batches=%d eval_entities=%d eval_hits=%d eval_cold=%d \
     eval_shed_overload=%d eval_shed_breaker=%d eval_failures=%d publishes=%d \
     rollbacks=%d"
    cur s.Serve.st_served_batches s.Serve.st_served_entities
    s.Serve.st_cache.Eval_cache.hits s.Serve.st_cold_evals
    s.Serve.st_shed_overload s.Serve.st_shed_breaker s.Serve.st_eval_failures
    s.Serve.st_publishes s.Serve.st_rollbacks

let with_serving serve_opt k =
  match serve_opt with
  | Some sv -> k sv
  | None -> "ERR serving disabled (start cqserved with --models DIR)"

let handle_request svc ~serve_opt ~request_drain line =
  let cmd, rest = split_command (String.trim line) in
  match cmd with
  | "PING" -> "OK pong"
  | "SUBMIT" -> handle_submit svc rest
  | "STATUS" -> begin
      if rest = "" then "ERR STATUS needs a job id"
      else
        match Service.status svc rest with
        | Some st -> "OK " ^ Service.state_to_string st
        | None -> "UNKNOWN " ^ rest
    end
  | "STATS" ->
      let s = Service.stats svc in
      Printf.sprintf
        "OK queued=%d running=%d done=%d failed=%d shed=%d draining=%b%s"
        s.Service.queued s.Service.running s.Service.done_ s.Service.failed
        s.Service.shed s.Service.draining
        (match serve_opt with Some sv -> serve_stats sv | None -> "")
  | "LIST" -> "OK " ^ String.concat " " (Service.job_ids svc)
  | "CLASSIFY" -> with_serving serve_opt (fun sv -> handle_classify sv rest)
  | "PUBLISH" -> with_serving serve_opt (fun sv -> handle_publish sv rest)
  | "MODELS" -> with_serving serve_opt handle_models
  | "ROLLBACK" -> with_serving serve_opt handle_rollback
  | "DRAIN" ->
      request_drain ();
      "OK draining"
  | "" -> "ERR empty request"
  | other -> "ERR unknown command: " ^ other

let serve_client svc ~serve_opt ~request_drain fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match read_request fd with
      | Error why -> write_reply fd ("ERR " ^ why)
      | Ok line ->
          write_reply fd (handle_request svc ~serve_opt ~request_drain line))

(* --- socket lifecycle ----------------------------------------------- *)

(* Unix-domain socket paths are capped (108 bytes on Linux) — fail
   early with a clear message rather than a confusing bind error. *)
let check_socket_path path =
  if String.length path > 100 then begin
    log "cqserved: socket path too long (%d bytes, max 100): %s"
      (String.length path) path;
    exit 1
  end

(* A stale socket file from a SIGKILLed daemon must not block restart;
   a live daemon must. A bare connect is not enough of a probe: an
   orphaned worker that inherited the old daemon's listening fd still
   accepts connections into a queue nobody drains. Demand an actual
   PING reply within a short deadline; silence means stale. *)
let claim_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      Fun.protect
        ~finally:(fun () -> try Unix.close probe with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect probe (Unix.ADDR_UNIX path) with
          | exception Unix.Unix_error _ -> false
          | () -> begin
              match write_reply probe "PING" with
              | exception Unix.Unix_error _ -> false
              | () -> begin
                  match Unix.select [ probe ] [] [] 1.0 with
                  | [], _, _ -> false
                  | _ -> begin
                      match Unix.read probe (Bytes.create 16) 0 16 with
                      | 0 -> false
                      | _ -> true
                      | exception Unix.Unix_error _ -> false
                    end
                  | exception Unix.Unix_error _ -> false
                end
            end)
    in
    if live then begin
      log "cqserved: another daemon is already listening on %s" path;
      exit 1
    end
    else (try Unix.unlink path with Unix.Unix_error _ -> ())
  end

let listen_on path =
  check_socket_path path;
  claim_socket path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64
  with
  | () -> fd
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      log "cqserved: cannot listen on %s: %s" path (Unix.error_message err);
      exit 1

(* --- the event loop -------------------------------------------------- *)

let stop_requested = ref false

let serve cfg ~socket_path ~models_dir ~serve_cfg =
  let svc =
    match Service.start cfg with
    | svc -> svc
    | exception Unix.Unix_error (err, _, _) ->
        log "cqserved: cannot open WAL %s: %s" cfg.Service.wal_path
          (Unix.error_message err);
        exit 1
  in
  let serve_opt =
    match models_dir with
    | None -> None
    | Some dir -> (
        match Model_store.open_ ~dir with
        | store ->
            let sv = Serve.create ~config:serve_cfg store in
            log "cqserved: serving models from %s (%d versions, current %s)"
              dir
              (List.length (Model_store.list store))
              (match Model_store.current_version store with
              | Some v -> Printf.sprintf "v%d" v
              | None -> "none");
            Some sv
        | exception Unix.Unix_error (err, _, _) ->
            log "cqserved: cannot open model store %s: %s" dir
              (Unix.error_message err);
            exit 1)
  in
  let listen_fd = listen_on socket_path in
  (* Workers must not hold the listener open past a daemon crash. *)
  Isolate.at_fork_child (fun () ->
      try Unix.close listen_fd with Unix.Unix_error _ -> ());
  let rec_ = Service.recovery svc in
  log
    "cqserved: listening on %s (wal %s: %d events replayed, %d completed \
     kept, %d requeued, %d shed, %d damaged bytes dropped)"
    socket_path cfg.Service.wal_path rec_.Service.replayed_events
    rec_.Service.recovered_completed rec_.Service.requeued
    rec_.Service.shed_on_recovery rec_.Service.dropped_bytes;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let on_stop _ = stop_requested := true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_stop);
  let draining = ref false in
  let request_drain () =
    if not !draining then begin
      draining := true;
      Service.drain svc;
      log "cqserved: draining"
    end
  in
  let rec loop () =
    if !stop_requested then request_drain ();
    let kill_hint = Service.step svc in
    if !draining && Service.idle svc then ()
    else begin
      let now = Budget.Clock.now () in
      (* Short cap so signal flags and kill deadlines are honored
         promptly even when nothing is readable. *)
      let timeout =
        match kill_hint with
        | Some d -> Float.max 0.0 (Float.min 0.5 (d -. now))
        | None -> 0.5
      in
      let fds = listen_fd :: Service.wait_fds svc in
      (match Unix.select fds [] [] timeout with
      | ready, _, _ ->
          if List.mem listen_fd ready then begin
            match Unix.accept listen_fd with
            | fd, _ -> serve_client svc ~serve_opt ~request_drain fd
            | exception Unix.Unix_error (_, _, _) -> ()
          end
          (* Worker pipes that woke us are pumped by the next step. *)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  Service.close svc;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  log "cqserved: drained, bye";
  0

(* --- CLI -------------------------------------------------------------- *)

open Cmdliner

let duration_of_string s0 =
  let s = String.trim s0 in
  let bad () =
    Error
      (`Msg
        (Printf.sprintf "bad duration %S (expected e.g. 250ms, 2s, or plain seconds)" s0))
  in
  let ends_with suffix =
    let ls = String.length s and lx = String.length suffix in
    ls > lx && String.sub s (ls - lx) lx = suffix
  in
  let scaled scale suffix =
    let num = String.sub s 0 (String.length s - String.length suffix) in
    match float_of_string_opt (String.trim num) with
    | Some f when f >= 0.0 -> Ok (f *. scale)
    | _ -> bad ()
  in
  if s = "" then bad ()
  else if ends_with "us" then scaled 1e-6 "us"
  else if ends_with "ms" then scaled 1e-3 "ms"
  else if ends_with "s" then scaled 1.0 "s"
  else
    match float_of_string_opt s with
    | Some f when f >= 0.0 -> Ok f
    | _ -> bad ()

let duration_conv =
  Arg.conv (duration_of_string, fun fmt secs -> Format.fprintf fmt "%gs" secs)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "s"; "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket to listen on.")

let wal_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "w"; "wal" ] ~docv:"PATH"
        ~doc:
          "Write-ahead log. Replayed (and its torn tail repaired) on \
           startup; first boot and post-crash boot are the same path.")

let pool_arg =
  Arg.(
    value & opt int 4
    & info [ "pool" ] ~docv:"N" ~doc:"Concurrent worker processes (default 4).")

let queue_arg =
  Arg.(
    value & opt int 64
    & info [ "queue" ] ~docv:"N"
        ~doc:"Admission queue capacity; beyond it submissions are shed \
              with REJECT busy (default 64).")

let timeout_arg =
  Arg.(
    value
    & opt (some duration_conv) None
    & info [ "timeout" ] ~docv:"DURATION"
        ~doc:"Default per-job budget for specs that carry none.")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Extra in-worker attempts per job on resource failures, with \
           budget escalation and jittered exponential backoff (default \
           0).")

let backoff_arg =
  Arg.(
    value
    & opt duration_conv 0.05
    & info [ "backoff" ] ~docv:"DURATION"
        ~doc:"Base retry backoff; doubles per attempt, jittered into \
              [1/2, 1) deterministically per job (default 50ms).")

let breaker_threshold_arg =
  Arg.(
    value & opt int 5
    & info [ "breaker-threshold" ] ~docv:"N"
        ~doc:
          "Consecutive resource failures of a job class before its \
           circuit breaker opens (default 5).")

let breaker_cooldown_arg =
  Arg.(
    value
    & opt duration_conv 30.0
    & info [ "breaker-cooldown" ] ~docv:"DURATION"
        ~doc:"Open-breaker cool-down before a half-open probe (default 30s).")

let grace_arg =
  Arg.(
    value
    & opt duration_conv 1.0
    & info [ "grace" ] ~docv:"DURATION"
        ~doc:"Extra wall clock past a job's deadline before its worker \
              is SIGKILLed (default 1s).")

let models_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "models" ] ~docv:"DIR"
        ~doc:
          "Enable the serving tier: versioned model store directory \
           (created if missing, crash residue repaired on open). Adds \
           the CLASSIFY/PUBLISH/MODELS/ROLLBACK protocol verbs.")

let eval_rate_arg =
  Arg.(
    value
    & opt float Serve.default_config.Serve.eval_rate
    & info [ "eval-rate" ] ~docv:"N"
        ~doc:
          "Cold-entity evaluations admitted per second; beyond it \
           CLASSIFY batches needing cold work are shed with REJECT \
           overload (cache-hit batches always serve). Default 500.")

let eval_burst_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "eval-burst" ] ~docv:"N"
        ~doc:"Token-bucket depth in cold evaluations (default 2x rate).")

let eval_timeout_arg =
  Arg.(
    value
    & opt duration_conv 5.0
    & info [ "eval-timeout" ] ~docv:"DURATION"
        ~doc:"Wall-clock budget per CLASSIFY batch (default 5s).")

let cache_size_arg =
  Arg.(
    value
    & opt int Serve.default_config.Serve.cache_capacity
    & info [ "cache-size" ] ~docv:"N"
        ~doc:"Verdict-cache capacity in entries (default 65536).")

let run socket wal pool queue timeout retries backoff threshold cooldown grace
    models eval_rate eval_burst eval_timeout cache_size =
  let cfg =
    {
      Service.wal_path = wal;
      pool_size = pool;
      queue_capacity = queue;
      default_timeout = timeout;
      breaker_threshold = threshold;
      breaker_cooldown = cooldown;
      retries;
      retry_backoff = backoff;
      grace;
    }
  in
  let serve_cfg =
    {
      Serve.default_config with
      Serve.eval_rate;
      eval_burst =
        (match eval_burst with Some b -> b | None -> 2.0 *. eval_rate);
      eval_timeout = Some eval_timeout;
      cache_capacity = cache_size;
      breaker_threshold = threshold;
    }
  in
  match serve cfg ~socket_path:socket ~models_dir:models ~serve_cfg with
  | code -> code
  | exception Invalid_argument msg ->
      log "cqserved: %s" msg;
      1

let () =
  let doc = "crash-safe solver job daemon (WAL-journaled, supervised workers)" in
  let cmd =
    Cmd.v
      (Cmd.info "cqserved" ~version:"1.0.0" ~doc)
      Term.(
        const run $ socket_arg $ wal_arg $ pool_arg $ queue_arg $ timeout_arg
        $ retries_arg $ backoff_arg $ breaker_threshold_arg
        $ breaker_cooldown_arg $ grace_arg $ models_arg $ eval_rate_arg
        $ eval_burst_arg $ eval_timeout_arg $ cache_size_arg)
  in
  let code =
    try Cmd.eval' ~catch:false cmd
    with e ->
      Printf.eprintf "cqserved: internal error: %s\n" (Printexc.to_string e);
      5
  in
  exit code
