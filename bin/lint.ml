(* cqlint — static analysis over the repo's own sources.

   Exit codes: 0 clean, 1 findings, 2 internal error (unparsable
   source, unreadable/malformed baseline, bad flags). *)

let usage = "cqlint [--root DIR] [--rules R1,R2,...] [--baseline FILE] [--json] [--write-baseline] [--quiet]"

let () =
  let root = ref "." in
  let rules = ref Lint_finding.all_rules in
  let baseline = ref None in
  let json = ref false in
  let write_baseline = ref false in
  let quiet = ref false in
  let bad_flags = ref [] in
  let set_rules spec =
    let parsed =
      String.split_on_char ',' spec
      |> List.filter (fun s -> s <> "")
      |> List.map (fun s ->
             match Lint_finding.rule_of_string (String.trim s) with
             | Some r -> r
             | None ->
                 bad_flags := Printf.sprintf "unknown rule %S" s :: !bad_flags;
                 Lint_finding.R0)
    in
    rules := parsed
  in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root (default: .)");
      ( "--rules",
        Arg.String set_rules,
        "R1,R2,... enable only these rules (default: all of R1-R5)" );
      ( "--baseline",
        Arg.String (fun f -> baseline := Some f),
        "FILE grandfather the findings listed (with reasons) in FILE" );
      ("--json", Arg.Set json, " emit findings as a JSON array");
      ( "--write-baseline",
        Arg.Set write_baseline,
        " print baseline lines for the current findings and exit 0" );
      ("--quiet", Arg.Set quiet, " suppress the summary line");
    ]
  in
  Arg.parse spec
    (fun anon ->
      bad_flags := Printf.sprintf "unexpected argument %S" anon :: !bad_flags)
    usage;
  (match !bad_flags with
  | [] -> ()
  | msgs ->
      List.iter (Printf.eprintf "cqlint: %s\n") msgs;
      exit 2);
  let config =
    {
      Lint_driver.root = !root;
      rules = !rules;
      (* Regenerating the baseline must see the full finding list (and
         must not require the old file to exist), so skip reading it. *)
      baseline = (if !write_baseline then None else !baseline);
    }
  in
  match Lint_driver.run config with
  | Error msg ->
      Printf.eprintf "cqlint: internal error: %s\n" msg;
      exit 2
  | Ok report ->
      let open Lint_driver in
      List.iter
        (fun e -> Printf.eprintf "cqlint: warning: stale baseline entry: %s\n" e)
        report.stale_baseline;
      if !write_baseline then begin
        List.iter
          (fun f -> print_endline (Lint_driver.baseline_line f))
          report.findings;
        exit 0
      end;
      if !json then print_endline (Lint_finding.list_to_json report.findings)
      else
        List.iter
          (fun f -> print_endline (Lint_finding.to_text f))
          report.findings;
      if not !quiet then
        Printf.eprintf
          "cqlint: %d file(s), %d finding(s), %d suppressed, %d baselined\n"
          report.files_checked
          (List.length report.findings)
          report.suppressed report.baselined;
      exit (if report.findings = [] then 0 else 1)
