(* cqlint — static analysis over the repo's own sources.

   Exit codes: 0 clean, 1 findings (or stale baseline entries under
   --strict-baseline), 2 internal error (unparsable source,
   unreadable/malformed baseline, bad flags). *)

let usage =
  "cqlint [--root DIR] [--rules R1,R2,...] [--baseline FILE] \
   [--strict-baseline] [--no-typed] [--dump-callgraph] [--dot] \
   [--par-report] [--taint-report] [--json] [--sarif FILE] \
   [--write-baseline] [--quiet]"

let () =
  let root = ref "." in
  let rules = ref Lint_finding.all_rules in
  let baseline = ref None in
  let strict_baseline = ref false in
  let typed = ref true in
  let dump_callgraph = ref false in
  let par_report = ref false in
  let taint_report = ref false in
  let dot = ref false in
  let json = ref false in
  let sarif = ref None in
  let write_baseline = ref false in
  let quiet = ref false in
  let bad_flags = ref [] in
  let set_rules spec =
    let parsed =
      String.split_on_char ',' spec
      |> List.filter (fun s -> s <> "")
      |> List.map (fun s ->
             match Lint_finding.rule_of_string (String.trim s) with
             | Some r -> r
             | None ->
                 bad_flags := Printf.sprintf "unknown rule %S" s :: !bad_flags;
                 Lint_finding.R0)
    in
    rules := parsed
  in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root (default: .)");
      ( "--rules",
        Arg.String set_rules,
        "R1,R2,... enable only these rules (default: all of R1-R14)" );
      ( "--baseline",
        Arg.String (fun f -> baseline := Some f),
        "FILE grandfather the findings listed (with reasons) in FILE" );
      ( "--strict-baseline",
        Arg.Set strict_baseline,
        " stale baseline entries are an error (exit 1), not a warning" );
      ( "--typed",
        Arg.Set typed,
        " load .cmt files and run the typed pass (default)" );
      ( "--no-typed",
        Arg.Clear typed,
        " Parsetree rules only; skip the typed pass" );
      ( "--dump-callgraph",
        Arg.Set dump_callgraph,
        " print the whole-library call graph and exit" );
      ( "--dot",
        Arg.Set dot,
        " with --dump-callgraph: emit Graphviz of the SCC condensation" );
      ( "--par-report",
        Arg.Set par_report,
        " print the shard-safety report (docs/SHARD_SAFETY.md) and exit" );
      ( "--taint-report",
        Arg.Set taint_report,
        " print the exactness-boundary report (docs/EXACTNESS.md) and exit" );
      ("--json", Arg.Set json, " emit findings as a JSON array");
      ( "--sarif",
        Arg.String (fun f -> sarif := Some f),
        "FILE also write findings to FILE as SARIF 2.1.0" );
      ( "--write-baseline",
        Arg.Set write_baseline,
        " print baseline lines for the current findings and exit 0" );
      ("--quiet", Arg.Set quiet, " suppress the summary line");
    ]
  in
  Arg.parse spec
    (fun anon ->
      bad_flags := Printf.sprintf "unexpected argument %S" anon :: !bad_flags)
    usage;
  (match !bad_flags with
  | [] -> ()
  | msgs ->
      List.iter (Printf.eprintf "cqlint: %s\n") msgs;
      exit 2);
  let config =
    {
      Lint_driver.root = !root;
      rules = !rules;
      (* Regenerating the baseline must see the full finding list (and
         must not require the old file to exist), so skip reading it. *)
      baseline = (if !write_baseline then None else !baseline);
      typed = !typed;
    }
  in
  if !dump_callgraph || !dot then begin
    match Lint_driver.callgraph config with
    | Error msg ->
        Printf.eprintf "cqlint: internal error: %s\n" msg;
        exit 2
    | Ok g ->
        let buf = Buffer.create 4096 in
        (if !dot then Callgraph.dump_dot else Callgraph.dump) g buf;
        print_string (Buffer.contents buf);
        exit 0
  end;
  if !taint_report then begin
    match Lint_driver.taint_report config with
    | Error msg ->
        Printf.eprintf "cqlint: internal error: %s\n" msg;
        exit 2
    | Ok text ->
        print_string text;
        exit 0
  end;
  if !par_report then begin
    match Lint_driver.par_report config with
    | Error msg ->
        Printf.eprintf "cqlint: internal error: %s\n" msg;
        exit 2
    | Ok text ->
        print_string text;
        exit 0
  end;
  match Lint_driver.run config with
  | Error msg ->
      Printf.eprintf "cqlint: internal error: %s\n" msg;
      exit 2
  | Ok report ->
      let open Lint_driver in
      List.iter
        (fun e ->
          Printf.eprintf "cqlint: %s: stale baseline entry: %s\n"
            (if !strict_baseline then "error" else "warning")
            e)
        report.stale_baseline;
      List.iter
        (fun e ->
          Printf.eprintf
            "cqlint: %s: baseline entry references a missing file (delete \
             the entry): %s\n"
            (if !strict_baseline then "error" else "warning")
            e)
        report.missing_file_baseline;
      List.iter
        (fun f ->
          Printf.eprintf
            "cqlint: warning: no annotation for %s \xe2\x80\x94 Parsetree \
             rules only (run `dune build @lint` or `dune build` to \
             generate .cmt files)\n"
            f)
        report.degraded;
      if !write_baseline then begin
        List.iter
          (fun f -> print_endline (Lint_driver.baseline_line f))
          report.findings;
        exit 0
      end;
      (match !sarif with
      | None -> ()
      | Some file ->
          let oc = open_out_bin file in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              output_string oc (Lint_sarif.to_sarif report.findings);
              output_char oc '\n'));
      if !json then print_endline (Lint_finding.list_to_json report.findings)
      else
        List.iter
          (fun f -> print_endline (Lint_finding.to_text f))
          report.findings;
      if not !quiet then
        Printf.eprintf
          "cqlint: %d file(s), %d typed module(s), %d finding(s), %d \
           suppressed, %d baselined\n"
          report.files_checked report.typed_modules
          (List.length report.findings)
          report.suppressed report.baselined;
      let stale_fails =
        !strict_baseline
        && (report.stale_baseline <> [] || report.missing_file_baseline <> [])
      in
      exit (if report.findings = [] && not stale_fails then 0 else 1)
