(* Benchmark harness: regenerates, experiment by experiment, the
   complexity landscape of "Regularizing Conjunctive Features for
   Classification" (PODS 2019). The paper is a theory paper — its
   "tables and figures" are Table 1 and the size/dimension bounds of
   the theorems — so each bench reports measured runtimes or sizes
   whose *shape* (polynomial vs exponential, growth in the forced
   dimension, blowup of materialized features) reproduces the claimed
   result. The experiment ids match DESIGN.md and EXPERIMENTS.md. *)

let lang_cqm m = Language.Cq_atoms { m; p = None }

let random_graph_training ~seed ~nodes ~edges =
  let db = Gen_db.random_graph_db ~seed ~nodes ~edges () in
  Families.alternating_labels db

(* ------------------------------------------------------------------ *)
(* Gate trajectories. Experiments [record ~file key value] the        *)
(* metrics CI gates on; after the selected experiments have run, one  *)
(* flat {"key": value, ...} JSON object is written per file for       *)
(* bench_gate to diff against the committed baseline. When $BENCH_OUT *)
(* is set and exactly one file collected metrics — the               *)
(* BENCH_ONLY=<group> pattern the CI jobs use — the object goes to   *)
(* $BENCH_OUT instead of the default name.                            *)
(* ------------------------------------------------------------------ *)

let trajectories : (string, (string * float) list ref) Hashtbl.t =
  Hashtbl.create 4

let record ~file key v =
  let bucket =
    match Hashtbl.find_opt trajectories file with
    | Some b -> b
    | None ->
        let b = ref [] in
        Hashtbl.add trajectories file b;
        b
  in
  bucket := (key, v) :: !bucket

let write_trajectories () =
  (* Keys are emitted sorted, not in recording order, so the committed
     BENCH_*.json baselines diff deterministically no matter which
     experiment subset ran or in what order it recorded. *)
  let files =
    List.sort compare
      (Hashtbl.fold
         (fun f b acc ->
           (f, List.sort (fun (a, _) (b, _) -> compare a b) (List.rev !b))
           :: acc)
         trajectories [])
  in
  let files =
    match (files, Sys.getenv_opt "BENCH_OUT") with
    | [ (_, metrics) ], Some out -> [ (out, metrics) ]
    | _ -> files
  in
  List.iter
    (fun (out, metrics) ->
      let oc = open_out out in
      output_string oc "{\n";
      let last = List.length metrics - 1 in
      List.iteri
        (fun i (k, v) ->
          let num =
            if Float.is_integer v && Float.abs v < 1e15 then
              Printf.sprintf "%.0f" v
            else Printf.sprintf "%.4f" v
          in
          Printf.fprintf oc "  %S: %s%s\n" k num (if i = last then "" else ","))
        metrics;
      output_string oc "}\n";
      close_out oc;
      Printf.printf "trajectory written to %s\n%!" out)
    files

(* ------------------------------------------------------------------ *)
(* Table 1, row "L-Sep": CQ coNP-flavored test, CQ[m] PTIME,
   GHW(k) PTIME.                                                      *)
(* ------------------------------------------------------------------ *)

let bench_table1_cq_sep () =
  Bench_util.header
    "table1/cq_sep — CQ-Sep via pairwise hom-equivalence (coNP worst case; \
     benign here)";
  Bench_util.row [ (14, "entities"); (12, "facts"); (14, "time") ];
  Bench_util.rule ();
  List.iter
    (fun nodes ->
      let t = random_graph_training ~seed:42 ~nodes ~edges:(2 * nodes) in
      let ns =
        Bench_util.time_ns ~name:"cq_sep" (fun () ->
            ignore (Cqfeat.separable Language.Cq_all t))
      in
      Bench_util.row
        [
          (14, string_of_int nodes);
          (12, string_of_int (Db.size t.Labeling.db));
          (14, Bench_util.pp_ns ns);
        ])
    [ 4; 6; 8; 10; 12 ]

let bench_table1_cq_sep_worst_case () =
  Bench_util.header
    "table1/cq_sep_worst — CQ-Sep hardness lives in the hom search: \
     K_n-vs-K_{n-1} instances (rigid negative searches)";
  Bench_util.row [ (8, "n"); (14, "entities"); (14, "separable"); (14, "time") ];
  Bench_util.rule ();
  List.iter
    (fun n ->
      (* one entity on K_n (positive), one on K_{n-1} (negative):
         separable since K_n does not map into K_{n-1}, but deciding it
         forces an exhaustive refutation *)
      let rename tag db = Db.map_elems (fun e -> Elem.tup [ Elem.sym tag; e ]) db in
      let kn = rename "a" (Families.symmetric_clique n) in
      let km = rename "b" (Families.symmetric_clique (n - 1)) in
      let db = Db.union (Db.without_rel Db.entity_rel kn)
          (Db.without_rel Db.entity_rel km) in
      let ea = Elem.tup [ Elem.sym "a"; Elem.sym "k0" ] in
      let eb = Elem.tup [ Elem.sym "b"; Elem.sym "k0" ] in
      let db = Db.add_entity ea (Db.add_entity eb db) in
      let t =
        Labeling.training db
          (Labeling.of_list [ (ea, Labeling.Pos); (eb, Labeling.Neg) ])
      in
      let sep = ref false in
      let ns =
        Bench_util.time_ns ~name:"cq_sep_worst" (fun () ->
            sep := Cqfeat.separable Language.Cq_all t)
      in
      Bench_util.row
        [
          (8, string_of_int n);
          (14, "2");
          (14, string_of_bool !sep);
          (14, Bench_util.pp_ns ns);
        ])
    [ 3; 4; 5; 6 ]

let bench_table1_cqm_sep () =
  Bench_util.header
    "table1/cqm_sep — CQ[m]-Sep by full-statistic enumeration + LP (PTIME \
     in the data, Prop 4.1)";
  Bench_util.row [ (6, "m"); (14, "entities"); (12, "facts"); (14, "time") ];
  Bench_util.rule ();
  List.iter
    (fun (m, nodes) ->
      let t = random_graph_training ~seed:7 ~nodes ~edges:(2 * nodes) in
      let ns =
        Bench_util.time_ns ~name:"cqm_sep" (fun () ->
            ignore (Cqfeat.separable (lang_cqm m) t))
      in
      Bench_util.row
        [
          (6, string_of_int m);
          (14, string_of_int nodes);
          (12, string_of_int (Db.size t.Labeling.db));
          (14, Bench_util.pp_ns ns);
        ])
    [ (1, 6); (1, 12); (1, 18); (2, 6); (2, 9); (2, 12) ]

let bench_table1_ghw_sep () =
  Bench_util.header
    "table1/ghw_sep — GHW(k)-Sep by the cover-game test (PTIME, Thm 5.3)";
  Bench_util.row [ (6, "k"); (14, "entities"); (12, "facts"); (14, "time") ];
  Bench_util.rule ();
  List.iter
    (fun (k, n) ->
      let t = Families.alternating_labels (Families.path n) in
      let ns =
        Bench_util.time_ns ~name:"ghw_sep" (fun () ->
            ignore (Cqfeat.separable (Language.Ghw k) t))
      in
      Bench_util.row
        [
          (6, string_of_int k);
          (14, string_of_int (n + 1));
          (12, string_of_int (Db.size t.Labeling.db));
          (14, Bench_util.pp_ns ns);
        ])
    [ (1, 3); (1, 5); (1, 7); (1, 9); (1, 12); (1, 15); (2, 3); (2, 4); (2, 5) ]

(* ------------------------------------------------------------------ *)
(* Table 1, row "L-Sep[l]": PTIME for CQ[m] with fixed l; NP-complete
   with l as input; EXPTIME for GHW(k) via exponential products.      *)
(* ------------------------------------------------------------------ *)

let bench_table1_cqm_sep_l () =
  Bench_util.header
    "table1/cqm_sep_l — CQ[1]-Sep[l]: combinatorial feature choice (fixed l \
     PTIME / input l NP, Thm 6.10)";
  Bench_util.row [ (6, "l"); (14, "entities"); (16, "candidates"); (14, "time") ];
  Bench_util.rule ();
  List.iter
    (fun (l, nodes) ->
      let t = random_graph_training ~seed:11 ~nodes ~edges:nodes in
      let sets = Dim_sep.realizable_sets (lang_cqm 1) t in
      let ns =
        Bench_util.time_ns ~name:"cqm_sep_l" (fun () ->
            ignore (Dim_sep.separable_with_sets ~dim:l ~sets t))
      in
      Bench_util.row
        [
          (6, string_of_int l);
          (14, string_of_int nodes);
          (16, string_of_int (List.length sets));
          (14, Bench_util.pp_ns ns);
        ])
    [ (1, 6); (2, 6); (3, 6); (1, 10); (2, 10); (3, 10) ]

let bench_table1_ghw_sep_l () =
  Bench_util.header
    "table1/ghw_sep_l — GHW(1)-Sep[l] realizability via products (EXPTIME, \
     Thm 6.6): subset sweep cost";
  Bench_util.row
    [ (14, "entities"); (16, "subsets tried"); (14, "time") ];
  Bench_util.rule ();
  List.iter
    (fun nodes ->
      let t = random_graph_training ~seed:5 ~nodes ~edges:nodes in
      let n = List.length (Db.entities t.Labeling.db) in
      let ns =
        Bench_util.time_ns ~name:"ghw_sep_l" (fun () ->
            ignore (Dim_sep.realizable_sets (Language.Ghw 1) t))
      in
      Bench_util.row
        [
          (14, string_of_int n);
          (16, string_of_int ((1 lsl n) - 1));
          (14, Bench_util.pp_ns ns);
        ])
    [ 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Prop 4.1: |D|^c * 2^{q(k)} — polynomial data sweep, exponential
   arity sweep (the 2^{q(k)} factor is the statistic size).           *)
(* ------------------------------------------------------------------ *)

let bench_prop41_sweep_db () =
  Bench_util.header
    "prop41/sweep_db — CQ[2]-Sep runtime vs |D| (fixed schema, PTIME shape)";
  Bench_util.row [ (12, "|D| facts"); (14, "entities"); (14, "time") ];
  Bench_util.rule ();
  List.iter
    (fun nodes ->
      let t = random_graph_training ~seed:19 ~nodes ~edges:(2 * nodes) in
      let ns =
        Bench_util.time_ns ~name:"prop41_db" (fun () ->
            ignore (Cqfeat.separable (lang_cqm 2) t))
      in
      Bench_util.row
        [
          (12, string_of_int (Db.size t.Labeling.db));
          (14, string_of_int nodes);
          (14, Bench_util.pp_ns ns);
        ])
    [ 4; 6; 8; 10 ]

let bench_prop41_sweep_arity () =
  Bench_util.header
    "prop41/sweep_arity — |CQ[m]| up to isomorphism vs arity k (the \
     2^{q(k)} factor)";
  Bench_util.row [ (6, "m"); (8, "arity"); (20, "#feature queries") ];
  Bench_util.rule ();
  List.iter
    (fun (m, k) ->
      let schema = [ ("R", k) ] in
      let count = Cq_enum.count ~schema ~max_atoms:m () in
      Bench_util.row
        [ (6, string_of_int m); (8, string_of_int k); (20, string_of_int count) ])
    [ (1, 1); (1, 2); (1, 3); (2, 1); (2, 2); (2, 3); (3, 1); (3, 2); (3, 3) ]

(* ------------------------------------------------------------------ *)
(* Theorem 5.7: dimension grows with the number of entities; feature
   size (unraveling) is exponential.                                  *)
(* ------------------------------------------------------------------ *)

let bench_thm57_dimension () =
  Bench_util.header
    "thm57/dimension — minimal separating dimension on the alternating \
     chain (Thm 5.7(a) / Thm 8.7)";
  Bench_util.row [ (8, "m"); (14, "entities"); (16, "min dimension") ];
  Bench_util.rule ();
  List.iter
    (fun m ->
      let t = Families.ghw_dimension_family m in
      (* On the loop-terminated chain the GHW(1) indicator sets are the
         up-sets, realized by the backward-path features
         q_s(x) = ∃y_1..y_s E(y_s,y_{s-1}),...,E(y_1,x). *)
      let backward_path s =
        let v i = if i = 0 then Cq.default_free else Elem.sym (Printf.sprintf "y%d" i) in
        Cq.make ~free:Cq.default_free
          (List.init s (fun i -> Fact.make_l "E" [ v (i + 1); v i ]))
      in
      let qs = List.init (2 * m) (fun s -> backward_path s) in
      let sets =
        List.filter
          (fun s -> not (Elem.Set.is_empty s))
          (Fo_dimension.indicator_family ~queries:qs ~db:t.Labeling.db)
      in
      let rec min_dim d =
        if d > 2 * m then -1
        else if Dim_sep.separable_with_sets ~dim:d ~sets t then d
        else min_dim (d + 1)
      in
      Bench_util.row
        [
          (8, string_of_int m);
          (14, string_of_int (2 * m));
          (16, string_of_int (min_dim 0));
        ])
    [ 1; 2; 3; 4 ]

let bench_thm57_feature_size () =
  Bench_util.header
    "thm57/feature_size — materialized GHW(1) feature size vs unraveling \
     depth (exponential, Prop 5.6 / Thm 5.7(b))";
  Bench_util.row
    [ (8, "n"); (8, "depth"); (18, "unravel nodes"); (16, "feature atoms") ];
  Bench_util.rule ();
  List.iter
    (fun (n, depth) ->
      let t = Families.two_path_gadget n in
      let e = Elem.sym "p1_0" in
      let nodes = Unravel.node_count ~k:1 ~depth t.Labeling.db in
      let atoms =
        if nodes <= 100000 then
          Cq.num_atoms (Unravel.unravel ~k:1 ~depth (t.Labeling.db, e))
        else -1
      in
      Bench_util.row
        [
          (8, string_of_int n);
          (8, string_of_int depth);
          (18, string_of_int nodes);
          (16, if atoms < 0 then "(skipped)" else string_of_int atoms);
        ])
    [ (2, 1); (2, 2); (2, 3); (3, 1); (3, 2); (3, 3) ]

(* ------------------------------------------------------------------ *)
(* Algorithm 1: classification without materialization (PTIME).       *)
(* ------------------------------------------------------------------ *)

let bench_alg1_classify () =
  Bench_util.header
    "alg1/classify — GHW(1)-Cls (Algorithm 1) vs evaluation size (PTIME, \
     Thm 5.8)";
  Bench_util.row
    [ (16, "train entities"); (16, "eval entities"); (14, "time") ];
  Bench_util.rule ();
  let t = Families.two_path_gadget 3 in
  List.iter
    (fun n ->
      let eval_db = Families.path n in
      let ns =
        Bench_util.time_ns ~name:"alg1" (fun () ->
            ignore (Cqfeat.classify (Language.Ghw 1) t eval_db))
      in
      Bench_util.row
        [
          (16, string_of_int (List.length (Db.entities t.Labeling.db)));
          (16, string_of_int (n + 1));
          (14, Bench_util.pp_ns ns);
        ])
    [ 4; 8; 12; 16 ]

(* ------------------------------------------------------------------ *)
(* Algorithm 2: optimal approximate relabeling (PTIME) + optimality.  *)
(* ------------------------------------------------------------------ *)

let bench_alg2_apxsep () =
  Bench_util.header
    "alg2/apxsep — GHW(1)-ApxSep (Algorithm 2): time and minimal \
     disagreement (Thm 7.4)";
  Bench_util.row
    [ (14, "entities"); (10, "flips"); (16, "disagreement"); (14, "time") ];
  Bench_util.rule ();
  List.iter
    (fun (copies, flips) ->
      let t = Families.copies (Families.two_path_gadget 3) copies in
      let noisy = Planted.flip_labels ~seed:3 ~count:flips t in
      let _, d = Ghw_sep.apx_relabel ~k:1 noisy in
      let ns =
        Bench_util.time_ns ~name:"alg2" (fun () ->
            ignore (Ghw_sep.apx_relabel ~k:1 noisy))
      in
      Bench_util.row
        [
          (14, string_of_int (List.length (Db.entities noisy.Labeling.db)));
          (10, string_of_int flips);
          (16, string_of_int d);
          (14, Bench_util.pp_ns ns);
        ])
    [ (2, 1); (3, 1); (4, 2); (5, 2); (7, 3); (9, 3) ]

(* ------------------------------------------------------------------ *)
(* Prop 7.1: padding reduction parameters and faithfulness.           *)
(* ------------------------------------------------------------------ *)

let bench_prop71_reduction () =
  Bench_util.header
    "prop71/reduction — Sep-to-ApxSep padding: parameters and equivalence \
     check";
  Bench_util.row
    [
      (10, "eps");
      (10, "copies");
      (10, "padding");
      (10, "budget");
      (12, "faithful");
    ];
  Bench_util.rule ();
  let t = Families.example_62 () in
  List.iter
    (fun (num, den) ->
      let eps = Rat.of_ints num den in
      let padded = Apx_reduction.pad ~eps t in
      let faithful =
        Cqfeat.separable (Language.Ghw 1) t
        = Cqfeat.apx_separable ~eps (Language.Ghw 1)
            padded.Apx_reduction.training
      in
      Bench_util.row
        [
          (10, Printf.sprintf "%d/%d" num den);
          (10, string_of_int padded.Apx_reduction.copies);
          (10, string_of_int padded.Apx_reduction.padding);
          (10, string_of_int padded.Apx_reduction.budget);
          (12, string_of_bool faithful);
        ])
    [ (0, 1); (1, 8); (1, 4); (2, 5) ]

(* ------------------------------------------------------------------ *)
(* Theorem 6.1 substrate: QBE product growth.                         *)
(* ------------------------------------------------------------------ *)

let bench_qbe_product_growth () =
  Bench_util.header
    "qbe/product_growth — CQ-QBE positive-product blowup (exponential in \
     |S+|, Thm 6.1)";
  Bench_util.row
    [ (8, "|S+|"); (16, "product facts"); (14, "decide time") ];
  Bench_util.rule ();
  let db = Gen_db.random_graph_db ~seed:23 ~nodes:5 ~edges:7 () in
  let ents = Db.entities db in
  List.iter
    (fun np ->
      let pos = List.filteri (fun i _ -> i < np) ents in
      let neg = [ List.nth ents np ] in
      let inst = Qbe.make db ~pos ~neg in
      let product, _ = Qbe.product_of_positives inst in
      let ns =
        Bench_util.time_ns ~name:"qbe" (fun () -> ignore (Qbe.cq_decide inst))
      in
      Bench_util.row
        [
          (8, string_of_int np);
          (16, string_of_int (Db.size product));
          (14, Bench_util.pp_ns ns);
        ])
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Corollary 8.2: FO-Sep via isomorphism (GI-flavored, fast in        *)
(* practice).                                                         *)
(* ------------------------------------------------------------------ *)

let bench_fo_sep () =
  Bench_util.header
    "fo/sep — FO-Sep via pointed isomorphism tests (GI-complete, Cor 8.2)";
  Bench_util.row [ (14, "entities"); (12, "facts"); (14, "time") ];
  Bench_util.rule ();
  List.iter
    (fun nodes ->
      let t = random_graph_training ~seed:31 ~nodes ~edges:(2 * nodes) in
      let ns =
        Bench_util.time_ns ~name:"fo_sep" (fun () ->
            ignore (Cqfeat.separable Language.Fo t))
      in
      Bench_util.row
        [
          (14, string_of_int nodes);
          (12, string_of_int (Db.size t.Labeling.db));
          (14, Bench_util.pp_ns ns);
        ])
    [ 4; 8; 12; 16 ]

(* ------------------------------------------------------------------ *)
(* Evaluation engines: hom search vs Yannakakis vs decomposition.     *)
(* ------------------------------------------------------------------ *)

let bench_prop69_vertex_cover () =
  Bench_util.header
    "prop69/vertex_cover — the VC reduction: minimal dimension of the \
     reduced instance = minimum vertex cover";
  Bench_util.row
    [ (16, "graph"); (8, "VC"); (14, "min dim"); (14, "time") ];
  Bench_util.rule ();
  List.iter
    (fun (name, edges) ->
      let vc = Vc_reduction.min_vertex_cover ~edges in
      let dim = ref None in
      let ns =
        Bench_util.time_ns ~name:"vc" (fun () ->
            dim := fst (Vc_reduction.min_dimension_equals_cover ~edges))
      in
      Bench_util.row
        [
          (16, name);
          (8, string_of_int vc);
          (14, (match !dim with Some d -> string_of_int d | None -> "-"));
          (14, Bench_util.pp_ns ns);
        ])
    [
      ("path-3", [ (1, 2); (2, 3); (3, 4) ]);
      ("triangle", [ (1, 2); (2, 3); (3, 1) ]);
      ("star-4", [ (0, 1); (0, 2); (0, 3); (0, 4) ]);
      ("C4", [ (1, 2); (2, 3); (3, 4); (4, 1) ]);
    ]

let bench_eval_engines () =
  Bench_util.header
    "eval/engines — CQ evaluation: backtracking vs Yannakakis vs width-k      decomposition";
  Bench_util.row
    [ (20, "query"); (10, "|D|"); (12, "hom"); (12, "yannakakis"); (14, "ghw-decomp") ];
  Bench_util.rule ();
  let chain_query len =
    (* x -> y1 -> ... -> ylen, acyclic *)
    let v i = if i = 0 then Cq.default_free else Elem.sym (Printf.sprintf "y%d" i) in
    Cq.make ~free:Cq.default_free
      (List.init len (fun i -> Fact.make_l "E" [ v i; v (i + 1) ]))
  in
  let cycle_query len =
    (* a cycle of existential vars hanging off x: needs width 2 *)
    let v i = Elem.sym (Printf.sprintf "z%d" i) in
    Cq.make ~free:Cq.default_free
      (Fact.make_l "E" [ Cq.default_free; v 0 ]
      :: List.init len (fun i -> Fact.make_l "E" [ v i; v ((i + 1) mod len) ]))
  in
  List.iter
    (fun (name, qq, nodes) ->
      let db = Gen_db.random_graph_db ~seed:77 ~nodes ~edges:(3 * nodes) () in
      let hom_ns =
        Bench_util.time_ns ~name:"hom" (fun () -> ignore (Cq.eval qq db))
      in
      let yan_ns =
        if Join_tree.is_acyclic qq then
          Bench_util.time_ns ~name:"yan" (fun () -> ignore (Join_tree.eval qq db))
        else Float.nan
      in
      let ghw_ns =
        match Cq_decomp.decomposition qq ~k:2 with
        | Some forest ->
            Bench_util.time_ns ~name:"ghw" (fun () ->
                ignore (Ghw_eval.eval_with_decomp qq db forest))
        | None -> Float.nan
      in
      Bench_util.row
        [
          (20, name);
          (10, string_of_int nodes);
          (12, Bench_util.pp_ns hom_ns);
          (12, Bench_util.pp_ns yan_ns);
          (14, Bench_util.pp_ns ghw_ns);
        ])
    [
      ("chain-3", chain_query 3, 20);
      ("chain-3", chain_query 3, 60);
      ("chain-5", chain_query 5, 20);
      ("chain-5", chain_query 5, 60);
      ("cycle-3 off x", cycle_query 3, 12);
      ("cycle-3 off x", cycle_query 3, 24);
    ]

(* ------------------------------------------------------------------ *)
(* FO_k pebble game (Cor 8.5 machinery).                              *)
(* ------------------------------------------------------------------ *)

let bench_fok_game () =
  Bench_util.header
    "fok/game — FO_k-Sep via the k-pebble game (Cor 8.5; positions grow      as (n^2)^k)";
  Bench_util.row [ (6, "k"); (14, "entities"); (14, "time") ];
  Bench_util.rule ();
  List.iter
    (fun (k, nodes) ->
      let t = random_graph_training ~seed:3 ~nodes ~edges:(2 * nodes) in
      let ns =
        Bench_util.time_ns ~name:"fok" (fun () ->
            ignore (Cqfeat.separable (Language.Fo_k k) t))
      in
      Bench_util.row
        [
          (6, string_of_int k);
          (14, string_of_int nodes);
          (14, Bench_util.pp_ns ns);
        ])
    [ (1, 6); (1, 10); (2, 6); (2, 10); (3, 6) ]

(* ------------------------------------------------------------------ *)
(* Ablations for the design choices called out in DESIGN.md.          *)
(* ------------------------------------------------------------------ *)

let bench_ablate_preorder () =
  Bench_util.header
    "ablate/preorder — transitivity pruning in the ->_k preorder      computation (same matrix, fewer games)";
  Bench_util.row
    [ (14, "entities"); (14, "with pruning"); (16, "without pruning") ];
  Bench_util.rule ();
  (* Copies create large ->_k equivalence classes, where transitivity
     pruning skips most of the n^2 games. *)
  List.iter
    (fun copies ->
      let t = Families.copies (Families.two_path_gadget 2) copies in
      let db = t.Labeling.db in
      let ents = Db.entities db in
      let with_p =
        Bench_util.time_ns ~name:"pruned" (fun () ->
            ignore (Cover_game.preorder ~k:1 db ents))
      in
      let without_p =
        Bench_util.time_ns ~name:"unpruned" (fun () ->
            ignore
              (Cover_game.preorder ~transitive_pruning:false ~k:1 db ents))
      in
      Bench_util.row
        [
          (14, string_of_int (List.length ents));
          (14, Bench_util.pp_ns with_p);
          (16, Bench_util.pp_ns without_p);
        ])
    [ 2; 4; 6 ]

let bench_ablate_hom_candidates () =
  Bench_util.header
    "ablate/hom — join-based candidate generation in the homomorphism      search vs naive domain scan";
  Bench_util.row
    [ (10, "|D|"); (14, "join-based"); (14, "naive") ];
  Bench_util.rule ();
  (* A negative instance with a long rigid pattern: candidate
     generation limits the branching to matching facts, the naive scan
     tries the whole domain at every level. *)
  List.iter
    (fun nodes ->
      let src = Db.without_rel Db.entity_rel (Families.path 8) in
      let dst = Db.without_rel Db.entity_rel (Families.path nodes) in
      (* src has one more edge than... src maps into dst iff 8 <= nodes;
         use nodes-1 edges target to get a hard negative *)
      let dst_neg = Db.without_rel Db.entity_rel (Families.cycle nodes) in
      ignore dst;
      let smart =
        Bench_util.time_ns ~name:"join" (fun () ->
            ignore (Hom.exists ~src ~dst:dst_neg ()))
      in
      let naive =
        Bench_util.time_ns ~name:"naive" (fun () ->
            ignore (Hom.exists ~naive:true ~src ~dst:dst_neg ()))
      in
      Bench_util.row
        [
          (10, string_of_int nodes);
          (14, Bench_util.pp_ns smart);
          (14, Bench_util.pp_ns naive);
        ])
    [ 10; 20; 40 ]

(* ------------------------------------------------------------------ *)
(* Budgeted runtime: cooperative fuel/deadline checks must be nearly  *)
(* free when the budget is generous.                                  *)
(* ------------------------------------------------------------------ *)

let bench_guard_overhead () =
  Bench_util.header
    "runtime/guard_overhead — Budget.tick cost on the table1/cq_sep \
     workload under a generous budget (target < 5%)";
  Bench_util.row
    [ (14, "entities"); (12, "bare"); (12, "guarded"); (12, "overhead") ];
  Bench_util.rule ();
  (* Non-infinite fuel and a far deadline force the ticks onto their
     slow path (counting down + periodic clock reads). *)
  let budget = Budget.make ~timeout:3600.0 ~fuel:1_000_000_000 () in
  (* Gate metric: the worst guarded/bare ratio across the sweep. A
     ratio (not a percentage) stays meaningful under 20%-regression
     gating — 1.05 -> 1.26 is a real slowdown, while 1% -> 1.3%
     overhead is noise. *)
  let worst = ref 1.0 in
  List.iter
    (fun nodes ->
      let t = random_graph_training ~seed:42 ~nodes ~edges:(2 * nodes) in
      let run_bare () = ignore (Cqfeat.separable Language.Cq_all t) in
      let run_guarded () =
        match
          Guard.run (Budget.refresh budget) (fun () ->
              Cqfeat.separable Language.Cq_all t)
        with
        | Ok _ -> ()
        | Error _ -> assert false
      in
      (* Interleaved best-of-5 with a long quota: a single bechamel
         estimate is too noisy to resolve a few percent. *)
      let best name fn prev =
        Float.min prev (Bench_util.time_ns ~quota:0.5 ~name fn)
      in
      let bare = ref infinity and guarded = ref infinity in
      for _ = 1 to 5 do
        bare := best "bare" run_bare !bare;
        guarded := best "guarded" run_guarded !guarded
      done;
      let bare = !bare and guarded = !guarded in
      worst := Float.max !worst (guarded /. bare);
      Bench_util.row
        [
          (14, string_of_int nodes);
          (12, Bench_util.pp_ns bare);
          (12, Bench_util.pp_ns guarded);
          (12, Printf.sprintf "%+.1f%%" ((guarded -. bare) /. bare *. 100.));
        ])
    [ 4; 6; 8; 10; 12 ];
  record ~file:"BENCH_runtime.json" "guard_overhead_ratio" !worst

let bench_isolate_overhead () =
  Bench_util.header
    "runtime/isolate_overhead — fork + marshal cost of Isolate.run vs the \
     in-process Guard.run it wraps";
  Bench_util.row
    [ (14, "workload"); (12, "in-process"); (12, "isolated"); (12, "ratio") ];
  Bench_util.rule ();
  let budget = Budget.make ~timeout:3600.0 ~fuel:1_000_000_000 () in
  let cases =
    ("trivial", fun () -> ignore (Sys.opaque_identity (21 * 2)))
    :: List.map
         (fun nodes ->
           let t = random_graph_training ~seed:42 ~nodes ~edges:(2 * nodes) in
           ( Printf.sprintf "cq_sep n=%d" nodes,
             fun () -> ignore (Cqfeat.separable Language.Cq_all t) ))
         [ 6; 10 ]
  in
  List.iter
    (fun (name, work) ->
      let in_process () =
        match Guard.run (Budget.refresh budget) work with
        | Ok () -> ()
        | Error _ -> assert false
      in
      let isolated () =
        match Isolate.run ~budget:(Budget.refresh budget) work with
        | Ok () -> ()
        | Error _ -> assert false
      in
      let a = Bench_util.time_ns ~quota:0.5 ~name:"in-process" in_process in
      let b = Bench_util.time_ns ~quota:0.5 ~name:"isolated" isolated in
      (* Gate on the solver-workload ratios only: the trivial case is
         pure fork+marshal latency, far too machine-dependent to diff
         against a committed baseline. *)
      (match name with
      | "cq_sep n=6" -> record ~file:"BENCH_runtime.json" "isolate_ratio_cq6" (b /. a)
      | "cq_sep n=10" ->
          record ~file:"BENCH_runtime.json" "isolate_ratio_cq10" (b /. a)
      | _ -> ());
      Bench_util.row
        [
          (14, name);
          (12, Bench_util.pp_ns a);
          (12, Bench_util.pp_ns b);
          (12, Printf.sprintf "%.1fx" (b /. a));
        ])
    cases

let bench_lint_typed () =
  Bench_util.header
    "analysis/lint_typed — typed lint pass over lib/: cmt loading and \
     call-graph construction vs rule evaluation";
  let root =
    List.find_opt
      (fun d ->
        Sys.file_exists (Filename.concat d "dune-project")
        && Sys.file_exists (Filename.concat d "lib"))
      [ "."; ".."; Filename.concat ".." ".." ]
  in
  match root with
  | None ->
      Bench_util.row [ (60, "skipped: repository root not found from cwd") ]
  | Some root ->
      let solver_dirs =
        [ "core"; "cq"; "relational"; "folang"; "covergame"; "lp"; "linsep" ]
      in
      let lib = Filename.concat root "lib" in
      let dirs =
        List.sort compare
          (List.filter
             (fun d -> Sys.is_directory (Filename.concat lib d))
             (Array.to_list (Sys.readdir lib)))
      in
      let load () =
        List.concat_map
          (fun d ->
            let entries = Array.to_list (Sys.readdir (Filename.concat lib d)) in
            let with_ext e = List.filter (fun f -> Filename.check_suffix f e) entries in
            Lint_cmt.load_units ~root
              ~rel_dir:(Filename.concat "lib" d)
              ~lib_name:d ~ml:(with_ext ".ml") ~mli:(with_ext ".mli")
            |> List.filter_map (fun (u : Lint_cmt.unit_info) ->
                   match (u.u_impl, u.u_ml) with
                   | Some impl, Some file ->
                       Some
                         {
                           Typed_rules.s_mod = u.u_module;
                           s_file = file;
                           s_mli = u.u_mli;
                           s_solver = List.mem d solver_dirs;
                           s_impl = impl;
                           s_intf = u.u_intf;
                         }
                   | _ -> None))
          dirs
      in
      let sources = load () in
      let build srcs =
        Callgraph.build
          (List.map
             (fun (s : Typed_rules.source) -> (s.Typed_rules.s_mod, s.s_impl))
             srcs)
      in
      let impls srcs =
        List.map
          (fun (s : Typed_rules.source) -> (s.Typed_rules.s_mod, s.s_impl))
          srcs
      in
      let g = build sources in
      let findings = Typed_rules.run g sources in
      let tnt = Taint.analyze g (impls sources) in
      Bench_util.row [ (16, "phase"); (14, "time") ];
      Bench_util.rule ();
      let phase name thunk =
        let ns =
          Bench_util.time_ns ~name (fun () ->
              ignore (Sys.opaque_identity (thunk ())))
        in
        Bench_util.row [ (16, name); (14, Bench_util.pp_ns ns) ];
        ns
      in
      let _ = phase "cmt_load" load in
      let _ = phase "graph_build" (fun () -> build sources) in
      let rules_ns = phase "rule_eval" (fun () -> Typed_rules.run g sources) in
      let taint_ns = phase "taint_analyze" (fun () -> Taint.analyze g (impls sources)) in
      let proto_ns =
        phase "protocol_eval" (fun () ->
            Protocol_rules.run
              ~rules:[ Lint_finding.R12; Lint_finding.R13; Lint_finding.R14 ]
              tnt g sources)
      in
      (* The gate metric is a ratio of two walks over the same typed
         trees, so machine speed cancels; it locks the taint pass to
         the same order of magnitude as the R1-R10 rules. *)
      record ~file:"BENCH_runtime.json" "lint_taint_vs_rules_ratio"
        ((taint_ns +. proto_ns) /. rules_ns);
      Printf.printf "  (%d modules, %d graph nodes, %d findings pre-filter)\n"
        (List.length sources) (Callgraph.size g) (List.length findings)

(* ------------------------------------------------------------------ *)
(* Job service: the fsync'd journal is on every submit/complete path, *)
(* and recovery time bounds how fast a crashed daemon is back up.     *)
(* ------------------------------------------------------------------ *)

let bench_wal_throughput () =
  Bench_util.header
    "service/wal_throughput — fsync'd append cost and replay rate of the \
     checksummed journal";
  Bench_util.row [ (10, "payload"); (16, "append+fsync"); (14, "replay/rec") ];
  Bench_util.rule ();
  List.iter
    (fun size ->
      let payload = String.make size 'j' in
      let path = Filename.temp_file "cqbench" ".wal" in
      let w = Wal.open_append path in
      let append_ns =
        Bench_util.time_ns ~name:"append" (fun () -> Wal.append w payload)
      in
      Wal.close w;
      (* a fixed 256-record log for the replay side *)
      Sys.remove path;
      let w = Wal.open_append path in
      for _ = 1 to 256 do
        Wal.append w payload
      done;
      Wal.close w;
      let replay_ns =
        Bench_util.time_ns ~name:"replay" (fun () ->
            let rep = Wal.replay path in
            if List.length rep.Wal.records <> 256 then
              failwith "bench: short replay")
      in
      Sys.remove path;
      (* Per-record costs at the small-payload point, where framing and
         fsync (not payload copying) dominate. *)
      if size = 64 then begin
        record ~file:"BENCH_service.json" "wal_append_ns" append_ns;
        record ~file:"BENCH_service.json" "wal_replay_ns_per_record"
          (replay_ns /. 256.0)
      end;
      Bench_util.row
        [
          (10, Printf.sprintf "%d B" size);
          (16, Bench_util.pp_ns append_ns);
          (14, Bench_util.pp_ns (replay_ns /. 256.0));
        ])
    [ 64; 1024; 16384 ]

let bench_service_recovery () =
  Bench_util.header
    "service/recovery_latency — WAL replay + state rebuild on daemon \
     restart, by journaled job count";
  Bench_util.row [ (10, "jobs"); (12, "events"); (14, "recovery") ];
  Bench_util.rule ();
  List.iter
    (fun njobs ->
      let wal = Filename.temp_file "cqbench" ".wal" in
      Sys.remove wal;
      let cfg =
        {
          Service.wal_path = wal;
          pool_size = 4;
          queue_capacity = njobs + 8;
          default_timeout = None;
          breaker_threshold = 1000;
          breaker_cooldown = 30.0;
          retries = 0;
          retry_backoff = 0.01;
          grace = 1.0;
        }
      in
      (* populate the journal with a full run of real jobs *)
      let svc = Service.start cfg in
      for _ = 1 to njobs do
        match
          Service.submit svc
            {
              Job.kind = Job.Selftest { spin = 50 };
              db_path = "";
              timeout = None;
              fuel = None;
            }
        with
        | Ok _ -> ()
        | Error _ -> failwith "bench: submit rejected"
      done;
      let deadline = Unix.gettimeofday () +. 120.0 in
      while (not (Service.idle svc)) && Unix.gettimeofday () < deadline do
        ignore (Service.step svc);
        match Unix.select (Service.wait_fds svc) [] [] 0.005 with
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      Service.close svc;
      let events = List.length (Wal.replay wal).Wal.records in
      let ns =
        Bench_util.time_ns ~name:"recovery" (fun () ->
            let svc = Service.start cfg in
            Service.close svc)
      in
      Sys.remove wal;
      if njobs = 512 then
        record ~file:"BENCH_service.json" "recovery_ns_per_job"
          (ns /. float_of_int njobs);
      Bench_util.row
        [
          (10, string_of_int njobs);
          (12, string_of_int events);
          (14, Bench_util.pp_ns ns);
        ])
    [ 32; 128; 512 ]

(* ------------------------------------------------------------------ *)
(* Serving tier: the neighborhood-keyed eval cache separates a cold   *)
(* evaluation from a warm lookup, and the daemon must sustain         *)
(* classification traffic with a bounded accepted-p99.                *)
(* ------------------------------------------------------------------ *)

let serving_n = 64
let serving_name i = Printf.sprintf "n%03d" i

(* Chain graph with R on every other node: both features of the bench
   model (a unary selector and a one-hop edge probe) do real work. *)
let serving_db () =
  let e i = Elem.sym (serving_name i) in
  let facts =
    List.concat
      (List.init serving_n (fun i ->
           (if i mod 2 = 0 then [ ("R", [ e i ]) ] else [])
           @ if i + 1 < serving_n then [ ("E", [ e i; e (i + 1) ]) ] else []))
  in
  List.fold_left
    (fun db i -> Db.add_entity (e i) db)
    (Db.of_list facts)
    (List.init serving_n Fun.id)

let serving_model =
  let x = Elem.sym "x" and y = Elem.sym "y" in
  Model_io.make
    [
      Cq.make ~free:x [ Fact.make_l "R" [ x ] ];
      Cq.make ~free:x [ Fact.make_l "E" [ x; y ] ];
    ]
    {
      Linsep.weights = [| Rat.of_int 1; Rat.of_int 1 |];
      threshold = Rat.of_int 0;
    }

(* Minimal one-line request/reply client for the daemon socket. *)
let serving_request sock line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX sock) with
      | exception Unix.Unix_error _ -> None
      | () ->
          let payload = Bytes.of_string (line ^ "\n") in
          let rec send off =
            if off < Bytes.length payload then
              send (off + Unix.write fd payload off (Bytes.length payload - off))
          in
          send 0;
          let buf = Buffer.create 128 in
          let chunk = Bytes.create 256 in
          let deadline = Unix.gettimeofday () +. 10.0 in
          let rec recv () =
            if Unix.gettimeofday () > deadline then None
            else
              match Unix.select [ fd ] [] [] 0.25 with
              | [], _, _ -> recv ()
              | _ -> (
                  match Unix.read fd chunk 0 (Bytes.length chunk) with
                  | 0 -> Some (Buffer.contents buf)
                  | n -> (
                      match Bytes.index_opt (Bytes.sub chunk 0 n) '\n' with
                      | Some i ->
                          Buffer.add_subbytes buf chunk 0 i;
                          Some (Buffer.contents buf)
                      | None ->
                          Buffer.add_subbytes buf chunk 0 n;
                          recv ())
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ())
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
          in
          recv ())

let serving_json_number json key =
  let needle = Printf.sprintf "\"%s\": " key in
  let lj = String.length json and ln = String.length needle in
  let rec find i =
    if i + ln > lj then failwith ("bench: no " ^ key ^ " in cqload output")
    else if String.sub json i ln = needle then i + ln
    else find (i + 1)
  in
  let start = find 0 in
  let stop = ref start in
  while
    !stop < lj
    && (match json.[!stop] with '0' .. '9' | '.' | '-' -> true | _ -> false)
  do
    incr stop
  done;
  float_of_string (String.sub json start (!stop - start))

(* The daemon + cqload leg, when the binaries were built alongside the
   bench. Returns (ns per accepted classification, accepted p99 ns). *)
let serving_daemon_load ~cqserved ~cqload =
  let sock = Printf.sprintf "/tmp/cqbench-%d.sock" (Unix.getpid ()) in
  let wal = Filename.temp_file "cqbench" ".wal" in
  let mdir = Filename.temp_file "cqbench" ".mstore" in
  Sys.remove mdir;
  let dbf = Filename.temp_file "cqbench" ".db" in
  let oc = open_out dbf in
  for i = 0 to serving_n - 1 do
    if i mod 2 = 0 then Printf.fprintf oc "R(%s)\n" (serving_name i);
    if i + 1 < serving_n then
      Printf.fprintf oc "E(%s,%s)\n" (serving_name i) (serving_name (i + 1))
  done;
  for i = 0 to serving_n - 1 do
    Printf.fprintf oc "?%s\n" (serving_name i)
  done;
  close_out oc;
  let mf = Filename.temp_file "cqbench" ".model" in
  Model_io.save mf serving_model;
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process cqserved
      [|
        "cqserved"; "-s"; sock; "-w"; wal; "--models"; mdir; "--eval-rate";
        "1e9"; "--eval-burst"; "1e9";
      |]
      Unix.stdin devnull Unix.stderr
  in
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ sock; wal; dbf; mf ];
      if Sys.file_exists mdir then begin
        Array.iter
          (fun f ->
            try Sys.remove (Filename.concat mdir f) with Sys_error _ -> ())
          (Sys.readdir mdir);
        try Unix.rmdir mdir with Unix.Unix_error _ -> ()
      end)
    (fun () ->
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec wait_up () =
        match serving_request sock "PING" with
        | Some "OK pong" -> ()
        | _ when Unix.gettimeofday () > deadline ->
            failwith "bench: daemon did not come up"
        | _ ->
            Unix.sleepf 0.05;
            wait_up ()
      in
      wait_up ();
      (match serving_request sock ("PUBLISH model=" ^ Job.enc_value mf) with
      | Some "OK v1" -> ()
      | r ->
          failwith
            ("bench: publish failed: " ^ Option.value r ~default:"no reply"));
      let one_run () =
        let out_r, out_w = Unix.pipe () in
        let pid_load =
          Unix.create_process cqload
            [|
              "cqload"; "-s"; sock; "--db"; dbf; "--workers"; "4";
              "--duration"; "1s"; "--json";
            |]
            Unix.stdin out_w Unix.stderr
        in
        Unix.close out_w;
        let buf = Buffer.create 512 in
        let chunk = Bytes.create 1024 in
        let rec slurp () =
          match Unix.read out_r chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              slurp ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> slurp ()
        in
        slurp ();
        Unix.close out_r;
        (match Unix.waitpid [] pid_load with
        | _, Unix.WEXITED 0 -> ()
        | _ -> failwith "bench: cqload failed");
        let json = Buffer.contents buf in
        let cps = serving_json_number json "classifications_per_sec" in
        let p99 = serving_json_number json "p99_ns" in
        if cps <= 0.0 then failwith "bench: cqload served nothing";
        (1e9 /. cps, p99)
      in
      (* Best of three: a single closed-loop p99 sample carries too
         much scheduler noise to hold a 20% gate; the floor across
         runs is the stable capability number. *)
      let runs = List.init 3 (fun _ -> one_run ()) in
      List.fold_left
        (fun (na, pa) (n, p) -> (Float.min na n, Float.min pa p))
        (List.hd runs) (List.tl runs))

(* In-process fallback: a closed loop over the same Serve pipeline,
   used when the daemon binaries were not built with the bench. *)
let serving_inprocess_load classify =
  let duration = 1.0 in
  let deadline = Unix.gettimeofday () +. duration in
  let served = ref 0 in
  let lat = ref [] in
  while Unix.gettimeofday () < deadline do
    let t0 = Unix.gettimeofday () in
    let s = classify () in
    lat := (Unix.gettimeofday () -. t0) :: !lat;
    served := !served + List.length s.Serve.sv_results
  done;
  let sorted = Array.of_list !lat in
  Array.sort compare sorted;
  let p99 =
    match Array.length sorted with
    | 0 -> 0.0
    | n -> sorted.(min (n - 1) (int_of_float (0.99 *. float_of_int n))) *. 1e9
  in
  (duration /. float_of_int (max 1 !served) *. 1e9, p99)

let bench_serving () =
  Bench_util.header
    "service/classify_serving — eval-cache cold vs warm path and \
     classification throughput under sustained load";
  let db = serving_db () in
  let entities = List.init serving_n (fun i -> Elem.sym (serving_name i)) in
  let dir = Filename.temp_file "cqbench" ".models" in
  Sys.remove dir;
  let store = Model_store.open_ ~dir in
  let cfg =
    { Serve.default_config with Serve.eval_rate = 1e12; eval_burst = 1e12 }
  in
  let sv = Serve.create ~config:cfg store in
  let classify () =
    match Serve.classify sv ~db_key:"bench" ~db entities with
    | Serve.Served s -> s
    | Serve.Shed _ | Serve.Failed _ -> failwith "bench: classify did not serve"
  in
  (* Cold path: each publish flips the serving version and empties the
     cache, so every timed batch evaluates all entities; the publish
     itself is outside the timed region. *)
  let rounds = 12 in
  let cold_total = ref 0.0 in
  for _ = 1 to rounds do
    ignore (Serve.publish sv serving_model);
    let t0 = Unix.gettimeofday () in
    let s = classify () in
    cold_total := !cold_total +. (Unix.gettimeofday () -. t0);
    if s.Serve.sv_cold <> serving_n then
      failwith "bench: cold round hit the cache"
  done;
  let cold_ns = !cold_total *. 1e9 /. float_of_int (rounds * serving_n) in
  (* Warm path: the same batch again, every lookup a hit. *)
  let warm_rounds = 200 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to warm_rounds do
    let s = classify () in
    if s.Serve.sv_hits <> serving_n then
      failwith "bench: warm round missed the cache"
  done;
  let warm_ns =
    (Unix.gettimeofday () -. t0)
    *. 1e9
    /. float_of_int (warm_rounds * serving_n)
  in
  record ~file:"BENCH_service.json" "classify_cold_ns" cold_ns;
  record ~file:"BENCH_service.json" "classify_warm_ns" warm_ns;
  let bin_dir =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin"
  in
  let cqserved = Filename.concat bin_dir "cqserved.exe" in
  let cqload = Filename.concat bin_dir "cqload.exe" in
  let (ns_per, p99), how =
    if Sys.file_exists cqserved && Sys.file_exists cqload then
      (serving_daemon_load ~cqserved ~cqload, "daemon + cqload")
    else (serving_inprocess_load classify, "in-process loop")
  in
  record ~file:"BENCH_service.json" "serve_ns_per_classification" ns_per;
  record ~file:"BENCH_service.json" "serve_accepted_p99_ns" p99;
  Bench_util.row [ (22, "path"); (16, "per entity") ];
  Bench_util.rule ();
  Bench_util.row [ (22, "cold eval"); (16, Bench_util.pp_ns cold_ns) ];
  Bench_util.row [ (22, "warm (cache hit)"); (16, Bench_util.pp_ns warm_ns) ];
  Bench_util.row
    [ (22, "under load (" ^ how ^ ")"); (16, Bench_util.pp_ns ns_per) ];
  Bench_util.row [ (22, "accepted p99"); (16, Bench_util.pp_ns p99) ];
  Printf.printf "  throughput under load: %.0f classifications/sec\n%!"
    (1e9 /. ns_per);
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Sharded solving: wall time of the CQ[3] candidate-column           *)
(* evaluation (a dense graph, so evaluation dominates the parent-side *)
(* feature enumeration) sequential vs fanned out over {2,4} fork      *)
(* workers, and the engine's recovery overhead when a worker is       *)
(* SIGKILLed mid-run. All metrics are wall times or ratios,           *)
(* lower-is-better: on a single-core host sharding can only add       *)
(* overhead and the gate bounds it; on a multicore host the sharded   *)
(* times drop below sequential and the gate still passes. Fork-heavy  *)
(* workloads are timed with best-of-N wall clocks rather than         *)
(* bechamel: forked children inside a timed thunk distort the OLS     *)
(* estimate. Trajectory: BENCH_shard.json.                            *)
(* ------------------------------------------------------------------ *)

let bench_shard_speedup () =
  Bench_util.header
    "shard/speedup_and_overhead — sequential vs sharded CQ[3] candidate \
     evaluation, and recovery overhead under an injected worker kill \
     (trajectory: BENCH_shard.json)";
  let t = random_graph_training ~seed:7 ~nodes:24 ~edges:240 in
  let wall_best n fn =
    let best = ref infinity in
    for _ = 1 to n do
      Runtime_state.reset_all ();
      let t0 = Unix.gettimeofday () in
      fn ();
      best := Float.min !best ((Unix.gettimeofday () -. t0) *. 1e9)
    done;
    !best
  in
  let sharded shards () =
    match
      Atoms_sep.pruned_features_sharded
        ~sharding:(Shardexec.plan ~shards ())
        ~m:3 t
    with
    | Ok stat -> ignore (Sys.opaque_identity stat)
    | Error _ -> assert false
  in
  let seq_ns =
    wall_best 3 (fun () ->
        ignore (Sys.opaque_identity (Atoms_sep.pruned_features ~m:3 t)))
  in
  let shards2_ns = wall_best 3 (sharded 2) in
  let shards4_ns = wall_best 3 (sharded 4) in
  Bench_util.row [ (14, "path"); (12, "wall"); (12, "speedup") ];
  Bench_util.rule ();
  List.iter
    (fun (name, ns) ->
      Bench_util.row
        [
          (14, name);
          (12, Bench_util.pp_ns ns);
          (12, Printf.sprintf "%.2fx" (seq_ns /. ns));
        ])
    [
      ("sequential", seq_ns); ("--shards 2", shards2_ns);
      ("--shards 4", shards4_ns);
    ];
  (* Recovery overhead: fixed-cost synthetic shards, once clean and
     once with the first spawned worker SIGKILLed immediately — the
     ratio isolates the engine's detect/requeue/escalate cost from
     the workload itself. *)
  let spin { Shardexec.lo; hi } =
    let acc = ref 0 in
    for i = lo to hi - 1 do
      let h = ref (i + 1) in
      for _ = 1 to 100_000 do
        h := !h * 48271 mod 0x7fffffff
      done;
      acc := !acc + !h
    done;
    !acc
  in
  let engine ?on_spawn () =
    match
      Shardexec.run
        ~plan:(Shardexec.plan ~shards:4 ())
        ?on_spawn ~n:64 ~compute:spin ~merge:( + ) ()
    with
    | Ok v -> ignore (Sys.opaque_identity v)
    | Error _ -> assert false
  in
  let clean_ns = wall_best 3 (fun () -> engine ()) in
  let killed_ns =
    wall_best 3 (fun () ->
        let killed = ref false in
        let on_spawn ~pid ~shard:_ =
          if not !killed then begin
            killed := true;
            Unix.kill pid Sys.sigkill
          end
        in
        engine ~on_spawn ())
  in
  let kill_recovery_ratio = killed_ns /. Float.max 1.0 clean_ns in
  Bench_util.rule ();
  Bench_util.row
    [
      (14, "recovery"); (12, Bench_util.pp_ns killed_ns);
      (12, Printf.sprintf "%.2fx clean" kill_recovery_ratio);
    ];
  let put = record ~file:"BENCH_shard.json" in
  put "seq_ns" seq_ns;
  put "shards2_ns" shards2_ns;
  put "shards4_ns" shards4_ns;
  put "kill_recovery_ratio" kill_recovery_ratio

(* ------------------------------------------------------------------ *)

(* Numeric separation tier vs the exact simplex, on planted/random/
   near-separable instance regimes. Besides the printed table this
   experiment persists a flat JSON trajectory (BENCH_linsep.json, or
   $BENCH_OUT) that CI diffs against the committed baseline with
   bench_gate: verdict agreement must be total, and speedup and
   certification rate must not regress by more than 20%. *)
let bench_linsep_numeric () =
  Bench_util.header
    "linsep/numeric_vs_exact — certified float-first separation tier vs \
     the exact rational simplex (trajectory: BENCH_linsep.json)";
  let shapes = [ (8, 48); (12, 64); (16, 80) ] in
  let seeds = [ 0; 1; 2 ] in
  let instances =
    List.concat_map
      (fun seed ->
        List.map
          (fun (dim, n) ->
            (seed, dim, n, Planted.linsep_instance ~seed ~dim ~n))
          shapes)
      seeds
  in
  (* Verdict agreement and certification counters, measured once
     outside the timing loops (time_ns resets the registry, and with
     it the nsep.stats counters, inside the timed thunk). *)
  Runtime_state.reset_all ();
  let agree = ref 0 in
  List.iter
    (fun (_seed, _dim, _n, ex) ->
      let exact = Linsep.is_separable ex in
      let numeric =
        match (Nsep.decide ~tier:Nsep.Numeric ex).Nsep.verdict with
        | Nsep.Sep _ -> true
        | Nsep.Unsep -> false
        | Nsep.Unknown _ -> assert false
      in
      if exact = numeric then incr agree)
    instances;
  let stats = Nsep.stats () in
  let total = List.length instances in
  let certified =
    stats.Nsep.certified_cg + stats.Nsep.certified_simplex
    + stats.Nsep.certified_precheck
  in
  let rate k = float_of_int k /. float_of_int (max 1 stats.Nsep.decided) in
  let certified_rate = rate certified in
  let escalation_rate = rate stats.Nsep.escalations in
  Bench_util.row
    [ (16, "instance"); (12, "exact"); (12, "numeric"); (10, "speedup") ];
  Bench_util.rule ();
  let exact_total = ref 0.0 and numeric_total = ref 0.0 in
  List.iter
    (fun (seed, dim, n, ex) ->
      let name = Printf.sprintf "s%d d%d n%d" seed dim n in
      let e =
        Bench_util.time_ns ~name:"exact" (fun () ->
            ignore (Sys.opaque_identity (Linsep.separable ex)))
      in
      let f =
        Bench_util.time_ns ~name:"numeric" (fun () ->
            ignore (Sys.opaque_identity (Nsep.decide ~tier:Nsep.Numeric ex)))
      in
      exact_total := !exact_total +. e;
      numeric_total := !numeric_total +. f;
      Bench_util.row
        [
          (16, name);
          (12, Bench_util.pp_ns e);
          (12, Bench_util.pp_ns f);
          (10, Printf.sprintf "%.1fx" (e /. f));
        ])
    instances;
  Bench_util.rule ();
  let speedup = !exact_total /. Float.max 1.0 !numeric_total in
  Bench_util.row
    [
      (16, "total");
      (12, Bench_util.pp_ns !exact_total);
      (12, Bench_util.pp_ns !numeric_total);
      (10, Printf.sprintf "%.1fx" speedup);
    ];
  Printf.printf "  agreement %d/%d, certified_rate %.2f, escalation_rate %.2f\n%!"
    !agree total certified_rate escalation_rate;
  let put = record ~file:"BENCH_linsep.json" in
  put "instances" (float_of_int total);
  put "agree" (float_of_int !agree);
  put "certified_rate" certified_rate;
  put "escalation_rate" escalation_rate;
  put "exact_ns_total" !exact_total;
  put "numeric_ns_total" !numeric_total;
  put "speedup" speedup

let experiments =
  [
    ("table1/cq_sep", bench_table1_cq_sep);
    ("table1/cq_sep_worst", bench_table1_cq_sep_worst_case);
    ("table1/cqm_sep", bench_table1_cqm_sep);
    ("table1/ghw_sep", bench_table1_ghw_sep);
    ("table1/cqm_sep_l", bench_table1_cqm_sep_l);
    ("table1/ghw_sep_l", bench_table1_ghw_sep_l);
    ("prop41/sweep_db", bench_prop41_sweep_db);
    ("prop41/sweep_arity", bench_prop41_sweep_arity);
    ("thm57/dimension", bench_thm57_dimension);
    ("thm57/feature_size", bench_thm57_feature_size);
    ("alg1/classify", bench_alg1_classify);
    ("alg2/apxsep", bench_alg2_apxsep);
    ("prop71/reduction", bench_prop71_reduction);
    ("qbe/product_growth", bench_qbe_product_growth);
    ("fo/sep", bench_fo_sep);
    ("prop69/vertex_cover", bench_prop69_vertex_cover);
    ("fok/game", bench_fok_game);
    ("eval/engines", bench_eval_engines);
    ("ablate/preorder", bench_ablate_preorder);
    ("ablate/hom", bench_ablate_hom_candidates);
    ("runtime/guard_overhead", bench_guard_overhead);
    ("runtime/isolate_overhead", bench_isolate_overhead);
    ("service/wal_throughput", bench_wal_throughput);
    ("service/recovery_latency", bench_service_recovery);
    ("service/classify_serving", bench_serving);
    ("shard/speedup_and_overhead", bench_shard_speedup);
    ("analysis/lint_typed", bench_lint_typed);
    ("linsep/numeric_vs_exact", bench_linsep_numeric);
  ]

let () =
  print_endline
    "cqfeat benchmark harness — PODS'19 \"Regularizing Conjunctive Features \
     for Classification\"";
  print_endline
    "Each experiment regenerates the complexity/size shape of a paper \
     claim; ids match DESIGN.md.";
  (* BENCH_ONLY=<substring>[,<substring>...] runs the experiments
     matching any of the comma-separated patterns. *)
  let selected =
    match Sys.getenv_opt "BENCH_ONLY" with
    | None -> experiments
    | Some pats ->
        let pats =
          List.filter (fun p -> p <> "") (String.split_on_char ',' pats)
        in
        let matches pat id =
          let li = String.length id and lp = String.length pat in
          let rec at i = i + lp <= li && (String.sub id i lp = pat || at (i + 1)) in
          at 0
        in
        List.filter
          (fun (id, _) -> List.exists (fun p -> matches p id) pats)
          experiments
  in
  List.iter (fun (_, bench) -> bench ()) selected;
  write_trajectories ();
  print_endline "\nAll experiments completed."
