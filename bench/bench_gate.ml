(* bench_gate [--init] [--max-regress PCT] BASELINE CURRENT —
   regression gate over the flat {"key": number, ...} JSON
   trajectories the bench harness writes.

   Default mode is the linsep/numeric_vs_exact gate (BENCH_linsep.json):
     - every instance's numeric verdict agreed with the exact solver;
     - total speedup over exact-only is at least 10x;
     - speedup and certification rate regressed by no more than 20%
       against the committed baseline.

   With --max-regress PCT the gate is generic and metric-agnostic:
   every key in the baseline must be present in the current run, and
   every metric is lower-is-better (times, per-record costs, overhead
   ratios — the shape of BENCH_runtime.json / BENCH_service.json), so
   current <= (1 + PCT/100) * baseline must hold for each.

   With --init, a missing BASELINE is not an error: the current
   trajectory is copied there as the fresh baseline and the gate
   passes — the bootstrap path for a newly added trajectory whose
   baseline has not been committed yet. When BASELINE exists, --init
   is a no-op and the gate runs normally.

   Exit 0 when all gates hold, 1 with one line per violation, 2 on
   unreadable/malformed input. The parser is deliberately minimal: it
   accepts exactly the flat shape the bench writes, which keeps this
   executable dependency-free. *)

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error msg -> die "bench_gate: %s" msg

(* Parse {"k": v, ...} with numeric values into an assoc list. *)
let parse_flat_json path s =
  let fail () = die "bench_gate: %s: not a flat numeric JSON object" path in
  let s = String.trim s in
  let len = String.length s in
  if len < 2 || s.[0] <> '{' || s.[len - 1] <> '}' then fail ();
  let body = String.trim (String.sub s 1 (len - 2)) in
  if body = "" then []
  else
    List.map
      (fun field ->
        match String.index_opt field ':' with
        | None -> fail ()
        | Some i ->
            let key = String.trim (String.sub field 0 i) in
            let klen = String.length key in
            if klen < 2 || key.[0] <> '"' || key.[klen - 1] <> '"' then fail ();
            let key = String.sub key 1 (klen - 2) in
            let value =
              String.trim
                (String.sub field (i + 1) (String.length field - i - 1))
            in
            (match float_of_string_opt value with
            | Some v -> (key, v)
            | None -> fail ()))
      (String.split_on_char ',' body)

let get path fields key =
  match List.assoc_opt key fields with
  | Some v -> v
  | None -> die "bench_gate: %s: missing field %S" path key

let usage () =
  die "usage: bench_gate [--init] [--max-regress PCT] BASELINE.json CURRENT.json"

let () =
  let rec parse init regress = function
    | "--init" :: rest -> parse true regress rest
    | "--max-regress" :: pct :: rest -> (
        match float_of_string_opt pct with
        | Some p when p >= 0.0 -> parse init (Some p) rest
        | _ -> die "bench_gate: --max-regress expects a non-negative number")
    | [ b; c ] -> (init, regress, b, c)
    | _ -> usage ()
  in
  let init, max_regress, baseline_path, current_path =
    parse false None (List.tl (Array.to_list Sys.argv))
  in
  if init && not (Sys.file_exists baseline_path) then begin
    (* Bootstrap: validate the current trajectory, then adopt it as
       the baseline verbatim. *)
    let body = read_file current_path in
    ignore (parse_flat_json current_path body);
    let oc = open_out_bin baseline_path in
    output_string oc body;
    close_out oc;
    Printf.printf "bench_gate: initialized baseline %s from %s\n" baseline_path
      current_path;
    exit 0
  end;
  let baseline = parse_flat_json baseline_path (read_file baseline_path) in
  let current = parse_flat_json current_path (read_file current_path) in
  let b key = get baseline_path baseline key in
  let c key = get current_path current key in
  let violations = ref [] in
  let check cond fmt =
    Printf.ksprintf
      (fun msg -> if not cond then violations := msg :: !violations)
      fmt
  in
  let ok fmt = Printf.printf fmt in
  (match max_regress with
  | Some pct ->
      (* Generic lower-is-better gate over every baseline metric. *)
      let allowed = 1.0 +. (pct /. 100.0) in
      List.iter
        (fun (key, bv) ->
          match List.assoc_opt key current with
          | None ->
              check false "current run is missing baseline metric %S" key
          | Some cv ->
              check
                (cv <= allowed *. bv)
                "%s regressed more than %g%%: %.4g vs baseline %.4g" key pct cv
                bv)
        baseline;
      if !violations = [] then
        ok "bench_gate: ok (%d metric(s) within %g%% of baseline)\n"
          (List.length baseline) pct
  | None ->
      check
        (c "agree" = c "instances")
        "verdict agreement %.0f/%.0f: the numeric tier disagreed with the \
         exact solver"
        (c "agree") (c "instances");
      check
        (c "speedup" >= 10.0)
        "speedup %.2fx below the 10x floor" (c "speedup");
      check
        (c "speedup" >= 0.8 *. b "speedup")
        "speedup regressed more than 20%%: %.2fx vs baseline %.2fx"
        (c "speedup") (b "speedup");
      check
        (c "certified_rate" >= 0.8 *. b "certified_rate")
        "certification rate regressed more than 20%%: %.2f vs baseline %.2f"
        (c "certified_rate") (b "certified_rate");
      if !violations = [] then
        ok
          "bench_gate: ok (speedup %.2fx, certified_rate %.2f, agreement \
           %.0f/%.0f)\n"
          (c "speedup") (c "certified_rate") (c "agree") (c "instances"));
  match !violations with
  | [] -> ()
  | vs ->
      List.iter (fun v -> Printf.eprintf "bench_gate: FAIL: %s\n" v) vs;
      exit 1
