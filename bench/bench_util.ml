(* Small wrapper around Bechamel: estimate the per-run execution time
   of a thunk by OLS over monotonic-clock samples, and print aligned
   result tables. *)

open Bechamel
open Toolkit

let cfg_with quota =
  Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None
    ~stabilize:false ()

let cfg = cfg_with 0.25

(* Estimated nanoseconds per run. A larger [quota] buys tighter
   estimates for comparisons that must resolve a few percent.

   The solver caches registered with Runtime_state memoize per-input
   work across calls; clear them inside the timed thunk so every
   iteration measures the cold path the experiments are about (the
   reset itself clears a few small tables — noise at the scales the
   benches resolve). *)
let time_ns ?quota ~name fn =
  let cfg = match quota with None -> cfg | Some q -> cfg_with q in
  let test =
    Test.make ~name
      (Staged.stage (fun () ->
           Runtime_state.reset_all ();
           fn ()))
  in
  let elt =
    match Test.elements test with
    | [ elt ] -> elt
    | _ -> assert false
  in
  let result = Benchmark.run cfg [ Instance.monotonic_clock ] elt in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let est = Analyze.one ols Instance.monotonic_clock result in
  match Analyze.OLS.estimates est with
  | Some [ t ] -> t
  | Some _ | None -> Float.nan

let pp_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns < 1e3 then Printf.sprintf "%.0f ns" ns
  else if ns < 1e6 then Printf.sprintf "%.1f us" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else Printf.sprintf "%.2f s" (ns /. 1e9)

let header title =
  Printf.printf "\n=== %s ===\n%!" title

let row cells =
  Printf.printf "  %s\n%!"
    (String.concat " | " (List.map (fun (w, s) -> Printf.sprintf "%-*s" w s) cells))

let rule () = Printf.printf "  %s\n%!" (String.make 66 '-')
