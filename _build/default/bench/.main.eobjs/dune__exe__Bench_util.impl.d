bench/bench_util.ml: Analyze Bechamel Benchmark Float Instance List Measure Printf Staged String Test Time Toolkit
