bench/main.mli:
