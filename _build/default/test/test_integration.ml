(* End-to-end integration tests across all libraries: the full
   train-then-classify workflows a user of the library would run. *)

open Test_util

let rat = Rat.of_ints

(* Molecule-style scenario: entities are "molecules" connected to
   "atoms" via HasAtom; a molecule is active iff it contains an atom
   bonded to a heavy atom. Planted CQ[2] labeling; generation must
   recover a separating statistic; classification must generalize to a
   fresh evaluation database with the same pattern. *)
let molecule_db ~tag ~actives ~inactives =
  let mol i = sym (Printf.sprintf "%smol%d" tag i) in
  let atom i j = sym (Printf.sprintf "%sa%d_%d" tag i j) in
  let facts = ref [] in
  let add f = facts := f :: !facts in
  for i = 0 to actives - 1 do
    add ("HasAtom", [ mol i; atom i 0 ]);
    add ("Bond", [ atom i 0; atom i 1 ]);
    add ("Heavy", [ atom i 1 ])
  done;
  for i = actives to actives + inactives - 1 do
    add ("HasAtom", [ mol i; atom i 0 ]);
    add ("Bond", [ atom i 0; atom i 1 ])
  done;
  let db = Db.of_list !facts in
  let db = ref db in
  for i = 0 to actives + inactives - 1 do
    db := Db.add_entity (mol i) !db
  done;
  (!db, List.init actives mol, List.init inactives (fun i -> mol (actives + i)))

let test_molecules_end_to_end () =
  let db, act, inact = molecule_db ~tag:"t" ~actives:3 ~inactives:2 in
  let t =
    Labeling.training db
      (Labeling.of_list
         (List.map (fun m -> (m, Labeling.Pos)) act
         @ List.map (fun m -> (m, Labeling.Neg)) inact))
  in
  let lang = Language.Cq_atoms { m = 3; p = None } in
  check bool_c "separable" true (Cqfeat.separable lang t);
  match Cqfeat.generate lang t with
  | None -> Alcotest.fail "generation"
  | Some (stat, c) ->
      check int_c "train errors" 0 (Statistic.errors stat c t);
      (* fresh evaluation molecules *)
      let eval_db, eact, einact = molecule_db ~tag:"e" ~actives:2 ~inactives:2 in
      let lab = Statistic.induced_labeling stat c eval_db in
      List.iter
        (fun m ->
          check bool_c "active classified +" true
            (Labeling.label_equal Labeling.Pos (Labeling.get m lab)))
        eact;
      List.iter
        (fun m ->
          check bool_c "inactive classified -" true
            (Labeling.label_equal Labeling.Neg (Labeling.get m lab)))
        einact

(* The same scenario via Algorithm 1 (GHW(1)), never materializing. *)
let test_molecules_alg1 () =
  let db, act, inact = molecule_db ~tag:"t" ~actives:2 ~inactives:2 in
  let t =
    Labeling.training db
      (Labeling.of_list
         (List.map (fun m -> (m, Labeling.Pos)) act
         @ List.map (fun m -> (m, Labeling.Neg)) inact))
  in
  check bool_c "GHW(1)-separable" true (Cqfeat.separable (Language.Ghw 1) t);
  let eval_db, eact, einact = molecule_db ~tag:"e" ~actives:1 ~inactives:1 in
  let lab = Cqfeat.classify (Language.Ghw 1) t eval_db in
  List.iter
    (fun m ->
      check bool_c "+ classified" true
        (Labeling.label_equal Labeling.Pos (Labeling.get m lab)))
    eact;
  List.iter
    (fun m ->
      check bool_c "- classified" true
        (Labeling.label_equal Labeling.Neg (Labeling.get m lab)))
    einact

(* Noisy planted labels: Algorithm 2 recovers the planted labeling. *)
let test_noise_recovery () =
  (* two ->_1 classes: starts of long paths vs starts of short paths,
     several copies of each so majority voting can undo one flip *)
  let base = Families.two_path_gadget 3 in
  let t = Families.copies base 3 in
  (* 6 entities: 3 positive (long), 3 negative (short) *)
  let noisy = Planted.flip_labels ~seed:11 ~count:1 t in
  let relab, d = Ghw_sep.apx_relabel ~k:1 noisy in
  check int_c "one disagreement with noisy" 1 d;
  check int_c "recovers clean labels" 0
    (Labeling.disagreement relab t.Labeling.labeling);
  check bool_c "apx separable at 1/6" true
    (Cqfeat.apx_separable ~eps:(rat 1 6) (Language.Ghw 1) noisy);
  check bool_c "not exactly separable" false
    (Cqfeat.separable (Language.Ghw 1) noisy)

(* Text format in, decisions out: the CLI pipeline in library form. *)
let test_textfmt_pipeline () =
  let source =
    "E(a,b)\nE(b,c)\nE(d,e)\n+a\n-d\n" in
  let t = Textfmt.training_of_document (Textfmt.parse_string source) in
  check bool_c "separable" true
    (Cqfeat.separable (Language.Cq_atoms { m = 2; p = None }) t);
  let eval_doc = Textfmt.parse_string "E(u,v)\nE(v,w)\n?u\n" in
  let lab =
    Cqfeat.classify (Language.Cq_atoms { m = 2; p = None }) t eval_doc.Textfmt.db
  in
  check bool_c "2-path start is positive" true
    (Labeling.label_equal Labeling.Pos (Labeling.get (sym "u") lab))

(* Cross-language agreement on a batch of random instances: all
   deciders agree with the semantic inclusion order. *)
let prop_language_lattice =
  QCheck.Test.make ~name:"deciders respect the language lattice" ~count:15
    (labeled_spec_arb ~max_nodes:3 ~max_edges:4) (fun ls ->
      let t = training_of_labeled ls in
      let cq1 = Cqfeat.separable (Language.Cq_atoms { m = 1; p = None }) t in
      let cq2 = Cqfeat.separable (Language.Cq_atoms { m = 2; p = None }) t in
      let g1 = Cqfeat.separable (Language.Ghw 1) t in
      let g2 = Cqfeat.separable (Language.Ghw 2) t in
      let cq = Cqfeat.separable Language.Cq_all t in
      let fo = Cqfeat.separable Language.Fo t in
      ((not cq1) || cq2)
      && ((not cq2) || cq)  (* CQ[2] features are CQs *)
      && ((not g1) || g2)   (* GHW(1) ⊆ GHW(2) *)
      && ((not g2) || cq)   (* GHW(2) ⊆ CQ *)
      && ((not cq) || fo)   (* CQ-indist. refines FO-indist. *)
      && ((not cq1) || g1)  (* one atom has ghw <= 1 *))

(* Unraveling-generated GHW features evaluate like the game on a fresh
   database (Prop 5.2 through the whole stack). *)
let test_unravel_transfers () =
  let t = Families.two_path_gadget 2 in
  match Cqfeat.generate ~ghw_depth:3 (Language.Ghw 1) t with
  | None -> Alcotest.fail "separable"
  | Some (stat, _) ->
      let eval_db = Families.path 4 in
      List.iter
        (fun q ->
          List.iter
            (fun f ->
              let by_hom = Cq.selects q eval_db f in
              let by_game =
                Cover_game.holds1 ~k:1 (Cq.canonical q, Cq.free q) (eval_db, f)
              in
              check bool_c "hom = game on feature" by_hom by_game)
            (Db.entities eval_db))
        stat

(* Ternary relations through the whole pipeline: enumeration, products,
   the cover game and the LP all handle higher arities generically. *)
let test_ternary_schema () =
  let t = sym "t" in
  let mk tag flagged =
    let e = sym tag in
    let a = sym (tag ^ "_a") and b = sym (tag ^ "_b") in
    let facts = [ ("Triple", [ e; a; b ]) ] in
    let facts = if flagged then ("Flag", [ a ]) :: facts else facts in
    (e, facts)
  in
  ignore t;
  let db, labeled =
    List.fold_left
      (fun (db, labeled) ((e, facts), l) ->
        let db =
          List.fold_left (fun d (r, args) -> Db.add (Fact.make_l r args) d)
            db facts
        in
        (Db.add_entity e db, (e, l) :: labeled))
      (Db.empty, [])
      [
        (mk "p1" true, Labeling.Pos);
        (mk "p2" true, Labeling.Pos);
        (mk "n1" false, Labeling.Neg);
        (mk "n2" false, Labeling.Neg);
      ]
  in
  let tr = Labeling.training db (Labeling.of_list labeled) in
  check bool_c "CQ[2]-separable over ternary" true
    (Cqfeat.separable (Language.Cq_atoms { m = 2; p = None }) tr);
  check bool_c "GHW(1)-separable over ternary" true
    (Cqfeat.separable (Language.Ghw 1) tr);
  check bool_c "CQ-separable over ternary" true
    (Cqfeat.separable Language.Cq_all tr);
  match Cqfeat.generate (Language.Cq_atoms { m = 2; p = None }) tr with
  | Some (stat, c) -> check int_c "errors" 0 (Statistic.errors stat c tr)
  | None -> Alcotest.fail "generation over ternary schema"

(* The class-DAG export has one node per class and only valid edges. *)
let test_dot_export () =
  let tr = Families.example_62 () in
  let ch = Ghw_sep.chain ~k:1 tr in
  let dot = Preorder_chain.to_dot ch in
  let count_sub sub s =
    let n = String.length s and m = String.length sub in
    let rec go i acc =
      if i + m > n then acc
      else if String.sub s i m = sub then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  check int_c "three class nodes" 3 (count_sub "label=" dot);
  check bool_c "valid digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph")

(* Saved models survive a full train/save/load/apply cycle across
   databases. *)
let test_model_lifecycle () =
  let train = Families.two_path_gadget 2 in
  match Cqfeat.generate (Language.Cq_atoms { m = 2; p = None }) train with
  | None -> Alcotest.fail "separable"
  | Some (stat, c) ->
      let file = Filename.temp_file "cqfeat" ".model" in
      Model_io.save file (Model_io.make stat c);
      let m = Model_io.load file in
      Sys.remove file;
      let eval = Families.two_path_gadget 2 in
      let predicted = Model_io.apply m eval.Labeling.db in
      check int_c "lifecycle labels agree" 0
        (Labeling.disagreement predicted eval.Labeling.labeling)

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "molecules CQ[m]" `Quick test_molecules_end_to_end;
          Alcotest.test_case "molecules Alg1" `Quick test_molecules_alg1;
          Alcotest.test_case "noise recovery" `Quick test_noise_recovery;
          Alcotest.test_case "textfmt pipeline" `Quick test_textfmt_pipeline;
          Alcotest.test_case "unravel transfers" `Quick test_unravel_transfers;
          qcheck prop_language_lattice;
          Alcotest.test_case "ternary schema" `Quick test_ternary_schema;
          Alcotest.test_case "dot export" `Quick test_dot_export;
          Alcotest.test_case "model lifecycle" `Quick test_model_lifecycle;
        ] );
    ]
