(* Tests for query-by-example. *)

open Test_util

let edge a b = ("E", [ sym a; sym b ])
let un r a = (r, [ sym a ])

let with_entities db = Elem.Set.fold Db.add_entity (Db.domain db) db

let test_unary_positive () =
  let db = with_entities (Db.of_list [ un "R" "a"; un "S" "a"; un "S" "c" ]) in
  let inst = Qbe.make db ~pos:[ sym "a" ] ~neg:[ sym "c" ] in
  check bool_c "decide" true (Qbe.cq_decide inst);
  (match Qbe.cq_explanation inst with
  | Some q -> check bool_c "explains" true (Qbe.is_explanation inst q)
  | None -> Alcotest.fail "explanation expected");
  (* b (no facts) cannot be separated from everything *)
  let inst2 = Qbe.make db ~pos:[ sym "c" ] ~neg:[ sym "a" ] in
  check bool_c "c vs a impossible" false (Qbe.cq_decide inst2)

let test_multi_positive_product () =
  (* a has R and S; c has S only; pos {a,c} forces the explanation to
     use S only, which excludes nothing -> neg {b} with no facts means
     explanation must not select b: S(x) works. *)
  let db = with_entities (Db.of_list [ un "R" "a"; un "S" "a"; un "S" "c" ]) in
  let b = sym "b" in
  let db = Db.add_entity b db in
  let inst = Qbe.make db ~pos:[ sym "a"; sym "c" ] ~neg:[ b ] in
  check bool_c "S(x) explains {a,c} vs b" true (Qbe.cq_decide inst);
  match Qbe.cq_explanation ~minimize:true inst with
  | Some q ->
      check bool_c "explains" true (Qbe.is_explanation inst q);
      (* the core keeps S(x) plus the disconnected witness
         eta(y),R(y),S(y) coming from the (a,a) product element *)
      check bool_c "small core" true (Cq.num_atoms q <= 4)
  | None -> Alcotest.fail "explanation expected"

let test_path_lengths () =
  (* entities: starts of paths with lengths 3 and 1; explanation
     "forward path of length >= 2" separates. *)
  let db =
    Db.of_list
      [ edge "a0" "a1"; edge "a1" "a2"; edge "a2" "a3"; edge "b0" "b1" ]
  in
  let db = Db.add_entity (sym "a0") (Db.add_entity (sym "b0") db) in
  let inst = Qbe.make db ~pos:[ sym "a0" ] ~neg:[ sym "b0" ] in
  check bool_c "cq decide" true (Qbe.cq_decide inst);
  check bool_c "ghw(1) decide" true (Qbe.ghw_decide ~k:1 inst);
  check bool_c "cq[2] decide" true (Qbe.cqm_decide ~m:2 inst);
  check bool_c "cq[1] cannot" false (Qbe.cqm_decide ~m:1 inst);
  match Qbe.cqm_explanation ~m:2 inst with
  | Some q -> check bool_c "cq[2] witness" true (Qbe.is_explanation inst q)
  | None -> Alcotest.fail "cq[2] explanation expected"

let test_ghw_vs_cq () =
  (* Symmetric cliques K4 and K3 (distinct components of one
     database). The entity a ∈ K4 is CQ-distinguishable from b ∈ K3
     (K4 has no homomorphism into K3), and the distinguishing query
     "x is on a K4" has an existential triangle, hence ghw 2. The
     1-cover game only ever constrains three elements at a time (an
     edge plus the pinned entity), which K3 satisfies — so GHW(1)
     features cannot separate: exactly the GHW(1) < GHW(2) < CQ
     hierarchy of the paper. *)
  let clique pfx n =
    List.concat
      (List.init n (fun i ->
           List.concat
             (List.init n (fun j ->
                  if i <> j then
                    [ edge (Printf.sprintf "%s%d" pfx i) (Printf.sprintf "%s%d" pfx j) ]
                  else []))))
  in
  let db = Db.of_list (clique "k" 4 @ clique "m" 3) in
  let a = sym "k0" and b = sym "m0" in
  let db = Db.add_entity a (Db.add_entity b db) in
  let inst = Qbe.make db ~pos:[ a ] ~neg:[ b ] in
  check bool_c "CQ separates K4 from K3" true (Qbe.cq_decide inst);
  check bool_c "GHW(1) cannot" false (Qbe.ghw_decide ~k:1 inst);
  check bool_c "GHW(2) can" true (Qbe.ghw_decide ~k:2 inst);
  (* the other direction is impossible even for CQ: K3 maps into K4 *)
  let inst2 = Qbe.make db ~pos:[ b ] ~neg:[ a ] in
  check bool_c "K3 vs K4 not even CQ" false (Qbe.cq_decide inst2)

let test_ghw_explanation () =
  let db =
    Db.of_list
      [ edge "a0" "a1"; edge "a1" "a2"; edge "a2" "a3"; edge "b0" "b1" ]
  in
  let db = Db.add_entity (sym "a0") (Db.add_entity (sym "b0") db) in
  let inst = Qbe.make db ~pos:[ sym "a0" ] ~neg:[ sym "b0" ] in
  (match Qbe.ghw_explanation ~k:1 ~depth:3 inst with
  | None -> Alcotest.fail "GHW(1) explanation exists"
  | Some q ->
      check bool_c "unraveling explains at depth 3" true
        (Qbe.is_explanation inst q));
  (* the exact width check only fits the small depth-1 unraveling
     (the bitset-backed ghw search caps at 62 existential variables) *)
  match Qbe.ghw_explanation ~k:1 ~depth:1 inst with
  | None -> Alcotest.fail "explanation exists"
  | Some q -> check bool_c "depth-1 unraveling has ghw <= 1" true
      (Cq_decomp.ghw_le q 1)

let test_validation () =
  let db = with_entities (Db.of_list [ un "R" "a" ]) in
  (match Qbe.make db ~pos:[] ~neg:[ sym "a" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty positives rejected");
  (match Qbe.make db ~pos:[ sym "z" ] ~neg:[] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-entity rejected");
  match Qbe.make db ~pos:[ sym "a" ] ~neg:[ sym "a" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overlap rejected"

(* Monotonicity: a CQ[m] explanation is a CQ explanation; a GHW(k)
   explanation exists whenever a CQ[m] one does with small m (since
   ghw <= atom count). *)
let prop_qbe_monotone =
  QCheck.Test.make ~name:"CQ[2] yes implies GHW(2) yes implies CQ yes"
    ~count:40
    (spec_arb ~max_nodes:4 ~max_edges:5)
    (fun s ->
      let db = db_of_spec s in
      let ents = Db.entities db in
      QCheck.assume (List.length ents >= 2);
      let pos = [ List.nth ents 0 ] and neg = [ List.nth ents 1 ] in
      let inst = Qbe.make db ~pos ~neg in
      let m2 = Qbe.cqm_decide ~m:2 inst in
      let g2 = Qbe.ghw_decide ~k:2 inst in
      let cq = Qbe.cq_decide inst in
      ((not m2) || g2) && ((not g2) || cq))

(* With k at least the number of facts in the positive product, the
   game equals homomorphism: GHW(k)-QBE = CQ-QBE. *)
let prop_qbe_large_k =
  QCheck.Test.make ~name:"GHW(k) = CQ for huge k" ~count:25
    (spec_arb ~max_nodes:3 ~max_edges:3)
    (fun s ->
      let db = db_of_spec s in
      let ents = Db.entities db in
      QCheck.assume (List.length ents >= 2);
      let pos = [ List.nth ents 0 ] and neg = [ List.nth ents 1 ] in
      let inst = Qbe.make db ~pos ~neg in
      let k = max 1 (Db.size db) in
      Qbe.ghw_decide ~k inst = Qbe.cq_decide inst)

(* The product explanation, when it exists, is verified directly. *)
let prop_explanation_verifies =
  QCheck.Test.make ~name:"product explanation verifies" ~count:30
    (spec_arb ~max_nodes:3 ~max_edges:4)
    (fun s ->
      let db = db_of_spec s in
      let ents = Db.entities db in
      QCheck.assume (List.length ents >= 3);
      let pos = [ List.nth ents 0; List.nth ents 1 ] in
      let neg = [ List.nth ents 2 ] in
      let inst = Qbe.make db ~pos ~neg in
      match Qbe.cq_explanation inst with
      | Some q -> Qbe.is_explanation inst q
      | None -> not (Qbe.cq_decide inst))

let () =
  Alcotest.run "qbe"
    [
      ( "qbe",
        [
          Alcotest.test_case "unary" `Quick test_unary_positive;
          Alcotest.test_case "product positives" `Quick test_multi_positive_product;
          Alcotest.test_case "path lengths" `Quick test_path_lengths;
          Alcotest.test_case "ghw vs cq" `Quick test_ghw_vs_cq;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "ghw explanation" `Quick test_ghw_explanation;
          qcheck prop_qbe_monotone;
          qcheck prop_qbe_large_k;
          qcheck prop_explanation_verifies;
        ] );
    ]
