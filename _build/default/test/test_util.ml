(* Shared helpers and qcheck generators for the test suites. *)

let sym = Elem.sym
let e i = Elem.sym (Printf.sprintf "e%d" i)

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

let qcheck = QCheck_alcotest.to_alcotest

(* --- random databases ----------------------------------------------- *)

(* A small random database over a unary relation U and a binary
   relation E, with every element an entity. Encoded as a pure value
   (lists of indices) so qcheck can shrink it. *)
type db_spec = {
  nodes : int;
  edges : (int * int) list;
  unary : int list;
}

let db_of_spec spec =
  let db =
    List.fold_left
      (fun db (a, b) -> Db.add (Fact.make_l "E" [ e a; e b ]) db)
      Db.empty spec.edges
  in
  let db =
    List.fold_left (fun db a -> Db.add (Fact.make_l "U" [ e a ]) db) db
      spec.unary
  in
  let rec ents db i =
    if i >= spec.nodes then db else ents (Db.add_entity (e i) db) (i + 1)
  in
  ents db 0

let spec_gen ~max_nodes ~max_edges =
  let open QCheck.Gen in
  int_range 1 max_nodes >>= fun nodes ->
  int_range 0 max_edges >>= fun ne ->
  list_size (return ne)
    (pair (int_range 0 (nodes - 1)) (int_range 0 (nodes - 1)))
  >>= fun edges ->
  list_size (int_range 0 nodes) (int_range 0 (nodes - 1)) >>= fun unary ->
  return { nodes; edges; unary }

let spec_print spec =
  Printf.sprintf "{nodes=%d; edges=[%s]; unary=[%s]}" spec.nodes
    (String.concat ";"
       (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) spec.edges))
    (String.concat ";" (List.map string_of_int spec.unary))

let spec_arb ~max_nodes ~max_edges =
  QCheck.make ~print:spec_print (spec_gen ~max_nodes ~max_edges)

(* A random labeling for a spec: a bitmask over nodes. *)
type labeled_spec = { spec : db_spec; mask : int }

let labeled_spec_arb ~max_nodes ~max_edges =
  let open QCheck.Gen in
  let gen =
    spec_gen ~max_nodes ~max_edges >>= fun spec ->
    int_range 0 ((1 lsl spec.nodes) - 1) >>= fun mask ->
    return { spec; mask }
  in
  QCheck.make
    ~print:(fun { spec; mask } ->
      Printf.sprintf "%s mask=%d" (spec_print spec) mask)
    gen

let training_of_labeled { spec; mask } =
  let db = db_of_spec spec in
  let labeled =
    List.init spec.nodes (fun i ->
        ( e i,
          if mask land (1 lsl i) <> 0 then Labeling.Pos else Labeling.Neg ))
  in
  Labeling.training db (Labeling.of_list labeled)

(* All labelings of a training database's entities (for brute-force
   optimality checks). *)
let all_labelings entities =
  let n = List.length entities in
  List.init (1 lsl n) (fun mask ->
      Labeling.of_list
        (List.mapi
           (fun i en ->
             ( en,
               if mask land (1 lsl i) <> 0 then Labeling.Pos
               else Labeling.Neg ))
           entities))
