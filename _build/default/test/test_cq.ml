(* Tests for conjunctive queries: evaluation, containment, cores,
   conjunction, enumeration and decompositions. *)

open Test_util

let q s = Cq_parse.parse s
let edge a b = ("E", [ sym a; sym b ])

let path_db n =
  let db =
    Db.of_list
      (List.init n (fun i ->
           edge (Printf.sprintf "v%d" i) (Printf.sprintf "v%d" (i + 1))))
  in
  List.fold_left
    (fun db i -> Db.add_entity (sym (Printf.sprintf "v%d" i)) db)
    db
    (List.init (n + 1) (fun i -> i))

(* --- evaluation ------------------------------------------------------ *)

let test_eval_path () =
  let db = path_db 4 in
  let q2 = q "x :- E(x,y), E(y,z)" in
  let sel = List.sort Elem.compare (Cq.eval q2 db) in
  Alcotest.(check (list string))
    "two forward steps" [ "v0"; "v1"; "v2" ]
    (List.map Elem.to_string sel)

let test_eval_empty_body () =
  let db = path_db 2 in
  Alcotest.(check int) "top selects all" 3 (List.length (Cq.eval Cq.top db))

let test_eval_disconnected () =
  (* q(x) :- U(z): selects every entity iff some U fact exists *)
  let qd = q "x :- U(z)" in
  let db = Db.add_entity (sym "a") (Db.of_list [ ("U", [ sym "b" ]) ]) in
  Alcotest.(check int) "selected" 1 (List.length (Cq.eval qd db));
  let db2 = Db.add_entity (sym "a") Db.empty in
  Alcotest.(check int) "none" 0 (List.length (Cq.eval qd db2))

let test_selects_requires_entity () =
  let db = Db.of_list [ edge "a" "b" ] in
  (* no eta facts: nothing selected *)
  let q1 = q "x :- E(x,y)" in
  Alcotest.(check bool) "a not entity" false (Cq.selects q1 db (sym "a"))

(* --- atoms / vars ----------------------------------------------------- *)

let test_counting () =
  let q3 = q "x :- E(x,y), E(y,z), U(x)" in
  Alcotest.(check int) "atoms" 3 (Cq.num_atoms q3);
  Alcotest.(check int) "vars" 3 (Elem.Set.cardinal (Cq.vars q3));
  Alcotest.(check int) "existential" 2
    (Elem.Set.cardinal (Cq.existential_vars q3));
  Alcotest.(check int) "max occurrences" 2 (Cq.max_var_occurrences q3)

(* --- containment ------------------------------------------------------ *)

let test_containment () =
  let q1 = q "x :- E(x,y), E(y,z)" in
  let q2 = q "x :- E(x,y)" in
  Alcotest.(check bool) "2-step ⊑ 1-step" true (Cq.contained_in q1 q2);
  Alcotest.(check bool) "1-step ⋢ 2-step" false (Cq.contained_in q2 q1);
  let q1' = q "x :- E(x,u), E(u,w)" in
  Alcotest.(check bool) "alpha-equivalent" true (Cq.equivalent q1 q1')

let test_containment_fold () =
  (* E(x,y),E(y,x) (2-cycle through x) is contained in E(x,x)? No:
     containment means canonical db of superset maps...
     q_loop(x) :- E(x,x) is contained in q_cyc(x) :- E(x,y),E(y,x)
     because folding y to x maps the cycle onto the loop. *)
  let q_loop = q "x :- E(x,x)" in
  let q_cyc = q "x :- E(x,y), E(y,x)" in
  Alcotest.(check bool) "loop ⊑ cycle" true (Cq.contained_in q_loop q_cyc);
  Alcotest.(check bool) "cycle ⋢ loop" false (Cq.contained_in q_cyc q_loop)

(* --- core ------------------------------------------------------------- *)

let test_core_redundant_atom () =
  (* E(x,y) ∧ E(x,z): z-branch is redundant *)
  let qr = q "x :- E(x,y), E(x,z)" in
  let c = Cq.core qr in
  Alcotest.(check int) "core atoms" 1 (Cq.num_atoms c);
  Alcotest.(check bool) "equivalent" true (Cq.equivalent qr c)

let test_core_keeps_needed () =
  let qn = q "x :- E(x,y), E(y,z)" in
  let c = Cq.core qn in
  Alcotest.(check int) "core keeps both" 2 (Cq.num_atoms c)

let prop_core_equivalent =
  QCheck.Test.make ~name:"core is equivalent and no larger" ~count:40
    (spec_arb ~max_nodes:3 ~max_edges:4)
    (fun s ->
      let db = db_of_spec s in
      QCheck.assume (Db.domain_size db > 0);
      let e0 = List.hd (Elem.Set.elements (Db.domain db)) in
      let qq = Cq.of_pointed_db (db, e0) in
      let c = Cq.core qq in
      Cq.equivalent qq c && Cq.num_atoms c <= Cq.num_atoms qq)

let prop_core_idempotent =
  QCheck.Test.make ~name:"core is idempotent" ~count:25
    (spec_arb ~max_nodes:3 ~max_edges:4)
    (fun s ->
      let db = db_of_spec s in
      QCheck.assume (Db.domain_size db > 0);
      let e0 = List.hd (Elem.Set.elements (Db.domain db)) in
      let c = Cq.core (Cq.of_pointed_db (db, e0)) in
      Cq.num_atoms (Cq.core c) = Cq.num_atoms c)

(* --- conjunction ------------------------------------------------------ *)

let prop_conjoin_semantics =
  QCheck.Test.make ~name:"conjoin selects iff both select" ~count:40
    (spec_arb ~max_nodes:4 ~max_edges:5)
    (fun s ->
      let db = db_of_spec s in
      let q1 = q "x :- E(x,y)" and q2 = q "x :- U(x)" in
      let qc = Cq.conjoin q1 q2 in
      List.for_all
        (fun en ->
          Cq.selects qc db en = (Cq.selects q1 db en && Cq.selects q2 db en))
        (Db.entities db))

let test_conjoin_all () =
  let qs = [ q "x :- E(x,y)"; q "x :- E(y,x)"; q "x :- U(x)" ] in
  let qc = Cq.conjoin_all qs in
  Alcotest.(check int) "atom count" 3 (Cq.num_atoms qc);
  match Cq.conjoin_all [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty conjoin_all must raise"

(* --- parse / print ---------------------------------------------------- *)

let test_parse_roundtrip () =
  let cases =
    [ "x :- E(x,y), E(y,z)"; "x :- true"; "x :- U(x), E(x,x)" ]
  in
  List.iter
    (fun s ->
      let q1 = q s in
      let q2 = q (Cq.to_string q1) in
      Alcotest.(check bool) (s ^ " roundtrip") true (Cq.equivalent q1 q2))
    cases;
  match Cq_parse.parse "E(x,y)" with
  | exception Cq_parse.Parse_error _ -> ()
  | _ -> Alcotest.fail "missing head must fail"

let test_iso_canonical () =
  let a = q "x :- E(x,y), E(y,z)" in
  let b = q "x :- E(x,u), E(u,v)" in
  let c = q "x :- E(x,y), E(z,y)" in
  Alcotest.(check string) "iso equal" (Cq.iso_canonical_string a)
    (Cq.iso_canonical_string b);
  Alcotest.(check bool) "distinct" true
    (Cq.iso_canonical_string a <> Cq.iso_canonical_string c)

(* --- enumeration ------------------------------------------------------ *)

let test_enum_counts_unary () =
  (* CQ[1] over {R/1}: top, R(x), R(y) *)
  Alcotest.(check int) "CQ[1] over R/1" 3
    (Cq_enum.count ~schema:[ ("R", 1) ] ~max_atoms:1 ());
  (* CQ[2] over {R/1}: plus R(x)R(y), R(y)R(z) *)
  Alcotest.(check int) "CQ[2] over R/1" 5
    (Cq_enum.count ~schema:[ ("R", 1) ] ~max_atoms:2 ())

let test_enum_counts_binary () =
  (* CQ[1] over {E/2}: top + E(x,x) E(x,y) E(y,x) E(y,y) E(y,z) *)
  Alcotest.(check int) "CQ[1] over E/2" 6
    (Cq_enum.count ~schema:[ ("E", 2) ] ~max_atoms:1 ())

let test_enum_var_occurrence_restriction () =
  (* CQ[1,1] over {E/2}: each variable at most once: E(x,y) with x used
     once... x also occurs in eta which is not counted; patterns E(y,z)
     and E(x,y) qualify; E(x,x), E(y,y) do not. *)
  let qs =
    Cq_enum.feature_queries ~max_var_occ:1 ~schema:[ ("E", 2) ] ~max_atoms:1 ()
  in
  Alcotest.(check int) "CQ[1,1] over E/2" 4 (List.length qs)

let test_enum_contains_disconnected () =
  let qs = Cq_enum.feature_queries ~schema:[ ("U", 1) ] ~max_atoms:1 () in
  Alcotest.(check bool) "has U(y)" true
    (List.exists (fun c -> Cq.equivalent c (q "x :- U(y)")) qs)

let prop_enum_within_bounds =
  QCheck.Test.make ~name:"enumerated queries respect m and p" ~count:10
    (QCheck.pair (QCheck.int_range 1 2) (QCheck.int_range 1 2))
    (fun (m, p) ->
      let qs =
        Cq_enum.feature_queries ~max_var_occ:p
          ~schema:[ ("E", 2); ("U", 1) ]
          ~max_atoms:m ()
      in
      List.for_all
        (fun c -> Cq.num_atoms c <= m && Cq.max_var_occurrences c <= p)
        qs)

let test_dedupe_equivalent () =
  let qs = [ q "x :- E(x,y)"; q "x :- E(x,u)"; q "x :- E(x,y), E(x,z)" ] in
  Alcotest.(check int) "dedupe" 1 (List.length (Cq_enum.dedupe_equivalent qs))

(* --- decompositions --------------------------------------------------- *)

let test_ghw_values () =
  Alcotest.(check int) "path" 1 (Cq_decomp.ghw (q "x :- E(x,y), E(y,z)"));
  Alcotest.(check int) "triangle detached" 2
    (Cq_decomp.ghw (q "x :- E(a,b), E(b,c), E(c,a)"));
  Alcotest.(check int) "triangle through x" 1
    (Cq_decomp.ghw (q "x :- E(x,b), E(b,c), E(c,x)"));
  Alcotest.(check int) "no existential vars" 0
    (Cq_decomp.ghw (q "x :- E(x,x)"));
  (* 4-cycle of existential vars: ghw 2 *)
  Alcotest.(check int) "C4" 2
    (Cq_decomp.ghw (q "x :- E(a,b), E(b,c), E(c,d), E(d,a)"))

let test_acyclicity () =
  Alcotest.(check bool) "path acyclic" true
    (Cq_decomp.is_free_acyclic (q "x :- E(x,y), E(y,z)"));
  Alcotest.(check bool) "triangle cyclic" false
    (Cq_decomp.is_free_acyclic (q "x :- E(a,b), E(b,c), E(c,a)"));
  Alcotest.(check bool) "triangle through x acyclic" true
    (Cq_decomp.is_free_acyclic (q "x :- E(x,b), E(b,c), E(c,x)"))

let prop_ghw_monotone =
  QCheck.Test.make ~name:"ghw_le monotone in k" ~count:20
    (spec_arb ~max_nodes:3 ~max_edges:4)
    (fun s ->
      let db = db_of_spec s in
      QCheck.assume (Db.domain_size db > 0 && Db.size db > 0);
      let e0 = List.hd (Elem.Set.elements (Db.domain db)) in
      let qq = Cq.of_pointed_db (db, e0) in
      let g = Cq_decomp.ghw qq in
      g <= max 1 (Cq.num_atoms qq)
      && (g = 0 || not (Cq_decomp.ghw_le qq (g - 1)))
      && Cq_decomp.ghw_le qq g
      && Cq_decomp.ghw_le qq (g + 1))

(* --- evaluation engines ------------------------------------------------ *)

let all_test_queries =
  lazy
    (Cq_enum.feature_queries ~schema:[ ("E", 2); ("U", 1) ] ~max_atoms:3 ())

let prop_engines_agree =
  QCheck.Test.make ~name:"hom, yannakakis and ghw engines agree" ~count:40
    (QCheck.pair (spec_arb ~max_nodes:4 ~max_edges:6) (QCheck.int_range 0 5000))
    (fun (s, qi) ->
      let db = db_of_spec s in
      let qs = Lazy.force all_test_queries in
      let qq = List.nth qs (qi mod List.length qs) in
      let reference =
        List.sort Elem.compare (Cq.eval qq db)
      in
      let via_engine =
        List.sort Elem.compare (Eval_engine.eval qq db)
      in
      let acyclic_ok =
        match Join_tree.build qq with
        | None -> true
        | Some _ ->
            List.sort Elem.compare (Join_tree.eval qq db) = reference
      in
      let ghw_ok =
        match Ghw_eval.eval ~k:2 qq db with
        | None -> true
        | Some res -> List.sort Elem.compare res = reference
      in
      via_engine = reference && acyclic_ok && ghw_ok)

let test_join_tree_shapes () =
  Alcotest.(check bool) "path query acyclic" true
    (Join_tree.is_acyclic (q "x :- E(x,y), E(y,z)"));
  Alcotest.(check bool) "triangle not acyclic" false
    (Join_tree.is_acyclic (q "x :- E(x,y), E(y,z), E(z,x)"));
  Alcotest.(check bool) "disconnected acyclic" true
    (Join_tree.is_acyclic (q "x :- U(y), E(z,w)"))

let test_yannakakis_eval () =
  let db = path_db 4 in
  let q2 = q "x :- E(x,y), E(y,z)" in
  Alcotest.(check (list string))
    "matches hom search"
    (List.map Elem.to_string (List.sort Elem.compare (Cq.eval q2 db)))
    (List.map Elem.to_string (List.sort Elem.compare (Join_tree.eval q2 db)))

let test_decomposition_witness () =
  let tri = q "x :- E(a,b), E(b,c), E(c,a)" in
  (match Cq_decomp.decomposition tri ~k:1 with
  | Some _ -> Alcotest.fail "triangle has no width-1 decomposition"
  | None -> ());
  match Cq_decomp.decomposition tri ~k:2 with
  | None -> Alcotest.fail "triangle has width 2"
  | Some forest ->
      Alcotest.(check bool) "valid decomposition" true
        (Cq_decomp.check_decomposition tri ~k:2 forest)

let prop_decomposition_always_valid =
  QCheck.Test.make ~name:"extracted decompositions verify" ~count:30
    (QCheck.int_range 0 5000)
    (fun qi ->
      let qs = Lazy.force all_test_queries in
      let qq = List.nth qs (qi mod List.length qs) in
      match Cq_decomp.decomposition qq ~k:1 with
      | Some forest -> Cq_decomp.check_decomposition qq ~k:1 forest
      | None -> Cq_decomp.ghw qq > 1)

let test_engine_planning () =
  let plan_name qq = Eval_engine.plan_kind_name (Eval_engine.plan qq) in
  Alcotest.(check string) "path planned acyclic" "yannakakis"
    (plan_name (q "x :- E(x,y), E(y,z)"));
  Alcotest.(check string) "triangle planned decomposed" "ghw-decomposition"
    (plan_name (q "x :- E(a,b), E(b,c), E(c,a)"))

let prop_engine_selects_agrees =
  QCheck.Test.make ~name:"Eval_engine.selects = Cq.selects" ~count:30
    (QCheck.pair (spec_arb ~max_nodes:4 ~max_edges:5) (QCheck.int_range 0 5000))
    (fun (s, qi) ->
      let db = db_of_spec s in
      QCheck.assume (Db.entities db <> []);
      let qs = Lazy.force all_test_queries in
      let qq = List.nth qs (qi mod List.length qs) in
      List.for_all
        (fun e -> Eval_engine.selects qq db e = Cq.selects qq db e)
        (Db.entities db))

let test_parse_errors () =
  let bad s =
    match Cq_parse.parse s with
    | exception Cq_parse.Parse_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ s)
  in
  bad "";
  bad "x :- E(x";
  bad "x : E(x,y)";
  bad "x :- E(x,y) E(y,z)";
  bad ":- E(x,y)"

let () =
  Alcotest.run "cq"
    [
      ( "eval",
        [
          Alcotest.test_case "path" `Quick test_eval_path;
          Alcotest.test_case "empty body" `Quick test_eval_empty_body;
          Alcotest.test_case "disconnected" `Quick test_eval_disconnected;
          Alcotest.test_case "entity required" `Quick test_selects_requires_entity;
          Alcotest.test_case "counting" `Quick test_counting;
        ] );
      ( "containment",
        [
          Alcotest.test_case "paths" `Quick test_containment;
          Alcotest.test_case "folding" `Quick test_containment_fold;
        ] );
      ( "core",
        [
          Alcotest.test_case "redundant atom" `Quick test_core_redundant_atom;
          Alcotest.test_case "keeps needed" `Quick test_core_keeps_needed;
          qcheck prop_core_equivalent;
          qcheck prop_core_idempotent;
        ] );
      ( "conjoin",
        [
          Alcotest.test_case "conjoin_all" `Quick test_conjoin_all;
          qcheck prop_conjoin_semantics;
        ] );
      ( "syntax",
        [
          Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "iso canonical" `Quick test_iso_canonical;
        ] );
      ( "enumeration",
        [
          Alcotest.test_case "counts unary" `Quick test_enum_counts_unary;
          Alcotest.test_case "counts binary" `Quick test_enum_counts_binary;
          Alcotest.test_case "var occurrences" `Quick test_enum_var_occurrence_restriction;
          Alcotest.test_case "disconnected atoms" `Quick test_enum_contains_disconnected;
          Alcotest.test_case "dedupe equivalent" `Quick test_dedupe_equivalent;
          qcheck prop_enum_within_bounds;
        ] );
      ( "decomposition",
        [
          Alcotest.test_case "ghw values" `Quick test_ghw_values;
          Alcotest.test_case "acyclicity" `Quick test_acyclicity;
          Alcotest.test_case "witness extraction" `Quick test_decomposition_witness;
          qcheck prop_ghw_monotone;
          qcheck prop_decomposition_always_valid;
        ] );
      ( "evaluation engines",
        [
          Alcotest.test_case "join tree shapes" `Quick test_join_tree_shapes;
          Alcotest.test_case "yannakakis" `Quick test_yannakakis_eval;
          Alcotest.test_case "planning" `Quick test_engine_planning;
          qcheck prop_engines_agree;
          qcheck prop_engine_selects_agrees;
        ] );
    ]
