test/test_workload.ml: Alcotest Cq_parse Cqfeat Db Families Gen_db Hom Labeling Language List Planted QCheck Test_util
