test/test_folang.mli:
