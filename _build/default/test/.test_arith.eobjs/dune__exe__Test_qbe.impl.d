test/test_qbe.ml: Alcotest Cq Cq_decomp Db Elem List Printf QCheck Qbe Test_util
