test/test_covergame.mli:
