test/test_covergame.ml: Alcotest Array Cover_game Cq Cq_decomp Cq_enum Db Families Hom List Printf QCheck Test_util Unravel
