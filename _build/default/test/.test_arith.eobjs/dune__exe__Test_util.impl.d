test/test_util.ml: Alcotest Db Elem Fact Labeling List Printf QCheck QCheck_alcotest String
