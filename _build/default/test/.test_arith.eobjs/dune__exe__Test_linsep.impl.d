test/test_linsep.ml: Alcotest Array Labeling Linsep List Printf QCheck Test_util
