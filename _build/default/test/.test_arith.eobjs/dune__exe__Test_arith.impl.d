test/test_arith.ml: Alcotest Bigint List QCheck Rat Test_util
