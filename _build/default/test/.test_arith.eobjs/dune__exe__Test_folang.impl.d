test/test_folang.ml: Alcotest Cq Cq_enum Cq_parse Cq_sep Db Elem Fact Families Fo_dimension Fo_formula Fo_generate Fo_sep Hom Labeling Lazy List Pebble_game Printf QCheck Struct_iso Test_util
