test/test_cq.ml: Alcotest Cq Cq_decomp Cq_enum Cq_parse Db Elem Eval_engine Ghw_eval Join_tree Lazy List Printf QCheck Test_util
