test/test_linsep.mli:
