test/test_qbe.mli:
