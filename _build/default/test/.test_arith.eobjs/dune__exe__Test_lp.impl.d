test/test_lp.ml: Alcotest Array List QCheck Rat Simplex Test_util
