test/test_relational.ml: Alcotest Db Elem Fact Hom Labeling List Printf Product QCheck Test_util Textfmt
