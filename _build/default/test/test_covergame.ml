(* Tests for the existential k-cover game and the unravelings. *)

open Test_util

let edge a b = ("E", [ sym a; sym b ])

let c3 = Db.of_list [ edge "a" "b"; edge "b" "c"; edge "c" "a" ]
let c2 = Db.of_list [ edge "u" "v"; edge "v" "u" ]

let path_db n =
  let db =
    Db.of_list
      (List.init n (fun i ->
           edge (Printf.sprintf "v%d" i) (Printf.sprintf "v%d" (i + 1))))
  in
  List.fold_left
    (fun db i -> Db.add_entity (sym (Printf.sprintf "v%d" i)) db)
    db
    (List.init (n + 1) (fun i -> i))

let test_cycles () =
  check bool_c "C3 ->_1 C2" true (Cover_game.boolean ~k:1 c3 c2);
  (* two facts of C3 already cover all three vertices *)
  check bool_c "C3 -/->_2 C2" false (Cover_game.boolean ~k:2 c3 c2);
  (* In C2 a single fact covers both vertices, so even one pebbled
     fact forces a genuine hom: C2 -/->_1 C3. *)
  check bool_c "C2 -/->_1 C3" false (Cover_game.boolean ~k:1 c2 c3);
  (* A long even cycle is locally path-like: C6 ->_1 C3 (and a real
     hom exists too by wrapping twice). *)
  let c6 =
    Db.of_list
      (List.init 6 (fun i ->
           edge (Printf.sprintf "w%d" i) (Printf.sprintf "w%d" ((i + 1) mod 6))))
  in
  check bool_c "C6 ->_1 C3" true (Cover_game.boolean ~k:1 c6 c3);
  check bool_c "C6 ->_1 C2" true (Cover_game.boolean ~k:1 c6 c2);
  (* An even cycle folds onto C2, so even the full-pebble game
     succeeds. *)
  check bool_c "C6 ->_6 C2" true (Cover_game.boolean ~k:6 c6 c2)

let test_paths_pointed () =
  let p = path_db 5 in
  let v i = sym (Printf.sprintf "v%d" i) in
  (* Spoiler walks the forward path: start vertices with longer
     forward paths do not ->_1 later vertices. *)
  check bool_c "v0 -/->_1 v1" false
    (Cover_game.holds1 ~k:1 (p, v 0) (p, v 1));
  (* v1 has an incoming edge, v0 does not. *)
  check bool_c "v1 -/->_1 v0" false
    (Cover_game.holds1 ~k:1 (p, v 1) (p, v 0));
  check bool_c "reflexive" true (Cover_game.holds1 ~k:1 (p, v 2) (p, v 2));
  (* On an infinite-looking middle the game cannot tell v2 from v3?
     both have in/out paths of length >= 2 but v2's forward path is
     longer; Spoiler wins by walking. *)
  check bool_c "v2 -/->_1 v3" false
    (Cover_game.holds1 ~k:1 (p, v 2) (p, v 3))

let test_loop_absorbs () =
  (* With a self-loop at the end, forward walks never fail: the loop
     absorbs. v0 has the longest forward path, so v0 ->_1 v_i for all
     i should hold iff every GHW(1) query at v0 holds at v_i; the
     in-path direction still distinguishes. *)
  let chain = Families.linear_chain 4 in
  let v i = sym (Printf.sprintf "v%d" i) in
  check bool_c "v2 ->_1 v1 fails (in-path)" false
    (Cover_game.holds1 ~k:1 (chain, v 2) (chain, v 1));
  check bool_c "v1 ->_1 v2" true
    (Cover_game.holds1 ~k:1 (chain, v 1) (chain, v 2))

let prop_hom_implies_game =
  QCheck.Test.make ~name:"-> implies ->_k" ~count:40
    (QCheck.pair (spec_arb ~max_nodes:3 ~max_edges:4)
       (spec_arb ~max_nodes:3 ~max_edges:4))
    (fun (sa, sb) ->
      let a = db_of_spec sa and b = db_of_spec sb in
      QCheck.assume (Hom.exists ~src:a ~dst:b ());
      Cover_game.boolean ~k:1 a b && Cover_game.boolean ~k:2 a b)

let prop_game_monotone_in_k =
  QCheck.Test.make ~name:"->_{k+1} implies ->_k" ~count:40
    (QCheck.pair (spec_arb ~max_nodes:3 ~max_edges:4)
       (spec_arb ~max_nodes:3 ~max_edges:4))
    (fun (sa, sb) ->
      let a = db_of_spec sa and b = db_of_spec sb in
      (not (Cover_game.boolean ~k:2 a b)) || Cover_game.boolean ~k:1 a b)

let prop_game_large_k_is_hom =
  QCheck.Test.make ~name:"->_k = -> when k covers everything" ~count:30
    (QCheck.pair (spec_arb ~max_nodes:3 ~max_edges:3)
       (spec_arb ~max_nodes:3 ~max_edges:3))
    (fun (sa, sb) ->
      let a = db_of_spec sa and b = db_of_spec sb in
      let k = max 1 (Db.size a) in
      Cover_game.boolean ~k a b = Hom.exists ~src:a ~dst:b ())

let prop_game_reflexive_transitive =
  QCheck.Test.make ~name:"->_k preorder on entities" ~count:25
    (spec_arb ~max_nodes:4 ~max_edges:5)
    (fun s ->
      let d = db_of_spec s in
      let ents = Db.entities d in
      QCheck.assume (ents <> []);
      let m = Cover_game.preorder ~k:1 d ents in
      let n = List.length ents in
      let ok = ref true in
      for i = 0 to n - 1 do
        if not m.(i).(i) then ok := false;
        for j = 0 to n - 1 do
          for l = 0 to n - 1 do
            if m.(i).(j) && m.(j).(l) && not m.(i).(l) then ok := false
          done
        done
      done;
      !ok)

let prop_preorder_matches_holds1 =
  QCheck.Test.make ~name:"preorder matrix = pairwise holds1" ~count:20
    (spec_arb ~max_nodes:3 ~max_edges:4)
    (fun s ->
      let d = db_of_spec s in
      let ents = Db.entities d in
      QCheck.assume (ents <> []);
      let m = Cover_game.preorder ~k:1 d ents in
      let arr = Array.of_list ents in
      let ok = ref true in
      Array.iteri
        (fun i ei ->
          Array.iteri
            (fun j ej ->
              if m.(i).(j) <> Cover_game.holds1 ~k:1 (d, ei) (d, ej) then
                ok := false)
            arr)
        arr;
      !ok)

(* Prop 5.2 (one direction made effective): for a query of ghw <= k,
   membership via homomorphism equals membership via the game on the
   canonical database. *)
let prop_52_eval_equals_game =
  QCheck.Test.make ~name:"Prop 5.2: eval = game for ghw<=k queries"
    ~count:25
    (QCheck.pair (spec_arb ~max_nodes:3 ~max_edges:4) (QCheck.int_range 0 20))
    (fun (s, qi) ->
      let db = db_of_spec s in
      QCheck.assume (Db.entities db <> []);
      let qs =
        Cq_enum.feature_queries ~schema:[ ("E", 2); ("U", 1) ] ~max_atoms:2 ()
      in
      let qq = List.nth qs (qi mod List.length qs) in
      let k = max 1 (Cq_decomp.ghw qq) in
      List.for_all
        (fun e ->
          Cq.selects qq db e
          = Cover_game.holds1 ~k (Cq.canonical qq, Cq.free qq) (db, e))
        (Db.entities db))

let test_equiv_classes () =
  (* On a cycle every vertex looks alike: one class. *)
  let c = Families.cycle 4 in
  Alcotest.(check int) "cycle classes" 1
    (List.length (Cover_game.equiv_classes ~k:1 c (Db.entities c)));
  (* On a path all vertices differ. *)
  let p = path_db 3 in
  Alcotest.(check int) "path classes" 4
    (List.length (Cover_game.equiv_classes ~k:1 p (Db.entities p)))

let test_invalid_k () =
  match Cover_game.holds1 ~k:0 (c3, sym "a") (c2, sym "u") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k=0 must be rejected"

(* --- unravelings ------------------------------------------------------ *)

let test_unravel_selects_origin () =
  let p = path_db 3 in
  let v i = sym (Printf.sprintf "v%d" i) in
  List.iter
    (fun depth ->
      let u = Unravel.unravel ~k:1 ~depth (p, v 1) in
      check bool_c
        (Printf.sprintf "origin selected at depth %d" depth)
        true (Cq.selects u p (v 1)))
    [ 0; 1; 2 ]

let test_unravel_ghw_bound () =
  let p = path_db 2 in
  let u = Unravel.unravel ~k:1 ~depth:1 (p, sym "v0") in
  check bool_c "unraveling has ghw <= 1" true (Cq_decomp.ghw_le u 1)

let test_unravel_matches_game () =
  (* On a short path with few covered sets, a modest depth suffices for
     the unraveling to characterize ->_1 between entities. *)
  let p = path_db 2 in
  let v i = sym (Printf.sprintf "v%d" i) in
  let q1, _depth = Unravel.stable_unravel ~k:1 ~max_depth:4 (p, v 1) in
  List.iter
    (fun j ->
      check bool_c
        (Printf.sprintf "q_v1 selects v%d iff v1 ->_1 v%d" j j)
        (Cover_game.holds1 ~k:1 (p, v 1) (p, v j))
        (Cq.selects q1 p (v j)))
    [ 0; 1; 2 ]

let test_node_count () =
  let p = path_db 2 in
  let n1 = Unravel.node_count ~k:1 ~depth:1 p in
  let n2 = Unravel.node_count ~k:1 ~depth:2 p in
  check bool_c "node count grows superlinearly" true (n2 > 2 * n1)

let prop_pruning_preserves_preorder =
  QCheck.Test.make
    ~name:"transitivity pruning does not change the preorder" ~count:15
    (spec_arb ~max_nodes:4 ~max_edges:5)
    (fun s ->
      let d = db_of_spec s in
      let ents = Db.entities d in
      QCheck.assume (ents <> []);
      Cover_game.preorder ~k:1 d ents
      = Cover_game.preorder ~transitive_pruning:false ~k:1 d ents)

let prop_unravel_monotone_depth =
  QCheck.Test.make
    ~name:"deeper unravelings are contained in shallower ones" ~count:10
    (spec_arb ~max_nodes:3 ~max_edges:3)
    (fun s ->
      let d = db_of_spec s in
      QCheck.assume (Db.entities d <> []);
      let e = List.hd (Db.entities d) in
      let q1 = Unravel.unravel ~k:1 ~depth:1 (d, e) in
      let q2 = Unravel.unravel ~k:1 ~depth:2 (d, e) in
      Cq.contained_in q2 q1)

let () =
  Alcotest.run "covergame"
    [
      ( "game",
        [
          Alcotest.test_case "cycles" `Quick test_cycles;
          Alcotest.test_case "paths pointed" `Quick test_paths_pointed;
          Alcotest.test_case "loop absorbs" `Quick test_loop_absorbs;
          Alcotest.test_case "equiv classes" `Quick test_equiv_classes;
          Alcotest.test_case "invalid k" `Quick test_invalid_k;
          qcheck prop_hom_implies_game;
          qcheck prop_game_monotone_in_k;
          qcheck prop_game_large_k_is_hom;
          qcheck prop_game_reflexive_transitive;
          qcheck prop_preorder_matches_holds1;
          qcheck prop_52_eval_equals_game;
          qcheck prop_pruning_preserves_preorder;
        ] );
      ( "unravel",
        [
          Alcotest.test_case "selects origin" `Quick test_unravel_selects_origin;
          Alcotest.test_case "ghw bound" `Quick test_unravel_ghw_bound;
          Alcotest.test_case "matches game" `Quick test_unravel_matches_game;
          Alcotest.test_case "node count" `Quick test_node_count;
          qcheck prop_unravel_monotone_depth;
        ] );
    ]
