(* Tests for the synthetic workload generators. *)

open Test_util

let test_random_db_deterministic () =
  let mk () =
    Gen_db.random_db ~seed:7 ~schema:[ ("E", 2); ("U", 1) ] ~domain_size:10
      ~facts_per_rel:15 ()
  in
  check bool_c "same seed same db" true (Db.equal (mk ()) (mk ()));
  let other =
    Gen_db.random_db ~seed:8 ~schema:[ ("E", 2); ("U", 1) ] ~domain_size:10
      ~facts_per_rel:15 ()
  in
  check bool_c "different seed different db" false (Db.equal (mk ()) other)

let test_random_training () =
  let t =
    Gen_db.random_training ~seed:3 ~schema:[ ("E", 2) ] ~domain_size:8
      ~facts_per_rel:10 ~entities:5 ()
  in
  check int_c "entities" 5 (List.length (Db.entities t.Labeling.db));
  check int_c "labels" 5 (Labeling.cardinal t.Labeling.labeling)

let test_random_graph () =
  let db = Gen_db.random_graph_db ~seed:1 ~nodes:6 ~edges:9 () in
  check int_c "entities" 6 (List.length (Db.entities db));
  check bool_c "has edges" true (List.length (Db.facts_of_rel "E" db) > 0)

let test_families_shapes () =
  (* 3 edges + 4 eta facts *)
  check int_c "path facts" 7 (Db.size (Families.path 3));
  check int_c "cycle entities" 5 (List.length (Db.entities (Families.cycle 5)));
  let g = Families.grid 3 2 in
  check int_c "grid entities" 6 (List.length (Db.entities g));
  (* 2*(3-1) horizontal? H: (w-1)*h = 4; V: w*(h-1) = 3 *)
  check int_c "grid H" 4 (List.length (Db.facts_of_rel "H" g));
  check int_c "grid V" 3 (List.length (Db.facts_of_rel "V" g));
  let chain = Families.linear_chain 4 in
  check int_c "chain edges" 4 (List.length (Db.facts_of_rel "E" chain));
  check int_c "chain entities" 4 (List.length (Db.entities chain))

let test_alternating () =
  let t = Families.alternating_labels (Families.path 3) in
  let pos = List.length (Labeling.positives t.Labeling.labeling) in
  let neg = List.length (Labeling.negatives t.Labeling.labeling) in
  check int_c "balanced" 2 pos;
  check int_c "balanced neg" 2 neg

let test_new_families () =
  let s = Families.star ~center_out:true 5 in
  check int_c "star entities" 6 (List.length (Db.entities s));
  check int_c "star edges" 5 (List.length (Db.facts_of_rel "E" s));
  let t = Families.binary_tree 3 in
  check int_c "tree entities" 15 (List.length (Db.entities t));
  check int_c "tree edges" 14 (List.length (Db.facts_of_rel "E" t));
  let b = Families.complete_bipartite 2 3 in
  check int_c "bipartite edges" 6 (List.length (Db.facts_of_rel "E" b));
  let k4 = Families.symmetric_clique 4 in
  check int_c "K4 edges" 12 (List.length (Db.facts_of_rel "E" k4));
  (* K4 does not map into K3, but K3 maps into K4 *)
  let k3 = Families.symmetric_clique 3 in
  check bool_c "K3 -> K4" true
    (Hom.exists ~src:(Db.without_rel Db.entity_rel k3)
       ~dst:(Db.without_rel Db.entity_rel k4) ());
  check bool_c "K4 -/-> K3" false
    (Hom.exists ~src:(Db.without_rel Db.entity_rel k4)
       ~dst:(Db.without_rel Db.entity_rel k3) ())

let test_copies () =
  let t = Families.example_62 () in
  let c = Families.copies t 3 in
  check int_c "entity count" 9 (List.length (Db.entities c.Labeling.db));
  (* copies are hom-equivalent: CQ-separability is preserved *)
  check bool_c "still separable" true (Cqfeat.separable Language.Cq_all c)

let test_planted () =
  let db = Families.path 4 in
  let q = Cq_parse.parse "x :- E(x,y), E(y,z)" in
  let t = Planted.label_by_query db q in
  check int_c "positives = selected" 3
    (List.length (Labeling.positives t.Labeling.labeling));
  (* planted labelings are separable by the planting language *)
  check bool_c "CQ[2]-separable" true
    (Cqfeat.separable (Language.Cq_atoms { m = 2; p = None }) t)

let test_flip_labels () =
  let t = Families.alternating_labels (Families.path 5) in
  let t' = Planted.flip_labels ~seed:5 ~count:2 t in
  check int_c "two flips" 2
    (Labeling.disagreement t.Labeling.labeling t'.Labeling.labeling);
  let again = Planted.flip_labels ~seed:5 ~count:2 t in
  check bool_c "deterministic" true
    (Labeling.equal t'.Labeling.labeling again.Labeling.labeling)

let test_accuracy () =
  let t = Families.alternating_labels (Families.path 3) in
  check bool_c "self accuracy 1" true
    (Planted.accuracy ~truth:t t.Labeling.labeling = 1.0);
  let flipped = Planted.flip_labels ~seed:1 ~count:4 t in
  check bool_c "all flipped accuracy 0" true
    (Planted.accuracy ~truth:t flipped.Labeling.labeling = 0.0)

let prop_flip_count_bounds =
  QCheck.Test.make ~name:"flip count respected" ~count:40
    (QCheck.pair (QCheck.int_range 1 6) (QCheck.int_range 0 8))
    (fun (n, c) ->
      let t = Families.alternating_labels (Families.path n) in
      let t' = Planted.flip_labels ~seed:13 ~count:c t in
      Labeling.disagreement t.Labeling.labeling t'.Labeling.labeling
      = min c (n + 1))

let () =
  Alcotest.run "workload"
    [
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick test_random_db_deterministic;
          Alcotest.test_case "training" `Quick test_random_training;
          Alcotest.test_case "graph" `Quick test_random_graph;
        ] );
      ( "families",
        [
          Alcotest.test_case "shapes" `Quick test_families_shapes;
          Alcotest.test_case "alternating" `Quick test_alternating;
          Alcotest.test_case "copies" `Quick test_copies;
          Alcotest.test_case "new families" `Quick test_new_families;
        ] );
      ( "planted",
        [
          Alcotest.test_case "label by query" `Quick test_planted;
          Alcotest.test_case "flip labels" `Quick test_flip_labels;
          Alcotest.test_case "accuracy" `Quick test_accuracy;
          qcheck prop_flip_count_bounds;
        ] );
    ]
