(* Tests for linear separability of ±1 training collections. *)

open Test_util

let ex v l = { Linsep.vec = Array.of_list v; label = l }
let pos = Labeling.Pos
let neg = Labeling.Neg

let test_and_or () =
  let and_data =
    [ ex [ 1; 1 ] pos; ex [ 1; -1 ] neg; ex [ -1; 1 ] neg; ex [ -1; -1 ] neg ]
  in
  (match Linsep.separable and_data with
  | Some c -> check int_c "AND errors" 0 (Linsep.errors c and_data)
  | None -> Alcotest.fail "AND must be separable");
  let or_data =
    [ ex [ 1; 1 ] pos; ex [ 1; -1 ] pos; ex [ -1; 1 ] pos; ex [ -1; -1 ] neg ]
  in
  check bool_c "OR separable" true (Linsep.is_separable or_data)

let test_xor () =
  let xor =
    [ ex [ 1; 1 ] pos; ex [ -1; -1 ] pos; ex [ 1; -1 ] neg; ex [ -1; 1 ] neg ]
  in
  check bool_c "XOR not separable" false (Linsep.is_separable xor);
  check bool_c "XOR is consistent" true (Linsep.separable_iff_consistent xor);
  match Linsep.min_errors_exact xor with
  | Some (e, c) ->
      check int_c "XOR min errors" 1 e;
      check int_c "witness verifies" 1 (Linsep.errors c xor)
  | None -> Alcotest.fail "XOR min errors must exist"

let test_inconsistent () =
  let data = [ ex [ 1 ] pos; ex [ 1 ] neg; ex [ 1 ] neg ] in
  check bool_c "not consistent" false (Linsep.separable_iff_consistent data);
  check bool_c "not separable" false (Linsep.is_separable data);
  check int_c "lower bound" 1 (Linsep.consistency_lower_bound data);
  match Linsep.min_errors_exact data with
  | Some (e, _) -> check int_c "min errors = minority" 1 e
  | None -> Alcotest.fail "must exist"

let test_empty_and_trivial () =
  check bool_c "empty separable" true (Linsep.is_separable []);
  check bool_c "single example" true (Linsep.is_separable [ ex [ 1; -1 ] pos ]);
  check bool_c "all same label" true
    (Linsep.is_separable [ ex [ 1 ] pos; ex [ -1 ] pos ])

(* Random data labeled by a random hyperplane must be separable, and
   the returned classifier must have zero error. *)
let labeled_by_plane =
  let open QCheck.Gen in
  let gen =
    int_range 1 4 >>= fun dim ->
    int_range 1 10 >>= fun n ->
    list_size (return dim) (int_range (-3) 3) >>= fun w ->
    int_range (-2) 2 >>= fun w0 ->
    list_size (return n)
      (list_size (return dim) (oneofl [ 1; -1 ]))
    >>= fun vecs -> return (w, w0, vecs)
  in
  QCheck.make gen

let prop_plane_labeled_separable =
  QCheck.Test.make ~name:"hyperplane-labeled data separable with 0 errors"
    ~count:200 labeled_by_plane (fun (w, w0, vecs) ->
      let examples =
        List.map
          (fun v ->
            let s = List.fold_left2 (fun acc a b -> acc + (a * b)) 0 w v in
            ex v (if s >= w0 then pos else neg))
          vecs
      in
      match Linsep.separable examples with
      | Some c -> Linsep.errors c examples = 0
      | None -> false)

let prop_min_errors_bounds =
  QCheck.Test.make ~name:"lower bound <= exact <= greedy" ~count:60
    labeled_by_plane (fun (_, _, vecs) ->
      (* adversarial labels: alternate *)
      let examples =
        List.mapi (fun i v -> ex v (if i mod 2 = 0 then pos else neg)) vecs
      in
      let lb = Linsep.consistency_lower_bound examples in
      let greedy, _ = Linsep.min_errors_greedy examples in
      match Linsep.min_errors_exact examples with
      | Some (exact, c) ->
          lb <= exact && exact <= greedy
          && Linsep.errors c examples = exact
      | None -> false)

let prop_perceptron_on_separable =
  QCheck.Test.make ~name:"perceptron converges on separable data"
    ~count:100 labeled_by_plane (fun (w, w0, vecs) ->
      let examples =
        List.map
          (fun v ->
            let s = List.fold_left2 (fun acc a b -> acc + (a * b)) 0 w v in
            ex v (if s >= w0 then pos else neg))
          vecs
      in
      let c, converged = Linsep.perceptron ~max_epochs:2000 examples in
      (not converged) || Linsep.errors c examples = 0)

(* --- chain classifier ------------------------------------------------- *)

(* Random chain structures: a random preorder refinement of the
   identity, encoded as "below j i iff j <= i and bit (i,j) set" plus
   reflexivity and downward closure to keep it a valid topologically-
   sorted preorder reduct. For the classifier only the labels matter;
   vectors come from chain_vector. *)
let prop_chain_classifier_correct =
  QCheck.Test.make ~name:"chain classifier classifies every class"
    ~count:200
    (QCheck.pair (QCheck.int_range 1 8) (QCheck.int_range 0 255))
    (fun (m, mask) ->
      let labels =
        Array.init m (fun i -> if mask land (1 lsl i) <> 0 then pos else neg)
      in
      (* below j i: transitive chain prefix — here a simple linear
         order restricted by a second mask bit pattern *)
      let below j i = j = i || (j < i && (mask lsr (j + i)) land 1 = 0) in
      let c = Linsep.chain_classifier ~labels ~below in
      Array.to_list
        (Array.mapi
           (fun i lab ->
             let v = Linsep.chain_vector ~below ~m i in
             Labeling.label_equal (Linsep.classify c v) lab)
           labels)
      |> List.for_all (fun b -> b))

let test_chain_rejects_nontopological () =
  match
    Linsep.chain_classifier
      ~labels:[| pos; neg |]
      ~below:(fun j i -> j >= i)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-topological order must be rejected"

let test_chain_large_is_exact () =
  (* 40 classes: weights overflow floats; exact bigint arithmetic must
     still classify correctly. *)
  let m = 40 in
  let labels = Array.init m (fun i -> if i mod 3 = 0 then pos else neg) in
  let below j i = j <= i in
  let c = Linsep.chain_classifier ~labels ~below in
  Array.iteri
    (fun i lab ->
      let v = Linsep.chain_vector ~below ~m i in
      check bool_c
        (Printf.sprintf "class %d" i)
        true
        (Labeling.label_equal (Linsep.classify c v) lab))
    labels

let () =
  Alcotest.run "linsep"
    [
      ( "separability",
        [
          Alcotest.test_case "and/or" `Quick test_and_or;
          Alcotest.test_case "xor" `Quick test_xor;
          Alcotest.test_case "inconsistent" `Quick test_inconsistent;
          Alcotest.test_case "trivial" `Quick test_empty_and_trivial;
          qcheck prop_plane_labeled_separable;
          qcheck prop_min_errors_bounds;
          qcheck prop_perceptron_on_separable;
        ] );
      ( "chain",
        [
          Alcotest.test_case "rejects non-topological" `Quick
            test_chain_rejects_nontopological;
          Alcotest.test_case "large exact" `Quick test_chain_large_is_exact;
          qcheck prop_chain_classifier_correct;
        ] );
    ]
