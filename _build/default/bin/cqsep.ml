(* cqsep — command-line interface to the separability library.

   Databases are given in the text format of {!Textfmt}:
     R(a, b)      facts
     +a  -b  ?c   positive / negative / unlabeled entities

   Subcommands: info, sep, generate, classify. *)

let read_training path =
  Textfmt.training_of_document (Textfmt.parse_file path)

let read_db path = (Textfmt.parse_file path).Textfmt.db

(* --- argument converters -------------------------------------------- *)

let lang_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  let fail () =
    Error
      (`Msg
        (Printf.sprintf
           "unknown language %S (expected cq, cq[m], cq[m,p], ghw(k), fo, \
            foK, epfo)"
           s))
  in
  if s = "cq" then Ok Language.Cq_all
  else if s = "fo" then Ok Language.Fo
  else if s = "epfo" then Ok Language.Epfo
  else if String.length s > 2 && String.sub s 0 2 = "fo" then begin
    match int_of_string_opt (String.sub s 2 (String.length s - 2)) with
    | Some k when k >= 1 -> Ok (Language.Fo_k k)
    | _ ->
        Error
          (`Msg (Printf.sprintf "bad FO_k language %S (expected e.g. fo2)" s))
  end
  else begin
    try
      if String.length s > 3 && String.sub s 0 3 = "cq[" then begin
        let body = String.sub s 3 (String.length s - 4) in
        match String.split_on_char ',' body with
        | [ m ] -> Ok (Language.Cq_atoms { m = int_of_string m; p = None })
        | [ m; p ] ->
            Ok
              (Language.Cq_atoms
                 { m = int_of_string m; p = Some (int_of_string p) })
        | _ -> fail ()
      end
      else if String.length s > 4 && String.sub s 0 4 = "ghw(" then begin
        let body = String.sub s 4 (String.length s - 5) in
        Ok (Language.Ghw (int_of_string body))
      end
      else fail ()
    with _ -> fail ()
  end

let lang_conv =
  let printer fmt l = Language.pp fmt l in
  Cmdliner.Arg.conv (lang_of_string, printer)

let rat_of_string s =
  try
    match String.split_on_char '/' (String.trim s) with
    | [ n ] -> Ok (Rat.of_int (int_of_string n))
    | [ n; d ] -> Ok (Rat.of_ints (int_of_string n) (int_of_string d))
    | _ -> Error (`Msg "expected a rational like 1/4")
  with _ -> Error (`Msg "expected a rational like 1/4")

let rat_conv = Cmdliner.Arg.conv (rat_of_string, fun fmt r -> Rat.pp fmt r)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Log decisions of the core library.")

let lang_arg =
  Arg.(
    value
    & opt lang_conv (Language.Cq_atoms { m = 2; p = None })
    & info [ "l"; "lang" ] ~docv:"LANG"
        ~doc:
          "Feature language: cq, cq[m], cq[m,p], ghw(k), fo, foK (e.g. \
           fo2) or epfo (default cq[2]).")

let dim_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "d"; "dim" ] ~docv:"N"
        ~doc:"Bound the statistic dimension (L-Sep[N]).")

let eps_arg =
  Arg.(
    value
    & opt (some rat_conv) None
    & info [ "e"; "eps" ] ~docv:"EPS"
        ~doc:"Allowed misclassified fraction, e.g. 1/4 (L-ApxSep).")

let depth_arg =
  Arg.(
    value & opt int 2
    & info [ "ghw-depth" ] ~docv:"N"
        ~doc:"Unraveling depth for GHW feature generation (default 2).")

let train_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRAIN" ~doc:"Training database file.")

(* --- subcommands ------------------------------------------------------ *)

let info_cmd =
  let run path =
    let doc = Textfmt.parse_file path in
    let db = doc.Textfmt.db in
    Printf.printf "facts:     %d\n" (Db.size db);
    Printf.printf "domain:    %d\n" (Db.domain_size db);
    Printf.printf "entities:  %d (%d labeled)\n"
      (List.length (Db.entities db))
      (Labeling.cardinal doc.Textfmt.labeling);
    Printf.printf "max arity: %d\n" (Db.max_arity db);
    print_endline "relations:";
    List.iter
      (fun (r, ar) ->
        Printf.printf "  %s/%d: %d facts\n" r ar
          (List.length (Db.facts_of_rel r db)))
      (List.sort compare (Db.relations db))
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Describe a database file.")
    Term.(const run $ train_arg)

let sep_cmd =
  let run path lang dim eps verbose =
    setup_logs verbose;
    let t = read_training path in
    let answer =
      match eps with
      | None -> Cqfeat.separable ?dim lang t
      | Some eps -> Cqfeat.apx_separable ?dim ~eps lang t
    in
    Printf.printf "%s%s%s-separable: %b\n" (Language.to_string lang)
      (match dim with Some d -> Printf.sprintf " dim<=%d" d | None -> "")
      (match eps with
      | Some e -> Printf.sprintf " eps=%s" (Rat.to_string e)
      | None -> "")
      answer;
    if answer then exit 0 else exit 1
  in
  Cmd.v
    (Cmd.info "sep"
       ~doc:"Decide separability of a labeled training database.")
    Term.(const run $ train_arg $ lang_arg $ dim_arg $ eps_arg $ verbose_arg)

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Also save the generated model to FILE (see the apply command).")

let generate_cmd =
  let run path lang depth dim out =
    let t = read_training path in
    match Cqfeat.generate ~ghw_depth:depth ?dim lang t with
    | None ->
        print_endline "not separable: no statistic exists";
        exit 1
    | Some (stat, classifier) ->
        (match out with
        | Some file -> Model_io.save file (Model_io.make stat classifier)
        | None -> ());
        Printf.printf "# statistic with %d features\n"
          (Statistic.dimension stat);
        List.iteri
          (fun i q -> Printf.printf "q%d: %s\n" (i + 1) (Cq.to_string q))
          stat;
        Printf.printf "# classifier: Lambda(b) = 1 iff sum w_i b_i >= w0\n";
        Printf.printf "w0: %s\n" (Rat.to_string classifier.Linsep.threshold);
        Array.iteri
          (fun i w -> Printf.printf "w%d: %s\n" (i + 1) (Rat.to_string w))
          classifier.Linsep.weights;
        Printf.printf "# training errors: %d\n"
          (Statistic.errors stat classifier t)
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Generate a separating statistic and linear classifier.")
    Term.(const run $ train_arg $ lang_arg $ depth_arg $ dim_arg $ out_arg)

let apply_cmd =
  let model_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"MODEL" ~doc:"Model file saved by generate --out.")
  in
  let db_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"DB" ~doc:"Database whose entities to label.")
  in
  let run model_path db_path =
    let model = Model_io.load model_path in
    let db = read_db db_path in
    List.iter
      (fun (e, l) ->
        Printf.printf "%s%s
"
          (match l with Labeling.Pos -> "+" | Labeling.Neg -> "-")
          (Elem.to_string e))
      (Labeling.bindings (Model_io.apply model db))
  in
  Cmd.v
    (Cmd.info "apply"
       ~doc:"Label a database with a previously saved model (no retraining).")
    Term.(const run $ model_arg $ db_arg)

let mindim_cmd =
  let max_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max" ] ~docv:"N" ~doc:"Search dimensions up to N.")
  in
  let run path lang max_dim =
    let t = read_training path in
    match Cqfeat.min_dimension ?max_dim lang t with
    | Some d ->
        Printf.printf "minimum %s dimension: %d\n" (Language.to_string lang) d
    | None ->
        print_endline "not separable within the dimension bound";
        exit 1
  in
  Cmd.v
    (Cmd.info "mindim"
       ~doc:"Find the least statistic dimension that separates.")
    Term.(const run $ train_arg $ lang_arg $ max_arg)

let classify_cmd =
  let eval_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"EVAL" ~doc:"Evaluation database file.")
  in
  let run train_path eval_path lang eps =
    let t = read_training train_path in
    let eval_db = read_db eval_path in
    let labeling =
      match eps with
      | None -> Cqfeat.classify lang t eval_db
      | Some eps -> fst (Cqfeat.apx_classify ~eps lang t eval_db)
    in
    List.iter
      (fun (e, l) ->
        Printf.printf "%s%s\n"
          (match l with Labeling.Pos -> "+" | Labeling.Neg -> "-")
          (Elem.to_string e))
      (Labeling.bindings labeling)
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:
         "Label the entities of an evaluation database consistently with \
          a separating statistic for the training database.")
    Term.(const run $ train_arg $ eval_arg $ lang_arg $ eps_arg)

let dot_cmd =
  let k_arg =
    Arg.(
      value & opt int 1
      & info [ "k" ] ~docv:"K" ~doc:"Width bound of the cover game.")
  in
  let run path k =
    let t = read_training path in
    let ch = Ghw_sep.chain ~k t in
    let labels =
      match Preorder_chain.consistent_labels ch t.Labeling.labeling with
      | Ok labels -> Some labels
      | Error _ -> None
    in
    print_string (Preorder_chain.to_dot ?labels ch)
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:
         "Render the ->_k equivalence-class DAG of a training database \
          in Graphviz format (the structure behind Lemma 5.4 and \
          Algorithm 1).")
    Term.(const run $ train_arg $ k_arg)

let () =
  let doc =
    "separability, feature generation and classification with regularized \
     conjunctive features (PODS'19)"
  in
  let main =
    Cmd.group
      (Cmd.info "cqsep" ~version:"1.0.0" ~doc)
      [
        info_cmd;
        sep_cmd;
        generate_cmd;
        classify_cmd;
        mindim_cmd;
        apply_cmd;
        dot_cmd;
      ]
  in
  exit (Cmd.eval main)
