(* Molecule classification by propositionalization — the scenario that
   motivates the paper's introduction (features as joins over a
   relational schema, cf. Knobbe et al. 2001, Samorani et al. 2011).

   Entities are molecules; the database relates molecules to their
   atoms (HasAtom), atoms to atoms (Bond), and atoms to element kinds
   (Carbon, Oxygen). The hidden concept: a molecule is active iff it
   contains a carbon bonded to an oxygen. We generate CQ[3] features
   (joins up to three atoms), learn a linear classifier, inspect the
   generated features, and classify unseen molecules.

   Run with: dune exec examples/molecules.exe *)

let lang = Language.Cq_atoms { m = 3; p = None }

(* Deterministic synthetic molecules. [carbon_oxygen] controls whether
   the active pattern C-O is present. *)
let molecule ~tag ~carbon_oxygen ~extra_atoms =
  let mol = Elem.sym (Printf.sprintf "mol_%s" tag) in
  let atom j = Elem.sym (Printf.sprintf "at_%s_%d" tag j) in
  let base =
    [
      ("HasAtom", [ mol; atom 0 ]);
      ("HasAtom", [ mol; atom 1 ]);
      ("Bond", [ atom 0; atom 1 ]);
      ("Carbon", [ atom 0 ]);
    ]
  in
  let active_part =
    if carbon_oxygen then [ ("Oxygen", [ atom 1 ]) ]
    else [ ("Carbon", [ atom 1 ]) ]
  in
  let extras =
    List.concat
      (List.init extra_atoms (fun j ->
           [
             ("HasAtom", [ mol; atom (j + 2) ]);
             ("Bond", [ atom 1; atom (j + 2) ]);
             ("Carbon", [ atom (j + 2) ]);
           ]))
  in
  (mol, base @ active_part @ extras)

let build molecules =
  let db, labeled =
    List.fold_left
      (fun (db, labeled) (spec, label) ->
        let mol, facts = spec in
        let db = List.fold_left (fun d (r, args) -> Db.add (Fact.make_l r args) d) db facts in
        (Db.add_entity mol db, (mol, label) :: labeled))
      (Db.empty, []) molecules
  in
  Labeling.training db (Labeling.of_list labeled)

let () =
  print_endline "Molecule activity prediction with CQ[3] features";
  print_endline "================================================";

  (* Training set: three actives, three inactives, varied sizes. *)
  let train =
    build
      [
        (molecule ~tag:"a1" ~carbon_oxygen:true ~extra_atoms:0, Labeling.Pos);
        (molecule ~tag:"a2" ~carbon_oxygen:true ~extra_atoms:1, Labeling.Pos);
        (molecule ~tag:"a3" ~carbon_oxygen:true ~extra_atoms:2, Labeling.Pos);
        (molecule ~tag:"i1" ~carbon_oxygen:false ~extra_atoms:0, Labeling.Neg);
        (molecule ~tag:"i2" ~carbon_oxygen:false ~extra_atoms:1, Labeling.Neg);
        (molecule ~tag:"i3" ~carbon_oxygen:false ~extra_atoms:2, Labeling.Neg);
      ]
  in
  Printf.printf "training molecules: %d (facts: %d)\n"
    (List.length (Db.entities train.Labeling.db))
    (Db.size train.Labeling.db);

  Printf.printf "CQ[3]-separable: %b\n" (Cqfeat.separable lang train);

  (match Cqfeat.generate lang train with
  | None -> print_endline "no separating statistic — unexpected"
  | Some (stat, classifier) ->
      Printf.printf "generated statistic: %d features (after pruning)\n"
        (Statistic.dimension stat);
      Printf.printf "training errors: %d\n"
        (Statistic.errors stat classifier train);
      (* Show a couple of informative features: those whose indicator
         column is not constant. *)
      let informative =
        List.filter
          (fun q ->
            let sel = Cq.eval q train.Labeling.db in
            sel <> [] && List.length sel < 6)
          stat
      in
      print_endline "some informative features:";
      List.iteri
        (fun i q -> if i < 5 then Printf.printf "  %s\n" (Cq.to_string q))
        informative;

      (* Evaluation set: unseen molecules, including a big active one. *)
      let eval_specs =
        [
          (molecule ~tag:"e1" ~carbon_oxygen:true ~extra_atoms:3, Labeling.Pos);
          (molecule ~tag:"e2" ~carbon_oxygen:false ~extra_atoms:3, Labeling.Neg);
          (molecule ~tag:"e3" ~carbon_oxygen:true ~extra_atoms:0, Labeling.Pos);
        ]
      in
      let eval = build eval_specs in
      let predicted = Statistic.induced_labeling stat classifier eval.Labeling.db in
      print_endline "evaluation:";
      List.iter
        (fun (mol, truth) ->
          let p = Labeling.get mol predicted in
          Printf.printf "  %-8s predicted %s truth %s %s\n"
            (Elem.to_string mol)
            (if p = Labeling.Pos then "+" else "-")
            (if truth = Labeling.Pos then "+" else "-")
            (if Labeling.label_equal p truth then "(ok)" else "(WRONG)"))
        (Labeling.bindings eval.Labeling.labeling);
      Printf.printf "accuracy: %.2f\n"
        (Planted.accuracy ~truth:eval predicted))
