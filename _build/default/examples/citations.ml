(* Bibliographic-network classification with GHW(1) features and
   Algorithm 1.

   Entities are papers in a citation database with relations
   Cites(p, q), SameVenue(p, q) and Survey(p). The hidden concept:
   a paper is "influential" iff it is cited by a survey — but we never
   write that query down. Instead we check GHW(1)-separability with
   the cover-game test and classify an unseen evaluation database
   with Algorithm 1, which provably agrees with SOME separating
   GHW(1) statistic without ever materializing one (the paper's
   Theorem 5.8; materialized features could be exponentially large by
   Theorem 5.7).

   Run with: dune exec examples/citations.exe *)

let paper tag i = Elem.sym (Printf.sprintf "%s_p%d" tag i)

(* A component with [cited_by_survey] controlling the concept. *)
let component ~tag ~cited_by_survey =
  let p = paper tag 0 in
  let citer = paper tag 1 in
  let other = paper tag 2 in
  let facts =
    [
      ("Cites", [ citer; p ]);
      ("Cites", [ other; citer ]);
      ("SameVenue", [ p; other ]);
    ]
    @ (if cited_by_survey then [ ("Survey", [ citer ]) ] else [])
  in
  (p, facts)

let build comps =
  let db, labeled =
    List.fold_left
      (fun (db, labeled) ((entity, facts), label) ->
        let db =
          List.fold_left (fun d (r, args) -> Db.add (Fact.make_l r args) d) db facts
        in
        (Db.add_entity entity db, (entity, label) :: labeled))
      (Db.empty, []) comps
  in
  Labeling.training db (Labeling.of_list labeled)

let () =
  print_endline "Citation network: GHW(1) separability and Algorithm 1";
  print_endline "======================================================";
  let train =
    build
      [
        (component ~tag:"a" ~cited_by_survey:true, Labeling.Pos);
        (component ~tag:"b" ~cited_by_survey:true, Labeling.Pos);
        (component ~tag:"c" ~cited_by_survey:false, Labeling.Neg);
        (component ~tag:"d" ~cited_by_survey:false, Labeling.Neg);
      ]
  in
  Printf.printf "training papers: %d, facts: %d\n"
    (List.length (Db.entities train.Labeling.db))
    (Db.size train.Labeling.db);

  (* The polynomial separability test of Theorem 5.3. *)
  Printf.printf "GHW(1)-separable: %b\n"
    (Cqfeat.separable (Language.Ghw 1) train);

  (* What WOULD materialization cost? (Proposition 5.6 / Theorem 5.7:
     exponential in the unraveling depth.) *)
  List.iter
    (fun depth ->
      Printf.printf
        "  materialized feature at unraveling depth %d: ~%d tree nodes\n"
        depth
        (Unravel.node_count ~k:1 ~depth train.Labeling.db))
    [ 1; 2; 3 ];

  (* Algorithm 1: classify unseen papers without materializing. *)
  let eval =
    build
      [
        (component ~tag:"x" ~cited_by_survey:true, Labeling.Pos);
        (component ~tag:"y" ~cited_by_survey:false, Labeling.Neg);
        (component ~tag:"z" ~cited_by_survey:true, Labeling.Pos);
      ]
  in
  let predicted = Cqfeat.classify (Language.Ghw 1) train eval.Labeling.db in
  print_endline "Algorithm 1 on unseen papers:";
  List.iter
    (fun (p, truth) ->
      let l = Labeling.get p predicted in
      Printf.printf "  %-6s predicted %s truth %s %s\n" (Elem.to_string p)
        (if l = Labeling.Pos then "+" else "-")
        (if truth = Labeling.Pos then "+" else "-")
        (if Labeling.label_equal l truth then "(ok)" else "(WRONG)"))
    (Labeling.bindings eval.Labeling.labeling);
  Printf.printf "accuracy: %.2f\n" (Planted.accuracy ~truth:eval predicted);

  (* For contrast: CQ[2] generation DOES materialize features. *)
  match Cqfeat.generate (Language.Cq_atoms { m = 2; p = None }) train with
  | Some (stat, c) ->
      Printf.printf
        "for contrast, CQ[2] materializes %d features (%d training errors)\n"
        (Statistic.dimension stat)
        (Statistic.errors stat c train)
  | None -> print_endline "CQ[2] cannot separate (needs deeper joins)"
