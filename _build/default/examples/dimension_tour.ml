(* A tour of the dimension phenomena of Sections 6 and 8:

   1. Example 6.2 — separable, but not with one feature.
   2. The loop-terminated chain — the linear family of Prop 8.6: CQ
      indicator sets form a chain, and alternating labels force the
      dimension to grow without bound (Thm 8.7 / Thm 5.7(a)).
   3. FO, by contrast, collapses to one feature (Prop 8.1), and so does
      every FO_k (Cor 8.5).
   4. Bounded-dimension feature generation: materialize an actual
      2-feature statistic via QBE explanations.

   Run with: dune exec examples/dimension_tour.exe *)

let section title = Printf.printf "\n--- %s ---\n" title

let () =
  section "1. Example 6.2: dimension matters";
  let t = Families.example_62 () in
  List.iter
    (fun d ->
      Printf.printf "CQ-separable with at most %d feature(s): %b\n" d
        (Cqfeat.separable ~dim:d Language.Cq_all t))
    [ 1; 2 ];

  section "2. The chain family: unbounded dimension (Thm 8.7)";
  List.iter
    (fun m ->
      let chain = Families.ghw_dimension_family m in
      let n = List.length (Db.entities chain.Labeling.db) in
      (* Indicator sets of GHW(1) features on the chain are the
         up-sets, realized by backward-path queries. *)
      let backward_path s =
        let v i =
          if i = 0 then Cq.default_free else Elem.sym (Printf.sprintf "y%d" i)
        in
        Cq.make ~free:Cq.default_free
          (List.init s (fun i -> Fact.make_l "E" [ v (i + 1); v i ]))
      in
      let qs = List.init (2 * m) backward_path in
      Printf.printf
        "chain with %d entities: CQ indicator family is linear: %b; " n
        (Fo_dimension.family_is_linear ~queries:qs
           ~db:chain.Labeling.db);
      let sets =
        List.filter
          (fun s -> not (Elem.Set.is_empty s))
          (Fo_dimension.indicator_family ~queries:qs ~db:chain.Labeling.db)
      in
      let rec min_dim d =
        if Dim_sep.separable_with_sets ~dim:d ~sets chain then d
        else min_dim (d + 1)
      in
      Printf.printf "minimal dimension %d\n" (min_dim 0))
    [ 1; 2; 3 ];

  section "3. FO and FO_k collapse to one feature";
  let t2 = Families.two_path_gadget 3 in
  Printf.printf "FO-separable: %b = FO-separable with 1 feature: %b\n"
    (Cqfeat.separable Language.Fo t2)
    (Cqfeat.separable ~dim:1 Language.Fo t2);
  Printf.printf "FO_2-separable: %b = FO_2-separable with 1 feature: %b\n"
    (Cqfeat.separable (Language.Fo_k 2) t2)
    (Cqfeat.separable ~dim:1 (Language.Fo_k 2) t2);

  section "4. Bounded-dimension generation (QBE explanations)";
  match Cqfeat.generate ~dim:2 Language.Cq_all t with
  | None -> print_endline "generation failed (unexpected)"
  | Some (stat, c) ->
      List.iteri
        (fun i q -> Printf.printf "q%d: %s\n" (i + 1) (Cq.to_string q))
        stat;
      Printf.printf "training errors: %d\n" (Statistic.errors stat c t)
