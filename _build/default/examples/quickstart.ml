(* Quickstart: the 5-minute tour of the cqfeat API.

   We build a tiny training database, test separability under several
   regularized feature languages, generate an actual statistic, and
   classify a fresh evaluation database.

   Run with: dune exec examples/quickstart.exe *)

let section title = Printf.printf "\n--- %s ---\n" title

let () =
  (* 1. A training database: entities a, b, c over unary relations
     R and S — Example 6.2 from the paper. *)
  section "Training database (Example 6.2)";
  let a = Elem.sym "a" and b = Elem.sym "b" and c = Elem.sym "c" in
  let t =
    Labeling.training_of_list
      [ ("R", [ a ]); ("S", [ a ]); ("S", [ c ]) ]
      [ (a, Labeling.Pos); (b, Labeling.Pos); (c, Labeling.Neg) ]
  in
  print_string (Textfmt.print_training t);

  (* 2. Separability under various feature languages. *)
  section "Separability";
  let report lang =
    Printf.printf "%-10s separable: %b\n" (Language.to_string lang)
      (Cqfeat.separable lang t)
  in
  report Language.Cq_all;
  report (Language.Cq_atoms { m = 1; p = None });
  report (Language.Ghw 1);
  report Language.Fo;

  (* 3. Bounded dimension: one feature is not enough (the paper's
     point in Example 6.2), two are. *)
  section "Dimension";
  Printf.printf "separable with 1 feature: %b\n"
    (Cqfeat.separable ~dim:1 Language.Cq_all t);
  Printf.printf "separable with 2 features: %b\n"
    (Cqfeat.separable ~dim:2 Language.Cq_all t);
  (match Cqfeat.min_dimension Language.Cq_all t with
  | Some d -> Printf.printf "minimum dimension: %d\n" d
  | None -> print_endline "not separable at any dimension");

  (* 4. Feature generation: materialize a statistic and classifier. *)
  section "Feature generation (CQ[1])";
  (match Cqfeat.generate (Language.Cq_atoms { m = 1; p = None }) t with
  | None -> print_endline "not separable"
  | Some (stat, classifier) ->
      Format.printf "%a" Statistic.pp stat;
      Printf.printf "training errors: %d\n"
        (Statistic.errors stat classifier t));

  (* 5. Classification of unseen entities. *)
  section "Classification of an evaluation database";
  let d = Elem.sym "d" and e = Elem.sym "e" in
  let eval_db =
    Db.add_entity d
      (Db.add_entity e
         (Db.of_list [ ("R", [ d ]); ("S", [ d ]); ("S", [ e ]) ]))
  in
  let labels = Cqfeat.classify (Language.Cq_atoms { m = 1; p = None }) t eval_db in
  List.iter
    (fun (en, l) ->
      Format.printf "%s -> %a@." (Elem.to_string en) Labeling.pp_label l)
    (Labeling.bindings labels);

  (* 6. Approximate separability: flip a label and allow an error
     budget. *)
  section "Approximate separability";
  let noisy = Planted.flip_labels ~seed:1 ~count:1 t in
  Printf.printf "after one flip, exactly separable (CQ): %b\n"
    (Cqfeat.separable Language.Cq_all noisy);
  Printf.printf "separable with error 1/3 (CQ): %b\n"
    (Cqfeat.apx_separable ~eps:(Rat.of_ints 1 3) Language.Cq_all noisy)
