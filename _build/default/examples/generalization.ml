(* Generalization: a PAC-flavored experiment (the direction Section 9
   of the paper points to, via Grohe et al.).

   A hidden CQ[2] concept labels entities drawn from a synthetic
   distribution (random graphs). We train on increasing sample sizes,
   generate a CQ[2] statistic + classifier, and measure accuracy on a
   held-out evaluation database labeled by the same concept. Perfect
   training separability is guaranteed (the concept is in the class);
   generalization typically improves with sample size as the pruned
   feature set sees more behaviors (the LP may pick any separator, so
   the curve need not be monotone — honest empirical risk minimization).

   Run with: dune exec examples/generalization.exe *)

let concept = Cq_parse.parse "x :- E(x,y), E(y,z)"

(* Sample database: a random digraph with all nodes entities, labeled
   by the concept. *)
let sample ~seed ~nodes =
  let db = Gen_db.random_graph_db ~seed ~nodes ~edges:(2 * nodes) () in
  Planted.label_by_query db concept

let () =
  print_endline "Generalization of CQ[2] feature classifiers";
  print_endline "===========================================";
  Printf.printf "hidden concept: %s\n\n" (Cq.to_string concept);
  let eval = sample ~seed:999 ~nodes:30 in
  Printf.printf "%-14s %-16s %-12s %s\n" "train nodes" "train separable"
    "features" "eval accuracy";
  List.iter
    (fun nodes ->
      let train = sample ~seed:7 ~nodes in
      let lang = Language.Cq_atoms { m = 2; p = None } in
      match Cqfeat.generate lang train with
      | None -> Printf.printf "%-14d (not separable?!)\n" nodes
      | Some (stat, c) ->
          let predicted = Statistic.induced_labeling stat c eval.Labeling.db in
          Printf.printf "%-14d %-16b %-12d %.2f\n" nodes
            (Statistic.errors stat c train = 0)
            (Statistic.dimension stat)
            (Planted.accuracy ~truth:eval predicted))
    [ 4; 8; 12; 20 ]
