examples/quickstart.ml: Cqfeat Db Elem Format Labeling Language List Planted Printf Rat Statistic Textfmt
