examples/qbe_explanations.mli:
