examples/citations.ml: Cqfeat Db Elem Fact Labeling Language List Planted Printf Statistic Unravel
