examples/dimension_tour.ml: Cq Cqfeat Db Dim_sep Elem Fact Families Fo_dimension Labeling Language List Printf Statistic
