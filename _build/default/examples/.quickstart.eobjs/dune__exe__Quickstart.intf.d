examples/quickstart.mli:
