examples/citations.mli:
