examples/molecules.ml: Cq Cqfeat Db Elem Fact Labeling Language List Planted Printf Statistic
