examples/dimension_tour.mli:
