examples/noisy_labels.ml: Cqfeat Db Families Ghw_sep Labeling Language List Planted Printf Rat
