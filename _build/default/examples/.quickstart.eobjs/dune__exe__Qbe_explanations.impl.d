examples/qbe_explanations.ml: Cq Db Elem List Printf Qbe
