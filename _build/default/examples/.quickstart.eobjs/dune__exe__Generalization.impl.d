examples/generalization.ml: Cq Cq_parse Cqfeat Gen_db Labeling Language List Planted Printf Statistic
