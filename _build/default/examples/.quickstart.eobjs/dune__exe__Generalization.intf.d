examples/generalization.mli:
