examples/noisy_labels.mli:
