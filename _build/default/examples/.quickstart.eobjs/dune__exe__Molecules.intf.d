examples/molecules.mli:
