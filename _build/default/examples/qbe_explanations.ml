(* Query by example (Section 6.1): reverse-engineering feature queries
   from positive and negative example entities.

   The QBE machinery is what powers bounded-dimension separability
   (Lemma 6.3/6.5): an indicator set is realizable iff a QBE
   explanation exists. This example shows the product-based deciders
   and explanation extraction across the three query classes, on a
   small movie database.

   Run with: dune exec examples/qbe_explanations.exe *)

let () =
  print_endline "Query by example: explaining liked movies";
  print_endline "=========================================";
  (* Movies with directors and genres; Alice liked m1 and m2 (both
     thrillers by auteurs who also act), disliked m3. *)
  let m i = Elem.sym (Printf.sprintf "m%d" i) in
  let p name = Elem.sym name in
  let db =
    Db.of_list
      [
        ("DirectedBy", [ m 1; p "lee" ]);
        ("ActsIn", [ p "lee"; m 1 ]);
        ("Genre", [ m 1; p "thriller" ]);
        ("DirectedBy", [ m 2; p "jo" ]);
        ("ActsIn", [ p "jo"; m 2 ]);
        ("Genre", [ m 2; p "thriller" ]);
        ("DirectedBy", [ m 3; p "kim" ]);
        ("Genre", [ m 3; p "thriller" ]);
      ]
  in
  let db = List.fold_left (fun d i -> Db.add_entity (m i) d) db [ 1; 2; 3 ] in
  let inst = Qbe.make db ~pos:[ m 1; m 2 ] ~neg:[ m 3 ] in

  Printf.printf "CQ explanation exists: %b\n" (Qbe.cq_decide inst);
  (match Qbe.cq_explanation ~minimize:true inst with
  | Some q ->
      Printf.printf "  core explanation: %s\n" (Cq.to_string q);
      Printf.printf "  verifies: %b\n" (Qbe.is_explanation inst q)
  | None -> print_endline "  none");

  Printf.printf "CQ[2] explanation exists: %b\n" (Qbe.cqm_decide ~m:2 inst);
  (match Qbe.cqm_explanation ~m:2 inst with
  | Some q -> Printf.printf "  smallest-class witness: %s\n" (Cq.to_string q)
  | None -> print_endline "  none");

  Printf.printf "GHW(1) explanation exists: %b\n" (Qbe.ghw_decide ~k:1 inst);
  (match Qbe.ghw_explanation ~k:1 ~depth:2 inst with
  | Some q ->
      Printf.printf "  unraveled explanation: %d atoms, verifies: %b\n"
        (Cq.num_atoms q)
        (Qbe.is_explanation inst q)
  | None -> print_endline "  none");

  (* An impossible instance: m3's structure embeds into m1's, so no CQ
     can select m3 but not m1. *)
  let inst2 = Qbe.make db ~pos:[ m 3 ] ~neg:[ m 1 ] in
  Printf.printf "reverse direction (m3 vs m1) explainable: %b (as the \
                 paper's homomorphism criterion predicts)\n"
    (Qbe.cq_decide inst2)
