(* Approximate separability on noisy labels (Section 7 of the paper).

   A planted GHW(1) concept labels the entities of a synthetic
   database; we flip a fraction of the labels and then:
   - verify exact separability is destroyed,
   - run Algorithm 2 to compute the closest separable relabeling
     (provably minimal disagreement, Theorem 7.4),
   - decide eps-approximate separability for a sweep of eps,
   - classify an evaluation database with GHW(1)-ApxCls
     (Corollary 7.5) and measure accuracy against the clean truth.

   Run with: dune exec examples/noisy_labels.exe *)

let () =
  print_endline "Noisy labels: Algorithm 2 and approximate separability";
  print_endline "=======================================================";

  (* Six copies of the two-path gadget: 12 entities in two ->_1
     equivalence classes (long-path starts vs short-path starts). *)
  let clean = Families.copies (Families.two_path_gadget 3) 6 in
  let n = List.length (Db.entities clean.Labeling.db) in
  Printf.printf "entities: %d\n" n;
  Printf.printf "clean database GHW(1)-separable: %b\n"
    (Cqfeat.separable (Language.Ghw 1) clean);

  (* Flip two labels. *)
  let noisy = Planted.flip_labels ~seed:2024 ~count:2 clean in
  Printf.printf "after 2 flips, exactly separable: %b\n"
    (Cqfeat.separable (Language.Ghw 1) noisy);

  (* Algorithm 2: optimal relabeling. *)
  let relabeled, disagreement = Ghw_sep.apx_relabel ~k:1 noisy in
  Printf.printf "Algorithm 2 minimal disagreement: %d\n" disagreement;
  Printf.printf "Algorithm 2 recovers the clean labels: %b\n"
    (Labeling.equal relabeled clean.Labeling.labeling);

  (* eps sweep. *)
  print_endline "eps-approximate separability:";
  List.iter
    (fun (num, den) ->
      let eps = Rat.of_ints num den in
      Printf.printf "  eps = %d/%-3d -> %b\n" num den
        (Cqfeat.apx_separable ~eps (Language.Ghw 1) noisy))
    [ (0, 1); (1, 12); (2, 12); (3, 12) ];

  (* ApxCls: train on noisy, classify fresh data, compare with truth. *)
  let eval = Families.copies (Families.two_path_gadget 3) 2 in
  let predicted, train_err =
    Cqfeat.apx_classify ~eps:(Rat.of_ints 2 12) (Language.Ghw 1) noisy
      eval.Labeling.db
  in
  Printf.printf "ApxCls training error: %d\n" train_err;
  Printf.printf "ApxCls accuracy on clean evaluation data: %.2f\n"
    (Planted.accuracy ~truth:eval predicted)
