let v i = Elem.sym (Printf.sprintf "v%d" i)

let with_entities db =
  Elem.Set.fold Db.add_entity (Db.domain db) db

let path n =
  with_entities
    (Db.of_list (List.init n (fun i -> ("E", [ v i; v (i + 1) ]))))

let cycle n =
  with_entities
    (Db.of_list (List.init n (fun i -> ("E", [ v i; v ((i + 1) mod n) ]))))

let grid w h =
  let node x y = Elem.sym (Printf.sprintf "g%d_%d" x y) in
  let horiz =
    List.concat_map
      (fun x ->
        List.init h (fun y -> ("H", [ node x y; node (x + 1) y ])))
      (List.init (w - 1) (fun x -> x))
  in
  let vert =
    List.concat_map
      (fun x -> List.init (h - 1) (fun y -> ("V", [ node x y; node x (y + 1) ])))
      (List.init w (fun x -> x))
  in
  with_entities (Db.of_list (horiz @ vert))

let linear_chain n =
  let edges = List.init (n - 1) (fun i -> ("E", [ v (i + 1); v (i + 2) ])) in
  with_entities (Db.of_list (("E", [ v n; v n ]) :: edges))

let alternating_labels db =
  let entities = Db.entities db in
  let labeled =
    List.mapi
      (fun i e -> (e, if i mod 2 = 0 then Labeling.Pos else Labeling.Neg))
      entities
  in
  Labeling.training db (Labeling.of_list labeled)

let example_62 () =
  let a = Elem.sym "a" and b = Elem.sym "b" and c = Elem.sym "c" in
  Labeling.training_of_list
    [ ("R", [ a ]); ("S", [ a ]); ("S", [ c ]) ]
    [ (a, Labeling.Pos); (b, Labeling.Pos); (c, Labeling.Neg) ]

let ghw_dimension_family m = alternating_labels (linear_chain (2 * m))

let two_path_gadget n =
  let p i j = Elem.sym (Printf.sprintf "p%d_%d" i j) in
  (* Component 1: path of length n from entity s1; component 2: path of
     length n-1 from entity s2. *)
  let comp i len =
    List.init len (fun j -> ("E", [ p i j; p i (j + 1) ]))
  in
  let db = Db.of_list (comp 1 n @ comp 2 (n - 1)) in
  let s1 = p 1 0 and s2 = p 2 0 in
  let db = Db.add_entity s1 (Db.add_entity s2 db) in
  Labeling.training db
    (Labeling.of_list [ (s1, Labeling.Pos); (s2, Labeling.Neg) ])

let star ~center_out n =
  let hub = Elem.sym "hub" in
  let leaf i = Elem.sym (Printf.sprintf "leaf%d" i) in
  let edges =
    List.init n (fun i ->
        if center_out then ("E", [ hub; leaf i ]) else ("E", [ leaf i; hub ]))
  in
  with_entities (Db.of_list edges)

let binary_tree depth =
  let rec nodes prefix d acc =
    if d > depth then acc
    else begin
      let self = Elem.sym prefix in
      let acc =
        if d = depth then acc
        else
          ("E", [ self; Elem.sym (prefix ^ "l") ])
          :: ("E", [ self; Elem.sym (prefix ^ "r") ])
          :: acc
      in
      if d = depth then acc
      else nodes (prefix ^ "l") (d + 1) (nodes (prefix ^ "r") (d + 1) acc)
    end
  in
  with_entities (Db.of_list (nodes "t" 0 []))

let complete_bipartite a b =
  let left i = Elem.sym (Printf.sprintf "l%d" i) in
  let right j = Elem.sym (Printf.sprintf "r%d" j) in
  let edges =
    List.concat
      (List.init a (fun i -> List.init b (fun j -> ("E", [ left i; right j ]))))
  in
  with_entities (Db.of_list edges)

let symmetric_clique n =
  let node i = Elem.sym (Printf.sprintf "k%d" i) in
  let edges =
    List.concat
      (List.init n (fun i ->
           List.concat
             (List.init n (fun j ->
                  if i <> j then [ ("E", [ node i; node j ]) ] else []))))
  in
  with_entities (Db.of_list edges)

let copies (t : Labeling.training) n =
  let rename i e = Elem.tup [ Elem.int i; e ] in
  let db = ref Db.empty in
  let labeled = ref [] in
  for i = 1 to n do
    db := Db.union !db (Db.map_elems (rename i) t.db);
    List.iter
      (fun (e, l) -> labeled := (rename i e, l) :: !labeled)
      (Labeling.bindings t.labeling)
  done;
  Labeling.training !db (Labeling.of_list !labeled)
