lib/workload/planted.ml: Array Cq Db Elem Labeling List Random
