lib/workload/planted.mli: Cq Db Labeling
