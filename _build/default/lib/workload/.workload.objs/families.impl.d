lib/workload/families.ml: Db Elem Labeling List Printf
