lib/workload/gen_db.mli: Db Labeling
