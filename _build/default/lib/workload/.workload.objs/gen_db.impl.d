lib/workload/gen_db.ml: Array Db Elem Fact Labeling List Printf Random
