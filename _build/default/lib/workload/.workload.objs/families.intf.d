lib/workload/families.mli: Db Labeling
