(** Random training-database generation for tests and benches.

    All generators are deterministic given the [seed] (no ambient
    randomness), so every bench run and failing test case is
    reproducible. *)

(** [random_db ~seed ~schema ~domain_size ~facts_per_rel ()] draws
    facts uniformly (with replacement, then deduplicated) over a domain
    [{v0, ..., v_{domain_size-1}}]. *)
val random_db :
  seed:int -> schema:(string * int) list -> domain_size:int ->
  facts_per_rel:int -> unit -> Db.t

(** [random_training ~seed ~schema ~domain_size ~facts_per_rel
    ~entities ()] additionally promotes [entities] random domain
    elements to entities with uniformly random labels. *)
val random_training :
  seed:int -> schema:(string * int) list -> domain_size:int ->
  facts_per_rel:int -> entities:int -> unit -> Labeling.training

(** [random_graph_db ~seed ~nodes ~edges ()] is a random digraph over a
    single binary relation [E] with every node an entity (labels not
    included; see {!Planted}). *)
val random_graph_db : seed:int -> nodes:int -> edges:int -> unit -> Db.t
