let label_by_query db q =
  let selected = Elem.Set.of_list (Cq.eval q db) in
  let labeled =
    List.map
      (fun e ->
        (e, if Elem.Set.mem e selected then Labeling.Pos else Labeling.Neg))
      (Db.entities db)
  in
  Labeling.training db (Labeling.of_list labeled)

let flip_labels ~seed ~count (t : Labeling.training) =
  let rng = Random.State.make [| seed |] in
  let entities = Array.of_list (Db.entities t.db) in
  let n = Array.length entities in
  let count = min count n in
  for i = 0 to count - 1 do
    let j = i + Random.State.int rng (n - i) in
    let tmp = entities.(i) in
    entities.(i) <- entities.(j);
    entities.(j) <- tmp
  done;
  let flipped =
    Array.to_list (Array.sub entities 0 count) |> Elem.Set.of_list
  in
  let labeling =
    List.fold_left
      (fun acc (e, l) ->
        let l' = if Elem.Set.mem e flipped then Labeling.flip l else l in
        Labeling.set e l' acc)
      Labeling.empty
      (Labeling.bindings t.labeling)
  in
  Labeling.training t.db labeling

let accuracy ~truth labeling =
  let entities = Db.entities truth.Labeling.db in
  let agree =
    List.fold_left
      (fun acc e ->
        match Labeling.get_opt e labeling with
        | Some l
          when Labeling.label_equal l (Labeling.get e truth.Labeling.labeling)
          ->
            acc + 1
        | _ -> acc)
      0 entities
  in
  float_of_int agree /. float_of_int (max 1 (List.length entities))
