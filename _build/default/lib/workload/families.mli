(** Structured database families, including the paper's hard
    instances. *)

(** [path n] is the directed path [v0 → v1 → ... → vn] over relation
    [E], every node an entity. *)
val path : int -> Db.t

(** [cycle n] is the directed n-cycle, every node an entity. *)
val cycle : int -> Db.t

(** [grid w h] is the w×h directed grid over relations [H] and [V],
    every node an entity. *)
val grid : int -> int -> Db.t

(** [linear_chain n] is the loop-terminated path
    [v1 → v2 → ... → vn → vn]: the self-loop makes every forward
    constraint trivially satisfiable, so CQ indicator sets on it are
    the up-sets [{v_s, ..., v_n}] — a {e chain}, witnessing the
    Prop 8.6 premise for CQ/GHW(k) and driving the unbounded-dimension
    demonstration (Thm 8.7). *)
val linear_chain : int -> Db.t

(** [alternating_labels db] labels the entities of [db] alternately
    [+,-,+,-,...] in domain order — on {!linear_chain} this maximizes
    the dimension needed to separate. *)
val alternating_labels : Db.t -> Labeling.training

(** [example_62 ()] is Example 6.2 of the paper: entities [a,b,c] with
    [R(a), S(a), S(c)], labels [λ(a)=λ(b)=+], [λ(c)=-]; separable by
    the 2-feature statistic [(R(x), S(x))] but by no single CQ
    feature. *)
val example_62 : unit -> Labeling.training

(** [ghw_dimension_family m] is a GHW(1)-separable training database
    with [2m] entities on which every separating statistic needs at
    least [m] features (the dimension half of Theorem 5.7): the
    [linear_chain (2m)] with alternating labels. *)
val ghw_dimension_family : int -> Labeling.training

(** [two_path_gadget n] is a training database with two entities — the
    start of a forward path of length [n] (positive) and of length
    [n-1] (negative) — distinguishing which requires a GHW(1) feature
    of ≥ n atoms; the stabilization depth of the canonical unraveling
    grows with [n] (the feature-size half of Theorem 5.7, whose
    exponential bound our benches reproduce in shape via
    {!Unravel.node_count}). *)
val two_path_gadget : int -> Labeling.training

(** [star ~center_out n] is a star with [n] leaves over [E], edges
    oriented away from ([center_out = true]) or into the hub; every
    node an entity. *)
val star : center_out:bool -> int -> Db.t

(** [binary_tree depth] is the complete binary tree of the given depth
    over [E] (parent → child), every node an entity. *)
val binary_tree : int -> Db.t

(** [complete_bipartite a b] is K_{a,b} directed left → right, every
    node an entity. *)
val complete_bipartite : int -> int -> Db.t

(** [symmetric_clique n] is K_n with both edge directions (no loops) —
    the GHW(1)-indistinguishability gadget (K4 vs K3 in the tests),
    every node an entity. *)
val symmetric_clique : int -> Db.t

(** [copies t n] is the disjoint union of [n] isomorphic copies of the
    training database (entities relabeled per copy). *)
val copies : Labeling.training -> int -> Labeling.training
