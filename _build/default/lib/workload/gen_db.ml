let elem i = Elem.sym (Printf.sprintf "v%d" i)

let random_db ~seed ~schema ~domain_size ~facts_per_rel () =
  let rng = Random.State.make [| seed |] in
  let fact rel arity =
    Fact.make rel
      (Array.init arity (fun _ -> elem (Random.State.int rng domain_size)))
  in
  Db.of_facts
    (List.concat_map
       (fun (rel, arity) ->
         List.init facts_per_rel (fun _ -> fact rel arity))
       schema)

let random_training ~seed ~schema ~domain_size ~facts_per_rel ~entities () =
  let rng = Random.State.make [| seed + 1 |] in
  let db = random_db ~seed ~schema ~domain_size ~facts_per_rel () in
  let pool = Array.init domain_size elem in
  (* Fisher–Yates prefix for a sample without replacement. *)
  let n = min entities domain_size in
  for i = 0 to n - 1 do
    let j = i + Random.State.int rng (domain_size - i) in
    let tmp = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- tmp
  done;
  let chosen = Array.sub pool 0 n in
  let db = Array.fold_left (fun db e -> Db.add_entity e db) db chosen in
  let labeled =
    Array.to_list
      (Array.map
         (fun e ->
           (e, if Random.State.bool rng then Labeling.Pos else Labeling.Neg))
         chosen)
  in
  Labeling.training db (Labeling.of_list labeled)

let random_graph_db ~seed ~nodes ~edges () =
  let rng = Random.State.make [| seed |] in
  let db = ref Db.empty in
  for _ = 1 to edges do
    let a = Random.State.int rng nodes and b = Random.State.int rng nodes in
    db := Db.add (Fact.make_l "E" [ elem a; elem b ]) !db
  done;
  let db = ref !db in
  for i = 0 to nodes - 1 do
    db := Db.add_entity (elem i) !db
  done;
  !db
