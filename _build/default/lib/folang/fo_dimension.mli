(** The dimension-collapse and unbounded-dimension properties
    (Section 8.2 of the paper), checked on finite query fragments.

    Theorem 8.4: a language [L] has the dimension-collapse property iff
    for every database [D] the family
    [⋃_{q∈L} {q(D), η(D)∖q(D)}] is closed under intersection.
    Proposition 8.6: if for each [n] there is a database on which
    [{q(D) | q ∈ L}] is a chain of length [≥ n], then [L] has the
    unbounded-dimension property.

    These are properties of infinite languages; this module evaluates
    the defining conditions on finite sub-fragments (e.g. the CQ[m]
    enumeration) and concrete databases — enough to produce the
    counterexample witnesses the paper's proofs rely on, and to drive
    the `dim/unbounded` bench. *)

(** [indicator_family ~queries ~db] is the list of distinct entity sets
    [q(D)] for [q ∈ queries]. *)
val indicator_family : queries:Cq.t list -> db:Db.t -> Elem.Set.t list

(** [closure_family ~queries ~db] additionally includes the complements
    [η(D) ∖ q(D)] (the family of Theorem 8.4). *)
val closure_family : queries:Cq.t list -> db:Db.t -> Elem.Set.t list

(** [collapse_counterexample ~queries ~db] searches the closure family
    for two sets whose intersection is not in the family — a witness
    that the fragment (hence any language containing it whose
    indicator family on [db] is no larger) violates the Theorem 8.4
    condition. *)
val collapse_counterexample :
  queries:Cq.t list -> db:Db.t -> (Elem.Set.t * Elem.Set.t) option

(** [family_is_linear ~queries ~db] checks the Prop 8.6 premise: the
    indicator family is a chain under inclusion. *)
val family_is_linear : queries:Cq.t list -> db:Db.t -> bool

(** [chain_length ~queries ~db] is the number of distinct indicator
    sets when the family is linear.
    @raise Invalid_argument when the family is not linear. *)
val chain_length : queries:Cq.t list -> db:Db.t -> int
