lib/folang/fo_formula.mli: Cq Db Elem Fact Format
