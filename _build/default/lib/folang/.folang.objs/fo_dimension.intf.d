lib/folang/fo_dimension.mli: Cq Db Elem
