lib/folang/struct_iso.mli: Db Elem
