lib/folang/pebble_game.ml: Array Db Elem Fact Hashtbl Labeling List
