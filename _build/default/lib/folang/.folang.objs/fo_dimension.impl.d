lib/folang/fo_dimension.ml: Cq Db Elem List
