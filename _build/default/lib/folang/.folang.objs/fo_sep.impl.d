lib/folang/fo_sep.ml: Db Hom Labeling List Struct_iso
