lib/folang/fo_sep.mli: Db Elem Labeling
