lib/folang/pebble_game.mli: Db Elem Labeling
