lib/folang/fo_formula.ml: Cq Db Elem Fact Format List
