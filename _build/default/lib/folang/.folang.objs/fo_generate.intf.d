lib/folang/fo_generate.mli: Db Elem Fo_formula Labeling
