lib/folang/struct_iso.ml: Array Db Elem Fact Hashtbl List
