lib/folang/fo_generate.ml: Cq Db Elem Fact Fo_formula Fo_sep Labeling List Struct_iso
