(** Isomorphism of (pointed) databases.

    FO feature queries distinguish two pointed finite databases iff the
    databases are non-isomorphic, so FO-Sep reduces to pairwise
    isomorphism tests on entities (Corollary 8.2; the problem is
    GI-complete). The test here is color refinement (1-WL) for pruning
    plus a backtracking search for an exact bijective strong
    homomorphism. *)

(** [refine_colors db] computes stable color classes of the elements
    under 1-dimensional Weisfeiler–Leman refinement; elements in
    different classes are in different orbits. Returned as a map from
    element to an opaque color id (equal ids = same refined color). *)
val refine_colors : Db.t -> int Elem.Map.t

(** [isomorphic a b] decides [a ≅ b]. *)
val isomorphic : Db.t -> Db.t -> bool

(** [isomorphic_pointed (a, ā) (b, b̄)] decides isomorphism mapping the
    i-th element of [ā] to the i-th of [b̄].
    @raise Invalid_argument if the tuples have different lengths. *)
val isomorphic_pointed : Db.t * Elem.t list -> Db.t * Elem.t list -> bool

(** [find_isomorphism ?fix a b] returns a witnessing bijection. *)
val find_isomorphism :
  ?fix:(Elem.t * Elem.t) list -> Db.t -> Db.t -> Elem.t Elem.Map.t option
