(** First-order feature formulas: syntax and model checking.

    Section 8 of the paper studies FO feature queries abstractly; this
    module makes them concrete — an FO AST over the same relational
    vocabulary as the CQs, with a straightforward recursive model
    checker (combined complexity PSPACE, as it must be). Variables are
    {!Elem.t} values, like in {!Cq}.

    The companion {!Fo_generate} builds actual separating FO features
    (Prop 8.1 made constructive). *)

type t =
  | Atom of Fact.t  (** [R(t̄)] — arguments are variables or constants *)
  | Eq of Elem.t * Elem.t
  | Not of t
  | And of t list  (** [And []] is true *)
  | Or of t list  (** [Or []] is false *)
  | Exists of Elem.t * t
  | Forall of Elem.t * t

val tt : t
val ff : t

(** [of_cq q] is the FO formula of a feature CQ: the existential
    closure of its atom conjunction with the free variable left
    free. *)
val of_cq : Cq.t -> t

(** [free_vars f] is the set of free variables. *)
val free_vars : t -> Elem.Set.t

(** [variables f] is the set of all variable names occurring — bound or
    free ([Elem] terms appearing in atoms or quantifiers). Together
    with quantifier reuse this determines FO_k membership
    syntactically. *)
val variables : t -> Elem.Set.t

(** [eval db ~env f] model-checks [f] over [db] under the environment
    [env] (quantifiers range over the active domain; unbound atom
    arguments are treated as constants).
    Exponential in the quantifier nesting, polynomial per level. *)
val eval : Db.t -> env:Elem.t Elem.Map.t -> t -> bool

(** [selects db ~free f e] is [eval] with [free ↦ e]. *)
val selects : Db.t -> free:Elem.t -> t -> Elem.t -> bool

(** [eval_unary db ~free f] is the set of entities selected by the
    unary feature formula [f]. *)
val eval_unary : Db.t -> free:Elem.t -> t -> Elem.t list

(** [size f] is the node count (for reporting). *)
val size : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
