(* Two-phase full-tableau simplex with Bland's rule, exact rationals.

   Internal standard form: free variable x_i is split into
   x_i = p_i - m_i with p_i, m_i >= 0; each constraint row gets a slack
   (Le: +s, Ge: -s) and, after sign-normalizing the right-hand side, an
   artificial variable for phase I. *)

type op = Le | Ge | Eq
type row = { coeffs : Rat.t array; op : op; rhs : Rat.t }

type outcome =
  | Optimal of Rat.t array * Rat.t
  | Unbounded of Rat.t array
  | Infeasible

(* Tableau: [m] constraint rows over [n] columns plus rhs column; [t]
   has m+1 rows, the last being the objective row (reduced costs, with
   the negated objective value in the rhs cell). [basis.(i)] is the
   column basic in row i. *)
type tableau = {
  t : Rat.t array array;
  basis : int array;
  m : int;
  n : int;
}

let pivot tb ~row ~col =
  let { t; m; n; _ } = tb in
  let p = t.(row).(col) in
  assert (not (Rat.is_zero p));
  let inv = Rat.inv p in
  for j = 0 to n do
    t.(row).(j) <- Rat.mul t.(row).(j) inv
  done;
  for i = 0 to m do
    if i <> row && not (Rat.is_zero t.(i).(col)) then begin
      let f = t.(i).(col) in
      for j = 0 to n do
        t.(i).(j) <- Rat.sub t.(i).(j) (Rat.mul f t.(row).(j))
      done
    end
  done;
  tb.basis.(row) <- col

(* Bland: entering = least column with negative reduced cost; leaving =
   min ratio, ties by least basis column. Returns `Optimal or
   `Unbounded with the offending column. *)
let rec iterate tb ~allowed =
  let { t; m; n; basis } = tb in
  let obj = t.(m) in
  let entering = ref (-1) in
  (try
     for j = 0 to n - 1 do
       if allowed j && Rat.sign obj.(j) < 0 then begin
         entering := j;
         raise Exit
       end
     done
   with Exit -> ());
  if !entering < 0 then `Optimal
  else begin
    let col = !entering in
    let best = ref None in
    for i = 0 to m - 1 do
      let a = t.(i).(col) in
      if Rat.sign a > 0 then begin
        let ratio = Rat.div t.(i).(n) a in
        match !best with
        | None -> best := Some (ratio, i)
        | Some (r, i') ->
            let c = Rat.compare ratio r in
            if c < 0 || (c = 0 && basis.(i) < basis.(i')) then
              best := Some (ratio, i)
      end
    done;
    match !best with
    | None -> `Unbounded col
    | Some (_, row) ->
        pivot tb ~row ~col;
        iterate tb ~allowed
  end

(* Install objective [c] (length n) into the last row given the current
   basis: reduced costs c_j - c_B B^{-1} A_j. The tableau rows already
   hold B^{-1}A and B^{-1}b. *)
let set_objective tb c =
  let { t; m; n; basis } = tb in
  for j = 0 to n do
    t.(m).(j) <- (if j < n then c.(j) else Rat.zero)
  done;
  for i = 0 to m - 1 do
    let cb = c.(basis.(i)) in
    if not (Rat.is_zero cb) then
      for j = 0 to n do
        t.(m).(j) <- Rat.sub t.(m).(j) (Rat.mul cb t.(i).(j))
      done
  done

let solve ~nvars ~rows ~objective () =
  if Array.length objective <> nvars then
    invalid_arg "Simplex.solve: objective length mismatch";
  List.iter
    (fun r ->
      if Array.length r.coeffs <> nvars then
        invalid_arg "Simplex.solve: row length mismatch")
    rows;
  let rows = Array.of_list rows in
  let m = Array.length rows in
  (* Columns: 2*nvars split vars, then m slack slots (unused for Eq),
     then m artificials. *)
  let n_split = 2 * nvars in
  let n_slack = m in
  let n_art = m in
  let n = n_split + n_slack + n_art in
  let t = Array.init (m + 1) (fun _ -> Array.make (n + 1) Rat.zero) in
  let basis = Array.make m 0 in
  for i = 0 to m - 1 do
    let { coeffs; op; rhs } = rows.(i) in
    (* Row with slack, before sign normalization. *)
    let sign_flip = Rat.sign rhs < 0 in
    let put j v = t.(i).(j) <- (if sign_flip then Rat.neg v else v) in
    for v = 0 to nvars - 1 do
      put (2 * v) coeffs.(v);
      put ((2 * v) + 1) (Rat.neg coeffs.(v))
    done;
    (match op with
    | Le -> put (n_split + i) Rat.one
    | Ge -> put (n_split + i) Rat.minus_one
    | Eq -> ());
    t.(i).(n) <- (if sign_flip then Rat.neg rhs else rhs);
    (* Artificial variable, basic in this row. *)
    let art = n_split + n_slack + i in
    t.(i).(art) <- Rat.one;
    basis.(i) <- art
  done;
  let tb = { t; basis; m; n } in
  (* Phase I: minimize the sum of artificials. *)
  let phase1_cost =
    Array.init n (fun j -> if j >= n_split + n_slack then Rat.one else Rat.zero)
  in
  set_objective tb phase1_cost;
  (match iterate tb ~allowed:(fun _ -> true) with
  | `Optimal -> ()
  | `Unbounded _ -> assert false (* phase-I objective is bounded below by 0 *));
  let phase1_value = Rat.neg t.(m).(n) in
  if Rat.sign phase1_value > 0 then Infeasible
  else begin
    (* Drive surviving artificials out of the basis where possible. *)
    for i = 0 to m - 1 do
      if basis.(i) >= n_split + n_slack then begin
        let found = ref false in
        for j = 0 to n_split + n_slack - 1 do
          if (not !found) && not (Rat.is_zero t.(i).(j)) then begin
            pivot tb ~row:i ~col:j;
            found := true
          end
        done
        (* If no pivot exists the row is redundant (all-zero over real
           columns); leaving the artificial basic at value zero is
           harmless as long as it never re-enters. *)
      end
    done;
    let allowed j = j < n_split + n_slack in
    let phase2_cost =
      Array.init n (fun j ->
          if j < n_split then begin
            let v = j / 2 in
            if j land 1 = 0 then objective.(v) else Rat.neg objective.(v)
          end
          else Rat.zero)
    in
    set_objective tb phase2_cost;
    let extract () =
      let x = Array.make nvars Rat.zero in
      for i = 0 to m - 1 do
        let b = basis.(i) in
        if b < n_split then begin
          let v = b / 2 in
          let contrib =
            if b land 1 = 0 then t.(i).(n) else Rat.neg t.(i).(n)
          in
          x.(v) <- Rat.add x.(v) contrib
        end
      done;
      x
    in
    match iterate tb ~allowed with
    | `Optimal -> Optimal (extract (), Rat.neg t.(m).(n))
    | `Unbounded _ -> Unbounded (extract ())
  end

let feasible ~nvars ~rows () =
  match solve ~nvars ~rows ~objective:(Array.make nvars Rat.zero) () with
  | Optimal (x, _) | Unbounded x -> Some x
  | Infeasible -> None

let check_solution ~rows x =
  List.for_all
    (fun { coeffs; op; rhs } ->
      let lhs = ref Rat.zero in
      Array.iteri
        (fun i c -> lhs := Rat.add !lhs (Rat.mul c x.(i)))
        coeffs;
      match op with
      | Le -> Rat.compare !lhs rhs <= 0
      | Ge -> Rat.compare !lhs rhs >= 0
      | Eq -> Rat.equal !lhs rhs)
    rows
