(** The Vertex-Cover reduction behind Proposition 6.9: CQ[m]-Sep[*] is
    NP-complete even for fixed-arity schemas.

    Construction: for a graph [G = (V, E)], build an entity per edge
    plus one distinguished entity [p]; a node element [n_v] per vertex
    carries a unique unary label [L_v] and incidence facts
    [Inc(e, n_v)]; [p] is incident to a fresh unlabeled node. Edge
    entities are negative, [p] positive.

    Over this database, the non-constant CQ[2] indicator sets are the
    vertex stars [{e | v ∈ e}] and the single edges, no feature selects
    [p] without selecting everything, and [p]'s all-(-1) vector must be
    separated from every edge — so a statistic of dimension ℓ separates
    iff ℓ features' stars/edges cover [E], and since a star dominates
    any single edge through it, the minimum dimension is exactly the
    minimum vertex cover of [G]. *)

(** [to_training ~edges] builds the training database for the graph
    with edge list [edges] (vertices are the integers mentioned).
    @raise Invalid_argument on an empty edge list or a self-loop. *)
val to_training : edges:(int * int) list -> Labeling.training

(** [min_vertex_cover ~edges] is the brute-force minimum vertex cover
    size (for cross-checking the reduction; exponential). *)
val min_vertex_cover : edges:(int * int) list -> int

(** [min_dimension_equals_cover ~edges] runs both sides: the minimal
    separating dimension of the reduced instance (over CQ[2]) and the
    brute-force cover number, returning the pair. *)
val min_dimension_equals_cover : edges:(int * int) list -> int option * int
