lib/core/apx_reduction.mli: Elem Labeling Rat
