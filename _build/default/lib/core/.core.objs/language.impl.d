lib/core/language.ml: Cq Cq_decomp Elem Format Printf
