lib/core/preorder_chain.mli: Elem Labeling Linsep
