lib/core/model_io.mli: Db Labeling Linsep Statistic
