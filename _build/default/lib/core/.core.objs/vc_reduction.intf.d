lib/core/vc_reduction.mli: Labeling
