lib/core/language.mli: Cq Format
