lib/core/dim_sep.mli: Cq Elem Labeling Language Linsep Qbe
