lib/core/atoms_sep.ml: Bigint Cq_enum Db Elem Eval_engine Hashtbl Labeling Linsep List Rat Statistic
