lib/core/atoms_sep.mli: Db Labeling Linsep Rat Statistic
