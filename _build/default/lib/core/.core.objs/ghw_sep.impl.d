lib/core/ghw_sep.ml: Array Cover_game Db Labeling List Preorder_chain Rat Unravel
