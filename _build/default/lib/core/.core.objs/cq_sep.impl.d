lib/core/cq_sep.ml: Array Cq Db Hom Labeling List Preorder_chain Rat
