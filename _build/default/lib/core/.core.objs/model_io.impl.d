lib/core/model_io.ml: Array Bigint Buffer Cq Cq_parse Linsep List Printf Rat Statistic String
