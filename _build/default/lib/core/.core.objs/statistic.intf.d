lib/core/statistic.mli: Cq Db Elem Format Labeling Linsep
