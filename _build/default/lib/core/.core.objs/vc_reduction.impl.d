lib/core/vc_reduction.ml: Array Cqfeat Db Elem Fact Labeling Language List Printf
