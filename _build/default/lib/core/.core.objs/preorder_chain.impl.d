lib/core/preorder_chain.ml: Array Buffer Elem Labeling Linsep List Printf
