lib/core/cq_sep.mli: Db Elem Labeling Linsep Preorder_chain Rat Statistic
