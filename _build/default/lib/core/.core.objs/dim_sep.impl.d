lib/core/dim_sep.ml: Array Atoms_sep Cq Db Elem Eval_engine Fact Fo_sep Hashtbl Labeling Language Linsep List Pebble_game Printf Qbe Unravel
