lib/core/apx_reduction.ml: Bigint Db Elem Fact Labeling List Printf Rat
