lib/core/cqfeat.mli: Db Labeling Language Linsep Rat Statistic
