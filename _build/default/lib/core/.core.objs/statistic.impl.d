lib/core/statistic.ml: Array Cq Db Elem Eval_engine Format Labeling Linsep List
