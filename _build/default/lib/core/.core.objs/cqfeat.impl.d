lib/core/cqfeat.ml: Atoms_sep Bigint Cq_sep Db Dim_sep Fo_sep Ghw_sep Labeling Language List Logs Pebble_game Printf Rat Statistic
