(** The preorder-based separability machinery shared by CQ-Sep and
    GHW(k)-Sep (Lemma 5.4, Theorem 5.8, Theorem 7.4).

    Both classes admit canonical "most specific" feature queries [q_e]
    whose selection relation is a preorder [≼] on entities
    ([e ≼ e'] iff [e' ∈ q_e(D)]): the homomorphism preorder
    [(D,e) → (D,e')] for CQ, the cover-game preorder
    [(D,e) →_k (D,e')] for GHW(k). Everything downstream — the
    separability test, the explicit classifier, Algorithm 1's
    materialization-free classification, and Algorithm 2's optimal
    relabeling — depends only on that preorder, so it is factored out
    here. *)

type t = {
  reps : Elem.t array;  (** class representatives, topologically sorted *)
  members : Elem.t list array;  (** class members, same indexing *)
  class_below : bool array array;
      (** [class_below.(j).(i)] iff [E_j ≼ E_i]; topological order
          guarantees it implies [j ≤ i] *)
}

(** [build ~entities ~matrix] groups entities into equivalence classes
    of the preorder [matrix] ([matrix.(i).(j)] = [e_i ≼ e_j]) and
    topologically sorts the classes. *)
val build : entities:Elem.t array -> matrix:bool array array -> t

(** [class_of t e] is the index of [e]'s class.
    @raise Not_found if [e] belongs to no class. *)
val class_of : t -> Elem.t -> int

(** [consistent_labels t labeling] returns the per-class labels when
    every class is label-homogeneous — the separability criterion of
    Lemma 5.4(2) — and otherwise an oppositely-labeled
    equivalent pair, which witnesses inseparability. *)
val consistent_labels :
  t -> Labeling.t -> (Labeling.label array, Elem.t * Elem.t) result

(** [majority_labels t labeling] is Algorithm 2's relabeling: each
    class takes the majority label of its members (ties go positive,
    matching the [≥ 0] convention of Theorem 7.4). Returns the class
    labels and the total disagreement with [labeling] — the minimum
    over all separable relabelings. *)
val majority_labels : t -> Labeling.t -> Labeling.label array * int

(** [classifier t labels] is the explicit exact classifier of the
    Kimelfeld–Ré construction for the statistic [(q_{rep_1}, ...,
    q_{rep_m})] (no LP). *)
val classifier : t -> Labeling.label array -> Linsep.classifier

(** [vector_of ~arrow t x] is the ±1 vector of an item [x] under the
    canonical statistic, where [arrow rep x] decides
    [x ∈ q_rep(·)] — e.g. [(D, rep) →_k (D', x)] in Algorithm 1. *)
val vector_of : arrow:(Elem.t -> 'a -> bool) -> t -> 'a -> int array

(** [classify ~arrow t labels xs] labels each item by applying
    {!classifier} to its {!vector_of} — Algorithm 1 generically. *)
val classify :
  arrow:(Elem.t -> 'a -> bool) ->
  t ->
  Labeling.label array ->
  'a list ->
  ('a * Labeling.label) list

(** [to_dot ?labels t] renders the class DAG (covering relation of the
    preorder) in Graphviz format; with [labels], classes are annotated
    with their label. The ≼-structure is the object Lemma 5.4 and
    Algorithm 1 are really about, so the CLI exposes this for
    inspection. *)
val to_dot : ?labels:Labeling.label array -> t -> string
