type t =
  | Cq_all
  | Cq_atoms of { m : int; p : int option }
  | Ghw of int
  | Fo
  | Fo_k of int
  | Epfo

let to_string = function
  | Cq_all -> "CQ"
  | Cq_atoms { m; p = None } -> Printf.sprintf "CQ[%d]" m
  | Cq_atoms { m; p = Some p } -> Printf.sprintf "CQ[%d,%d]" m p
  | Ghw k -> Printf.sprintf "GHW(%d)" k
  | Fo -> "FO"
  | Fo_k k -> Printf.sprintf "FO_%d" k
  | Epfo -> "∃FO+"

let pp fmt l = Format.pp_print_string fmt (to_string l)

let member lang q =
  match lang with
  | Cq_all | Fo | Epfo -> true
  | Fo_k k ->
      (* a CQ is a k-variable query iff it can be written with k
         variables; a sufficient syntactic criterion is having at most
         k variables, which is what feature CQs built by this library
         report *)
      Elem.Set.cardinal (Cq.vars q) <= k
  | Cq_atoms { m; p } -> begin
      Cq.num_atoms q <= m
      && match p with None -> true | Some p -> Cq.max_var_occurrences q <= p
    end
  | Ghw k -> Cq_decomp.ghw_le q k
