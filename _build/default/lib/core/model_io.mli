(** Serialization of trained models (statistic + linear classifier).

    A model is rendered as a line-oriented text file:
    {v
      # cqfeat model v1
      feature x :- R(x)
      feature x :- S(y0), E(x,y0)
      threshold -3
      weight 1/2
      weight -27
    v}
    with one [weight] line per feature, in order. Weights and the
    threshold are exact rationals, so a round-trip is lossless —
    including the bignum weights of the chain classifier. *)

type model = { statistic : Statistic.t; classifier : Linsep.classifier }

exception Parse_error of string

(** [make statistic classifier] validates the dimensions.
    @raise Invalid_argument on a weight/feature count mismatch. *)
val make : Statistic.t -> Linsep.classifier -> model

val to_string : model -> string

(** @raise Parse_error on malformed input. *)
val of_string : string -> model

(** [save path model] / [load path] — file-level wrappers.
    @raise Sys_error on I/O failure.
    @raise Parse_error on malformed input. *)
val save : string -> model -> unit

val load : string -> model

(** [apply model db] labels the entities of [db] with the model. *)
val apply : model -> Db.t -> Labeling.t
