type instance = { db : Db.t; pos : Elem.t list; neg : Elem.t list }

let make db ~pos ~neg =
  if pos = [] then invalid_arg "Qbe.make: empty positive set";
  let check_entity side e =
    if not (Db.is_entity e db) then
      invalid_arg
        (Printf.sprintf "Qbe.make: %s example %s is not an entity" side
           (Elem.to_string e))
  in
  List.iter (check_entity "positive") pos;
  List.iter (check_entity "negative") neg;
  List.iter
    (fun e ->
      if List.exists (Elem.equal e) neg then
        invalid_arg "Qbe.make: example sets intersect")
    pos;
  { db; pos; neg }

let product_of_positives inst =
  Product.pointed (List.map (fun a -> (inst.db, a)) inst.pos)

let cq_decide inst =
  let p, point = product_of_positives inst in
  List.for_all
    (fun b -> not (Hom.pointed p [ point ] inst.db [ b ]))
    inst.neg

let cq_explanation ?(minimize = false) inst =
  if not (cq_decide inst) then None
  else begin
    let p, point = product_of_positives inst in
    let q = Cq.of_pointed_db (p, point) in
    Some (if minimize then Cq.core q else q)
  end

let ghw_decide ~k inst =
  let p, point = product_of_positives inst in
  List.for_all
    (fun b -> not (Cover_game.holds1 ~k (p, point) (inst.db, b)))
    inst.neg

(* A GHW(k) explanation, materialized as a depth-bounded unraveling of
   the positive product. At the stabilization depth it is exact; the
   caller controls the (exponentially costly) depth. *)
let ghw_explanation ~k ~depth inst =
  if not (ghw_decide ~k inst) then None
  else begin
    let p, point = product_of_positives inst in
    Some (Unravel.unravel ~k ~depth (p, point))
  end

let is_explanation inst q =
  List.for_all (fun a -> Cq.selects q inst.db a) inst.pos
  && List.for_all (fun b -> not (Cq.selects q inst.db b)) inst.neg

let cqm_explanation ~m ?max_var_occ inst =
  let schema = Cq_enum.schema_of_db inst.db in
  let candidates =
    Cq_enum.feature_queries ?max_var_occ ~schema ~max_atoms:m ()
  in
  List.find_opt (is_explanation inst) candidates

let cqm_decide ~m ?max_var_occ inst =
  cqm_explanation ~m ?max_var_occ inst <> None
