(** Query by example (Section 6.1 of the paper).

    An instance is a database with disjoint sets of positive and
    negative example entities; an [L]-explanation is a unary query
    [q ∈ L] with [S⁺ ⊆ q(D)] and [q(D) ∩ S⁻ = ∅]. Deciding existence:

    - [CQ]: there is an explanation iff the canonical CQ of the direct
      product [P = Π_{a ∈ S⁺} (D, a)] selects no negative example,
      i.e. [(P, p̄) ↛ (D, b)] for every [b ∈ S⁻] (ten Cate–Dalmau).
      The product is exponential in [|S⁺|] — the source of the
      coNEXPTIME-completeness in Theorem 6.1.
    - [GHW(k)]: same criterion with [→_k] in place of [→]
      (Barceló–Romero); EXPTIME-complete.
    - [CQ[m]] (and [CQ[m,p]]): enumerate the finitely many candidate
      queries (NP-complete by Prop 6.11; the certificate is the query).

    This module works over entity schemas: examples must be entities,
    and explanations are feature queries (with the implicit [eta(x)]
    atom, which never changes the answer since examples are
    entities). *)

type instance = { db : Db.t; pos : Elem.t list; neg : Elem.t list }

(** [make db ~pos ~neg] validates and builds an instance.
    @raise Invalid_argument if [pos] is empty, some example is not an
    entity of [db], or the example sets intersect. *)
val make : Db.t -> pos:Elem.t list -> neg:Elem.t list -> instance

(** [product_of_positives inst] is the pointed direct product
    [Π_{a ∈ S⁺} (D, a)] — exponential in [|S⁺|]. *)
val product_of_positives : instance -> Db.t * Elem.t

(** [cq_decide inst] decides CQ-QBE. *)
val cq_decide : instance -> bool

(** [cq_explanation ?minimize inst] returns an explanation when one
    exists: the canonical feature query of the positive product
    (core-reduced when [minimize] is [true]; the core computation is
    itself expensive on the exponential product). *)
val cq_explanation : ?minimize:bool -> instance -> Cq.t option

(** [ghw_decide ~k inst] decides GHW(k)-QBE via the cover game on the
    positive product. *)
val ghw_decide : k:int -> instance -> bool

(** [ghw_explanation ~k ~depth inst] materializes a GHW(k)
    explanation as the depth-[depth] k-cover unraveling of the positive
    product when GHW(k)-QBE holds. At sufficient depth the unraveling
    is an exact explanation (verify with {!is_explanation}); its size
    is exponential in [depth] — the EXPTIME generation cost the paper
    predicts. *)
val ghw_explanation : k:int -> depth:int -> instance -> Cq.t option

(** [cqm_decide ~m ?max_var_occ inst] decides CQ[m]-QBE (resp.
    CQ[m,p]-QBE) by candidate enumeration over the schema of [db]. *)
val cqm_decide : m:int -> ?max_var_occ:int -> instance -> bool

(** [cqm_explanation ~m ?max_var_occ inst] returns some CQ[m]
    explanation if one exists. *)
val cqm_explanation : m:int -> ?max_var_occ:int -> instance -> Cq.t option

(** [is_explanation inst q] checks the defining conditions directly. *)
val is_explanation : instance -> Cq.t -> bool
