(* Canonical rationals: den > 0, gcd (|num|, den) = 1. *)

type t = { n : Bigint.t; d : Bigint.t }

let make n d =
  if Bigint.is_zero d then raise Division_by_zero;
  let n, d = if Bigint.sign d < 0 then (Bigint.neg n, Bigint.neg d) else (n, d) in
  if Bigint.is_zero n then { n = Bigint.zero; d = Bigint.one }
  else begin
    let g = Bigint.gcd n d in
    { n = Bigint.div n g; d = Bigint.div d g }
  end

let of_bigint n = { n; d = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints n d = make (Bigint.of_int n) (Bigint.of_int d)

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let num t = t.n
let den t = t.d

let neg t = { t with n = Bigint.neg t.n }
let abs t = { t with n = Bigint.abs t.n }

let add a b =
  make
    (Bigint.add (Bigint.mul a.n b.d) (Bigint.mul b.n a.d))
    (Bigint.mul a.d b.d)

let sub a b = add a (neg b)
let mul a b = make (Bigint.mul a.n b.n) (Bigint.mul a.d b.d)
let div a b = make (Bigint.mul a.n b.d) (Bigint.mul a.d b.n)

let inv t =
  if Bigint.is_zero t.n then raise Division_by_zero;
  make t.d t.n

let sign t = Bigint.sign t.n
let is_zero t = Bigint.is_zero t.n

let compare a b = sign (sub a b)
let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let ( = ) = equal

let to_float t =
  (* Scale down both parts together when they exceed the float-exact
     range; precision loss is acceptable since this is reporting-only. *)
  let rec shrink n d =
    match (Bigint.to_int_opt n, Bigint.to_int_opt d) with
    | Some n, Some d -> float_of_int n /. float_of_int d
    | _ ->
        shrink (Bigint.div n Bigint.two) (Bigint.div d Bigint.two)
  in
  shrink t.n t.d

let to_string t =
  if Bigint.equal t.d Bigint.one then Bigint.to_string t.n
  else Bigint.to_string t.n ^ "/" ^ Bigint.to_string t.d

let pp fmt t = Format.pp_print_string fmt (to_string t)
