(* Sign-magnitude bignum over base-2^30 limbs, least significant limb
   first. The magnitude array never has trailing zero limbs; zero is
   represented by the empty array with sign 0. Limb products fit in a
   native 63-bit int (2^30 * 2^30 + carries < 2^62). *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }
(* Invariants: sign ∈ {-1, 0, 1}; sign = 0 iff mag = [||];
   mag.(Array.length mag - 1) <> 0 when non-empty; 0 <= mag.(i) < base. *)

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = Array.length mag in
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let hi = top (n - 1) in
  if hi < 0 then zero
  else if hi = n - 1 then { sign; mag }
  else { sign; mag = Array.sub mag 0 (hi + 1) }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n > 0 then 1 else -1 in
    (* min_int negation overflows; go through two limbs carefully by
       working with negative absolute values. *)
    let rec limbs acc n =
      if n = 0 then List.rev acc
      else limbs ((-(n mod base)) :: acc) (n / base)
    in
    let neg_abs = if n > 0 then -n else n in
    { sign; mag = Array.of_list (limbs [] neg_abs) }
  end

let one = of_int 1
let minus_one = of_int (-1)
let two = of_int 2

let sign t = t.sign
let is_zero t = t.sign = 0

(* Compare magnitudes only. *)
let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then compare_mag a.mag b.mag
  else compare_mag b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let hash t =
  Array.fold_left (fun acc limb -> (acc * 1000003) lxor limb) t.sign t.mag

(* Magnitude addition: |a| + |b|. *)
let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r

(* Magnitude subtraction: |a| - |b|, requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else begin
    let c = compare_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then normalize a.sign (sub_mag a.mag b.mag)
    else normalize b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let carry = ref 0 in
    let ai = a.(i) in
    for j = 0 to lb - 1 do
      let acc = r.(i + j) + (ai * b.(j)) + !carry in
      r.(i + j) <- acc land base_mask;
      carry := acc lsr base_bits
    done;
    (* Propagate the final carry; r.(i+lb) < base before adding, and the
       carry is < base, so one extra limb absorbs it. *)
    let k = ref (i + lb) in
    while !carry <> 0 do
      let acc = r.(!k) + !carry in
      r.(!k) <- acc land base_mask;
      carry := acc lsr base_bits;
      incr k
    done
  done;
  r

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else normalize (a.sign * b.sign) (mul_mag a.mag b.mag)

(* Shift magnitude left by one bit (multiply by 2). *)
let shift_left_bit_mag a =
  let la = Array.length a in
  let r = Array.make (la + 1) 0 in
  let carry = ref 0 in
  for i = 0 to la - 1 do
    let v = (a.(i) lsl 1) lor !carry in
    r.(i) <- v land base_mask;
    carry := v lsr base_bits
  done;
  r.(la) <- !carry;
  r

(* Number of significant bits in a magnitude. *)
let bits_mag a =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let rec width n acc = if n = 0 then acc else width (n lsr 1) (acc + 1) in
    ((la - 1) * base_bits) + width top 0
  end

(* Long division on magnitudes via bit-by-bit restoring division:
   simple and clearly correct; quadratic, which is fine at our scales
   (classifier weights and simplex pivots stay small). *)
let divmod_mag a b =
  if compare_mag a b < 0 then ([| |], Array.copy a)
  else begin
    let nbits = bits_mag a in
    let q = Array.make (Array.length a) 0 in
    let r = ref [||] in
    for i = nbits - 1 downto 0 do
      let r2 = shift_left_bit_mag !r in
      let bit = (a.(i / base_bits) lsr (i mod base_bits)) land 1 in
      if bit = 1 then r2.(0) <- r2.(0) lor 1;
      let r2 = (normalize 1 r2).mag in
      if compare_mag r2 b >= 0 then begin
        r := sub_mag r2 b;
        r := (normalize 1 !r).mag;
        q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
      else r := r2
    done;
    (q, !r)
  end

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let q_mag, r_mag = divmod_mag a.mag b.mag in
    let q = normalize (a.sign * b.sign) q_mag in
    let r = normalize a.sign r_mag in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow base_v n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b n =
    if n = 0 then acc
    else begin
      let acc = if n land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (n lsr 1)
    end
  in
  go one base_v n

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let to_int_opt t =
  (* Accumulate most-significant first; bail out on overflow by checking
     the pre-multiplication bound. *)
  let limit = Stdlib.max_int / base in
  let rec go acc i =
    if i < 0 then Some acc
    else if acc > limit then None
    else begin
      let acc = acc * base in
      let acc' = acc + t.mag.(i) in
      if acc' < acc then None else go acc' (i - 1)
    end
  in
  match go 0 (Array.length t.mag - 1) with
  | Some m -> if t.sign < 0 then Some (-m) else Some m
  | None ->
      (* min_int has no positive counterpart; handle it explicitly. *)
      if t.sign < 0 && equal t (of_int Stdlib.min_int) then
        Some Stdlib.min_int
      else None

let to_int t =
  match to_int_opt t with
  | Some n -> n
  | None -> failwith "Bigint.to_int: value does not fit in a native int"

let ten = of_int 10

let to_string t =
  if is_zero t then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec digits v =
      if is_zero v then ()
      else begin
        let q, r = divmod v ten in
        digits q;
        Buffer.add_char buf (Char.chr (Char.code '0' + to_int r))
      end
    in
    digits (abs t);
    let body = Buffer.contents buf in
    if t.sign < 0 then "-" ^ body else body
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign_neg, start =
    match s.[0] with
    | '-' -> (true, 1)
    | '+' -> (false, 1)
    | _ -> (false, 0)
  in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  for i = start to n - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then
      invalid_arg (Printf.sprintf "Bigint.of_string: bad character %C" c);
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if sign_neg then neg !acc else !acc

let pp fmt t = Format.pp_print_string fmt (to_string t)
