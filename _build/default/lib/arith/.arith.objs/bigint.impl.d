lib/arith/bigint.ml: Array Buffer Char Format List Printf Stdlib String
