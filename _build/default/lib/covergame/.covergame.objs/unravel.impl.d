lib/covergame/unravel.ml: Cover_game Cq Db Elem Fact List
