lib/covergame/cover_game.ml: Array Db Elem Fact Hashtbl List Queue
