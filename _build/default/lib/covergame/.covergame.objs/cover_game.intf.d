lib/covergame/cover_game.mli: Db Elem
