lib/covergame/unravel.mli: Cq Db Elem
