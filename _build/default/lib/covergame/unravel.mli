(** k-cover unravelings: materializing the canonical GHW(k) feature
    query of a pointed database (feature generation, Section 5.2).

    The depth-[t] unraveling of [(D, e)] is the GHW(k) query whose
    canonical database is a tree of k-covered sets: every node carries a
    fresh copy of the facts of [D] lying inside its set (plus the
    distinguished element [e], which is never copied — it becomes the
    free variable), and a child shares the variables of the elements it
    has in common with its parent. Homomorphisms from the unraveling
    into [(D', e')] are exactly Duplicator strategies for [t] rounds of
    set-moves in the existential k-cover game, so as [t] grows the
    unraveling converges to the canonical query [q_e] of Lemma 5.4 with
    [q_e(D') = { e' | (D,e) →_k (D',e') }].

    The size is [Θ(S^t)] for [S] k-covered sets — the exponential blowup
    that Proposition 5.6 allows and Theorem 5.7 proves unavoidable.
    This module is therefore a witness, not a scalable tool; Algorithm 1
    ({!Ghw_classify} in the core library) classifies {e without}
    materializing these queries. *)

(** [unravel ~k ~depth (d, e)] is the depth-[depth] unraveling of
    [(d, e)]. [depth = 0] yields the query consisting of the facts on
    [e] alone.
    @raise Invalid_argument if [k < 1] or [depth < 0]. *)
val unravel : k:int -> depth:int -> Db.t * Elem.t -> Cq.t

(** [node_count ~k ~depth d] is the number of tree nodes the unraveling
    would create ([(S^{depth+1}-1)/(S-1)] for [S] covered sets) without
    building it — used by the Theorem 5.7 feature-size bench. *)
val node_count : k:int -> depth:int -> Db.t -> int

(** [stable_unravel ~k ~max_depth (d, e)] increases the depth until two
    consecutive unravelings are equivalent (then the limit [q_e] is
    reached on every database of interest) or [max_depth] is hit;
    returns the query and the depth used. Equivalence of the
    exponential-size unravelings is itself expensive: keep inputs
    tiny. *)
val stable_unravel : k:int -> max_depth:int -> Db.t * Elem.t -> Cq.t * int
