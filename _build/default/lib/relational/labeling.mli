(** Labelings and training databases.

    A labeling assigns [+1] (positive) or [-1] (negative) to every
    entity of a database; a training database pairs a database with a
    labeling of its entities (Section 3 of the paper). *)

type label = Pos | Neg

(** [label_sign l] is [+1] for [Pos] and [-1] for [Neg]. *)
val label_sign : label -> int

val label_of_sign : int -> label
val label_equal : label -> label -> bool
val flip : label -> label
val pp_label : Format.formatter -> label -> unit

type t
(** A labeling: a finite map from entities to labels. *)

val empty : t

(** [set e l t] binds entity [e] to label [l]. *)
val set : Elem.t -> label -> t -> t

(** [of_list bindings] builds a labeling from [(entity, label)] pairs. *)
val of_list : (Elem.t * label) list -> t

(** [get e t] looks up the label of [e].
    @raise Not_found if [e] is unlabeled. *)
val get : Elem.t -> t -> label

val get_opt : Elem.t -> t -> label option
val bindings : t -> (Elem.t * label) list
val positives : t -> Elem.t list
val negatives : t -> Elem.t list
val cardinal : t -> int

(** [disagreement a b] counts the entities labeled by both [a] and [b]
    on which they differ. *)
val disagreement : t -> t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

type training = { db : Db.t; labeling : t }
(** A training database [(D, λ)]. *)

(** [training db labeling] pairs a database with a labeling.
    @raise Invalid_argument if some entity of [db] is unlabeled or some
    labeled element is not an entity of [db]. *)
val training : Db.t -> t -> training

(** [training_of_list facts labeled] builds the database from [facts]
    plus an [eta] fact per labeled entity, and the labeling from
    [labeled]. *)
val training_of_list : (string * Elem.t list) list -> (Elem.t * label) list -> training
