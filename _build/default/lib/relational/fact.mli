(** Facts: a relation name applied to a tuple of elements. *)

type t = { rel : string; args : Elem.t array }

(** [make rel args] builds a fact. The array is owned by the fact;
    callers must not mutate it afterwards. *)
val make : string -> Elem.t array -> t

(** [make_l rel args] is [make] from a list. *)
val make_l : string -> Elem.t list -> t

val rel : t -> string
val args : t -> Elem.t array
val arity : t -> int

(** [elems f] is the set of elements occurring in [f]. *)
val elems : t -> Elem.Set.t

val compare : t -> t -> int
val equal : t -> t -> bool

(** [map_elems g f] applies [g] to every argument. *)
val map_elems : (Elem.t -> Elem.t) -> t -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
