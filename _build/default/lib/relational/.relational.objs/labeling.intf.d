lib/relational/labeling.mli: Db Elem Format
