lib/relational/elem.mli: Format Map Set
