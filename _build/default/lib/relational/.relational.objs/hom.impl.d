lib/relational/hom.ml: Array Db Elem Fact List Queue
