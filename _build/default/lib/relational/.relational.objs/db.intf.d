lib/relational/db.mli: Elem Fact Format
