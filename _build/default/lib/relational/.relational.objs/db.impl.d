lib/relational/db.ml: Array Elem Fact Format List Map String
