lib/relational/product.ml: Array Db Elem Fact List
