lib/relational/product.mli: Db Elem
