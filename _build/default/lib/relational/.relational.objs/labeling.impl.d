lib/relational/labeling.ml: Db Elem Format List Printf
