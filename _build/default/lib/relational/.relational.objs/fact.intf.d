lib/relational/fact.mli: Elem Format Map Set
