lib/relational/hom.mli: Db Elem
