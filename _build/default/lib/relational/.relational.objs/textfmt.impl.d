lib/relational/textfmt.ml: Buffer Db Elem Fact Labeling List Printf String
