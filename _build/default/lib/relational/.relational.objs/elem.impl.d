lib/relational/elem.ml: Format Hashtbl List Map Set Stdlib String
