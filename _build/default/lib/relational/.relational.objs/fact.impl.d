lib/relational/fact.ml: Array Elem Format Map Set Stdlib String
