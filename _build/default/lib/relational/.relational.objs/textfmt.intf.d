lib/relational/textfmt.mli: Db Labeling
