(** Universe elements of databases.

    Elements are symbolic constants, integers, or tuples of elements.
    Tuples arise from direct products of databases (the element of a
    product is the tuple of its projections) and nest freely, so the
    product construction closes over its own output. A total order is
    provided for use in sets and maps. *)

type t =
  | Sym of string  (** named constant *)
  | Int of int  (** integer constant (convenient for generators) *)
  | Tup of t list  (** product element *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** [sym s] is [Sym s]. *)
val sym : string -> t

(** [int n] is [Int n]. *)
val int : int -> t

(** [tup es] is [Tup es]. *)
val tup : t list -> t

(** [to_string e] renders [Sym]/[Int] atomically and tuples as
    [(e1,...,en)]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
