(** Direct products of databases.

    The direct product [D1 × D2] has a fact
    [R((a1,b1),...,(ak,bk))] for every pair of facts [R(ā) ∈ D1],
    [R(b̄) ∈ D2]. It is the categorical product with respect to
    homomorphisms: [(C,c̄) → (D1×D2, (ā,b̄))] iff [(C,c̄) → (D1,ā)] and
    [(C,c̄) → (D2,b̄)]. Products are the engine of the QBE results of
    Section 6 (ten Cate–Dalmau): the canonical CQ of the product of the
    positive pointed databases is the most specific candidate
    explanation. The n-ary product grows exponentially in n, which is
    the source of the coNEXPTIME/EXPTIME bounds of Theorem 6.1. *)

(** [binary d1 d2] is the direct product [d1 × d2]; elements are
    [Elem.Tup [a; b]] pairs. *)
val binary : Db.t -> Db.t -> Db.t

(** [pointed pds] is the n-ary product of the pointed databases
    [(d_i, e_i)], returning the product database together with the
    distinguished product element [Tup [e_1; ...; e_n]].
    @raise Invalid_argument on the empty list. *)
val pointed : (Db.t * Elem.t) list -> Db.t * Elem.t

(** [nary ds] is the n-ary product; elements are n-tuples.
    @raise Invalid_argument on the empty list. *)
val nary : Db.t list -> Db.t
