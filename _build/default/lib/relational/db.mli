(** Databases: finite sets of facts with access-path indexes.

    A database keeps, besides the set of facts, an index from relation
    name to facts and from element to the facts containing it; the
    homomorphism search and the cover game rely on both. Databases are
    immutable (adding a fact returns a new database sharing structure).

    The entity relation η of the paper's entity schemas is represented by
    the distinguished unary relation name {!entity_rel}. *)

type t

(** Name of the distinguished unary entity relation η ("eta"). *)
val entity_rel : string

val empty : t

(** [add fact db] is [db] with [fact] added (idempotent). *)
val add : Fact.t -> t -> t

(** [of_facts facts] builds a database from a list of facts. *)
val of_facts : Fact.t list -> t

(** [of_list specs] builds a database from [(rel, args)] pairs. *)
val of_list : (string * Elem.t list) list -> t

val facts : t -> Fact.t list
val fact_set : t -> Fact.Set.t

(** [size db] is the number of facts. *)
val size : t -> int

(** [mem fact db] tests membership. *)
val mem : Fact.t -> t -> bool

(** [domain db] is the active domain: all elements occurring in facts. *)
val domain : t -> Elem.Set.t

val domain_size : t -> int

(** [relations db] is the list of relation names mentioned, with arities
    (an arity per name; mixed arities are not checked, last wins). *)
val relations : t -> (string * int) list

(** [facts_of_rel rel db] is the list of facts over relation [rel]. *)
val facts_of_rel : string -> t -> Fact.t list

(** [facts_with_elem e db] is the list of facts whose arguments include
    [e]. *)
val facts_with_elem : Elem.t -> t -> Fact.t list

(** [max_arity db] is the maximal relation arity mentioned (0 if empty). *)
val max_arity : t -> int

(** [entities db] is η(D): the elements [e] with a fact [eta(e)]. *)
val entities : t -> Elem.t list

(** [add_entity e db] adds the fact [eta(e)]. *)
val add_entity : Elem.t -> t -> t

(** [is_entity e db] tests whether [eta(e)] holds. *)
val is_entity : Elem.t -> t -> bool

(** [union a b] is the database holding the facts of both. *)
val union : t -> t -> t

(** [map_elems g db] renames every element via [g]. *)
val map_elems : (Elem.t -> Elem.t) -> t -> t

(** [filter p db] keeps the facts satisfying [p]. *)
val filter : (Fact.t -> bool) -> t -> t

(** [restrict_rels rels db] keeps only the facts whose relation is in
    [rels]. *)
val restrict_rels : string list -> t -> t

(** [without_rel rel db] drops all facts over [rel]. *)
val without_rel : string -> t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
