type label = Pos | Neg

let label_sign = function Pos -> 1 | Neg -> -1
let label_of_sign n = if n >= 0 then Pos else Neg
let label_equal a b = match (a, b) with
  | Pos, Pos | Neg, Neg -> true
  | Pos, Neg | Neg, Pos -> false

let flip = function Pos -> Neg | Neg -> Pos

let pp_label fmt l =
  Format.pp_print_string fmt (match l with Pos -> "+" | Neg -> "-")

type t = label Elem.Map.t

let empty = Elem.Map.empty
let set e l t = Elem.Map.add e l t
let of_list bindings = List.fold_left (fun t (e, l) -> set e l t) empty bindings
let get e t = Elem.Map.find e t
let get_opt e t = Elem.Map.find_opt e t
let bindings t = Elem.Map.bindings t

let positives t =
  List.filter_map
    (fun (e, l) -> match l with Pos -> Some e | Neg -> None)
    (bindings t)

let negatives t =
  List.filter_map
    (fun (e, l) -> match l with Neg -> Some e | Pos -> None)
    (bindings t)

let cardinal t = Elem.Map.cardinal t

let disagreement a b =
  Elem.Map.fold
    (fun e la acc ->
      match Elem.Map.find_opt e b with
      | Some lb when not (label_equal la lb) -> acc + 1
      | _ -> acc)
    a 0

let equal a b = Elem.Map.equal label_equal a b

let pp fmt t =
  Format.fprintf fmt "@[<h>";
  List.iter
    (fun (e, l) -> Format.fprintf fmt "%a%a " Elem.pp e pp_label l)
    (bindings t);
  Format.fprintf fmt "@]"

type training = { db : Db.t; labeling : t }

let training db labeling =
  let entities = Db.entities db in
  List.iter
    (fun e ->
      if get_opt e labeling = None then
        invalid_arg
          (Printf.sprintf "Labeling.training: unlabeled entity %s"
             (Elem.to_string e)))
    entities;
  Elem.Map.iter
    (fun e _ ->
      if not (Db.is_entity e db) then
        invalid_arg
          (Printf.sprintf "Labeling.training: %s labeled but not an entity"
             (Elem.to_string e)))
    labeling;
  { db; labeling }

let training_of_list facts labeled =
  let db = Db.of_list facts in
  let db =
    List.fold_left (fun db (e, _) -> Db.add_entity e db) db labeled
  in
  training db (of_list labeled)
