module Str_map = Map.Make (String)

type t = {
  facts : Fact.Set.t;
  by_rel : Fact.t list Str_map.t;
  by_elem : Fact.t list Elem.Map.t;
  dom : Elem.Set.t;
}

let entity_rel = "eta"

let empty =
  {
    facts = Fact.Set.empty;
    by_rel = Str_map.empty;
    by_elem = Elem.Map.empty;
    dom = Elem.Set.empty;
  }

let cons_multi key v map find add =
  let existing = match find key map with Some l -> l | None -> [] in
  add key (v :: existing) map

let add fact db =
  if Fact.Set.mem fact db.facts then db
  else begin
    let by_rel =
      cons_multi (Fact.rel fact) fact db.by_rel Str_map.find_opt Str_map.add
    in
    let elems = Fact.elems fact in
    let by_elem =
      Elem.Set.fold
        (fun e acc ->
          cons_multi e fact acc Elem.Map.find_opt Elem.Map.add)
        elems db.by_elem
    in
    {
      facts = Fact.Set.add fact db.facts;
      by_rel;
      by_elem;
      dom = Elem.Set.union elems db.dom;
    }
  end

let of_facts facts = List.fold_left (fun db f -> add f db) empty facts

let of_list specs =
  of_facts (List.map (fun (rel, args) -> Fact.make_l rel args) specs)

let facts db = Fact.Set.elements db.facts
let fact_set db = db.facts
let size db = Fact.Set.cardinal db.facts
let mem fact db = Fact.Set.mem fact db.facts
let domain db = db.dom
let domain_size db = Elem.Set.cardinal db.dom

let relations db =
  Str_map.fold
    (fun rel facts acc ->
      match facts with
      | [] -> acc
      | f :: _ -> (rel, Fact.arity f) :: acc)
    db.by_rel []

let facts_of_rel rel db =
  match Str_map.find_opt rel db.by_rel with Some l -> l | None -> []

let facts_with_elem e db =
  match Elem.Map.find_opt e db.by_elem with Some l -> l | None -> []

let max_arity db =
  List.fold_left (fun acc (_, ar) -> max acc ar) 0 (relations db)

let entities db =
  List.map (fun f -> (Fact.args f).(0)) (facts_of_rel entity_rel db)

let add_entity e db = add (Fact.make entity_rel [| e |]) db
let is_entity e db = mem (Fact.make entity_rel [| e |]) db

let union a b = Fact.Set.fold add b.facts a
let map_elems g db = of_facts (List.map (Fact.map_elems g) (facts db))
let filter p db = of_facts (List.filter p (facts db))

let restrict_rels rels db =
  filter (fun f -> List.mem (Fact.rel f) rels) db

let without_rel rel db = filter (fun f -> Fact.rel f <> rel) db
let equal a b = Fact.Set.equal a.facts b.facts
let compare a b = Fact.Set.compare a.facts b.facts

let pp fmt db =
  Format.fprintf fmt "@[<v>";
  List.iter (fun f -> Format.fprintf fmt "%a@ " Fact.pp f) (facts db);
  Format.fprintf fmt "@]"

let to_string db = String.concat " " (List.map Fact.to_string (facts db))
