(** Homomorphism search between databases.

    A homomorphism from [src] to [dst] is a map [h] on [domain src]
    such that every fact [R(ā)] of [src] has [R(h(ā))] in [dst]. This
    backtracking search underlies CQ evaluation, CQ containment, the
    hom-equivalence test behind CQ-Sep, and the QBE product criterion.
    The search is worst-case exponential (the problem is NP-complete),
    matching the paper's combined-complexity landscape. *)

type mapping = Elem.t Elem.Map.t

(** [find ?fix ?naive ~src ~dst ()] searches for a homomorphism from
    [src] to [dst] extending the partial assignment [fix]. Returns the
    full mapping on [domain src] if one exists. [fix] may mention
    elements outside [domain src]; they are ignored. With
    [naive = true] the join-based candidate generation is disabled and
    every domain element of [dst] is tried at each step — an ablation
    knob for the bench harness (the result is identical). *)
val find :
  ?fix:(Elem.t * Elem.t) list -> ?naive:bool -> src:Db.t -> dst:Db.t ->
  unit -> mapping option

(** [exists ?fix ?naive ~src ~dst ()] is [find ... <> None]. *)
val exists :
  ?fix:(Elem.t * Elem.t) list -> ?naive:bool -> src:Db.t -> dst:Db.t ->
  unit -> bool

(** [pointed src sa dst db] decides [(src, sa) → (dst, db)]: a
    homomorphism mapping the i-th element of [sa] to the i-th element of
    [db].
    @raise Invalid_argument if the tuples have different lengths. *)
val pointed : Db.t -> Elem.t list -> Db.t -> Elem.t list -> bool

(** [equiv_pointed d e d' e'] decides homomorphic equivalence of the
    pointed databases [(d,e)] and [(d',e')] (maps in both directions). *)
val equiv_pointed : Db.t -> Elem.t -> Db.t -> Elem.t -> bool

(** [is_hom mapping ~src ~dst] checks that [mapping] (total on
    [domain src]) is a homomorphism. *)
val is_hom : mapping -> src:Db.t -> dst:Db.t -> bool

(** [count ?fix ~src ~dst ()] counts all homomorphisms (for tests). *)
val count : ?fix:(Elem.t * Elem.t) list -> src:Db.t -> dst:Db.t -> unit -> int
