lib/cq/cq.mli: Db Elem Fact Format
