lib/cq/cq_decomp.ml: Array Cq Elem Fact Hashtbl List
