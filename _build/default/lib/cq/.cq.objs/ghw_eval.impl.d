lib/cq/ghw_eval.ml: Array Cq Cq_decomp Db Elem Fact Hashtbl List
