lib/cq/eval_engine.mli: Cq Cq_decomp Db Elem Join_tree
