lib/cq/eval_engine.ml: Cq Cq_decomp Elem Ghw_eval Join_tree List
