lib/cq/cq_parse.ml: Cq Elem Fact List Printf String
