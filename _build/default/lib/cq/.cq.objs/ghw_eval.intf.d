lib/cq/ghw_eval.mli: Cq Cq_decomp Db Elem
