lib/cq/cq_enum.mli: Cq Db
