lib/cq/cq_decomp.mli: Cq Elem Fact
