lib/cq/cq.ml: Array Db Elem Fact Format Hashtbl Hom List Printf String
