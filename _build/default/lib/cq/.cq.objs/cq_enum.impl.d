lib/cq/cq_enum.ml: Array Cq Db Elem Fact Hashtbl List Printf String
