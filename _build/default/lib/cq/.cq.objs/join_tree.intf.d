lib/cq/join_tree.mli: Cq Db Elem
