lib/cq/join_tree.ml: Array Cq Db Elem Fact Hashtbl List
