lib/cq/cq_parse.mli: Cq
