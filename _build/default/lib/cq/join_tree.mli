(** Join trees and Yannakakis evaluation for α-acyclic feature queries.

    The paper's tractability results lean on polynomial-time CQ
    evaluation for restricted classes ([9], [12]); the textbook engine
    for the acyclic case is GYO ear removal + the Yannakakis
    semijoin algorithm, implemented here from scratch. A feature query
    is treated as a plain CQ over all its variables (the free variable
    is an ordinary vertex here — this is full α-acyclicity, a stronger
    condition than the free-variable-deleted acyclicity of
    {!Cq_decomp.is_free_acyclic}).

    [eval] runs in time polynomial in [|D|] (O(|D|·log|D|) semijoins
    per atom), versus the exponential worst case of backtracking
    homomorphism search — the crossover that the `eval/engines` bench
    measures. *)

type tree
(** A join forest over the atoms of a query. *)

(** [build q] is the GYO reduction: [Some forest] iff the full atom
    hypergraph of [q] (including [eta(x)]) is α-acyclic. *)
val build : Cq.t -> tree option

(** [is_acyclic q] is [build q <> None]. *)
val is_acyclic : Cq.t -> bool

(** [eval q db] computes [q(db)] by bottom-up semijoin reduction over
    the join forest.
    @raise Invalid_argument if [q] is not α-acyclic (check {!is_acyclic}
    or use {!Eval_engine.eval}). *)
val eval : Cq.t -> Db.t -> Elem.t list
