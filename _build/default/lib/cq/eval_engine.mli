(** Evaluation dispatcher: pick the cheapest sound engine per query.

    - α-acyclic queries (including the free variable) go to the
      Yannakakis engine ({!Join_tree}) — polynomial.
    - Otherwise, if a width-k decomposition with small k exists, the
      decomposition engine ({!Ghw_eval}) — polynomial for fixed k.
    - Otherwise per-entity backtracking homomorphism search ({!Cq}) —
      NP-hard combined complexity, matching the general case.

    The choice is cached per query so statistics evaluated over many
    databases (or many entities) plan once. *)

type plan =
  | Acyclic of Join_tree.tree
  | Decomposed of Cq_decomp.decomp list
  | Hom_search

(** [plan ?max_width q] chooses an engine ([max_width] bounds the
    decomposition search; default 2). *)
val plan : ?max_width:int -> Cq.t -> plan

(** [plan_kind_name p] is a short label for reporting/benches. *)
val plan_kind_name : plan -> string

(** [eval ?max_width q db] is [q(db)] via the chosen engine. *)
val eval : ?max_width:int -> Cq.t -> Db.t -> Elem.t list

(** [eval_with_plan q plan db] reuses a previously computed plan. *)
val eval_with_plan : Cq.t -> plan -> Db.t -> Elem.t list

(** [selects ?max_width q db e] is membership via the chosen engine. *)
val selects : ?max_width:int -> Cq.t -> Db.t -> Elem.t -> bool
