(** Enumeration of the regularized feature classes CQ[m] and CQ[m,p].

    The key observation behind Proposition 4.1 of the paper: for fixed
    [m] the statistic containing {e all} feature queries with at most
    [m] atoms (over the relation symbols of the data) is separating iff
    any statistic is, and its size is bounded by [r^m · 2^{p(k)}] for
    [r] relation symbols of maximal arity [k]. This module materializes
    that statistic.

    Queries are generated with a canonical variable-introduction
    discipline and deduplicated up to isomorphism (variable renaming),
    which preserves indicator functions. Counts are exponential in
    [m · k] — exactly the [2^{q(k)}] factor in the paper's FPT bound,
    which the `prop41` benches sweep. *)

(** [feature_queries ?max_var_occ ~schema ~max_atoms ()] is all feature
    queries [q(x)] with at most [max_atoms] atoms over the relation
    symbols of [schema] (pairs of name and arity, [eta] excluded —
    the mandatory [eta(x)] atom is implicit and not counted), up to
    isomorphism. With [max_var_occ = p] only queries in CQ[m,p] (each
    variable occurring at most [p] times) are produced. Includes the
    trivial query [eta(x)] (zero atoms). *)
val feature_queries :
  ?max_var_occ:int -> schema:(string * int) list -> max_atoms:int -> unit -> Cq.t list

(** [count ?max_var_occ ~schema ~max_atoms ()] is
    [List.length (feature_queries ...)] without retaining the list. *)
val count :
  ?max_var_occ:int -> schema:(string * int) list -> max_atoms:int -> unit -> int

(** [dedupe_equivalent qs] removes semantic duplicates (pairwise
    {!Cq.equivalent}); quadratic with NP-hard tests — only for small
    lists. *)
val dedupe_equivalent : Cq.t list -> Cq.t list

(** [schema_of_db db] is the relation list of a database without the
    entity relation, suitable for [~schema]. *)
val schema_of_db : Db.t -> (string * int) list
