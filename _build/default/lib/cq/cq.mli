(** Unary conjunctive queries (feature queries).

    A feature query [q(x)] is represented by its canonical database
    [D_q] together with the free variable [x] (Section 2 of the paper);
    variables are just elements of the canonical database. Following
    the paper's convention, the atom [eta(x)] is always present, so
    [eval q db ⊆ entities db].

    Evaluation, containment and equivalence are all by homomorphism
    (NP-hard in general, per the paper's combined-complexity
    landscape); {!core} minimizes a query to its homomorphic core. *)

type t

(** The canonical free variable [Sym "x"] used by {!make}. *)
val default_free : Elem.t

(** [make ~free atoms] builds the feature query with the given atoms
    (facts whose elements are the query's variables), adding [eta(free)]
    if absent. *)
val make : free:Elem.t -> Fact.t list -> t

(** [of_canonical ~free db] wraps an existing canonical database. *)
val of_canonical : free:Elem.t -> Db.t -> t

(** [of_pointed_db (db, e)] is the canonical CQ of a pointed database:
    every element becomes a variable and [e] becomes the free variable.
    This is the "most specific" query selecting [e] in [db]. *)
val of_pointed_db : Db.t * Elem.t -> t

val free : t -> Elem.t

(** [canonical q] is the canonical database [D_q] (including [eta(x)]). *)
val canonical : t -> Db.t

(** [atoms q] is the atom list of [q] {e excluding} the mandatory
    [eta(free)] atom (the paper does not count it either). *)
val atoms : t -> Fact.t list

(** [num_atoms q] is [List.length (atoms q)] — the [m] of [CQ[m]]. *)
val num_atoms : t -> int

(** [vars q] is the set of variables (elements of the canonical db). *)
val vars : t -> Elem.Set.t

(** [existential_vars q] is [vars q] minus the free variable. *)
val existential_vars : t -> Elem.Set.t

(** [max_var_occurrences q] is the maximum number of atom positions in
    which any single variable occurs, the [p] of [CQ[m,p]] (the
    mandatory [eta(free)] atom is not counted). *)
val max_var_occurrences : t -> int

(** [selects q db e] decides [e ∈ q(db)] by homomorphism search. *)
val selects : t -> Db.t -> Elem.t -> bool

(** [eval q db] is [q(db)]: the entities of [db] selected by [q]. *)
val eval : t -> Db.t -> Elem.t list

(** [contained_in q1 q2] decides [q1 ⊑ q2] (on every database,
    [q1(D) ⊆ q2(D)]) via the canonical-database criterion:
    [(D_q2, x2) → (D_q1, x1)]. *)
val contained_in : t -> t -> bool

(** [equivalent q1 q2] is containment in both directions. *)
val equivalent : t -> t -> bool

(** [conjoin q1 q2] is the conjunction [q1(x) ∧ q2(x)]: existential
    variables are renamed apart and the free variables are identified.
    Used to build the queries [q_e] of Lemma 5.4. *)
val conjoin : t -> t -> t

(** [conjoin_all qs] folds {!conjoin} over a non-empty list.
    @raise Invalid_argument on the empty list. *)
val conjoin_all : t list -> t

(** [top] is the trivial feature query [eta(x)] selecting every
    entity. *)
val top : t

(** [core q] is the homomorphic core of [q]: an equivalent query whose
    canonical database has no proper retraction fixing the free
    variable. Unique up to isomorphism; minimizes the atom count among
    equivalent subqueries. *)
val core : t -> t

(** [rename_canonically q] renames variables to [x, y0, y1, ...] in a
    deterministic traversal order (useful for display and hashing). *)
val rename_canonically : t -> t

(** [iso_canonical_string q] is a string invariant under variable
    renaming: two queries get the same string iff they are isomorphic
    (equal up to renaming). Computed by minimizing over renamings
    guided by a greedy ordering; intended for deduplication of small
    queries. *)
val iso_canonical_string : t -> string

val equal : t -> t -> bool

(** Structural comparison of canonical databases (not semantic
    equivalence); suitable for sets/maps. *)
val compare : t -> t -> int

(** [to_string q] renders [x :- R(x,y), S(y)] (after canonical
    renaming). *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
