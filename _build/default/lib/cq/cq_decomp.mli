(** Tree decompositions and generalized hypertree width of feature CQs.

    Following Chen & Dalmau's definition (adopted by the paper,
    Section 5): a tree decomposition of a CQ assigns to each tree node a
    bag of {e existentially quantified} variables such that every
    atom's existential variables fit in some bag and each variable's
    bags form a subtree; the width of a bag is the minimum number of
    atoms whose variables cover it, and ghw is the minimum over
    decompositions of the maximum bag width.

    Deciding [ghw ≤ k] is NP-hard in general; this implementation is an
    exact exponential search (memoized separator recursion over the
    primal graph on existential variables, with bags restricted to
    k-coverable sets) intended for the small queries produced by
    enumeration, unravelings and tests. *)

(** [is_free_acyclic q] runs GYO reduction on the hypergraph of atoms
    with the free variable deleted (it needs no covering); [true] means
    the residual hypergraph is α-acyclic, which implies [ghw q ≤ 1]. *)
val is_free_acyclic : Cq.t -> bool

(** [ghw_le q k] decides whether [q] has a tree decomposition of width
    at most [k]. [ghw_le q 0] holds only when [q] has no existential
    variables in atoms.
    @raise Invalid_argument if [k < 0] or [q] has more than 62
    existential variables (bitset backing). *)
val ghw_le : Cq.t -> int -> bool

(** [ghw q] is the generalized hypertree width of [q] (0 for queries
    whose atoms use no existential variable). *)
val ghw : Cq.t -> int

type decomp = {
  bag : Elem.Set.t;  (** existential variables of this node *)
  cover : Fact.t list;  (** ≤ k atoms whose variables cover the bag *)
  children : decomp list;
}
(** A witnessing generalized hypertree decomposition node. *)

(** [decomposition q ~k] is a width-≤k decomposition forest (one tree
    per connected component of the existential primal graph), or [None]
    when [ghw q > k]. Drives the polynomial width-k evaluation of
    {!Ghw_eval}. *)
val decomposition : Cq.t -> k:int -> decomp list option

(** [check_decomposition q ~k forest] verifies the three defining
    conditions — every atom's existential variables inside some bag,
    the nodes of each variable forming a connected subforest, and each
    bag covered by at most [k] of the query's atoms. Used by tests. *)
val check_decomposition : Cq.t -> k:int -> decomp list -> bool
