(** Parsing feature queries from text.

    Syntax: [x :- R(x,y), S(y)] — a head variable, [:-], and a
    comma-separated atom list ([true] or nothing for the empty list).
    Variables are identifiers; the head variable is the free variable.
    The [eta(x)] atom is implicit (added by {!Cq.make}) but may also be
    written explicitly. *)

exception Parse_error of string

(** [parse s] parses a feature query.
    @raise Parse_error on malformed input. *)
val parse : string -> Cq.t
