(** Polynomial-time evaluation of bounded-width feature queries.

    Implements the classic decomposition-based evaluation the paper
    cites for GHW(k) ([12], Gottlob–Greco–Leone–Scarcello): given a
    width-k decomposition from {!Cq_decomp.decomposition}, each node is
    materialized as the join of its ≤k cover atoms (plus the query
    atoms assigned to it), extended with a column for the free
    variable, and the resulting α-acyclic instance is solved by
    bottom-up semijoins. The cost is polynomial in [|D|^k] —
    polynomial for fixed [k], in contrast to the NP-hard general
    homomorphism search. *)

(** [eval ~k q db] is [Some (q db)] when [ghw q ≤ k], computed through
    a width-[k] decomposition; [None] otherwise. *)
val eval : k:int -> Cq.t -> Db.t -> Elem.t list option

(** [eval_with_decomp q db forest] evaluates using a caller-supplied
    decomposition (e.g. to reuse one decomposition across many
    databases). The forest must satisfy
    {!Cq_decomp.check_decomposition}. *)
val eval_with_decomp : Cq.t -> Db.t -> Cq_decomp.decomp list -> Elem.t list
