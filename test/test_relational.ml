(* Tests for databases, homomorphisms, products, labelings and the
   text format. *)

open Test_util

let edge a b = ("E", [ sym a; sym b ])
let unary r a = (r, [ sym a ])

let path n pfx =
  List.init n (fun i ->
      edge (Printf.sprintf "%s%d" pfx i) (Printf.sprintf "%s%d" pfx (i + 1)))

(* --- Db -------------------------------------------------------------- *)

let test_db_basics () =
  let db = Db.of_list [ edge "a" "b"; edge "b" "c"; unary "U" "a" ] in
  check int_c "size" 3 (Db.size db);
  check int_c "domain" 3 (Db.domain_size db);
  check bool_c "mem" true (Db.mem (Fact.make_l "E" [ sym "a"; sym "b" ]) db);
  check bool_c "not mem" false (Db.mem (Fact.make_l "E" [ sym "b"; sym "a" ]) db);
  check int_c "facts of E" 2 (List.length (Db.facts_of_rel "E" db));
  check int_c "facts with b" 2 (List.length (Db.facts_with_elem (sym "b") db));
  check int_c "max arity" 2 (Db.max_arity db);
  (* idempotent add *)
  let db' = Db.add (Fact.make_l "E" [ sym "a"; sym "b" ]) db in
  check bool_c "idempotent" true (Db.equal db db')

let test_db_entities () =
  let db = Db.of_list [ edge "a" "b" ] in
  check int_c "no entities" 0 (List.length (Db.entities db));
  let db = Db.add_entity (sym "a") db in
  check int_c "one entity" 1 (List.length (Db.entities db));
  check bool_c "is entity" true (Db.is_entity (sym "a") db);
  check bool_c "not entity" false (Db.is_entity (sym "b") db)

let test_db_transforms () =
  let db = Db.of_list [ edge "a" "b"; unary "U" "a" ] in
  let renamed = Db.map_elems (fun e -> Elem.tup [ e ]) db in
  check int_c "renamed size" 2 (Db.size renamed);
  check bool_c "renamed mem" true
    (Db.mem (Fact.make_l "U" [ Elem.tup [ sym "a" ] ]) renamed);
  let only_e = Db.restrict_rels [ "E" ] db in
  check int_c "restricted" 1 (Db.size only_e);
  let no_u = Db.without_rel "U" db in
  check bool_c "without U" true (Db.equal only_e no_u);
  let u = Db.union db (Db.of_list [ edge "b" "c" ]) in
  check int_c "union" 3 (Db.size u)

(* --- Hom ------------------------------------------------------------- *)

let test_hom_identity () =
  let db = Db.of_list (path 3 "v") in
  match Hom.find ~src:db ~dst:db () with
  | None -> Alcotest.fail "identity hom must exist"
  | Some h -> check bool_c "is hom" true (Hom.is_hom h ~src:db ~dst:db)

let test_hom_cycles () =
  let c3 = Db.of_list [ edge "a" "b"; edge "b" "c"; edge "c" "a" ] in
  let c6 =
    Db.of_list
      (List.init 6 (fun i ->
           edge (Printf.sprintf "u%d" i) (Printf.sprintf "u%d" ((i + 1) mod 6))))
  in
  check bool_c "C6 -> C3" true (Hom.exists ~src:c6 ~dst:c3 ());
  check bool_c "C3 -/-> C6" false (Hom.exists ~src:c3 ~dst:c6 ())

let test_hom_pointed () =
  let p = Db.of_list (path 3 "v") in
  check bool_c "pointed id" true (Hom.pointed p [ sym "v1" ] p [ sym "v1" ]);
  check bool_c "v0 -> v0" true (Hom.pointed p [ sym "v0" ] p [ sym "v0" ]);
  (* A directed path is a core: only the identity endomorphism. *)
  check bool_c "v0 -/-> v1" false (Hom.pointed p [ sym "v0" ] p [ sym "v1" ]);
  check bool_c "v1 -/-> v0" false (Hom.pointed p [ sym "v1" ] p [ sym "v0" ]);
  (* A shorter path maps into a longer one, pointed at the start. *)
  let p2 = Db.of_list (path 2 "w") in
  check bool_c "short -> long" true
    (Hom.pointed p2 [ sym "w0" ] p [ sym "v0" ]);
  check bool_c "long -/-> short" false
    (Hom.pointed p [ sym "v0" ] p2 [ sym "w0" ])

let test_hom_fix_conflict () =
  let db = Db.of_list [ edge "a" "b" ] in
  check bool_c "conflicting fix" false
    (Hom.exists
       ~fix:[ (sym "a", sym "a"); (sym "a", sym "b") ]
       ~src:db ~dst:db ())

let test_hom_count () =
  (* homs from a single edge into a 2-cycle: 2 *)
  let e1 = Db.of_list [ edge "x" "y" ] in
  let c2 = Db.of_list [ edge "u" "v"; edge "v" "u" ] in
  check int_c "count" 2 (Hom.count ~src:e1 ~dst:c2 ())

let prop_found_hom_is_hom =
  QCheck.Test.make ~name:"found homomorphisms verify" ~count:100
    (QCheck.pair (spec_arb ~max_nodes:4 ~max_edges:5)
       (spec_arb ~max_nodes:4 ~max_edges:5))
    (fun (sa, sb) ->
      let a = db_of_spec sa and b = db_of_spec sb in
      match Hom.find ~src:a ~dst:b () with
      | Some h -> Hom.is_hom h ~src:a ~dst:b
      | None -> true)

let prop_hom_reflexive =
  QCheck.Test.make ~name:"D -> D always" ~count:100
    (spec_arb ~max_nodes:4 ~max_edges:6) (fun s ->
      let d = db_of_spec s in
      Hom.exists ~src:d ~dst:d ())

let prop_hom_transitive =
  QCheck.Test.make ~name:"A->B and B->C imply A->C" ~count:60
    (QCheck.triple
       (spec_arb ~max_nodes:3 ~max_edges:4)
       (spec_arb ~max_nodes:3 ~max_edges:4)
       (spec_arb ~max_nodes:3 ~max_edges:4))
    (fun (sa, sb, sc) ->
      let a = db_of_spec sa and b = db_of_spec sb and c = db_of_spec sc in
      let ab = Hom.exists ~src:a ~dst:b () in
      let bc = Hom.exists ~src:b ~dst:c () in
      QCheck.assume (ab && bc);
      Hom.exists ~src:a ~dst:c ())

let prop_naive_equals_smart =
  QCheck.Test.make
    ~name:"naive candidate generation finds the same answer" ~count:60
    (QCheck.pair (spec_arb ~max_nodes:4 ~max_edges:5)
       (spec_arb ~max_nodes:4 ~max_edges:5))
    (fun (sa, sb) ->
      let a = db_of_spec sa and b = db_of_spec sb in
      Hom.exists ~src:a ~dst:b () = Hom.exists ~naive:true ~src:a ~dst:b ())

(* --- Product --------------------------------------------------------- *)

let test_product_counts () =
  let a = Db.of_list [ edge "a" "b"; edge "b" "a" ] in
  let b = Db.of_list [ edge "x" "y" ] in
  let p = Product.binary a b in
  check int_c "product facts" 2 (Db.size p)

let prop_product_categorical =
  QCheck.Test.make
    ~name:"(C -> AxB) iff (C -> A and C -> B)" ~count:60
    (QCheck.triple
       (spec_arb ~max_nodes:3 ~max_edges:4)
       (spec_arb ~max_nodes:3 ~max_edges:4)
       (spec_arb ~max_nodes:3 ~max_edges:4))
    (fun (sc, sa, sb) ->
      let c = db_of_spec sc and a = db_of_spec sa and b = db_of_spec sb in
      let p = Product.binary a b in
      let lhs = Hom.exists ~src:c ~dst:p () in
      let rhs = Hom.exists ~src:c ~dst:a () && Hom.exists ~src:c ~dst:b () in
      lhs = rhs)

let prop_product_projections =
  QCheck.Test.make ~name:"projections are homomorphisms" ~count:60
    (QCheck.pair (spec_arb ~max_nodes:3 ~max_edges:4)
       (spec_arb ~max_nodes:3 ~max_edges:4))
    (fun (sa, sb) ->
      let a = db_of_spec sa and b = db_of_spec sb in
      let p = Product.binary a b in
      let proj i =
        List.for_all
          (fun f ->
            let g = Fact.map_elems
                (fun el ->
                  match el with
                  | Elem.Tup [ x; y ] -> if i = 0 then x else y
                  | _ -> el)
                f
            in
            Db.mem g (if i = 0 then a else b))
          (Db.facts p)
      in
      proj 0 && proj 1)

let test_product_pointed () =
  let a = Db.of_list [ edge "a" "b" ] in
  let db, pt = Product.pointed [ (a, sym "a"); (a, sym "b") ] in
  check bool_c "point" true (Elem.equal pt (Elem.tup [ sym "a"; sym "b" ]));
  check int_c "pointed size" 1 (Db.size db)

(* --- Labeling -------------------------------------------------------- *)

let test_labeling () =
  let l =
    Labeling.of_list [ (sym "a", Labeling.Pos); (sym "b", Labeling.Neg) ]
  in
  check int_c "cardinal" 2 (Labeling.cardinal l);
  check int_c "positives" 1 (List.length (Labeling.positives l));
  check bool_c "get" true (Labeling.get (sym "a") l = Labeling.Pos);
  let l2 = Labeling.set (sym "a") Labeling.Neg l in
  check int_c "disagreement" 1 (Labeling.disagreement l l2)

let test_training_validation () =
  let db = Db.add_entity (sym "a") Db.empty in
  (match Labeling.training db Labeling.empty with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unlabeled entity must be rejected");
  match
    Labeling.training db (Labeling.of_list [ (sym "z", Labeling.Pos) ])
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "label of non-entity must be rejected"

(* --- Textfmt --------------------------------------------------------- *)

let test_textfmt_roundtrip () =
  let source = "# comment\nE(a, b)\nE(b, c)\nU(a)\n+a\n-b\n+c\n" in
  let doc = Textfmt.parse_string source in
  let t = Textfmt.training_of_document doc in
  check int_c "entities" 3 (List.length (Db.entities t.Labeling.db));
  check int_c "facts" 6 (Db.size t.Labeling.db);
  let printed = Textfmt.print_training t in
  let t2 = Textfmt.training_of_document (Textfmt.parse_string printed) in
  check bool_c "roundtrip db" true (Db.equal t.Labeling.db t2.Labeling.db);
  check bool_c "roundtrip labels" true
    (Labeling.equal t.Labeling.labeling t2.Labeling.labeling)

let test_textfmt_tuples () =
  let doc = Textfmt.parse_string "R((a,b), 3)\n?(a,b)\n" in
  check int_c "facts" 2 (Db.size doc.Textfmt.db);
  check bool_c "tuple entity" true
    (Db.is_entity (Elem.tup [ sym "a"; sym "b" ]) doc.Textfmt.db)

let test_textfmt_errors () =
  let bad s =
    match Textfmt.parse_string s with
    | exception Textfmt.Parse_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ s)
  in
  bad "E(a";
  bad "E a b";
  bad "+";
  bad "%%%"

let mentions msg needle =
  let lm = String.length msg and ln = String.length needle in
  let rec go i =
    i + ln <= lm && (String.sub msg i ln = needle || go (i + 1))
  in
  go 0

let test_textfmt_hardening () =
  let fails_with needle s =
    match Textfmt.parse_string s with
    | exception Textfmt.Parse_error msg ->
        if not (mentions msg needle) then
          Alcotest.failf "error %S does not mention %S" msg needle
    | _ -> Alcotest.fail "should not parse"
  in
  (* conflicting labels are rejected, naming the entity *)
  fails_with "conflicting label" "E(a,b)\n+a\n-a\n";
  fails_with "already labeled '+'" "E(a,b)\n+a\n-a\n";
  fails_with "already labeled '-'" "E(a,b)\n-a\n+a\n";
  (* repeating the same label is allowed *)
  ignore (Textfmt.parse_string "E(a,b)\n+a\n+a\n");
  (* arity caps on facts and on tuple widths; 64 itself is fine *)
  let args n =
    String.concat ", " (List.init n (Printf.sprintf "a%d"))
  in
  ignore (Textfmt.parse_string (Printf.sprintf "R(%s)\n" (args 64)));
  fails_with "arity 65" (Printf.sprintf "R(%s)\n" (args 65));
  fails_with "width 65" (Printf.sprintf "U((%s))\n" (args 65));
  (* line-length cap *)
  fails_with "exceeds the maximum 65536" ("# " ^ String.make 70_000 'x');
  (* error messages name the offending token *)
  fails_with "\"b\"" "E(a) b\n";
  fails_with "'%'" "%%%";
  fails_with "end of line" "E(a"

let () =
  Alcotest.run "relational"
    [
      ( "db",
        [
          Alcotest.test_case "basics" `Quick test_db_basics;
          Alcotest.test_case "entities" `Quick test_db_entities;
          Alcotest.test_case "transforms" `Quick test_db_transforms;
        ] );
      ( "hom",
        [
          Alcotest.test_case "identity" `Quick test_hom_identity;
          Alcotest.test_case "cycles" `Quick test_hom_cycles;
          Alcotest.test_case "pointed" `Quick test_hom_pointed;
          Alcotest.test_case "fix conflict" `Quick test_hom_fix_conflict;
          Alcotest.test_case "count" `Quick test_hom_count;
          qcheck prop_found_hom_is_hom;
          qcheck prop_hom_reflexive;
          qcheck prop_hom_transitive;
          qcheck prop_naive_equals_smart;
        ] );
      ( "product",
        [
          Alcotest.test_case "counts" `Quick test_product_counts;
          Alcotest.test_case "pointed" `Quick test_product_pointed;
          qcheck prop_product_categorical;
          qcheck prop_product_projections;
        ] );
      ( "labeling",
        [
          Alcotest.test_case "basics" `Quick test_labeling;
          Alcotest.test_case "training validation" `Quick test_training_validation;
        ] );
      ( "textfmt",
        [
          Alcotest.test_case "roundtrip" `Quick test_textfmt_roundtrip;
          Alcotest.test_case "tuples" `Quick test_textfmt_tuples;
          Alcotest.test_case "errors" `Quick test_textfmt_errors;
          Alcotest.test_case "hardening" `Quick test_textfmt_hardening;
        ] );
    ]
