(* Tests for the budgeted runtime (Budget + Guard), the budgeted
   solver entry points, and the graceful-degradation ladder.

   The fault-injection properties run real solvers under tiny budgets
   with randomized exhaustion points: whatever the budget, a budgeted
   entry point must either agree with its unbudgeted counterpart or
   fail with a clean structured resource failure — never hang, never
   leak an exception. *)

open Test_util

(* --- Budget and Guard basics ---------------------------------------- *)

let test_budget_validation () =
  (match Budget.make ~fuel:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "fuel 0 must be rejected");
  (match Budget.make ~timeout:(-1.0) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative timeout must be rejected");
  check bool_c "unlimited" true (Budget.is_unlimited Budget.unlimited);
  check bool_c "limited" false (Budget.is_unlimited (Budget.make ~fuel:5 ()))

let test_guard_ok () =
  match Guard.run (Budget.make ~fuel:100 ()) (fun () -> 41 + 1) with
  | Ok 42 -> ()
  | _ -> Alcotest.fail "expected Ok 42"

let test_guard_fuel () =
  match
    Guard.run
      (Budget.make ~fuel:3 ())
      (fun () ->
        for _ = 1 to 10 do
          Budget.tick ~what:"test loop" ()
        done)
  with
  | Error (Guard.Fuel_exhausted "test loop") -> ()
  | Error f -> Alcotest.failf "unexpected %s" (Guard.failure_to_string f)
  | Ok () -> Alcotest.fail "expected fuel exhaustion"

let test_guard_timeout () =
  (* an already-expired deadline must trip at the very first tick *)
  match
    Guard.run
      (Budget.make ~timeout:0.0 ())
      (fun () ->
        while true do
          Budget.tick ()
        done)
  with
  | Error Guard.Timeout -> ()
  | Error f -> Alcotest.failf "unexpected %s" (Guard.failure_to_string f)
  | Ok () -> Alcotest.fail "expected timeout"

let test_guard_maps_exceptions () =
  (match Guard.run Budget.unlimited (fun () -> invalid_arg "boom") with
  | Error (Guard.Solver_error "boom") -> ()
  | _ -> Alcotest.fail "Invalid_argument must map to Solver_error");
  match Guard.run Budget.unlimited (fun () -> raise Not_found) with
  | Error (Guard.Solver_error _) -> ()
  | _ -> Alcotest.fail "Not_found must map to Solver_error"

let test_guard_restores_ambient () =
  check bool_c "ambient starts unlimited" true
    (Budget.is_unlimited (Budget.installed ()));
  let outer = Budget.make ~fuel:1000 () in
  let seen_inner = ref false in
  (match
     Guard.run outer (fun () ->
         let inner = Budget.make ~fuel:5 () in
         (match Guard.run inner (fun () -> Budget.installed () == inner) with
         | Ok b -> seen_inner := b
         | Error f ->
             Alcotest.failf "inner run failed: %s" (Guard.failure_to_string f));
         Budget.installed () == outer)
   with
  | Ok true -> ()
  | _ -> Alcotest.fail "outer budget must be restored after a nested run");
  check bool_c "inner budget installed during nested run" true !seen_inner;
  check bool_c "ambient unlimited after" true
    (Budget.is_unlimited (Budget.installed ()))

(* Nested Guard.run must restore the outer ambient budget whatever the
   inner outcome — success, exhaustion, or a stack overflow unwinding
   through the handler. Assertions run OUTSIDE the guarded closures
   (an Alcotest failure raised inside would be swallowed into
   Solver_error). *)
let test_guard_reentrant_after_failure () =
  let outer = Budget.make ~fuel:100_000 () in
  let result =
    Guard.run outer (fun () ->
        let after_exhaustion =
          match
            Guard.run
              (Budget.make ~fuel:2 ())
              (fun () ->
                while true do
                  Budget.tick ()
                done)
          with
          | Error (Guard.Fuel_exhausted _) -> Budget.installed () == outer
          | _ -> false
        in
        let after_overflow =
          match
            Guard.run Budget.unlimited (fun () ->
                let rec deep n = if n <= 0 then 0 else 1 + deep (n - 1) in
                deep 1_000_000_000)
          with
          | Error (Guard.Limit_exceeded _) -> Budget.installed () == outer
          | _ -> false
        in
        (after_exhaustion, after_overflow))
  in
  (match result with
  | Ok (after_exhaustion, after_overflow) ->
      check bool_c "outer restored after inner exhaustion" true
        after_exhaustion;
      check bool_c "outer restored after inner stack overflow" true
        after_overflow
  | Error f -> Alcotest.failf "outer run failed: %s" (Guard.failure_to_string f));
  check bool_c "ambient unlimited after nested failures" true
    (Budget.is_unlimited (Budget.installed ()))

(* --- the clock seam --------------------------------------------------- *)

let with_fake_clock t f =
  Budget.Clock.set_source (Some (fun () -> !t));
  Fun.protect
    ~finally:(fun () -> Budget.Clock.set_source None)
    (fun () -> f t)

(* [replenish] only consults the clock once per credit window, so the
   loops below run well past one window to guarantee a clock check. *)
let many_ticks () =
  for _ = 1 to 5_000 do
    Budget.tick ~what:"fake clock loop" ()
  done

let test_fake_clock_deadline () =
  with_fake_clock (ref 1_000.0) @@ fun t ->
  let b = Budget.make ~timeout:10.0 () in
  (match Guard.run b many_ticks with
  | Ok () -> ()
  | Error f ->
      Alcotest.failf "must not trip before the fake deadline: %s"
        (Guard.failure_to_string f));
  t := 1_020.0;
  match Guard.run (Budget.refresh b) many_ticks with
  | Error Guard.Timeout -> ()
  | Error f -> Alcotest.failf "unexpected %s" (Guard.failure_to_string f)
  | Ok () -> Alcotest.fail "advancing the fake clock past the deadline must trip"

let test_fake_clock_backwards_jump_clamped () =
  with_fake_clock (ref 2_000.0) @@ fun t ->
  check bool_c "clock at fake time" true (Budget.Clock.now () >= 2_000.0);
  let b = Budget.make ~timeout:10.0 () in
  t := 500.0;
  check bool_c "backwards jump clamped to the high-water mark" true
    (Budget.Clock.now () >= 2_000.0);
  check bool_c "backwards jump does not extend the deadline" true
    (Budget.remaining_time b <= Some 10.0)

(* --- chaos basics ----------------------------------------------------- *)

let ticks_until_chaos budget =
  let n = ref 0 in
  match
    Guard.run budget (fun () ->
        for _ = 1 to 100_000 do
          Budget.tick ~what:"chaos probe" ();
          incr n
        done)
  with
  | Ok () -> None
  | Error _ -> Some !n

let test_chaos_rate_one () =
  match ticks_until_chaos (Budget.make ~chaos:(7, 1.0) ()) with
  | Some 0 -> ()
  | Some n -> Alcotest.failf "rate 1.0 must trip at the first tick, not %d" n
  | None -> Alcotest.fail "rate 1.0 must trip"

let test_chaos_rate_zero () =
  match ticks_until_chaos (Budget.make ~chaos:(7, 0.0) ()) with
  | None -> ()
  | Some n -> Alcotest.failf "rate 0.0 must never trip (tripped after %d)" n

let test_chaos_deterministic_per_seed () =
  let at seed = ticks_until_chaos (Budget.make ~chaos:(seed, 0.01) ()) in
  check bool_c "same seed, same interruption point" true (at 42 = at 42);
  check bool_c "chaos injects as a resource failure" true
    (match
       Guard.run
         (Budget.make ~chaos:(3, 1.0) ())
         (fun () -> Budget.tick ())
     with
    | Error f -> Guard.is_resource_failure f
    | Ok () -> false)

let test_chaos_validation () =
  (match Budget.make ~chaos:(1, -0.1) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative chaos rate must be rejected");
  match Budget.make ~chaos:(1, 1.5) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "chaos rate > 1 must be rejected"

let test_budget_refresh () =
  let b = Budget.make ~fuel:10 () in
  let burn () =
    match
      Guard.run b (fun () ->
          while true do
            Budget.tick ()
          done)
    with
    | Error (Guard.Fuel_exhausted _) -> ()
    | _ -> Alcotest.fail "expected fuel exhaustion"
  in
  burn ();
  check bool_c "spent" true (Budget.remaining_fuel b = Some 0);
  check bool_c "refilled" true
    (Budget.remaining_fuel (Budget.refresh b) = Some 10)

(* --- fault injection: budgeted entry points ------------------------- *)

let langs =
  [
    Language.Cq_all;
    Language.Cq_atoms { m = 1; p = None };
    Language.Ghw 1;
    Language.Fo;
    Language.Fo_k 2;
  ]

(* Under a random tiny budget, [separable_b] either agrees with the
   unbudgeted decision or reports a resource failure. *)
let prop_separable_b_agrees =
  QCheck.Test.make ~count:50
    ~name:"separable_b: Ok agrees with unbudgeted, Error is structured"
    (QCheck.pair (labeled_spec_arb ~max_nodes:4 ~max_edges:5)
       (QCheck.int_range 1 200))
    (fun (ls, fuel) ->
      let t = training_of_labeled ls in
      List.for_all
        (fun lang ->
          let expected = Cqfeat.separable lang t in
          match
            Cqfeat.separable_b ~budget:(Budget.make ~fuel ()) lang t
          with
          | Ok b -> b = expected
          | Error f -> Guard.is_resource_failure f)
        langs)

let prop_simplex_b_structured =
  QCheck.Test.make ~count:100
    ~name:"Simplex.solve_b under tiny fuel: agree or structured failure"
    (QCheck.pair (QCheck.int_range 1 60) (QCheck.int_range 1 6))
    (fun (fuel, n) ->
      (* box LP: minimize -sum x_i subject to 0 <= x_i <= i+1 *)
      let unit i = Array.init n (fun j -> if i = j then Rat.one else Rat.zero) in
      let rows =
        List.concat
          (List.init n (fun i ->
               [
                 { Simplex.coeffs = unit i; op = Simplex.Ge; rhs = Rat.zero };
                 {
                   Simplex.coeffs = unit i;
                   op = Simplex.Le;
                   rhs = Rat.of_int (i + 1);
                 };
               ]))
      in
      let objective = Array.make n Rat.minus_one in
      let expected = Simplex.solve ~nvars:n ~rows ~objective () in
      match
        Simplex.solve_b ~budget:(Budget.make ~fuel ()) ~nvars:n ~rows
          ~objective ()
      with
      | Ok (Simplex.Optimal (_, v)) -> begin
          match expected with
          | Simplex.Optimal (_, v') -> Rat.equal v v'
          | _ -> false
        end
      | Ok Simplex.Infeasible -> expected = Simplex.Infeasible
      | Ok (Simplex.Unbounded _) -> begin
          match expected with Simplex.Unbounded _ -> true | _ -> false
        end
      | Error f -> Guard.is_resource_failure f)

let prop_preorder_b_structured =
  QCheck.Test.make ~count:40
    ~name:"Cover_game.preorder_b under tiny fuel"
    (QCheck.pair (spec_arb ~max_nodes:4 ~max_edges:5)
       (QCheck.int_range 1 100))
    (fun (spec, fuel) ->
      let db = db_of_spec spec in
      let ents = Db.entities db in
      match
        Cover_game.preorder_b ~budget:(Budget.make ~fuel ()) ~k:1 db ents
      with
      | Ok m -> m = Cover_game.preorder ~k:1 db ents
      | Error f -> Guard.is_resource_failure f)

(* --- tight fuel interrupts the hot loops ----------------------------- *)

(* Sweep fuel 1..cap: fuel [f] admits [f - 1] ticks and raises at the
   f-th, so the collected [~what] labels enumerate the tick sites the
   computation passes through, in order. Membership of a loop's label
   proves that loop is interruptible at tick granularity. The sweep
   stops at the first fuel value that lets the run complete. *)
let exhaustion_labels ?(cap = 2048) run =
  let rec go fuel acc =
    if fuel > cap then acc
    else
      match Guard.run (Budget.make ~fuel ()) run with
      | Ok _ -> acc
      | Error (Guard.Fuel_exhausted what) -> go (fuel + 1) (what :: acc)
      | Error _ -> go (fuel + 1) acc
  in
  List.sort_uniq compare (go 1 [])

let test_tight_fuel_hom_bfs () =
  let db =
    db_of_spec
      { nodes = 5; edges = [ (0, 1); (1, 2); (2, 3); (3, 4) ]; unary = [] }
  in
  let labels =
    exhaustion_labels (fun () -> ignore (Hom.exists ~src:db ~dst:db ()))
  in
  check bool_c "the BFS while-loop in Hom.search_order is interruptible" true
    (List.mem "hom: BFS search order" labels)

(* A query whose existential variables form a triangle: not α-acyclic,
   few variables, so [Eval_engine.plan] must run the width search and
   the decomposition machinery behind it. *)
let cyclic_query () =
  let x = sym "x" and y = sym "y" and z = sym "z" and w = sym "w" in
  Cq.make ~free:x
    [
      Fact.make_l "E" [ x; y ];
      Fact.make_l "E" [ y; z ];
      Fact.make_l "E" [ z; w ];
      Fact.make_l "E" [ w; y ];
    ]

let test_tight_fuel_plan_and_decomp () =
  let labels =
    exhaustion_labels (fun () -> ignore (Eval_engine.plan (cyclic_query ())))
  in
  check bool_c "the try_width recursion in Eval_engine.plan is interruptible"
    true
    (List.mem "plan: decomposition width search" labels);
  check bool_c "the recursive search in Cq_decomp is interruptible" true
    (List.exists (String.starts_with ~prefix:"cq decomp:") labels)

(* --- the graceful-degradation ladder -------------------------------- *)

let sample_training () =
  training_of_labeled
    {
      spec = { nodes = 4; edges = [ (0, 1); (1, 2); (2, 3) ]; unary = [ 0 ] };
      mask = 0b0001;
    }

let test_ladder_exact () =
  let t = sample_training () in
  let r =
    Cq_sep.decide_with_fallback ~budget:(Budget.make ~fuel:10_000_000 ()) t
  in
  (match r.Cq_sep.provenance with
  | Cq_sep.Exact -> ()
  | p ->
      Alcotest.failf "expected an exact answer, got %s"
        (Format.asprintf "%a" Cq_sep.pp_provenance p));
  check bool_c "answer matches unbudgeted" true
    (r.Cq_sep.answer = Some (Cq_sep.separable t))

let test_ladder_no_degrade () =
  let t = sample_training () in
  let r =
    Cq_sep.decide_with_fallback ~degrade:false
      ~budget:(Budget.make ~fuel:1 ())
      t
  in
  match (r.Cq_sep.answer, r.Cq_sep.provenance) with
  | None, Cq_sep.Gave_up (Guard.Fuel_exhausted _) -> ()
  | _ -> Alcotest.fail "expected Gave_up with fuel exhaustion"

let test_ladder_expired_deadline () =
  (* an already-expired deadline exhausts every rung: the ladder gives
     up with Timeout instead of hanging *)
  let t = sample_training () in
  let r =
    Cq_sep.decide_with_fallback ~budget:(Budget.make ~timeout:0.0 ()) t
  in
  match (r.Cq_sep.answer, r.Cq_sep.provenance) with
  | None, Cq_sep.Gave_up Guard.Timeout -> ()
  | _ -> Alcotest.fail "expected Gave_up Timeout"

(* Whatever the (random) exhaustion point, a ladder answer must be
   provenance-coherent: Exact answers match the unbudgeted decision, a
   positive degraded/approximate answer certifies CQ-separability
   (CQ[m] ⊆ CQ), the approximate verdict is slack = 0, and a give-up
   carries a resource failure. *)
let prop_ladder_sound =
  QCheck.Test.make ~count:50 ~name:"ladder: provenance-coherent and sound"
    (QCheck.pair (labeled_spec_arb ~max_nodes:4 ~max_edges:5)
       (QCheck.int_range 1 300))
    (fun (ls, fuel) ->
      let t = training_of_labeled ls in
      let r =
        Cq_sep.decide_with_fallback ~budget:(Budget.make ~fuel ()) t
      in
      let exact = Cq_sep.separable t in
      match (r.Cq_sep.answer, r.Cq_sep.provenance) with
      | Some b, Cq_sep.Exact -> b = exact
      | Some true, (Cq_sep.Degraded _ | Cq_sep.Approximate _) -> exact
      | Some false, Cq_sep.Approximate slack -> not (Rat.is_zero slack)
      | Some false, Cq_sep.Degraded _ -> true
      | None, Cq_sep.Gave_up f -> Guard.is_resource_failure f
      | _ -> false)

let () =
  Alcotest.run "runtime"
    [
      ( "budget",
        [
          Alcotest.test_case "validation" `Quick test_budget_validation;
          Alcotest.test_case "refresh" `Quick test_budget_refresh;
        ] );
      ( "clock",
        [
          Alcotest.test_case "fake clock drives the deadline" `Quick
            test_fake_clock_deadline;
          Alcotest.test_case "backwards jumps are clamped" `Quick
            test_fake_clock_backwards_jump_clamped;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "rate 1.0 trips immediately" `Quick
            test_chaos_rate_one;
          Alcotest.test_case "rate 0.0 never trips" `Quick
            test_chaos_rate_zero;
          Alcotest.test_case "deterministic per seed" `Quick
            test_chaos_deterministic_per_seed;
          Alcotest.test_case "rate validation" `Quick test_chaos_validation;
        ] );
      ( "guard",
        [
          Alcotest.test_case "ok" `Quick test_guard_ok;
          Alcotest.test_case "fuel" `Quick test_guard_fuel;
          Alcotest.test_case "timeout" `Quick test_guard_timeout;
          Alcotest.test_case "exception mapping" `Quick
            test_guard_maps_exceptions;
          Alcotest.test_case "ambient nesting" `Quick
            test_guard_restores_ambient;
          Alcotest.test_case "ambient restored after nested failures" `Quick
            test_guard_reentrant_after_failure;
        ] );
      ( "fault injection",
        [
          qcheck prop_separable_b_agrees;
          qcheck prop_simplex_b_structured;
          qcheck prop_preorder_b_structured;
          Alcotest.test_case "tight fuel: hom BFS" `Quick
            test_tight_fuel_hom_bfs;
          Alcotest.test_case "tight fuel: planning and decomposition" `Quick
            test_tight_fuel_plan_and_decomp;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "exact within budget" `Quick test_ladder_exact;
          Alcotest.test_case "no-degrade gives up" `Quick
            test_ladder_no_degrade;
          Alcotest.test_case "expired deadline" `Quick
            test_ladder_expired_deadline;
          qcheck prop_ladder_sound;
        ] );
    ]
