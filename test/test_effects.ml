(* Golden effect-signature tests: one fixture per lattice level, the
   mutual-recursion SCC join, shard-safety verdicts, and the R10
   escape rule — all over compiled tf_fixtures cmts, the same
   substrate the real lint run uses. *)

let check = Alcotest.check
let keys_c = Alcotest.(list (pair string string))

let fixture_dir = "typed_fixtures"

let all_ml =
  [ "tf_eff_pure.ml"; "tf_eff_reads.ml"; "tf_eff_writes.ml"; "tf_eff_io.ml";
    "tf_eff_forks.ml"; "tf_eff_scc.ml"; "tf_r10_escape.ml" ]

let units =
  lazy
    (Lint_cmt.load_units ~root:"." ~rel_dir:fixture_dir
       ~lib_name:"tf_fixtures" ~ml:all_ml ~mli:[])

let sources =
  lazy
    (List.filter_map
       (fun (u : Lint_cmt.unit_info) ->
         match (u.u_impl, u.u_ml) with
         | Some impl, Some file ->
             Some
               {
                 Typed_rules.s_mod = u.u_module;
                 s_file = file;
                 s_mli = u.u_mli;
                 s_solver = true;
                 s_impl = impl;
                 s_intf = u.u_intf;
               }
         | _ -> None)
       (Lazy.force units))

let graph =
  lazy
    (Callgraph.build
       (List.map
          (fun (s : Typed_rules.source) -> (s.Typed_rules.s_mod, s.s_impl))
          (Lazy.force sources)))

let effects =
  lazy
    (Effects.analyze (Lazy.force graph)
       (List.map
          (fun (s : Typed_rules.source) -> (s.Typed_rules.s_mod, s.s_impl))
          (Lazy.force sources)))

let typed_findings =
  lazy
    (Typed_rules.run
       ~effects:(Lazy.force effects)
       (Lazy.force graph) (Lazy.force sources))

let fixture f = Filename.concat fixture_dir f

let findings_for file =
  List.filter
    (fun (f : Lint_finding.t) -> f.file = fixture file)
    (Lazy.force typed_findings)

let rule_keys findings =
  List.sort compare
    (List.map
       (fun (f : Lint_finding.t) ->
         (Lint_finding.rule_to_string f.rule, f.key))
       findings)

let sig_of name =
  let g = Lazy.force graph in
  match Callgraph.find_global g name with
  | Some id -> Effects.signature (Lazy.force effects) id
  | None -> Alcotest.failf "no definition named %s in the graph" name

let level_of name =
  Effects.level_name (Effects.level (Lazy.force effects) (sig_of name))

let shard_safe name = Effects.shard_safe (Lazy.force effects) (sig_of name)

(* --- the lattice, one level per fixture -------------------------------- *)

let test_level_pure () =
  check Alcotest.string "add is pure" "pure" (level_of "Tf_eff_pure.add");
  check Alcotest.string "purity propagates through double" "pure"
    (level_of "Tf_eff_pure.double")

let test_level_reads () =
  check Alcotest.string
    "a registered-cache write stays at reads-cache level" "reads-cache"
    (level_of "Tf_eff_reads.lookup");
  check Alcotest.string "a bare registered read too" "reads-cache"
    (level_of "Tf_eff_reads.peek")

let test_level_writes () =
  check Alcotest.string "an unregistered write is writes-global"
    "writes-global"
    (level_of "Tf_eff_writes.record");
  check Alcotest.string "an unregistered read alone is only reads-cache"
    "reads-cache"
    (level_of "Tf_eff_writes.count")

let test_level_io () =
  check Alcotest.string "print_endline is io" "io"
    (level_of "Tf_eff_io.log_it");
  check Alcotest.string "io propagates interprocedurally" "io"
    (level_of "Tf_eff_io.compute")

let test_level_forks () =
  check Alcotest.string "Isolate.run is forks" "forks"
    (level_of "Tf_eff_forks.spawn_it");
  check Alcotest.string "forks propagates interprocedurally" "forks"
    (level_of "Tf_eff_forks.indirect")

let test_scc_join () =
  (* Only ping writes the counter, but pong is in the same SCC: the
     whole component joins to writes-global. *)
  check Alcotest.string "the writer" "writes-global"
    (level_of "Tf_eff_scc.ping");
  check Alcotest.string "its mutual-recursion partner" "writes-global"
    (level_of "Tf_eff_scc.pong")

(* --- shard-safety verdicts --------------------------------------------- *)

let test_shard_safety () =
  check Alcotest.bool "pure is shard-safe" true
    (shard_safe "Tf_eff_pure.add");
  check Alcotest.bool "registered cache write is shard-safe" true
    (shard_safe "Tf_eff_reads.lookup");
  check Alcotest.bool "unregistered write is not" false
    (shard_safe "Tf_eff_writes.record");
  check Alcotest.bool "reading unregistered state is not either" false
    (shard_safe "Tf_eff_writes.count");
  check Alcotest.bool "io is not" false (shard_safe "Tf_eff_io.compute");
  check Alcotest.bool "forks is not" false
    (shard_safe "Tf_eff_forks.indirect")

let test_registration_attribution () =
  let eff = Lazy.force effects in
  let regs =
    List.sort compare
      (List.filter_map
         (fun (s : Effects.site) ->
           Option.map (fun r -> (s.Effects.site_name, r)) s.site_registered)
         (Array.to_list (Effects.sites eff)))
  in
  check keys_c "exactly the tf_eff.cache site is registered"
    [ ("Tf_eff_reads.cache", "tf_eff.cache") ]
    regs

(* --- R9 and R10 finding keys ------------------------------------------- *)

let test_r9_findings () =
  check keys_c "the unregistered writer is the only R9 in its module"
    [ ("R9", "effect:record") ]
    (rule_keys
       (List.filter
          (fun (f : Lint_finding.t) -> f.rule = Lint_finding.R9)
          (findings_for "tf_eff_writes.ml")));
  check keys_c "registered-cache module is R9-clean" []
    (rule_keys
       (List.filter
          (fun (f : Lint_finding.t) -> f.rule = Lint_finding.R9)
          (findings_for "tf_eff_reads.ml")))

let test_r10_escape () =
  check keys_c "the captured Hashtbl is flagged, the thunk-local is not"
    [ ("R10", "escape:seen@tally") ]
    (rule_keys
       (List.filter
          (fun (f : Lint_finding.t) -> f.rule = Lint_finding.R10)
          (findings_for "tf_r10_escape.ml")))

(* --- direct Escape unit: Stored_global --------------------------------- *)

let test_stored_global () =
  (* Reuse the reads fixture: nothing in it stores a local mutable into
     a global, so even with every global admitted the kind stays
     empty — the predicate gates the kind, not the crash. *)
  let srcs = Lazy.force sources in
  let s =
    List.find
      (fun (s : Typed_rules.source) -> s.Typed_rules.s_mod = "Tf_eff_reads")
      srcs
  in
  let escapes =
    Escape.analyze ~is_global:(fun _ -> true) s.Typed_rules.s_impl
  in
  check Alcotest.int "no local mutable is stored into a global" 0
    (List.length
       (List.filter
          (fun (e : Escape.escape) ->
            match e.Escape.esc_kind with
            | Escape.Stored_global _ -> true
            | _ -> false)
          escapes))

let () =
  Alcotest.run "effects"
    [
      ( "lattice",
        [
          Alcotest.test_case "pure" `Quick test_level_pure;
          Alcotest.test_case "reads-cache" `Quick test_level_reads;
          Alcotest.test_case "writes-global" `Quick test_level_writes;
          Alcotest.test_case "io" `Quick test_level_io;
          Alcotest.test_case "forks" `Quick test_level_forks;
          Alcotest.test_case "scc join" `Quick test_scc_join;
        ] );
      ( "shard-safety",
        [
          Alcotest.test_case "verdicts" `Quick test_shard_safety;
          Alcotest.test_case "registration attribution" `Quick
            test_registration_attribution;
        ] );
      ( "rules",
        [
          Alcotest.test_case "r9" `Quick test_r9_findings;
          Alcotest.test_case "r10" `Quick test_r10_escape;
          Alcotest.test_case "stored-global" `Quick test_stored_global;
        ] );
    ]
