(* Service suite: the WAL-journaled job service and its crash-safety
   story.

   - codec/WAL unit tests, including a byte-level truncation sweep
     (every cut of a healthy log replays to the longest valid prefix);
   - admission queue, circuit breaker, and retry-backoff jitter;
   - Isolate reaping regression (100 failing workers, zero zombies)
     and the at-fork child hook;
   - crash-recovery chaos: a child process SIGKILLs *itself* at every
     stage crossing of every WAL append (>= 200 distinct seeded
     interruption points, mid-WAL-write and mid-job) and the parent
     proves recovery: acknowledged jobs survive, journaled results
     replay bit-identically, incomplete jobs re-run, nothing runs
     twice once completed;
   - fd-table discipline under [ulimit -n 40] (the probe re-execs this
     binary with --fd-probe);
   - live-daemon integration: cqserved + cqq protocol round trip,
     SIGKILL, restart, WAL preservation, drain. *)

open Test_util

(* --- fd probe (runs in a re-exec'd copy of this binary) -------------- *)

(* 200 iterations of deliberately failing opens/parses under a 40-fd
   ulimit: any leak on an error path exhausts the table long before
   the loop ends. *)
let fd_probe_main () =
  let write_file path contents =
    let oc = open_out_bin path in
    output_string oc contents;
    close_out oc;
    path
  in
  let bad_text = write_file (Filename.temp_file "cqprobe" ".txt") "R(\n" in
  let bad_model = write_file (Filename.temp_file "cqprobe" ".model") "garbage\n" in
  let bad_wal =
    write_file
      (Filename.temp_file "cqprobe" ".wal")
      (Journal_codec.encode "ok" ^ "CQW1torn")
  in
  let ok = ref true in
  (try
     for _ = 1 to 200 do
       (try ignore (Textfmt.parse_file bad_text)
        with Textfmt.Parse_error _ -> ());
       (try ignore (Model_io.load bad_model)
        with Model_io.Parse_error _ -> ());
       let rep = Wal.replay bad_wal in
       if rep.Wal.damage = None then ok := false
     done
   with e ->
     Printf.eprintf "fd-probe: unexpected %s\n" (Printexc.to_string e);
     ok := false);
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ bad_text; bad_model; bad_wal ];
  if !ok then begin
    print_endline "fd-probe ok";
    exit 0
  end
  else exit 1

let () =
  if Array.exists (fun a -> a = "--fd-probe") Sys.argv then fd_probe_main ()

(* --- small helpers --------------------------------------------------- *)

let tmp_path suffix =
  let p = Filename.temp_file "cqservice" suffix in
  Sys.remove p;
  p

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_whole path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let selftest ?timeout ?fuel spin =
  { Job.kind = Job.Selftest { spin }; db_path = ""; timeout; fuel }

let cfg ?(pool = 2) ?(queue = 16) ?(threshold = 5) ?(cooldown = 30.0)
    ?(retries = 0) ?(backoff = 0.001) wal =
  {
    Service.wal_path = wal;
    pool_size = pool;
    queue_capacity = queue;
    default_timeout = None;
    breaker_threshold = threshold;
    breaker_cooldown = cooldown;
    retries;
    retry_backoff = backoff;
    grace = 1.0;
  }

(* Pump the service until idle, select-sleeping on the worker pipes. *)
let run_until_idle ?(timeout = 30.0) svc =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    ignore (Service.step svc);
    if Service.idle svc then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "service did not go idle in time"
    else begin
      (match Unix.select (Service.wait_fds svc) [] [] 0.01 with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

let state_str svc id =
  match Service.status svc id with
  | None -> "<unknown>"
  | Some st -> Service.state_to_string st

let is_done svc id =
  match Service.status svc id with Some (Service.Done _) -> true | _ -> false

let submit_ok svc ?deadline spec =
  match Service.submit svc ?deadline spec with
  | Ok id -> id
  | Error r -> Alcotest.failf "unexpected reject: %s" (Jobq.reject_to_string r)

(* --- codec ----------------------------------------------------------- *)

let test_crc_check_value () =
  check int_c "crc32 check value" 0xCBF43926 (Journal_codec.crc32 "123456789")

let test_codec_roundtrip () =
  List.iter
    (fun payload ->
      let frame = Journal_codec.encode payload in
      match Journal_codec.decode frame ~pos:0 with
      | Ok (p, next) ->
          check string_c "payload" payload p;
          check int_c "next" (String.length frame) next
      | Error e -> Alcotest.failf "decode: %s" (Journal_codec.error_to_string e))
    [ ""; "x"; "hello world"; String.make 10000 '\xAB'; "with\nnewline\x00nul" ]

let test_codec_truncation_sweep () =
  let frame = Journal_codec.encode "truncate me please" in
  for cut = 0 to String.length frame - 1 do
    match Journal_codec.decode (String.sub frame 0 cut) ~pos:0 with
    | Error Journal_codec.Truncated -> ()
    | Error (Journal_codec.Corrupt w) ->
        Alcotest.failf "cut %d: corrupt (%s), wanted truncated" cut w
    | Ok _ -> Alcotest.failf "cut %d: decoded a truncated frame" cut
  done

let test_codec_corruption () =
  let frame = Journal_codec.encode "corrupt me" in
  (* flip one payload byte: checksum must catch it *)
  let b = Bytes.of_string frame in
  let i = Journal_codec.header_len + 3 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
  (match Journal_codec.decode (Bytes.to_string b) ~pos:0 with
  | Error (Journal_codec.Corrupt _) -> ()
  | Error Journal_codec.Truncated -> Alcotest.fail "flip: truncated?"
  | Ok _ -> Alcotest.fail "flip: decoded corrupt payload");
  (* bad magic *)
  match Journal_codec.decode ("XXXX" ^ String.sub frame 4 (String.length frame - 4)) ~pos:0 with
  | Error (Journal_codec.Corrupt _) -> ()
  | _ -> Alcotest.fail "bad magic accepted"

(* --- wal -------------------------------------------------------------- *)

let test_wal_roundtrip () =
  let path = tmp_path ".wal" in
  let w = Wal.open_append path in
  let payloads = List.init 20 (fun i -> Printf.sprintf "payload-%d" i) in
  List.iter (Wal.append w) payloads;
  Wal.close w;
  let rep = Wal.replay path in
  check bool_c "no damage" true (rep.Wal.damage = None);
  check (Alcotest.list string_c) "records" payloads
    (List.map fst rep.Wal.records);
  Sys.remove path

let test_wal_missing_file () =
  let rep = Wal.replay (tmp_path ".absent") in
  check int_c "no records" 0 (List.length rep.Wal.records);
  check bool_c "no damage" true (rep.Wal.damage = None)

let test_wal_torn_tail_repair () =
  let path = tmp_path ".wal" in
  let w = Wal.open_append path in
  Wal.append w "one";
  Wal.append w "two";
  Wal.close w;
  let healthy = read_whole path in
  (* tear: append half of a third frame *)
  let frame = Journal_codec.encode "three" in
  write_whole path (healthy ^ String.sub frame 0 (String.length frame / 2));
  let rep = Wal.replay path in
  check bool_c "damaged" true (rep.Wal.damage <> None);
  check (Alcotest.list string_c) "prefix survives" [ "one"; "two" ]
    (List.map fst rep.Wal.records);
  check bool_c "repair truncates" true (Wal.repair path rep);
  let rep2 = Wal.replay path in
  check bool_c "clean after repair" true (rep2.Wal.damage = None);
  (* appending after repair lands on clean framing *)
  let w2 = Wal.open_append path in
  Wal.append w2 "three";
  Wal.close w2;
  let rep3 = Wal.replay path in
  check (Alcotest.list string_c) "continues" [ "one"; "two"; "three" ]
    (List.map fst rep3.Wal.records);
  Sys.remove path

(* Every byte-level cut of a healthy log replays to the longest valid
   prefix of its records — never a crash, never a bogus record. *)
let test_wal_truncation_sweep () =
  let path = tmp_path ".wal" in
  let payloads = List.init 8 (fun i -> Printf.sprintf "r%d-%s" i (String.make i 'x')) in
  let w = Wal.open_append path in
  List.iter (Wal.append w) payloads;
  Wal.close w;
  let healthy = read_whole path in
  let boundaries =
    let rep = Wal.replay path in
    List.map snd rep.Wal.records
  in
  for cut = 0 to String.length healthy do
    write_whole path (String.sub healthy 0 cut);
    let rep = Wal.replay path in
    let got = List.map fst rep.Wal.records in
    let expected_count =
      List.length (List.filter (fun b -> b <= cut) boundaries)
    in
    check int_c (Printf.sprintf "cut %d: record count" cut) expected_count
      (List.length got);
    List.iteri
      (fun i p ->
        check string_c (Printf.sprintf "cut %d: record %d" cut i)
          (List.nth payloads i) p)
      got;
    check bool_c
      (Printf.sprintf "cut %d: damage iff mid-frame" cut)
      (not (List.mem cut (0 :: boundaries)))
      (rep.Wal.damage <> None)
  done;
  Sys.remove path

(* --- jobq ------------------------------------------------------------- *)

let test_jobq_fifo () =
  let q = Jobq.create ~capacity:8 in
  List.iter
    (fun i ->
      match
        Jobq.admit q ~now:0.0 ~projected_wait:0.0
          ~id:(string_of_int i) ~deadline:None i
      with
      | Ok () -> ()
      | Error r -> Alcotest.failf "admit %d: %s" i (Jobq.reject_to_string r))
    [ 1; 2; 3 ];
  let pop () =
    match Jobq.pop_ready q ~now:0.0 with
    | Jobq.Ready e -> e.Jobq.e_payload
    | _ -> Alcotest.fail "expected a ready entry"
  in
  check int_c "fifo 1" 1 (pop ());
  check int_c "fifo 2" 2 (pop ());
  check int_c "fifo 3" 3 (pop ());
  check bool_c "empty" true (Jobq.pop_ready q ~now:0.0 = Jobq.Empty)

let test_jobq_rejects () =
  let q = Jobq.create ~capacity:2 in
  ignore (Jobq.admit q ~now:0.0 ~projected_wait:0.0 ~id:"a" ~deadline:None 1);
  ignore (Jobq.admit q ~now:0.0 ~projected_wait:0.0 ~id:"b" ~deadline:None 2);
  (match Jobq.admit q ~now:0.0 ~projected_wait:0.0 ~id:"c" ~deadline:None 3 with
  | Error (Jobq.Queue_full 2) -> ()
  | _ -> Alcotest.fail "expected Queue_full");
  (* deadline closer than the projected wait *)
  let q2 = Jobq.create ~capacity:2 in
  (match
     Jobq.admit q2 ~now:100.0 ~projected_wait:5.0 ~id:"d"
       ~deadline:(Some 102.0) 4
   with
  | Error (Jobq.Deadline_unmeetable { wait; slack }) ->
      check bool_c "wait" true (wait = 5.0);
      check bool_c "slack" true (slack = 2.0)
  | _ -> Alcotest.fail "expected Deadline_unmeetable");
  (* recovery enqueue ignores capacity *)
  let q3 = Jobq.create ~capacity:1 in
  Jobq.enqueue q3 ~id:"r1" ~deadline:None ~now:0.0 1;
  Jobq.enqueue q3 ~id:"r2" ~deadline:None ~now:0.0 2;
  check int_c "backlog kept" 2 (Jobq.length q3);
  (* reject codes are stable words *)
  check string_c "busy" "busy" (Jobq.reject_code (Jobq.Queue_full 1));
  check string_c "deadline" "deadline"
    (Jobq.reject_code (Jobq.Deadline_unmeetable { wait = 1.0; slack = 0.0 }));
  check string_c "breaker" "breaker"
    (Jobq.reject_code (Jobq.Breaker_open { job_class = "x"; retry_after = 1.0 }));
  check string_c "draining" "draining" (Jobq.reject_code Jobq.Draining);
  check string_c "invalid" "invalid" (Jobq.reject_code (Jobq.Invalid "x"))

let test_jobq_expired () =
  let q = Jobq.create ~capacity:4 in
  ignore
    (Jobq.admit q ~now:0.0 ~projected_wait:0.0 ~id:"late"
       ~deadline:(Some 1.0) 1);
  match Jobq.pop_ready q ~now:2.0 with
  | Jobq.Expired e -> check string_c "id" "late" e.Jobq.e_id
  | _ -> Alcotest.fail "expected Expired"

(* --- breaker ----------------------------------------------------------- *)

let test_breaker_machine () =
  let b = Breaker.create ~threshold:3 ~cooldown:10.0 () in
  check bool_c "closed allows" true (Breaker.allow b ~now:0.0);
  Breaker.failure b ~now:0.0;
  Breaker.failure b ~now:1.0;
  check bool_c "still closed" true (Breaker.allow b ~now:1.0);
  Breaker.failure b ~now:2.0;
  check bool_c "tripped" false (Breaker.allow b ~now:2.0);
  check bool_c "open state" true (Breaker.state b ~now:2.0 = Breaker.Open);
  check bool_c "retry_after > 0" true (Breaker.retry_after b ~now:2.0 > 0.0);
  (* cool-down elapses: exactly one probe *)
  check bool_c "probe allowed" true (Breaker.allow b ~now:13.0);
  check bool_c "second probe denied" false (Breaker.allow b ~now:13.0);
  (* probe fails: straight back to open *)
  Breaker.failure b ~now:13.5;
  check bool_c "re-opened" false (Breaker.allow b ~now:14.0);
  (* next probe succeeds: closed, counters reset *)
  check bool_c "probe again" true (Breaker.allow b ~now:24.0);
  Breaker.success b;
  check bool_c "closed again" true (Breaker.allow b ~now:24.5);
  Breaker.failure b ~now:25.0;
  Breaker.failure b ~now:25.1;
  check bool_c "fresh count" true (Breaker.allow b ~now:25.2)

(* --- retry backoff jitter ---------------------------------------------- *)

(* Capture the sleeps [Guard.retrying] performs through the Clock
   seam; no real waiting. *)
let with_recorded_sleeps f =
  let slept = ref [] in
  Budget.Clock.set_sleeper (Some (fun s -> slept := s :: !slept));
  Fun.protect
    ~finally:(fun () -> Budget.Clock.set_sleeper None)
    (fun () -> f ());
  List.rev !slept

let always_fuel_failing =
  {
    Guard.run =
      (fun _b _f -> Error (Guard.Fuel_exhausted "synthetic"));
  }

let test_backoff_schedule () =
  let sleeps =
    with_recorded_sleeps (fun () ->
        let r = Guard.retrying ~attempts:4 ~backoff:0.1 always_fuel_failing in
        match r.Guard.run Budget.unlimited (fun () -> ()) with
        | Error (Guard.Fuel_exhausted _) -> ()
        | _ -> Alcotest.fail "expected failure after retries")
  in
  (* unseeded: exact exponential schedule *)
  check int_c "three sleeps" 3 (List.length sleeps);
  List.iter2
    (fun expect got ->
      check bool_c (Printf.sprintf "delay %g" expect) true
        (Float.abs (expect -. got) < 1e-9))
    [ 0.1; 0.2; 0.4 ] sleeps

let test_backoff_jitter_bounded_deterministic () =
  let run seed =
    with_recorded_sleeps (fun () ->
        let r =
          Guard.retrying ~attempts:4 ~backoff:0.1 ~jitter_seed:seed
            always_fuel_failing
        in
        ignore (r.Guard.run Budget.unlimited (fun () -> ())))
  in
  let s1 = run 42 and s2 = run 42 and s3 = run 43 in
  check bool_c "deterministic per seed" true (s1 = s2);
  check bool_c "seeds decorrelate" true (s1 <> s3);
  List.iteri
    (fun i d ->
      let nominal = 0.1 *. (2.0 ** float_of_int i) in
      check bool_c
        (Printf.sprintf "jittered delay %d in [1/2, 1) of nominal" i)
        true
        (d >= (0.5 *. nominal) -. 1e-12 && d < nominal))
    s1

let test_no_retry_on_solver_error () =
  let calls = ref 0 in
  let failing =
    {
      Guard.run =
        (fun _b _f ->
          incr calls;
          Error (Guard.Solver_error "bad input"));
    }
  in
  let sleeps =
    with_recorded_sleeps (fun () ->
        let r = Guard.retrying ~attempts:5 ~backoff:0.1 failing in
        ignore (r.Guard.run Budget.unlimited (fun () -> ())))
  in
  check int_c "one attempt" 1 !calls;
  check int_c "no sleeps" 0 (List.length sleeps)

(* --- isolate: reaping and the fork hook -------------------------------- *)

(* 100 failing workers, then prove the process has no children left:
   waitpid(-1) must say ECHILD, not find a zombie. *)
let test_no_zombies_after_failures () =
  for i = 1 to 100 do
    match i mod 4 with
    | 0 -> begin
        (* worker raises *)
        match Isolate.run (fun () -> failwith "boom") with
        | Error (Guard.Solver_error _) -> ()
        | _ -> Alcotest.fail "expected solver error"
      end
    | 1 -> begin
        (* worker killed by deadline *)
        match
          Isolate.run ~timeout:0.005 ~grace:0.005 (fun () ->
              let rec spin () = spin (ignore (Sys.opaque_identity 1)) in
              spin ())
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "spin returned?"
      end
    | 2 -> begin
        (* worker exits abnormally *)
        match Isolate.run (fun () -> Unix._exit 7) with
        | Error (Guard.Solver_error _) -> ()
        | _ -> Alcotest.fail "expected exit-code error"
      end
    | _ -> begin
        (* normal completion, for contrast *)
        match Isolate.run (fun () -> 21 * 2) with
        | Ok 42 -> ()
        | _ -> Alcotest.fail "expected 42"
      end
  done;
  match Unix.waitpid [ Unix.WNOHANG ] (-1) with
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  | 0, _ ->
      (* a child exists but has not exited: still a leak *)
      Alcotest.fail "unreaped live child remains"
  | pid, _ -> Alcotest.failf "zombie child %d remained" pid

(* Regression: a burst of simultaneous worker finishes — successes
   and failures interleaved — must be fully reaped, and every slot
   reclaimed, by the single [poll] that observes it. A partial sweep
   here used to wedge pool slots until unrelated traffic polled
   again. *)
let test_supervisor_burst_reap () =
  let sup = Supervisor.create ~pool_size:8 () in
  let now = Budget.Clock.now () in
  for i = 1 to 8 do
    (* odd jobs are fuel-starved so the burst mixes outcomes *)
    let spec =
      if i mod 2 = 0 then selftest 10 else selftest ~fuel:5 300_000
    in
    Supervisor.start sup ~now ~id:(Printf.sprintf "burst-%d" i)
      ~deadline:None spec
  done;
  check bool_c "pool saturated" false (Supervisor.has_capacity sup);
  (* wait until every worker's result pipe is readable: all eight are
     finished before the one poll below *)
  let deadline = Budget.Clock.now () +. 10.0 in
  let rec wait () =
    let fds = Supervisor.fds sup in
    let ready, _, _ = Unix.select fds [] [] 0.05 in
    if List.length ready < List.length fds && Budget.Clock.now () < deadline
    then wait ()
  in
  wait ();
  let finished = Supervisor.poll sup ~now:(Budget.Clock.now ()) in
  check int_c "one poll reaps the whole burst" 8 (List.length finished);
  check int_c "all slots reclaimed" 0 (Supervisor.running_count sup);
  check bool_c "capacity restored" true (Supervisor.has_capacity sup);
  List.iter
    (fun f ->
      let starved =
        int_of_string
          (String.sub f.Supervisor.f_id 6 (String.length f.Supervisor.f_id - 6))
        mod 2
        = 1
      in
      match (f.Supervisor.f_outcome, starved) with
      | Ok _, false | Error (Guard.Fuel_exhausted _), true -> ()
      | outcome, _ ->
          Alcotest.failf "%s: unexpected outcome %s" f.Supervisor.f_id
            (match outcome with
            | Ok s -> "Ok " ^ s
            | Error e -> Guard.failure_to_string e))
    finished;
  (match Unix.waitpid [ Unix.WNOHANG ] (-1) with
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  | _ -> Alcotest.fail "burst left a child behind");
  Supervisor.abort_all sup

let test_at_fork_child_hook () =
  let r, w = Unix.pipe () in
  Isolate.at_fork_child (fun () ->
      ignore (Unix.write w (Bytes.of_string "H") 0 1));
  Fun.protect
    ~finally:(fun () ->
      Runtime_state.reset_all ();
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      (match Isolate.run (fun () -> ()) with
      | Ok () -> ()
      | Error f -> Alcotest.failf "worker: %s" (Guard.failure_to_string f));
      match Unix.select [ r ] [] [] 2.0 with
      | [], _, _ -> Alcotest.fail "hook did not run in the child"
      | _ ->
          let b = Bytes.create 1 in
          check int_c "hook byte" 1 (Unix.read r b 0 1);
          check string_c "hook payload" "H" (Bytes.to_string b))

let test_spawn_poll_multiplex () =
  let workers = List.init 5 (fun i -> (i, Isolate.spawn (fun () -> i * i))) in
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec drain pending =
    if pending = [] then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "workers did not finish"
    else begin
      let fds = List.filter_map (fun (_, w) -> Isolate.poll_fd w) pending in
      (match Unix.select fds [] [] 0.05 with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      let still =
        List.filter
          (fun (i, w) ->
            match Isolate.poll w with
            | None -> true
            | Some (Ok v) ->
                check int_c (Printf.sprintf "worker %d" i) (i * i) v;
                false
            | Some (Error f) ->
                Alcotest.failf "worker %d: %s" i (Guard.failure_to_string f))
          pending
      in
      drain still
    end
  in
  drain workers;
  match Unix.waitpid [ Unix.WNOHANG ] (-1) with
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  | _ -> Alcotest.fail "spawn/poll leaked a child"

(* --- wire codec -------------------------------------------------------- *)

let test_wire_roundtrip () =
  let specs =
    [
      selftest 500;
      { Job.kind = Job.Sep { lang = "cq"; dim = Some 2 };
        db_path = "/tmp/with space/db.txt"; timeout = Some 1.5; fuel = Some 100 };
      { Job.kind = Job.Ladder; db_path = "/tmp/db%25.txt"; timeout = None;
        fuel = None };
      { Job.kind = Job.Generate { lang = "cq[2]"; ghw_depth = 3; dim = None };
        db_path = "/x"; timeout = None; fuel = Some 7 };
    ]
  in
  List.iter
    (fun spec ->
      let wire = Job.spec_to_wire spec in
      match Job.spec_of_wire wire with
      | Ok spec' ->
          check bool_c (Printf.sprintf "roundtrip %s" wire) true (spec = spec')
      | Error msg -> Alcotest.failf "decode %s: %s" wire msg)
    specs

let test_wire_rejects () =
  let bad =
    [
      "kind=sep db=/x";  (* missing lang *)
      "kind=sep lang=nosuchlang db=/x";
      "kind=sep lang=cq";  (* missing db *)
      "kind=frobnicate";
      "kind=selftest spin=-1";
      "kind=selftest spin=10 bogus=1";
      "kind=sep lang=cq dim=0 db=/x";
      "kind=selftest spin=10 timeout=-1";
      "notafield";
    ]
  in
  List.iter
    (fun line ->
      match Job.spec_of_wire line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" line)
    bad

(* --- service lifecycle ------------------------------------------------- *)

let test_service_lifecycle () =
  let wal = tmp_path ".wal" in
  let svc = Service.start (cfg wal) in
  let ids = List.init 5 (fun _ -> submit_ok svc (selftest 1000)) in
  check int_c "all distinct ids" 5
    (List.length (List.sort_uniq compare ids));
  run_until_idle svc;
  List.iter
    (fun id -> check bool_c (Printf.sprintf "%s done" id) true (is_done svc id))
    ids;
  let s = Service.stats svc in
  check int_c "done count" 5 s.Service.done_;
  check int_c "failed count" 0 s.Service.failed;
  Service.close svc;
  Sys.remove wal

let test_service_rejects () =
  let wal = tmp_path ".wal" in
  let svc = Service.start (cfg ~queue:2 wal) in
  (* invalid spec *)
  (match Service.submit svc { Job.kind = Job.Sep { lang = "zzz"; dim = None };
                              db_path = "/x"; timeout = None; fuel = None } with
  | Error (Jobq.Invalid _) -> ()
  | _ -> Alcotest.fail "expected Invalid");
  (* past deadline, while the queue is still empty *)
  (match
     Service.submit svc ~deadline:(Budget.Clock.now () -. 1.0) (selftest 10)
   with
  | Error (Jobq.Deadline_unmeetable _) -> ()
  | _ -> Alcotest.fail "expected Deadline_unmeetable");
  (* queue full: capacity 2, nothing dispatched before step *)
  ignore (submit_ok svc (selftest 10));
  ignore (submit_ok svc (selftest 10));
  (match Service.submit svc (selftest 10) with
  | Error (Jobq.Queue_full _) -> ()
  | _ -> Alcotest.fail "expected Queue_full");
  run_until_idle svc;
  (* draining *)
  Service.drain svc;
  (match Service.submit svc (selftest 10) with
  | Error Jobq.Draining -> ()
  | _ -> Alcotest.fail "expected Draining");
  Service.close svc;
  Sys.remove wal

let test_service_deadline_shed_at_dispatch () =
  let wal = tmp_path ".wal" in
  let svc = Service.start (cfg ~pool:1 wal) in
  (* a slow job holds the single worker... *)
  let slow = submit_ok svc (selftest 20_000_000) in
  (* ...and a short-deadline job queues behind it *)
  let late =
    submit_ok svc ~deadline:(Budget.Clock.now () +. 0.02) (selftest 10)
  in
  run_until_idle svc;
  check bool_c "slow done" true (is_done svc slow);
  (match Service.status svc late with
  | Some (Service.Shed code) -> check string_c "shed code" "deadline" code
  | other ->
      Alcotest.failf "late job: %s"
        (match other with
        | Some st -> Service.state_to_string st
        | None -> "<unknown>"));
  let s = Service.stats svc in
  check int_c "shed count" 1 s.Service.shed;
  Service.close svc;
  Sys.remove wal

let test_service_failure_and_breaker () =
  let wal = tmp_path ".wal" in
  let svc = Service.start (cfg ~pool:1 ~threshold:2 ~cooldown:60.0 wal) in
  (* two fuel-starved jobs: resource failures that trip the breaker *)
  let f1 = submit_ok svc (selftest ~fuel:10 300_000) in
  run_until_idle svc;
  let f2 = submit_ok svc (selftest ~fuel:10 300_000) in
  run_until_idle svc;
  List.iter
    (fun id ->
      match Service.status svc id with
      | Some (Service.Failed _) -> ()
      | st ->
          Alcotest.failf "expected failure, got %s"
            (match st with
            | Some s -> Service.state_to_string s
            | None -> "<unknown>"))
    [ f1; f2 ];
  (* breaker now open for the selftest class *)
  (match Service.submit svc (selftest 10) with
  | Error (Jobq.Breaker_open { job_class; retry_after }) ->
      check string_c "class" "selftest" job_class;
      check bool_c "retry_after > 0" true (retry_after > 0.0)
  | Ok _ -> Alcotest.fail "breaker did not trip"
  | Error r -> Alcotest.failf "wrong reject: %s" (Jobq.reject_to_string r));
  Service.close svc;
  Sys.remove wal

let test_service_in_worker_retry () =
  let wal = tmp_path ".wal" in
  let svc = Service.start (cfg ~retries:3 ~backoff:0.0005 wal) in
  (* first attempt is fuel-starved; escalation (x4 per retry) clears it *)
  let id = submit_ok svc (selftest ~fuel:40_000 100_000) in
  run_until_idle svc;
  check bool_c "retried to done" true (is_done svc id);
  Service.close svc;
  Sys.remove wal

let test_service_recovery_preserves_results () =
  let wal = tmp_path ".wal" in
  let svc = Service.start (cfg wal) in
  let ids = List.init 3 (fun _ -> submit_ok svc (selftest 1000)) in
  run_until_idle svc;
  let summaries = List.map (fun id -> (id, state_str svc id)) ids in
  Service.close svc;
  (* restart: completed jobs replay, nothing requeued, nothing re-run *)
  let svc2 = Service.start (cfg wal) in
  let r = Service.recovery svc2 in
  check int_c "recovered completed" 3 r.Service.recovered_completed;
  check int_c "requeued" 0 r.Service.requeued;
  check int_c "dropped bytes" 0 r.Service.dropped_bytes;
  List.iter
    (fun (id, summary) ->
      check string_c (Printf.sprintf "%s stable" id) summary
        (state_str svc2 id))
    summaries;
  (* ids keep incrementing past recovered ones *)
  let id4 = submit_ok svc2 (selftest 1000) in
  check bool_c "fresh id" true (not (List.mem id4 ids));
  run_until_idle svc2;
  Service.close svc2;
  let svc3 = Service.start (cfg wal) in
  check int_c "all four" 4 (Service.recovery svc3).Service.recovered_completed;
  Service.close svc3;
  Sys.remove wal

let test_service_recovery_requeues_incomplete () =
  let wal = tmp_path ".wal" in
  let svc = Service.start (cfg ~pool:1 wal) in
  let slow = submit_ok svc (selftest 50_000_000) in
  let q1 = submit_ok svc (selftest 100) in
  let q2 = submit_ok svc (selftest 100) in
  ignore (Service.step svc);
  (* the slow job is running (journaled as started), two queued; close
     kills the worker without completing anything *)
  Service.close svc;
  let svc2 = Service.start (cfg wal) in
  let r = Service.recovery svc2 in
  check int_c "requeued all three" 3 r.Service.requeued;
  check int_c "none completed" 0 r.Service.recovered_completed;
  run_until_idle svc2;
  List.iter
    (fun id -> check bool_c (Printf.sprintf "%s done" id) true (is_done svc2 id))
    [ slow; q1; q2 ];
  Service.close svc2;
  Sys.remove wal

(* --- crash chaos ------------------------------------------------------- *)

(* Read everything from [fd] until EOF. *)
let slurp_fd fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let install_self_kill ~at =
  let crossings = ref 0 in
  Wal.set_crash_hook
    (Some
       (fun _stage ->
         incr crossings;
         if !crossings = at then Unix.kill (Unix.getpid ()) Sys.sigkill))

(* The child workload: start a service on [wal], submit [njobs]
   selftests, pump to idle, reporting acknowledged submissions
   ("S <id>") and journaled terminal states ("T <id> <state>") over
   the pipe. The crash hook SIGKILLs the process at the [kill_at]-th
   WAL stage crossing — mid-frame, pre-frame, or post-fsync, and with
   workers mid-job, depending on where it lands. *)
let chaos_child ~wal ~njobs ~kill_at ~report_fd =
  install_self_kill ~at:kill_at;
  let say line =
    let b = Bytes.of_string (line ^ "\n") in
    ignore (Unix.write report_fd b 0 (Bytes.length b))
  in
  let svc = Service.start (cfg ~pool:4 ~queue:64 wal) in
  let ids = List.init njobs (fun _ -> submit_ok svc (selftest 200)) in
  List.iter (fun id -> say ("S " ^ id)) ids;
  let reported = Hashtbl.create 16 in
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec pump () =
    ignore (Service.step svc);
    List.iter
      (fun id ->
        if not (Hashtbl.mem reported id) then
          match Service.status svc id with
          | Some (Service.Done _ | Service.Failed _ | Service.Shed _) ->
              Hashtbl.add reported id ();
              say (Printf.sprintf "T %s %s" id (state_str svc id))
          | _ -> ())
      ids;
    if (not (Service.idle svc)) && Unix.gettimeofday () < deadline then begin
      (match Unix.select (Service.wait_fds svc) [] [] 0.005 with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      pump ()
    end
  in
  pump ();
  Service.close svc;
  say "CLEAN"

let parse_reports output =
  List.fold_left
    (fun (subs, terms, clean) line ->
      if line = "CLEAN" then (subs, terms, true)
      else if String.length line > 2 && String.sub line 0 2 = "S " then
        (String.sub line 2 (String.length line - 2) :: subs, terms, clean)
      else if String.length line > 2 && String.sub line 0 2 = "T " then begin
        let rest = String.sub line 2 (String.length line - 2) in
        match String.index_opt rest ' ' with
        | Some i ->
            ( subs,
              ( String.sub rest 0 i,
                String.sub rest (i + 1) (String.length rest - i - 1) )
              :: terms,
              clean )
        | None -> (subs, terms, clean)
      end
      else (subs, terms, clean))
    ([], [], false)
    (String.split_on_char '\n' output)

(* One seeded interruption point: run the child, let it die (or
   finish), then prove recovery from whatever the WAL holds. *)
let chaos_iteration ~njobs ~kill_at =
  let wal = tmp_path ".wal" in
  let r, w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      (match chaos_child ~wal ~njobs ~kill_at ~report_fd:w with
      | () -> Unix._exit 0
      | exception _ -> Unix._exit 9);
  | pid ->
      Unix.close w;
      let output = slurp_fd r in
      Unix.close r;
      let _, status = Unix.waitpid [] pid in
      (match status with
      | Unix.WEXITED 0 | Unix.WSIGNALED _ -> ()
      | Unix.WEXITED c ->
          Alcotest.failf "chaos child (kill_at %d) exited %d" kill_at c
      | Unix.WSTOPPED _ -> Alcotest.failf "chaos child stopped");
      let submitted, terminal, clean = parse_reports output in
      (* recover in-process *)
      let svc = Service.start (cfg ~pool:4 ~queue:64 wal) in
      (* 1. every acknowledged submission survived the crash *)
      List.iter
        (fun id ->
          if Service.status svc id = None then
            Alcotest.failf "kill_at %d: acked job %s lost" kill_at id)
        submitted;
      (* 2. journaled terminal states replay bit-identically *)
      List.iter
        (fun (id, st) ->
          let got = state_str svc id in
          if got <> st then
            Alcotest.failf "kill_at %d: %s changed %S -> %S" kill_at id st got)
        terminal;
      (* 3. the backlog finishes: every known job terminal *)
      run_until_idle svc;
      List.iter
        (fun id ->
          match Service.status svc id with
          | Some (Service.Done _ | Service.Failed _ | Service.Shed _) -> ()
          | _ -> Alcotest.failf "kill_at %d: %s not terminal" kill_at id)
        submitted;
      let final =
        List.map (fun id -> (id, state_str svc id)) (Service.job_ids svc)
      in
      Service.close svc;
      (* 4. a second, crash-free replay is a fixpoint: nothing requeued,
         every state identical *)
      let svc2 = Service.start (cfg ~pool:4 ~queue:64 wal) in
      check int_c
        (Printf.sprintf "kill_at %d: fixpoint requeue" kill_at)
        0
        (Service.recovery svc2).Service.requeued;
      List.iter
        (fun (id, st) ->
          check string_c
            (Printf.sprintf "kill_at %d: %s fixpoint" kill_at id)
            st (state_str svc2 id))
        final;
      Service.close svc2;
      Sys.remove wal;
      clean

(* Sweep the WAL-append machinery alone (cheap, no workers): a child
   appends 30 records, dying at the [kill_at]-th stage crossing; the
   prefix property must hold at every point. *)
let wal_chaos_iteration ~kill_at =
  let path = tmp_path ".wal" in
  let payloads = List.init 30 (fun i -> Printf.sprintf "rec-%02d" i) in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      install_self_kill ~at:kill_at;
      (match
         let w = Wal.open_append path in
         List.iter (Wal.append w) payloads;
         Wal.close w
       with
      | () -> Unix._exit 0
      | exception _ -> Unix._exit 9)
  | pid ->
      let _, status = Unix.waitpid [] pid in
      let survived = status = Unix.WEXITED 0 in
      let rep = Wal.replay path in
      let got = List.map fst rep.Wal.records in
      let n = List.length got in
      if n > List.length payloads then
        Alcotest.failf "kill_at %d: too many records" kill_at;
      List.iteri
        (fun i p ->
          check string_c (Printf.sprintf "kill_at %d: record %d" kill_at i)
            (List.nth payloads i) p)
        got;
      if survived && (n <> List.length payloads || rep.Wal.damage <> None)
      then Alcotest.failf "kill_at %d: clean run lost records" kill_at;
      (* repair + append always possible afterwards *)
      ignore (Wal.repair path rep);
      let w = Wal.open_append path in
      Wal.append w "post-crash";
      Wal.close w;
      let rep2 = Wal.replay path in
      check bool_c
        (Printf.sprintf "kill_at %d: post-repair clean" kill_at)
        true
        (rep2.Wal.damage = None);
      check string_c
        (Printf.sprintf "kill_at %d: post-repair append" kill_at)
        "post-crash"
        (fst (List.nth rep2.Wal.records n));
      Sys.remove path;
      survived

let test_wal_crash_sweep () =
  (* 30 appends x 3 stages = 90 interruption points, then one clean
     run to prove the sweep covered the whole schedule. *)
  let rec sweep kill_at =
    if wal_chaos_iteration ~kill_at then kill_at - 1
    else if kill_at > 500 then Alcotest.fail "wal sweep did not terminate"
    else sweep (kill_at + 1)
  in
  let covered = sweep 1 in
  check bool_c
    (Printf.sprintf "wal sweep covered %d points (>= 90)" covered)
    true (covered >= 90)

let test_service_crash_sweep () =
  (* 13 jobs x 3 events x 3 stages = 117 interruption points; together
     with the 90 WAL-level points this exceeds the 200-point floor. *)
  let njobs = 13 in
  let rec sweep kill_at =
    if chaos_iteration ~njobs ~kill_at then kill_at - 1
    else if kill_at > 1000 then
      Alcotest.fail "service sweep did not terminate"
    else sweep (kill_at + 1)
  in
  let covered = sweep 1 in
  check bool_c
    (Printf.sprintf "service sweep covered %d points (>= 117)" covered)
    true
    (covered >= 117)

(* --- fd exhaustion ------------------------------------------------------ *)

let test_fd_discipline_under_ulimit () =
  let cmd =
    Printf.sprintf "ulimit -n 40; exec %s --fd-probe"
      (Filename.quote Sys.executable_name)
  in
  let ic = Unix.open_process_in (Printf.sprintf "/bin/sh -c %s" (Filename.quote cmd)) in
  let out = In_channel.input_all ic in
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 ->
      check bool_c "probe reported ok" true
        (String.length out >= 11 && String.sub out 0 11 = "fd-probe ok")
  | Unix.WEXITED c -> Alcotest.failf "fd probe exited %d: %s" c out
  | _ -> Alcotest.fail "fd probe killed"

(* --- live daemon integration ------------------------------------------- *)

(* Unix-socket paths are length-capped, so these live in /tmp, not in
   dune's (deep) sandbox directory. *)
let sock_path tag = Printf.sprintf "/tmp/cqserved-%d-%s.sock" (Unix.getpid ()) tag

let daemon_request sock line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX sock) with
      | exception Unix.Unix_error _ -> None
      | () ->
          let payload = Bytes.of_string (line ^ "\n") in
          let rec send off =
            if off < Bytes.length payload then
              match Unix.write fd payload off (Bytes.length payload - off) with
              | n -> send (off + n)
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> send off
          in
          (match send 0 with
          | () -> ()
          | exception Unix.Unix_error _ -> ());
          let buf = Buffer.create 128 in
          let chunk = Bytes.create 256 in
          let deadline = Unix.gettimeofday () +. 5.0 in
          let rec recv () =
            if Unix.gettimeofday () > deadline then None
            else
              match Unix.select [ fd ] [] [] 0.25 with
              | [], _, _ -> recv ()
              | _ -> begin
                  match Unix.read fd chunk 0 (Bytes.length chunk) with
                  | 0 -> Some (Buffer.contents buf)
                  | n -> begin
                      match Bytes.index_opt (Bytes.sub chunk 0 n) '\n' with
                      | Some i ->
                          Buffer.add_subbytes buf chunk 0 i;
                          Some (Buffer.contents buf)
                      | None ->
                          Buffer.add_subbytes buf chunk 0 n;
                          recv ()
                    end
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
                  | exception Unix.Unix_error _ -> None
                end
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
          in
          recv ())

let daemon_exe = "../bin/cqserved.exe"
let cqq_exe = "../bin/cqq.exe"

let start_daemon ~sock ~wal ~pool =
  let pid =
    Unix.create_process daemon_exe
      [| "cqserved"; "-s"; sock; "-w"; wal; "--pool"; string_of_int pool |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  (* wait until it answers *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec wait_up () =
    match daemon_request sock "PING" with
    | Some "OK pong" -> ()
    | _ when Unix.gettimeofday () > deadline ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        Alcotest.fail "daemon did not come up"
    | _ ->
        Unix.sleepf 0.05;
        wait_up ()
  in
  wait_up ();
  pid

let wait_pid_exit ?(timeout = 15.0) pid =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          Alcotest.fail "daemon did not exit in time"
        end
        else begin
          Unix.sleepf 0.05;
          go ()
        end
    | _, st -> st
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let require reply =
  match reply with
  | Some r -> r
  | None -> Alcotest.fail "daemon unreachable"

let poll_status sock id =
  let deadline = Unix.gettimeofday () +. 20.0 in
  let rec go () =
    let r = require (daemon_request sock ("STATUS " ^ id)) in
    let terminal prefix =
      let p = "OK " ^ prefix in
      String.length r >= String.length p
      && String.sub r 0 (String.length p) = p
    in
    if terminal "done:" || terminal "failed:" || terminal "shed:" then r
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "job %s stuck at %s" id r
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let test_daemon_roundtrip_and_crash_recovery () =
  let sock = sock_path "rt" in
  let wal = tmp_path ".wal" in
  let cleanup pid =
    (match pid with
    | Some p -> ( try Unix.kill p Sys.sigkill with Unix.Unix_error _ -> ())
    | None -> ());
    (try Sys.remove sock with Sys_error _ -> ());
    try Sys.remove wal with Sys_error _ -> ()
  in
  let daemon = ref None in
  Fun.protect
    ~finally:(fun () -> cleanup !daemon)
    (fun () ->
      let pid = start_daemon ~sock ~wal ~pool:1 in
      daemon := Some pid;
      (* protocol round trip *)
      check string_c "ping" "OK pong" (require (daemon_request sock "PING"));
      let reply =
        require (daemon_request sock "SUBMIT kind=selftest spin=500")
      in
      let id =
        match String.index_opt reply ' ' with
        | Some i when String.sub reply 0 i = "OK" ->
            String.sub reply (i + 1) (String.length reply - i - 1)
        | _ -> Alcotest.failf "submit: %s" reply
      in
      let st = poll_status sock id in
      check bool_c "selftest done" true
        (String.length st >= 8 && String.sub st 0 8 = "OK done:");
      (* garbage handled *)
      let err = require (daemon_request sock "FROBNICATE") in
      check bool_c "unknown command" true
        (String.length err >= 3 && String.sub err 0 3 = "ERR");
      (* now park a slow job + a queued one, and SIGKILL the daemon *)
      let slow =
        match
          String.split_on_char ' '
            (require (daemon_request sock "SUBMIT kind=selftest spin=200000000"))
        with
        | [ "OK"; id ] -> id
        | other -> Alcotest.failf "submit slow: %s" (String.concat " " other)
      in
      let queued =
        match
          String.split_on_char ' '
            (require (daemon_request sock "SUBMIT kind=selftest spin=600"))
        with
        | [ "OK"; id ] -> id
        | other -> Alcotest.failf "submit queued: %s" (String.concat " " other)
      in
      Unix.kill pid Sys.sigkill;
      ignore (wait_pid_exit pid);
      daemon := None;
      (* restart on the same WAL and socket: the stale socket (and any
         orphaned worker holding it) must not block the restart *)
      let pid2 = start_daemon ~sock ~wal ~pool:2 in
      daemon := Some pid2;
      (* the completed job survived; the interrupted ones re-run *)
      let st1 = require (daemon_request sock ("STATUS " ^ id)) in
      check bool_c "completed job preserved" true
        (String.length st1 >= 8 && String.sub st1 0 8 = "OK done:");
      ignore (poll_status sock slow);
      ignore (poll_status sock queued);
      (* drain: daemon finishes and exits 0 *)
      check string_c "drain ack" "OK draining"
        (require (daemon_request sock "DRAIN"));
      (match wait_pid_exit pid2 with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED c -> Alcotest.failf "drained daemon exited %d" c
      | _ -> Alcotest.fail "drained daemon killed");
      daemon := None;
      (* the cqq client binary end-to-end *)
      let pid3 = start_daemon ~sock ~wal ~pool:1 in
      daemon := Some pid3;
      let cqq_line =
        Printf.sprintf "%s submit -s %s --kind selftest --spin 400 --wait"
          (Filename.quote cqq_exe) (Filename.quote sock)
      in
      let ic = Unix.open_process_in cqq_line in
      let out = In_channel.input_all ic in
      (match Unix.close_process_in ic with
      | Unix.WEXITED 0 ->
          check bool_c "cqq saw completion" true
            (String.length out >= 5 && String.sub out 0 5 = "done:")
      | Unix.WEXITED c -> Alcotest.failf "cqq exited %d: %s" c out
      | _ -> Alcotest.fail "cqq killed");
      ignore (require (daemon_request sock "DRAIN"));
      ignore (wait_pid_exit pid3);
      daemon := None)

(* --- suite ------------------------------------------------------------- *)

let () =
  Alcotest.run "service"
    [
      ( "codec",
        [
          Alcotest.test_case "crc32 check value" `Quick test_crc_check_value;
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "truncation sweep" `Quick
            test_codec_truncation_sweep;
          Alcotest.test_case "corruption" `Quick test_codec_corruption;
        ] );
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "missing file" `Quick test_wal_missing_file;
          Alcotest.test_case "torn tail repair" `Quick
            test_wal_torn_tail_repair;
          Alcotest.test_case "byte truncation sweep" `Quick
            test_wal_truncation_sweep;
        ] );
      ( "jobq",
        [
          Alcotest.test_case "fifo" `Quick test_jobq_fifo;
          Alcotest.test_case "rejects" `Quick test_jobq_rejects;
          Alcotest.test_case "expired at dispatch" `Quick test_jobq_expired;
        ] );
      ( "breaker",
        [ Alcotest.test_case "state machine" `Quick test_breaker_machine ] );
      ( "backoff",
        [
          Alcotest.test_case "exponential schedule" `Quick
            test_backoff_schedule;
          Alcotest.test_case "bounded deterministic jitter" `Quick
            test_backoff_jitter_bounded_deterministic;
          Alcotest.test_case "no retry on solver error" `Quick
            test_no_retry_on_solver_error;
        ] );
      ( "isolate",
        [
          Alcotest.test_case "no zombies after 100 failures" `Quick
            test_no_zombies_after_failures;
          Alcotest.test_case "supervisor reaps a death burst in one poll"
            `Quick test_supervisor_burst_reap;
          Alcotest.test_case "at-fork child hook" `Quick
            test_at_fork_child_hook;
          Alcotest.test_case "spawn/poll multiplex" `Quick
            test_spawn_poll_multiplex;
        ] );
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "rejects" `Quick test_wire_rejects;
        ] );
      ( "service",
        [
          Alcotest.test_case "lifecycle" `Quick test_service_lifecycle;
          Alcotest.test_case "structured rejects" `Quick test_service_rejects;
          Alcotest.test_case "deadline shed at dispatch" `Quick
            test_service_deadline_shed_at_dispatch;
          Alcotest.test_case "failures trip the breaker" `Quick
            test_service_failure_and_breaker;
          Alcotest.test_case "in-worker retry" `Quick
            test_service_in_worker_retry;
          Alcotest.test_case "recovery preserves results" `Quick
            test_service_recovery_preserves_results;
          Alcotest.test_case "recovery requeues incomplete" `Quick
            test_service_recovery_requeues_incomplete;
        ] );
      ( "crash",
        [
          Alcotest.test_case "wal sweep (90 kill points)" `Slow
            test_wal_crash_sweep;
          Alcotest.test_case "service sweep (117 kill points)" `Slow
            test_service_crash_sweep;
        ] );
      ( "fds",
        [
          Alcotest.test_case "no leaks under ulimit -n 40" `Quick
            test_fd_discipline_under_ulimit;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "roundtrip, SIGKILL, recovery, drain" `Slow
            test_daemon_roundtrip_and_crash_recovery;
        ] );
    ]
