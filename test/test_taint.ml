(* Golden taint/protocol tests over compiled tf_fixtures cmts: the
   uncertified float-to-verdict path, the Certify-sanitized path, SCC
   propagation, journal-before-ack domination, handle release — plus a
   regression lock on the real Nsep: its entry points must stay
   certified-clean, and the fixture proving that deleting the
   Certify.hyperplane call is caught is tf_taint_bypass. *)

let check = Alcotest.check
let keys_c = Alcotest.(list (pair string string))
let bool_c = Alcotest.bool

let fixture_dir = "typed_fixtures"

let all_ml =
  [
    "tf_taint_leak.ml"; "tf_taint_certified.ml"; "tf_taint_scc.ml";
    "tf_taint_bypass.ml"; "tf_r13_ack.ml"; "tf_r14_leak.ml";
  ]

let load ~rel_dir ~lib_name ~ml =
  List.filter_map
    (fun (u : Lint_cmt.unit_info) ->
      match (u.u_impl, u.u_ml) with
      | Some impl, Some file ->
          Some
            {
              Typed_rules.s_mod = u.u_module;
              s_file = file;
              s_mli = u.u_mli;
              s_solver = true;
              s_impl = impl;
              s_intf = u.u_intf;
            }
      | _ -> None)
    (Lint_cmt.load_units ~root:"." ~rel_dir ~lib_name ~ml ~mli:[])

let impls srcs =
  List.map
    (fun (s : Typed_rules.source) -> (s.Typed_rules.s_mod, s.s_impl))
    srcs

let sources =
  lazy (load ~rel_dir:fixture_dir ~lib_name:"tf_fixtures" ~ml:all_ml)

let graph = lazy (Callgraph.build (impls (Lazy.force sources)))

let taint =
  lazy (Taint.analyze (Lazy.force graph) (impls (Lazy.force sources)))

let everywhere _ = true

let rule_keys ~file findings =
  List.sort compare
    (List.filter_map
       (fun (f : Lint_finding.t) ->
         if f.file = Filename.concat fixture_dir file then
           Some (Lint_finding.rule_to_string f.rule, f.key)
         else None)
       findings)

let r12 =
  lazy
    (Protocol_rules.r12_float_taint ~sink_scope:everywhere
       (Lazy.force taint) (Lazy.force graph) (Lazy.force sources))

let summary name =
  let g = Lazy.force graph in
  match Callgraph.find_global g name with
  | Some id -> Taint.return_taint (Lazy.force taint) id
  | None -> Alcotest.failf "no definition named %s in the graph" name

let test_r12_leak () =
  check keys_c "float array packed into the verdict"
    [ ("R12", "taint:decide"); ("R12", "taint:fit") ]
    (rule_keys ~file:"tf_taint_leak.ml" (Lazy.force r12))

let test_r12_certified () =
  check keys_c "Certify.hyperplane sanitizes the candidate"
    [ ("R12", "taint:fit") ]
    (rule_keys ~file:"tf_taint_certified.ml" (Lazy.force r12));
  check bool_c "decide is clean" true
    (summary "Tf_taint_certified.decide" = None);
  check bool_c "decide still touches the float tier (certified row)" true
    (let g = Lazy.force graph in
     match Callgraph.find_global g "Tf_taint_certified.decide" with
     | Some id -> Taint.touches_float (Lazy.force taint) id
     | None -> false)

let test_r12_scc () =
  check keys_c "taint propagates around the poll/wait cycle"
    [ ("R12", "taint:poll"); ("R12", "taint:report"); ("R12", "taint:wait") ]
    (rule_keys ~file:"tf_taint_scc.ml" (Lazy.force r12))

let test_r12_bypass_caught () =
  (* The acceptance criterion: Nsep's numeric path minus its
     Certify.hyperplane call must be flagged. *)
  let keys = rule_keys ~file:"tf_taint_bypass.ml" (Lazy.force r12) in
  check bool_c "decide flagged" true
    (List.mem ("R12", "taint:decide") keys);
  check bool_c "numeric_attempt flagged" true
    (List.mem ("R12", "taint:numeric_attempt") keys)

let test_r13 () =
  let findings =
    Protocol_rules.r13_journal ~in_scope:everywhere
      ~ack_funs:
        [ "Tf_r13_ack.ack_bad"; "Tf_r13_ack.ack_good"; "Tf_r13_ack.reply_early" ]
      (Lazy.force taint) (Lazy.force graph) (Lazy.force sources)
  in
  check keys_c "mutate-before-append, one-path journal, early Ok"
    [
      ("R13", "journal:ji_state@ack_bad");
      ("R13", "journal:ji_state@ack_branchy");
      ("R13", "journal:ok@reply_early");
    ]
    (rule_keys ~file:"tf_r13_ack.ml" findings)

let test_r14 () =
  let findings =
    Protocol_rules.r14_release ~in_scope:everywhere (Lazy.force taint)
      (Lazy.force graph) (Lazy.force sources)
  in
  check keys_c "only the one-branch close leaks"
    [ ("R14", "leak:openfile@leak") ]
    (rule_keys ~file:"tf_r14_leak.ml" findings)

(* --- regression lock on the real numeric tier ------------------------- *)

let real_sources =
  lazy
    (load ~rel_dir:"../lib/linsep" ~lib_name:"linsep"
       ~ml:[ "certify.ml"; "linsep.ml"; "nsep.ml" ]
    @ load ~rel_dir:"../lib/lp" ~lib_name:"lp"
        ~ml:[ "cg.ml"; "fsimplex.ml"; "simplex.ml" ])

let real_graph = lazy (Callgraph.build (impls (Lazy.force real_sources)))

let real_taint =
  lazy
    (Taint.analyze (Lazy.force real_graph) (impls (Lazy.force real_sources)))

let real_summary name =
  let g = Lazy.force real_graph in
  match Callgraph.find_global g name with
  | Some id -> Taint.return_taint (Lazy.force real_taint) id
  | None -> Alcotest.failf "no definition named %s in the graph" name

let test_nsep_lock () =
  List.iter
    (fun name ->
      match real_summary name with
      | None -> ()
      | Some why -> Alcotest.failf "%s became float-tainted: %s" name why)
    [ "Nsep.decide"; "Nsep.decide_b"; "Nsep.separable"; "Nsep.is_separable" ];
  (* ... while the float tier underneath really is a taint source, so
     the lock is not vacuous. *)
  check bool_c "Cg.fit is float-tainted" true (real_summary "Cg.fit" <> None);
  check bool_c "Nsep.decide touches the float tier" true
    (match Callgraph.find_global (Lazy.force real_graph) "Nsep.decide" with
    | Some id -> Taint.touches_float (Lazy.force real_taint) id
    | None -> false)

let test_tables () =
  check bool_c "+. is a source" true (Taint.source_head "+.");
  check bool_c "Float.* is a source" true (Taint.source_head "Float.of_int");
  check bool_c "Rat.to_float is a source" true (Taint.source_head "Rat.to_float");
  check bool_c "Certify.hyperplane sanitizes" true
    (Taint.sanitizer_head "Certify.hyperplane");
  check bool_c "Rat.of_float sanitizes" true (Taint.sanitizer_head "Rat.of_float");
  check bool_c "Rat.of_float is not a source" false
    (Taint.source_head "Rat.of_float")

let () =
  Alcotest.run "taint"
    [
      ( "r12",
        [
          Alcotest.test_case "leak" `Quick test_r12_leak;
          Alcotest.test_case "certified" `Quick test_r12_certified;
          Alcotest.test_case "scc" `Quick test_r12_scc;
          Alcotest.test_case "bypass caught" `Quick test_r12_bypass_caught;
        ] );
      ( "r13",
        [ Alcotest.test_case "journal-before-ack" `Quick test_r13 ] );
      ( "r14",
        [ Alcotest.test_case "release-on-all-paths" `Quick test_r14 ] );
      ( "lock",
        [
          Alcotest.test_case "nsep stays certified" `Quick test_nsep_lock;
          Alcotest.test_case "name tables" `Quick test_tables;
        ] );
    ]
