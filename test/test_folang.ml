(* Tests for structure isomorphism, FO separability and the dimension
   properties of Section 8. *)

open Test_util

let edge a b = ("E", [ sym a; sym b ])

let path pfx n =
  Db.of_list
    (List.init n (fun i ->
         edge (Printf.sprintf "%s%d" pfx i) (Printf.sprintf "%s%d" pfx (i + 1))))

let cycle pfx n =
  Db.of_list
    (List.init n (fun i ->
         edge (Printf.sprintf "%s%d" pfx i) (Printf.sprintf "%s%d" pfx ((i + 1) mod n))))

(* --- isomorphism ------------------------------------------------------ *)

let test_iso_basic () =
  check bool_c "path ≅ path" true (Struct_iso.isomorphic (path "a" 3) (path "b" 3));
  check bool_c "path3 ≇ path4" false
    (Struct_iso.isomorphic (path "a" 3) (path "b" 4));
  check bool_c "path ≇ cycle" false
    (Struct_iso.isomorphic (path "a" 3) (cycle "b" 4));
  check bool_c "cycle ≅ cycle" true
    (Struct_iso.isomorphic (cycle "a" 5) (cycle "b" 5))

let test_iso_pointed () =
  let p = path "v" 3 in
  check bool_c "same point" true
    (Struct_iso.isomorphic_pointed (p, [ sym "v1" ]) (p, [ sym "v1" ]));
  check bool_c "different orbit" false
    (Struct_iso.isomorphic_pointed (p, [ sym "v0" ]) (p, [ sym "v1" ]));
  let c = cycle "c" 4 in
  check bool_c "cycle transitive" true
    (Struct_iso.isomorphic_pointed (c, [ sym "c0" ]) (c, [ sym "c2" ]))

let test_iso_multiset_trap () =
  (* same degree sequences, non-isomorphic: C6 vs two C3s *)
  let c6 = cycle "a" 6 in
  let c33 = Db.union (cycle "b" 3) (cycle "d" 3) in
  check bool_c "C6 ≇ C3+C3" false (Struct_iso.isomorphic c6 c33)

let test_find_isomorphism_witness () =
  let a = cycle "a" 4 and b = cycle "b" 4 in
  match Struct_iso.find_isomorphism a b with
  | None -> Alcotest.fail "isomorphism must exist"
  | Some h ->
      check bool_c "witness is hom" true (Hom.is_hom h ~src:a ~dst:b);
      let image = Elem.Map.fold (fun _ v acc -> Elem.Set.add v acc) h Elem.Set.empty in
      check int_c "bijective" 4 (Elem.Set.cardinal image)

let test_refine_colors_deep_signature () =
  (* Two elements whose incidence signatures share their first five
     (relation, position) pairs — about ten scalar leaves, exactly the
     prefix the polymorphic [Hashtbl.hash] inspects — and differ only
     past it. Interning [Hashtbl.hash signature] used to merge them
     into one refinement class; the explicit serialization must keep
     them apart. *)
  let x = sym "x" and y = sym "y" in
  let shared e = List.init 5 (fun i -> (Printf.sprintf "R%d" (i + 1), [ e ])) in
  let db =
    Db.of_list (shared x @ [ ("R8", [ x ]) ] @ shared y @ [ ("R9", [ y ]) ])
  in
  let colors = Struct_iso.refine_colors db in
  check bool_c "deep-signature elements get distinct colors" true
    (Elem.Map.find x colors <> Elem.Map.find y colors);
  (* And the distinction carries to the isomorphism test: swapping the
     deep tail makes the databases non-isomorphic. *)
  let da = Db.of_list (shared x @ [ ("R8", [ x ]) ])
  and db' = Db.of_list (shared y @ [ ("R8", [ y ]) ])
  and dc = Db.of_list (shared y @ [ ("R9", [ y ]) ]) in
  check bool_c "same deep signature: isomorphic" true
    (Struct_iso.isomorphic da db');
  check bool_c "deep tails differ: not isomorphic" false
    (Struct_iso.isomorphic da dc)

let prop_iso_reflexive =
  QCheck.Test.make ~name:"D ≅ D" ~count:50 (spec_arb ~max_nodes:4 ~max_edges:5)
    (fun s ->
      let d = db_of_spec s in
      Struct_iso.isomorphic d d)

let prop_iso_respects_renaming =
  QCheck.Test.make ~name:"D ≅ rename(D)" ~count:50
    (spec_arb ~max_nodes:4 ~max_edges:5) (fun s ->
      let d = db_of_spec s in
      let d' = Db.map_elems (fun e -> Elem.tup [ e ]) d in
      Struct_iso.isomorphic d d')

let prop_iso_implies_hom_equiv =
  QCheck.Test.make ~name:"iso implies hom-equivalence" ~count:40
    (QCheck.pair (spec_arb ~max_nodes:3 ~max_edges:4)
       (spec_arb ~max_nodes:3 ~max_edges:4))
    (fun (sa, sb) ->
      let a = db_of_spec sa and b = db_of_spec sb in
      QCheck.assume (Struct_iso.isomorphic a b);
      Hom.exists ~src:a ~dst:b () && Hom.exists ~src:b ~dst:a ())

(* --- FO separability -------------------------------------------------- *)

let test_fo_separable () =
  let t = Families.two_path_gadget 3 in
  check bool_c "two paths FO-separable" true (Fo_sep.fo_separable t);
  (* two entities with isomorphic pointed structures, opposite labels *)
  let db = Db.union (path "a" 2) (path "b" 2) in
  let db = Db.add_entity (sym "a0") (Db.add_entity (sym "b0") db) in
  let t2 =
    Labeling.training db
      (Labeling.of_list
         [ (sym "a0", Labeling.Pos); (sym "b0", Labeling.Neg) ])
  in
  check bool_c "isomorphic pair not FO-separable" false (Fo_sep.fo_separable t2);
  match Fo_sep.fo_inseparable_witness t2 with
  | Some (e, e') ->
      check bool_c "witness pair" true
        (Struct_iso.isomorphic_pointed (db, [ e ]) (db, [ e' ]))
  | None -> Alcotest.fail "witness expected"

let test_fo_finer_than_cq () =
  (* hom-equivalent but non-isomorphic pointed dbs: a 1-cycle entity vs
     a 2-cycle entity over symmetric reachability... simplest: entity
     with self-loop vs entity on a 2-cycle of mutually looping... use
     loop vs double loop chain: E(a,a) and E(b,c),E(c,b): hom-equiv
     (both fold to the loop? 2-cycle -> loop and loop -> 2-cycle? loop
     maps to... E(a,a) -> needs E(h a, h a): no self loop in the
     2-cycle: NOT hom-equiv.) Use instead: path1 entity vs path2
     entity pointed at starts: p1 -> p2 pointed? E(x,y) into
     E(u,v),E(v,w) pointed x->u fine; p2 -> p1 pointed start:
     v0v1v2 -> u0u1: fold? u0->u1, then v1 -> u1, v2 -> needs E(u1,?):
     none. Not equiv either. Settle for: CQ-separability differs from
     FO-separability on loop vs 2-cycle entities — FO separates (non-
     isomorphic), CQ also separates (not hom-equivalent): both true;
     assert FO refines CQ on random data instead. *)
  ()

let prop_fo_refines_cq =
  QCheck.Test.make ~name:"CQ-separable implies FO-separable" ~count:40
    (labeled_spec_arb ~max_nodes:4 ~max_edges:5) (fun ls ->
      let t = training_of_labeled ls in
      QCheck.assume (Fo_sep.epfo_separable t);
      Fo_sep.fo_separable t)

let test_fo_classify () =
  let t = Families.two_path_gadget 3 in
  (* evaluation db isomorphic to training: same labels *)
  let eval_db = Db.map_elems (fun e -> Elem.tup [ e ]) t.Labeling.db in
  let lab = Fo_sep.fo_classify t eval_db in
  List.iter
    (fun (e, l) ->
      let e' = Elem.tup [ e ] in
      check bool_c "label copied" true
        (Labeling.label_equal l (Labeling.get e' lab)))
    (Labeling.bindings t.Labeling.labeling);
  (* an unseen entity (fresh shape) defaults to Neg *)
  let fresh = Db.add_entity (sym "zzz") eval_db in
  let lab2 = Fo_sep.fo_classify t fresh in
  check bool_c "fresh class Neg" true
    (Labeling.label_equal Labeling.Neg (Labeling.get (sym "zzz") lab2))

let test_epfo_is_cq () =
  let t = Families.example_62 () in
  check bool_c "∃FO+ = CQ separability" (Cq_sep.separable t)
    (Fo_sep.epfo_separable t)

let test_iso_classes () =
  let t = Families.alternating_labels (Families.cycle 4) in
  (* all cycle vertices isomorphic: one class *)
  Alcotest.(check int) "one class" 1 (List.length (Fo_sep.iso_classes t))

(* --- dimension properties --------------------------------------------- *)

let chain_queries = lazy (Cq_enum.feature_queries ~schema:[ ("E", 2) ] ~max_atoms:2 ())

let test_linear_family () =
  let db = Families.linear_chain 6 in
  let queries = Lazy.force chain_queries in
  check bool_c "chain family is linear" true
    (Fo_dimension.family_is_linear ~queries ~db);
  check bool_c "length grows" true
    (Fo_dimension.chain_length ~queries ~db
     > Fo_dimension.chain_length ~queries ~db:(Families.linear_chain 3))

let test_collapse_counterexample () =
  (* Example 6.2's database: {R(D)} = {a}, {S(D)} = {a,c};
     complement of R = {b,c}; S ∩ compl R = {c} is not realizable. *)
  let t = Families.example_62 () in
  let queries =
    Cq_enum.feature_queries ~schema:[ ("R", 1); ("S", 1) ] ~max_atoms:1 ()
  in
  match Fo_dimension.collapse_counterexample ~queries ~db:t.Labeling.db with
  | Some _ -> ()
  | None -> Alcotest.fail "CQ must violate the Thm 8.4 closure condition"

let test_indicator_family () =
  let t = Families.example_62 () in
  let queries =
    Cq_enum.feature_queries ~schema:[ ("R", 1); ("S", 1) ] ~max_atoms:1 ()
  in
  let fam = Fo_dimension.indicator_family ~queries ~db:t.Labeling.db in
  (* on Example 6.2's database the family is the chain
     {a} ⊆ {a,c} ⊆ {a,b,c} *)
  check bool_c "at least 3 sets" true (List.length fam >= 3);
  check bool_c "linear here" true
    (Fo_dimension.family_is_linear ~queries ~db:t.Labeling.db);
  (* incomparable indicator sets break linearity: R(a), T(b) give
     {a} vs {b} *)
  let db2 =
    Db.add_entity (sym "a")
      (Db.add_entity (sym "b")
         (Db.of_list [ ("R", [ sym "a" ]); ("T", [ sym "b" ]) ]))
  in
  let queries2 =
    Cq_enum.feature_queries ~schema:[ ("R", 1); ("T", 1) ] ~max_atoms:1 ()
  in
  check bool_c "not linear" false
    (Fo_dimension.family_is_linear ~queries:queries2 ~db:db2)

(* --- k-pebble game ----------------------------------------------------- *)

let test_pebble_basics () =
  let p3 = path "a" 3 and p3' = path "b" 3 in
  check bool_c "isomorphic structures equivalent at any k" true
    (Pebble_game.equivalent ~k:2 (p3, []) (p3', []));
  (* directed paths of different lengths: 2 variables suffice to count
     the length of the unique out-path from the start *)
  let p2 = path "c" 2 in
  check bool_c "P3 vs P2 differ at k=2" false
    (Pebble_game.equivalent ~k:2 (p3, []) (p2, []));
  (* pinned: start vs middle of a path *)
  check bool_c "start vs middle differ" false
    (Pebble_game.equivalent ~k:2 (p3, [ sym "a0" ]) (p3, [ sym "a1" ]))

let test_pebble_classic_cycles () =
  (* Classic: large directed cycles are FO_2-equivalent but
     distinguishable with 3 variables... for directed cycles even 2
     pebbles walk around and compare lengths? On directed cycles every
     vertex has out-degree 1, so 2-pebble spoiler walking both pebbles
     can measure return times: C4 vs C5 should differ at k=2? They
     are NOT isomorphic; with enough pebbles (k >= 4) the difference
     is certain: *)
  let c4 = cycle "a" 4 and c5 = cycle "b" 5 in
  check bool_c "C4 vs C5 differ at k=4" false
    (Pebble_game.equivalent ~k:4 (c4, []) (c5, []));
  check bool_c "C4 equivalent to itself" true
    (Pebble_game.equivalent ~k:3 (c4, []) (cycle "d" 4, []))

let prop_pebble_monotone_in_k =
  QCheck.Test.make ~name:"FO_{k+1}-equiv implies FO_k-equiv" ~count:20
    (QCheck.pair (spec_arb ~max_nodes:3 ~max_edges:4)
       (spec_arb ~max_nodes:3 ~max_edges:4))
    (fun (sa, sb) ->
      let a = db_of_spec sa and b = db_of_spec sb in
      (not (Pebble_game.equivalent ~k:2 (a, []) (b, [])))
      || Pebble_game.equivalent ~k:1 (a, []) (b, []))

let prop_pebble_iso_implies_equiv =
  QCheck.Test.make ~name:"isomorphic implies FO_k-equivalent" ~count:20
    (spec_arb ~max_nodes:4 ~max_edges:5)
    (fun s ->
      let d = db_of_spec s in
      let d' = Db.map_elems (fun e -> Elem.tup [ e ]) d in
      Pebble_game.equivalent ~k:2 (d, []) (d', []))

let prop_pebble_limit_is_iso =
  QCheck.Test.make ~name:"FO_k-equiv = iso when k = |dom| (same sizes)"
    ~count:20
    (QCheck.pair (spec_arb ~max_nodes:3 ~max_edges:3)
       (spec_arb ~max_nodes:3 ~max_edges:3))
    (fun (sa, sb) ->
      let a = db_of_spec sa and b = db_of_spec sb in
      QCheck.assume (Db.domain_size a = Db.domain_size b);
      let k = max 1 (Db.domain_size a) in
      Pebble_game.equivalent ~k (a, []) (b, []) = Struct_iso.isomorphic a b)

(* FO_k-separability is monotone in k and below full FO. (Note that
   CQ-separability does NOT imply FO_2-separability: a triangle
   distinguisher is a CQ but needs three variables.) *)
let prop_fok_sep_hierarchy =
  QCheck.Test.make ~name:"FO_k-sep monotone in k and implies FO-sep"
    ~count:15 (labeled_spec_arb ~max_nodes:4 ~max_edges:4) (fun ls ->
      let t = training_of_labeled ls in
      let f2 = Pebble_game.fok_separable ~k:2 t in
      let f3 = Pebble_game.fok_separable ~k:3 t in
      ((not f2) || f3) && ((not f3) || Fo_sep.fo_separable t))

let test_fok_classify () =
  let t = Families.two_path_gadget 2 in
  let eval_db = Db.map_elems (fun e -> Elem.tup [ e ]) t.Labeling.db in
  let lab = Pebble_game.fok_classify ~k:2 t eval_db in
  List.iter
    (fun (e, l) ->
      check bool_c "label transferred" true
        (Labeling.label_equal l (Labeling.get (Elem.tup [ e ]) lab)))
    (Labeling.bindings t.Labeling.labeling)

(* --- FO formulas and constructive generation --------------------------- *)

let test_formula_eval_basics () =
  let db =
    Db.add_entity (sym "a")
      (Db.add_entity (sym "b") (Db.of_list [ ("E", [ sym "a"; sym "b" ]) ]))
  in
  let x = Cq.default_free and y = sym "yv" in
  let has_succ = Fo_formula.Exists (y, Fo_formula.Atom (Fact.make_l "E" [ x; y ])) in
  check bool_c "a has successor" true
    (Fo_formula.selects db ~free:x has_succ (sym "a"));
  check bool_c "b has no successor" false
    (Fo_formula.selects db ~free:x has_succ (sym "b"));
  (* negation: FO can say what CQs cannot *)
  let no_succ = Fo_formula.Not has_succ in
  check bool_c "b selected by negation" true
    (Fo_formula.selects db ~free:x no_succ (sym "b"));
  (* forall over active domain *)
  let all_self = Fo_formula.Forall (y, Fo_formula.Eq (y, y)) in
  check bool_c "trivial forall" true
    (Fo_formula.selects db ~free:x all_self (sym "a"))

let test_formula_of_cq () =
  let q2 = Cq_parse.parse "x :- E(x,y), E(y,z)" in
  let phi = Fo_formula.of_cq q2 in
  let db = Families.path 4 in
  let by_cq = List.sort Elem.compare (Cq.eval q2 db) in
  let by_fo =
    List.sort Elem.compare
      (Fo_formula.eval_unary db ~free:(Cq.free q2) phi)
  in
  Alcotest.(check (list string))
    "of_cq preserves semantics"
    (List.map Elem.to_string by_cq)
    (List.map Elem.to_string by_fo)

let prop_formula_quantifier_duality =
  QCheck.Test.make ~name:"¬∀ = ∃¬ on random structures" ~count:30
    (spec_arb ~max_nodes:4 ~max_edges:5)
    (fun s ->
      let db = db_of_spec s in
      QCheck.assume (Db.domain_size db > 0);
      let y = sym "yv" in
      let inner = Fo_formula.Atom (Fact.make_l "U" [ y ]) in
      let lhs = Fo_formula.Not (Fo_formula.Forall (y, inner)) in
      let rhs = Fo_formula.Exists (y, Fo_formula.Not inner) in
      Fo_formula.eval db ~env:Elem.Map.empty lhs
      = Fo_formula.eval db ~env:Elem.Map.empty rhs)

let test_diagram_formula () =
  let t = Families.two_path_gadget 2 in
  let db = t.Labeling.db in
  let s1 = sym "p1_0" in
  let phi = Fo_generate.diagram_formula (db, s1) in
  (* selects s1 in its own database, and nothing non-isomorphic *)
  List.iter
    (fun e ->
      check bool_c
        (Printf.sprintf "diagram at %s" (Elem.to_string e))
        (Struct_iso.isomorphic_pointed (db, [ e ]) (db, [ s1 ]))
        (Fo_formula.selects db ~free:Cq.default_free phi e))
    (Db.entities db);
  (* on an isomorphic copy it still fires *)
  let copy = Db.map_elems (fun e -> Elem.tup [ e ]) db in
  check bool_c "fires on isomorphic copy" true
    (Fo_formula.selects copy ~free:Cq.default_free phi (Elem.tup [ s1 ]));
  (* a structurally different database does not satisfy it *)
  let other = Families.path 3 in
  List.iter
    (fun e ->
      check bool_c "silent on different structure" false
        (Fo_formula.selects other ~free:Cq.default_free phi e))
    (Db.entities other)

let test_fo_generate_separates () =
  let t = Families.two_path_gadget 2 in
  match Fo_generate.generate t with
  | None -> Alcotest.fail "FO-separable training must generate"
  | Some phi ->
      let selected =
        Elem.Set.of_list
          (Fo_formula.eval_unary t.Labeling.db ~free:Cq.default_free phi)
      in
      List.iter
        (fun (e, l) ->
          check bool_c "single feature separates"
            (Labeling.label_equal l Labeling.Pos)
            (Elem.Set.mem e selected))
        (Labeling.bindings t.Labeling.labeling)

let prop_fo_classify_agreement =
  QCheck.Test.make
    ~name:"formula classification = iso classification" ~count:10
    (labeled_spec_arb ~max_nodes:3 ~max_edges:3) (fun ls ->
      let t = training_of_labeled ls in
      QCheck.assume (Fo_sep.fo_separable t);
      (* classify an isomorphic copy both ways *)
      let eval_db = Db.map_elems (fun e -> Elem.tup [ e ]) t.Labeling.db in
      let by_formula = Fo_generate.classify_with_formula t eval_db in
      let by_iso = Fo_sep.fo_classify t eval_db in
      Labeling.equal by_formula by_iso)

let () =
  Alcotest.run "folang"
    [
      ( "iso",
        [
          Alcotest.test_case "basic" `Quick test_iso_basic;
          Alcotest.test_case "pointed" `Quick test_iso_pointed;
          Alcotest.test_case "degree trap" `Quick test_iso_multiset_trap;
          Alcotest.test_case "witness" `Quick test_find_isomorphism_witness;
          Alcotest.test_case "deep-signature refinement" `Quick
            test_refine_colors_deep_signature;
          qcheck prop_iso_reflexive;
          qcheck prop_iso_respects_renaming;
          qcheck prop_iso_implies_hom_equiv;
        ] );
      ( "fo-sep",
        [
          Alcotest.test_case "separable" `Quick test_fo_separable;
          Alcotest.test_case "classify" `Quick test_fo_classify;
          Alcotest.test_case "epfo = cq" `Quick test_epfo_is_cq;
          Alcotest.test_case "iso classes" `Quick test_iso_classes;
          Alcotest.test_case "finer than cq (doc)" `Quick test_fo_finer_than_cq;
          qcheck prop_fo_refines_cq;
        ] );
      ( "pebble",
        [
          Alcotest.test_case "basics" `Quick test_pebble_basics;
          Alcotest.test_case "cycles" `Quick test_pebble_classic_cycles;
          Alcotest.test_case "classify" `Quick test_fok_classify;
          qcheck prop_pebble_monotone_in_k;
          qcheck prop_pebble_iso_implies_equiv;
          qcheck prop_pebble_limit_is_iso;
          qcheck prop_fok_sep_hierarchy;
        ] );
      ( "formulas",
        [
          Alcotest.test_case "eval basics" `Quick test_formula_eval_basics;
          Alcotest.test_case "of_cq" `Quick test_formula_of_cq;
          Alcotest.test_case "diagram formula" `Quick test_diagram_formula;
          Alcotest.test_case "generation separates" `Quick test_fo_generate_separates;
          qcheck prop_formula_quantifier_duality;
          qcheck prop_fo_classify_agreement;
        ] );
      ( "dimension",
        [
          Alcotest.test_case "linear family" `Quick test_linear_family;
          Alcotest.test_case "collapse counterexample" `Quick test_collapse_counterexample;
          Alcotest.test_case "indicator family" `Quick test_indicator_family;
        ] );
    ]
