(* Serving-tier suite: versioned model store, neighborhood-keyed
   eval cache, admission/degradation ladder, and the publish/serve
   crash-safety story.

   - Model_io hardening: checksummed atomic save, a byte-level
     truncation sweep (every strict prefix of a saved model is
     detected as torn, never parsed into a wrong model), corruption
     detection, legacy v1 compatibility, old-contents preservation
     when a save aborts mid-write;
   - Neighborhood keys: connectivity/radius analysis, invariance
     under element renaming, discrimination between different balls;
   - Model_store: publish/list/rollback, monotone versions across
     reopen and rollback, recovery from a dangling CURRENT and from
     corrupt version files, temp-file cleanup;
   - Serve: cold/warm verdict identity (byte-identical), cross-db
     cache hits through canonical neighborhoods, invalidation on
     publish and rollback, cache survival of Runtime_state
     reset_caches in forked (Isolate) workers, the admission ladder
     (overload sheds cold work with structured rejects while pure
     cache-hit batches keep serving), and the eval breaker;
   - publish/serve SIGKILL sweep: a child publishes 30 versions
     (interleaved with served classifications) and SIGKILLs itself at
     the k-th atomic-write stage crossing, for every k until a run
     completes untouched (240 interruption points); after every crash
     the parent proves no version file is torn or mixed-version, the
     recovered current is the old or the new version (never partial),
     and every acknowledged classification recomputes identically
     from the durable model of its version;
   - live daemon: publish/classify/models/rollback round trip over
     the socket, warm-path identity, and sustained >= 4x overload via
     cqload: excess traffic sheds with structured rejects, accepted
     p99 stays bounded, zero errors. *)

open Test_util

let x = sym "x"
let y = sym "y"

let tmp_dir tag =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cqserve-%d-%s" (Unix.getpid ()) tag)
  in
  (match Unix.mkdir d 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let tmp_path suffix =
  let p = Filename.temp_file "cqserve" suffix in
  Sys.remove p;
  p

(* Feature q_R(x) :- R(x): one connected atom, radius 1. *)
let feature_r = Cq.make ~free:x [ Fact.make_l "R" [ x ] ]

(* weight w, threshold 0: entity positive iff R(entity). *)
let model_weight w =
  Model_io.make [ feature_r ]
    { Linsep.weights = [| Rat.of_int w |]; threshold = Rat.of_int 0 }

let m_pos = model_weight 1
let m_neg = model_weight (-1) (* flipped verdicts: same features *)

(* Entities a, b, c; R holds of a and c. *)
let eval_db =
  List.fold_left
    (fun db e -> Db.add_entity e db)
    (Db.of_list
       [ ("R", [ sym "a" ]); ("R", [ sym "c" ]); ("E", [ sym "a"; sym "b" ]) ])
    [ sym "a"; sym "b"; sym "c" ]

let abc = [ sym "a"; sym "b"; sym "c" ]

let serve_cfg =
  {
    Serve.default_config with
    Serve.eval_rate = 1e9;
    eval_burst = 1e9;
    eval_timeout = None;
    eval_fuel = None;
  }

let classify_ok sv ~db_key ~db entities =
  match Serve.classify sv ~db_key ~db entities with
  | Serve.Served s -> s
  | Serve.Shed r -> Alcotest.failf "unexpected shed: %s" (Jobq.reject_to_string r)
  | Serve.Failed f ->
      Alcotest.failf "unexpected failure: %s" (Guard.failure_to_string f)

let signs s =
  String.concat ""
    (List.map
       (fun (_, l) -> match l with Labeling.Pos -> "+" | Labeling.Neg -> "-")
       s.Serve.sv_results)

(* --- Model_io hardening ----------------------------------------------- *)

let test_model_roundtrip () =
  let path = tmp_path ".model" in
  Model_io.save path m_pos;
  let m = Model_io.load path in
  check string_c "checksummed roundtrip" (Model_io.to_string m_pos)
    (Model_io.to_string m);
  (* legacy v1 (headerless) files still load, unverified *)
  let legacy = Model_io.of_string (Model_io.to_string m_pos) in
  check string_c "legacy v1 loads" (Model_io.to_string m_pos)
    (Model_io.to_string legacy);
  Sys.remove path

let test_model_truncation_sweep () =
  let s = Model_io.to_string_checksummed m_pos in
  let n = String.length s in
  for cut = 0 to n - 1 do
    match Model_io.of_string (String.sub s 0 cut) with
    | _ -> Alcotest.failf "prefix of %d/%d bytes parsed as a model" cut n
    | exception Model_io.Parse_error _ -> ()
  done;
  check bool_c "full string parses" true
    (Model_io.of_string s |> fun m ->
     Model_io.to_string m = Model_io.to_string m_pos)

let test_model_corruption_detected () =
  let s = Model_io.to_string_checksummed m_pos in
  (* flip one body byte per position; every flip must be rejected *)
  let body_start = String.index s '\n' + 1 in
  let rejected = ref 0 in
  String.iteri
    (fun i c ->
      if i >= body_start && c <> '\n' then begin
        let b = Bytes.of_string s in
        Bytes.set b i (if c = 'z' then 'q' else 'z');
        match Model_io.of_string (Bytes.to_string b) with
        | _ -> Alcotest.failf "corrupt byte %d parsed as a model" i
        | exception Model_io.Parse_error _ -> incr rejected
      end)
    s;
  check bool_c "some bytes were flipped" true (!rejected > 50)

let test_atomic_save_preserves_old () =
  let path = tmp_path ".model" in
  Model_io.save path m_pos;
  (* abort the next save before its rename: the file must keep the
     old contents and the temp file must be cleaned up *)
  let exception Abort in
  Model_io.set_save_hook
    (Some (function Model_io.Temp_synced -> raise Abort | _ -> ()));
  (match Model_io.save path m_neg with
  | () -> Alcotest.fail "aborted save returned"
  | exception Abort -> ());
  Model_io.set_save_hook None;
  let m = Model_io.load path in
  check string_c "old contents preserved" (Model_io.to_string m_pos)
    (Model_io.to_string m);
  let dir = Filename.dirname path and base = Filename.basename path in
  Array.iter
    (fun f ->
      if
        String.length f > String.length base
        && String.sub f 0 (String.length base) = base
      then Alcotest.failf "leftover temp file %s" f)
    (Sys.readdir dir);
  Sys.remove path

(* --- Neighborhood ------------------------------------------------------ *)

let test_neighborhood_radius () =
  check bool_c "R(x) connected" true (Neighborhood.connected feature_r);
  let disconnected = Cq.make ~free:x [ Fact.make_l "R" [ x ]; Fact.make_l "S" [ y ] ] in
  check bool_c "R(x),S(y) disconnected" false
    (Neighborhood.connected disconnected);
  (match Neighborhood.model_radius [ feature_r ] with
  | Some r -> check int_c "radius of R(x)" 1 r
  | None -> Alcotest.fail "connected model refused");
  (match Neighborhood.model_radius [ feature_r; disconnected ] with
  | None -> ()
  | Some _ -> Alcotest.fail "disconnected model accepted");
  let two_hop =
    Cq.make ~free:x
      [ Fact.make_l "E" [ x; y ]; Fact.make_l "E" [ y; sym "z" ] ]
  in
  match Neighborhood.model_radius [ feature_r; two_hop ] with
  | Some r -> check int_c "radius is the max atom count" 2 r
  | None -> Alcotest.fail "connected two-hop model refused"

let test_neighborhood_key_invariance () =
  let path names =
    match names with
    | [ a; b; c ] ->
        List.fold_left
          (fun db e -> Db.add_entity e db)
          (Db.of_list [ ("E", [ sym a; sym b ]); ("E", [ sym b; sym c ]) ])
          [ sym a ]
    | _ -> assert false
  in
  let d1 = path [ "a"; "b"; "c" ] and d2 = path [ "u"; "v"; "w" ] in
  check string_c "renamed isomorphic balls share a key"
    (Neighborhood.key ~radius:2 d1 (sym "a"))
    (Neighborhood.key ~radius:2 d2 (sym "u"));
  let shorter =
    List.fold_left
      (fun db e -> Db.add_entity e db)
      (Db.of_list [ ("E", [ sym "a"; sym "b" ]) ])
      [ sym "a" ]
  in
  check bool_c "different radius-2 balls get different keys" false
    (Neighborhood.key ~radius:2 d1 (sym "a")
    = Neighborhood.key ~radius:2 shorter (sym "a"))

(* --- Model_store ------------------------------------------------------- *)

let test_store_publish_rollback () =
  let dir = tmp_dir "store" in
  rm_rf dir;
  let st = Model_store.open_ ~dir in
  check bool_c "fresh store empty" true (Model_store.current_version st = None);
  let v1 = Model_store.publish st m_pos in
  let v2 = Model_store.publish st m_neg in
  check int_c "v1" 1 v1;
  check int_c "v2" 2 v2;
  check bool_c "current v2" true (Model_store.current_version st = Some 2);
  (match Model_store.rollback st with
  | Ok v -> check int_c "rollback to v1" 1 v
  | Error e -> Alcotest.fail e);
  (* monotone: the next publish does not reuse 2 *)
  let v3 = Model_store.publish st m_pos in
  check int_c "post-rollback publish is v3" 3 v3;
  (* reopen: same view *)
  let st2 = Model_store.open_ ~dir in
  check bool_c "reopen current" true (Model_store.current_version st2 = Some 3);
  check bool_c "reopen list" true (Model_store.list st2 = [ 1; 2; 3 ]);
  check string_c "reopen load v2" (Model_io.to_string m_neg)
    (Model_io.to_string (Model_store.load st2 2));
  (match Model_store.rollback st2 with
  | Ok v -> check int_c "rollback skips nothing valid" 2 v
  | Error e -> Alcotest.fail e);
  rm_rf dir

let test_store_recovery () =
  let dir = tmp_dir "recover" in
  rm_rf dir;
  let st = Model_store.open_ ~dir in
  ignore (Model_store.publish st m_pos);
  ignore (Model_store.publish st m_neg);
  (* corrupt v2 on disk: open must fall back to v1 even though
     CURRENT still names v2 *)
  let v2_file = Filename.concat dir "v000002.model" in
  let oc = open_out_bin v2_file in
  output_string oc "# cqfeat model v2 crc32 00000000 len 3\nxyz";
  close_out oc;
  (* and drop crash residue that open_ must clean *)
  let tmp = Filename.concat dir "v000003.model.tmp.999.1" in
  let oc = open_out_bin tmp in
  output_string oc "partial";
  close_out oc;
  let st2 = Model_store.open_ ~dir in
  check bool_c "corrupt current falls back" true
    (Model_store.current_version st2 = Some 1);
  check bool_c "corrupt version delisted" true (Model_store.list st2 = [ 1 ]);
  check bool_c "tmp residue removed" false (Sys.file_exists tmp);
  (* the counter still advances past the corrupt file: no reuse *)
  let v = Model_store.publish st2 m_pos in
  check int_c "no version reuse after corruption" 3 v;
  rm_rf dir

(* --- Serve: cache identity, invalidation, forked workers --------------- *)

let test_serve_warm_identity () =
  let dir = tmp_dir "warm" in
  rm_rf dir;
  let sv = Serve.create ~config:serve_cfg (Model_store.open_ ~dir) in
  (match Serve.classify sv ~db_key:"k" ~db:eval_db abc with
  | Serve.Shed (Jobq.Invalid _) -> ()
  | _ -> Alcotest.fail "classify without a model must shed invalid");
  ignore (Serve.publish sv m_pos);
  let cold = classify_ok sv ~db_key:"k" ~db:eval_db abc in
  check int_c "cold path misses" 3 cold.Serve.sv_cold;
  check string_c "verdicts" "+-+" (signs cold);
  let warm = classify_ok sv ~db_key:"k" ~db:eval_db abc in
  check int_c "warm path hits" 3 warm.Serve.sv_hits;
  check bool_c "hit-path verdicts byte-identical to cold-path" true
    (cold.Serve.sv_results = warm.Serve.sv_results);
  (* cross-database hits: a renamed copy shares every neighborhood *)
  let renamed =
    Db.map_elems
      (fun e -> Elem.sym ("r_" ^ Elem.to_string e))
      eval_db
  in
  let warm2 =
    classify_ok sv ~db_key:"other" ~db:renamed
      (List.map (fun e -> Elem.sym ("r_" ^ Elem.to_string e)) abc)
  in
  check int_c "cross-db neighborhoods hit" 3 warm2.Serve.sv_hits;
  check string_c "cross-db verdicts" "+-+" (signs warm2);
  rm_rf dir

let test_serve_version_flip () =
  let dir = tmp_dir "flip" in
  rm_rf dir;
  let sv = Serve.create ~config:serve_cfg (Model_store.open_ ~dir) in
  ignore (Serve.publish sv m_pos);
  let r1 = classify_ok sv ~db_key:"k" ~db:eval_db abc in
  check string_c "v1 verdicts" "+-+" (signs r1);
  ignore (Serve.publish sv m_neg);
  let r2 = classify_ok sv ~db_key:"k" ~db:eval_db abc in
  check int_c "flip invalidates: all cold again" 3 r2.Serve.sv_cold;
  check string_c "v2 verdicts flipped" "-+-" (signs r2);
  (match Serve.rollback sv with
  | Ok v -> check int_c "rollback" 1 v
  | Error e -> Alcotest.fail e);
  let r3 = classify_ok sv ~db_key:"k" ~db:eval_db abc in
  check int_c "rollback invalidates too" 3 r3.Serve.sv_cold;
  check string_c "v1 verdicts again" "+-+" (signs r3);
  rm_rf dir

let test_serve_forked_worker_reset () =
  let dir = tmp_dir "fork" in
  rm_rf dir;
  let sv = Serve.create ~config:serve_cfg (Model_store.open_ ~dir) in
  ignore (Serve.publish sv m_pos);
  let parent = classify_ok sv ~db_key:"k" ~db:eval_db abc in
  (* Isolate workers run Runtime_state.reset_caches on fork; the
     cache must come back empty there and recompute identically. *)
  match
    Isolate.run (fun () ->
        let r = classify_ok sv ~db_key:"k" ~db:eval_db abc in
        (r.Serve.sv_hits, r.Serve.sv_results))
  with
  | Error f -> Alcotest.failf "worker: %s" (Guard.failure_to_string f)
  | Ok (hits, results) ->
      check int_c "worker cache was reset (no stale hits)" 0 hits;
      check bool_c "worker recomputes identical verdicts" true
        (results = parent.Serve.sv_results);
      rm_rf dir

(* --- Serve: admission ladder and breaker -------------------------------- *)

let with_fake_clock f =
  let t = ref 1000.0 in
  Budget.Clock.set_source (Some (fun () -> !t));
  Fun.protect
    ~finally:(fun () -> Budget.Clock.set_source None)
    (fun () -> f t)

let test_serve_overload_ladder () =
  with_fake_clock @@ fun t ->
  let dir = tmp_dir "ladder" in
  rm_rf dir;
  let cfg =
    {
      serve_cfg with
      Serve.eval_rate = 1.0;
      eval_burst = 2.0;
    }
  in
  let sv = Serve.create ~config:cfg (Model_store.open_ ~dir) in
  ignore (Serve.publish sv m_pos);
  (* 3 cold > 2 tokens: shed with a structured retry-after *)
  (match Serve.classify sv ~db_key:"k" ~db:eval_db abc with
  | Serve.Shed (Jobq.Overloaded { retry_after }) ->
      check bool_c "retry_after = deficit/rate" true
        (Float.abs (retry_after -. 1.0) < 1e-9)
  | _ -> Alcotest.fail "3 cold over 2 tokens must shed overload");
  (* 2 cold fit exactly *)
  let r = classify_ok sv ~db_key:"k" ~db:eval_db [ sym "a"; sym "b" ] in
  check string_c "admitted batch" "+-" (signs r);
  (* bucket now empty: fresh cold work sheds ... *)
  (match Serve.classify sv ~db_key:"k" ~db:eval_db [ sym "c" ] with
  | Serve.Shed (Jobq.Overloaded _) -> ()
  | _ -> Alcotest.fail "empty bucket must shed cold work");
  (* ... while pure cache hits keep serving (degraded-but-hot) *)
  let hot = classify_ok sv ~db_key:"k" ~db:eval_db [ sym "a"; sym "b" ] in
  check int_c "hot path served from cache under overload" 2 hot.Serve.sv_hits;
  (* time refills the bucket *)
  t := !t +. 1.0;
  let late = classify_ok sv ~db_key:"k" ~db:eval_db [ sym "c" ] in
  check string_c "refilled token admits the cold entity" "+" (signs late);
  let st = Serve.stats sv in
  check int_c "sheds counted" 2 st.Serve.st_shed_overload;
  rm_rf dir

let test_serve_breaker () =
  with_fake_clock @@ fun t ->
  let dir = tmp_dir "breaker" in
  rm_rf dir;
  let cfg =
    {
      serve_cfg with
      Serve.eval_fuel = Some 1;
      (* every cold eval exhausts *)
      breaker_threshold = 2;
      breaker_cooldown = 50.0;
    }
  in
  let sv = Serve.create ~config:cfg (Model_store.open_ ~dir) in
  ignore (Serve.publish sv m_pos);
  let expect_failed e =
    match Serve.classify sv ~db_key:"k" ~db:eval_db [ e ] with
    | Serve.Failed f ->
        check bool_c "resource failure" true (Guard.is_resource_failure f)
    | _ -> Alcotest.fail "starved eval must fail"
  in
  expect_failed (sym "a");
  expect_failed (sym "b");
  (match Serve.classify sv ~db_key:"k" ~db:eval_db [ sym "c" ] with
  | Serve.Shed (Jobq.Breaker_open { job_class; retry_after }) ->
      check string_c "breaker class" "eval" job_class;
      check bool_c "retry hint" true (retry_after > 0.0)
  | _ -> Alcotest.fail "two resource failures must open the breaker");
  (* past the cool-down a half-open probe is admitted again *)
  t := !t +. 60.0;
  (match Serve.classify sv ~db_key:"k" ~db:eval_db [ sym "c" ] with
  | Serve.Failed _ -> ()
  | _ -> Alcotest.fail "half-open probe should run (and fail again)");
  let st = Serve.stats sv in
  check int_c "breaker sheds counted" 1 st.Serve.st_shed_breaker;
  check int_c "eval failures counted" 3 st.Serve.st_eval_failures;
  rm_rf dir

(* --- publish/serve SIGKILL sweep ---------------------------------------- *)

let install_save_kill ~at =
  let crossings = ref 0 in
  Model_io.set_save_hook
    (Some
       (fun _stage ->
         incr crossings;
         if !crossings = at then Unix.kill (Unix.getpid ()) Sys.sigkill))

let sweep_publishes = 30

(* Version i is published with weight i: file contents identify the
   version they were written for, so a mixed or torn file cannot
   masquerade as any valid version. *)
let sweep_model i = model_weight i

let publish_chaos_child ~dir ~kill_at ~report_fd =
  install_save_kill ~at:kill_at;
  let say line =
    let b = Bytes.of_string (line ^ "\n") in
    ignore (Unix.write report_fd b 0 (Bytes.length b))
  in
  let store = Model_store.open_ ~dir in
  let sv = Serve.create ~config:serve_cfg store in
  for i = 1 to sweep_publishes do
    let v = Serve.publish sv (sweep_model i) in
    say (Printf.sprintf "P %d %d" v i);
    match Serve.classify sv ~db_key:"sweep" ~db:eval_db [ sym "a"; sym "b" ] with
    | Serve.Served s ->
        say (Printf.sprintf "C %d %s" s.Serve.sv_version (signs s))
    | Serve.Shed _ | Serve.Failed _ -> ()
  done;
  say "CLEAN"

let parse_sweep_reports output =
  List.fold_left
    (fun (acks, classifies, clean) line ->
      match String.split_on_char ' ' line with
      | [ "CLEAN" ] -> (acks, classifies, true)
      | [ "P"; v; i ] ->
          ((int_of_string v, int_of_string i) :: acks, classifies, clean)
      | [ "C"; v; s ] -> (acks, (int_of_string v, s) :: classifies, clean)
      | _ -> (acks, classifies, clean))
    ([], [], false)
    (String.split_on_char '\n' output)

let slurp_fd fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let publish_chaos_iteration ~kill_at =
  let dir = tmp_dir (Printf.sprintf "sweep-%d" kill_at) in
  rm_rf dir;
  let r, w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      (match publish_chaos_child ~dir ~kill_at ~report_fd:w with
      | () -> Unix._exit 0
      | exception _ -> Unix._exit 9)
  | pid ->
      Unix.close w;
      let output = slurp_fd r in
      Unix.close r;
      let _, status = Unix.waitpid [] pid in
      (match status with
      | Unix.WEXITED 0 | Unix.WSIGNALED _ -> ()
      | Unix.WEXITED c ->
          Alcotest.failf "sweep child (kill_at %d) exited %d" kill_at c
      | Unix.WSTOPPED _ -> Alcotest.failf "sweep child stopped");
      let acks, classifies, clean = parse_sweep_reports output in
      (* acked publish i got version i: fresh store, monotone *)
      List.iter
        (fun (v, i) ->
          if v <> i then
            Alcotest.failf "kill_at %d: publish %d acked as v%d" kill_at i v)
        acks;
      let last_acked = List.fold_left (fun m (v, _) -> max m v) 0 acks in
      (* 1. no observer ever sees a torn or mixed-version model: every
         version file on disk — including one from the in-flight
         publish — must load (checksum intact) and carry exactly the
         contents published under its number *)
      Array.iter
        (fun name ->
          if Filename.check_suffix name ".model" then begin
            let v = int_of_string (String.sub name 1 6) in
            match Model_io.load (Filename.concat dir name) with
            | m ->
                if Model_io.to_string m <> Model_io.to_string (sweep_model v)
                then
                  Alcotest.failf "kill_at %d: %s holds mixed-version contents"
                    kill_at name
            | exception Model_io.Parse_error why ->
                Alcotest.failf "kill_at %d: torn model %s: %s" kill_at name why
          end)
        (Sys.readdir dir);
      (* 2. recovery lands on the old or the new version, never partial *)
      let store = Model_store.open_ ~dir in
      (match Model_store.current_version store with
      | None ->
          if last_acked > 0 then
            Alcotest.failf "kill_at %d: acked v%d lost entirely" kill_at
              last_acked
      | Some v ->
          if v < last_acked || v > last_acked + 1 then
            Alcotest.failf
              "kill_at %d: recovered v%d not in {acked %d, in-flight %d}"
              kill_at v last_acked (last_acked + 1));
      (* 3. acked classifications recompute identically from the
         durable model of their version *)
      let sv = Serve.create ~config:serve_cfg store in
      List.iter
        (fun (v, s) ->
          let m =
            try Model_store.load store v
            with Invalid_argument _ ->
              Alcotest.failf
                "kill_at %d: classification acked at v%d but v%d is gone"
                kill_at v v
          in
          let lab = Model_io.apply m eval_db in
          let expect =
            String.concat ""
              (List.map
                 (fun e ->
                   match Labeling.get e lab with
                   | Labeling.Pos -> "+"
                   | Labeling.Neg -> "-")
                 [ sym "a"; sym "b" ])
          in
          if s <> expect then
            Alcotest.failf "kill_at %d: acked verdicts %S at v%d, now %S"
              kill_at s v expect)
        classifies;
      ignore sv;
      rm_rf dir;
      clean

let test_publish_crash_sweep () =
  (* 30 publishes x 8 atomic-write stage crossings (4 for the model
     file, 4 for CURRENT) = 240 interruption points, then one clean
     run proving the sweep covered the schedule. *)
  let rec sweep kill_at =
    if publish_chaos_iteration ~kill_at then kill_at - 1
    else if kill_at > 1000 then
      Alcotest.fail "publish sweep did not terminate"
    else sweep (kill_at + 1)
  in
  let covered = sweep 1 in
  check bool_c
    (Printf.sprintf "publish sweep covered %d points (>= 200)" covered)
    true (covered >= 200)

(* --- live daemon: serving protocol and overload ------------------------- *)

let daemon_exe = "../bin/cqserved.exe"
let cqload_exe = "../bin/cqload.exe"

let sock_path tag =
  Printf.sprintf "/tmp/cqserve-%d-%s.sock" (Unix.getpid ()) tag

let daemon_request sock line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX sock) with
      | exception Unix.Unix_error _ -> None
      | () ->
          let payload = Bytes.of_string (line ^ "\n") in
          let rec send off =
            if off < Bytes.length payload then
              match Unix.write fd payload off (Bytes.length payload - off) with
              | n -> send (off + n)
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> send off
          in
          (match send 0 with
          | () -> ()
          | exception Unix.Unix_error _ -> ());
          let buf = Buffer.create 128 in
          let chunk = Bytes.create 256 in
          let deadline = Unix.gettimeofday () +. 5.0 in
          let rec recv () =
            if Unix.gettimeofday () > deadline then None
            else
              match Unix.select [ fd ] [] [] 0.25 with
              | [], _, _ -> recv ()
              | _ -> begin
                  match Unix.read fd chunk 0 (Bytes.length chunk) with
                  | 0 -> Some (Buffer.contents buf)
                  | n -> begin
                      match Bytes.index_opt (Bytes.sub chunk 0 n) '\n' with
                      | Some i ->
                          Buffer.add_subbytes buf chunk 0 i;
                          Some (Buffer.contents buf)
                      | None ->
                          Buffer.add_subbytes buf chunk 0 n;
                          recv ()
                    end
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
                  | exception Unix.Unix_error _ -> None
                end
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
          in
          recv ())

let require = function
  | Some r -> r
  | None -> Alcotest.fail "daemon unreachable"

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let start_serving_daemon ~sock ~wal ~models ~extra =
  let argv =
    Array.of_list
      ([ "cqserved"; "-s"; sock; "-w"; wal; "--models"; models ] @ extra)
  in
  let pid =
    Unix.create_process daemon_exe argv Unix.stdin Unix.stdout Unix.stderr
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec wait_up () =
    match daemon_request sock "PING" with
    | Some "OK pong" -> ()
    | _ when Unix.gettimeofday () > deadline ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        Alcotest.fail "daemon did not come up"
    | _ ->
        Unix.sleepf 0.05;
        wait_up ()
  in
  wait_up ();
  pid

let kill_daemon pid sock =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
  try Sys.remove sock with Sys_error _ -> ()

let find_sub s needle =
  let ls = String.length s and ln = String.length needle in
  let rec go i =
    if i + ln > ls then None
    else if String.sub s i ln = needle then Some i
    else go (i + 1)
  in
  go 0

let contains s needle = find_sub s needle <> None

let int_after s needle =
  match find_sub s needle with
  | None -> Alcotest.failf "no %S in %S" needle s
  | Some i ->
      let start = i + String.length needle in
      let stop = ref start in
      while
        !stop < String.length s
        && (match s.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
      do
        incr stop
      done;
      int_of_string (String.sub s start (!stop - start))

(* "key": N with a flat scanner — cqload --json emits one flat object *)
let json_int json key = int_after json (Printf.sprintf "\"%s\": " key)

let test_daemon_serving_roundtrip () =
  let sock = sock_path "serve" in
  let wal = tmp_path ".wal" in
  let models = tmp_dir "daemon-models" in
  rm_rf models;
  let db_file = tmp_path ".db" in
  write_file db_file "R(a)\nR(c)\nE(a,b)\n?a\n?b\n?c\n";
  let model_file = tmp_path ".model" in
  Model_io.save model_file m_pos;
  let pid = start_serving_daemon ~sock ~wal ~models ~extra:[] in
  Fun.protect
    ~finally:(fun () ->
      kill_daemon pid sock;
      rm_rf models;
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ wal; db_file; model_file ])
    (fun () ->
      check string_c "no model yet"
        "REJECT invalid invalid job: no model published"
        (require (daemon_request sock ("CLASSIFY db=" ^ db_file)));
      check string_c "publish" "OK v1"
        (require (daemon_request sock ("PUBLISH model=" ^ model_file)));
      let cold = require (daemon_request sock ("CLASSIFY db=" ^ db_file)) in
      let warm = require (daemon_request sock ("CLASSIFY db=" ^ db_file)) in
      let verdicts reply =
        List.filter
          (fun t -> String.length t > 0 && (t.[0] = '+' || t.[0] = '-'))
          (String.split_on_char ' ' reply)
      in
      check bool_c "cold reply shape" true
        (String.length cold > 3 && String.sub cold 0 5 = "OK v1");
      check bool_c "warm verdicts identical to cold" true
        (verdicts cold = verdicts warm);
      check bool_c "warm reply is all hits" true
        (contains warm "hits=3 cold=0");
      check string_c "models" "OK current=v1 versions=v1"
        (require (daemon_request sock "MODELS"));
      check string_c "publish again" "OK v2"
        (require (daemon_request sock ("PUBLISH model=" ^ model_file)));
      check string_c "rollback" "OK v1"
        (require (daemon_request sock "ROLLBACK"));
      check string_c "models after rollback" "OK current=v1 versions=v1,v2"
        (require (daemon_request sock "MODELS"));
      (* restart: published models survive (store is on disk) *)
      kill_daemon pid sock;
      let pid2 = start_serving_daemon ~sock ~wal ~models ~extra:[] in
      Fun.protect
        ~finally:(fun () -> kill_daemon pid2 sock)
        (fun () ->
          check string_c "models survive restart"
            "OK current=v1 versions=v1,v2"
            (require (daemon_request sock "MODELS"))))

let test_daemon_overload_sheds () =
  let sock = sock_path "load" in
  let wal = tmp_path ".wal" in
  let models = tmp_dir "load-models" in
  rm_rf models;
  let db_file = tmp_path ".db" in
  write_file db_file "R(a)\nR(c)\nE(a,b)\n?a\n?b\n?c\n";
  let model_file = tmp_path ".model" in
  Model_io.save model_file m_pos;
  (* cache-size 1 keeps most lookups cold, so the token bucket (20/s)
     is the binding constraint while cqload offers orders of
     magnitude more — sustained >= 4x overload by construction. *)
  let pid =
    start_serving_daemon ~sock ~wal ~models
      ~extra:
        [ "--eval-rate"; "20"; "--eval-burst"; "20"; "--cache-size"; "1" ]
  in
  Fun.protect
    ~finally:(fun () ->
      kill_daemon pid sock;
      rm_rf models;
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ wal; db_file; model_file ])
    (fun () ->
      check string_c "publish" "OK v1"
        (require (daemon_request sock ("PUBLISH model=" ^ model_file)));
      let out_r, out_w = Unix.pipe () in
      let pid_load =
        Unix.create_process cqload_exe
          [|
            "cqload"; "-s"; sock; "--db"; db_file; "--workers"; "4";
            "--duration"; "1s"; "--json";
          |]
          Unix.stdin out_w Unix.stderr
      in
      Unix.close out_w;
      let json = slurp_fd out_r in
      Unix.close out_r;
      (match Unix.waitpid [] pid_load with
      | _, Unix.WEXITED 0 -> ()
      | _, st ->
          Alcotest.failf "cqload did not succeed: %s"
            (match st with
            | Unix.WEXITED c -> Printf.sprintf "exit %d" c
            | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
            | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s));
      let accepted = json_int json "accepted" in
      let rejected = json_int json "rejected" in
      let errors = json_int json "errors" in
      let p99 = json_int json "p99_ns" in
      check int_c "no protocol errors under overload" 0 errors;
      check bool_c "some requests were served" true (accepted > 0);
      check bool_c
        (Printf.sprintf "excess traffic shed (%d rejected vs %d accepted)"
           rejected accepted)
        true
        (rejected > 3 * accepted);
      check bool_c
        (Printf.sprintf "accepted p99 bounded (%.1fms)"
           (float_of_int p99 /. 1e6))
        true
        (p99 < 2_000_000_000);
      (* the rejects were structured overload rejects, visible in STATS *)
      let stats = require (daemon_request sock "STATS") in
      check bool_c "daemon counted overload sheds" true
        (int_after stats "eval_shed_overload=" > 0))

(* --- suite ------------------------------------------------------------- *)

let () =
  Alcotest.run "serve"
    [
      ( "model_io",
        [
          Alcotest.test_case "checksummed roundtrip + legacy" `Quick
            test_model_roundtrip;
          Alcotest.test_case "truncation sweep" `Quick
            test_model_truncation_sweep;
          Alcotest.test_case "corruption detected" `Quick
            test_model_corruption_detected;
          Alcotest.test_case "aborted save preserves old contents" `Quick
            test_atomic_save_preserves_old;
        ] );
      ( "neighborhood",
        [
          Alcotest.test_case "connectivity and radius" `Quick
            test_neighborhood_radius;
          Alcotest.test_case "key invariance" `Quick
            test_neighborhood_key_invariance;
        ] );
      ( "model_store",
        [
          Alcotest.test_case "publish/rollback/monotone" `Quick
            test_store_publish_rollback;
          Alcotest.test_case "recovery from corruption" `Quick
            test_store_recovery;
        ] );
      ( "serve",
        [
          Alcotest.test_case "warm identity + cross-db hits" `Quick
            test_serve_warm_identity;
          Alcotest.test_case "version flip invalidates" `Quick
            test_serve_version_flip;
          Alcotest.test_case "forked worker reset" `Quick
            test_serve_forked_worker_reset;
          Alcotest.test_case "overload ladder" `Quick
            test_serve_overload_ladder;
          Alcotest.test_case "eval breaker" `Quick test_serve_breaker;
        ] );
      ( "crash",
        [
          Alcotest.test_case "publish/serve SIGKILL sweep" `Quick
            test_publish_crash_sweep;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "serving protocol roundtrip" `Quick
            test_daemon_serving_roundtrip;
          Alcotest.test_case "overload sheds, accepted p99 bounded" `Quick
            test_daemon_overload_sheds;
        ] );
    ]
