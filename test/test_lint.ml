(* The linter linted: every rule must fire exactly where the fixtures
   say, reasoned suppressions must silence exactly their line (and the
   next), and reasonless directives must be rejected as R0 findings
   rather than silently eating real ones. *)

let bool_c = Alcotest.bool
let check = Alcotest.check

let load name =
  match Lint_source.load (Filename.concat "lint_fixtures" name) with
  | Ok src -> src
  | Error msg -> Alcotest.failf "fixture %s: %s" name msg

let lint ?(solver = true) name =
  Lint_driver.lint_source ~rules:Lint_finding.all_rules ~solver (load name)

let rule_keys findings =
  List.map
    (fun (f : Lint_finding.t) -> (Lint_finding.rule_to_string f.rule, f.key))
    findings

let keys_c = Alcotest.(list (pair string string))

let test_r1_fires () =
  check keys_c "unticked loop and recursion"
    [ ("R1", "while@search"); ("R1", "rec:explore") ]
    (rule_keys (lint "bad_r1.ml"))

let test_r1_suppressed () =
  check keys_c "reasoned directives silence R1" []
    (rule_keys (lint "bad_r1_suppressed.ml"))

let test_r1_ticking_clean () =
  check keys_c "direct tick and one-level closure both count" []
    (rule_keys (lint "bad_r1_ticking.ml"))

let test_r1_off_outside_solver_dirs () =
  check keys_c "R1 is scoped to solver directories" []
    (rule_keys (lint ~solver:false "bad_r1.ml"))

let test_r2_fires () =
  check keys_c "unconvertible raise and unguarded _b entry"
    [ ("R2", "raise:Sys_error"); ("R2", "entry:solve_b") ]
    (rule_keys (lint "bad_r2.ml"))

let test_r2_suppressed () =
  check keys_c "reasoned directives silence R2" []
    (rule_keys (lint "bad_r2_suppressed.ml"))

let test_r3_fires () =
  check keys_c "hash, polymorphic compare, domain Hashtbl key"
    [ ("R3", "hash"); ("R3", "polyeq:Rat"); ("R5", "state:cache");
      ("R3", "hashtbl-key:Rat") ]
    (rule_keys (lint "bad_r3.ml"))

let test_r3_suppressed () =
  check keys_c "reasoned directives silence R3" []
    (rule_keys (lint "bad_r3_suppressed.ml"))

let test_r4_fires () =
  check keys_c "entry point without a _b counterpart"
    [ ("R4", "val:solve") ]
    (rule_keys (lint "bad_r4.mli"))

let test_r4_suppressed () =
  check keys_c "reasoned directives silence R4" []
    (rule_keys (lint "bad_r4_suppressed.mli"))

let test_r5_fires () =
  check keys_c "unregistered top-level mutable state (locals exempt)"
    [ ("R5", "state:memo"); ("R5", "state:hits") ]
    (rule_keys (lint "bad_r5.ml"))

let test_r5_suppressed () =
  check keys_c "reasoned directives silence R5" []
    (rule_keys (lint "bad_r5_suppressed.ml"))

let test_r5_registered_clean () =
  check keys_c "Runtime_state.register mentioning the bindings counts" []
    (rule_keys (lint "bad_r5_registered.ml"))

let test_r5_off_outside_solver_dirs () =
  check keys_c "R5 is scoped to solver directories" []
    (rule_keys (lint ~solver:false "bad_r5.ml"))

let test_reasonless_rejected () =
  let keys = rule_keys (lint "reasonless.ml") in
  check bool_c "R0 reported for the reasonless directive" true
    (List.mem ("R0", "directive#4") keys);
  check bool_c "the R1 finding is NOT suppressed" true
    (List.mem ("R1", "rec:explore") keys)

(* Baseline plumbing: mandatory reasons, and (rule, file, key) matching
   that survives unrelated line drift. *)
let test_baseline_reasons () =
  (match Lint_driver.parse_baseline "R1 lib/cq/x.ml rec:go \xe2\x80\x94 ok" with
  | Ok [ e ] ->
      check Alcotest.string "key" "rec:go" e.Lint_driver.b_key;
      check Alcotest.string "reason" "ok" e.Lint_driver.b_reason
  | Ok _ -> Alcotest.fail "expected one entry"
  | Error msg -> Alcotest.failf "reasoned line must parse: %s" msg);
  (match Lint_driver.parse_baseline "R1 lib/cq/x.ml rec:go" with
  | Ok _ -> Alcotest.fail "reasonless baseline line must be rejected"
  | Error _ -> ());
  match Lint_driver.parse_baseline "# comment\n\nR3 a.ml hash -- legacy\n" with
  | Ok [ _ ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "comments/blank lines must be skipped"

(* The dogfooding invariant the @lint alias enforces: the library tree
   itself is clean. Run from the repo checkout when available (the test
   binary may run in a sandbox that only has the fixtures). *)
let test_lib_clean () =
  let root = "../../.." in
  if Sys.file_exists (Filename.concat root "lib") then
    match Lint_driver.run (Lint_driver.default_config ~root) with
    | Error msg -> Alcotest.failf "driver error: %s" msg
    | Ok report ->
        check Alcotest.(list string) "no findings in lib/" []
          (List.map Lint_finding.to_text report.Lint_driver.findings)

(* A baseline entry whose file was deleted is a different defect from a
   fixed finding in a live file: it must land in
   [missing_file_baseline] (deletable), never in [stale_baseline]
   (fixable). Regression for the old behavior that lumped both under
   "stale". *)
let test_missing_file_baseline () =
  let root = "../../.." in
  if Sys.file_exists (Filename.concat root "lib") then begin
    let tmp = Filename.temp_file "cqlint_baseline" ".txt" in
    let oc = open_out tmp in
    output_string oc
      "R1 lib/core/deleted_file.ml while@gone \xe2\x80\x94 file was removed\n\
       R1 lib/core/dim_sep.ml rec:never_existed \xe2\x80\x94 fixed finding\n";
    close_out oc;
    let config =
      { (Lint_driver.default_config ~root) with baseline = Some tmp }
    in
    let result = Lint_driver.run config in
    Sys.remove tmp;
    match result with
    | Error msg -> Alcotest.failf "driver error: %s" msg
    | Ok report ->
        check
          Alcotest.(list string)
          "deleted-file entry is reported as missing-file"
          [ "R1 lib/core/deleted_file.ml while@gone" ]
          report.Lint_driver.missing_file_baseline;
        check
          Alcotest.(list string)
          "live-file entry stays plain stale"
          [ "R1 lib/core/dim_sep.ml rec:never_existed" ]
          report.Lint_driver.stale_baseline
  end

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 fires" `Quick test_r1_fires;
          Alcotest.test_case "R1 suppressed" `Quick test_r1_suppressed;
          Alcotest.test_case "R1 ticking clean" `Quick test_r1_ticking_clean;
          Alcotest.test_case "R1 solver-scoped" `Quick
            test_r1_off_outside_solver_dirs;
          Alcotest.test_case "R2 fires" `Quick test_r2_fires;
          Alcotest.test_case "R2 suppressed" `Quick test_r2_suppressed;
          Alcotest.test_case "R3 fires" `Quick test_r3_fires;
          Alcotest.test_case "R3 suppressed" `Quick test_r3_suppressed;
          Alcotest.test_case "R4 fires" `Quick test_r4_fires;
          Alcotest.test_case "R4 suppressed" `Quick test_r4_suppressed;
          Alcotest.test_case "R5 fires" `Quick test_r5_fires;
          Alcotest.test_case "R5 suppressed" `Quick test_r5_suppressed;
          Alcotest.test_case "R5 registered clean" `Quick
            test_r5_registered_clean;
          Alcotest.test_case "R5 solver-scoped" `Quick
            test_r5_off_outside_solver_dirs;
          Alcotest.test_case "reasonless rejected" `Quick
            test_reasonless_rejected;
        ] );
      ( "driver",
        [
          Alcotest.test_case "baseline reasons" `Quick test_baseline_reasons;
          Alcotest.test_case "missing-file baseline entries" `Quick
            test_missing_file_baseline;
          Alcotest.test_case "lib/ is clean" `Quick test_lib_clean;
        ] );
    ]
