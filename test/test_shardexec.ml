(* Chaos suite for the Shardexec engine and its solver clients.

   The contract under test is the one stated on [Shardexec.run]: no
   matter which workers die, which shards get quarantined and
   bisected, or in which order shards complete, the merged result is
   byte-identical to the sequential computation — and no exit path
   leaks a child process. The sweeps are seeded, so a red run here
   reproduces deterministically.

   Suites:
   - partition/merge unit properties, including the 1000-order
     merge-determinism property (completion order must not matter);
   - a 260-seed SIGKILL sweep: workers are shot mid-shard from the
     parent's [on_spawn] hook and the verdict must not move;
   - quarantine: a compute that kills its worker whenever its range
     covers a poisonous unit must end with that exact unit isolated
     at width one and reported as [Solver_error];
   - speculation: a straggler wedged on a flag file must get a
     speculative duplicate, the resolution must be journaled, and
     the loser must be reaped;
   - fork hygiene: corrupted parent caches must not leak into shard
     verdicts (children reset [`Cache] registrations on startup)
     while [`Config] registrations survive the fork;
   - the sharded solver clients (Atoms_sep, Dim_sep, the Cq_sep
     ladder) must agree with their sequential counterparts, also
     under chaos-injected in-worker budget failures. *)

open Test_util

(* --- helpers --------------------------------------------------------- *)

let bytes_of v = Marshal.to_string v []

(* Deterministic per-test PRNG (xorshift), independent of Random's
   global state. *)
let xorshift seed =
  let s = ref (if seed = 0 then 0x9E3779B9 else seed land max_int) in
  fun () ->
    let x = !s in
    let x = x lxor (x lsl 13) land max_int in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) land max_int in
    s := x;
    x

(* After [run] returns there must be no child process left in any
   state: not running (waitpid would find it), not zombie (waitpid
   would reap it). *)
let no_zombies () =
  match Unix.waitpid [ Unix.WNOHANG ] (-1) with
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  | 0, _ -> Alcotest.fail "a child process outlived the run"
  | pid, _ -> Alcotest.failf "unreaped zombie child %d" pid

(* The work function of the chaos sweeps: a deterministic per-unit
   value with a few hundred microseconds of mixing, so SIGKILLs sent
   right after the fork reliably land mid-shard. Splits
   homomorphically under list append by construction. *)
let unit_value i =
  let h = ref (i + 0x9E37) in
  for _ = 1 to 20_000 do
    h := ((!h * 48271) + i) land 0x3FFFFFFF
  done;
  !h

let slice { Shardexec.lo; hi } =
  List.init (hi - lo) (fun k -> unit_value (lo + k))

let failure_fail what f =
  Alcotest.failf "%s: %s" what (Guard.failure_to_string f)

(* --- partition ------------------------------------------------------- *)

let test_partition () =
  let check_tiling ~n ~shards =
    let ranges = Shardexec.partition ~n ~shards in
    let widths = List.map (fun { Shardexec.lo; hi } -> hi - lo) ranges in
    check int_c
      (Printf.sprintf "n=%d shards=%d: count" n shards)
      (min shards n) (List.length ranges);
    check int_c
      (Printf.sprintf "n=%d shards=%d: total width" n shards)
      n
      (List.fold_left ( + ) 0 widths);
    List.iter (fun w -> if w < 1 then Alcotest.fail "empty shard") widths;
    (match (List.sort compare widths, List.rev (List.sort compare widths)) with
    | smallest :: _, largest :: _ ->
        if largest - smallest > 1 then
          Alcotest.failf "unbalanced partition: widths differ by %d"
            (largest - smallest)
    | _ -> ());
    ignore
      (List.fold_left
         (fun at { Shardexec.lo; hi } ->
           check int_c "contiguous" at lo;
           hi)
         0 ranges)
  in
  List.iter
    (fun (n, shards) -> check_tiling ~n ~shards)
    [ (1, 1); (7, 3); (8, 4); (24, 6); (5, 9); (100, 7); (0, 3) ];
  (match Shardexec.partition ~n:(-1) ~shards:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative n must be rejected");
  match Shardexec.partition ~n:4 ~shards:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shards 0 must be rejected"

(* --- merge determinism (satellite: completion order must not matter) - *)

let test_merge_determinism () =
  let n = 23 in
  (* Mimic a post-quarantine result set: the initial partition with
     some shards bisected into uneven halves. *)
  let parts =
    List.concat_map
      (fun ({ Shardexec.lo; hi } as r) ->
        if hi - lo >= 3 then
          [ { Shardexec.lo; hi = lo + 1 }; { Shardexec.lo = lo + 1; hi } ]
        else [ r ])
      (Shardexec.partition ~n ~shards:7)
  in
  let results = List.map (fun r -> (r, slice r)) parts in
  let reference = Shardexec.merge_results ~merge:( @ ) results in
  check bool_c "range-ordered merge equals the sequential slice" true
    (reference = slice { Shardexec.lo = 0; hi = n });
  let reference = bytes_of reference in
  for seed = 1 to 1000 do
    let draw = xorshift seed in
    let shuffled =
      List.map (fun x -> (draw (), x)) results
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.map snd
    in
    let merged = Shardexec.merge_results ~merge:( @ ) shuffled in
    if bytes_of merged <> reference then
      Alcotest.failf "completion order (seed %d) changed the merged result"
        seed
  done

let test_merge_rejects_bad_tilings () =
  let r lo hi = ({ Shardexec.lo; hi }, [ lo; hi ]) in
  let rejects what results =
    match Shardexec.merge_results ~merge:( @ ) results with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s must be rejected" what
  in
  rejects "empty result set" [];
  rejects "gap" [ r 0 2; r 3 5 ];
  rejects "overlap" [ r 0 3; r 2 5 ];
  rejects "duplicate shard" [ r 0 2; r 0 2; r 2 4 ]

(* --- sequential fallback --------------------------------------------- *)

let test_sequential_fallback () =
  let expected = slice { Shardexec.lo = 0; hi = 6 } in
  List.iter
    (fun plan ->
      match Shardexec.run ~plan ~n:6 ~compute:slice ~merge:( @ ) () with
      | Ok v -> check bool_c "fallback equals sequential" true (v = expected)
      | Error f -> failure_fail "sequential fallback" f)
    [
      Shardexec.plan ~shards:1 ();
      Shardexec.plan ~shards:4 ~workers:1 ();
    ];
  (* n <= 1 falls back too, whatever the plan. *)
  match
    Shardexec.run
      ~plan:(Shardexec.plan ~shards:4 ())
      ~n:1 ~compute:slice ~merge:( @ ) ()
  with
  | Ok v ->
      check bool_c "n=1 fallback" true (v = slice { Shardexec.lo = 0; hi = 1 })
  | Error f -> failure_fail "n=1 fallback" f

(* --- clean sharded run ----------------------------------------------- *)

let test_clean_run () =
  let n = 24 in
  let expected = bytes_of (slice { Shardexec.lo = 0; hi = n }) in
  match
    Shardexec.run
      ~plan:(Shardexec.plan ~shards:6 ~workers:3 ())
      ~n ~compute:slice ~merge:( @ ) ()
  with
  | Error f -> failure_fail "clean sharded run" f
  | Ok v ->
      check string_c "byte-identical to sequential" expected (bytes_of v);
      let events = Shardexec.journal () in
      let completed =
        List.length
          (List.filter
             (function Shardexec.Completed _ -> true | _ -> false)
             events)
      in
      check int_c "every shard journaled a completion" 6 completed;
      no_zombies ()

(* --- the 260-seed SIGKILL sweep -------------------------------------- *)

(* Per seed: run the sharded computation while shooting up to three
   workers from the [on_spawn] hook, at seed-determined spawn points.
   Three kills against width-4 shards cannot reach poison isolation
   (that takes six deaths on one shard lineage), so every run must
   recover — requeue or bisect — and the verdict must stay
   byte-identical to the sequential slice. *)
let test_kill_sweep () =
  let n = 24 and shards = 6 in
  let expected = bytes_of (slice { Shardexec.lo = 0; hi = n }) in
  let total_sent = ref 0 in
  for seed = 1 to 260 do
    let draw = xorshift (seed * 7919) in
    let kills_left = ref (1 + (draw () mod 3)) in
    let on_spawn ~pid ~shard:_ =
      if !kills_left > 0 && draw () mod 3 = 0 then begin
        decr kills_left;
        incr total_sent;
        try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()
      end
    in
    (match
       Shardexec.run
         ~plan:(Shardexec.plan ~shards ~workers:3 ())
         ~on_spawn ~n ~compute:slice ~merge:( @ ) ()
     with
    | Error f ->
        Alcotest.failf "seed %d: run failed under kills: %s" seed
          (Guard.failure_to_string f)
    | Ok v ->
        if bytes_of v <> expected then
          Alcotest.failf "seed %d: verdict not byte-identical after kills"
            seed);
    no_zombies ();
    match Runtime_state.validate_all () with
    | [] -> ()
    | bad ->
        Alcotest.failf "seed %d: invalid runtime state: %s" seed
          (String.concat ", " bad)
  done;
  (* A kill can race a fast worker's clean exit, so observed deaths
     are bounded by signals sent — but across 260 seeds most must
     land, or the sweep is not exercising recovery at all. *)
  let observed = (Shardexec.stats ()).Shardexec.kills in
  if observed > !total_sent then
    Alcotest.failf "more deaths observed (%d) than signals sent (%d)" observed
      !total_sent;
  if observed < !total_sent / 2 then
    Alcotest.failf "only %d of %d kills landed: sweep too weak" observed
      !total_sent

(* --- quarantine and poison isolation --------------------------------- *)

let test_poison_isolated () =
  let poison = 5 in
  let compute ({ Shardexec.lo; hi } as r) =
    if lo <= poison && poison < hi then Unix.kill (Unix.getpid ()) Sys.sigkill;
    slice r
  in
  (match
     Shardexec.run
       ~plan:(Shardexec.plan ~shards:2 ~workers:2 ())
       ~n:8 ~compute ~merge:( @ ) ()
   with
  | Ok _ -> Alcotest.fail "a poisoned run cannot succeed"
  | Error (Guard.Solver_error msg) ->
      let wanted = Printf.sprintf "poison unit %d" poison in
      let rec contains i =
        i + String.length wanted <= String.length msg
        && (String.sub msg i (String.length wanted) = wanted
           || contains (i + 1))
      in
      if not (contains 0) then
        Alcotest.failf "poison report does not name unit %d: %S" poison msg
  | Error f -> failure_fail "expected Solver_error" f);
  let events = Shardexec.journal () in
  let bisections =
    List.length
      (List.filter (function Shardexec.Bisected _ -> true | _ -> false) events)
  in
  if bisections < 2 then
    Alcotest.failf "expected >= 2 bisections on the way to width 1, saw %d"
      bisections;
  (match
     List.find_opt (function Shardexec.Poison _ -> true | _ -> false) events
   with
  | Some (Shardexec.Poison (u, _)) -> check int_c "poisoned unit" poison u
  | _ -> Alcotest.fail "no Poison event journaled");
  no_zombies ()

(* --- speculation ----------------------------------------------------- *)

let test_speculation () =
  let flag = Filename.temp_file "shardexec_spec" ".flag" in
  Sys.remove flag;
  let straggler = 7 in
  (* The straggler's worker wedges until the flag file appears; the
     parent creates it only once the speculative duplicate has been
     forked, so both copies then race to finish. *)
  let compute ({ Shardexec.lo; _ } as r) =
    if lo = straggler then begin
      let waited = ref 0.0 in
      while (not (Sys.file_exists flag)) && !waited < 20.0 do
        Unix.sleepf 0.01;
        waited := !waited +. 0.01
      done
    end;
    slice r
  in
  let spawns = Hashtbl.create 8 in
  let on_spawn ~pid:_ ~shard =
    let k = shard.Shardexec.lo in
    let c = (try Hashtbl.find spawns k with Not_found -> 0) + 1 in
    Hashtbl.replace spawns k c;
    if k = straggler && c >= 2 then begin
      let oc = open_out flag in
      close_out oc
    end
  in
  let finish () = if Sys.file_exists flag then Sys.remove flag in
  Fun.protect ~finally:finish (fun () ->
      match
        Shardexec.run
          ~plan:(Shardexec.plan ~shards:8 ~workers:4 ~speculate:true ())
          ~budget:(Budget.make ~timeout:30.0 ())
          ~on_spawn ~n:8 ~compute ~merge:( @ ) ()
      with
      | Error f -> failure_fail "speculative run" f
      | Ok v ->
          check bool_c "verdict unaffected by speculation" true
            (v = slice { Shardexec.lo = 0; hi = 8 });
          let events = Shardexec.journal () in
          let speculated =
            List.exists
              (function
                | Shardexec.Speculated r -> r.Shardexec.lo = straggler
                | _ -> false)
              events
          and resolved =
            List.exists
              (function
                | Shardexec.Spec_resolved (r, _) -> r.Shardexec.lo = straggler
                | _ -> false)
              events
          in
          check bool_c "Speculated journaled" true speculated;
          check bool_c "Spec_resolved journaled" true resolved;
          no_zombies ())

(* --- fork hygiene: parent caches cannot leak into shard verdicts ----- *)

(* A scratch cache and a scratch configuration knob, registered like
   any solver cache. Children must come up with the cache reset to
   its pristine value even when the parent's copy is corrupted — and
   must keep the configuration, which is deliberate state, not
   cache. *)
let scratch_cache = ref 0
let scratch_knob = ref 1

let () =
  Runtime_state.register ~name:"test_shardexec.scratch_cache"
    ~validate:(fun () -> !scratch_cache >= 0)
    (fun () -> scratch_cache := 0);
  Runtime_state.register ~name:"test_shardexec.scratch_knob" ~kind:`Config
    (fun () -> scratch_knob := 1)

let test_fork_drops_parent_caches () =
  scratch_cache := 42;
  (* corrupted parent cache *)
  scratch_knob := 7;
  (* deliberate configuration *)
  let finish () =
    scratch_cache := 0;
    scratch_knob := 1
  in
  Fun.protect ~finally:finish (fun () ->
      match
        Shardexec.run
          ~plan:(Shardexec.plan ~shards:2 ~workers:2 ())
          ~n:4
          ~compute:(fun { Shardexec.lo; hi } ->
            List.init (hi - lo) (fun k ->
                (lo + k, !scratch_cache, !scratch_knob)))
          ~merge:( @ ) ()
      with
      | Error f -> failure_fail "fork hygiene run" f
      | Ok units ->
          check int_c "all units computed" 4 (List.length units);
          List.iter
            (fun (_, cache, knob) ->
              check int_c "corrupted cache reset in the child" 0 cache;
              check int_c "configuration survives the fork" 7 knob)
            units;
          check int_c "parent cache untouched by the run" 42 !scratch_cache;
          no_zombies ())

(* --- sharded solver clients agree with their sequential selves ------- *)

let sample_specs =
  [
    { nodes = 6; edges = [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) ];
      unary = [ 0; 2; 4 ] };
    { nodes = 8;
      edges = [ (0, 1); (1, 0); (2, 3); (3, 2); (4, 5); (6, 7); (7, 4) ];
      unary = [ 1; 3; 5; 7 ] };
    { nodes = 5; edges = [ (0, 0); (1, 2); (2, 1); (3, 4) ]; unary = [] };
  ]

let sample_trainings =
  List.concat_map
    (fun spec ->
      [ training_of_labeled { spec; mask = 0b010101 };
        training_of_labeled { spec; mask = 0b110010 } ])
    sample_specs

let plans = [ Shardexec.plan ~shards:2 (); Shardexec.plan ~shards:5 () ]

let test_atoms_sep_clients () =
  List.iteri
    (fun i t ->
      let seq_stat = Atoms_sep.pruned_features ~m:2 t in
      let seq_sep = Atoms_sep.separable ~m:2 t in
      let seq_min = Atoms_sep.min_errors ~m:1 t in
      List.iteri
        (fun j sharding ->
          let ctx fmt = Printf.sprintf "t%d plan%d: %s" i j fmt in
          (match Atoms_sep.pruned_features_sharded ~sharding ~m:2 t with
          | Ok s ->
              check string_c (ctx "pruned_features bytes") (bytes_of seq_stat)
                (bytes_of s)
          | Error f -> failure_fail (ctx "pruned_features_sharded") f);
          (match Atoms_sep.separable_sharded ~sharding ~m:2 t with
          | Ok b -> check bool_c (ctx "separable") seq_sep b
          | Error f -> failure_fail (ctx "separable_sharded") f);
          match Atoms_sep.min_errors_sharded ~sharding ~m:1 t with
          | Ok me ->
              check bool_c (ctx "min_errors agrees") true (me = seq_min)
          | Error f -> failure_fail (ctx "min_errors_sharded") f)
        plans;
      no_zombies ())
    sample_trainings

let test_dim_sep_clients () =
  let cq2 = Language.Cq_atoms { m = 2; p = None } in
  List.iteri
    (fun i t ->
      let seq_sets = Dim_sep.realizable_sets cq2 t in
      let seq_sep = Dim_sep.separable ~dim:2 cq2 t in
      List.iteri
        (fun j sharding ->
          let ctx fmt = Printf.sprintf "t%d plan%d: %s" i j fmt in
          (match Dim_sep.realizable_sets_sharded ~sharding cq2 t with
          | Ok sets ->
              (* Marshal bytes are oversensitive here: sets that
                 crossed the worker boundary lose string sharing, so
                 compare set-by-set instead. *)
              check int_c (ctx "realizable_sets count")
                (List.length seq_sets) (List.length sets);
              check bool_c (ctx "realizable_sets agree") true
                (List.for_all2 Elem.Set.equal seq_sets sets)
          | Error f -> failure_fail (ctx "realizable_sets_sharded") f);
          match Dim_sep.separable_sharded ~sharding ~dim:2 cq2 t with
          | Ok b -> check bool_c (ctx "dim separable") seq_sep b
          | Error f -> failure_fail (ctx "dim separable_sharded") f)
        plans;
      no_zombies ())
    sample_trainings

(* Clean in-worker resource failures: under a chaos-armed budget the
   sharded client must either recover through its escalating retries
   and agree byte-for-byte with the sequential answer, or fail with a
   structured resource failure — never hang, never leak a child,
   never return a divergent answer. *)
let test_chaos_budget_attempts () =
  let t = List.hd sample_trainings in
  let expected = bytes_of (Atoms_sep.pruned_features ~m:2 t) in
  for seed = 1 to 40 do
    let budget = Budget.make ~fuel:2_000_000 ~chaos:(seed, 0.0002) () in
    (match
       Atoms_sep.pruned_features_sharded
         ~sharding:(Shardexec.plan ~shards:4 ())
         ~budget ~m:2 t
     with
    | Ok s ->
        if bytes_of s <> expected then
          Alcotest.failf "chaos seed %d: recovered run diverged" seed
    | Error (Guard.Timeout | Guard.Fuel_exhausted _ | Guard.Limit_exceeded _)
      ->
        ()
    | Error (Guard.Solver_error msg) ->
        Alcotest.failf "chaos seed %d: non-resource failure: %s" seed msg);
    no_zombies ()
  done

(* --- the ladder's sharded rungs -------------------------------------- *)

(* Force the exact rung to fail so the ladder descends into the CQ[m]
   rungs, which with [~sharding] bypass the runner and fan out; the
   degraded answers must match the sequential solvers and be
   invariant to the shard count. *)
let failing_runner =
  { Guard.run = (fun _ _ -> Error (Guard.Fuel_exhausted "forced failure")) }

let test_ladder_sharded_rungs () =
  List.iter
    (fun t ->
      let sharded shards =
        Cq_sep.decide_with_fallback ~runner:failing_runner ~rungs:[ 2 ]
          ~sharding:(Shardexec.plan ~shards ())
          t
      in
      let r2 = sharded 2 and r5 = sharded 5 in
      check bool_c "shard count cannot move the ladder answer" true
        (r2.Cq_sep.answer = r5.Cq_sep.answer
        && r2.Cq_sep.provenance = r5.Cq_sep.provenance);
      (match r2.Cq_sep.provenance with
      | Cq_sep.Degraded _ ->
          check bool_c "degraded rung answers the sequential CQ[2] verdict"
            true
            (r2.Cq_sep.answer = Some (Atoms_sep.separable ~m:2 t))
      | Cq_sep.Approximate _ -> (
          (* the CQ[2] rung refuted, so the ladder fell through to the
             sharded slack rung *)
          match Atoms_sep.min_errors ~m:1 t with
          | Some (0, _, _) ->
              check bool_c "zero slack certifies separability" true
                (r2.Cq_sep.answer = Some true)
          | _ -> ())
      | p ->
          Alcotest.failf "expected a degraded/approximate rung, got %s"
            (Format.asprintf "%a" Cq_sep.pp_provenance p));
      no_zombies ())
    sample_trainings

(* --------------------------------------------------------------------- *)

let () =
  Alcotest.run "shardexec"
    [
      ( "partition and merge",
        [
          Alcotest.test_case "partition tiles and balances" `Quick
            test_partition;
          Alcotest.test_case "merge invariant to 1000 completion orders"
            `Quick test_merge_determinism;
          Alcotest.test_case "merge rejects bad tilings" `Quick
            test_merge_rejects_bad_tilings;
        ] );
      ( "engine",
        [
          Alcotest.test_case "sequential fallback" `Quick
            test_sequential_fallback;
          Alcotest.test_case "clean sharded run" `Quick test_clean_run;
          Alcotest.test_case "260-seed SIGKILL sweep" `Slow test_kill_sweep;
          Alcotest.test_case "poison unit isolated by bisection" `Quick
            test_poison_isolated;
          Alcotest.test_case "straggler speculation" `Quick test_speculation;
          Alcotest.test_case "fork drops parent caches, keeps config" `Quick
            test_fork_drops_parent_caches;
        ] );
      ( "solver clients",
        [
          Alcotest.test_case "Atoms_sep sharded = sequential" `Quick
            test_atoms_sep_clients;
          Alcotest.test_case "Dim_sep sharded = sequential" `Quick
            test_dim_sep_clients;
          Alcotest.test_case "chaos budgets: agree or fail structurally"
            `Quick test_chaos_budget_attempts;
          Alcotest.test_case "ladder rungs shard transparently" `Quick
            test_ladder_sharded_rungs;
        ] );
    ]
