(* R10 positive and negative: [tally]'s Hashtbl is allocated on the
   parent side and captured by the closure handed to [Isolate.run] —
   the worker mutates a fork-time copy and every write is lost at the
   merge. [safe] allocates inside the thunk: born on the worker side,
   never aliased, no finding. *)

let tally xs =
  let seen = Hashtbl.create 8 in
  let work () = List.iter (fun x -> Hashtbl.replace seen x ()) xs in
  match Isolate.run work with
  | Ok () -> Hashtbl.length seen
  | Error _ -> 0

let safe xs =
  let work () =
    let local = Hashtbl.create 8 in
    List.iter (fun x -> Hashtbl.replace local x ()) xs;
    Hashtbl.length local
  in
  match Isolate.run work with Ok n -> n | Error _ -> 0
