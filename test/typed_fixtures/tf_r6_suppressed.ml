(* R6 suppressed variant: same sink as Tf_r6_random, silenced by a
   reasoned directive on the mention line. *)

let pick n =
  (* cqlint: allow R6 — fixture: seeded upstream, reproducible by construction *)
  Random.int n

let choose n = pick n + 1
