val choose : int -> int
