(* Effects fixture, lattice bottom: no ambient state anywhere — every
   export must infer Pure and certify shard-safe. *)

let add x y = x + y

let double xs = List.map (fun x -> add x x) xs
