(* The Parsetree R1's false positive, fixed by the typed pass: the
   only tick is behind a cross-module (Ldot) call, which name-based
   crediting cannot see but the call graph can. *)

let drain n =
  let x = ref n in
  while !x > 0 do
    x := Tf_cross_helper.ticking_step !x
  done
