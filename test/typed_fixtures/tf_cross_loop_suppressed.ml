(* Same shadowing trap as Tf_cross_loop, but with a reasoned
   suppression: directives must silence typed findings exactly like
   Parsetree ones. *)

let step n =
  Budget.tick ();
  n - 1

open Tf_cross_helper

let drain n =
  let x = ref n in
  (* cqlint: allow R1 — fixture: suppressions govern typed findings too *)
  while !x > 0 do
    x := step !x
  done
