(* R6 positive: float accumulation over an unordered Hashtbl.fold.
   Hash-bucket iteration order is unspecified, and float addition does
   not associate, so the exported total depends on insertion history —
   the exact shape of nondeterminism the fixed-order-reduction rule in
   the numeric tier exists to prevent. *)

let tbl : (int, float) Hashtbl.t = Hashtbl.create 8

let record k v = Hashtbl.replace tbl k v

let total () = Hashtbl.fold (fun _ v acc -> acc +. v) tbl 0.0
