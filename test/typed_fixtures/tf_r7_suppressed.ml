(* R7 suppressed variant: the closure-returning site from
   Tf_r7_closure behind a reasoned directive. *)

let smuggle_closure budget =
  (* cqlint: allow R7 — fixture: result is consumed in-process in this test *)
  Guard.runner.run budget (fun () -> fun x -> x + 1)
