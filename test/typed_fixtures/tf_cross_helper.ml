(* Helpers the cross-module R1' fixtures call into. *)

(* Does NOT tick: a loop that only steps through this must be flagged. *)
let step n = n - 1

(* Ticks: a loop that steps through this is budget-disciplined even
   though the tick lives in another module. *)
let ticking_step n =
  Budget.tick ();
  n - 1
