(* The regression-locked false negative of the Parsetree R1: a local
   `step` ticks, the open then shadows it with the non-ticking
   cross-module one. Name-based crediting passes the loop; the typed
   pass resolves the mention to Tf_cross_helper.step and flags it. *)

let step n =
  Budget.tick ();
  n - 1

open Tf_cross_helper

let drain n =
  let x = ref n in
  while !x > 0 do
    x := step !x
  done
