(* Mutual recursion: neither function mentions itself, so the
   Parsetree R1 (self-mention only) is blind to the cycle; the SCC
   condensation is not. *)

let rec ping n = if n = 0 then 0 else pong (n - 1)
and pong n = ping (n / 2)

(* Direct recursion that ticks: cyclic, but budget-disciplined. *)
let rec down n =
  if n = 0 then 0
  else begin
    Budget.tick ();
    down (n - 1)
  end
