(* R7 negative: a first-order result (tuples, lists, strings, ints)
   marshals fine, including through a record-typed runner. *)

let fine budget = Guard.runner.run budget (fun () -> [ (1, "a"); (2, "b") ])

let fine_direct () = Isolate.run (fun () -> Some 42)
