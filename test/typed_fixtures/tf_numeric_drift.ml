(* Implementations for the numeric-solver R8 drift fixtures; the
   interesting part is the .mli. *)

let solve xs = List.fold_left ( + ) 0 xs

let solve_b ?budget xs =
  Guard.run
    (match budget with Some b -> b | None -> Budget.installed ())
    (fun () -> solve xs)

let refine xs = List.length xs

let refine_b ?budget ?tol xs =
  ignore tol;
  Guard.run
    (match budget with Some b -> b | None -> Budget.installed ())
    (fun () -> refine xs)

let scale xs = List.length xs

let scale_b ?budget ?factor xs =
  ignore factor;
  Guard.run
    (match budget with Some b -> b | None -> Budget.installed ())
    (fun () -> scale xs)
