(* Effects fixture: WritesGlobal. [hits] is top-level mutable state
   with no Runtime_state registration, so [record] infers
   writes-global and is an R9 finding; [count] only reads it —
   reads-cache, not a finding, but not shard-safe either (nothing
   resets the unregistered state between shards). *)

let hits = ref 0

let record () = incr hits

let count () = !hits
