(* Effects fixture: Io. [print_endline] is ambient io, and it
   propagates through [compute] interprocedurally. *)

let log_it msg = print_endline msg

let compute x =
  log_it "computing";
  x + 1
