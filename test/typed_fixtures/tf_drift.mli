(* R8 fixtures: `_b` entry points must agree with their unbudgeted
   twins modulo the budget argument and the result wrapper. *)

(* A well-formed pair: no finding. *)
val size : int -> int
val size_b : ?budget:Budget.t -> int -> (int, Guard.failure) result

(* Drifted: the budgeted twin takes a float where the base takes an
   int. *)
val decide : int -> bool
val decide_b : ?budget:Budget.t -> float -> (bool, Guard.failure) result

(* Drifted the same way, but suppressed with a reason. *)
val rank : int -> int

(* cqlint: allow R8 — fixture: migration in flight, tracked elsewhere *)
val rank_b : ?budget:Budget.t -> float -> (int, Guard.failure) result
