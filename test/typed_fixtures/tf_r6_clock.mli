val elapsed : float -> float
