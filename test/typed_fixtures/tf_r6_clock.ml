(* R6 negative: Budget.Clock is the sanctioned time source, so an
   exported function built on it must stay clean. *)

let elapsed since = Budget.Clock.now () -. since
