(* R6 positive: the exported entry point reaches Random.int through a
   private helper. The finding lands on the mention, inside the
   helper. *)

let pick n = Random.int n

let choose n = pick n + 1

(* Not exported (the .mli hides it), so this Sys.time must NOT be
   flagged: only paths from the exported surface count. *)
let unexported n = int_of_float (Sys.time ()) + n
