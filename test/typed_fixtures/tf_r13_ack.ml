(* R13 fixture: journal-before-ack discipline. [journal] wraps
   Wal.append, so domination must be credited interprocedurally;
   [ack_bad] mutates observable state before journaling, [ack_branchy]
   journals on only one path, [reply_early] constructs its Ok before
   the append. [ack_good] is the disciplined shape. *)

type job = { id : int; mutable ji_state : int }

let journal (w : Wal.t) ev = Wal.append w ev

let ack_bad w j =
  j.ji_state <- 1;
  journal w "started";
  Ok j.id

let ack_good w j =
  journal w "started";
  j.ji_state <- 1;
  Ok j.id

let ack_branchy w j b =
  if b then journal w "started";
  j.ji_state <- 1

let reply_early w j =
  let r = Ok j.id in
  journal w "done";
  r
