val record : int -> float -> unit
val total : unit -> float
