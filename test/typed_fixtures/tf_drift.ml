let size n = n

let size_b ?budget:_ n = Ok n

let decide n = n > 0

let decide_b ?budget:_ x = Ok (x > 0.)

let rank n = n

let rank_b ?budget:_ x = Ok (int_of_float x)
