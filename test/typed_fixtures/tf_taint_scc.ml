(* Taint fixture: mutual recursion. The float literal enters in
   [wait]; the SCC fixpoint must propagate it to [poll] and from there
   to the non-recursive caller [report]. *)

let rec poll n = if n = 0 then 0.0 else wait (n - 1)
and wait n = poll (n - 1) +. 1.0

let report n = poll n
