(* Effects fixture, lattice top: Forks. [Isolate.run] forks, and the
   effect propagates to the indirect caller. *)

let spawn_it () = Isolate.run (fun () -> 42)

let indirect () = spawn_it ()
