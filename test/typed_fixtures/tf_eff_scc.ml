(* Effects fixture: a mutual-recursion SCC whose join is WritesGlobal.
   Only [ping] touches the unregistered counter, but [pong] sits in
   the same SCC, so both must infer writes-global. *)

let steps = ref 0

let rec ping n =
  if n <= 0 then !steps
  else begin
    incr steps;
    pong (n - 1)
  end

and pong n = if n <= 0 then !steps else ping (n - 1)
