(* R14 fixture: handle release on all paths. [leak] closes on only
   one branch; [ok_protect] uses the recommended Fun.protect shape;
   [ok_branches] releases in both arms; [escaped] hands the fd out and
   is therefore out of scope (the quiet direction). *)

let leak path flag =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  if flag then Unix.close fd

let ok_protect path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> input_line ic)

let ok_branches path flag =
  let oc = open_out path in
  if flag then close_out oc else close_out_noerr oc

let escaped path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Some fd
