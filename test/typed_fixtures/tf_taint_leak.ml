(* Taint fixture: an uncertified float-to-verdict path. [fit] returns
   float-derived data, [decide] packs it straight into the verdict —
   both summaries must come out tainted. *)

type verdict = Sep of float array | Unsep

let fit xs = Array.map (fun x -> x *. 2.0) xs

let decide xs =
  let w = fit xs in
  if Array.length w > 0 then Sep w else Unsep
