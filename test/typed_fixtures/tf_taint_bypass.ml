(* Taint fixture: the acceptance-criterion negative — Nsep's numeric
   path with the Certify.hyperplane call deleted. The float weights
   flow into the verdict unconverted, so R12 must flag every entry
   point on the chain. *)

type verdict = Sep of float array | Unsep of string

let well_conditioned w = Array.for_all (fun x -> Float.is_finite x) w

let fit xs = Array.map (fun (x, y) -> float_of_int x +. y) xs

let numeric_attempt xs =
  let w = fit xs in
  if well_conditioned w then Some (Sep w) else None

let decide xs =
  match numeric_attempt xs with Some v -> v | None -> Unsep "exact"
