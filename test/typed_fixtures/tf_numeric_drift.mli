(* R8 fixtures in the numeric-solver idiom: a budgeted spine where the
   `_b` twin must differ from its base only by [?budget] and the
   result wrapper — extra knobs belong on both signatures or neither. *)

(* The well-formed pair: no finding. *)
val solve : int list -> int
val solve_b : ?budget:Budget.t -> int list -> (int, Guard.failure) result

(* Drifted: the budgeted twin grew a [?tol] the base never had. *)
val refine : int list -> int

val refine_b :
  ?budget:Budget.t -> ?tol:float -> int list -> (int, Guard.failure) result

(* Drifted the same way, but suppressed with a reason. *)
val scale : int list -> int

(* cqlint: allow R8 — fixture: tolerance knob migration tracked elsewhere *)
val scale_b :
  ?budget:Budget.t -> ?factor:float -> int list -> (int, Guard.failure) result
