(* R7 positives: results that cannot cross the Isolate process
   boundary. The first smuggles a closure (an arrow type) through a
   Guard.runner; the second returns a Seq.t, which is a thunk in
   disguise. *)

let smuggle_closure budget =
  Guard.runner.run budget (fun () -> fun x -> x + 1)

let smuggle_seq () = Isolate.run (fun () -> Seq.empty)
