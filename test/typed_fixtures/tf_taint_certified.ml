(* Taint fixture: the same float tier as tf_taint_leak, but the
   candidate crosses the exactness boundary through Certify before it
   can reach the caller — [decide]'s summary must be clean (and
   float-touching: the "certified" report row). *)

let fit xs = Array.map (fun x -> x *. 2.0) xs

let decide xs =
  let w = fit xs in
  match Certify.hyperplane ~weights:w [] with
  | Certify.Certified c -> Some c
  | Certify.Refuted _ | Certify.Inconclusive _ -> None
