(* Effects fixture: ReadsCache of a Runtime_state-registered cache.
   [lookup] writes the cache but the write is registered, so it stays
   at reads-cache level and remains shard-safe; [peek] only reads. *)

let cache : (int, int) Hashtbl.t = Hashtbl.create 8

let () =
  Runtime_state.register ~name:"tf_eff.cache" (fun () -> Hashtbl.reset cache)

let lookup k =
  match Hashtbl.find_opt cache k with
  | Some v -> v
  | None ->
      let v = k * k in
      Hashtbl.replace cache k v;
      v

let peek k = Hashtbl.find_opt cache k
