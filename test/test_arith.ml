(* Unit and property tests for the bignum/rational substrate. *)

let bi = Bigint.of_int
let check_bi msg expect got = Alcotest.check Alcotest.string msg expect (Bigint.to_string got)

let test_of_to_int () =
  List.iter
    (fun n ->
      Alcotest.check Alcotest.int "roundtrip" n (Bigint.to_int (bi n)))
    [ 0; 1; -1; 42; -42; max_int; min_int; 1 lsl 40; -(1 lsl 40) ]

let test_to_string () =
  check_bi "zero" "0" Bigint.zero;
  check_bi "one" "1" Bigint.one;
  check_bi "neg" "-17" (bi (-17));
  check_bi "big"
    "340282366920938463463374607431768211456"
    (Bigint.pow (bi 2) 128);
  check_bi "pow3" "59049" (Bigint.pow (bi 3) 10)

let test_of_string () =
  check_bi "parse" "123456789012345678901234567890"
    (Bigint.of_string "123456789012345678901234567890");
  check_bi "parse neg" "-42" (Bigint.of_string "-42");
  check_bi "parse plus" "7" (Bigint.of_string "+7");
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty string")
    (fun () -> ignore (Bigint.of_string ""));
  (match Bigint.of_string "12a" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument")

let test_divmod_basic () =
  let q, r = Bigint.divmod (bi 17) (bi 5) in
  check_bi "q" "3" q;
  check_bi "r" "2" r;
  let q, r = Bigint.divmod (bi (-17)) (bi 5) in
  check_bi "q neg" "-3" q;
  check_bi "r neg" "-2" r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bigint.divmod Bigint.one Bigint.zero))

let test_gcd () =
  check_bi "gcd" "6" (Bigint.gcd (bi 54) (bi 24));
  check_bi "gcd neg" "6" (Bigint.gcd (bi (-54)) (bi 24));
  check_bi "gcd zero" "7" (Bigint.gcd (bi 0) (bi 7));
  check_bi "gcd both zero" "0" (Bigint.gcd Bigint.zero Bigint.zero)

let test_big_arithmetic () =
  (* (2^100 + 1) * (2^100 - 1) = 2^200 - 1 *)
  let p = Bigint.pow (bi 2) 100 in
  let lhs = Bigint.mul (Bigint.add p Bigint.one) (Bigint.sub p Bigint.one) in
  let rhs = Bigint.sub (Bigint.pow (bi 2) 200) Bigint.one in
  Alcotest.check Alcotest.bool "factored" true (Bigint.equal lhs rhs);
  (* string roundtrip at scale *)
  let s = Bigint.to_string lhs in
  Alcotest.check Alcotest.bool "string roundtrip" true
    (Bigint.equal lhs (Bigint.of_string s))

let test_min_max_sign () =
  let bi = Bigint.of_int in
  Alcotest.check Alcotest.int "sign pos" 1 (Bigint.sign (bi 5));
  Alcotest.check Alcotest.int "sign neg" (-1) (Bigint.sign (bi (-5)));
  Alcotest.check Alcotest.int "sign zero" 0 (Bigint.sign Bigint.zero);
  check_bi "min" "-3" (Bigint.min (bi (-3)) (bi 7));
  check_bi "max" "7" (Bigint.max (bi (-3)) (bi 7));
  Alcotest.check Alcotest.bool "hash consistent" true
    (Bigint.hash (bi 12345) = Bigint.hash (Bigint.of_string "12345"))

let test_pow_edges () =
  check_bi "pow 0" "1" (Bigint.pow (bi 7) 0);
  check_bi "pow of zero" "0" (Bigint.pow Bigint.zero 5);
  check_bi "pow of one" "1" (Bigint.pow Bigint.one 1000);
  (match Bigint.pow (bi 2) (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative exponent must raise")

let test_to_int_overflow () =
  let big = Bigint.pow (bi 2) 100 in
  Alcotest.check Alcotest.bool "overflow detected" true
    (Bigint.to_int_opt big = None);
  (match Bigint.to_int big with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "to_int must fail on overflow")

let small_int = QCheck.int_range (-10000) 10000

let prop_add_matches_int =
  QCheck.Test.make ~name:"bigint add = int add" ~count:500
    (QCheck.pair small_int small_int) (fun (a, b) ->
      Bigint.to_int (Bigint.add (bi a) (bi b)) = a + b)

let prop_mul_matches_int =
  QCheck.Test.make ~name:"bigint mul = int mul" ~count:500
    (QCheck.pair small_int small_int) (fun (a, b) ->
      Bigint.to_int (Bigint.mul (bi a) (bi b)) = a * b)

let prop_divmod_identity =
  QCheck.Test.make ~name:"a = q*b + r, |r| < |b|, sign r = sign a" ~count:500
    (QCheck.pair small_int (QCheck.int_range 1 500))
    (fun (a, b0) ->
      let b = if a mod 3 = 0 then -b0 else b0 in
      let q, r = Bigint.divmod (bi a) (bi b) in
      Bigint.equal (bi a) (Bigint.add (Bigint.mul q (bi b)) r)
      && Bigint.compare (Bigint.abs r) (Bigint.abs (bi b)) < 0
      && (Bigint.is_zero r || Bigint.sign r = Bigint.sign (bi a)))

let prop_divmod_multilimb =
  (* Drive the multi-limb Knuth division path: both operands well past
     one 30-bit limb, with occasional near-equal magnitudes (quotient
     digit estimation's worst case). *)
  QCheck.Test.make ~name:"multi-limb divmod identity" ~count:300
    (QCheck.quad small_int (QCheck.int_range 2 8) small_int
       (QCheck.int_range 2 6))
    (fun (a0, ka, b0, kb) ->
      QCheck.assume (b0 <> 0);
      let a =
        Bigint.add (Bigint.mul (bi a0) (Bigint.pow (bi 1000003) ka)) (bi ka)
      in
      let b = Bigint.mul (bi b0) (Bigint.pow (bi 999983) kb) in
      let q, r = Bigint.divmod a b in
      Bigint.equal a (Bigint.add (Bigint.mul q b) r)
      && Bigint.compare (Bigint.abs r) (Bigint.abs b) < 0
      && (Bigint.is_zero r || Bigint.sign r = Bigint.sign a))

let test_frexp () =
  let check v =
    let f, e = Bigint.frexp v in
    Alcotest.check (Alcotest.float 0.0) "frexp exact"
      (float_of_string (Bigint.to_string v))
      (Float.ldexp f e)
  in
  check Bigint.zero;
  check Bigint.one;
  check (bi (-12345));
  check (Bigint.pow (bi 2) 100);
  check (Bigint.neg (Bigint.pow (bi 2) 300));
  (* a full 53-bit mantissa survives exactly *)
  check (bi ((1 lsl 53) - 1));
  check (Bigint.mul (bi ((1 lsl 53) - 1)) (Bigint.pow (bi 2) 200))

let prop_divmod_matches_int =
  QCheck.Test.make ~name:"bigint div/rem = int (/)(mod)" ~count:500
    (QCheck.pair small_int (QCheck.int_range 1 500))
    (fun (a, b) ->
      Bigint.to_int (Bigint.div (bi a) (bi b)) = a / b
      && Bigint.to_int (Bigint.rem (bi a) (bi b)) = a mod b)

let prop_compare_total_order =
  QCheck.Test.make ~name:"compare consistent with int order" ~count:500
    (QCheck.pair small_int small_int) (fun (a, b) ->
      compare a b = Bigint.compare (bi a) (bi b))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"of_string ∘ to_string = id" ~count:300
    (QCheck.pair small_int (QCheck.int_range 0 6))
    (fun (a, k) ->
      let x = Bigint.mul (bi a) (Bigint.pow (bi 1000003) k) in
      Bigint.equal x (Bigint.of_string (Bigint.to_string x)))

(* --- rationals ------------------------------------------------------- *)

let rational = QCheck.pair small_int (QCheck.int_range 1 500)
let rat_of (n, d) = Rat.of_ints n d

let prop_rat_add_comm =
  QCheck.Test.make ~name:"rat add commutative" ~count:300
    (QCheck.pair rational rational) (fun (a, b) ->
      Rat.equal (Rat.add (rat_of a) (rat_of b)) (Rat.add (rat_of b) (rat_of a)))

let prop_rat_mul_distributes =
  QCheck.Test.make ~name:"rat mul distributes over add" ~count:300
    (QCheck.triple rational rational rational) (fun (a, b, c) ->
      let a = rat_of a and b = rat_of b and c = rat_of c in
      Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)))

let prop_rat_inverse =
  QCheck.Test.make ~name:"x * 1/x = 1 for x <> 0" ~count:300 rational
    (fun p ->
      let x = rat_of p in
      QCheck.assume (not (Rat.is_zero x));
      Rat.equal (Rat.mul x (Rat.inv x)) Rat.one)

let prop_rat_canonical =
  QCheck.Test.make ~name:"canonical form: den > 0, coprime" ~count:300
    (QCheck.pair small_int (QCheck.int_range (-500) 500))
    (fun (n, d) ->
      QCheck.assume (d <> 0);
      let r = Rat.of_ints n d in
      Bigint.sign (Rat.den r) > 0
      && Bigint.equal (Bigint.gcd (Rat.num r) (Rat.den r))
           (if Rat.is_zero r then Bigint.one else Bigint.one))

let prop_rat_compare =
  QCheck.Test.make ~name:"rat compare = float compare (away from ties)"
    ~count:300 (QCheck.pair rational rational) (fun (a, b) ->
      let ra = rat_of a and rb = rat_of b in
      QCheck.assume (not (Rat.equal ra rb));
      let c = Rat.compare ra rb in
      let fc = compare (Rat.to_float ra) (Rat.to_float rb) in
      c * fc > 0)

let test_rat_division_by_zero () =
  (match Rat.of_ints 1 0 with
  | exception Division_by_zero -> ()
  | _ -> Alcotest.fail "den 0 must raise");
  (match Rat.inv Rat.zero with
  | exception Division_by_zero -> ()
  | _ -> Alcotest.fail "inv 0 must raise");
  match Rat.div Rat.one Rat.zero with
  | exception Division_by_zero -> ()
  | _ -> Alcotest.fail "div by 0 must raise"

(* --- Rat.of_float: the exact float→rational bridge ------------------- *)

let check_rat msg expect got =
  Alcotest.check Alcotest.string msg expect (Rat.to_string got)

let test_of_float_exact () =
  check_rat "half" "1/2" (Rat.of_float 0.5);
  check_rat "neg dyadic" "-3/8" (Rat.of_float (-0.375));
  check_rat "integer" "42" (Rat.of_float 42.0);
  check_rat "large power of two" (Bigint.to_string (Bigint.pow (bi 2) 80))
    (Rat.of_float 0x1p80);
  (* 0.1 is not 1/10: it is the nearest double, exactly. *)
  check_rat "0.1 as stored" "3602879701896397/36028797018963968"
    (Rat.of_float 0.1)

let test_of_float_edges () =
  check_rat "positive zero" "0" (Rat.of_float 0.0);
  check_rat "negative zero" "0" (Rat.of_float (-0.0));
  (* Smallest positive subnormal: 2^-1074. *)
  Alcotest.check Alcotest.bool "min subnormal" true
    (Rat.equal (Rat.of_float 0x1p-1074)
       (Rat.div Rat.one (Rat.of_bigint (Bigint.pow (bi 2) 1074))));
  (* Largest finite double: (2^53 - 1) * 2^971. *)
  Alcotest.check Alcotest.bool "max_float" true
    (Rat.equal
       (Rat.of_float Float.max_float)
       (Rat.of_bigint
          (Bigint.mul
             (bi ((1 lsl 53) - 1))
             (Bigint.pow (bi 2) 971))));
  List.iter
    (fun f ->
      match Rat.of_float f with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "nan/infinity must raise")
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let prop_of_float_roundtrip =
  (* of_float is exact, and to_float rounds back to the nearest double
     — which is the one we started from. Spans normals across the full
     exponent range and subnormals. *)
  QCheck.Test.make ~name:"to_float (of_float f) = f" ~count:1000
    (QCheck.triple (QCheck.float_range (-1.0) 1.0)
       (QCheck.int_range (-1080) 1020)
       QCheck.bool)
    (fun (m, e, flip) ->
      let f = Float.ldexp (if flip then -.m else m) e in
      QCheck.assume (Float.is_finite f);
      Float.equal (Rat.to_float (Rat.of_float f)) f)

let test_rat_to_string () =
  Alcotest.check Alcotest.string "int" "3" (Rat.to_string (Rat.of_int 3));
  Alcotest.check Alcotest.string "frac" "-2/3" (Rat.to_string (Rat.of_ints 4 (-6)));
  Alcotest.check Alcotest.string "zero" "0" (Rat.to_string (Rat.of_ints 0 5))

let () =
  Alcotest.run "arith"
    [
      ( "bigint",
        [
          Alcotest.test_case "of/to int" `Quick test_of_to_int;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "divmod basics" `Quick test_divmod_basic;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "big arithmetic" `Quick test_big_arithmetic;
          Alcotest.test_case "min/max/sign/hash" `Quick test_min_max_sign;
          Alcotest.test_case "pow edges" `Quick test_pow_edges;
          Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
          Test_util.qcheck prop_add_matches_int;
          Test_util.qcheck prop_mul_matches_int;
          Test_util.qcheck prop_divmod_identity;
          Test_util.qcheck prop_divmod_matches_int;
          Test_util.qcheck prop_divmod_multilimb;
          Alcotest.test_case "frexp" `Quick test_frexp;
          Test_util.qcheck prop_compare_total_order;
          Test_util.qcheck prop_string_roundtrip;
        ] );
      ( "rat",
        [
          Alcotest.test_case "to_string" `Quick test_rat_to_string;
          Alcotest.test_case "division by zero" `Quick test_rat_division_by_zero;
          Alcotest.test_case "of_float exact values" `Quick test_of_float_exact;
          Alcotest.test_case "of_float edges" `Quick test_of_float_edges;
          Test_util.qcheck prop_of_float_roundtrip;
          Test_util.qcheck prop_rat_add_comm;
          Test_util.qcheck prop_rat_mul_distributes;
          Test_util.qcheck prop_rat_inverse;
          Test_util.qcheck prop_rat_canonical;
          Test_util.qcheck prop_rat_compare;
        ] );
    ]
