(* R5 fixture: top-level mutable solver state that never registers with
   Runtime_state — an abort can leave it stale with no reset path. A
   function-local table is fine and must not fire. *)

let memo : (string, int) Hashtbl.t = Hashtbl.create 16
let hits = ref 0

let lookup key =
  match Hashtbl.find_opt memo key with
  | Some v ->
      incr hits;
      Some v
  | None -> None

let local_is_fine xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.replace seen x ();
        true
      end)
    xs
