(* The same state as bad_r5.ml, properly registered: naming the
   bindings inside the Runtime_state.register call is what R5 checks
   for. *)

let memo : (string, int) Hashtbl.t = Hashtbl.create 16
let hits = ref 0

let () =
  Runtime_state.register ~name:"fixture.memo"
    ~validate:(fun () -> Hashtbl.length memo >= 0)
    (fun () ->
      Hashtbl.reset memo;
      hits := 0)

let lookup key =
  match Hashtbl.find_opt memo key with
  | Some v ->
      incr hits;
      Some v
  | None -> None
