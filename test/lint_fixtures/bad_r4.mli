(* R4 fixture: a solver entry point over training data with no budgeted
   counterpart in sight. *)

val solve : Labeling.training -> bool

val solve_ok : Labeling.training -> bool
val solve_ok_b :
  ?budget:Budget.t -> Labeling.training -> (bool, Guard.failure) result
