(* The same shapes as bad_r2.ml, silenced by reasoned directives. *)

exception Local_stop

let solve xs =
  (* cqlint: allow R2 — fixture: caller documented to catch Sys_error *)
  if xs = [] then raise (Sys_error "fixture");
  try List.iter (fun x -> if x > 3 then raise Local_stop) xs with
  | Local_stop -> ()

(* cqlint: allow R2 — fixture: infallible body, nothing to guard *)
let solve_b ?budget:_ xs =
  solve xs;
  Ok ()
