(* R3 fixture: polymorphic hash, polymorphic compare on a domain value,
   and a default Hashtbl keyed by a domain value. *)

let fingerprint x = Hashtbl.hash x

let reaches_one a b = Rat.add a b = Rat.one

let cache = Hashtbl.create 7
let remember x = Hashtbl.replace cache (Rat.of_int x) x
