(* R2 fixture: a raise that Guard.run does not convert, and a budgeted
   entry point whose body never reaches Guard.run. A locally-declared
   exception is fine (caught in-file by convention). *)

exception Local_stop

let solve xs =
  if xs = [] then raise (Sys_error "fixture");
  try List.iter (fun x -> if x > 3 then raise Local_stop) xs with
  | Local_stop -> ()

let solve_b ?budget:_ xs =
  solve xs;
  Ok ()
