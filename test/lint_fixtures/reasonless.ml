(* R0 fixture: the directive below has no reason, so it must not
   suppress the recursion finding and must itself be reported. *)

(* cqlint: allow R1 *)
let rec explore n = if n = 0 then [] else n :: explore (n - 1)
