(* The same shape as bad_r4.mli, silenced by a reasoned directive. *)

(* cqlint: allow R4 — fixture: trivial constant-time accessor *)
val solve : Labeling.training -> bool
