(* The same shapes as bad_r3.ml, silenced by reasoned directives. *)

(* cqlint: allow R3 — fixture: keys are shallow ints in this table *)
let fingerprint x = Hashtbl.hash x

(* cqlint: allow R3 — fixture: operands are canonical by construction *)
let reaches_one a b = Rat.add a b = Rat.one

(* cqlint: allow R5 — fixture: exercising R3, not state registration *)
let cache = Hashtbl.create 7

(* cqlint: allow R3 — fixture: table is per-call and tiny *)
let remember x = Hashtbl.replace cache (Rat.of_int x) x
