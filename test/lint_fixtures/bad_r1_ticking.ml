(* Clean under R1: the loop ticks directly, the recursion ticks through
   a same-file helper (the one-level closure). *)

let step () = Budget.tick ~what:"fixture: step" ()

let search xs =
  let best = ref 0 in
  while !best < List.length xs do
    Budget.tick ~what:"fixture: search" ();
    incr best
  done;
  !best

let rec explore n =
  step ();
  if n = 0 then [] else n :: explore (n - 1)
