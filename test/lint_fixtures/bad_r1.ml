(* R1 fixture: a solver-style loop and a self-recursive search, neither
   of which ever ticks. *)

let search xs =
  let best = ref 0 in
  while !best < List.length xs do
    incr best
  done;
  !best

let rec explore n = if n = 0 then [] else n :: explore (n - 1)
