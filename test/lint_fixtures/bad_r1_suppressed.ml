(* The same shapes as bad_r1.ml, silenced by reasoned directives. *)

let search xs =
  let best = ref 0 in
  (* cqlint: allow R1 — fixture: bounded by the list length *)
  while !best < List.length xs do
    incr best
  done;
  !best

(* cqlint: allow R1 — fixture: structural recursion on a decreasing nat *)
let rec explore n = if n = 0 then [] else n :: explore (n - 1)
