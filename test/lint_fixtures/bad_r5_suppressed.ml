(* The same shapes as bad_r5.ml, silenced by reasoned directives. *)

(* cqlint: allow R5 — fixture: append-only cache, stale entries are sound *)
let memo : (string, int) Hashtbl.t = Hashtbl.create 16

(* cqlint: allow R5 — fixture: counter is diagnostic only *)
let hits = ref 0

let lookup key =
  match Hashtbl.find_opt memo key with
  | Some v ->
      incr hits;
      Some v
  | None -> None
