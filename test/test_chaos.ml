(* Chaos suite: drive the budgeted entry points through thousands of
   seeded interruption points and prove the abort-safety contract:

   - no exception escapes [Guard.run] — every chaos abort surfaces as
     a structured resource failure;
   - the ambient budget is physically restored after every abort;
   - every registered piece of [Runtime_state] passes its validator
     after an abort, and a post-abort rerun (WITHOUT resetting the
     caches) agrees with a fresh-process reference — aborts never
     publish partial state.

   Also home to the [Isolate] process-isolation tests (hard kill of
   non-ticking loops, stack-overflow containment, failure round-trip
   through the result pipe) and the [Guard.retrying] escalation
   policy. *)

open Test_util

(* --- repro artifact -------------------------------------------------- *)

let repro_file () =
  match Sys.getenv_opt "CHAOS_REPRO_FILE" with
  | Some p when p <> "" -> p
  | _ -> "chaos-repro.json"

let write_repro ~case ~seed ~rate ~message =
  let path = repro_file () in
  let oc = open_out path in
  Printf.fprintf oc
    "{ \"case\": %S, \"seed\": %d, \"rate\": %g, \"message\": %S }\n" case seed
    rate message;
  close_out oc

let chaos_fail ~case ~seed ~rate fmt =
  Format.kasprintf
    (fun message ->
      write_repro ~case ~seed ~rate ~message;
      Alcotest.failf "%s (seed %d, rate %g): %s — repro written to %s" case
        seed rate message (repro_file ()))
    fmt

(* --- fixed inputs ---------------------------------------------------- *)

let path_training =
  lazy
    (training_of_labeled
       {
         spec = { nodes = 4; edges = [ (0, 1); (1, 2); (2, 3) ]; unary = [ 0 ] };
         mask = 0b0001;
       })

let mixed_training =
  lazy
    (training_of_labeled
       {
         spec =
           {
             nodes = 4;
             edges = [ (0, 1); (1, 2); (2, 0); (0, 3) ];
             unary = [ 1; 3 ];
           };
         mask = 0b1010;
       })

(* all-positive, hence trivially separable: safe for classify *)
let positive_training =
  lazy
    (training_of_labeled
       {
         spec = { nodes = 3; edges = [ (0, 1); (1, 2) ]; unary = [ 0 ] };
         mask = 0b111;
       })

let eval_db =
  lazy (db_of_spec { nodes = 3; edges = [ (0, 1); (1, 2) ]; unary = [ 2 ] })

let show_labeling l = Format.asprintf "%a" Labeling.pp l

let show_witness = function
  | None -> "none"
  | Some (a, b) -> Elem.to_string a ^ "/" ^ Elem.to_string b

let box_lp n =
  let unit i = Array.init n (fun j -> if i = j then Rat.one else Rat.zero) in
  let rows =
    List.concat
      (List.init n (fun i ->
           [
             { Simplex.coeffs = unit i; op = Simplex.Ge; rhs = Rat.zero };
             {
               Simplex.coeffs = unit i;
               op = Simplex.Le;
               rhs = Rat.of_int (i + 1);
             };
           ]))
  in
  let objective = Array.make n Rat.minus_one in
  (rows, objective)

let show_lp = function
  | Simplex.Optimal (_, v) -> "optimal " ^ Rat.to_string v
  | Simplex.Infeasible -> "infeasible"
  | Simplex.Unbounded _ -> "unbounded"

(* Fixed instances for the numeric separation tier: one planted
   (separable) and one with random labels (inseparable at this size),
   both deterministic in the seed. *)
let linsep_sat = lazy (Planted.linsep_instance ~seed:0 ~dim:6 ~n:24)
let linsep_mixed = lazy (Planted.linsep_instance ~seed:1 ~dim:4 ~n:20)

let show_nsep a =
  match a.Nsep.verdict with
  | Nsep.Sep _ -> "sep"
  | Nsep.Unsep -> "unsep"
  | Nsep.Unknown r -> "unknown:" ^ r

let linsep_lp examples =
  let n = Array.length (List.hd examples).Linsep.vec in
  let rows =
    List.map
      (fun e ->
        let coeffs =
          Array.init (n + 1) (fun i ->
              if i < n then float_of_int e.Linsep.vec.(i) else -1.0)
        in
        match e.Linsep.label with
        | Labeling.Pos -> { Fsimplex.coeffs; op = Simplex.Ge; rhs = 0.0 }
        | Labeling.Neg -> { Fsimplex.coeffs; op = Simplex.Le; rhs = -1.0 })
      examples
  in
  (n + 1, rows)

let show_fsimplex = function
  | Fsimplex.Feasible _ -> "feasible"
  | Fsimplex.Infeasible _ -> "infeasible"

let cg_input examples =
  let xs =
    Array.of_list
      (List.map (fun e -> Array.map float_of_int e.Linsep.vec) examples)
  in
  let ys =
    Array.of_list
      (List.map
         (fun e ->
           match e.Linsep.label with
           | Labeling.Pos -> 1.0
           | Labeling.Neg -> -1.0)
         examples)
  in
  (xs, ys)

(* All reductions in Cg are fixed-order, so iteration count and
   convergence flag are bit-deterministic and render canonically. *)
let show_cg f = Printf.sprintf "%d:%b" f.Cg.iters f.Cg.converged

(* --- the chaos cases -------------------------------------------------- *)

(* Each case renders its answer to a canonical string so the reference
   and the budgeted run compare with plain [=]. The rendering happens
   outside any failure path, on fully-computed values. *)
type case = {
  c_name : string;
  reference : unit -> string;
  budgeted : Budget.t -> (string, Guard.failure) result;
}

let cases =
  [
    {
      c_name = "cq_sep.separable";
      reference =
        (fun () -> string_of_bool (Cq_sep.separable (Lazy.force mixed_training)));
      budgeted =
        (fun b ->
          Result.map string_of_bool
            (Cq_sep.separable_b ~budget:b (Lazy.force mixed_training)));
    };
    {
      c_name = "cq_sep.inseparable_witness";
      reference =
        (fun () ->
          show_witness (Cq_sep.inseparable_witness (Lazy.force path_training)));
      budgeted =
        (fun b ->
          Result.map show_witness
            (Cq_sep.inseparable_witness_b ~budget:b (Lazy.force path_training)));
    };
    {
      c_name = "cq_sep.classify";
      reference =
        (fun () ->
          show_labeling
            (Cq_sep.classify (Lazy.force positive_training) (Lazy.force eval_db)));
      budgeted =
        (fun b ->
          Result.map show_labeling
            (Cq_sep.classify_b ~budget:b
               (Lazy.force positive_training)
               (Lazy.force eval_db)));
    };
    {
      c_name = "cqfeat.separable(ghw1)";
      reference =
        (fun () ->
          string_of_bool
            (Cqfeat.separable (Language.Ghw 1) (Lazy.force mixed_training)));
      budgeted =
        (fun b ->
          Result.map string_of_bool
            (Cqfeat.separable_b ~budget:b (Language.Ghw 1)
               (Lazy.force mixed_training)));
    };
    {
      c_name = "atoms_sep.min_errors(m=1)";
      reference =
        (fun () ->
          match Atoms_sep.min_errors ~m:1 (Lazy.force mixed_training) with
          | Some (k, _, _) -> string_of_int k
          | None -> "none");
      budgeted =
        (fun b ->
          Result.map
            (function
              | Some (k, _, _) -> string_of_int k
              | None -> "none")
            (Atoms_sep.min_errors_b ~budget:b ~m:1 (Lazy.force mixed_training)));
    };
    {
      c_name = "fo_sep.fo_separable";
      reference =
        (fun () ->
          string_of_bool (Fo_sep.fo_separable (Lazy.force mixed_training)));
      budgeted =
        (fun b ->
          Result.map string_of_bool
            (Fo_sep.fo_separable_b ~budget:b (Lazy.force mixed_training)));
    };
    {
      c_name = "pebble_game.fok_separable(k=2)";
      reference =
        (fun () ->
          string_of_bool
            (Pebble_game.fok_separable ~k:2 (Lazy.force mixed_training)));
      budgeted =
        (fun b ->
          Result.map string_of_bool
            (Pebble_game.fok_separable_b ~budget:b ~k:2
               (Lazy.force mixed_training)));
    };
    {
      c_name = "simplex.solve";
      reference =
        (fun () ->
          let rows, objective = box_lp 4 in
          show_lp (Simplex.solve ~nvars:4 ~rows ~objective ()));
      budgeted =
        (fun b ->
          let rows, objective = box_lp 4 in
          Result.map show_lp
            (Simplex.solve_b ~budget:b ~nvars:4 ~rows ~objective ()));
    };
    {
      c_name = "nsep.decide(sat)";
      reference = (fun () -> show_nsep (Nsep.decide (Lazy.force linsep_sat)));
      budgeted =
        (fun b ->
          Result.map show_nsep (Nsep.decide_b ~budget:b (Lazy.force linsep_sat)));
    };
    {
      c_name = "nsep.decide(mixed)";
      reference = (fun () -> show_nsep (Nsep.decide (Lazy.force linsep_mixed)));
      budgeted =
        (fun b ->
          Result.map show_nsep
            (Nsep.decide_b ~budget:b (Lazy.force linsep_mixed)));
    };
    {
      c_name = "fsimplex.feasible";
      reference =
        (fun () ->
          let nvars, rows = linsep_lp (Lazy.force linsep_sat) in
          show_fsimplex (Fsimplex.feasible ~nvars ~rows ()));
      budgeted =
        (fun b ->
          let nvars, rows = linsep_lp (Lazy.force linsep_sat) in
          Result.map show_fsimplex
            (Fsimplex.feasible_b ~budget:b ~nvars ~rows ()));
    };
    {
      c_name = "cg.fit";
      reference =
        (fun () ->
          let xs, ys = cg_input (Lazy.force linsep_sat) in
          show_cg (Cg.fit ~xs ~ys ()));
      budgeted =
        (fun b ->
          let xs, ys = cg_input (Lazy.force linsep_sat) in
          Result.map show_cg (Cg.fit_b ~budget:b ~xs ~ys ()));
    };
    {
      c_name = "certify.hyperplane";
      reference =
        (fun () ->
          Certify.verdict_label
            (Certify.hyperplane ~weights:[| 1.0; 1.0; 1.0; 1.0 |]
               (Lazy.force linsep_mixed)));
      budgeted =
        (fun b ->
          Result.map Certify.verdict_label
            (Certify.hyperplane_b ~budget:b ~weights:[| 1.0; 1.0; 1.0; 1.0 |]
               (Lazy.force linsep_mixed)));
    };
  ]

(* --- the chaos loop --------------------------------------------------- *)

let seeds_per_case = 250
let rates = [| 0.5; 0.05; 0.005 |]
let total_interruptions = ref 0

(* One case under [seeds_per_case] chaos seeds. Every abort must be a
   structured resource failure, leave the ambient budget physically
   restored and every registered cache valid, and a rerun on the
   still-warm caches must agree with the fresh-process reference. *)
let run_case case () =
  Runtime_state.reset_all ();
  let fresh = case.reference () in
  let ambient = Budget.installed () in
  for seed = 1 to seeds_per_case do
    let rate = rates.(seed mod Array.length rates) in
    Runtime_state.reset_all ();
    let budget = Budget.make ~chaos:(seed, rate) () in
    (match case.budgeted budget with
    | exception e ->
        chaos_fail ~case:case.c_name ~seed ~rate
          "exception escaped the budgeted entry point: %s"
          (Printexc.to_string e)
    | Ok got ->
        if got <> fresh then
          chaos_fail ~case:case.c_name ~seed ~rate
            "completed run disagrees with reference: %s vs %s" got fresh
    | Error f ->
        incr total_interruptions;
        if not (Guard.is_resource_failure f) then
          chaos_fail ~case:case.c_name ~seed ~rate
            "abort surfaced a non-resource failure: %s"
            (Guard.failure_to_string f);
        (match Runtime_state.validate_all () with
        | [] -> ()
        | bad ->
            chaos_fail ~case:case.c_name ~seed ~rate
              "registered state invalid after abort: %s"
              (String.concat ", " bad));
        (* rerun on the possibly-warm caches, WITHOUT resetting *)
        let again = case.reference () in
        if again <> fresh then
          chaos_fail ~case:case.c_name ~seed ~rate
            "post-abort rerun disagrees with fresh reference: %s vs %s" again
            fresh);
    if not (Budget.installed () == ambient) then
      chaos_fail ~case:case.c_name ~seed ~rate
        "ambient budget not restored after run"
  done

(* The acceptance floor: across all cases and seeds the suite must
   actually interrupt computations, not just watch them finish. *)
let test_interruption_floor () =
  if !total_interruptions < 1000 then
    Alcotest.failf
      "chaos coverage too thin: %d interruption points across %d cases × %d \
       seeds (need >= 1000)"
      !total_interruptions (List.length cases) seeds_per_case

let test_chaos_deterministic () =
  let case = List.hd cases in
  let outcome seed =
    Runtime_state.reset_all ();
    match case.budgeted (Budget.make ~chaos:(seed, 0.05) ()) with
    | Ok s -> "ok " ^ s
    | Error f -> "error " ^ Guard.failure_to_string f
  in
  for seed = 1 to 50 do
    check string_c "same seed, same outcome" (outcome seed) (outcome seed)
  done

(* --- Isolate: hard process isolation ---------------------------------- *)

let test_isolate_ok () =
  match Isolate.run ~timeout:30.0 (fun () -> 21 * 2) with
  | Ok 42 -> ()
  | Ok n -> Alcotest.failf "expected Ok 42, got Ok %d" n
  | Error f -> Alcotest.failf "unexpected %s" (Guard.failure_to_string f)

let test_isolate_solver_error () =
  match Isolate.run ~timeout:30.0 (fun () -> invalid_arg "nope") with
  | Error (Guard.Solver_error "nope") -> ()
  | Error f -> Alcotest.failf "unexpected %s" (Guard.failure_to_string f)
  | Ok () -> Alcotest.fail "expected Solver_error"

(* The point of [Isolate]: a worker that never ticks cannot be stopped
   by the cooperative budget, but the SIGKILL deadline still bounds
   it. *)
let test_isolate_kills_non_ticking_loop () =
  let t0 = Unix.gettimeofday () in
  let r =
    Isolate.run ~timeout:0.2 ~grace:0.3 (fun () ->
        while true do
          ()
        done)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match r with
  | Error Guard.Timeout -> ()
  | Error f -> Alcotest.failf "unexpected %s" (Guard.failure_to_string f)
  | Ok () -> Alcotest.fail "expected Timeout");
  check bool_c "killed within deadline + grace + slop" true (elapsed < 5.0)

let test_isolate_contains_stack_overflow () =
  let r =
    Isolate.run ~timeout:30.0 (fun () ->
        let rec deep n = if n <= 0 then 0 else 1 + deep (n - 1) in
        deep 1_000_000_000)
  in
  match r with
  | Error (Guard.Limit_exceeded _) -> ()
  | Error f -> Alcotest.failf "unexpected %s" (Guard.failure_to_string f)
  | Ok n -> Alcotest.failf "expected stack containment, got Ok %d" n

(* A structured failure produced inside the worker survives the
   marshaling round-trip over the pipe. *)
let test_isolate_failure_round_trip () =
  let budget = Budget.make ~fuel:5 ~timeout:30.0 () in
  match
    Isolate.run ~budget (fun () ->
        for _ = 1 to 100 do
          Budget.tick ~what:"isolate loop" ()
        done)
  with
  | Error (Guard.Fuel_exhausted "isolate loop") -> ()
  | Error f -> Alcotest.failf "unexpected %s" (Guard.failure_to_string f)
  | Ok () -> Alcotest.fail "expected fuel exhaustion through the pipe"

let test_isolate_validation () =
  (match Isolate.run ~timeout:(-1.0) (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative timeout must be rejected");
  match Isolate.run ~timeout:1.0 ~grace:(-0.5) (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative grace must be rejected"

(* --- Guard.retrying: escalation policy -------------------------------- *)

let hundred_ticks () =
  for _ = 1 to 100 do
    Budget.tick ~what:"retry loop" ()
  done

let test_retrying_escalates_to_success () =
  (* fuel 8 -> 80 -> 800: the third attempt affords the 100 ticks *)
  let r = Guard.retrying ~attempts:3 ~factor:10.0 Guard.runner in
  match r.Guard.run (Budget.make ~fuel:8 ()) hundred_ticks with
  | Ok () -> ()
  | Error f -> Alcotest.failf "unexpected %s" (Guard.failure_to_string f)

let test_retrying_exhausts_attempts () =
  let r = Guard.retrying ~attempts:2 ~factor:10.0 Guard.runner in
  match r.Guard.run (Budget.make ~fuel:8 ()) hundred_ticks with
  | Error (Guard.Fuel_exhausted _) -> ()
  | Error f -> Alcotest.failf "unexpected %s" (Guard.failure_to_string f)
  | Ok () -> Alcotest.fail "two attempts (8, 80 fuel) must not suffice"

let test_retrying_never_retries_solver_errors () =
  let calls = ref 0 in
  let r = Guard.retrying ~attempts:5 Guard.runner in
  (match
     r.Guard.run (Budget.make ~fuel:1000 ()) (fun () ->
         incr calls;
         invalid_arg "broken input")
   with
  | Error (Guard.Solver_error _) -> ()
  | _ -> Alcotest.fail "expected Solver_error");
  check int_c "solver errors are not retried" 1 !calls

let test_retrying_timeout_needs_extension () =
  let calls = ref 0 in
  let spin () =
    incr calls;
    while true do
      Budget.tick ()
    done
  in
  let no_ext = Guard.retrying ~attempts:3 Guard.runner in
  (match no_ext.Guard.run (Budget.make ~timeout:0.0 ()) spin with
  | Error Guard.Timeout -> ()
  | _ -> Alcotest.fail "expected Timeout");
  check int_c "timeouts not retried without ~extend_deadline" 1 !calls

(* --- the ladder through an isolating runner --------------------------- *)

let test_ladder_through_isolate () =
  let t = Lazy.force mixed_training in
  let r =
    Cq_sep.decide_with_fallback
      ~budget:(Budget.make ~fuel:10_000_000 ~timeout:60.0 ())
      ~runner:(Isolate.runner ()) t
  in
  (match r.Cq_sep.provenance with
  | Cq_sep.Exact -> ()
  | p ->
      Alcotest.failf "expected Exact through Isolate, got %s"
        (Format.asprintf "%a" Cq_sep.pp_provenance p));
  check bool_c "isolated answer matches in-process decision" true
    (r.Cq_sep.answer = Some (Cq_sep.separable t))

(* --- Runtime_state registry ------------------------------------------- *)

let test_runtime_state_registry () =
  let names = Runtime_state.names () in
  List.iter
    (fun n ->
      check bool_c (n ^ " registered") true (List.mem n names))
    [
      "cq_sep.chain_cache"; "cq_decomp.ghw_cache"; "struct_iso.intern";
      "nsep.tier"; "nsep.stats"; "shardexec.stats"; "shardexec.journal";
    ];
  check bool_c "validate_all clean at rest" true
    (Runtime_state.validate_all () = [])

let test_runtime_state_duplicate_rejected () =
  Runtime_state.register ~name:"test_chaos.dummy" (fun () -> ());
  match Runtime_state.register ~name:"test_chaos.dummy" (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate registration must be rejected"

let () =
  Alcotest.run "chaos"
    [
      ( "seeded interruption",
        List.map
          (fun case -> Alcotest.test_case case.c_name `Slow (run_case case))
          cases
        @ [
            Alcotest.test_case "coverage floor (>= 1000 interruptions)" `Slow
              test_interruption_floor;
            Alcotest.test_case "chaos is deterministic per seed" `Quick
              test_chaos_deterministic;
          ] );
      ( "isolate",
        [
          Alcotest.test_case "round-trips results" `Quick test_isolate_ok;
          Alcotest.test_case "round-trips failures" `Quick
            test_isolate_failure_round_trip;
          Alcotest.test_case "maps worker exceptions" `Quick
            test_isolate_solver_error;
          Alcotest.test_case "kills a non-ticking loop" `Slow
            test_isolate_kills_non_ticking_loop;
          Alcotest.test_case "contains stack overflow" `Slow
            test_isolate_contains_stack_overflow;
          Alcotest.test_case "rejects bad deadlines" `Quick
            test_isolate_validation;
        ] );
      ( "retrying",
        [
          Alcotest.test_case "escalation reaches success" `Quick
            test_retrying_escalates_to_success;
          Alcotest.test_case "bounded attempts" `Quick
            test_retrying_exhausts_attempts;
          Alcotest.test_case "solver errors final" `Quick
            test_retrying_never_retries_solver_errors;
          Alcotest.test_case "timeout retry needs extension" `Quick
            test_retrying_timeout_needs_extension;
        ] );
      ( "integration",
        [
          Alcotest.test_case "ladder through Isolate.runner" `Slow
            test_ladder_through_isolate;
          Alcotest.test_case "registry names" `Quick test_runtime_state_registry;
          Alcotest.test_case "registry duplicates" `Quick
            test_runtime_state_duplicate_rejected;
        ] );
    ]
