(* Tests for the numeric separation tier: float solvers (Cg,
   Fsimplex), the exact Certify layer, and the Nsep ladder.

   The headline property is agreement: over a large seeded family of
   planted / random / noisy instances, the float-first pipeline must
   return the same SEP/UNSEP verdict as the exact solver on every
   single instance — the certification spine makes this an invariant,
   not a statistic. *)

open Test_util

let ex v l = { Linsep.vec = Array.of_list v; label = l }
let pos = Labeling.Pos
let neg = Labeling.Neg

let and_data =
  [ ex [ 1; 1 ] pos; ex [ 1; -1 ] neg; ex [ -1; 1 ] neg; ex [ -1; -1 ] neg ]

let xor_data =
  [ ex [ 1; 1 ] pos; ex [ -1; -1 ] pos; ex [ 1; -1 ] neg; ex [ -1; 1 ] neg ]

(* --- Cg -------------------------------------------------------------- *)

let test_cg_fits_and () =
  let xs = [| [| 1.; 1. |]; [| 1.; -1. |]; [| -1.; 1. |]; [| -1.; -1. |] |] in
  let ys = [| 1.; -1.; -1.; -1. |] in
  (* Real regularization keeps the separable-instance optimum finite;
     with near-zero l2 the weights diverge and convergence is moot. *)
  let config = { Cg.default_config with l2 = 1e-2 } in
  let f = Cg.fit ~config ~xs ~ys () in
  (* The fitted hyperplane must put the positive row above every
     negative row. *)
  let margin x =
    f.Cg.bias +. (f.Cg.weights.(0) *. x.(0)) +. (f.Cg.weights.(1) *. x.(1))
  in
  Array.iteri
    (fun i x ->
      check bool_c "sign matches label" true (margin x *. ys.(i) > 0.))
    xs

let test_cg_l1_support () =
  (* Labels equal coordinate 0; coordinates 1 and 2 are exactly
     uncorrelated with the labels, so the smoothed-l1 path should
     shrink them out of the support. *)
  let xs =
    [|
      [| 1.; 1.; 1. |]; [| 1.; 1.; -1. |]; [| -1.; -1.; -1. |];
      [| -1.; 1.; 1. |]; [| 1.; -1.; 1. |]; [| -1.; 1.; 1. |];
    |]
  in
  let ys = [| 1.; 1.; -1.; -1.; 1.; -1. |] in
  let config = { Cg.default_config with l1 = 0.1; max_iters = 300 } in
  let f = Cg.fit ~config ~xs ~ys () in
  check (Alcotest.list int_c) "support is the planted coordinate" [ 0 ]
    (Cg.support ~threshold:0.05 f)

let test_cg_validation () =
  let bad () = ignore (Cg.fit ~xs:[| [| 1. |] |] ~ys:[| 0.5 |] ()) in
  (match bad () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "labels outside {±1} must raise");
  match Cg.fit ~xs:[| [| 1. |]; [| 1.; -1. |] |] ~ys:[| 1.; -1. |] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ragged rows must raise"

(* --- Fsimplex -------------------------------------------------------- *)

let sep_rows examples =
  (* The separation LP encoding over (w, w0): positive rows
     (vec,-1)·x ≥ 0, negative rows ≤ -1. *)
  let n = Array.length (List.hd examples).Linsep.vec in
  let rows =
    List.map
      (fun e ->
        let coeffs =
          Array.init (n + 1) (fun i ->
              if i < n then float_of_int e.Linsep.vec.(i) else -1.0)
        in
        match e.Linsep.label with
        | Labeling.Pos -> { Fsimplex.coeffs; op = Simplex.Ge; rhs = 0.0 }
        | Labeling.Neg -> { Fsimplex.coeffs; op = Simplex.Le; rhs = -1.0 })
      examples
  in
  (n + 1, rows)

let test_fsimplex_feasible () =
  let nvars, rows = sep_rows and_data in
  match Fsimplex.feasible ~nvars ~rows () with
  | Fsimplex.Feasible (x, q) ->
      check int_c "point length" nvars (Array.length x);
      check bool_c "well conditioned" true (Fsimplex.well_conditioned q)
  | Fsimplex.Infeasible _ -> Alcotest.fail "AND system is feasible"

let test_fsimplex_infeasible () =
  let nvars, rows = sep_rows xor_data in
  match Fsimplex.feasible ~nvars ~rows () with
  | Fsimplex.Infeasible (mu, _) ->
      check int_c "one multiplier per row" (List.length rows)
        (Array.length mu)
  | Fsimplex.Feasible _ -> Alcotest.fail "XOR system is infeasible"

let test_fsimplex_validation () =
  (match Fsimplex.feasible ~nvars:2 ~rows:[ { Fsimplex.coeffs = [| 1.0 |]; op = Simplex.Ge; rhs = 0.0 } ] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "row length mismatch must raise");
  match Fsimplex.feasible ~nvars:1 ~rows:[ { Fsimplex.coeffs = [| Float.nan |]; op = Simplex.Ge; rhs = 0.0 } ] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-finite coefficient must raise"

(* --- Certify --------------------------------------------------------- *)

let test_certify_hyperplane () =
  (* AND is separated by w = (1,1) with the right threshold; Certify
     must find that threshold itself. *)
  (match Certify.hyperplane ~weights:[| 1.0; 1.0 |] and_data with
  | Certify.Certified c ->
      List.iter
        (fun e ->
          check bool_c "classifies" true
            (Linsep.classify c e.Linsep.vec = e.Linsep.label))
        and_data
  | v -> Alcotest.fail ("AND direction must certify, got " ^ Certify.verdict_label v));
  (* A direction that is right only up to round-off must still
     certify: the exact threshold re-derivation absorbs the error. *)
  (match Certify.hyperplane ~weights:[| 1.0 +. 1e-13; 1.0 -. 1e-13 |] and_data with
  | Certify.Certified _ -> ()
  | v -> Alcotest.fail ("perturbed direction must certify, got " ^ Certify.verdict_label v));
  (* No direction separates XOR. *)
  (match Certify.hyperplane ~weights:[| 1.0; 1.0 |] xor_data with
  | Certify.Refuted _ -> ()
  | v -> Alcotest.fail ("XOR must refute, got " ^ Certify.verdict_label v));
  match Certify.hyperplane ~weights:[| Float.nan; 0.0 |] and_data with
  | Certify.Inconclusive _ -> ()
  | v -> Alcotest.fail ("nan weights must be inconclusive, got " ^ Certify.verdict_label v)

let test_certify_farkas () =
  (* Drive the real pipeline: float simplex on XOR, then the exact
     Farkas reconstruction from its multiplier candidate. *)
  let nvars, rows = sep_rows xor_data in
  (match Fsimplex.feasible ~nvars ~rows () with
  | Fsimplex.Infeasible (mu, _) -> (
      match Certify.farkas ~mu xor_data with
      | Certify.Certified () -> ()
      | v ->
          Alcotest.fail
            ("XOR farkas must certify, got " ^ Certify.verdict_label v))
  | Fsimplex.Feasible _ -> Alcotest.fail "XOR system is infeasible");
  (* A zero/degenerate multiplier vector cannot prove anything. *)
  match Certify.farkas ~mu:(Array.make 4 0.0) xor_data with
  | Certify.Inconclusive _ -> ()
  | v -> Alcotest.fail ("zero mu must be inconclusive, got " ^ Certify.verdict_label v)

(* --- Nsep ------------------------------------------------------------ *)

let test_decide_basics () =
  (match Nsep.decide and_data with
  | { Nsep.verdict = Nsep.Sep c; _ } ->
      List.iter
        (fun e ->
          check bool_c "classifies" true
            (Linsep.classify c e.Linsep.vec = e.Linsep.label))
        and_data
  | _ -> Alcotest.fail "AND must separate");
  (match Nsep.decide xor_data with
  | { Nsep.verdict = Nsep.Unsep; _ } -> ()
  | _ -> Alcotest.fail "XOR must not separate");
  (* Precheck shapes. *)
  (match Nsep.decide [] with
  | { Nsep.verdict = Nsep.Sep _; provenance = Nsep.Certified_precheck } -> ()
  | _ -> Alcotest.fail "empty collection is trivially separable");
  (match Nsep.decide [ ex [ 1 ] pos; ex [ 1 ] neg ] with
  | { Nsep.verdict = Nsep.Unsep; provenance = Nsep.Certified_precheck } -> ()
  | _ -> Alcotest.fail "inconsistent collection precheck");
  match Nsep.decide [ ex [ 1 ] neg; ex [ -1 ] neg ] with
  | { Nsep.verdict = Nsep.Sep _; provenance = Nsep.Certified_precheck } -> ()
  | _ -> Alcotest.fail "one-sided collection precheck"

let test_decide_tiers () =
  (match Nsep.decide ~tier:Nsep.Exact_only and_data with
  | { Nsep.verdict = Nsep.Sep _; provenance = Nsep.Exact_solve _ } -> ()
  | _ -> Alcotest.fail "exact-only must route to the exact solver");
  (* escalate:false can say Unknown but never a wrong verdict; on this
     easy instance the numeric tier should just certify. *)
  match Nsep.decide ~tier:Nsep.Numeric ~escalate:false and_data with
  | { Nsep.verdict = Nsep.Sep _; _ } -> ()
  | { Nsep.verdict = Nsep.Unknown _; _ } -> ()
  | _ -> Alcotest.fail "numeric tier gave a wrong verdict"

let test_decide_stats () =
  Runtime_state.reset_all ();
  ignore (Nsep.decide and_data);
  ignore (Nsep.decide xor_data);
  ignore (Nsep.decide ~tier:Nsep.Exact_only and_data);
  let s = Nsep.stats () in
  check int_c "decided" 3 s.Nsep.decided;
  check int_c "sum matches" s.Nsep.decided
    (s.Nsep.certified_cg + s.Nsep.certified_simplex
    + s.Nsep.certified_precheck + s.Nsep.exact_solves + s.Nsep.uncertified);
  check bool_c "escalations bounded" true
    (s.Nsep.escalations <= s.Nsep.exact_solves);
  Runtime_state.reset_all ();
  check int_c "reset" 0 (Nsep.stats ()).Nsep.decided

let test_decide_with_fallback () =
  (match Nsep.decide_with_fallback and_data with
  | Ok { Nsep.verdict = Nsep.Sep _; _ } -> ()
  | Ok _ -> Alcotest.fail "ladder returned a wrong verdict"
  | Error _ -> Alcotest.fail "ladder must not fail unbudgeted");
  (* A starved deadline surfaces as a guard failure, not a crash. *)
  match
    Nsep.decide_with_fallback
      ~budget:(Budget.make ~fuel:5 ())
      (Planted.linsep_instance ~seed:0 ~dim:8 ~n:40)
  with
  | Error f -> check bool_c "resource failure" true (Guard.is_resource_failure f)
  | Ok _ -> Alcotest.fail "5 ticks cannot decide a 40-row instance"

(* The agreement property: the certified numeric pipeline and the
   exact solver return the identical SEP/UNSEP bit on every instance
   of the seeded family (planted, random, and noisy regimes all
   exercised via seed mod 3). *)
let prop_numeric_agrees_with_exact =
  QCheck.Test.make ~name:"nsep numeric = exact on 1000 seeded instances"
    ~count:1000
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 1_000_000))
    (fun seed ->
      let dim = 2 + (seed mod 5) in
      let n = 4 + (seed mod 23) in
      let examples = Planted.linsep_instance ~seed ~dim ~n in
      let exact = Linsep.is_separable examples in
      let numeric =
        match (Nsep.decide ~tier:Nsep.Numeric examples).Nsep.verdict with
        | Nsep.Sep c ->
            (* A Sep must come with a witness that actually separates. *)
            List.for_all
              (fun e -> Linsep.classify c e.Linsep.vec = e.Linsep.label)
              examples
            || QCheck.Test.fail_report "Sep witness misclassifies"
        | Nsep.Unsep -> false
        | Nsep.Unknown r -> QCheck.Test.fail_report ("Unknown escaped: " ^ r)
      in
      numeric = exact)

let () =
  Alcotest.run "nsep"
    [
      ( "cg",
        [
          Alcotest.test_case "fits AND" `Quick test_cg_fits_and;
          Alcotest.test_case "l1 support recovery" `Quick test_cg_l1_support;
          Alcotest.test_case "input validation" `Quick test_cg_validation;
        ] );
      ( "fsimplex",
        [
          Alcotest.test_case "feasible point" `Quick test_fsimplex_feasible;
          Alcotest.test_case "farkas candidate" `Quick test_fsimplex_infeasible;
          Alcotest.test_case "input validation" `Quick test_fsimplex_validation;
        ] );
      ( "certify",
        [
          Alcotest.test_case "hyperplane" `Quick test_certify_hyperplane;
          Alcotest.test_case "farkas" `Quick test_certify_farkas;
        ] );
      ( "nsep",
        [
          Alcotest.test_case "decide basics" `Quick test_decide_basics;
          Alcotest.test_case "tiers" `Quick test_decide_tiers;
          Alcotest.test_case "stats counters" `Quick test_decide_stats;
          Alcotest.test_case "fallback ladder" `Quick test_decide_with_fallback;
          qcheck prop_numeric_agrees_with_exact;
        ] );
    ]
