(* The typed pass end-to-end: build the mention graph from the
   tf_fixtures cmts and check that every typed rule fires (and stays
   quiet) exactly where the fixtures say. The load-bearing case is the
   regression lock: a cross-module non-ticking solver loop that the
   Parsetree R1 passes must be caught by R1', and the Parsetree R1's
   cross-module false positive must be gone. *)

let check = Alcotest.check
let keys_c = Alcotest.(list (pair string string))

let fixture_dir = "typed_fixtures"

let all_ml =
  [ "tf_cross_helper.ml"; "tf_cross_loop.ml"; "tf_cross_loop_suppressed.ml";
    "tf_cross_tick.ml"; "tf_scc.ml"; "tf_r6_random.ml"; "tf_r6_clock.ml";
    "tf_r6_floatfold.ml"; "tf_r6_suppressed.ml"; "tf_r7_closure.ml";
    "tf_r7_ok.ml"; "tf_r7_suppressed.ml"; "tf_drift.ml";
    "tf_numeric_drift.ml" ]

let all_mli =
  [ "tf_r6_random.mli"; "tf_r6_clock.mli"; "tf_r6_floatfold.mli";
    "tf_drift.mli"; "tf_numeric_drift.mli" ]

let units =
  lazy
    (Lint_cmt.load_units ~root:"." ~rel_dir:fixture_dir
       ~lib_name:"tf_fixtures" ~ml:all_ml ~mli:all_mli)

let sources =
  lazy
    (List.filter_map
       (fun (u : Lint_cmt.unit_info) ->
         match (u.u_impl, u.u_ml) with
         | Some impl, Some file ->
             Some
               {
                 Typed_rules.s_mod = u.u_module;
                 s_file = file;
                 s_mli = u.u_mli;
                 s_solver = true;
                 s_impl = impl;
                 s_intf = u.u_intf;
               }
         | _ -> None)
       (Lazy.force units))

let graph =
  lazy
    (Callgraph.build
       (List.map
          (fun (s : Typed_rules.source) -> (s.Typed_rules.s_mod, s.s_impl))
          (Lazy.force sources)))

let typed_findings =
  lazy (Typed_rules.run (Lazy.force graph) (Lazy.force sources))

let fixture f = Filename.concat fixture_dir f

let findings_for file =
  List.filter
    (fun (f : Lint_finding.t) -> f.file = fixture file)
    (Lazy.force typed_findings)

let rule_keys findings =
  List.sort compare
    (List.map
       (fun (f : Lint_finding.t) ->
         (Lint_finding.rule_to_string f.rule, f.key))
       findings)

let load name =
  match Lint_source.load (fixture name) with
  | Ok src -> src
  | Error msg -> Alcotest.failf "fixture %s: %s" name msg

let parsetree_r1 name =
  Lint_driver.lint_source ~rules:[ Lint_finding.R1 ] ~solver:true (load name)

(* Apply the file's own suppression directives, the way the driver
   does, and return (surviving keys, suppressed count). *)
let after_suppression name =
  let survivors, n = Lint_source.apply (load name) (findings_for name) in
  (rule_keys survivors, n)

let loop_node m =
  let g = Lazy.force graph in
  match
    List.find_opt
      (fun (n : Callgraph.node) ->
        n.modname = m
        && match n.kind with Callgraph.Loop _ -> true | _ -> false)
      (Callgraph.nodes g)
  with
  | Some n -> n
  | None -> Alcotest.failf "no loop node in %s" m

let def_id name =
  match Callgraph.find_global (Lazy.force graph) name with
  | Some id -> id
  | None -> Alcotest.failf "no definition named %s in the graph" name

(* --- loading ---------------------------------------------------------- *)

let test_cmts_load () =
  check
    Alcotest.(list string)
    "every fixture cmt is readable" []
    (Lint_cmt.degraded_sources (Lazy.force units))

let test_missing_cmt_degrades () =
  let units =
    Lint_cmt.load_units ~root:"." ~rel_dir:fixture_dir
      ~lib_name:"no_such_lib" ~ml:[ "tf_scc.ml" ] ~mli:[]
  in
  check
    Alcotest.(list string)
    "a missing objs dir degrades the module, not the run"
    [ fixture "tf_scc.ml" ]
    (Lint_cmt.degraded_sources units);
  check Alcotest.bool "read_impl on a missing file is an Error" true
    (Result.is_error (Lint_cmt.read_impl (fixture "absent.cmt")))

(* --- graph shape ------------------------------------------------------ *)

let test_cross_module_resolution () =
  let g = Lazy.force graph in
  let loop = loop_node "Tf_cross_loop" in
  check Alcotest.bool
    "the shadowed `step` mention resolves to Tf_cross_helper.step" true
    (Callgraph.reaches g ~target:"Tf_cross_helper.step" loop.Callgraph.id);
  check Alcotest.bool "and that path never reaches Budget.tick" false
    (Callgraph.reaches g ~target:"Budget.tick" loop.Callgraph.id);
  let ticking = loop_node "Tf_cross_tick" in
  check Alcotest.bool "the Ldot-ticking loop reaches Budget.tick" true
    (Callgraph.reaches g ~target:"Budget.tick" ticking.Callgraph.id)

let test_scc_detection () =
  let g = Lazy.force graph in
  check Alcotest.bool "mutual recursion is cyclic (ping)" true
    (Callgraph.cyclic g (def_id "Tf_scc.ping"));
  check Alcotest.bool "mutual recursion is cyclic (pong)" true
    (Callgraph.cyclic g (def_id "Tf_scc.pong"));
  check Alcotest.bool "direct recursion is cyclic (down)" true
    (Callgraph.cyclic g (def_id "Tf_scc.down"));
  check Alcotest.bool "a straight-line helper is not" false
    (Callgraph.cyclic g (def_id "Tf_cross_helper.step"))

(* --- R1' -------------------------------------------------------------- *)

let test_r1_regression_lock () =
  (* The acceptance criterion: the shadowing fixture passes the
     Parsetree R1 (false negative) and is caught by the typed pass. *)
  check keys_c "Parsetree R1 credits the shadowed name" []
    (rule_keys (parsetree_r1 "tf_cross_loop.ml"));
  check keys_c "R1' resolves it and flags the loop"
    [ ("R1", "while@drain") ]
    (rule_keys (findings_for "tf_cross_loop.ml"))

let test_r1_cross_module_tick_clean () =
  (* The dual: the Parsetree R1 cannot credit an Ldot tick (false
     positive); the typed pass follows the call. *)
  check keys_c "Parsetree R1 false-positives on the Ldot tick"
    [ ("R1", "while@drain") ]
    (rule_keys (parsetree_r1 "tf_cross_tick.ml"));
  check keys_c "R1' follows the cross-module call" []
    (rule_keys (findings_for "tf_cross_tick.ml"))

let test_r1_mutual_recursion () =
  check keys_c "non-ticking mutual recursion flagged once per binding"
    [ ("R1", "rec:ping"); ("R1", "rec:pong") ]
    (rule_keys (findings_for "tf_scc.ml"))

let test_r1_suppression () =
  check
    Alcotest.(pair keys_c int)
    "a reasoned directive silences the typed finding" ([], 1)
    (after_suppression "tf_cross_loop_suppressed.ml")

(* --- R6 --------------------------------------------------------------- *)

let test_r6_random_reachable () =
  check keys_c "Random.int behind a private helper, from the export"
    [ ("R6", "det:Random.int@pick") ]
    (rule_keys (findings_for "tf_r6_random.ml"))

let test_r6_clock_exempt () =
  check keys_c "Budget.Clock is the sanctioned time source" []
    (rule_keys (findings_for "tf_r6_clock.ml"))

let test_r6_float_fold () =
  (* [record] writes the unregistered top-level [tbl], so R9 fires
     alongside R6 — the same fixture doubles as an R9 positive. *)
  check keys_c "float accumulation over Hashtbl.fold, from the export"
    [ ("R6", "det:Hashtbl.fold@total"); ("R9", "effect:record") ]
    (rule_keys (findings_for "tf_r6_floatfold.ml"))

let test_r6_suppression () =
  check
    Alcotest.(pair keys_c int)
    "a reasoned directive silences R6" ([], 1)
    (after_suppression "tf_r6_suppressed.ml")

(* --- R7 --------------------------------------------------------------- *)

let test_r7_closure_caught () =
  check keys_c "closure and Seq results across the isolate boundary"
    [ ("R7", "marshal:smuggle_closure"); ("R7", "marshal:smuggle_seq") ]
    (rule_keys (findings_for "tf_r7_closure.ml"))

let test_r7_first_order_clean () =
  check keys_c "first-order results marshal fine" []
    (rule_keys (findings_for "tf_r7_ok.ml"))

let test_r7_suppression () =
  check
    Alcotest.(pair keys_c int)
    "a reasoned directive silences R7" ([], 1)
    (after_suppression "tf_r7_suppressed.ml")

(* --- R8 --------------------------------------------------------------- *)

let test_r8_drift () =
  check keys_c "drifted _b twins flagged, the well-formed pair is not"
    [ ("R8", "drift:decide_b"); ("R8", "drift:rank_b") ]
    (rule_keys (findings_for "tf_drift.mli"))

let test_r8_numeric_drift () =
  check keys_c "numeric spine: refine_b/scale_b drifted, solve_b clean"
    [ ("R8", "drift:refine_b"); ("R8", "drift:scale_b") ]
    (rule_keys (findings_for "tf_numeric_drift.mli"));
  let survivors, n = after_suppression "tf_numeric_drift.mli" in
  check keys_c "the reasoned directive eats only scale_b"
    [ ("R8", "drift:refine_b") ]
    survivors;
  check Alcotest.int "one suppression" 1 n

let test_r8_suppression () =
  let survivors, n = after_suppression "tf_drift.mli" in
  check keys_c "only the unsuppressed drift survives"
    [ ("R8", "drift:decide_b") ]
    survivors;
  check Alcotest.int "the directive ate exactly one finding" 1 n

let () =
  Alcotest.run "callgraph"
    [
      ( "loading",
        [
          Alcotest.test_case "fixture cmts load" `Quick test_cmts_load;
          Alcotest.test_case "missing cmt degrades" `Quick
            test_missing_cmt_degrades;
        ] );
      ( "graph",
        [
          Alcotest.test_case "cross-module resolution" `Quick
            test_cross_module_resolution;
          Alcotest.test_case "scc detection" `Quick test_scc_detection;
        ] );
      ( "r1'",
        [
          Alcotest.test_case "regression lock" `Quick test_r1_regression_lock;
          Alcotest.test_case "cross-module tick clean" `Quick
            test_r1_cross_module_tick_clean;
          Alcotest.test_case "mutual recursion" `Quick
            test_r1_mutual_recursion;
          Alcotest.test_case "suppression" `Quick test_r1_suppression;
        ] );
      ( "r6",
        [
          Alcotest.test_case "random reachable" `Quick
            test_r6_random_reachable;
          Alcotest.test_case "clock exempt" `Quick test_r6_clock_exempt;
          Alcotest.test_case "float fold" `Quick test_r6_float_fold;
          Alcotest.test_case "suppression" `Quick test_r6_suppression;
        ] );
      ( "r7",
        [
          Alcotest.test_case "closure caught" `Quick test_r7_closure_caught;
          Alcotest.test_case "first-order clean" `Quick
            test_r7_first_order_clean;
          Alcotest.test_case "suppression" `Quick test_r7_suppression;
        ] );
      ( "r8",
        [
          Alcotest.test_case "drift" `Quick test_r8_drift;
          Alcotest.test_case "numeric drift" `Quick test_r8_numeric_drift;
          Alcotest.test_case "suppression" `Quick test_r8_suppression;
        ] );
    ]
