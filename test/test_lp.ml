(* Tests for the exact rational simplex. *)

open Test_util

let r coeffs op rhs =
  {
    Simplex.coeffs = Array.of_list (List.map Rat.of_int coeffs);
    op;
    rhs = Rat.of_int rhs;
  }

let obj l = Array.of_list (List.map Rat.of_int l)

let test_optimal_corner () =
  match
    Simplex.solve ~nvars:2
      ~rows:
        [
          r [ 1; 1 ] Simplex.Le 3;
          r [ 1; 0 ] Simplex.Le 2;
          r [ 0; 1 ] Simplex.Le 2;
          r [ 1; 0 ] Simplex.Ge 0;
          r [ 0; 1 ] Simplex.Ge 0;
        ]
      ~objective:(obj [ -1; -1 ]) ()
  with
  | Simplex.Optimal (x, v) ->
      check bool_c "objective -3" true (Rat.equal v (Rat.of_int (-3)));
      check bool_c "on boundary" true
        (Rat.equal (Rat.add x.(0) x.(1)) (Rat.of_int 3))
  | _ -> Alcotest.fail "expected optimal"

let test_infeasible () =
  match
    Simplex.solve ~nvars:1
      ~rows:[ r [ 1 ] Simplex.Ge 5; r [ 1 ] Simplex.Le 3 ]
      ~objective:(obj [ 0 ]) ()
  with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  match
    Simplex.solve ~nvars:1 ~rows:[ r [ 1 ] Simplex.Ge 0 ]
      ~objective:(obj [ -1 ]) ()
  with
  | Simplex.Unbounded _ -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_equality_rows () =
  match
    Simplex.solve ~nvars:2
      ~rows:[ r [ 1; 1 ] Simplex.Eq 4; r [ 1; -1 ] Simplex.Eq 2 ]
      ~objective:(obj [ 0; 0 ]) ()
  with
  | Simplex.Optimal (x, _) ->
      check bool_c "x=3" true (Rat.equal x.(0) (Rat.of_int 3));
      check bool_c "y=1" true (Rat.equal x.(1) (Rat.of_int 1))
  | _ -> Alcotest.fail "expected optimal"

let test_free_variables () =
  (* minimize x subject to x >= -7: negative optimum requires the
     free-variable split to work *)
  match
    Simplex.solve ~nvars:1
      ~rows:[ r [ 1 ] Simplex.Ge (-7) ]
      ~objective:(obj [ 1 ]) ()
  with
  | Simplex.Optimal (x, v) ->
      check bool_c "x=-7" true (Rat.equal x.(0) (Rat.of_int (-7)));
      check bool_c "obj=-7" true (Rat.equal v (Rat.of_int (-7)))
  | _ -> Alcotest.fail "expected optimal"

let test_degenerate_redundant () =
  (* redundant equality rows: phase I leaves an artificial basic in a
     zero row; must still solve *)
  match
    Simplex.solve ~nvars:2
      ~rows:
        [
          r [ 1; 1 ] Simplex.Eq 2;
          r [ 2; 2 ] Simplex.Eq 4;
          r [ 1; 0 ] Simplex.Ge 0;
        ]
      ~objective:(obj [ 1; 0 ]) ()
  with
  | Simplex.Optimal (x, v) ->
      check bool_c "solution valid" true
        (Simplex.check_solution
           ~rows:[ r [ 1; 1 ] Simplex.Eq 2; r [ 2; 2 ] Simplex.Eq 4 ]
           x);
      check bool_c "min x = 0" true (Rat.is_zero v)
  | _ -> Alcotest.fail "expected optimal"

let test_fractional () =
  (* 2x = 1 -> x = 1/2 exactly *)
  match Simplex.feasible ~nvars:1 ~rows:[ r [ 2 ] Simplex.Eq 1 ] () with
  | Some x -> check bool_c "exact 1/2" true (Rat.equal x.(0) (Rat.of_ints 1 2))
  | None -> Alcotest.fail "expected feasible"

(* Random LPs built to be feasible by construction: pick a witness x0,
   make every row satisfied by x0. The solver must find some feasible
   point and, when minimizing, reach an objective no worse than x0's. *)
let lp_case =
  let open QCheck.Gen in
  let coeff = int_range (-4) 4 in
  let gen =
    int_range 1 3 >>= fun nvars ->
    int_range 1 5 >>= fun nrows ->
    list_size (return nvars) coeff >>= fun x0 ->
    list_size (return nrows) (list_size (return nvars) coeff) >>= fun rows ->
    list_size (return nrows) (int_range 0 2) >>= fun ops ->
    list_size (return nvars) coeff >>= fun objective ->
    return (nvars, x0, rows, ops, objective)
  in
  QCheck.make gen

let prop_feasible_by_construction =
  QCheck.Test.make ~name:"witnessed LPs are solved and verified" ~count:200
    lp_case (fun (nvars, x0, rows, ops, objective) ->
      let dot c = List.fold_left2 (fun acc a b -> acc + (a * b)) 0 c x0 in
      let rows =
        List.map2
          (fun c op ->
            let v = dot c in
            match op with
            | 0 -> r c Simplex.Le v
            | 1 -> r c Simplex.Ge v
            | _ -> r c Simplex.Eq v)
          rows ops
      in
      match
        Simplex.solve ~nvars ~rows ~objective:(obj objective) ()
      with
      | Simplex.Infeasible -> false
      | Simplex.Unbounded x -> Simplex.check_solution ~rows x
      | Simplex.Optimal (x, v) ->
          let obj_at_x0 =
            List.fold_left2 (fun acc a b -> acc + (a * b)) 0 objective x0
          in
          Simplex.check_solution ~rows x
          && Rat.compare v (Rat.of_int obj_at_x0) <= 0)

let prop_optimal_is_exact_on_box =
  QCheck.Test.make ~name:"box LPs: optimum equals corner value" ~count:100
    (QCheck.pair (QCheck.int_range (-5) 5) (QCheck.int_range (-5) 5))
    (fun (a, b) ->
      (* minimize a*x + b*y over the box [0,1]^2: optimum = min(a,0) + min(b,0) *)
      match
        Simplex.solve ~nvars:2
          ~rows:
            [
              r [ 1; 0 ] Simplex.Ge 0;
              r [ 1; 0 ] Simplex.Le 1;
              r [ 0; 1 ] Simplex.Ge 0;
              r [ 0; 1 ] Simplex.Le 1;
            ]
          ~objective:(obj [ a; b ]) ()
      with
      | Simplex.Optimal (_, v) ->
          Rat.equal v (Rat.of_int (min a 0 + min b 0))
      | _ -> false)

let test_rational_coefficients () =
  (* x/3 + y/7 = 1, x = y: x = y = 21/10 *)
  let row coeffs op rhs = { Simplex.coeffs; op; rhs } in
  match
    Simplex.solve ~nvars:2
      ~rows:
        [
          row [| Rat.of_ints 1 3; Rat.of_ints 1 7 |] Simplex.Eq Rat.one;
          row [| Rat.one; Rat.minus_one |] Simplex.Eq Rat.zero;
        ]
      ~objective:[| Rat.zero; Rat.zero |] ()
  with
  | Simplex.Optimal (x, _) ->
      check bool_c "x = 21/10" true (Rat.equal x.(0) (Rat.of_ints 21 10));
      check bool_c "y = 21/10" true (Rat.equal x.(1) (Rat.of_ints 21 10))
  | _ -> Alcotest.fail "expected optimal"

let test_zero_rows () =
  (* no constraints: any point is feasible, objective unbounded below *)
  (match
     Simplex.solve ~nvars:1 ~rows:[] ~objective:[| Rat.one |] ()
   with
  | Simplex.Unbounded _ -> ()
  | Simplex.Optimal (_, v) ->
      (* minimizing x with no constraints: unbounded... an optimal of
         any value would be wrong *)
      Alcotest.failf "expected unbounded, got optimal %s" (Rat.to_string v)
  | Simplex.Infeasible -> Alcotest.fail "expected unbounded");
  match Simplex.feasible ~nvars:2 ~rows:[] () with
  | Some _ -> ()
  | None -> Alcotest.fail "empty system is feasible"

let test_beale_cycling () =
  (* Beale's classic degenerate LP, on which Dantzig pricing with a
     naive tie-break cycles forever:
       min -3/4 x1 + 150 x2 - 1/50 x3 + 6 x4
       s.t. 1/4 x1 - 60 x2 - 1/25 x3 + 9 x4 <= 0
            1/2 x1 - 90 x2 - 1/50 x3 + 3 x4 <= 0
            x3 <= 1,  x >= 0
     The optimum is -1/20 at x = (1/25, 0, 1, 0); the Bland fallback
     (or the pivot cap) must prevent an infinite pivot loop. *)
  let q a b = Rat.of_ints a b in
  let row coeffs op rhs = { Simplex.coeffs = Array.of_list coeffs; op; rhs } in
  let rows =
    [
      row [ q 1 4; q (-60) 1; q (-1) 25; q 9 1 ] Simplex.Le Rat.zero;
      row [ q 1 2; q (-90) 1; q (-1) 50; q 3 1 ] Simplex.Le Rat.zero;
      row [ Rat.zero; Rat.zero; Rat.one; Rat.zero ] Simplex.Le Rat.one;
      row [ Rat.one; Rat.zero; Rat.zero; Rat.zero ] Simplex.Ge Rat.zero;
      row [ Rat.zero; Rat.one; Rat.zero; Rat.zero ] Simplex.Ge Rat.zero;
      row [ Rat.zero; Rat.zero; Rat.one; Rat.zero ] Simplex.Ge Rat.zero;
      row [ Rat.zero; Rat.zero; Rat.zero; Rat.one ] Simplex.Ge Rat.zero;
    ]
  in
  let objective = [| q (-3) 4; q 150 1; q (-1) 50; q 6 1 |] in
  match Simplex.solve ~nvars:4 ~rows ~objective () with
  | Simplex.Optimal (_, v) ->
      check bool_c "objective -1/20" true (Rat.equal v (Rat.of_ints (-1) 20))
  | _ -> Alcotest.fail "expected optimal"

let test_solve_b_fuel () =
  let rows =
    [
      r [ 1; 1 ] Simplex.Le 3;
      r [ 1; 0 ] Simplex.Ge 0;
      r [ 0; 1 ] Simplex.Ge 0;
    ]
  in
  (* fuel 1: the first pivot tick must surface as a structured error *)
  (match
     Simplex.solve_b
       ~budget:(Budget.make ~fuel:1 ())
       ~nvars:2 ~rows ~objective:(obj [ -1; -1 ]) ()
   with
  | Error (Guard.Fuel_exhausted _) -> ()
  | Error f -> Alcotest.failf "unexpected failure %s" (Guard.failure_to_string f)
  | Ok _ -> Alcotest.fail "expected fuel exhaustion");
  (* a generous budget must agree with the unbudgeted solver *)
  match
    Simplex.solve_b
      ~budget:(Budget.make ~fuel:1_000_000 ())
      ~nvars:2 ~rows ~objective:(obj [ -1; -1 ]) ()
  with
  | Ok (Simplex.Optimal (_, v)) ->
      check bool_c "objective -3" true (Rat.equal v (Rat.of_int (-3)))
  | Ok _ -> Alcotest.fail "expected optimal"
  | Error f -> Alcotest.failf "unexpected failure %s" (Guard.failure_to_string f)

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "optimal corner" `Quick test_optimal_corner;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "equalities" `Quick test_equality_rows;
          Alcotest.test_case "free variables" `Quick test_free_variables;
          Alcotest.test_case "degenerate rows" `Quick test_degenerate_redundant;
          Alcotest.test_case "fractional" `Quick test_fractional;
          Alcotest.test_case "rational coefficients" `Quick test_rational_coefficients;
          Alcotest.test_case "zero rows" `Quick test_zero_rows;
          Alcotest.test_case "Beale cycling LP" `Quick test_beale_cycling;
          Alcotest.test_case "budgeted solve" `Quick test_solve_b_fuel;
          qcheck prop_feasible_by_construction;
          qcheck prop_optimal_is_exact_on_box;
        ] );
    ]
