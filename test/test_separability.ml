(* Tests for the core separability machinery: Sections 4-7 of the
   paper. *)

open Test_util

let rat = Rat.of_ints
let cq_all = Language.Cq_all
let cqm m = Language.Cq_atoms { m; p = None }
let ghw k = Language.Ghw k

(* --- Section 4: bounded atoms ----------------------------------------- *)

let test_example62_atoms () =
  let t = Families.example_62 () in
  check bool_c "CQ[1]" true (Cqfeat.separable (cqm 1) t);
  match Cqfeat.generate (cqm 1) t with
  | Some (stat, c) ->
      check int_c "zero training errors" 0 (Statistic.errors stat c t);
      check bool_c "features within language" true
        (List.for_all (Language.member (cqm 1)) stat)
  | None -> Alcotest.fail "generation must succeed"

let prop_atoms_implies_cq =
  QCheck.Test.make ~name:"CQ[m]-separable implies CQ-separable" ~count:30
    (labeled_spec_arb ~max_nodes:4 ~max_edges:4) (fun ls ->
      let t = training_of_labeled ls in
      (not (Cqfeat.separable (cqm 2) t)) || Cqfeat.separable cq_all t)

let prop_atoms_monotone_in_m =
  QCheck.Test.make ~name:"CQ[1]-separable implies CQ[2]-separable" ~count:30
    (labeled_spec_arb ~max_nodes:4 ~max_edges:4) (fun ls ->
      let t = training_of_labeled ls in
      (not (Cqfeat.separable (cqm 1) t)) || Cqfeat.separable (cqm 2) t)

let prop_atoms_generation_round_trip =
  QCheck.Test.make ~name:"CQ[m] generation separates exactly" ~count:30
    (labeled_spec_arb ~max_nodes:4 ~max_edges:4) (fun ls ->
      let t = training_of_labeled ls in
      match Cqfeat.generate (cqm 2) t with
      | Some (stat, c) -> Statistic.errors stat c t = 0
      | None -> not (Cqfeat.separable (cqm 2) t))

let prop_cqmp_at_most_cqm =
  QCheck.Test.make ~name:"CQ[m,p] ⊆ CQ[m] for separability" ~count:30
    (labeled_spec_arb ~max_nodes:4 ~max_edges:4) (fun ls ->
      let t = training_of_labeled ls in
      let with_p = Language.Cq_atoms { m = 2; p = Some 1 } in
      (not (Cqfeat.separable with_p t)) || Cqfeat.separable (cqm 2) t)

(* --- Section 5: GHW(k) ------------------------------------------------- *)

(* Lemma 5.4 soundness: when the ->_k test says separable, the
   generated (depth-bounded) statistic separates — checked on
   instances small enough for the unraveling depth to stabilize. *)
let test_ghw_generate_two_paths () =
  let t = Families.two_path_gadget 3 in
  match Cqfeat.generate ~ghw_depth:3 (ghw 1) t with
  | Some (stat, c) ->
      check int_c "GHW(1) generation separates" 0 (Statistic.errors stat c t)
  | None -> Alcotest.fail "two-path gadget is GHW(1)-separable"

(* Completeness of the test: if the ->_k classes are inconsistent, no
   statistic from GHW(k) features (here: all enumerable CQ[3] features
   with ghw <= 1) can separate. *)
let prop_ghw_test_complete =
  QCheck.Test.make ~name:"GHW(1)-inseparable has no small ghw-1 statistic"
    ~count:20 (labeled_spec_arb ~max_nodes:3 ~max_edges:4) (fun ls ->
      let t = training_of_labeled ls in
      QCheck.assume (not (Cqfeat.separable (ghw 1) t));
      let qs =
        Cq_enum.feature_queries ~schema:[ ("E", 2); ("U", 1) ] ~max_atoms:2 ()
      in
      let ghw1 = List.filter (fun q -> Cq_decomp.ghw_le q 1) qs in
      not (Statistic.separates ghw1 t))

(* And the converse inclusion: a separating ghw-1 statistic implies the
   test passes. *)
let prop_ghw_test_sound =
  QCheck.Test.make ~name:"small ghw-1 statistic implies GHW(1)-separable"
    ~count:20 (labeled_spec_arb ~max_nodes:3 ~max_edges:4) (fun ls ->
      let t = training_of_labeled ls in
      let qs =
        Cq_enum.feature_queries ~schema:[ ("E", 2); ("U", 1) ] ~max_atoms:2 ()
      in
      let ghw1 = List.filter (fun q -> Cq_decomp.ghw_le q 1) qs in
      QCheck.assume (Statistic.separates ghw1 t);
      Cqfeat.separable (ghw 1) t)

let prop_ghw_monotone_in_k =
  QCheck.Test.make ~name:"GHW(1)-separable implies GHW(2)-separable"
    ~count:15 (labeled_spec_arb ~max_nodes:3 ~max_edges:3) (fun ls ->
      let t = training_of_labeled ls in
      (not (Cqfeat.separable (ghw 1) t)) || Cqfeat.separable (ghw 2) t)

let prop_ghw_implies_cq =
  QCheck.Test.make ~name:"GHW(k)-separable implies CQ-separable" ~count:20
    (labeled_spec_arb ~max_nodes:3 ~max_edges:4) (fun ls ->
      let t = training_of_labeled ls in
      (not (Cqfeat.separable (ghw 1) t)) || Cqfeat.separable cq_all t)

(* Algorithm 1: self-classification reproduces the training labels on
   separable instances. *)
let prop_alg1_self_classification =
  QCheck.Test.make ~name:"Algorithm 1 self-classification is exact"
    ~count:20 (labeled_spec_arb ~max_nodes:4 ~max_edges:4) (fun ls ->
      let t = training_of_labeled ls in
      QCheck.assume (Cqfeat.separable (ghw 1) t);
      let lab = Cqfeat.classify (ghw 1) t t.Labeling.db in
      Labeling.disagreement lab t.Labeling.labeling = 0)

(* Algorithm 1 vs the materialized statistic: on tiny instances where
   the unraveling stabilizes, the two classifications agree. *)
let test_alg1_matches_materialized () =
  let t = Families.two_path_gadget 2 in
  let eval_db =
    (* fresh paths of lengths 2 and 1 *)
    let p i n =
      List.init n (fun j ->
          ("E", [ sym (Printf.sprintf "q%d_%d" i j);
                  sym (Printf.sprintf "q%d_%d" i (j + 1)) ]))
    in
    let db = Db.of_list (p 1 2 @ p 2 1) in
    Db.add_entity (sym "q1_0") (Db.add_entity (sym "q2_0") db)
  in
  let alg1 = Cqfeat.classify (ghw 1) t eval_db in
  match Cqfeat.generate ~ghw_depth:4 (ghw 1) t with
  | None -> Alcotest.fail "separable"
  | Some (stat, c) ->
      let materialized = Statistic.induced_labeling stat c eval_db in
      check int_c "Alg1 = materialized" 0
        (Labeling.disagreement alg1 materialized);
      (* and the labels are the intuitive ones *)
      check bool_c "long path positive" true
        (Labeling.label_equal Labeling.Pos (Labeling.get (sym "q1_0") alg1));
      check bool_c "short path negative" true
        (Labeling.label_equal Labeling.Neg (Labeling.get (sym "q2_0") alg1))

(* --- Section 7: approximation ------------------------------------------ *)

(* Algorithm 2 produces a separable relabeling of minimal disagreement
   (checked against brute force over all relabelings). *)
let prop_alg2_optimal =
  QCheck.Test.make ~name:"Algorithm 2 disagreement is minimal" ~count:12
    (labeled_spec_arb ~max_nodes:4 ~max_edges:4) (fun ls ->
      let t = training_of_labeled ls in
      let relab, disagreement = Ghw_sep.apx_relabel ~k:1 t in
      let t' = Labeling.training t.Labeling.db relab in
      (* must be separable *)
      Cqfeat.separable (ghw 1) t'
      && Labeling.disagreement relab t.Labeling.labeling = disagreement
      &&
      (* brute force over all labelings *)
      let entities = Db.entities t.Labeling.db in
      List.for_all
        (fun lab ->
          let cand = Labeling.training t.Labeling.db lab in
          (not (Cqfeat.separable (ghw 1) cand))
          || Labeling.disagreement lab t.Labeling.labeling >= disagreement)
        (all_labelings entities))

let prop_apx_sep_epsilon_monotone =
  QCheck.Test.make ~name:"ApxSep monotone in eps" ~count:15
    (labeled_spec_arb ~max_nodes:4 ~max_edges:4) (fun ls ->
      let t = training_of_labeled ls in
      let s0 = Cqfeat.apx_separable ~eps:(rat 0 1) (ghw 1) t in
      let s1 = Cqfeat.apx_separable ~eps:(rat 1 4) (ghw 1) t in
      let s2 = Cqfeat.apx_separable ~eps:(rat 2 5) (ghw 1) t in
      ((not s0) || s1) && ((not s1) || s2))

let prop_apx_eps0_is_exact =
  QCheck.Test.make ~name:"ApxSep at eps=0 is exact Sep" ~count:15
    (labeled_spec_arb ~max_nodes:4 ~max_edges:4) (fun ls ->
      let t = training_of_labeled ls in
      Cqfeat.apx_separable ~eps:(rat 0 1) (ghw 1) t
      = Cqfeat.separable (ghw 1) t)

let test_apx_classify_flipped_chain () =
  (* On the alternating chain every entity is its own class, so even a
     flipped label is separable; use copies to create real classes. *)
  let base = Families.alternating_labels (Families.cycle 4) in
  (* all 4 cycle entities are ->_1-equivalent: one class, labels 2+/2-;
     algorithm 2 relabels all Pos (tie goes positive), disagreement 2 *)
  let relab, d = Ghw_sep.apx_relabel ~k:1 base in
  check int_c "disagreement" 2 d;
  check bool_c "all positive" true
    (List.for_all
       (fun (_, l) -> Labeling.label_equal l Labeling.Pos)
       (Labeling.bindings relab));
  let lab, err = Cqfeat.apx_classify ~eps:(rat 1 2) (ghw 1) base base.Labeling.db in
  check int_c "training error reported" 2 err;
  check int_c "eval labeled" 4 (Labeling.cardinal lab)

let test_cqm_apx () =
  let t = Families.example_62 () in
  let t' = Planted.flip_labels ~seed:7 ~count:1 t in
  check bool_c "eps=1/3 enough for one flip" true
    (Cqfeat.apx_separable ~eps:(rat 1 3) (cqm 1) t');
  check bool_c "CQ apx eps=1/3" true
    (Cqfeat.apx_separable ~eps:(rat 1 3) cq_all t')

(* Prop 7.1 reduction: padded instance is eps-separable iff original is
   exactly separable. *)
let prop_padding_reduction =
  QCheck.Test.make ~name:"Prop 7.1 padding preserves separability"
    ~count:6 (labeled_spec_arb ~max_nodes:3 ~max_edges:2) (fun ls ->
      let t = training_of_labeled ls in
      let eps = rat 1 4 in
      let padded = Apx_reduction.pad ~eps t in
      Cqfeat.separable (ghw 1) t
      = Cqfeat.apx_separable ~eps (ghw 1) padded.Apx_reduction.training)

(* --- Section 6: bounded dimension --------------------------------------- *)

let test_example62_dimension () =
  let t = Families.example_62 () in
  check bool_c "dim 1 impossible" false (Cqfeat.separable ~dim:1 cq_all t);
  check bool_c "dim 2 enough" true (Cqfeat.separable ~dim:2 cq_all t);
  Alcotest.(check (option int)) "min dimension" (Some 2)
    (Cqfeat.min_dimension cq_all t);
  (* same for the enumerable class *)
  Alcotest.(check (option int)) "min dimension CQ[1]" (Some 2)
    (Cqfeat.min_dimension (cqm 1) t)

(* The l1 support seeding ([?seed_numeric]) is a search-order
   heuristic: on 50 planted instances (random path databases, random
   labels, random candidate indicator sets) the seeded and unseeded
   searches must return the same verdict. *)
let test_seed_numeric_agreement () =
  let rng = Random.State.make [| 20190705 |] in
  let mismatches = ref 0 in
  for _ = 1 to 50 do
    let n = 4 + Random.State.int rng 4 in
    let db = Families.path n in
    let entities = Db.entities db in
    let labeling =
      Labeling.of_list
        (List.map
           (fun e ->
             (e, if Random.State.bool rng then Labeling.Pos else Labeling.Neg))
           entities)
    in
    let t = Labeling.training db labeling in
    let sets =
      List.filter
        (fun s -> not (Elem.Set.is_empty s))
        (List.init
           (3 + Random.State.int rng 4)
           (fun _ ->
             Elem.Set.of_list
               (List.filter (fun _ -> Random.State.bool rng) entities)))
    in
    let dim = 1 + Random.State.int rng 2 in
    let unseeded = Dim_sep.separable_with_sets ~dim ~sets t in
    let seeded =
      Dim_sep.separable_with_sets ~seed_numeric:true ~dim ~sets t
    in
    if unseeded <> seeded then incr mismatches
  done;
  check int_c "seeded and unseeded verdicts agree on all 50 instances" 0
    !mismatches

let test_unbounded_dimension_growth () =
  (* Thm 8.7 shape: the alternating chain needs ever more features.
     Candidate indicator sets come from the enumerated GHW(1) fragment
     (the up-sets of the chain), avoiding the exponential QBE-based
     realizability sweep. *)
  let min_dim_with_enumerated_sets m =
    let t = Families.ghw_dimension_family m in
    let qs =
      List.filter
        (fun q -> Cq_decomp.ghw_le q 1)
        (Cq_enum.feature_queries ~schema:[ ("E", 2) ] ~max_atoms:(2 * m) ())
    in
    let sets =
      List.filter
        (fun s -> not (Elem.Set.is_empty s))
        (Fo_dimension.indicator_family ~queries:qs ~db:t.Labeling.db)
    in
    let rec go d =
      if d > 2 * m then Alcotest.fail "chain must be separable"
      else if Dim_sep.separable_with_sets ~dim:d ~sets t then d
      else go (d + 1)
    in
    go 0
  in
  let d1 = min_dim_with_enumerated_sets 1 in
  let d2 = min_dim_with_enumerated_sets 2 in
  check bool_c "growth" true (d1 < d2)

let prop_dim_monotone =
  QCheck.Test.make ~name:"Sep[l] monotone in l" ~count:10
    (labeled_spec_arb ~max_nodes:3 ~max_edges:3) (fun ls ->
      let t = training_of_labeled ls in
      let s1 = Cqfeat.separable ~dim:1 (cqm 2) t in
      let s2 = Cqfeat.separable ~dim:2 (cqm 2) t in
      (not s1) || s2)

let prop_dim_bounded_implies_unbounded =
  QCheck.Test.make ~name:"Sep[l] implies Sep" ~count:10
    (labeled_spec_arb ~max_nodes:3 ~max_edges:3) (fun ls ->
      let t = training_of_labeled ls in
      (not (Cqfeat.separable ~dim:2 cq_all t)) || Cqfeat.separable cq_all t)

let prop_unbounded_dim_sep_equals_enough_dim =
  QCheck.Test.make ~name:"Sep = Sep[n] at dimension n" ~count:10
    (labeled_spec_arb ~max_nodes:3 ~max_edges:3) (fun ls ->
      let t = training_of_labeled ls in
      let n = List.length (Db.entities t.Labeling.db) in
      Cqfeat.separable cq_all t = Cqfeat.separable ~dim:n cq_all t)

(* Lemma 6.5: QBE iff Sep[l] of the reduced instance. *)
let prop_lemma65 =
  QCheck.Test.make ~name:"Lemma 6.5 reduction is faithful" ~count:15
    (QCheck.pair (spec_arb ~max_nodes:2 ~max_edges:2) (QCheck.int_range 1 2))
    (fun (s, l) ->
      let db = db_of_spec s in
      let ents = Db.entities db in
      QCheck.assume (List.length ents >= 2);
      (* the lemma requires S- = dom \ S+ *)
      let pos = [ List.hd ents ] in
      let neg = List.tl ents in
      let inst = Qbe.make db ~pos ~neg in
      let reduced = Dim_sep.qbe_to_sep ~l inst in
      Qbe.cq_decide inst = Cqfeat.separable ~dim:l cq_all reduced)

(* Bounded-dimension generation: the realized features reproduce the
   chosen indicator sets and separate with the returned classifier. *)
let test_dim_generate_example62 () =
  let t = Families.example_62 () in
  match Cqfeat.generate ~dim:2 cq_all t with
  | None -> Alcotest.fail "dim-2 generation must succeed"
  | Some (stat, c) ->
      check int_c "dimension at most 2" 2 (Statistic.dimension stat);
      check int_c "separates exactly" 0 (Statistic.errors stat c t)

let prop_dim_generate_round_trip =
  QCheck.Test.make ~name:"Dim generation separates when Sep[l] holds"
    ~count:4 (labeled_spec_arb ~max_nodes:3 ~max_edges:3) (fun ls ->
      let t = training_of_labeled ls in
      match Cqfeat.generate ~dim:2 (cqm 2) t with
      | Some (stat, c) ->
          Statistic.dimension stat <= 2 && Statistic.errors stat c t = 0
      | None -> not (Cqfeat.separable ~dim:2 (cqm 2) t))

let test_dim_generate_ghw () =
  let t = Families.two_path_gadget 2 in
  match Cqfeat.generate ~dim:1 (ghw 1) t with
  | None -> Alcotest.fail "one GHW(1) feature must suffice"
  | Some (stat, c) ->
      check int_c "one feature" 1 (Statistic.dimension stat);
      check int_c "separates" 0 (Statistic.errors stat c t);
      check bool_c "feature has ghw 1" true
        (Cq_decomp.ghw_le (List.hd stat) 1)

(* --- FO and language dispatch ------------------------------------------- *)

let prop_fok_dim_collapse =
  QCheck.Test.make ~name:"FO_2-Sep = FO_2-Sep[1] (Cor 8.5)" ~count:10
    (labeled_spec_arb ~max_nodes:4 ~max_edges:4) (fun ls ->
      let t = training_of_labeled ls in
      Cqfeat.separable (Language.Fo_k 2) t
      = Cqfeat.separable ~dim:1 (Language.Fo_k 2) t)

let prop_fo_dim_collapse =
  QCheck.Test.make ~name:"FO-Sep = FO-Sep[1] (Prop 8.1)" ~count:15
    (labeled_spec_arb ~max_nodes:4 ~max_edges:4) (fun ls ->
      let t = training_of_labeled ls in
      Cqfeat.separable Language.Fo t = Cqfeat.separable ~dim:1 Language.Fo t)

let prop_epfo_equals_cq =
  QCheck.Test.make ~name:"∃FO+-Sep = CQ-Sep (Prop 8.3)" ~count:15
    (labeled_spec_arb ~max_nodes:4 ~max_edges:4) (fun ls ->
      let t = training_of_labeled ls in
      Cqfeat.separable Language.Epfo t = Cqfeat.separable cq_all t)

let prop_language_hierarchy =
  QCheck.Test.make ~name:"CQ-separable implies FO-separable" ~count:15
    (labeled_spec_arb ~max_nodes:4 ~max_edges:4) (fun ls ->
      let t = training_of_labeled ls in
      (not (Cqfeat.separable cq_all t)) || Cqfeat.separable Language.Fo t)

(* --- statistic utilities ------------------------------------------------ *)

let test_statistic_utilities () =
  let t = Families.example_62 () in
  let stat =
    [ Cq_parse.parse "x :- R(x)"; Cq_parse.parse "x :- S(x)" ]
  in
  check int_c "dimension" 2 (Statistic.dimension stat);
  (match Statistic.separating_classifier stat t with
  | Some c ->
      check int_c "errors" 0 (Statistic.errors stat c t);
      let lab = Statistic.induced_labeling stat c t.Labeling.db in
      check int_c "induced = labels" 0
        (Labeling.disagreement lab t.Labeling.labeling)
  | None -> Alcotest.fail "R,S statistic must separate Example 6.2");
  check int_c "max atoms" 1 (Statistic.max_atoms stat);
  let v = Statistic.vector stat t.Labeling.db (sym "a") in
  Alcotest.(check (array int)) "vector of a" [| 1; 1 |] v

(* Prop 6.9: the Vertex-Cover reduction — minimal dimension of the
   reduced instance equals the minimum vertex cover. *)
let test_vc_reduction_triangle () =
  (* triangle: VC = 2 *)
  let dim, vc = Vc_reduction.min_dimension_equals_cover
      ~edges:[ (1, 2); (2, 3); (3, 1) ] in
  check int_c "VC of triangle" 2 vc;
  Alcotest.(check (option int)) "dimension = VC" (Some vc) dim

let test_vc_reduction_star () =
  (* star: VC = 1 regardless of leaves *)
  let dim, vc = Vc_reduction.min_dimension_equals_cover
      ~edges:[ (0, 1); (0, 2); (0, 3) ] in
  check int_c "VC of star" 1 vc;
  Alcotest.(check (option int)) "dimension = VC" (Some vc) dim

let prop_vc_reduction_faithful =
  QCheck.Test.make ~name:"Prop 6.9 reduction: min dimension = VC" ~count:6
    (QCheck.list_of_size (QCheck.Gen.int_range 1 4)
       (QCheck.pair (QCheck.int_range 0 3) (QCheck.int_range 0 3)))
    (fun raw_edges ->
      let edges =
        List.sort_uniq compare
          (List.filter_map
             (fun (u, v) ->
               if u = v then None else Some (min u v, max u v))
             raw_edges)
      in
      QCheck.assume (edges <> []);
      let dim, vc = Vc_reduction.min_dimension_equals_cover ~edges in
      dim = Some vc)

let test_classify_with_dim () =
  let t = Families.example_62 () in
  let eval_db =
    Db.add_entity (sym "d")
      (Db.of_list [ ("R", [ sym "d" ]); ("S", [ sym "d" ]) ])
  in
  let lab = Cqfeat.classify ~dim:2 cq_all t eval_db in
  check bool_c "a-like entity positive" true
    (Labeling.label_equal Labeling.Pos (Labeling.get (sym "d") lab));
  match Cqfeat.classify ~dim:1 cq_all t eval_db with
  | exception Budget.Exhausted (Budget.Solver_error _) -> ()
  | _ -> Alcotest.fail "dim 1 must be rejected for Example 6.2"

let test_language_member () =
  let q1 = Cq_parse.parse "x :- E(x,y)" in
  let tri = Cq_parse.parse "x :- E(a,b), E(b,c), E(c,a)" in
  check bool_c "one atom in CQ[1]" true (Language.member (cqm 1) q1);
  check bool_c "triangle not in CQ[1]" false (Language.member (cqm 1) tri);
  check bool_c "triangle not in GHW(1)" false (Language.member (ghw 1) tri);
  check bool_c "triangle in GHW(2)" true (Language.member (ghw 2) tri);
  check bool_c "q1 in FO_2" true (Language.member (Language.Fo_k 2) q1);
  check bool_c "triangle not in FO_3" false
    (Language.member (Language.Fo_k 3) tri);
  check bool_c "everything in FO" true (Language.member Language.Fo tri);
  let qpp = Cq_parse.parse "x :- E(x,x)" in
  check bool_c "CQ[1,1] rejects repeats" false
    (Language.member (Language.Cq_atoms { m = 1; p = Some 1 }) qpp);
  check bool_c "CQ[1,2] accepts" true
    (Language.member (Language.Cq_atoms { m = 1; p = Some 2 }) qpp)

(* --- model serialization ------------------------------------------------ *)

let test_model_roundtrip () =
  let t = Families.example_62 () in
  match Cqfeat.generate (cqm 1) t with
  | None -> Alcotest.fail "generation"
  | Some (stat, c) ->
      let m = Model_io.make stat c in
      let m' = Model_io.of_string (Model_io.to_string m) in
      check int_c "features preserved" (Statistic.dimension stat)
        (Statistic.dimension m'.Model_io.statistic);
      check bool_c "threshold preserved" true
        (Rat.equal m.Model_io.classifier.Linsep.threshold
           m'.Model_io.classifier.Linsep.threshold);
      (* the reloaded model classifies identically *)
      check int_c "same labeling" 0
        (Labeling.disagreement
           (Model_io.apply m t.Labeling.db)
           (Model_io.apply m' t.Labeling.db))

let test_model_roundtrip_bignum () =
  (* chain-classifier weights exceed any float: serialization must be
     exact *)
  let t = Families.alternating_labels (Families.path 7) in
  match Cqfeat.generate Language.Cq_all t with
  | None -> Alcotest.fail "path is CQ-separable"
  | Some (stat, c) ->
      let m = Model_io.make stat c in
      let m' = Model_io.of_string (Model_io.to_string m) in
      Array.iteri
        (fun i w ->
          check bool_c
            (Printf.sprintf "weight %d exact" i)
            true
            (Rat.equal w m'.Model_io.classifier.Linsep.weights.(i)))
        m.Model_io.classifier.Linsep.weights

let test_model_errors () =
  let bad s =
    match Model_io.of_string s with
    | exception Model_io.Parse_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ s)
  in
  bad "feature x :- R(x)
";
  (* missing threshold *)
  bad "threshold 0
weight 1
";
  (* weight/feature mismatch *)
  bad "feature x :- R(x)
threshold 0
weight 1/0
";
  (* bad rational *)
  bad "gibberish line
"

let test_language_of_string () =
  let ok s expected =
    match Language.of_string s with
    | Ok l ->
        check bool_c (Printf.sprintf "parse %S" s) true (l = expected)
    | Error msg -> Alcotest.failf "%S should parse, got error: %s" s msg
  in
  let bad s =
    match Language.of_string s with
    | Error _ -> ()
    | Ok l ->
        Alcotest.failf "%S should be rejected, parsed as %s" s
          (Language.to_string l)
  in
  ok "cq" Language.Cq_all;
  ok " CQ " Language.Cq_all;
  ok "cq[3]" (Language.Cq_atoms { m = 3; p = None });
  ok "cq[2,1]" (Language.Cq_atoms { m = 2; p = Some 1 });
  ok "ghw(2)" (Language.Ghw 2);
  ok "fo" Language.Fo;
  ok "fo2" (Language.Fo_k 2);
  ok "epfo" Language.Epfo;
  bad "";
  bad "cq[0]";
  bad "cq[-1]";
  bad "cq[2,0]";
  bad "cq[x]";
  bad "cq[1,2,3]";
  bad "cq[2";
  bad "ghw(0)";
  bad "ghw(x)";
  bad "ghw(1";
  bad "fo0";
  bad "fox";
  bad "datalog"

let () =
  Alcotest.run "separability"
    [
      ( "atoms (Sec 4)",
        [
          Alcotest.test_case "example 6.2" `Quick test_example62_atoms;
          qcheck prop_atoms_implies_cq;
          qcheck prop_atoms_monotone_in_m;
          qcheck prop_atoms_generation_round_trip;
          qcheck prop_cqmp_at_most_cqm;
        ] );
      ( "ghw (Sec 5)",
        [
          Alcotest.test_case "generate two paths" `Quick test_ghw_generate_two_paths;
          Alcotest.test_case "Alg1 = materialized" `Quick test_alg1_matches_materialized;
          qcheck prop_ghw_test_complete;
          qcheck prop_ghw_test_sound;
          qcheck prop_ghw_monotone_in_k;
          qcheck prop_ghw_implies_cq;
          qcheck prop_alg1_self_classification;
        ] );
      ( "approx (Sec 7)",
        [
          Alcotest.test_case "apx classify cycle" `Quick test_apx_classify_flipped_chain;
          Alcotest.test_case "cqm apx" `Quick test_cqm_apx;
          qcheck prop_alg2_optimal;
          qcheck prop_apx_sep_epsilon_monotone;
          qcheck prop_apx_eps0_is_exact;
          qcheck prop_padding_reduction;
        ] );
      ( "dimension (Sec 6)",
        [
          Alcotest.test_case "example 6.2 dimensions" `Quick test_example62_dimension;
          Alcotest.test_case "seeded search agrees" `Quick
            test_seed_numeric_agreement;
          Alcotest.test_case "dim generation 6.2" `Quick test_dim_generate_example62;
          Alcotest.test_case "dim generation ghw" `Quick test_dim_generate_ghw;
          Alcotest.test_case "VC reduction triangle" `Quick test_vc_reduction_triangle;
          Alcotest.test_case "VC reduction star" `Quick test_vc_reduction_star;
          Alcotest.test_case "classify with dim" `Quick test_classify_with_dim;
          Alcotest.test_case "language membership" `Quick test_language_member;
          Alcotest.test_case "language parsing" `Quick test_language_of_string;
          qcheck prop_vc_reduction_faithful;
          qcheck prop_dim_generate_round_trip;
          Alcotest.test_case "unbounded growth" `Quick test_unbounded_dimension_growth;
          qcheck prop_dim_monotone;
          qcheck prop_dim_bounded_implies_unbounded;
          qcheck prop_unbounded_dim_sep_equals_enough_dim;
          qcheck prop_lemma65;
        ] );
      ( "languages (Sec 8)",
        [
          qcheck prop_fo_dim_collapse;
          qcheck prop_fok_dim_collapse;
          qcheck prop_epfo_equals_cq;
          qcheck prop_language_hierarchy;
        ] );
      ( "statistic",
        [ Alcotest.test_case "utilities" `Quick test_statistic_utilities ] );
      ( "model io",
        [
          Alcotest.test_case "roundtrip" `Quick test_model_roundtrip;
          Alcotest.test_case "bignum exact" `Quick test_model_roundtrip_bignum;
          Alcotest.test_case "errors" `Quick test_model_errors;
        ] );
    ]
