let label_by_query db q =
  let selected = Elem.Set.of_list (Cq.eval q db) in
  let labeled =
    List.map
      (fun e ->
        (e, if Elem.Set.mem e selected then Labeling.Pos else Labeling.Neg))
      (Db.entities db)
  in
  Labeling.training db (Labeling.of_list labeled)

let flip_labels ~seed ~count (t : Labeling.training) =
  let rng = Random.State.make [| seed |] in
  let entities = Array.of_list (Db.entities t.db) in
  let n = Array.length entities in
  let count = min count n in
  for i = 0 to count - 1 do
    let j = i + Random.State.int rng (n - i) in
    let tmp = entities.(i) in
    entities.(i) <- entities.(j);
    entities.(j) <- tmp
  done;
  let flipped =
    Array.to_list (Array.sub entities 0 count) |> Elem.Set.of_list
  in
  let labeling =
    List.fold_left
      (fun acc (e, l) ->
        let l' = if Elem.Set.mem e flipped then Labeling.flip l else l in
        Labeling.set e l' acc)
      Labeling.empty
      (Labeling.bindings t.labeling)
  in
  Labeling.training t.db labeling

let linsep_instance ~seed ~dim ~n =
  let rng = Random.State.make [| seed |] in
  let pm1 () = if Random.State.bool rng then 1 else -1 in
  let vec () = Array.init dim (fun _ -> pm1 ()) in
  (* Three regimes, cycled by seed so any contiguous seed range mixes
     them: planted separable, uniformly random labels, and planted
     with adversarial flips. *)
  match seed mod 3 with
  | 0 ->
      (* Planted: labels from a hidden integer hyperplane, so the
         instance is separable by construction. *)
      let w = Array.init dim (fun _ -> Random.State.int rng 7 - 3) in
      let w0 = Random.State.int rng 5 - 2 in
      List.init n (fun _ ->
          let v = vec () in
          let s = ref 0 in
          for j = 0 to dim - 1 do
            s := !s + (w.(j) * v.(j))
          done;
          {
            Linsep.vec = v;
            label = (if !s >= w0 then Labeling.Pos else Labeling.Neg);
          })
  | 1 ->
      (* Uniform labels: almost surely not separable once n is a few
         multiples of dim. *)
      List.init n (fun _ ->
          {
            Linsep.vec = vec ();
            label = (if Random.State.bool rng then Labeling.Pos else Labeling.Neg);
          })
  | _ ->
      (* Planted then flipped: near-separable, the regime where the
         float tier's certification does real work. *)
      let w = Array.init dim (fun _ -> Random.State.int rng 7 - 3) in
      let flips = 1 + Random.State.int rng (max 1 (n / 8)) in
      List.init n (fun i ->
          let v = vec () in
          let s = ref 0 in
          for j = 0 to dim - 1 do
            s := !s + (w.(j) * v.(j))
          done;
          let base = if !s >= 0 then Labeling.Pos else Labeling.Neg in
          let label = if i < flips then Labeling.flip base else base in
          { Linsep.vec = v; label })

let accuracy ~truth labeling =
  let entities = Db.entities truth.Labeling.db in
  let agree =
    List.fold_left
      (fun acc e ->
        match Labeling.get_opt e labeling with
        | Some l
          when Labeling.label_equal l (Labeling.get e truth.Labeling.labeling)
          ->
            acc + 1
        | _ -> acc)
      0 entities
  in
  float_of_int agree /. float_of_int (max 1 (List.length entities))
