(** Planted-query labelings and label noise.

    The canonical generative model for separability experiments: label
    the entities of a database by a hidden ("planted") feature query,
    optionally flip a fraction of labels. By construction the clean
    instance is separable by a 1-feature statistic containing the
    planted query, and the noisy instance is separable with error at
    most the flip count — the setting of Section 7. *)

(** [label_by_query db q] labels each entity [Pos] iff selected by
    [q]. *)
val label_by_query : Db.t -> Cq.t -> Labeling.training

(** [flip_labels ~seed ~count t] flips the labels of [count] distinct
    entities chosen uniformly (deterministic in [seed]). *)
val flip_labels : seed:int -> count:int -> Labeling.training -> Labeling.training

(** [linsep_instance ~seed ~dim ~n] is a deterministic random training
    collection of [n] examples over [{1,-1}^dim], for exercising the
    linear-separation solvers directly (benchmarks, agreement
    property tests). Three regimes cycle with [seed mod 3]: planted
    separable (labels from a hidden integer hyperplane), uniformly
    random labels, and planted-with-flips. *)
val linsep_instance : seed:int -> dim:int -> n:int -> Linsep.example list

(** [accuracy ~truth labeling] is the fraction of entities of [truth]
    on which [labeling] agrees (entities missing from [labeling] count
    as errors). *)
val accuracy : truth:Labeling.training -> Labeling.t -> float
