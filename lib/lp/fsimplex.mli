(** Phase-I simplex over native floats: the fast, uncertified half of
    the numeric separation tier.

    Same standard form and pivoting discipline as the exact {!Simplex}
    (Dantzig then Bland, hard pivot cap, cooperative {!Budget.tick}s),
    but with double-precision tableau cells and an epsilon dead zone
    in pricing. Answers are {e candidates}: a [Feasible] point or an
    [Infeasible] Farkas multiplier vector must be re-checked in exact
    arithmetic (see [Certify] in lib/linsep) before anyone believes
    it. The [quality] record carries the conditioning signals the
    caller's escalation guards key on. *)

type row = { coeffs : float array; op : Simplex.op; rhs : float }

type quality = {
  pivots : int;  (** pivot steps performed *)
  min_pivot : float;  (** smallest pivot magnitude used (1.0 if none) *)
  growth : float;
      (** max tableau entry magnitude seen, relative to the initial
          tableau — the classic element-growth conditioning proxy *)
  residual : float;
      (** final phase-I objective value: the unresolved infeasibility
          gap (0 means a clean basic feasible solution) *)
}

type outcome =
  | Feasible of float array * quality
      (** a candidate point, one value per variable *)
  | Infeasible of float array * quality
      (** candidate Farkas multipliers, one per input row in input
          order: for Ge rows the multiplier should be [>= 0], for Le
          rows [<= 0], with [Σ mu_i·coeffs_i = 0] and
          [Σ mu_i·rhs_i > 0] — properties the exact certifier
          re-derives rather than trusts *)

(** [well_conditioned ?max_growth ?min_pivot q] is the deterministic
    escalation guard: [false] when element growth exceeded
    [max_growth] (default 1e8) or some pivot magnitude fell below
    [min_pivot] (default 1e-7) — tableaux past those thresholds have
    lost too many digits for their verdicts to be worth certifying. *)
val well_conditioned : ?max_growth:float -> ?min_pivot:float -> quality -> bool

(** [feasible ~nvars ~rows ()] decides (numerically) whether the rows
    admit a solution over [nvars] free variables.
    @raise Invalid_argument on a row length mismatch or a non-finite
    coefficient. *)
val feasible : nvars:int -> rows:row list -> unit -> outcome

(** [feasible_b ?budget ~nvars ~rows ()] is {!feasible} under
    {!Guard.run} (default: the ambient budget). *)
val feasible_b :
  ?budget:Budget.t ->
  nvars:int ->
  rows:row list ->
  unit ->
  (outcome, Guard.failure) result
