(** Exact simplex over rationals.

    Linear programs with free (sign-unrestricted) variables, solved by
    the classic two-phase full-tableau simplex in exact {!Rat}
    arithmetic — Dantzig pricing while it makes progress, Bland's rule
    (no cycling) past a size-derived pivot threshold, and a hard pivot
    cap that turns any remaining non-termination into a structured
    {!Budget.Exhausted} failure. This is the stand-in for the
    polynomial-time LP oracle (Khachiyan/Karmarkar) that the paper
    invokes for linear-separability testing: worst-case exponential,
    but exact — no epsilon tuning — and fast at the scales of this
    library (see DESIGN.md, "Key algorithmic choices"). *)

type op = Le  (** [a·x ≤ b] *) | Ge  (** [a·x ≥ b] *) | Eq  (** [a·x = b] *)

type row = { coeffs : Rat.t array; op : op; rhs : Rat.t }

type outcome =
  | Optimal of Rat.t array * Rat.t
      (** assignment to the [nvars] free variables, objective value *)
  | Unbounded of Rat.t array
      (** a feasible point witnessing unboundedness of the objective *)
  | Infeasible

(** [solve ~nvars ~rows ~objective ()] minimizes [objective · x] subject
    to [rows]; all [nvars] variables are free. Every [coeffs] array and
    [objective] must have length [nvars]. Each pivot consumes one unit
    of the ambient fuel budget.
    @raise Invalid_argument on dimension mismatch.
    @raise Budget.Exhausted when the ambient budget or the internal
    pivot cap is exceeded (use {!solve_b} for a total variant). *)
val solve : nvars:int -> rows:row list -> objective:Rat.t array -> unit -> outcome

(** [feasible ~nvars ~rows ()] finds any point satisfying [rows]. *)
val feasible : nvars:int -> rows:row list -> unit -> Rat.t array option

(** [solve_b ?budget ~nvars ~rows ~objective ()] is {!solve} run under
    [budget] (default: the ambient budget): always returns, converting
    exhaustion and pivot-cap hits into [Error]. *)
val solve_b :
  ?budget:Budget.t -> nvars:int -> rows:row list -> objective:Rat.t array ->
  unit -> (outcome, Guard.failure) result

(** [feasible_b ?budget ~nvars ~rows ()] is the budgeted {!feasible}. *)
val feasible_b :
  ?budget:Budget.t -> nvars:int -> rows:row list -> unit ->
  (Rat.t array option, Guard.failure) result

(** [check_solution ~rows x] verifies that [x] satisfies every row
    (exact arithmetic, used by tests and defensive callers). *)
val check_solution : rows:row list -> Rat.t array -> bool
