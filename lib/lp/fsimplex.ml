(* Phase-I full-tableau simplex over native floats.

   Same standard form as the exact {!Simplex} (free variables split
   into p - m, a slack per row, sign-normalized right-hand sides,
   phase-I artificials), but every tableau cell is a double. This
   solver only answers feasibility — that is all the separation
   pipeline needs — and it never answers alone: a [Feasible] point or
   an [Infeasible] Farkas row combination is only a *candidate* until
   the Certify layer re-checks it in exact rationals, so float
   round-off can cost an escalation but never a wrong verdict.

   For that hand-off the solver reports, besides the answer:
   - on infeasibility, one multiplier per original row, recovered from
     the phase-I objective row over the artificial columns (the dual
     prices y_i = 1 - objrow[art_i], mapped back through the rhs sign
     flips) — the support the exact Farkas reconstruction starts from;
   - a [quality] record (entry growth, smallest pivot magnitude) that
     the caller's condition guards use to escalate deterministically
     instead of trusting a numerically shaky tableau. *)

type row = { coeffs : float array; op : Simplex.op; rhs : float }

type quality = {
  pivots : int;  (* pivot steps performed *)
  min_pivot : float;  (* smallest |pivot element| used *)
  growth : float;  (* max |entry| seen / max(1, initial max |entry|) *)
  residual : float;  (* phase-I objective at the end: infeasibility gap *)
}

type outcome =
  | Feasible of float array * quality
  | Infeasible of float array * quality
      (* Farkas multipliers, one per input row, in input order *)

(* Reduced costs within [eps] of zero count as zero: pricing and the
   ratio test need a dead zone or round-off pivots forever. *)
let eps = 1e-9

let well_conditioned ?(max_growth = 1e8) ?(min_pivot = 1e-7) q =
  q.pivots >= 0 && q.growth <= max_growth
  && (q.pivots = 0 || Float.abs q.min_pivot >= min_pivot)

type tableau = {
  t : float array array;
  basis : int array;
  m : int;
  n : int;
  mutable max_entry : float;
  mutable min_piv : float;
  mutable pivot_count : int;
}

let scan_growth tb =
  let { t; m; n; _ } = tb in
  for i = 0 to m do
    for j = 0 to n do
      Budget.tick ~what:"fsimplex: growth scan" ();
      let a = Float.abs t.(i).(j) in
      if a > tb.max_entry then tb.max_entry <- a
    done
  done

let pivot tb ~row ~col =
  let { t; m; n; _ } = tb in
  let p = t.(row).(col) in
  let ap = Float.abs p in
  if ap < tb.min_piv then tb.min_piv <- ap;
  let inv = 1.0 /. p in
  (* Element growth is tracked on the values written here, so the
     conditioning signal costs no extra tableau pass. *)
  let max_entry = ref tb.max_entry in
  for j = 0 to n do
    Budget.tick ~what:"fsimplex: row normalization" ();
    let v = t.(row).(j) *. inv in
    t.(row).(j) <- v;
    let a = Float.abs v in
    if a > !max_entry then max_entry := a
  done;
  t.(row).(col) <- 1.0;
  for i = 0 to m do
    if i <> row && t.(i).(col) <> 0.0 then begin
      let f = t.(i).(col) in
      for j = 0 to n do
        Budget.tick ~what:"fsimplex: row elimination" ();
        let v = t.(i).(j) -. (f *. t.(row).(j)) in
        t.(i).(j) <- v;
        let a = Float.abs v in
        if a > !max_entry then max_entry := a
      done;
      t.(i).(col) <- 0.0
    end
  done;
  tb.max_entry <- !max_entry;
  tb.basis.(row) <- col;
  tb.pivot_count <- tb.pivot_count + 1

let entering_dantzig obj ~scale n =
  let best = ref (-1) in
  let best_cost = ref (-.eps *. scale) in
  for j = 0 to n - 1 do
    Budget.tick ~what:"fsimplex: pricing" ();
    if obj.(j) < !best_cost then begin
      best := j;
      best_cost := obj.(j)
    end
  done;
  !best

let entering_bland obj ~scale n =
  let entering = ref (-1) in
  (try
     for j = 0 to n - 1 do
       Budget.tick ~what:"fsimplex: pricing" ();
       if obj.(j) < -.eps *. scale then begin
         entering := j;
         raise Exit
       end
     done
   with Exit -> ());
  !entering

let rec iterate tb =
  let { t; m; n; basis; _ } = tb in
  (* Same termination scheme as the exact solver: Dantzig while it
     makes progress, Bland past a size-derived threshold, and a hard
     cap that turns any remaining pathology into a structured
     failure. *)
  let bland_after = 64 + (4 * (m + n)) in
  let max_pivots = 10_000 + (200 * (m + n)) in
  let scale = Float.max 1.0 tb.max_entry in
  let obj = t.(m) in
  let col =
    if tb.pivot_count < bland_after then entering_dantzig obj ~scale n
    else entering_bland obj ~scale n
  in
  if col < 0 then ()
  else begin
    let best = ref None in
    for i = 0 to m - 1 do
      Budget.tick ~what:"fsimplex: ratio test" ();
      let a = t.(i).(col) in
      if a > eps *. scale then begin
        let ratio = t.(i).(n) /. a in
        match !best with
        | None -> best := Some (ratio, i)
        | Some (r, i') ->
            if ratio < r || (ratio = r && basis.(i) < basis.(i')) then
              best := Some (ratio, i)
      end
    done;
    match !best with
    | None ->
        (* Phase-I objective is bounded below by 0: an "unbounded"
           column is pure round-off. Stop; the residual decides. *)
        ()
    | Some (_, row) ->
        Budget.tick ~what:"fsimplex pivot" ();
        if tb.pivot_count > max_pivots then
          raise
            (Budget.Exhausted
               (Budget.Solver_error
                  (Printf.sprintf "Fsimplex: pivot cap %d exceeded (cycling?)"
                     max_pivots)));
        pivot tb ~row ~col;
        iterate tb
  end

let feasible ~nvars ~rows () =
  List.iter
    (fun r ->
      if Array.length r.coeffs <> nvars then
        invalid_arg "Fsimplex.feasible: row length mismatch";
      Array.iter
        (fun c ->
          if not (Float.is_finite c) then
            invalid_arg "Fsimplex.feasible: non-finite coefficient")
        r.coeffs;
      if not (Float.is_finite r.rhs) then
        invalid_arg "Fsimplex.feasible: non-finite rhs")
    rows;
  let rows = Array.of_list rows in
  let m = Array.length rows in
  let n_split = 2 * nvars in
  let n_slack = m in
  let n = n_split + n_slack + m in
  let t = Array.init (m + 1) (fun _ -> Array.make (n + 1) 0.0) in
  let basis = Array.make m 0 in
  let flip = Array.make m false in
  for i = 0 to m - 1 do
    let { coeffs; op; rhs } = rows.(i) in
    let sign_flip = rhs < 0.0 in
    flip.(i) <- sign_flip;
    let put j v = t.(i).(j) <- (if sign_flip then -.v else v) in
    for v = 0 to nvars - 1 do
      Budget.tick ~what:"fsimplex: tableau setup" ();
      put (2 * v) coeffs.(v);
      put ((2 * v) + 1) (-.coeffs.(v))
    done;
    (match op with
    | Simplex.Le -> put (n_split + i) 1.0
    | Simplex.Ge -> put (n_split + i) (-1.0)
    | Simplex.Eq -> ());
    t.(i).(n) <- (if sign_flip then -.rhs else rhs);
    let art = n_split + n_slack + i in
    t.(i).(art) <- 1.0;
    basis.(i) <- art
  done;
  let tb =
    { t; basis; m; n; max_entry = 1.0; min_piv = infinity; pivot_count = 0 }
  in
  scan_growth tb;
  let initial_max = Float.max 1.0 tb.max_entry in
  (* Phase-I objective: minimize the artificial sum. Installing it
     into the last row subtracts each constraint row once (every
     artificial is basic with cost 1). *)
  for j = 0 to n do
    Budget.tick ~what:"fsimplex: objective install" ();
    let s = ref 0.0 in
    (* cqlint: allow R1 — column sum bounded by the row count; the
       enclosing loop ticks once per column *)
    for i = 0 to m - 1 do
      s := !s +. t.(i).(j)
    done;
    t.(m).(j) <- (if j >= n_split + n_slack && j < n then 1.0 -. !s else -. !s)
  done;
  iterate tb;
  let quality =
    {
      pivots = tb.pivot_count;
      min_pivot = (if tb.pivot_count = 0 then 1.0 else tb.min_piv);
      growth = tb.max_entry /. initial_max;
      residual = Float.abs t.(m).(n);
    }
  in
  let scale = Float.max 1.0 tb.max_entry in
  if quality.residual > 1e-7 *. scale then begin
    (* Infeasible: recover the dual prices from the reduced costs of
       the artificial columns (c_art = 1, so y_i = 1 - objrow[art_i]),
       then undo the rhs sign flips to express the certificate over
       the input rows. *)
    let mu =
      Array.init m (fun i ->
          Budget.tick ~what:"fsimplex: farkas extraction" ();
          let y = 1.0 -. t.(m).(n_split + n_slack + i) in
          if flip.(i) then -.y else y)
    in
    Infeasible (mu, quality)
  end
  else begin
    let x = Array.make nvars 0.0 in
    for i = 0 to m - 1 do
      Budget.tick ~what:"fsimplex: solution extraction" ();
      let b = basis.(i) in
      if b < n_split then begin
        let v = b / 2 in
        let contrib = if b land 1 = 0 then t.(i).(n) else -.t.(i).(n) in
        x.(v) <- x.(v) +. contrib
      end
    done;
    Feasible (x, quality)
  end

let feasible_b ?budget ~nvars ~rows () =
  Guard.run
    (match budget with Some b -> b | None -> Budget.installed ())
    (fun () -> feasible ~nvars ~rows ())
