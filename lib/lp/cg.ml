(* Preconditioned nonlinear conjugate gradient for regularized
   logistic regression over dense float rows.

   Objective, over weights w and bias b with labels y_i ∈ {+1,-1}:

     J(w,b) = l2·Σ w_j²  +  l1·Σ √(w_j² + l1_eps²)
            + Σ_i log(1 + exp(-y_i·(w·x_i + b)))

   The √(w²+ε²) term is the standard smooth surrogate for |w|: as the
   regularization path drives l1 up, weights collapse toward zero and
   [support] reads off the surviving coordinates — the
   minimal-separating-statistic side of the paper's dimension
   regularization (L-Sep[ℓ]), done numerically.

   The method is Polak–Ribière+ CG with a diagonal preconditioner and
   Armijo backtracking. Everything is a fixed-order loop over arrays:
   given the same input the trajectory is bit-for-bit reproducible
   (cqlint R6), and every iteration ticks the ambient budget. *)

type config = {
  l2 : float;
  l1 : float;
  l1_eps : float;  (* smoothing width of the |w| surrogate *)
  max_iters : int;
  tol : float;  (* sup-norm gradient stopping threshold *)
}

let default_config =
  { l2 = 1e-6; l1 = 0.0; l1_eps = 1e-3; max_iters = 200; tol = 1e-8 }

type fit = {
  weights : float array;
  bias : float;
  iters : int;
  converged : bool;  (* gradient dropped below [tol] *)
  objective : float;
}

(* log(1 + exp z) without overflow: for large z the 1 is invisible. *)
let log1p_exp z = if z > 35.0 then z else Float.log1p (Float.exp z)

(* σ(z) = 1/(1+exp(-z)), computed from the negative side for stability. *)
let sigmoid z =
  if z >= 0.0 then 1.0 /. (1.0 +. Float.exp (-.z))
  else begin
    let e = Float.exp z in
    e /. (1.0 +. e)
  end

let dot d (xs : float array) v =
  let s = ref 0.0 in
  (* cqlint: allow R1 — dot product bounded by the feature dimension *)
  for j = 0 to d - 1 do
    s := !s +. (xs.(j) *. v.(j))
  done;
  !s

let validate ~xs ~ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Cg.fit: |xs| <> |ys|";
  let d = if n = 0 then 0 else Array.length xs.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> d then invalid_arg "Cg.fit: ragged feature rows")
    xs;
  Array.iter
    (fun y ->
      if y <> 1.0 && y <> -1.0 then invalid_arg "Cg.fit: labels must be ±1")
    ys;
  (n, d)

let fit ?(config = default_config) ~xs ~ys () =
  if config.max_iters < 0 then invalid_arg "Cg.fit: max_iters < 0";
  if config.l1_eps <= 0.0 then invalid_arg "Cg.fit: l1_eps must be > 0";
  let n, d = validate ~xs ~ys in
  let { l2; l1; l1_eps; max_iters; tol } = config in
  (* Variable vector v = (w_0..w_{d-1}, bias) of length d+1. *)
  let dim = d + 1 in
  let v = Array.make dim 0.0 in
  let margin i v =
    Budget.tick ~what:"cg: margin" ();
    dot d xs.(i) v +. v.(d)
  in
  let objective v =
    let s = ref 0.0 in
    (* cqlint: allow R1 — regularizer sum bounded by the dimension *)
    for j = 0 to d - 1 do
      s :=
        !s
        +. (l2 *. v.(j) *. v.(j))
        +. (l1 *. Float.sqrt ((v.(j) *. v.(j)) +. (l1_eps *. l1_eps)))
    done;
    for i = 0 to n - 1 do
      s := !s +. log1p_exp (-.ys.(i) *. margin i v)
    done;
    !s
  in
  let gradient v g =
    (* cqlint: allow R1 — regularizer gradient bounded by the dimension *)
    for j = 0 to d - 1 do
      g.(j) <-
        (2.0 *. l2 *. v.(j))
        +. (l1 *. v.(j)
            /. Float.sqrt ((v.(j) *. v.(j)) +. (l1_eps *. l1_eps)))
    done;
    g.(d) <- 0.0;
    for i = 0 to n - 1 do
      let c = -.ys.(i) *. sigmoid (-.ys.(i) *. margin i v) in
      (* cqlint: allow R1 — row update bounded by the feature dimension *)
      for j = 0 to d - 1 do
        g.(j) <- g.(j) +. (c *. xs.(i).(j))
      done;
      g.(d) <- g.(d) +. c
    done
  in
  (* Diagonal preconditioner: curvature upper bound 0.25·Σ x_ij² from
     the logistic term plus the regularizer's constant part. *)
  let precond =
    let p = Array.make dim ((2.0 *. l2) +. (l1 /. l1_eps)) in
    for i = 0 to n - 1 do
      Budget.tick ~what:"cg: preconditioner row" ();
      (* cqlint: allow R1 — preconditioner sum bounded by the dimension *)
      for j = 0 to d - 1 do
        p.(j) <- p.(j) +. (0.25 *. xs.(i).(j) *. xs.(i).(j))
      done;
      p.(d) <- p.(d) +. 0.25
    done;
    Array.map (fun c -> 1.0 /. Float.max c 1e-12) p
  in
  let g = Array.make dim 0.0 in
  let g_prev = Array.make dim 0.0 in
  let dir = Array.make dim 0.0 in
  let trial = Array.make dim 0.0 in
  let sup_norm a =
    let m = ref 0.0 in
    (* cqlint: allow R1 — norm scan bounded by the dimension *)
    for j = 0 to dim - 1 do
      m := Float.max !m (Float.abs a.(j))
    done;
    !m
  in
  let obj = ref (objective v) in
  gradient v g;
  let iters = ref 0 in
  let converged = ref (sup_norm g <= tol) in
  (try
     while (not !converged) && !iters < max_iters do
       Budget.tick ~what:"cg: iteration" ();
       (* Direction: preconditioned steepest descent on the first
          iteration and after restarts; PR+ conjugacy otherwise. *)
       let beta =
         if !iters = 0 then 0.0
         else begin
           let num = ref 0.0 and den = ref 0.0 in
           (* cqlint: allow R1 — PR+ coefficients bounded by the dimension *)
           for j = 0 to dim - 1 do
             num := !num +. (precond.(j) *. g.(j) *. (g.(j) -. g_prev.(j)));
             den := !den +. (precond.(j) *. g_prev.(j) *. g_prev.(j))
           done;
           if !den <= 0.0 then 0.0 else Float.max 0.0 (!num /. !den)
         end
       in
       let descent = ref 0.0 in
       (* cqlint: allow R1 — direction update bounded by the dimension *)
       for j = 0 to dim - 1 do
         dir.(j) <- (-.precond.(j) *. g.(j)) +. (beta *. dir.(j));
         descent := !descent +. (dir.(j) *. g.(j))
       done;
       if !descent >= 0.0 then begin
         (* Not a descent direction: restart on preconditioned
            steepest descent. *)
         descent := 0.0;
         (* cqlint: allow R1 — restart bounded by the dimension *)
         for j = 0 to dim - 1 do
           dir.(j) <- -.precond.(j) *. g.(j);
           descent := !descent +. (dir.(j) *. g.(j))
         done
       end;
       if !descent >= 0.0 then begin
         (* Gradient numerically zero in the preconditioned metric. *)
         converged := true;
         raise Exit
       end;
       (* Armijo backtracking from a unit step. *)
       let step = ref 1.0 in
       let accepted = ref false in
       let backtracks = ref 0 in
       while (not !accepted) && !backtracks <= 40 do
         Budget.tick ~what:"cg: line search" ();
         (* cqlint: allow R1 — trial point bounded by the dimension *)
         for j = 0 to dim - 1 do
           trial.(j) <- v.(j) +. (!step *. dir.(j))
         done;
         let obj' = objective trial in
         if obj' <= !obj +. (1e-4 *. !step *. !descent) then begin
           accepted := true;
           obj := obj';
           Array.blit trial 0 v 0 dim
         end
         else begin
           step := !step *. 0.5;
           incr backtracks
         end
       done;
       if not !accepted then begin
         (* Line search stalled: the objective is flat to double
            precision along every useful direction. *)
         converged := true;
         raise Exit
       end;
       Array.blit g 0 g_prev 0 dim;
       gradient v g;
       incr iters;
       if sup_norm g <= tol then converged := true
     done
   with Exit -> ());
  {
    weights = Array.sub v 0 d;
    bias = v.(d);
    iters = !iters;
    converged = !converged;
    objective = !obj;
  }

let fit_b ?budget ?config ~xs ~ys () =
  Guard.run
    (match budget with Some b -> b | None -> Budget.installed ())
    (fun () -> fit ?config ~xs ~ys ())

let support ?(threshold = 1e-6) fit =
  let out = ref [] in
  for j = Array.length fit.weights - 1 downto 0 do
    Budget.tick ~what:"cg: support scan" ();
    if Float.abs fit.weights.(j) > threshold then out := j :: !out
  done;
  !out
