(** Preconditioned conjugate-gradient solver for l2- and
    smoothed-l1-regularized logistic regression — the margin-seeking
    half of the numeric separation tier.

    Minimizes, over weights [w] and bias [b] with labels in {±1}:

    {[ J(w,b) = l2·Σ w² + l1·Σ √(w² + l1_eps²) + Σ log(1 + exp(-y·(w·x + b))) ]}

    by Polak–Ribière+ nonlinear CG with a diagonal preconditioner and
    Armijo backtracking. On a separable instance the unregularized
    logistic loss pushes margins positive, so the minimizer is a
    strong separating-hyperplane candidate; the caller certifies it in
    exact arithmetic (see [Certify] in lib/linsep) rather than
    trusting the float answer. With [l1 > 0] the smoothed-l1 path
    drives irrelevant weights toward zero and {!support} reads off a
    small candidate statistic — the numeric side of the paper's
    dimension regularization.

    All reductions are fixed-order array loops: identical inputs give
    bit-identical trajectories (cqlint R6), and each iteration,
    line-search probe, and data-row pass ticks the ambient budget. *)

type config = {
  l2 : float;  (** ridge coefficient (keep [> 0] for strict convexity) *)
  l1 : float;  (** smoothed-l1 coefficient ([0] disables the path) *)
  l1_eps : float;  (** smoothing width of the [|w|] surrogate; [> 0] *)
  max_iters : int;  (** CG iteration cap *)
  tol : float;  (** sup-norm gradient stopping threshold *)
}

(** [{l2 = 1e-6; l1 = 0.0; l1_eps = 1e-3; max_iters = 200; tol = 1e-8}] *)
val default_config : config

type fit = {
  weights : float array;
  bias : float;
  iters : int;  (** iterations actually performed *)
  converged : bool;
      (** the gradient dropped below [tol] (or the objective went flat
          to double precision — further progress is not representable) *)
  objective : float;  (** final objective value *)
}

(** [fit ?config ~xs ~ys ()] minimizes the objective over the rows
    [xs] with labels [ys].
    @raise Invalid_argument on ragged rows, [|xs| <> |ys|], labels
    outside {±1}, [max_iters < 0], or [l1_eps <= 0]. *)
val fit : ?config:config -> xs:float array array -> ys:float array -> unit -> fit

(** [fit_b ?budget ?config ~xs ~ys ()] is {!fit} under {!Guard.run}
    (default: the ambient budget). *)
val fit_b :
  ?budget:Budget.t ->
  ?config:config ->
  xs:float array array ->
  ys:float array ->
  unit ->
  (fit, Guard.failure) result

(** [support ?threshold f] is the sorted list of coordinates whose
    fitted weight magnitude exceeds [threshold] (default 1e-6) — the
    candidate minimal separating statistic under the l1 path. *)
val support : ?threshold:float -> fit -> int list
