(* Two-phase full-tableau simplex, exact rationals.

   Internal standard form: free variable x_i is split into
   x_i = p_i - m_i with p_i, m_i >= 0; each constraint row gets a slack
   (Le: +s, Ge: -s) and, after sign-normalizing the right-hand side, an
   artificial variable for phase I.

   Pivoting uses Dantzig pricing (most negative reduced cost) while it
   is making progress and falls back to Bland's rule — which provably
   cannot cycle — once the pivot count passes a size-derived threshold,
   so degenerate LPs terminate. A hard per-phase pivot cap converts a
   would-be infinite loop into a structured Budget failure, and every
   pivot consumes one unit of the ambient fuel budget. *)

type op = Le | Ge | Eq
type row = { coeffs : Rat.t array; op : op; rhs : Rat.t }

type outcome =
  | Optimal of Rat.t array * Rat.t
  | Unbounded of Rat.t array
  | Infeasible

(* Tableau: [m] constraint rows over [n] columns plus rhs column; [t]
   has m+1 rows, the last being the objective row (reduced costs, with
   the negated objective value in the rhs cell). [basis.(i)] is the
   column basic in row i. *)
type tableau = {
  t : Rat.t array array;
  basis : int array;
  m : int;
  n : int;
}

let pivot tb ~row ~col =
  let { t; m; n; _ } = tb in
  let p = t.(row).(col) in
  assert (not (Rat.is_zero p));
  let inv = Rat.inv p in
  for j = 0 to n do
    Budget.tick ~what:"simplex: row normalization" ();
    t.(row).(j) <- Rat.mul t.(row).(j) inv
  done;
  for i = 0 to m do
    if i <> row && not (Rat.is_zero t.(i).(col)) then begin
      let f = t.(i).(col) in
      for j = 0 to n do
        Budget.tick ~what:"simplex: row elimination" ();
        t.(i).(j) <- Rat.sub t.(i).(j) (Rat.mul f t.(row).(j))
      done
    end
  done;
  tb.basis.(row) <- col

(* Entering column. Dantzig: most negative reduced cost (fast in
   practice, may cycle on degenerate LPs). Bland: least column with
   negative reduced cost (anti-cycling guarantee). Leaving row: min
   ratio, ties by least basis column. Returns `Optimal or `Unbounded
   with the offending column. *)
let entering_dantzig obj ~allowed n =
  let best = ref (-1) in
  let best_cost = ref Rat.zero in
  for j = 0 to n - 1 do
    Budget.tick ~what:"simplex: pricing" ();
    if allowed j && Rat.sign obj.(j) < 0
       && (!best < 0 || Rat.compare obj.(j) !best_cost < 0)
    then begin
      best := j;
      best_cost := obj.(j)
    end
  done;
  !best

let entering_bland obj ~allowed n =
  let entering = ref (-1) in
  (try
     for j = 0 to n - 1 do
       Budget.tick ~what:"simplex: pricing" ();
       if allowed j && Rat.sign obj.(j) < 0 then begin
         entering := j;
         raise Exit
       end
     done
   with Exit -> ());
  !entering

let rec iterate ?(pivots = ref 0) tb ~allowed =
  let { t; m; n; basis } = tb in
  (* Bland's rule cannot cycle, so switching to it after a burst of
     Dantzig pivots guarantees termination; the hard cap turns any
     remaining pathology (a bug, not degeneracy) into a structured
     failure instead of an endless loop. *)
  let bland_after = 64 + (4 * (m + n)) in
  let max_pivots = 10_000 + (200 * (m + n)) in
  let obj = t.(m) in
  let col =
    if !pivots < bland_after then entering_dantzig obj ~allowed n
    else entering_bland obj ~allowed n
  in
  if col < 0 then `Optimal
  else begin
    let best = ref None in
    for i = 0 to m - 1 do
      Budget.tick ~what:"simplex: ratio test" ();
      let a = t.(i).(col) in
      if Rat.sign a > 0 then begin
        let ratio = Rat.div t.(i).(n) a in
        match !best with
        | None -> best := Some (ratio, i)
        | Some (r, i') ->
            let c = Rat.compare ratio r in
            if c < 0 || (c = 0 && basis.(i) < basis.(i')) then
              best := Some (ratio, i)
      end
    done;
    match !best with
    | None -> `Unbounded col
    | Some (_, row) ->
        Budget.tick ~what:"simplex pivot" ();
        incr pivots;
        if !pivots > max_pivots then
          raise
            (Budget.Exhausted
               (Budget.Solver_error
                  (Printf.sprintf
                     "Simplex: pivot cap %d exceeded (cycling?)" max_pivots)));
        pivot tb ~row ~col;
        iterate ~pivots tb ~allowed
  end

(* Install objective [c] (length n) into the last row given the current
   basis: reduced costs c_j - c_B B^{-1} A_j. The tableau rows already
   hold B^{-1}A and B^{-1}b. *)
let set_objective tb c =
  let { t; m; n; basis } = tb in
  for j = 0 to n do
    Budget.tick ~what:"simplex: objective install" ();
    t.(m).(j) <- (if j < n then c.(j) else Rat.zero)
  done;
  for i = 0 to m - 1 do
    let cb = c.(basis.(i)) in
    if not (Rat.is_zero cb) then
      for j = 0 to n do
        Budget.tick ~what:"simplex: objective install" ();
        t.(m).(j) <- Rat.sub t.(m).(j) (Rat.mul cb t.(i).(j))
      done
  done

let solve ~nvars ~rows ~objective () =
  if Array.length objective <> nvars then
    invalid_arg "Simplex.solve: objective length mismatch";
  List.iter
    (fun r ->
      if Array.length r.coeffs <> nvars then
        invalid_arg "Simplex.solve: row length mismatch")
    rows;
  let rows = Array.of_list rows in
  let m = Array.length rows in
  (* Columns: 2*nvars split vars, then m slack slots (unused for Eq),
     then m artificials. *)
  let n_split = 2 * nvars in
  let n_slack = m in
  let n_art = m in
  let n = n_split + n_slack + n_art in
  let t = Array.init (m + 1) (fun _ -> Array.make (n + 1) Rat.zero) in
  let basis = Array.make m 0 in
  for i = 0 to m - 1 do
    let { coeffs; op; rhs } = rows.(i) in
    (* Row with slack, before sign normalization. *)
    let sign_flip = Rat.sign rhs < 0 in
    let put j v = t.(i).(j) <- (if sign_flip then Rat.neg v else v) in
    for v = 0 to nvars - 1 do
      Budget.tick ~what:"simplex: tableau setup" ();
      put (2 * v) coeffs.(v);
      put ((2 * v) + 1) (Rat.neg coeffs.(v))
    done;
    (match op with
    | Le -> put (n_split + i) Rat.one
    | Ge -> put (n_split + i) Rat.minus_one
    | Eq -> ());
    t.(i).(n) <- (if sign_flip then Rat.neg rhs else rhs);
    (* Artificial variable, basic in this row. *)
    let art = n_split + n_slack + i in
    t.(i).(art) <- Rat.one;
    basis.(i) <- art
  done;
  let tb = { t; basis; m; n } in
  (* Phase I: minimize the sum of artificials. *)
  let phase1_cost =
    Array.init n (fun j -> if j >= n_split + n_slack then Rat.one else Rat.zero)
  in
  set_objective tb phase1_cost;
  (match iterate tb ~allowed:(fun _ -> true) with
  | `Optimal -> ()
  | `Unbounded _ -> assert false (* phase-I objective is bounded below by 0 *));
  let phase1_value = Rat.neg t.(m).(n) in
  if Rat.sign phase1_value > 0 then Infeasible
  else begin
    (* Drive surviving artificials out of the basis where possible. *)
    for i = 0 to m - 1 do
      if basis.(i) >= n_split + n_slack then begin
        let found = ref false in
        for j = 0 to n_split + n_slack - 1 do
          Budget.tick ~what:"simplex: artificial drive-out" ();
          if (not !found) && not (Rat.is_zero t.(i).(j)) then begin
            pivot tb ~row:i ~col:j;
            found := true
          end
        done
        (* If no pivot exists the row is redundant (all-zero over real
           columns); leaving the artificial basic at value zero is
           harmless as long as it never re-enters. *)
      end
    done;
    let allowed j = j < n_split + n_slack in
    let phase2_cost =
      Array.init n (fun j ->
          if j < n_split then begin
            let v = j / 2 in
            if j land 1 = 0 then objective.(v) else Rat.neg objective.(v)
          end
          else Rat.zero)
    in
    set_objective tb phase2_cost;
    let extract () =
      let x = Array.make nvars Rat.zero in
      for i = 0 to m - 1 do
        Budget.tick ~what:"simplex: solution extraction" ();
        let b = basis.(i) in
        if b < n_split then begin
          let v = b / 2 in
          let contrib =
            if b land 1 = 0 then t.(i).(n) else Rat.neg t.(i).(n)
          in
          x.(v) <- Rat.add x.(v) contrib
        end
      done;
      x
    in
    match iterate tb ~allowed with
    | `Optimal -> Optimal (extract (), Rat.neg t.(m).(n))
    | `Unbounded _ -> Unbounded (extract ())
  end

let feasible ~nvars ~rows () =
  match solve ~nvars ~rows ~objective:(Array.make nvars Rat.zero) () with
  | Optimal (x, _) | Unbounded x -> Some x
  | Infeasible -> None

let solve_b ?budget ~nvars ~rows ~objective () =
  Guard.run
    (match budget with Some b -> b | None -> Budget.installed ())
    (fun () -> solve ~nvars ~rows ~objective ())

let feasible_b ?budget ~nvars ~rows () =
  Guard.run
    (match budget with Some b -> b | None -> Budget.installed ())
    (fun () -> feasible ~nvars ~rows ())

let check_solution ~rows x =
  List.for_all
    (fun { coeffs; op; rhs } ->
      let lhs = ref Rat.zero in
      Array.iteri
        (fun i c -> lhs := Rat.add !lhs (Rat.mul c x.(i)))
        coeffs;
      match op with
      | Le -> Rat.compare !lhs rhs <= 0
      | Ge -> Rat.compare !lhs rhs >= 0
      | Eq -> Rat.equal !lhs rhs)
    rows
