(** Constructive FO feature generation (Prop 8.1 made effective).

    FO has the dimension-collapse property: a training database is
    FO-separable iff a {e single} FO feature separates it. This module
    materializes that feature as a concrete {!Fo_formula}: the
    disjunction, over the isomorphism classes of positively-labeled
    entities, of the {e diagram formula} of the class — the formula
    that pins down the pointed database up to isomorphism (existential
    witnesses for every other element, their distinctness, every
    present fact, the negation of every absent fact over the schema,
    and a domain-closure clause). Evaluating the feature on any
    database is exactly a pointed-isomorphism test, which the tests
    cross-check against {!Struct_iso}. *)

(** [diagram_formula (db, e)] is [φ(x)] with
    [φ(D', f)] true iff [(D', f) ≅ (db, e)]. Size is polynomial in
    [|dom(db)|^max_arity] (the negated-atom block). *)
val diagram_formula : Db.t * Elem.t -> Fo_formula.t

(** [generate t] is the single separating FO feature for an
    FO-separable training database: [Some φ] selecting exactly the
    entities isomorphic to a positive one; [None] if [t] is not
    FO-separable. *)
val generate : Labeling.training -> Fo_formula.t option

(** [classify_with_formula t eval_db] classifies by evaluating the
    generated feature ([Pos] iff selected) — provably equal to
    {!Fo_sep.fo_classify} when the latter defaults fresh classes to
    [Neg].
    @raise Invalid_argument if [t] is not FO-separable. *)
val classify_with_formula : Labeling.training -> Db.t -> Labeling.t

(** Budgeted counterparts of the entry points above: each runs under
    the given budget (default: the ambient one) and converts resource
    exhaustion into a structured [Error]. *)

val generate_b :
  ?budget:Budget.t -> Labeling.training ->
  (Fo_formula.t option, Guard.failure) result

val classify_with_formula_b :
  ?budget:Budget.t -> Labeling.training -> Db.t ->
  (Labeling.t, Guard.failure) result
