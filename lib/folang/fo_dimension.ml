let dedupe sets =
  List.fold_left
    (fun acc s -> if List.exists (Elem.Set.equal s) acc then acc else s :: acc)
    [] sets
  |> List.rev

let indicator_family ~queries ~db =
  dedupe (List.map (fun q -> Elem.Set.of_list (Cq.eval q db)) queries)

let closure_family ~queries ~db =
  let eta = Elem.Set.of_list (Db.entities db) in
  let base = indicator_family ~queries ~db in
  dedupe (base @ List.map (fun s -> Elem.Set.diff eta s) base)

let collapse_counterexample ~queries ~db =
  let family = closure_family ~queries ~db in
  let mem s = List.exists (Elem.Set.equal s) family in
  (* cqlint: allow R1 — pairwise scan bounded by the family size *)
  let rec scan = function
    | [] -> None
    | a :: rest -> begin
        match
          List.find_opt (fun b -> not (mem (Elem.Set.inter a b))) rest
        with
        | Some b -> Some (a, b)
        | None -> scan rest
      end
  in
  scan family

let family_is_linear ~queries ~db =
  let family = indicator_family ~queries ~db in
  (* cqlint: allow R1 — pairwise scan bounded by the family size *)
  let rec linear = function
    | [] -> true
    | a :: rest ->
        List.for_all
          (fun b -> Elem.Set.subset a b || Elem.Set.subset b a)
          rest
        && linear rest
  in
  linear family

let chain_length ~queries ~db =
  if not (family_is_linear ~queries ~db) then
    invalid_arg "Fo_dimension.chain_length: family is not linear";
  List.length (indicator_family ~queries ~db)
