type t =
  | Atom of Fact.t
  | Eq of Elem.t * Elem.t
  | Not of t
  | And of t list
  | Or of t list
  | Exists of Elem.t * t
  | Forall of Elem.t * t

let tt = And []
let ff = Or []

let of_cq q =
  let body = And (List.map (fun a -> Atom a) (Db.facts (Cq.canonical q))) in
  Elem.Set.fold
    (fun v acc -> Exists (v, acc))
    (Cq.existential_vars q)
    body

(* cqlint: allow R1 — structural recursion bounded by the formula size *)
let rec free_vars = function
  | Atom f -> Fact.elems f
  | Eq (a, b) -> Elem.Set.add a (Elem.Set.singleton b)
  | Not f -> free_vars f
  | And fs | Or fs ->
      List.fold_left
        (fun acc f -> Elem.Set.union acc (free_vars f))
        Elem.Set.empty fs
  | Exists (v, f) | Forall (v, f) -> Elem.Set.remove v (free_vars f)

(* cqlint: allow R1 — structural recursion bounded by the formula size *)
let rec variables = function
  | Atom f -> Fact.elems f
  | Eq (a, b) -> Elem.Set.add a (Elem.Set.singleton b)
  | Not f -> variables f
  | And fs | Or fs ->
      List.fold_left
        (fun acc f -> Elem.Set.union acc (variables f))
        Elem.Set.empty fs
  | Exists (v, f) | Forall (v, f) -> Elem.Set.add v (variables f)

let rec eval db ~env f =
  Budget.tick ~what:"fo: formula evaluation" ();
  match f with
  | Atom fact ->
      let resolve a =
        match Elem.Map.find_opt a env with Some v -> v | None -> a
      in
      Db.mem (Fact.map_elems resolve fact) db
  | Eq (a, b) ->
      let resolve x =
        match Elem.Map.find_opt x env with Some v -> v | None -> x
      in
      Elem.equal (resolve a) (resolve b)
  | Not f -> not (eval db ~env f)
  | And fs -> List.for_all (fun f -> eval db ~env f) fs
  | Or fs -> List.exists (fun f -> eval db ~env f) fs
  | Exists (v, f) ->
      Elem.Set.exists
        (fun d -> eval db ~env:(Elem.Map.add v d env) f)
        (Db.domain db)
  | Forall (v, f) ->
      Elem.Set.for_all
        (fun d -> eval db ~env:(Elem.Map.add v d env) f)
        (Db.domain db)

let selects db ~free f e = eval db ~env:(Elem.Map.singleton free e) f

let eval_unary db ~free f =
  List.filter (fun e -> selects db ~free f e) (Db.entities db)

(* cqlint: allow R1 — structural recursion bounded by the formula size *)
let rec size = function
  | Atom _ | Eq _ -> 1
  | Not f -> 1 + size f
  | And fs | Or fs -> List.fold_left (fun acc f -> acc + size f) 1 fs
  | Exists (_, f) | Forall (_, f) -> 1 + size f

(* cqlint: allow R1 — structural recursion bounded by the formula size *)
let rec pp fmt = function
  | Atom f -> Fact.pp fmt f
  | Eq (a, b) -> Format.fprintf fmt "%a = %a" Elem.pp a Elem.pp b
  | Not f -> Format.fprintf fmt "¬(%a)" pp f
  | And [] -> Format.pp_print_string fmt "true"
  | And fs ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ∧ ")
           pp)
        fs
  | Or [] -> Format.pp_print_string fmt "false"
  | Or fs ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ∨ ")
           pp)
        fs
  | Exists (v, f) -> Format.fprintf fmt "∃%a.%a" Elem.pp v pp f
  | Forall (v, f) -> Format.fprintf fmt "∀%a.%a" Elem.pp v pp f

let to_string f = Format.asprintf "%a" pp f
