(** The k-pebble Ehrenfeucht–Fraïssé game: FO_k-equivalence.

    Section 8 of the paper shows that FO_k — first-order logic
    restricted to [k] variables — has the dimension-collapse property
    (Corollary 8.5), so FO_k-Sep reduces to pairwise
    FO_k-equivalence of pointed databases, decided here by the classic
    k-pebble game on finite structures: Spoiler repeatedly places or
    moves one of [k] pebble pairs on either structure, Duplicator
    answers on the other side, and the pebbled correspondence (plus
    the pinned tuple) must stay a partial isomorphism. Duplicator wins
    the infinite game iff the structures agree on all FO sentences
    with at most [k] variables.

    Decision: greatest fixpoint over partial isomorphisms of size ≤ k
    with single-step forth {e and} back conditions plus restriction
    closure — polynomial in [(|A|·|B|)^k] for fixed [k]. *)

(** [equivalent ~k (a, ā) (b, b̄)] decides
    [(A, ā) ≡_{FO_k} (B, b̄)].
    @raise Invalid_argument if [k < 1] or tuple lengths differ. *)
val equivalent : k:int -> Db.t * Elem.t list -> Db.t * Elem.t list -> bool

(** [fok_separable ~k t] decides FO_k-Sep: no oppositely-labeled
    FO_k-equivalent entity pair (dimension collapse makes pairwise
    testing complete, as for FO). *)
val fok_separable : k:int -> Labeling.training -> bool

(** [fok_inseparable_witness ~k t] returns an offending pair when not
    separable. *)
val fok_inseparable_witness :
  k:int -> Labeling.training -> (Elem.t * Elem.t) option

(** [fok_classify ~k t eval_db] — FO_k-Cls by equivalence class:
    evaluation entities FO_k-equivalent to a training entity inherit
    its label, fresh classes default to [Neg] (any class-constant
    choice is consistent, since every ≡_k-class of pointed finite
    structures is FO_k-definable).
    @raise Invalid_argument if [t] is not FO_k-separable. *)
val fok_classify : k:int -> Labeling.training -> Db.t -> Labeling.t

(** Budgeted counterparts of the entry points above: each runs under
    the given budget (default: the ambient one) and converts resource
    exhaustion into a structured [Error]. *)

val fok_separable_b :
  ?budget:Budget.t -> k:int -> Labeling.training ->
  (bool, Guard.failure) result

val fok_inseparable_witness_b :
  ?budget:Budget.t -> k:int -> Labeling.training ->
  ((Elem.t * Elem.t) option, Guard.failure) result

val fok_classify_b :
  ?budget:Budget.t -> k:int -> Labeling.training -> Db.t ->
  (Labeling.t, Guard.failure) result
