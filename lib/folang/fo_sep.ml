let opposite_pairs (t : Labeling.training) =
  let pos = Labeling.positives t.labeling in
  let neg = Labeling.negatives t.labeling in
  List.concat_map (fun e -> List.map (fun e' -> (e, e')) neg) pos

let fo_inseparable_witness (t : Labeling.training) =
  List.find_opt
    (fun (e, e') ->
      Budget.tick ~what:"FO separability: isomorphism tests" ();
      Struct_iso.isomorphic_pointed (t.db, [ e ]) (t.db, [ e' ]))
    (opposite_pairs t)

let fo_separable t = fo_inseparable_witness t = None

let default_budget = function Some b -> b | None -> Budget.installed ()

let fo_separable_b ?budget t =
  Guard.run (default_budget budget) (fun () -> fo_separable t)

let fo_inseparable_witness_b ?budget t =
  Guard.run (default_budget budget) (fun () -> fo_inseparable_witness t)

let epfo_separable (t : Labeling.training) =
  not
    (List.exists
       (fun (e, e') -> Hom.equiv_pointed t.db e t.db e')
       (opposite_pairs t))

let group_by_iso db entities =
  List.fold_left
    (fun classes e ->
      (* cqlint: allow R1 — recursion bounded by the class count; the iso
         test inside ticks *)
      let rec place = function
        | [] -> [ [ e ] ]
        | (rep :: _ as cls) :: rest ->
            if Struct_iso.isomorphic_pointed (db, [ e ]) (db, [ rep ]) then
              (e :: cls) :: rest
            else cls :: place rest
        | [] :: _ -> assert false
      in
      place classes)
    [] entities

let iso_classes (t : Labeling.training) =
  group_by_iso t.db (Db.entities t.db)

let epfo_separable_b ?budget t =
  Guard.run (default_budget budget) (fun () -> epfo_separable t)

let iso_classes_b ?budget t =
  Guard.run (default_budget budget) (fun () -> iso_classes t)

let fo_classify (t : Labeling.training) eval_db =
  if not (fo_separable t) then
    invalid_arg "Fo_sep.fo_classify: training database is not FO-separable";
  let train_reps =
    List.map
      (fun cls ->
        match cls with
        | rep :: _ -> (rep, Labeling.get rep t.labeling)
        | [] -> assert false)
      (iso_classes t)
  in
  List.fold_left
    (fun acc f ->
      let label =
        match
          List.find_opt
            (fun (rep, _) ->
              (* FO-equivalence across databases on finite structures
                 is isomorphism of the pointed databases. *)
              Struct_iso.isomorphic_pointed (t.db, [ rep ]) (eval_db, [ f ]))
            train_reps
        with
        | Some (_, l) -> l
        | None -> Labeling.Neg
      in
      Labeling.set f label acc)
    Labeling.empty (Db.entities eval_db)

let fo_classify_b ?budget t eval_db =
  Guard.run (default_budget budget) (fun () -> fo_classify t eval_db)
