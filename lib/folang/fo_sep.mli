(** Separability with FO feature queries (Section 8).

    FO has the dimension-collapse property (Prop 8.1): a training
    database is FO-separable iff a single FO feature separates it, and
    (Cor 8.2) the problem is GI-complete — equivalent to pairwise
    isomorphism of pointed databases: FO features cannot distinguish
    [e] from [e'] exactly when [(D,e) ≅ (D,e')].

    ∃FO⁺-separability collapses to CQ-separability (Prop 8.3(2)):
    two entities are ∃FO⁺-indistinguishable iff homomorphically
    equivalent. *)

(** [fo_separable t] decides FO-Sep: no oppositely-labeled pair of
    entities with [(D,e) ≅ (D,e')]. *)
val fo_separable : Labeling.training -> bool

(** [fo_separable_b ?budget t] is {!fo_separable} run under [budget]
    (default: the ambient budget): always returns, converting resource
    exhaustion into [Error]. *)
val fo_separable_b :
  ?budget:Budget.t -> Labeling.training -> (bool, Guard.failure) result

(** [fo_inseparable_witness t] returns an oppositely-labeled isomorphic
    pair when FO-separation is impossible. *)
val fo_inseparable_witness : Labeling.training -> (Elem.t * Elem.t) option

(** [fo_classify t eval_db] solves FO-Cls: labels the entities of
    [eval_db] consistently with some FO statistic separating [t].
    Evaluation entities isomorphic to a training entity inherit its
    label; the others are grouped by isomorphism class and each fresh
    class gets [Neg] (any per-class choice is consistent).
    @raise Invalid_argument if [t] is not FO-separable. *)
val fo_classify : Labeling.training -> Db.t -> Labeling.t

(** [epfo_separable t] decides ∃FO⁺-Sep — equal to CQ-Sep: no
    oppositely-labeled homomorphically-equivalent pair. *)
val epfo_separable : Labeling.training -> bool

(** [iso_classes t] groups the training entities by isomorphism type of
    their pointed database — the finest partition any FO statistic can
    induce. *)
val iso_classes : Labeling.training -> Elem.t list list

(** Budgeted counterparts of the entry points above, in the style of
    {!fo_separable_b}: each runs under the given budget (default: the
    ambient one) and converts resource exhaustion into a structured
    [Error]. *)

val fo_inseparable_witness_b :
  ?budget:Budget.t -> Labeling.training ->
  ((Elem.t * Elem.t) option, Guard.failure) result

val fo_classify_b :
  ?budget:Budget.t -> Labeling.training -> Db.t ->
  (Labeling.t, Guard.failure) result

val epfo_separable_b :
  ?budget:Budget.t -> Labeling.training -> (bool, Guard.failure) result

val iso_classes_b :
  ?budget:Budget.t -> Labeling.training ->
  (Elem.t list list, Guard.failure) result
