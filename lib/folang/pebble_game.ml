(* Greatest fixpoint for the k-pebble game.

   A position is a partial correspondence of at most k (a, b) pairs,
   stored as a sorted association list keyed by the a-side. Alive
   positions must be partial isomorphisms relative to the pins; a
   position dies when
   - a one-pair restriction died (Spoiler lifts a pebble first), or
   - it has fewer than k pairs and some forth/back extension has no
     alive answer (Spoiler places a pebble Duplicator cannot match).
   Duplicator wins iff the empty position survives. *)

let partial_iso ~pin_a ~pin_b a b pairs =
  (* The full correspondence: pebbled pairs plus pins. *)
  let full = pairs @ List.combine pin_a pin_b in
  (* functional + injective *)
  (* cqlint: allow R1 — pairwise scan bounded by k pebbles plus the pins *)
  let rec functional = function
    | [] -> true
    | (x, y) :: rest ->
        List.for_all
          (fun (x', y') ->
            (not (Elem.equal x x') || Elem.equal y y')
            && (not (Elem.equal y y') || Elem.equal x x'))
          rest
        && functional rest
  in
  functional full
  &&
  let dom = List.map fst full and img = List.map snd full in
  let map_a x =
    match List.find_opt (fun (x', _) -> Elem.equal x x') full with
    | Some (_, y) -> y
    | None -> raise Exit
  in
  let map_b y =
    match List.find_opt (fun (_, y') -> Elem.equal y y') full with
    | Some (x, _) -> x
    | None -> raise Exit
  in
  (* facts within the domain must transfer in both directions *)
  let facts_within db scope map target =
    List.for_all
      (fun f ->
        match Fact.map_elems map f with
        | f' -> Db.mem f' target
        | exception Exit -> true)
      (List.sort_uniq Fact.compare
         (List.concat_map (fun x -> Db.facts_with_elem x db) scope))
  in
  facts_within a dom map_a b && facts_within b img map_b a

let equivalent ~k (a, tuple_a) (b, tuple_b) =
  if k < 1 then invalid_arg "Pebble_game.equivalent: k must be >= 1";
  if List.length tuple_a <> List.length tuple_b then
    invalid_arg "Pebble_game.equivalent: tuples of different lengths";
  let pin_a = tuple_a and pin_b = tuple_b in
  let ok_pos pairs = partial_iso ~pin_a ~pin_b a b pairs in
  if not (ok_pos []) then false
  else begin
    let dom_a = Elem.Set.elements (Db.domain a) in
    let dom_b = Elem.Set.elements (Db.domain b) in
    (* Enumerate alive positions level by level (size 0..k). *)
    let key pairs =
      List.sort
        (fun (x, _) (x', _) -> Elem.compare x x')
        pairs
    in
    let positions = Hashtbl.create 1024 in
    (* key -> id *)
    let store = ref [] in
    let npos = ref 0 in
    let add pairs =
      let pairs = key pairs in
      if not (Hashtbl.mem positions pairs) then begin
        Hashtbl.replace positions pairs !npos;
        store := pairs :: !store;
        incr npos
      end
    in
    let rec enumerate pairs size =
      Budget.tick ~what:"pebble game: positions" ();
      add pairs;
      if size < k then
        List.iter
          (fun x ->
            if not (List.exists (fun (x', _) -> Elem.equal x x') pairs) then
              List.iter
                (fun y ->
                  let pairs' = (x, y) :: pairs in
                  if ok_pos pairs' then enumerate pairs' (size + 1))
                dom_b)
          dom_a
    in
    enumerate [] 0;
    let store = Array.of_list (List.rev !store) in
    let n = !npos in
    let alive = Array.make n true in
    let id_of pairs = Hashtbl.find_opt positions (key pairs) in
    (* Single sweep conditions; iterate to fixpoint. *)
    let survives id =
      Budget.tick ~what:"pebble game: fixpoint" ();
      let pairs = store.(id) in
      let size = List.length pairs in
      (* restriction closure *)
      List.for_all
        (fun p ->
          match id_of (List.filter (fun p' -> p' != p) pairs) with
          | Some rid -> alive.(rid)
          | None -> false)
        pairs
      && (size = k
         ||
         (* forth *)
         List.for_all
           (fun x ->
             List.exists (fun (x', _) -> Elem.equal x x') pairs
             || List.exists
                  (fun y ->
                    match id_of ((x, y) :: pairs) with
                    | Some eid -> alive.(eid)
                    | None -> false)
                  dom_b)
           dom_a
         &&
         (* back *)
         List.for_all
           (fun y ->
             List.exists (fun (_, y') -> Elem.equal y y') pairs
             || List.exists
                  (fun x ->
                    match id_of ((x, y) :: pairs) with
                    | Some eid -> alive.(eid)
                    | None -> false)
                  dom_a)
           dom_b)
    in
    let changed = ref true in
    while !changed do
      changed := false;
      for id = 0 to n - 1 do
        if alive.(id) && not (survives id) then begin
          alive.(id) <- false;
          changed := true
        end
      done
    done;
    match id_of [] with Some id -> alive.(id) | None -> false
  end

let opposite_pairs (t : Labeling.training) =
  let pos = Labeling.positives t.labeling in
  let neg = Labeling.negatives t.labeling in
  List.concat_map (fun e -> List.map (fun e' -> (e, e')) neg) pos

let fok_inseparable_witness ~k (t : Labeling.training) =
  List.find_opt
    (fun (e, e') -> equivalent ~k (t.db, [ e ]) (t.db, [ e' ]))
    (opposite_pairs t)

let fok_separable ~k t = fok_inseparable_witness ~k t = None

(* FO_k classification: like FO classification, by equivalence class.
   FO_k-equivalence classes of pointed finite structures are definable
   by single FO_k formulas, so any class-constant labeling is
   realizable. *)
let fok_classify ~k (t : Labeling.training) eval_db =
  if not (fok_separable ~k t) then
    invalid_arg "Pebble_game.fok_classify: training is not FO_k-separable";
  (* training representatives with labels, deduped by equivalence *)
  let reps =
    List.fold_left
      (fun reps e ->
        if
          List.exists
            (fun (r, _) -> equivalent ~k (t.db, [ r ]) (t.db, [ e ]))
            reps
        then reps
        else (e, Labeling.get e t.labeling) :: reps)
      []
      (Db.entities t.db)
  in
  List.fold_left
    (fun acc f ->
      let label =
        match
          List.find_opt
            (fun (r, _) -> equivalent ~k (t.db, [ r ]) (eval_db, [ f ]))
            reps
        with
        | Some (_, l) -> l
        | None -> Labeling.Neg
      in
      Labeling.set f label acc)
    Labeling.empty (Db.entities eval_db)

(* --- budgeted variants ---------------------------------------------- *)

let default_budget = function Some b -> b | None -> Budget.installed ()

let fok_separable_b ?budget ~k t =
  Guard.run (default_budget budget) (fun () -> fok_separable ~k t)

let fok_inseparable_witness_b ?budget ~k t =
  Guard.run (default_budget budget) (fun () -> fok_inseparable_witness ~k t)

let fok_classify_b ?budget ~k t eval_db =
  Guard.run (default_budget budget) (fun () -> fok_classify ~k t eval_db)
