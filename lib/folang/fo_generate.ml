(* The diagram formula of a pointed database, relative to the
   database's own schema: on any database over the same relation
   symbols it holds exactly at the points isomorphic to the original
   one. (Extra relations in the evaluated database are invisible to
   the formula — feature generation always happens within one
   schema.) *)

let var_of e a =
  if Elem.equal a e then Cq.default_free else Elem.tup [ Elem.sym "d"; a ]

let rec tuples_of arity dom =
  if arity = 0 then [ [] ]
  else begin
    let shorter = tuples_of (arity - 1) dom in
    List.concat_map
      (fun d ->
        Budget.tick ~what:"FO diagram: tuple enumeration" ();
        List.map (fun t -> d :: t) shorter)
      dom
  end

let diagram_formula (db, e) =
  let dom = Elem.Set.elements (Db.domain db) in
  let v = var_of e in
  let others = List.filter (fun a -> not (Elem.equal a e)) dom in
  (* 1. pairwise distinctness *)
  (* cqlint: allow R1 — pairwise scan bounded by the domain size *)
  let rec distinct = function
    | [] -> []
    | a :: rest ->
        List.map (fun b -> Fo_formula.Not (Fo_formula.Eq (v a, v b))) rest
        @ distinct rest
  in
  (* 2. all present facts *)
  let present =
    List.map
      (fun f -> Fo_formula.Atom (Fact.map_elems v f))
      (Db.facts db)
  in
  (* 3. all absent facts over the schema *)
  let absent =
    List.concat_map
      (fun (rel, arity) ->
        List.filter_map
          (fun tuple ->
            let fact = Fact.make_l rel tuple in
            if Db.mem fact db then None
            else
              Some (Fo_formula.Not (Fo_formula.Atom (Fact.map_elems v fact))))
          (tuples_of arity dom))
      (Db.relations db)
  in
  (* 4. domain closure *)
  let z = Elem.sym "z_closure" in
  let closure =
    Fo_formula.Forall
      (z, Fo_formula.Or (List.map (fun a -> Fo_formula.Eq (z, v a)) dom))
  in
  let body =
    Fo_formula.And (distinct dom @ present @ absent @ [ closure ])
  in
  List.fold_left
    (fun acc a -> Fo_formula.Exists (v a, acc))
    body others

let generate (t : Labeling.training) =
  if not (Fo_sep.fo_separable t) then None
  else begin
    (* representatives of the isomorphism classes of positive entities *)
    let pos_reps =
      List.fold_left
        (fun reps e ->
          if
            List.exists
              (fun r -> Struct_iso.isomorphic_pointed (t.db, [ r ]) (t.db, [ e ]))
              reps
          then reps
          else e :: reps)
        []
        (Labeling.positives t.labeling)
    in
    Some
      (Fo_formula.Or
         (List.map (fun r -> diagram_formula (t.db, r)) pos_reps))
  end

let classify_with_formula (t : Labeling.training) eval_db =
  match generate t with
  | None ->
      invalid_arg
        "Fo_generate.classify_with_formula: training is not FO-separable"
  | Some phi ->
      List.fold_left
        (fun acc f ->
          let label =
            if Fo_formula.selects eval_db ~free:Cq.default_free phi f then
              Labeling.Pos
            else Labeling.Neg
          in
          Labeling.set f label acc)
        Labeling.empty (Db.entities eval_db)

(* --- budgeted variants ---------------------------------------------- *)

let default_budget = function Some b -> b | None -> Budget.installed ()

let generate_b ?budget t =
  Guard.run (default_budget budget) (fun () -> generate t)

let classify_with_formula_b ?budget t eval_db =
  Guard.run (default_budget budget) (fun () -> classify_with_formula t eval_db)
