(* Color refinement + backtracking isomorphism search. An isomorphism
   between databases is a bijection h on domains with
   h(facts a) = facts b exactly; since h is injective, it suffices that
   h is a homomorphism, bijective on domains, and the per-relation fact
   counts agree. *)

(* Color ids, interned globally from an explicit, collision-free
   serialization of the full signature. (This used to intern
   [Hashtbl.hash signature], but the polymorphic hash reads only a
   bounded prefix of a deep value — ~10 scalar leaves — so two elements
   whose signatures first differ past that prefix silently shared a
   color, collapsing distinct refinement classes.) The table is shared
   across refinement runs: the key -> id map is injective, so within any
   one run two elements share a color iff their serializations agree —
   exactly as with a per-run table — and repeated isomorphism checks
   over similar databases reuse the interning work. No tick can fire
   between the insert and the counter bump, so an abort never leaves
   the pair out of sync (the registered validate checks this). *)
let intern : (string, int) Hashtbl.t = Hashtbl.create 64
let intern_next = ref 0

let () =
  Runtime_state.register ~name:"struct_iso.intern"
    ~validate:(fun () -> Hashtbl.length intern = !intern_next)
    (fun () ->
      Hashtbl.reset intern;
      intern_next := 0)

let intern_key key =
  match Hashtbl.find_opt intern key with
  | Some id -> id
  | None ->
      let id = !intern_next in
      Hashtbl.replace intern key id;
      intern_next := id + 1;
      id

let refine_colors db =
  let elems = Elem.Set.elements (Db.domain db) in
  (* Initial color: multiset of (relation, position) incidences. *)
  let initial e =
    let occ =
      List.concat_map
        (fun f ->
          let args = Fact.args f in
          List.filter_map
            (fun i ->
              if Elem.equal args.(i) e then Some (Fact.rel f, i) else None)
            (List.init (Array.length args) (fun i -> i)))
        (Db.facts_with_elem e db)
    in
    List.sort compare occ
  in
  let color = Hashtbl.create 64 in
  (* Length-prefix strings so relation names can never collide with
     the surrounding separators. *)
  let add_str buf s =
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  in
  let add_int buf i =
    Buffer.add_string buf (string_of_int i);
    Buffer.add_char buf ';'
  in
  let ser_initial occ =
    let buf = Buffer.create 64 in
    Buffer.add_char buf 'I';
    List.iter
      (fun (r, i) ->
        add_str buf r;
        add_int buf i)
      occ;
    Buffer.contents buf
  in
  List.iter
    (fun e -> Hashtbl.replace color e (intern_key (ser_initial (initial e))))
    elems;
  let classes () =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun e ->
        let c = Hashtbl.find color e in
        Hashtbl.replace tbl c ())
      elems;
    Hashtbl.length tbl
  in
  let rec stabilize n_classes =
    Budget.tick ~what:"struct iso: color refinement" ();
    (* New color: current color + sorted multiset of fact signatures,
       where a fact signature is the relation, the positions of e, and
       the colors of all arguments. *)
    let signature e =
      let sigs =
        List.map
          (fun f ->
            let args = Fact.args f in
            ( Fact.rel f,
              Array.to_list
                (Array.map (fun a -> Hashtbl.find color a) args),
              List.filter_map
                (fun i ->
                  if Elem.equal args.(i) e then Some i else None)
                (List.init (Array.length args) (fun i -> i)) ))
          (Db.facts_with_elem e db)
      in
      (Hashtbl.find color e, List.sort compare sigs)
    in
    let ser_signature (c, sigs) =
      let buf = Buffer.create 128 in
      Buffer.add_char buf 'S';
      add_int buf c;
      List.iter
        (fun (r, arg_colors, positions) ->
          add_str buf r;
          Buffer.add_char buf '[';
          List.iter (add_int buf) arg_colors;
          Buffer.add_char buf '|';
          List.iter (add_int buf) positions;
          Buffer.add_char buf ']')
        sigs;
      Buffer.contents buf
    in
    let updates =
      List.map
        (fun e -> (e, intern_key (ser_signature (signature e))))
        elems
    in
    List.iter (fun (e, c) -> Hashtbl.replace color e c) updates;
    let n' = classes () in
    if n' > n_classes then stabilize n' else ()
  in
  stabilize (classes ());
  List.fold_left
    (fun acc e -> Elem.Map.add e (Hashtbl.find color e) acc)
    Elem.Map.empty elems

let counts_agree a b =
  let tally db =
    List.sort compare
      (List.map (fun (rel, ar) -> (rel, ar, List.length (Db.facts_of_rel rel db)))
         (Db.relations db))
  in
  tally a = tally b

let find_isomorphism ?(fix = []) a b =
  if Db.domain_size a <> Db.domain_size b || not (counts_agree a b) then None
  else begin
    let ca = refine_colors a and cb = refine_colors b in
    (* Color class sizes must agree (colors are interned per database;
       compare class-size multisets via canonical color keys is subtle,
       so rely on the backtracking below and use colors only as a local
       pruning heuristic: candidates must have locally-equal initial
       incidence structure. We recompute a portable color: the multiset
       of (rel, positions) — already encoded in refinement round 0 —
       cannot be compared across databases through interned ids, so use
       class sizes instead.) *)
    let class_sizes colors =
      let tbl = Hashtbl.create 16 in
      Elem.Map.iter
        (fun _ c ->
          let n = match Hashtbl.find_opt tbl c with Some n -> n | None -> 0 in
          Hashtbl.replace tbl c (n + 1))
        colors;
      (* cqlint: allow R6 — fold output is immediately sorted *)
      List.sort compare (Hashtbl.fold (fun _ n acc -> n :: acc) tbl [])
    in
    if class_sizes ca <> class_sizes cb then None
    else begin
      let elems_a = Elem.Set.elements (Db.domain a) in
      let dom_b = Elem.Set.elements (Db.domain b) in
      (* Backtracking: assign each element of a an unused element of b;
         facts of a fully assigned must be facts of b. Together with
         equal fact counts this yields an isomorphism. *)
      let exception Found of Elem.t Elem.Map.t in
      let rec go todo asg used =
        Budget.tick ~what:"struct iso: backtracking" ();
        match todo with
        | [] -> raise (Found asg)
        | e :: rest ->
            let try_candidate v =
              if not (Elem.Set.mem v used) then begin
                let asg' = Elem.Map.add e v asg in
                let ok =
                  List.for_all
                    (fun f ->
                      let args = Fact.args f in
                      let all = Array.for_all (fun x -> Elem.Map.mem x asg') args in
                      (not all)
                      || Db.mem
                           (Fact.make (Fact.rel f)
                              (Array.map (fun x -> Elem.Map.find x asg') args))
                           b)
                    (Db.facts_with_elem e a)
                in
                if ok then go rest asg' (Elem.Set.add v used)
              end
            in
            List.iter
              (fun v ->
                match Elem.Map.find_opt e asg with
                | Some w -> if Elem.equal w v then try_candidate v
                | None -> try_candidate v)
              dom_b
      in
      (* Seed with the fixed pairs. *)
      let seed_ok, asg0, used0 =
        List.fold_left
          (fun (ok, asg, used) (x, y) ->
            if not ok then (false, asg, used)
            else begin
              match Elem.Map.find_opt x asg with
              | Some y' when not (Elem.equal y y') -> (false, asg, used)
              | Some _ -> (ok, asg, used)
              | None ->
                  if Elem.Set.mem y used then (false, asg, used)
                  else (ok, Elem.Map.add x y asg, Elem.Set.add y used)
            end)
          (true, Elem.Map.empty, Elem.Set.empty)
          (List.filter (fun (x, _) -> Elem.Set.mem x (Db.domain a)) fix)
      in
      (* Facts lying entirely inside the seeded elements must already
         map correctly — [go] only re-checks facts touched by a newly
         assigned element. *)
      let seed_facts_ok =
        Elem.Map.for_all
          (fun x _ ->
            List.for_all
              (fun f ->
                let args = Fact.args f in
                let all = Array.for_all (fun y -> Elem.Map.mem y asg0) args in
                (not all)
                || Db.mem
                     (Fact.make (Fact.rel f)
                        (Array.map (fun y -> Elem.Map.find y asg0) args))
                     b)
              (Db.facts_with_elem x a))
          asg0
      in
      if not (seed_ok && seed_facts_ok) then None
      else begin
        let todo =
          List.filter (fun e -> not (Elem.Map.mem e asg0)) elems_a
        in
        match go todo asg0 used0 with
        | () -> None
        | exception Found m -> Some m
      end
    end
  end

let isomorphic a b = find_isomorphism a b <> None

let isomorphic_pointed (a, ta) (b, tb) =
  if List.length ta <> List.length tb then
    invalid_arg "Struct_iso.isomorphic_pointed: tuples of different lengths";
  find_isomorphism ~fix:(List.combine ta tb) a b <> None
