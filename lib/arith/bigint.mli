(** Arbitrary-precision signed integers.

    Sign-magnitude representation over base-[2^30] limbs. Values are
    immutable and structurally comparable via {!compare} (do not rely on
    polymorphic comparison). This module exists because the container is
    sealed (no zarith); it backs the exact rational arithmetic in {!Rat},
    the simplex solver, and the [3^i] classifier weights of the
    Kimelfeld–Ré construction. *)

type t

val zero : t
val one : t
val minus_one : t
val two : t

(** [of_int n] converts a native integer. Total. *)
val of_int : int -> t

(** [to_int t] converts back to a native integer.
    @raise Failure if the value does not fit in a native [int]. *)
val to_int : t -> int

(** [to_int_opt t] is [Some n] when the value fits in a native [int]. *)
val to_int_opt : t -> int option

(** [frexp t] is [(f, e)] with [t ≈ f · 2^e]: [f] holds the top ~90
    bits of the magnitude (rounded once into the double), [e] the
    weight of the dropped low limbs. Exact for any value whose
    magnitude fits the retained limbs — in particular 53-bit mantissas
    and powers of two, which is what {!Rat.to_float} needs to
    round-trip {!Rat.of_float}. *)
val frexp : t -> float * int

(** [of_string s] parses an optionally-signed decimal numeral.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

(** [to_string t] renders a decimal numeral (with a leading [-] when
    negative). *)
val to_string : t -> string

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod a b] is the pair [(q, r)] with [a = q*b + r], [0 <= |r| < |b|],
    and [r] carrying the sign of [a] (truncated division, like OCaml's
    [( / )] and [(mod)] on ints).
    @raise Division_by_zero if [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [pow base n] is [base] raised to the non-negative exponent [n].
    @raise Invalid_argument if [n < 0]. *)
val pow : t -> int -> t

(** [gcd a b] is the non-negative greatest common divisor; [gcd 0 0 = 0]. *)
val gcd : t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** [hash t] is a structural hash consistent with {!equal}. *)
val hash : t -> int

val pp : Format.formatter -> t -> unit
