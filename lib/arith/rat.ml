(* Canonical rationals: den > 0, gcd (|num|, den) = 1. *)

type t = { n : Bigint.t; d : Bigint.t }

let make n d =
  if Bigint.is_zero d then raise Division_by_zero;
  let n, d = if Bigint.sign d < 0 then (Bigint.neg n, Bigint.neg d) else (n, d) in
  if Bigint.is_zero n then { n = Bigint.zero; d = Bigint.one }
  else begin
    let g = Bigint.gcd n d in
    { n = Bigint.div n g; d = Bigint.div d g }
  end

let of_bigint n = { n; d = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints n d = make (Bigint.of_int n) (Bigint.of_int d)

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let num t = t.n
let den t = t.d

let neg t = { t with n = Bigint.neg t.n }
let abs t = { t with n = Bigint.abs t.n }

let add a b =
  make
    (Bigint.add (Bigint.mul a.n b.d) (Bigint.mul b.n a.d))
    (Bigint.mul a.d b.d)

let sub a b = add a (neg b)
let mul a b = make (Bigint.mul a.n b.n) (Bigint.mul a.d b.d)
let div a b = make (Bigint.mul a.n b.d) (Bigint.mul a.d b.n)

let inv t =
  if Bigint.is_zero t.n then raise Division_by_zero;
  make t.d t.n

let sign t = Bigint.sign t.n
let is_zero t = Bigint.is_zero t.n

let compare a b = sign (sub a b)
let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let ( = ) = equal

let of_float f =
  match classify_float f with
  | FP_nan -> invalid_arg "Rat.of_float: nan has no rational value"
  | FP_infinite -> invalid_arg "Rat.of_float: infinity has no rational value"
  | FP_zero -> zero (* both 0.0 and -0.0 *)
  | FP_normal | FP_subnormal ->
      (* f = m * 2^e with 0.5 <= |m| < 1. The significand has at most
         53 bits, so m * 2^53 is an integer representable both in the
         double and (63-bit) native int, and the decomposition
         f = (m * 2^53) * 2^(e-53) is exact — including subnormals,
         whose frexp mantissa is simply scaled further down. *)
      let m, e = Float.frexp f in
      let m53 = int_of_float (Float.ldexp m 53) in
      let e = Stdlib.( - ) e 53 in
      if Stdlib.( >= ) e 0 then
        of_bigint (Bigint.mul (Bigint.of_int m53) (Bigint.pow Bigint.two e))
      else make (Bigint.of_int m53) (Bigint.pow Bigint.two (-e))

let to_float t =
  (* Exponent-aware: divide the top bits of each side and reapply the
     exponent difference, so extreme magnitudes neither overflow nor
     flush to zero. Round-trips of_float on every finite double (the
     numerator mantissa and power-of-two denominator convert exactly
     through Bigint.frexp). *)
  let fn, en = Bigint.frexp t.n in
  let fd, ed = Bigint.frexp t.d in
  Float.ldexp (fn /. fd) (Stdlib.( - ) en ed)

let to_string t =
  if Bigint.equal t.d Bigint.one then Bigint.to_string t.n
  else Bigint.to_string t.n ^ "/" ^ Bigint.to_string t.d

let pp fmt t = Format.pp_print_string fmt (to_string t)
