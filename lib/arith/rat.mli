(** Exact rational numbers over {!Bigint}.

    Values are kept in canonical form: the denominator is strictly
    positive and the numerator/denominator pair is coprime, so
    structural equality of canonical forms coincides with numeric
    equality (and {!compare} is a total order consistent with it).
    This backs the exact simplex solver used for linear separability. *)

type t

val zero : t
val one : t
val minus_one : t

(** [make num den] is the canonical rational [num/den].
    @raise Division_by_zero if [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

val of_bigint : Bigint.t -> t
val of_int : int -> t

(** [of_ints num den] is [num/den] from native ints.
    @raise Division_by_zero if [den] is zero. *)
val of_ints : int -> int -> t

val num : t -> Bigint.t
val den : t -> Bigint.t

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero when dividing by zero. *)
val div : t -> t -> t

(** @raise Division_by_zero on [inv zero]. *)
val inv : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( = ) : t -> t -> bool

(** [of_float f] is the exact rational value of the IEEE double [f]:
    every finite double (normal, subnormal, or zero of either sign) is
    a dyadic rational [m/2^k] and converts without rounding, so
    [of_float] is injective on finite non-zero doubles and
    [of_float (-0.0) = zero]. This is the bridge the certification
    layer uses to re-check numeric solver output in exact arithmetic.
    @raise Invalid_argument on nan or infinities, which have no
    rational value. *)
val of_float : float -> t

(** [to_float t] is a nearest-double approximation (for reporting only). *)
val to_float : t -> float

(** [to_string t] renders ["n"] or ["n/d"]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
