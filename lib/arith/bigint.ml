(* Sign-magnitude bignum over base-2^30 limbs, least significant limb
   first. The magnitude array never has trailing zero limbs; zero is
   represented by the empty array with sign 0. Limb products fit in a
   native 63-bit int (2^30 * 2^30 + carries < 2^62). *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }
(* Invariants: sign ∈ {-1, 0, 1}; sign = 0 iff mag = [||];
   mag.(Array.length mag - 1) <> 0 when non-empty; 0 <= mag.(i) < base. *)

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = Array.length mag in
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let hi = top (n - 1) in
  if hi < 0 then zero
  else if hi = n - 1 then { sign; mag }
  else { sign; mag = Array.sub mag 0 (hi + 1) }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n > 0 then 1 else -1 in
    (* min_int negation overflows; go through two limbs carefully by
       working with negative absolute values. *)
    let rec limbs acc n =
      if n = 0 then List.rev acc
      else limbs ((-(n mod base)) :: acc) (n / base)
    in
    let neg_abs = if n > 0 then -n else n in
    { sign; mag = Array.of_list (limbs [] neg_abs) }
  end

let one = of_int 1
let minus_one = of_int (-1)
let two = of_int 2

let sign t = t.sign
let is_zero t = t.sign = 0

(* Compare magnitudes only. *)
let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then compare_mag a.mag b.mag
  else compare_mag b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let hash t =
  Array.fold_left (fun acc limb -> (acc * 1000003) lxor limb) t.sign t.mag

(* Magnitude addition: |a| + |b|. *)
let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r

(* Magnitude subtraction: |a| - |b|, requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else begin
    let c = compare_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then normalize a.sign (sub_mag a.mag b.mag)
    else normalize b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let carry = ref 0 in
    let ai = a.(i) in
    for j = 0 to lb - 1 do
      let acc = r.(i + j) + (ai * b.(j)) + !carry in
      r.(i + j) <- acc land base_mask;
      carry := acc lsr base_bits
    done;
    (* Propagate the final carry; r.(i+lb) < base before adding, and the
       carry is < base, so one extra limb absorbs it. *)
    let k = ref (i + lb) in
    while !carry <> 0 do
      let acc = r.(!k) + !carry in
      r.(!k) <- acc land base_mask;
      carry := acc lsr base_bits;
      incr k
    done
  done;
  r

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else normalize (a.sign * b.sign) (mul_mag a.mag b.mag)

(* Long division on magnitudes, limb at a time (Knuth TAOCP vol. 2,
   Algorithm D). A 63-bit native int holds any two-limb intermediate
   (2^30 * 2^30 plus carries < 2^62), so quotient-digit estimation
   works directly on int arithmetic. The certification tier leans on
   rational gcd/div in its hot path, which is why this is limb-wise
   rather than the simpler bit-by-bit schoolbook version. *)
let divmod_mag a b =
  let la = Array.length a and lb = Array.length b in
  if compare_mag a b < 0 then ([||], Array.copy a)
  else if lb = 1 then begin
    (* Single-limb divisor: one pass, remainders stay below a limb. *)
    let d = b.(0) in
    let q = Array.make la 0 in
    let r = ref 0 in
    for i = la - 1 downto 0 do
      let cur = (!r lsl base_bits) lor a.(i) in
      q.(i) <- cur / d;
      r := cur mod d
    done;
    (q, if !r = 0 then [||] else [| !r |])
  end
  else begin
    (* Normalize so the divisor's top limb has its high bit set: that
       bounds the quotient-digit estimate within 2 of the truth. *)
    let rec width n acc = if n = 0 then acc else width (n lsr 1) (acc + 1) in
    let shift = base_bits - width b.(lb - 1) 0 in
    let shl src len =
      let out = Array.make (len + 1) 0 in
      let carry = ref 0 in
      for i = 0 to len - 1 do
        let v = (src.(i) lsl shift) lor !carry in
        out.(i) <- v land base_mask;
        carry := v lsr base_bits
      done;
      out.(len) <- !carry;
      out
    in
    let u = shl a la in
    let v = shl b lb in
    let n = lb in
    let m = la - lb in
    let q = Array.make (m + 1) 0 in
    let vtop = v.(n - 1) and vsec = v.(n - 2) in
    for j = m downto 0 do
      (* Estimate the quotient digit from the top two limbs, then
         refine with the third (off by at most one afterwards). *)
      let num = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
      let qhat = ref (num / vtop) in
      let rhat = ref (num mod vtop) in
      let refining = ref true in
      while
        !refining
        && (!qhat >= base
           || !qhat * vsec > (!rhat lsl base_bits) lor u.(j + n - 2))
      do
        decr qhat;
        rhat := !rhat + vtop;
        if !rhat >= base then refining := false
      done;
      (* u[j..j+n] -= qhat * v[0..n-1] *)
      let borrow = ref 0 in
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr base_bits;
        let d = u.(j + i) - (p land base_mask) - !borrow in
        if d < 0 then begin
          u.(j + i) <- d + base;
          borrow := 1
        end
        else begin
          u.(j + i) <- d;
          borrow := 0
        end
      done;
      let d = u.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* Overshot by one: add the divisor back. *)
        decr qhat;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let s = u.(j + i) + v.(i) + !c in
          u.(j + i) <- s land base_mask;
          c := s lsr base_bits
        done;
        u.(j + n) <- d + !c
      end
      else u.(j + n) <- d;
      q.(j) <- !qhat
    done;
    (* The remainder sits in u[0..n-1], still shifted. *)
    let r = Array.make n 0 in
    let low_mask = (1 lsl shift) - 1 in
    let carry = ref 0 in
    for i = n - 1 downto 0 do
      r.(i) <- (u.(i) lor (!carry lsl base_bits)) lsr shift;
      carry := u.(i) land low_mask
    done;
    (q, r)
  end

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let q_mag, r_mag = divmod_mag a.mag b.mag in
    let q = normalize (a.sign * b.sign) q_mag in
    let r = normalize a.sign r_mag in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow base_v n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b n =
    if n = 0 then acc
    else begin
      let acc = if n land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (n lsr 1)
    end
  in
  go one base_v n

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let frexp t =
  (* (f, e) with t ≈ f · 2^e: f carries the top ~90 bits (rounded once
     into a double), e accounts for the dropped low limbs. Exact
     whenever the magnitude fits the limbs taken — in particular for
     any 53-bit mantissa and any power of two. *)
  let l = Array.length t.mag in
  if l = 0 then (0.0, 0)
  else begin
    let take = if l < 3 then l else 3 in
    let f = ref 0.0 in
    for i = l - 1 downto l - take do
      f := (!f *. float_of_int base) +. float_of_int t.mag.(i)
    done;
    ((if t.sign < 0 then -. !f else !f), (l - take) * base_bits)
  end

let to_int_opt t =
  (* Accumulate most-significant first; bail out on overflow by checking
     the pre-multiplication bound. *)
  let limit = Stdlib.max_int / base in
  let rec go acc i =
    if i < 0 then Some acc
    else if acc > limit then None
    else begin
      let acc = acc * base in
      let acc' = acc + t.mag.(i) in
      if acc' < acc then None else go acc' (i - 1)
    end
  in
  match go 0 (Array.length t.mag - 1) with
  | Some m -> if t.sign < 0 then Some (-m) else Some m
  | None ->
      (* min_int has no positive counterpart; handle it explicitly. *)
      if t.sign < 0 && equal t (of_int Stdlib.min_int) then
        Some Stdlib.min_int
      else None

let to_int t =
  match to_int_opt t with
  | Some n -> n
  | None -> failwith "Bigint.to_int: value does not fit in a native int"

let ten = of_int 10

let to_string t =
  if is_zero t then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec digits v =
      if is_zero v then ()
      else begin
        let q, r = divmod v ten in
        digits q;
        Buffer.add_char buf (Char.chr (Char.code '0' + to_int r))
      end
    in
    digits (abs t);
    let body = Buffer.contents buf in
    if t.sign < 0 then "-" ^ body else body
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign_neg, start =
    match s.[0] with
    | '-' -> (true, 1)
    | '+' -> (false, 1)
    | _ -> (false, 0)
  in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  for i = start to n - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then
      invalid_arg (Printf.sprintf "Bigint.of_string: bad character %C" c);
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if sign_neg then neg !acc else !acc

let pp fmt t = Format.pp_print_string fmt (to_string t)
