type plan =
  | Acyclic of Join_tree.tree
  | Decomposed of Cq_decomp.decomp list
  | Hom_search

let plan ?(max_width = 2) q =
  Budget.tick ~what:"query planning" ();
  (* The structured engines pay a per-query planning cost that grows
     with the atom count (cubic ear search, exponential decomposition
     search); for very large queries — e.g. deep unravelings — the
     backtracking search's lazy pruning wins. *)
  if Cq.num_atoms q > 300 then Hom_search
  else
  match Join_tree.build q with
  | Some tree -> Acyclic tree
  | None ->
      let nvars = Elem.Set.cardinal (Cq.existential_vars q) in
      if nvars > 16 then Hom_search
      else begin
        let rec try_width k =
          Budget.tick ~what:"plan: decomposition width search" ();
          if k > max_width then Hom_search
          else begin
            match Cq_decomp.decomposition q ~k with
            | Some forest -> Decomposed forest
            | None -> try_width (k + 1)
          end
        in
        try_width 1
      end

let plan_kind_name = function
  | Acyclic _ -> "yannakakis"
  | Decomposed _ -> "ghw-decomposition"
  | Hom_search -> "hom-search"

let eval_with_plan q p db =
  match p with
  | Acyclic _ ->
      (* The join forest depends only on the query, but relations are
         per-database; Join_tree rebuilds internally. *)
      Join_tree.eval q db
  | Decomposed forest -> Ghw_eval.eval_with_decomp q db forest
  | Hom_search -> Cq.eval q db

let eval ?max_width q db = eval_with_plan q (plan ?max_width q) db

let selects ?max_width q db e =
  match plan ?max_width q with
  | Hom_search -> Cq.selects q db e
  | p -> List.exists (Elem.equal e) (eval_with_plan q p db)
