(* Feature queries are generated as sorted-by-relation atom sequences
   with a canonical fresh-variable discipline (the i-th fresh variable
   to appear is y_{i}), then deduplicated up to isomorphism. Every CQ
   with at most [max_atoms] atoms is isomorphic to one generated this
   way: sort its atoms by relation name and rename variables by first
   occurrence. *)

let schema_of_db db =
  List.filter (fun (rel, _) -> rel <> Db.entity_rel) (Db.relations db)

let fresh_var i = Elem.sym (Printf.sprintf "y%d" i)

let generate ?max_var_occ ~schema ~max_atoms ~emit () =
  let schema =
    List.sort (fun (a, _) (b, _) -> String.compare a b)
      (List.filter (fun (rel, _) -> rel <> Db.entity_rel) schema)
  in
  let schema = Array.of_list schema in
  let occ_ok occ =
    match max_var_occ with
    | None -> true
    | Some p -> Elem.Map.for_all (fun _ c -> c <= p) occ
  in
  (* Enumerate argument tuples for one atom of arity [ar]: each
     position is an existing variable or the next fresh one. *)
  let rec tuples ar next_fresh existing acc k =
    Budget.tick ~what:"CQ[m] feature enumeration" ();
    if ar = 0 then k (List.rev acc) next_fresh
    else begin
      List.iter
        (fun v -> tuples (ar - 1) next_fresh existing (v :: acc) k)
        existing;
      let v = fresh_var next_fresh in
      tuples (ar - 1) (next_fresh + 1) (existing @ [ v ]) (v :: acc) k
    end
  in
  let bump occ vs =
    List.fold_left
      (fun occ v ->
        let c = match Elem.Map.find_opt v occ with Some c -> c | None -> 0 in
        Elem.Map.add v (c + 1) occ)
      occ vs
  in
  let rec go atoms count next_fresh existing occ min_rel =
    Budget.tick ~what:"CQ[m] feature enumeration" ();
    Budget.check_depth ~what:"CQ[m] atom count" count;
    emit (List.rev atoms);
    if count < max_atoms then
      for r = min_rel to Array.length schema - 1 do
        let rel, ar = schema.(r) in
        tuples ar next_fresh existing [] (fun vs next_fresh' ->
            let occ' = bump occ vs in
            if occ_ok occ' then begin
              let existing' =
                List.fold_left
                  (fun ex v ->
                    if List.exists (Elem.equal v) ex then ex else ex @ [ v ])
                  existing vs
              in
              go
                (Fact.make_l rel vs :: atoms)
                (count + 1) next_fresh' existing' occ' r
            end)
      done
  in
  go [] 0 0 [ Cq.default_free ] Elem.Map.empty 0

let feature_queries ?max_var_occ ~schema ~max_atoms () =
  let seen = Hashtbl.create 1024 in
  let out = ref [] in
  let emit atoms =
    let q = Cq.make ~free:Cq.default_free atoms in
    let key = Cq.iso_canonical_string q in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      out := q :: !out
    end
  in
  generate ?max_var_occ ~schema ~max_atoms ~emit ();
  List.rev !out

let count ?max_var_occ ~schema ~max_atoms () =
  let seen = Hashtbl.create 1024 in
  let n = ref 0 in
  let emit atoms =
    let q = Cq.make ~free:Cq.default_free atoms in
    let key = Cq.iso_canonical_string q in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      incr n
    end
  in
  generate ?max_var_occ ~schema ~max_atoms ~emit ();
  !n

let dedupe_equivalent qs =
  let keep = ref [] in
  List.iter
    (fun q ->
      if not (List.exists (fun q' -> Cq.equivalent q q') !keep) then
        keep := q :: !keep)
    qs;
  List.rev !keep
