exception Parse_error of string

let fail msg = raise (Parse_error msg)

type token = Ident of string | Lpar | Rpar | Comma | Turnstile

let tokenize s =
  let n = String.length s in
  let is_ident_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let is_ident c =
    is_ident_start c || (c >= '0' && c <= '9') || c = '\''
  in
  (* cqlint: allow R1 — each call advances the cursor of a finite string *)
  let rec go i acc =
    if i >= n then List.rev acc
    else begin
      match s.[i] with
      | ' ' | '\t' | '\r' | '\n' -> go (i + 1) acc
      | '(' -> go (i + 1) (Lpar :: acc)
      | ')' -> go (i + 1) (Rpar :: acc)
      | ',' -> go (i + 1) (Comma :: acc)
      | ':' when i + 1 < n && s.[i + 1] = '-' -> go (i + 2) (Turnstile :: acc)
      | c when is_ident_start c ->
          let j = ref i in
          (* cqlint: allow R1 — scan bounded by the input string length *)
          while !j < n && is_ident s.[!j] do incr j done;
          go !j (Ident (String.sub s i (!j - i)) :: acc)
      | c -> fail (Printf.sprintf "unexpected character %C" c)
    end
  in
  go 0 []

let parse_atom = function
  | Ident rel :: Lpar :: rest ->
      (* cqlint: allow R1 — each call consumes at least one token *)
      let rec args acc = function
        | Ident v :: Comma :: rest -> args (Elem.sym v :: acc) rest
        | Ident v :: Rpar :: rest -> (List.rev (Elem.sym v :: acc), rest)
        | _ -> fail "expected variable list in atom"
      in
      let vs, rest = args [] rest in
      (Fact.make_l rel vs, rest)
  | _ -> fail "expected an atom"

let parse s =
  match tokenize s with
  | Ident head :: Turnstile :: body -> begin
      let free = Elem.sym head in
      match body with
      | [] | [ Ident "true" ] -> Cq.make ~free []
      | _ ->
          (* cqlint: allow R1 — each call consumes at least one token *)
          let rec atoms acc tokens =
            let atom, rest = parse_atom tokens in
            match rest with
            | [] -> List.rev (atom :: acc)
            | Comma :: rest -> atoms (atom :: acc) rest
            | _ -> fail "expected ',' between atoms"
          in
          Cq.make ~free (atoms [] body)
    end
  | _ -> fail "expected 'head :- body'"
