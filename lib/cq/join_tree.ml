(* GYO ear removal + Yannakakis full reducer.

   Each atom carries its distinct-variable list; a relation is the list
   of value rows aligned with that list. The ear-removal order doubles
   as the bottom-up schedule (ears are removed leaves-first), and its
   reverse as the top-down schedule. *)

type tree = {
  atoms : Fact.t array;
  distinct_vars : Elem.t list array;  (* per atom, in first-occurrence order *)
  parent : int option array;
  removal_order : int list;  (* ears first; roots last *)
  free : Elem.t;
}

let distinct_vars_of_atom f =
  let seen = ref Elem.Set.empty in
  let out = ref [] in
  Array.iter
    (fun v ->
      if not (Elem.Set.mem v !seen) then begin
        seen := Elem.Set.add v !seen;
        out := v :: !out
      end)
    (Fact.args f);
  List.rev !out

let build q =
  let atoms = Array.of_list (Db.facts (Cq.canonical q)) in
  let n = Array.length atoms in
  let var_sets = Array.map Fact.elems atoms in
  let alive = Array.make n true in
  let parent = Array.make n None in
  let order = ref [] in
  let remaining = ref n in
  let progress = ref true in
  while !remaining > 1 && !progress do
    Budget.tick ~what:"join tree: ear removal" ();
    progress := false;
    (* Find an ear: an alive atom whose shared variables (those
       occurring in another alive atom) are contained in a single
       other alive atom, its witness/parent. *)
    let i = ref 0 in
    while !i < n && not !progress do
      Budget.tick ~what:"join tree: ear search" ();
      if alive.(!i) then begin
        let shared =
          Elem.Set.filter
            (fun v ->
              let occurs_elsewhere = ref false in
              (* cqlint: allow R1 — scan bounded by the atom count *)
              for j = 0 to n - 1 do
                if j <> !i && alive.(j) && Elem.Set.mem v var_sets.(j) then
                  occurs_elsewhere := true
              done;
              !occurs_elsewhere)
            var_sets.(!i)
        in
        let witness = ref None in
        (* cqlint: allow R1 — scan bounded by the atom count *)
        for j = 0 to n - 1 do
          if
            !witness = None && j <> !i && alive.(j)
            && Elem.Set.subset shared var_sets.(j)
          then witness := Some j
        done;
        match !witness with
        | Some j ->
            alive.(!i) <- false;
            parent.(!i) <- Some j;
            order := !i :: !order;
            decr remaining;
            progress := true
        | None ->
            (* An isolated atom (no shared vars at all) is a root of
               its own component: retire it without a parent. *)
            if Elem.Set.is_empty shared then begin
              alive.(!i) <- false;
              order := !i :: !order;
              decr remaining;
              progress := true
            end
      end;
      incr i
    done
  done;
  if !remaining > 1 then None
  else begin
    (* The last alive atom (if any) is a root. *)
    (* cqlint: allow R1 — scan bounded by the atom count *)
    for i = 0 to n - 1 do
      if alive.(i) then order := i :: !order
    done;
    Some
      {
        atoms;
        distinct_vars = Array.map distinct_vars_of_atom atoms;
        parent;
        removal_order = List.rev !order;
        free = Cq.free q;
      }
  end

let is_acyclic q = build q <> None

(* --- relations -------------------------------------------------------- *)

(* Rows are value arrays aligned with [distinct_vars]. *)
let atom_relation db atom dvars =
  let args = Fact.args atom in
  let positions =
    (* for each distinct var, its first position in args *)
    List.map
      (fun v ->
        (* cqlint: allow R1 — recursion bounded by the arity of one atom *)
        let rec find i =
          if Elem.equal args.(i) v then i else find (i + 1)
        in
        find 0)
      dvars
  in
  let consistent fact_args =
    (* repeated variables must carry equal values *)
    let ok = ref true in
    Array.iteri
      (fun i v ->
        Array.iteri
          (fun j w ->
            if
              j > i && Elem.equal v w
              && not (Elem.equal fact_args.(i) fact_args.(j))
            then ok := false)
          args)
      args;
    !ok
  in
  List.filter_map
    (fun f ->
      let fargs = Fact.args f in
      if Array.length fargs = Array.length args && consistent fargs then
        Some (Array.of_list (List.map (fun p -> fargs.(p)) positions))
      else None)
    (Db.facts_of_rel (Fact.rel atom) db)

(* Shared columns between two atoms: positions in each row. *)
let shared_positions dvars_a dvars_b =
  List.filteri (fun _ v -> List.exists (Elem.equal v) dvars_b) dvars_a
  |> List.map (fun v ->
         let idx vars =
           (* cqlint: allow R1 — recursion bounded by the column count *)
           let rec go i = function
             | [] -> assert false
             | w :: rest -> if Elem.equal v w then i else go (i + 1) rest
           in
           go 0 vars
         in
         (idx dvars_a, idx dvars_b))

let project row positions = List.map (fun p -> row.(p)) positions

(* a ⋉ b on the shared columns. *)
let semijoin (rel_a, dv_a) (rel_b, dv_b) =
  let pos = shared_positions dv_a dv_b in
  if pos = [] then if rel_b = [] then [] else rel_a
  else begin
    let pa = List.map fst pos and pb = List.map snd pos in
    let keys = Hashtbl.create (List.length rel_b) in
    List.iter (fun row -> Hashtbl.replace keys (project row pb) ()) rel_b;
    List.filter (fun row -> Hashtbl.mem keys (project row pa)) rel_a
  end

let eval q db =
  match build q with
  | None -> invalid_arg "Join_tree.eval: query is not alpha-acyclic"
  | Some t ->
      let n = Array.length t.atoms in
      let rels =
        Array.init n (fun i -> atom_relation db t.atoms.(i) t.distinct_vars.(i))
      in
      (* Bottom-up: when an ear is retired, semijoin its parent. *)
      List.iter
        (fun i ->
          match t.parent.(i) with
          | Some p ->
              rels.(p) <-
                semijoin
                  (rels.(p), t.distinct_vars.(p))
                  (rels.(i), t.distinct_vars.(i))
          | None -> ())
        t.removal_order;
      (* Global satisfiability: every root must be nonempty (roots
         absorb their whole component's constraints after the
         bottom-up pass). *)
      let roots_ok =
        List.for_all
          (fun i -> t.parent.(i) <> None || rels.(i) <> [])
          t.removal_order
      in
      if not roots_ok then []
      else begin
        (* Top-down: children filtered by their parent, in reverse
           removal order, making every relation globally consistent. *)
        List.iter
          (fun i ->
            match t.parent.(i) with
            | Some p ->
                rels.(i) <-
                  semijoin
                    (rels.(i), t.distinct_vars.(i))
                    (rels.(p), t.distinct_vars.(p))
            | None -> ())
          (List.rev t.removal_order);
        (* Read the answers off the eta(x) atom. *)
        let eta_idx =
          (* cqlint: allow R1 — scan bounded by the atom count; eta(x) exists *)
          let rec find i =
            if Fact.rel t.atoms.(i) = Db.entity_rel
               && Elem.equal (Fact.args t.atoms.(i)).(0) t.free
            then i
            else find (i + 1)
          in
          find 0
        in
        let xpos =
          (* cqlint: allow R1 — recursion bounded by the column count *)
          let rec go i = function
            | [] -> assert false
            | v :: rest -> if Elem.equal v t.free then i else go (i + 1) rest
          in
          go 0 t.distinct_vars.(eta_idx)
        in
        List.sort_uniq Elem.compare
          (List.map (fun row -> row.(xpos)) rels.(eta_idx))
      end
