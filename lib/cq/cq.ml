type t = { free : Elem.t; canon : Db.t }

let default_free = Elem.sym "x"

let of_canonical ~free db = { free; canon = Db.add_entity free db }
let make ~free atoms = of_canonical ~free (Db.of_facts atoms)
let of_pointed_db (db, e) = of_canonical ~free:e db

let free q = q.free
let canonical q = q.canon

let eta_atom q = Fact.make Db.entity_rel [| q.free |]

let atoms q =
  List.filter (fun f -> not (Fact.equal f (eta_atom q))) (Db.facts q.canon)

let num_atoms q = List.length (atoms q)
let vars q = Db.domain q.canon
let existential_vars q = Elem.Set.remove q.free (vars q)

let max_var_occurrences q =
  let occ = Hashtbl.create 16 in
  List.iter
    (fun f ->
      Array.iter
        (fun v ->
          let c = try Hashtbl.find occ v with Not_found -> 0 in
          Hashtbl.replace occ v (c + 1))
        (Fact.args f))
    (atoms q);
  (* cqlint: allow R6 — max is commutative and associative: fold order cannot change the result *)
  Hashtbl.fold (fun _ c acc -> max c acc) occ 0

let selects q db e =
  Hom.pointed q.canon [ q.free ] db [ e ]

let eval q db =
  List.filter (fun e -> selects q db e) (Db.entities db)

let contained_in q1 q2 =
  Hom.pointed q2.canon [ q2.free ] q1.canon [ q1.free ]

let equivalent q1 q2 = contained_in q1 q2 && contained_in q2 q1

(* Conjunction: tag the existential variables of each conjunct with a
   distinct index so they cannot collide, and glue the free
   variables. *)
let conjoin q1 q2 =
  let tag i fr v =
    if Elem.equal v fr then default_free else Elem.tup [ Elem.int i; v ]
  in
  let c1 = Db.map_elems (tag 1 q1.free) q1.canon in
  let c2 = Db.map_elems (tag 2 q2.free) q2.canon in
  of_canonical ~free:default_free (Db.union c1 c2)

let conjoin_all = function
  | [] -> invalid_arg "Cq.conjoin_all: empty list"
  | q :: qs -> List.fold_left conjoin q qs

let top = make ~free:default_free []

(* Core computation: repeatedly look for an element a (other than the
   free variable) that can be retracted away — i.e. a homomorphism from
   the canonical database into the sub-database of facts avoiding a,
   fixing the free variable. Replacing the query by the image keeps it
   equivalent (fold in one direction, inclusion in the other). *)
let core q =
  let rec shrink canon =
    Budget.tick ~what:"cq core: retraction" ();
    let candidates = Elem.Set.remove q.free (Db.domain canon) in
    let try_drop a =
      let without_a =
        Db.filter (fun f -> not (Elem.Set.mem a (Fact.elems f))) canon
      in
      if Elem.Set.mem q.free (Db.domain without_a) || Db.size without_a = 0
      then
        match Hom.find ~fix:[ (q.free, q.free) ] ~src:canon ~dst:without_a () with
        | Some h ->
            let image =
              Db.of_facts
                (List.map
                   (Fact.map_elems (fun v -> Elem.Map.find v h))
                   (Db.facts canon))
            in
            Some image
        | None -> None
      else None
    in
    let rec first_drop = function
      | [] -> canon
      | a :: rest -> begin
          match try_drop a with
          | Some image -> shrink image
          | None -> first_drop rest
        end
    in
    first_drop (Elem.Set.elements candidates)
  in
  { q with canon = shrink q.canon }

(* Deterministic canonical renaming: breadth-first from the free
   variable through atoms (sorted structurally), then leftovers. *)
let canonical_order q =
  let order = ref [] in
  let seen = ref Elem.Set.empty in
  let push v =
    if not (Elem.Set.mem v !seen) then begin
      seen := Elem.Set.add v !seen;
      order := v :: !order
    end
  in
  push q.free;
  let sorted_facts = List.sort Fact.compare (Db.facts q.canon) in
  let rec loop () =
    Budget.tick ~what:"cq: canonical order" ();
    let before = Elem.Set.cardinal !seen in
    List.iter
      (fun f ->
        if Array.exists (fun v -> Elem.Set.mem v !seen) (Fact.args f) then
          Array.iter push (Fact.args f))
      sorted_facts;
    if Elem.Set.cardinal !seen > before then loop ()
  in
  loop ();
  List.iter (fun f -> Array.iter push (Fact.args f)) sorted_facts;
  List.rev !order

let rename_canonically q =
  let order = canonical_order q in
  let mapping = Hashtbl.create 16 in
  List.iteri
    (fun i v ->
      let name =
        if i = 0 then default_free else Elem.sym (Printf.sprintf "y%d" (i - 1))
      in
      Hashtbl.replace mapping v name)
    order;
  let rename v = Hashtbl.find mapping v in
  { free = rename q.free; canon = Db.map_elems rename q.canon }

(* Isomorphism-canonical string: minimize the rendered sorted atom list
   over all renamings of existential variables. Exponential in the
   variable count; used only to deduplicate the small queries of CQ[m]
   enumeration. *)
let render_with q mapping =
  let rename v = Elem.Map.find v mapping in
  let facts =
    List.map (Fact.map_elems rename) (Db.facts q.canon)
  in
  String.concat ";"
    (List.sort String.compare (List.map Fact.to_string facts))

let render_plain q =
  let q = rename_canonically q in
  String.concat ";"
    (List.sort String.compare (List.map Fact.to_string (Db.facts q.canon)))

(* Color refinement on the variables of a query: colors are structural
   values (no per-query interning) so they are comparable across
   queries and invariant under isomorphism. A color is the explicit
   serialization of the full refinement signature — not its
   [Hashtbl.hash], which reads only a bounded prefix of a deep value
   and so conflated signatures that first differ past that prefix. *)
let refine_var_colors q ~rounds =
  let atoms = List.sort Fact.compare (Db.facts q.canon) in
  let add_str buf s =
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  in
  let add_int buf i =
    Buffer.add_string buf (string_of_int i);
    Buffer.add_char buf ';'
  in
  let initial v =
    let occ =
      List.concat_map
        (fun f ->
          let args = Fact.args f in
          List.filter_map
            (fun i ->
              if Elem.equal args.(i) v then
                Some (Fact.rel f, i, Array.length args)
              else None)
            (List.init (Array.length args) (fun i -> i)))
        atoms
    in
    let buf = Buffer.create 64 in
    Buffer.add_char buf (if Elem.equal v q.free then 'F' else 'E');
    List.iter
      (fun (r, i, ar) ->
        add_str buf r;
        add_int buf i;
        add_int buf ar)
      (List.sort compare occ);
    Buffer.contents buf
  in
  let color : (Elem.t, string) Hashtbl.t = Hashtbl.create 16 in
  Elem.Set.iter
    (fun v -> Hashtbl.replace color v (initial v))
    (Db.domain q.canon);
  for _round = 1 to rounds do
    Budget.tick ~what:"cq: color refinement" ();
    let updates =
      Elem.Set.fold
        (fun v acc ->
          let sigs =
            List.filter_map
              (fun f ->
                let args = Fact.args f in
                if Array.exists (Elem.equal v) args then
                  Some
                    ( Fact.rel f,
                      Array.to_list
                        (Array.map (fun a -> Hashtbl.find color a) args),
                      List.filter_map
                        (fun i ->
                          if Elem.equal args.(i) v then Some i else None)
                        (List.init (Array.length args) (fun i -> i)) )
                else None)
              atoms
          in
          let buf = Buffer.create 128 in
          Buffer.add_char buf 'S';
          add_str buf (Hashtbl.find color v);
          List.iter
            (fun (r, arg_colors, positions) ->
              add_str buf r;
              Buffer.add_char buf '[';
              List.iter (add_str buf) arg_colors;
              Buffer.add_char buf '|';
              List.iter (add_int buf) positions;
              Buffer.add_char buf ']')
            (List.sort compare sigs);
          (v, Buffer.contents buf) :: acc)
        (Db.domain q.canon) []
    in
    List.iter (fun (v, c) -> Hashtbl.replace color v c) updates
  done;
  color

(* Isomorphism-canonical string: assign the names y0.. to existential
   variables grouped by refined color (classes ordered by color value,
   a structural invariant), minimizing the rendered atom list only
   over permutations within each color class. Most small queries have
   singleton classes, so the search is near-linear; the fallback
   deterministic renaming is used above 10 existential variables. *)
let iso_canonical_string q =
  let ex = Elem.Set.elements (existential_vars q) in
  let n = List.length ex in
  if n > 10 then render_plain q
  else begin
    let color = refine_var_colors q ~rounds:2 in
    let classes =
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun v ->
          let c = Hashtbl.find color v in
          let existing =
            match Hashtbl.find_opt tbl c with Some l -> l | None -> []
          in
          Hashtbl.replace tbl c (v :: existing))
        ex;
      List.sort
        (fun (c1, _) (c2, _) -> compare c1 c2)
        (* cqlint: allow R6 — fold output is immediately sorted by the unique class key *)
        (Hashtbl.fold (fun c vs acc -> (c, List.rev vs) :: acc) tbl [])
    in
    (* Name blocks: class i gets names y_offset.. in some within-class
       permutation. *)
    let best = ref None in
    let rec assign_classes classes offset mapping =
      match classes with
      | [] ->
          let full = Elem.Map.add q.free default_free mapping in
          let s = render_with q full in
          (match !best with
          | Some b when String.compare b s <= 0 -> ()
          | _ -> best := Some s)
      | (_, members) :: rest ->
          let size = List.length members in
          let names =
            List.init size (fun i ->
                Elem.sym (Printf.sprintf "y%d" (offset + i)))
          in
          let rec perms chosen remaining_names remaining_members k =
            Budget.tick ~what:"cq: canonical renaming search" ();
            match remaining_members with
            | [] -> k chosen
            | v :: more ->
                List.iter
                  (fun name ->
                    perms
                      (Elem.Map.add v name chosen)
                      (List.filter
                         (fun n' -> not (Elem.equal n' name))
                         remaining_names)
                      more k)
                  remaining_names
          in
          perms mapping names members (fun m ->
              assign_classes rest (offset + size) m)
    in
    assign_classes classes 0 Elem.Map.empty;
    match !best with
    | Some s -> s
    | None -> render_with q (Elem.Map.add q.free default_free Elem.Map.empty)
  end

let equal q1 q2 = Elem.equal q1.free q2.free && Db.equal q1.canon q2.canon

let compare q1 q2 =
  let c = Elem.compare q1.free q2.free in
  if c <> 0 then c else Db.compare q1.canon q2.canon

let to_string q =
  let q = rename_canonically q in
  let body =
    match atoms q with
    | [] -> "true"
    | ats -> String.concat ", " (List.map Fact.to_string ats)
  in
  Printf.sprintf "%s :- %s" (Elem.to_string q.free) body

let pp fmt q = Format.pp_print_string fmt (to_string q)
