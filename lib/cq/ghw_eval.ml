(* Width-k evaluation: materialize each decomposition node as a
   relation over (bag ∪ {x}), then reduce the tree bottom-up with
   semijoins. The free variable is a column of every node, so adding it
   to all bags keeps the running-intersection property and makes the
   per-entity answer drop out of the root.

   A relation is (columns, rows): columns is a variable list, each row
   a value array aligned with it. *)

type rel = { cols : Elem.t list; rows : Elem.t array list }

let col_index cols v =
  (* cqlint: allow R1 — recursion bounded by the column count of one relation *)
  let rec go i = function
    | [] -> None
    | w :: rest -> if Elem.equal w v then Some i else go (i + 1) rest
  in
  go 0 cols

(* Relation of one atom: rows over its distinct variables. *)
let atom_relation db atom =
  let args = Fact.args atom in
  let dvars =
    let seen = ref Elem.Set.empty in
    let out = ref [] in
    Array.iter
      (fun v ->
        if not (Elem.Set.mem v !seen) then begin
          seen := Elem.Set.add v !seen;
          out := v :: !out
        end)
      args;
    List.rev !out
  in
  let positions =
    List.map
      (fun v ->
        (* cqlint: allow R1 — recursion bounded by the arity of one atom *)
        let rec find i = if Elem.equal args.(i) v then i else find (i + 1) in
        find 0)
      dvars
  in
  let consistent fargs =
    let ok = ref true in
    Array.iteri
      (fun i v ->
        Array.iteri
          (fun j w ->
            if j > i && Elem.equal v w && not (Elem.equal fargs.(i) fargs.(j))
            then ok := false)
          args)
      args;
    !ok
  in
  let rows =
    List.filter_map
      (fun f ->
        let fargs = Fact.args f in
        if Array.length fargs = Array.length args && consistent fargs then
          Some (Array.of_list (List.map (fun p -> fargs.(p)) positions))
        else None)
      (Db.facts_of_rel (Fact.rel atom) db)
  in
  { cols = dvars; rows }

let project keep rel =
  let positions = List.filter_map (fun v -> col_index rel.cols v) keep in
  let kept_cols =
    List.filter (fun v -> col_index rel.cols v <> None) keep
  in
  let seen = Hashtbl.create 64 in
  let rows =
    List.filter_map
      (fun row ->
        let r = Array.of_list (List.map (fun p -> row.(p)) positions) in
        let key = Array.to_list r in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.add seen key ();
          Some r
        end)
      rel.rows
  in
  { cols = kept_cols; rows }

let natural_join a b =
  let shared =
    List.filter (fun v -> col_index b.cols v <> None) a.cols
  in
  let a_pos = List.filter_map (fun v -> col_index a.cols v) shared in
  let b_pos = List.filter_map (fun v -> col_index b.cols v) shared in
  let b_extra_cols =
    List.filter (fun v -> col_index a.cols v = None) b.cols
  in
  let b_extra_pos = List.filter_map (fun v -> col_index b.cols v) b_extra_cols in
  let index = Hashtbl.create (List.length b.rows) in
  List.iter
    (fun row ->
      let key = List.map (fun p -> row.(p)) b_pos in
      let existing =
        match Hashtbl.find_opt index key with Some l -> l | None -> []
      in
      Hashtbl.replace index key (row :: existing))
    b.rows;
  let rows =
    List.concat_map
      (fun arow ->
        Budget.tick ~what:"decomposed join" ();
        let key = List.map (fun p -> arow.(p)) a_pos in
        match Hashtbl.find_opt index key with
        | None -> []
        | Some brows ->
            List.map
              (fun brow ->
                Array.append arow
                  (Array.of_list (List.map (fun p -> brow.(p)) b_extra_pos)))
              brows)
      a.rows
  in
  { cols = a.cols @ b_extra_cols; rows }

let semijoin a b =
  let shared = List.filter (fun v -> col_index b.cols v <> None) a.cols in
  let a_pos = List.filter_map (fun v -> col_index a.cols v) shared in
  let b_pos = List.filter_map (fun v -> col_index b.cols v) shared in
  let keys = Hashtbl.create (List.length b.rows) in
  List.iter
    (fun row -> Hashtbl.replace keys (List.map (fun p -> row.(p)) b_pos) ())
    b.rows;
  {
    a with
    rows =
      List.filter
        (fun row ->
          Budget.tick ~what:"decomposed semijoin" ();
          Hashtbl.mem keys (List.map (fun p -> row.(p)) a_pos))
        a.rows;
  }

let eval_with_decomp q db forest =
  let free = Cq.free q in
  let ex = Cq.existential_vars q in
  let entities = Db.entities db in
  let entity_rel = { cols = [ free ]; rows = List.map (fun e -> [| e |]) entities } in
  (* Atoms whose existential variables are nonempty get assigned to a
     node whose bag contains them; the rest constrain x alone. *)
  (* cqlint: allow R1 — structural recursion over a finite decomposition tree *)
  let rec nodes d = d :: List.concat_map nodes d.Cq_decomp.children in
  let all_nodes = List.concat_map nodes forest in
  let assigned = Hashtbl.create 16 in
  (* node (physical identity via bag+cover position in list) -> atoms *)
  let node_id = List.mapi (fun i d -> (i, d)) all_nodes in
  let x_only = ref [] in
  List.iter
    (fun atom ->
      let evars = Elem.Set.inter (Fact.elems atom) ex in
      if Elem.Set.is_empty evars then x_only := atom :: !x_only
      else begin
        match
          List.find_opt
            (fun (_, d) -> Elem.Set.subset evars d.Cq_decomp.bag)
            node_id
        with
        | Some (i, _) ->
            let existing =
              match Hashtbl.find_opt assigned i with Some l -> l | None -> []
            in
            Hashtbl.replace assigned i (atom :: existing)
        | None ->
            invalid_arg
              "Ghw_eval: decomposition does not cover all atoms"
      end)
    (Cq.atoms q);
  (* Materialize each node: join of cover atoms and assigned atoms,
     extended with the x column, projected to bag ∪ {x}. *)
  let node_rel i (d : Cq_decomp.decomp) =
    let atom_rels =
      List.map (atom_relation db)
        (d.Cq_decomp.cover
        @ (match Hashtbl.find_opt assigned i with Some l -> l | None -> []))
    in
    (* Join the atom relations first — starting from the entity list
       would cross-product x with unrelated columns; x is attached at
       the end (as a join when some atom mentions it, as a product
       otherwise). *)
    let joined =
      match atom_rels with
      | [] -> entity_rel
      | first :: rest ->
          (* When x is already a column this join just filters it down
             to the entities; otherwise it is the (unavoidable)
             product with the entity list. *)
          natural_join (List.fold_left natural_join first rest) entity_rel
    in
    project (free :: Elem.Set.elements d.Cq_decomp.bag) joined
  in
  (* Bottom-up reduction per tree; returns the root relation. *)
  let counter = ref (-1) in
  let rec reduce d =
    incr counter;
    let i = !counter in
    let mine = node_rel i d in
    List.fold_left
      (fun acc child -> semijoin acc (reduce child))
      mine d.Cq_decomp.children
  in
  (* The traversal order of [nodes]/[node_id] is preorder (node before
     its children), matching the counter in [reduce]. *)
  let root_x_sets =
    List.map
      (fun root ->
        let r = reduce root in
        let xr = project [ free ] r in
        Elem.Set.of_list (List.map (fun row -> row.(0)) xr.rows))
      forest
  in
  let x_only_sets =
    List.map
      (fun atom ->
        let r = natural_join entity_rel (atom_relation db atom) in
        let xr = project [ free ] r in
        Elem.Set.of_list (List.map (fun row -> row.(0)) xr.rows))
      !x_only
  in
  let all_entities = Elem.Set.of_list entities in
  let answer =
    List.fold_left Elem.Set.inter all_entities (root_x_sets @ x_only_sets)
  in
  Elem.Set.elements answer

let eval ~k q db =
  match Cq_decomp.decomposition q ~k with
  | None -> None
  | Some forest -> Some (eval_with_decomp q db forest)
