(* Bitset-based exact search. Existential variables are indexed into
   bit positions; atoms become edge masks; the recursion is the classic
   memoized separator decomposition over the primal graph, with
   candidate bags restricted to sets coverable by at most k atoms. *)

let index_vars q =
  let ex = Elem.Set.elements (Cq.existential_vars q) in
  let n = List.length ex in
  if n > 62 then
    invalid_arg "Cq_decomp: more than 62 existential variables";
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace tbl v i) ex;
  (n, tbl)

let edge_masks q tbl =
  List.map
    (fun atom ->
      Elem.Set.fold
        (fun v acc ->
          match Hashtbl.find_opt tbl v with
          | Some i -> acc lor (1 lsl i)
          | None -> acc (* the free variable: needs no covering *))
        (Fact.elems atom) 0)
    (Cq.atoms q)

(* --- GYO reduction -------------------------------------------------- *)

let is_free_acyclic q =
  let _, tbl = index_vars q in
  let edges = ref (List.filter (fun m -> m <> 0) (edge_masks q tbl)) in
  let changed = ref true in
  while !changed do
    Budget.tick ~what:"cq decomp: GYO reduction" ();
    changed := false;
    (* Remove vertices occurring in exactly one edge. *)
    let occurrences = Hashtbl.create 16 in
    List.iter
      (fun m ->
        (* cqlint: allow R1 — recursion bounded by the 62 bits of a mask *)
        let rec bits m i =
          if m <> 0 then begin
            if m land 1 = 1 then begin
              let c =
                match Hashtbl.find_opt occurrences i with
                | Some c -> c
                | None -> 0
              in
              Hashtbl.replace occurrences i (c + 1)
            end;
            bits (m lsr 1) (i + 1)
          end
        in
        bits m 0)
      !edges;
    let lonely =
      (* cqlint: allow R6 — lor is commutative and associative: fold order cannot change the mask *)
      Hashtbl.fold
        (fun i c acc -> if c = 1 then acc lor (1 lsl i) else acc)
        occurrences 0
    in
    if lonely <> 0 then begin
      let edges' =
        List.filter (fun m -> m <> 0)
          (List.map (fun m -> m land lnot lonely) !edges)
      in
      if edges' <> !edges then begin
        edges := edges';
        changed := true
      end
    end;
    (* Remove edges contained in another edge (including duplicates). *)
    (* cqlint: allow R1 — one pass over the edge list, bounded by the atom count *)
    let rec drop_contained acc = function
      | [] -> List.rev acc
      | m :: rest ->
          let contained =
            List.exists (fun m' -> m land m' = m) rest
            || List.exists (fun m' -> m land m' = m) acc
          in
          if contained then begin
            changed := true;
            drop_contained acc rest
          end
          else drop_contained (m :: acc) rest
    in
    edges := drop_contained [] !edges
  done;
  !edges = []

(* --- generalized hypertree width ------------------------------------ *)

let ghw_le q k =
  if k < 0 then invalid_arg "Cq_decomp.ghw_le: negative k";
  let n, tbl = index_vars q in
  let edges = Array.of_list (edge_masks q tbl) in
  let all = (1 lsl n) - 1 in
  (* coverable s: can s be covered by at most k edges? *)
  let cover_memo = Hashtbl.create 256 in
  let rec coverable s budget =
    Budget.tick ~what:"cq decomp: cover search" ();
    if s = 0 then true
    else if budget = 0 then false
    else begin
      match Hashtbl.find_opt cover_memo (s, budget) with
      | Some r -> r
      | None ->
          let v = s land -s in
          let r =
            Array.exists
              (fun e -> e land v <> 0 && coverable (s land lnot e) (budget - 1))
              edges
          in
          Hashtbl.add cover_memo (s, budget) r;
          r
    end
  in
  (* Primal adjacency. *)
  let adj = Array.make n 0 in
  Array.iter
    (fun e ->
      (* cqlint: allow R1 — loop bounded by the variable count, at most 62 *)
      for i = 0 to n - 1 do
        if e land (1 lsl i) <> 0 then adj.(i) <- adj.(i) lor (e land lnot (1 lsl i))
      done)
    edges;
  let neighbors mask =
    let acc = ref 0 in
    (* cqlint: allow R1 — loop bounded by the variable count, at most 62 *)
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then acc := !acc lor adj.(i)
    done;
    !acc land lnot mask
  in
  let components mask =
    let comp_of seed =
      let frontier = ref seed and region = ref seed in
      (* cqlint: allow R1 — each pass grows the region, at most 62 passes *)
      while !frontier <> 0 do
        let next = neighbors !region land mask in
        frontier := next land lnot !region;
        region := !region lor !frontier
      done;
      !region
    in
    (* cqlint: allow R1 — one component per call, at most 62 components *)
    let rec go mask acc =
      if mask = 0 then acc
      else begin
        let seed = mask land -mask in
        let c = comp_of seed in
        go (mask land lnot c) (c :: acc)
      end
    in
    go mask []
  in
  let memo = Hashtbl.create 256 in
  (* solve c b: can the component c with boundary b (= N(c)) be
     decomposed with k-coverable bags? *)
  let rec solve c b =
    Budget.tick ~what:"cq decomp: separator search" ();
    if c = 0 then true
    else begin
      match Hashtbl.find_opt memo (c, b) with
      | Some r -> r
      | None ->
          Hashtbl.add memo (c, b) false (* cycle guard; overwritten below *)
          ;
          let ok = ref false in
          (* Enumerate nonempty submasks t of c; bag = b ∪ t. *)
          let t = ref c in
          while (not !ok) && !t <> 0 do
            let bag = b lor !t in
            if coverable bag k then begin
              let rest = c land lnot !t in
              let comps = components rest in
              if List.for_all (fun c' -> solve c' (neighbors c')) comps then
                ok := true
            end;
            t := (!t - 1) land c
          done;
          Hashtbl.replace memo (c, b) !ok;
          !ok
    end
  in
  List.for_all (fun c -> solve c 0) (components all)

(* ghw is a pure function of the query and each [ghw_le] probe is an
   exponential search, so memoize on the printed form (printing is
   injective up to syntactic identity, which is exactly the reuse we
   want). Inserted only after the full upward search completes, so an
   abort mid-probe never caches a wrong width. *)
let ghw_cache : (string, int) Hashtbl.t = Hashtbl.create 64

let () =
  Runtime_state.register ~name:"cq_decomp.ghw_cache"
    ~validate:(fun () -> Hashtbl.fold (fun _ k ok -> ok && k >= 0) ghw_cache true)
    (fun () -> Hashtbl.reset ghw_cache)

let ghw q =
  let key = Cq.to_string q in
  match Hashtbl.find_opt ghw_cache key with
  | Some k -> k
  | None ->
      let upper = max 0 (Cq.num_atoms q) in
      (* cqlint: allow R1 — every probe runs the ticking ghw_le search *)
      let rec go k =
        if k > upper then upper else if ghw_le q k then k else go (k + 1)
      in
      let k = go 0 in
      Hashtbl.replace ghw_cache key k;
      k

(* --- decomposition extraction ---------------------------------------- *)

type decomp = {
  bag : Elem.Set.t;
  cover : Fact.t list;
  children : decomp list;
}

(* Same recursion as [ghw_le], but memoizing witnessing subtrees and
   reconstructing a cover for each chosen bag. *)
let decomposition q ~k =
  if k < 0 then invalid_arg "Cq_decomp.decomposition: negative k";
  let n, tbl = index_vars q in
  let atoms = Array.of_list (Cq.atoms q) in
  let edges = Array.of_list (edge_masks q tbl) in
  (* Map bit positions back to variables. *)
  let var_of_bit = Array.make n Cq.default_free in
  (* cqlint: allow R6 — each iteration writes a distinct array slot (the index is injective) *)
  Hashtbl.iter (fun v i -> var_of_bit.(i) <- v) tbl;
  let set_of_mask mask =
    let s = ref Elem.Set.empty in
    (* cqlint: allow R1 — loop bounded by the variable count, at most 62 *)
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then s := Elem.Set.add var_of_bit.(i) !s
    done;
    !s
  in
  let all = (1 lsl n) - 1 in
  (* Greedy-with-backtracking cover returning the witnessing atoms. *)
  let rec cover_of s budget =
    Budget.tick ~what:"cq decomp: cover extraction" ();
    if s = 0 then Some []
    else if budget = 0 then None
    else begin
      let v = s land -s in
      let found = ref None in
      Array.iteri
        (fun i e ->
          if !found = None && e land v <> 0 then
            match cover_of (s land lnot e) (budget - 1) with
            | Some rest -> found := Some (atoms.(i) :: rest)
            | None -> ())
        edges;
      !found
    end
  in
  let adj = Array.make n 0 in
  Array.iter
    (fun e ->
      (* cqlint: allow R1 — loop bounded by the variable count, at most 62 *)
      for i = 0 to n - 1 do
        if e land (1 lsl i) <> 0 then
          adj.(i) <- adj.(i) lor (e land lnot (1 lsl i))
      done)
    edges;
  let neighbors mask =
    let acc = ref 0 in
    (* cqlint: allow R1 — loop bounded by the variable count, at most 62 *)
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then acc := !acc lor adj.(i)
    done;
    !acc land lnot mask
  in
  let components mask =
    let comp_of seed =
      let frontier = ref seed and region = ref seed in
      (* cqlint: allow R1 — each pass grows the region, at most 62 passes *)
      while !frontier <> 0 do
        let next = neighbors !region land mask in
        frontier := next land lnot !region;
        region := !region lor !frontier
      done;
      !region
    in
    (* cqlint: allow R1 — one component per call, at most 62 components *)
    let rec go mask acc =
      if mask = 0 then acc
      else begin
        let seed = mask land -mask in
        let c = comp_of seed in
        go (mask land lnot c) (c :: acc)
      end
    in
    go mask []
  in
  let memo : (int * int, decomp option) Hashtbl.t = Hashtbl.create 256 in
  let rec solve c b =
    Budget.tick ~what:"cq decomp: separator search" ();
    match Hashtbl.find_opt memo (c, b) with
    | Some r -> r
    | None ->
        let result = ref None in
        let t = ref c in
        while !result = None && !t <> 0 do
          let bag_mask = b lor !t in
          (match cover_of bag_mask k with
          | Some cover ->
              let rest = c land lnot !t in
              let comps = components rest in
              let subs =
                List.map (fun c' -> solve c' (neighbors c')) comps
              in
              if List.for_all (fun s -> s <> None) subs then
                result :=
                  Some
                    {
                      bag = set_of_mask bag_mask;
                      cover;
                      children =
                        List.filter_map (fun s -> s) subs;
                    }
          | None -> ());
          t := (!t - 1) land c
        done;
        Hashtbl.add memo (c, b) !result;
        !result
  in
  let comps = components all in
  let roots = List.map (fun c -> solve c 0) comps in
  if List.for_all (fun r -> r <> None) roots then
    Some (List.filter_map (fun r -> r) roots)
  else None

let check_decomposition q ~k forest =
  let ex = Cq.existential_vars q in
  (* cqlint: allow R1 — structural recursion over a finite decomposition tree *)
  let rec nodes d = d :: List.concat_map nodes d.children in
  let all_nodes = List.concat_map nodes forest in
  (* (1) every atom's existential vars inside some bag *)
  let atoms_ok =
    List.for_all
      (fun atom ->
        let evars = Elem.Set.inter (Fact.elems atom) ex in
        Elem.Set.is_empty evars
        || List.exists (fun d -> Elem.Set.subset evars d.bag) all_nodes)
      (Cq.atoms q)
  in
  (* (2) connectivity: within each tree, the nodes holding a variable
     form a connected subtree; across trees a variable appears in at
     most one tree. *)
  (* cqlint: allow R1 — structural recursion over a finite decomposition tree *)
  let rec connected_for v d =
    (* returns (contains_somewhere, is_connected_as_single_segment) *)
    let child_results = List.map (connected_for v) d.children in
    let here = Elem.Set.mem v d.bag in
    let containing_children =
      List.filter (fun (c, _) -> c) child_results
    in
    let all_conn = List.for_all (fun (_, ok) -> ok) child_results in
    if here then
      ( true,
        all_conn
        && List.for_all
             (fun ((c, _), child) -> (not c) || Elem.Set.mem v child.bag)
             (List.combine child_results d.children) )
    else begin
      match containing_children with
      | [] -> (false, all_conn)
      | [ _ ] -> (true, all_conn)
      | _ -> (true, false)
      (* two disjoint segments below a node not containing v *)
    end
  in
  let connectivity_ok =
    Elem.Set.for_all
      (fun v ->
        let per_tree = List.map (connected_for v) forest in
        let trees_with_v = List.filter (fun (c, _) -> c) per_tree in
        List.length trees_with_v <= 1
        && List.for_all (fun (_, ok) -> ok) per_tree)
      ex
  in
  (* (3) covers are small and actually cover *)
  let covers_ok =
    List.for_all
      (fun d ->
        List.length d.cover <= k
        && Elem.Set.subset d.bag
             (List.fold_left
                (fun acc f -> Elem.Set.union acc (Fact.elems f))
                Elem.Set.empty d.cover)
        && List.for_all
             (fun f -> List.exists (Fact.equal f) (Cq.atoms q))
             d.cover)
      all_nodes
  in
  atoms_ok && connectivity_ok && covers_ok
