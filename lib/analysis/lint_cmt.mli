(** Locating and reading the [-bin-annot] output ([.cmt]/[.cmti]) dune
    produces alongside every compiled module — the input of the typed
    lint pass.

    Loading is best-effort by design: a missing or unreadable
    annotation file (stale build, different compiler version, fresh
    checkout) degrades that module to the Parsetree rules instead of
    failing the run; {!degraded_sources} names the affected sources so
    the driver can report the reduced coverage explicitly. *)

type unit_info = {
  u_module : string;  (** capitalized module name, e.g. ["Cq_sep"] *)
  u_ml : string option;  (** root-relative [.ml] path, when present *)
  u_mli : string option;  (** root-relative [.mli] path, when present *)
  u_impl : Typedtree.structure option;  (** typed tree from the [.cmt] *)
  u_intf : Typedtree.signature option;  (** typed signature from the [.cmti] *)
}

val module_name_of_source : string -> string
(** ["lib/core/cq_sep.ml"] → ["Cq_sep"]. *)

val read_impl : string -> (Typedtree.structure, string) result
(** Read a [.cmt] file; [Error] on a missing file, a magic-number
    mismatch (different compiler), or a cmt that does not carry a full
    implementation. *)

val read_intf : string -> (Typedtree.signature, string) result
(** Read a [.cmti] file, same contract as {!read_impl}. *)

val obj_dir_candidates :
  root:string -> rel_dir:string -> lib_name:string -> string list
(** Where dune may have put the library's annotations: the in-context
    [.<lib>.objs/byte] directory (the [@lint] alias runs inside
    [_build/default]) and the [_build/default] fallback for runs from
    a source checkout. *)

val load_units :
  root:string ->
  rel_dir:string ->
  lib_name:string ->
  ml:string list ->
  mli:string list ->
  unit_info list
(** Pair every source basename of one library directory with whatever
    annotations exist, probing {!obj_dir_candidates} in order. *)

val degraded_sources : unit_info list -> string list
(** Sources that have no matching annotation and therefore fall back
    to the Parsetree rules. *)
