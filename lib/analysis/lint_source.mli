(** Parsed source files and [cqlint] suppression directives.

    Files are parsed with the toolchain's own frontend
    ([Lexer]/[Parse] from compiler-libs), so the linter sees exactly
    the tree the compiler sees, plus the comment stream the lexer
    accumulates — which is where suppression directives live. *)

type ast =
  | Impl of Parsetree.structure
  | Intf of Parsetree.signature

type t = {
  path : string;  (** path reported in findings *)
  ast : ast;
  comments : (string * Location.t) list;
}

val load : ?path:string -> string -> (t, string) result
(** [load file] reads and parses [file] ([.mli] as an interface,
    anything else as an implementation). [path] overrides the path
    recorded in findings (the driver passes root-relative paths).
    [Error msg] on I/O or syntax errors — the linter treats those as
    internal errors (exit 2), not findings. *)

val parse_string : path:string -> intf:bool -> string -> (t, string) result
(** Parse in-memory source, for the linter's own tests. *)

(** A parsed [(* cqlint: allow R1[,R3] — reason *)] directive. The
    em-dash separator may also be written [--]. The reason is
    mandatory; a directive without one does not suppress anything and
    is reported under {!Lint_finding.R0}. *)
type suppression = {
  rules : Lint_finding.rule list;
  line : int;  (** last line of the comment *)
  reason : string;
}

val suppressions : t -> suppression list * Lint_finding.t list
(** All well-formed directives, plus an [R0] finding for each comment
    that starts with [cqlint:] but does not parse. *)

val suppressed : suppression list -> Lint_finding.t -> bool
(** A directive on (comment-)line [l] covers findings of its rules on
    lines [l] and [l+1]: same-line trailing comments and
    comment-above-the-offending-line both work. *)

val apply : t -> Lint_finding.t list -> Lint_finding.t list * int
(** [apply src findings] adds the [R0] findings for [src], filters out
    suppressed ones, and returns the survivors (sorted) with the count
    of findings that were suppressed. *)
