(** SARIF 2.1.0 rendering of lint findings — the subset GitHub code
    scanning consumes (rule catalogue, per-finding physical location,
    stable [partialFingerprints] from the baseline key). *)

val to_sarif : Lint_finding.t list -> string
(** One complete SARIF document (a single run), no trailing newline. *)
