(** Shared-state escape analysis — the Typedtree pass behind R10.

    Tracks mutable values allocated {e inside} a function (refs,
    arrays, [Hashtbl]s, [Buffer]s, [Bytes], ...) and reports each one
    that crosses a fork/runner boundary: passed to
    [Isolate.run]/[Isolate.spawn], applied through a [*runner]-record
    [.run] field, or captured by a closure handed across either —
    including transitively, through intermediate let-bindings. After a
    fork the child mutates a copy-on-write copy, so such writes are
    silently lost at the merge; under an OCaml 5 domains backend the
    same aliasing becomes a data race.

    A mutable allocated {e inside} the escaping thunk is not reported —
    it is born on the far side of the boundary and never aliased. *)

type kind =
  | Fork_boundary of string
      (** crossed this boundary head: ["Isolate.run"], ["Isolate.spawn"]
          or ["runner.run"] *)
  | Stored_global of string
      (** written into this global structure (no lint rule yet; exposed
          for tests and future passes) *)

type escape = {
  esc_kind : kind;
  esc_what : string;  (** allocation head: ["ref"], ["Hashtbl"], ... *)
  esc_name : string;  (** the local binding's source name *)
  esc_line : int;  (** allocation site *)
  esc_col : int;
  esc_encl : string;  (** enclosing top-level binding *)
  esc_bline : int;  (** the crossing application *)
  esc_bcol : int;
}

val analyze : ?is_global:(Path.t -> bool) -> Typedtree.structure -> escape list
(** One module at a time, in source order, deduplicated per
    (allocation, kind). [is_global] decides which store targets count
    as global for [Stored_global]; it defaults to never. *)
