type ast =
  | Impl of Parsetree.structure
  | Intf of Parsetree.signature

type t = {
  path : string;
  ast : ast;
  comments : (string * Location.t) list;
}

let parse_lexbuf ~path ~intf lexbuf =
  Location.init lexbuf path;
  Lexer.init ();
  match
    if intf then Intf (Parse.interface lexbuf)
    else Impl (Parse.implementation lexbuf)
  with
  | ast -> Ok { path; ast; comments = Lexer.comments () }
  | exception e -> begin
      (* Render compiler diagnostics (syntax errors, lexer errors)
         through the compiler's own printer when it knows the
         exception; anything else is shown raw. *)
      match Location.error_of_exn e with
      | Some (`Ok err) ->
          Error (Format.asprintf "%a" Location.print_report err)
      | _ -> Error (Printf.sprintf "%s: %s" path (Printexc.to_string e))
    end

let parse_string ~path ~intf source =
  parse_lexbuf ~path ~intf (Lexing.from_string source)

let load ?path file =
  let path = match path with Some p -> p | None -> file in
  let intf = Filename.check_suffix file ".mli" in
  match open_in_bin file with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> parse_lexbuf ~path ~intf (Lexing.from_channel ic))

(* --- suppression directives ------------------------------------------ *)

type suppression = {
  rules : Lint_finding.rule list;
  line : int;
  reason : string;
}

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter (fun w -> w <> "")

(* Find the reason separator: an em dash (U+2014) or a [--] token. *)
let split_reason s =
  let n = String.length s in
  let dash = "\xe2\x80\x94" in
  let rec go i =
    if i >= n then None
    else if i + 2 < n && String.sub s i 3 = dash then
      Some (String.sub s 0 i, String.sub s (i + 3) (n - i - 3))
    else if
      i + 1 < n
      && s.[i] = '-'
      && s.[i + 1] = '-'
      && (i = 0 || is_space s.[i - 1])
      && (i + 2 >= n || is_space s.[i + 2])
    then Some (String.sub s 0 i, String.sub s (i + 2) (n - i - 2))
    else go (i + 1)
  in
  go 0

let directive_prefix = "cqlint:"

(* [parse_directive text] is [None] when [text] is not a cqlint
   directive at all, [Some (Ok (rules, reason))] for a well-formed one
   and [Some (Error msg)] for a malformed one. *)
let parse_directive text =
  let text = String.trim text in
  if not (String.length text >= String.length directive_prefix
          && String.sub text 0 (String.length directive_prefix)
             = directive_prefix)
  then None
  else begin
    let rest =
      String.trim
        (String.sub text
           (String.length directive_prefix)
           (String.length text - String.length directive_prefix))
    in
    match split_words rest with
    | "allow" :: _ -> begin
        let rest = String.trim (String.sub rest 5 (String.length rest - 5)) in
        match split_reason rest with
        | None ->
            Some
              (Error
                 "missing the mandatory reason: write (* cqlint: allow R1 \
                  \xe2\x80\x94 reason *)")
        | Some (rules_part, reason) -> begin
            let reason = String.trim reason in
            let tokens =
              split_words (String.map (function ',' -> ' ' | c -> c) rules_part)
            in
            let rules = List.map Lint_finding.rule_of_string tokens in
            if reason = "" then
              Some (Error "empty reason after the \xe2\x80\x94 separator")
            else if tokens = [] then
              Some (Error "no rule named before the reason")
            else if List.exists (fun r -> r = None) rules then
              let bad =
                List.find
                  (fun t -> Lint_finding.rule_of_string t = None)
                  tokens
              in
              Some
                (Error
                   (Printf.sprintf "unknown rule %S (expected R1..R11)" bad))
            else if List.exists (fun r -> r = Some Lint_finding.R0) rules then
              Some (Error "R0 (directive hygiene) cannot be suppressed")
            else
              Some (Ok (List.filter_map Fun.id rules, reason))
          end
      end
    | _ ->
        Some
          (Error
             "unknown cqlint directive: only (* cqlint: allow R<n> \
              \xe2\x80\x94 reason *) is supported")
  end

let suppressions src =
  List.fold_left
    (fun (sups, bad) (text, (loc : Location.t)) ->
      match parse_directive text with
      | None -> (sups, bad)
      | Some (Ok (rules, reason)) ->
          ({ rules; line = loc.loc_end.pos_lnum; reason } :: sups, bad)
      | Some (Error msg) ->
          ( sups,
            Lint_finding.make ~rule:Lint_finding.R0 ~file:src.path ~loc
              ~key:(Printf.sprintf "directive#%d" loc.loc_start.pos_lnum)
              msg
            :: bad ))
    ([], []) src.comments

let suppressed sups (f : Lint_finding.t) =
  List.exists
    (fun s ->
      List.mem f.Lint_finding.rule s.rules
      && (f.Lint_finding.line = s.line || f.Lint_finding.line = s.line + 1))
    sups

let apply src findings =
  let sups, bad = suppressions src in
  let kept, dropped =
    List.partition (fun f -> not (suppressed sups f)) findings
  in
  (List.sort Lint_finding.compare (bad @ kept), List.length dropped)
