(* The rule implementations walk the Parsetree with [Ast_iterator].
   Pattern matching is restricted to constructors that are stable
   across the 4.14..5.x Parsetree (no [Pexp_fun]/[Pexp_function],
   whose shape changed in 5.2): traversal is always delegated to
   [default_iterator], and function bodies are inspected by subtree
   containment rather than by peeling parameter nodes. *)

open Parsetree

let last_of = function
  | Longident.Lident s -> s
  | Longident.Ldot (_, s) -> s
  | Longident.Lapply _ -> ""

(* All identifier paths occurring in an expression subtree. *)
let iter_idents f e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self x ->
          (match x.pexp_desc with
          | Pexp_ident { txt; _ } -> f txt
          | _ -> ());
          Ast_iterator.default_iterator.expr self x);
    }
  in
  it.expr it e

let expr_mentions pred e =
  let found = ref false in
  iter_idents (fun lid -> if pred lid then found := true) e;
  !found

let is_budget_tick = function
  | Longident.Ldot (Longident.Lident "Budget", "tick") -> true
  | _ -> false

(* --- R1: budget discipline ------------------------------------------- *)

(* Names of let-bound values (at any depth) whose right-hand side
   contains a [Budget.tick] call. Used for the one-level closure: a
   loop that calls such a function ticks through it. A binding whose
   rhs merely *defines* an inner ticking function is over-approximated
   as ticking — acceptable for a linter (the miss is in the quiet
   direction and rare in this codebase). *)
let direct_tickers structure =
  let tickers = Hashtbl.create 16 in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ } when expr_mentions is_budget_tick vb.pvb_expr
            ->
              Hashtbl.replace tickers txt ()
          | _ -> ());
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.structure it structure;
  tickers

let ticks_ok tickers e =
  let ok = ref false in
  iter_idents
    (fun lid ->
      if is_budget_tick lid then ok := true
      else
        match lid with
        | Longident.Lident s when Hashtbl.mem tickers s -> ok := true
        | _ -> ())
    e;
  !ok

let r1_budget (src : Lint_source.t) =
  match src.ast with
  | Intf _ -> []
  | Impl structure ->
      let tickers = direct_tickers structure in
      let findings = ref [] in
      let keys = Hashtbl.create 16 in
      let fresh_key base =
        let n =
          match Hashtbl.find_opt keys base with Some n -> n + 1 | None -> 1
        in
        Hashtbl.replace keys base n;
        if n = 1 then base else Printf.sprintf "%s#%d" base n
      in
      let report ~loc ~key msg =
        findings :=
          Lint_finding.make ~rule:Lint_finding.R1 ~file:src.path ~loc
            ~key:(fresh_key key) msg
          :: !findings
      in
      (* Stack of enclosing binding names, for loop labels. *)
      let context = ref [] in
      let enclosing () =
        match !context with [] -> "<toplevel>" | name :: _ -> name
      in
      let check_loop ~loc kind body =
        if not (ticks_ok tickers body) then
          report ~loc
            ~key:(Printf.sprintf "%s@%s" kind (enclosing ()))
            (Printf.sprintf
               "%s loop in solver code without a Budget.tick on its path \
                (inside `%s`): add Budget.tick ~what:\"...\" () to the body \
                or have it call a same-file helper that ticks"
               kind (enclosing ()))
      in
      let check_rec_binding vb =
        match vb.pvb_pat.ppat_desc with
        | Ppat_var { txt = name; _ }
          when expr_mentions (fun lid -> lid = Longident.Lident name)
                 vb.pvb_expr ->
            if not (ticks_ok tickers vb.pvb_expr) then
              report ~loc:vb.pvb_pat.ppat_loc
                ~key:(Printf.sprintf "rec:%s" name)
                (Printf.sprintf
                   "self-recursive `%s` in solver code never calls \
                    Budget.tick: an adversarial input can recurse past any \
                    deadline; tick once per call or per expansion step"
                   name)
        | _ -> ()
      in
      let it =
        {
          Ast_iterator.default_iterator with
          structure_item =
            (fun self si ->
              (match si.pstr_desc with
              | Pstr_value (Asttypes.Recursive, vbs) ->
                  List.iter check_rec_binding vbs
              | _ -> ());
              Ast_iterator.default_iterator.structure_item self si);
          value_binding =
            (fun self vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } ->
                  context := txt :: !context;
                  Ast_iterator.default_iterator.value_binding self vb;
                  context := List.tl !context
              | _ -> Ast_iterator.default_iterator.value_binding self vb);
          expr =
            (fun self e ->
              (match e.pexp_desc with
              | Pexp_while (_, body) ->
                  check_loop ~loc:e.pexp_loc "while" body
              | Pexp_for (_, _, _, _, body) ->
                  check_loop ~loc:e.pexp_loc "for" body
              | Pexp_let (Asttypes.Recursive, vbs, _) ->
                  List.iter check_rec_binding vbs
              | _ -> ());
              Ast_iterator.default_iterator.expr self e);
        }
      in
      it.structure it structure;
      List.rev !findings

(* --- R2: exception hygiene ------------------------------------------- *)

(* Exception constructors Guard.run converts into a structured Error
   ([Invalid_argument]/[Failure]/[Not_found]/[Stack_overflow]/
   [Division_by_zero]), plus the runtime's own [Exhausted] and stdlib
   [Exit] (ubiquitous local control flow, always caught in this
   codebase). *)
let convertible =
  [ "Invalid_argument"; "Failure"; "Not_found"; "Stack_overflow";
    "Division_by_zero"; "Exhausted"; "Exit" ]

let local_exceptions structure =
  let names = Hashtbl.create 8 in
  let it =
    {
      Ast_iterator.default_iterator with
      structure_item =
        (fun self si ->
          (match si.pstr_desc with
          | Pstr_exception { ptyexn_constructor = { pext_name; _ }; _ } ->
              Hashtbl.replace names pext_name.txt ()
          | _ -> ());
          Ast_iterator.default_iterator.structure_item self si);
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_letexception ({ pext_name; _ }, _) ->
              Hashtbl.replace names pext_name.txt ()
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it structure;
  names

let is_guard_run = function
  | Longident.Ldot (Longident.Lident "Guard", ("run" | "run_result")) -> true
  | _ -> false

let r2_exceptions (src : Lint_source.t) =
  match src.ast with
  | Intf _ -> []
  | Impl structure ->
      let locals = local_exceptions structure in
      let findings = ref [] in
      let keys = Hashtbl.create 16 in
      let fresh_key base =
        let n =
          match Hashtbl.find_opt keys base with Some n -> n + 1 | None -> 1
        in
        Hashtbl.replace keys base n;
        if n = 1 then base else Printf.sprintf "%s#%d" base n
      in
      let report ~loc ~key msg =
        findings :=
          Lint_finding.make ~rule:Lint_finding.R2 ~file:src.path ~loc
            ~key:(fresh_key key) msg
          :: !findings
      in
      let check_raise ~loc arg =
        match arg.pexp_desc with
        | Pexp_construct ({ txt; _ }, _) ->
            let name = last_of txt in
            if
              not (List.mem name convertible || Hashtbl.mem locals name)
            then
              report ~loc
                ~key:(Printf.sprintf "raise:%s" name)
                (Printf.sprintf
                   "raising `%s` escapes Guard.run unconverted: library \
                    code may only raise Invalid_argument/Failure/Not_found \
                    (mapped to Solver_error), Budget.Exhausted, Exit, or an \
                    exception declared in this file and caught locally"
                   name)
        | _ -> () (* re-raise of a caught exception value *)
      in
      let check_entry_point vb =
        match vb.pvb_pat.ppat_desc with
        | Ppat_var { txt = name; _ }
          when String.length name > 2
               && String.sub name (String.length name - 2) 2 = "_b" ->
            let delegates =
              expr_mentions
                (fun lid ->
                  is_guard_run lid
                  ||
                  let s = last_of lid in
                  s <> name
                  && String.length s > 2
                  && String.sub s (String.length s - 2) 2 = "_b")
                vb.pvb_expr
            in
            if not delegates then
              report ~loc:vb.pvb_pat.ppat_loc
                ~key:(Printf.sprintf "entry:%s" name)
                (Printf.sprintf
                   "budgeted entry point `%s` can raise outside Guard.run: \
                    wrap the body in Guard.run/Guard.run_result (or \
                    delegate to another _b entry point) so exhaustion and \
                    solver failures return a structured Error"
                   name)
        | _ -> ()
      in
      let it =
        {
          Ast_iterator.default_iterator with
          structure_item =
            (fun self si ->
              (match si.pstr_desc with
              | Pstr_value (_, vbs) -> List.iter check_entry_point vbs
              | _ -> ());
              Ast_iterator.default_iterator.structure_item self si);
          expr =
            (fun self e ->
              (match e.pexp_desc with
              | Pexp_apply
                  ( { pexp_desc = Pexp_ident { txt; _ }; _ },
                    (Asttypes.Nolabel, arg) :: _ )
                when last_of txt = "raise" || last_of txt = "raise_notrace"
                ->
                  check_raise ~loc:e.pexp_loc arg
              | _ -> ());
              Ast_iterator.default_iterator.expr self e);
        }
      in
      it.structure it structure;
      List.rev !findings

(* --- R3: comparison safety ------------------------------------------- *)

let domain_modules = [ "Rat"; "Bigint" ]

(* [Rat]/[Bigint] functions returning scalars (int/bool/string/float):
   applying polymorphic [=] to their result is fine. Everything else
   in those modules yields (or contains) a domain value. *)
let scalar_fns =
  [ "compare"; "equal"; "sign"; "is_zero"; "is_one"; "is_neg"; "is_int";
    "leq"; "lt"; "geq"; "gt"; "to_int"; "to_int_opt"; "to_float";
    "to_string"; "pp"; "hash"; "fits_int"; "to_q" ]

(* Does this expression (an operand of a polymorphic comparison)
   produce a domain value? Head-based: [Rat.zero], [Rat.add x y],
   [Bigint.of_int n], ... — but not [Rat.compare x y] or other
   scalar-returning calls. *)
let rec domain_valued e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Ldot (Longident.Lident m, fn); _ }
    when List.mem m domain_modules ->
      if List.mem fn scalar_fns then None else Some m
  | Pexp_apply (f, _) -> domain_valued f
  | _ -> None

let poly_compare_ops = [ "="; "<>"; "compare"; "<"; "<="; ">"; ">=" ]

let is_poly_compare = function
  | Longident.Lident op -> List.mem op poly_compare_ops
  | Longident.Ldot (Longident.Lident "Stdlib", op) ->
      List.mem op poly_compare_ops
  | _ -> false

let hashtbl_key_ops = [ "add"; "replace"; "find"; "find_opt"; "mem"; "remove" ]

let r3_comparisons (src : Lint_source.t) =
  match src.ast with
  | Intf _ -> []
  | Impl structure ->
      let findings = ref [] in
      let keys = Hashtbl.create 16 in
      let fresh_key base =
        let n =
          match Hashtbl.find_opt keys base with Some n -> n + 1 | None -> 1
        in
        Hashtbl.replace keys base n;
        if n = 1 then base else Printf.sprintf "%s#%d" base n
      in
      let report ~loc ~key msg =
        findings :=
          Lint_finding.make ~rule:Lint_finding.R3 ~file:src.path ~loc
            ~key:(fresh_key key) msg
          :: !findings
      in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun self e ->
              (match e.pexp_desc with
              | Pexp_ident
                  { txt = Longident.Ldot (Longident.Lident "Hashtbl", "hash");
                    _ } ->
                  report ~loc:e.pexp_loc ~key:"hash"
                    "polymorphic Hashtbl.hash inspects only a bounded \
                     prefix of deep structural values (meaningfully-distinct \
                     inputs can collide systematically): serialize the key \
                     explicitly or use the domain type's dedicated hash"
              | Pexp_apply
                  ({ pexp_desc = Pexp_ident { txt = op; _ }; _ }, args)
                when is_poly_compare op -> begin
                  let operands =
                    List.filter_map
                      (fun (lbl, a) ->
                        if lbl = Asttypes.Nolabel then Some a else None)
                      args
                  in
                  match List.find_map domain_valued operands with
                  | Some m ->
                      report ~loc:e.pexp_loc
                        ~key:(Printf.sprintf "polyeq:%s" m)
                        (Printf.sprintf
                           "polymorphic `%s` on a %s.t value: use %s.equal/\
                            %s.compare (structural comparison is wrong or \
                            fragile on non-canonical representations)"
                           (last_of op) m m m)
                  | None -> ()
                end
              | Pexp_apply
                  ( { pexp_desc =
                        Pexp_ident
                          { txt =
                              Longident.Ldot (Longident.Lident "Hashtbl", op);
                            _ };
                      _ },
                    args )
                when List.mem op hashtbl_key_ops -> begin
                  let positional =
                    List.filter_map
                      (fun (lbl, a) ->
                        if lbl = Asttypes.Nolabel then Some a else None)
                      args
                  in
                  match positional with
                  | _tbl :: key :: _ -> begin
                      match domain_valued key with
                      | Some m ->
                          report ~loc:e.pexp_loc
                            ~key:(Printf.sprintf "hashtbl-key:%s" m)
                            (Printf.sprintf
                               "default Hashtbl keyed by %s.t hashes with \
                                the polymorphic hash: key on an explicit \
                                serialization (e.g. %s.to_string) or a \
                                dedicated hashtable"
                               m m)
                      | None -> ()
                    end
                  | _ -> ()
                end
              | _ -> ());
              Ast_iterator.default_iterator.expr self e);
        }
      in
      it.structure it structure;
      List.rev !findings

(* --- R5: runtime-state registration ---------------------------------- *)

(* Modules whose [create]/[make]/[init] allocate a mutable container. *)
let mutable_makers =
  [ "Hashtbl"; "Queue"; "Stack"; "Buffer"; "Array"; "Weak"; "Atomic";
    "Dynarray" ]

(* Is this binding's right-hand side (head position, peeling type
   constraints) a fresh mutable container — a [ref ...] or an
   [M.create]/[M.make] for a mutable module M? Returns what it is, for
   the message. *)
let rec mutable_alloc e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> mutable_alloc e
  | Pexp_apply (f, _) -> begin
      match f.pexp_desc with
      | Pexp_ident { txt = Longident.Lident "ref"; _ }
      | Pexp_ident
          { txt = Longident.Ldot (Longident.Lident "Stdlib", "ref"); _ } ->
          Some "ref"
      | Pexp_ident
          { txt = Longident.Ldot (Longident.Lident m, ("create" | "make" | "make_matrix" | "init"));
            _ }
        when List.mem m mutable_makers ->
          Some (m ^ ".t")
      | _ -> None
    end
  | _ -> None

let is_runtime_state_register = function
  | Longident.Ldot (Longident.Lident "Runtime_state", "register") -> true
  | _ -> false

(* Names mentioned anywhere inside the arguments of a
   [Runtime_state.register] application: a top-level binding whose name
   appears there has a reset (and possibly validate) path and counts as
   registered. *)
let registered_idents structure =
  let names = Hashtbl.create 8 in
  let record e =
    iter_idents
      (fun lid ->
        match lid with
        | Longident.Lident s -> Hashtbl.replace names s ()
        | _ -> ())
      e
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
            when is_runtime_state_register txt ->
              List.iter (fun (_, a) -> record a) args
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it structure;
  names

let r5_state (src : Lint_source.t) =
  match src.ast with
  | Intf _ -> []
  | Impl structure ->
      let registered = registered_idents structure in
      let findings = ref [] in
      let report ~loc ~name ~what =
        findings :=
          Lint_finding.make ~rule:Lint_finding.R5 ~file:src.path ~loc
            ~key:(Printf.sprintf "state:%s" name)
            (Printf.sprintf
               "top-level mutable state `%s` (%s) is not registered with \
                Runtime_state: a budgeted abort can leave it stale or \
                inconsistent with no way to reset or validate it; register \
                it (Runtime_state.register ~name:\"...\" ...) or make it \
                local to the computation"
               name what)
          :: !findings
      in
      let check_binding vb =
        let name =
          match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ } -> Some txt
          | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) ->
              Some txt
          | _ -> None
        in
        match (name, mutable_alloc vb.pvb_expr) with
        | Some name, Some what when not (Hashtbl.mem registered name) ->
            report ~loc:vb.pvb_pat.ppat_loc ~name ~what
        | _ -> ()
      in
      (* Walk structure *items* only — recursing into nested modules but
         never into expressions — so function-local mutable state (fine:
         it dies with the call) is out of scope by construction. *)
      let rec check_structure items = List.iter check_item items
      and check_item si =
        match si.pstr_desc with
        | Pstr_value (_, vbs) -> List.iter check_binding vbs
        | Pstr_module { pmb_expr; _ } -> check_module_expr pmb_expr
        | Pstr_recmodule mbs ->
            List.iter (fun mb -> check_module_expr mb.pmb_expr) mbs
        | Pstr_include { pincl_mod; _ } -> check_module_expr pincl_mod
        | _ -> ()
      and check_module_expr me =
        match me.pmod_desc with
        | Pmod_structure items -> check_structure items
        | Pmod_constraint (me, _) -> check_module_expr me
        | _ -> ()
      in
      check_structure structure;
      List.rev !findings

(* --- R4: interface hygiene ------------------------------------------- *)

let r4_missing_mli ~dir ~ml ~mli =
  let has_mli base = List.mem (base ^ ".mli") mli in
  List.filter_map
    (fun f ->
      if Filename.check_suffix f ".ml" then begin
        let base = Filename.chop_suffix f ".ml" in
        if has_mli base then None
        else
          Some
            (Lint_finding.v ~rule:Lint_finding.R4
               ~file:(Filename.concat dir f) ~line:1 ~col:0
               ~key:(Printf.sprintf "mli:%s" base)
               (Printf.sprintf
                  "module `%s` has no .mli: every library module must \
                   declare its public surface so R4 can check entry-point \
                   coverage"
                  (String.capitalize_ascii base)))
      end
      else None)
    ml

let rec arrow_args ty =
  match ty.ptyp_desc with
  | Ptyp_arrow (lbl, a, b) -> (lbl, a) :: arrow_args b
  | Ptyp_poly (_, t) -> arrow_args t
  | _ -> []

let type_mentions pred ty =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      typ =
        (fun self t ->
          (match t.ptyp_desc with
          | Ptyp_constr ({ txt; _ }, _) -> if pred txt then found := true
          | _ -> ());
          Ast_iterator.default_iterator.typ self t);
    }
  in
  it.typ it ty;
  !found

let is_training = function
  | Longident.Ldot (Longident.Lident "Labeling", "training") -> true
  | _ -> false

let r4_interface (src : Lint_source.t) =
  match src.ast with
  | Impl _ -> []
  | Intf signature ->
      let vals = Hashtbl.create 16 in
      List.iter
        (fun item ->
          match item.psig_desc with
          | Psig_value vd -> Hashtbl.replace vals vd.pval_name.txt ()
          | _ -> ())
        signature;
      List.filter_map
        (fun item ->
          match item.psig_desc with
          | Psig_value vd ->
              let name = vd.pval_name.txt in
              let is_b =
                String.length name > 2
                && String.sub name (String.length name - 2) 2 = "_b"
              in
              let args = arrow_args vd.pval_type in
              let budgeted =
                List.exists
                  (fun (lbl, _) -> lbl = Asttypes.Optional "budget")
                  args
              in
              let takes_training =
                List.exists (fun (_, t) -> type_mentions is_training t) args
              in
              if
                takes_training && (not is_b) && (not budgeted)
                && not (Hashtbl.mem vals (name ^ "_b"))
              then
                Some
                  (Lint_finding.make ~rule:Lint_finding.R4 ~file:src.path
                     ~loc:vd.pval_loc
                     ~key:(Printf.sprintf "val:%s" name)
                     (Printf.sprintf
                        "solver entry point `%s` takes Labeling.training \
                         but exports no budgeted `%s_b` counterpart \
                         (?budget:Budget.t -> ... -> (_, Guard.failure) \
                         result): unbudgeted callers can hang on \
                         worst-case inputs"
                        name name))
              else None
          | _ -> None)
        signature
