(* Shared-state escape analysis: track mutable values created inside a
   function (refs, arrays, Hashtbls, Buffers, Bytes, ...) and report
   when one crosses a fork/runner boundary — directly as an argument,
   or captured by a closure handed to [Isolate.run]/[Isolate.spawn] or
   applied through a [*runner]-record [.run] field — or is stored into
   a global structure.

   Crossing a fork means the child mutates a *copy*: writes are lost at
   the merge, the precise fork-time aliasing bug class an OCaml 5
   domains backend turns from silent wrong-answers into races. That is
   R10's [Fork_boundary] kind. [Stored_global] (a local mutable written
   into a caller-identified global) is exposed for tests and future
   rules but carries no lint rule yet — R5/R9 already police the
   global's own lifecycle.

   Mechanics: one top-down pass per module. A per-module environment
   maps stamped idents ([Ident.unique_name] — unique per binder, so
   scope exit needs no cleanup) of non-toplevel mutable allocations to
   their allocation facts, and a capture map gives each let-bound value
   the transitively-resolved set of tracked mutables its RHS mentions.
   Both are populated at binding time, *before* descending into the
   RHS, and boundary applications scan their argument subtrees *before*
   descent — so a mutable allocated inside the escaping thunk itself is
   correctly out of scope and not reported. Top-level bindings are
   skipped: those are R5/R9's sites, not locals. *)

type kind =
  | Fork_boundary of string  (** boundary head, e.g. ["Isolate.run"] *)
  | Stored_global of string  (** the global's dotted name *)

type escape = {
  esc_kind : kind;
  esc_what : string;  (** allocation head: ["ref"], ["Hashtbl"], ... *)
  esc_name : string;  (** the local binding's source name *)
  esc_line : int;  (** allocation site *)
  esc_col : int;
  esc_encl : string;  (** enclosing top-level binding *)
  esc_bline : int;  (** boundary (the crossing application) *)
  esc_bcol : int;
}

type alloc = { a_what : string; a_name : string; a_line : int; a_col : int }

let tyname p =
  match Callgraph.global_name p with Some n -> n | None -> Path.name p

let boundary_head (f : Typedtree.expression) =
  match f.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> begin
      match tyname p with
      | ("Isolate.run" | "Isolate.spawn") as n -> Some n
      | _ -> None
    end
  | Typedtree.Texp_field (_, _, ld) when ld.Types.lbl_name = "run" -> begin
      match Types.get_desc ld.Types.lbl_res with
      | Types.Tconstr (p, _, _)
        when String.ends_with ~suffix:"runner" (tyname p) ->
          Some "runner.run"
      | _ -> None
    end
  | _ -> None

let idents_in (e : Typedtree.expression) =
  let acc = ref [] in
  let iter =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Typedtree.exp_desc with
          | Typedtree.Texp_ident (p, _, _) -> acc := p :: !acc
          | _ -> ());
          Tast_iterator.default_iterator.expr self e);
    }
  in
  iter.Tast_iterator.expr iter e;
  !acc

let stamp_of (p : Path.t) = Callgraph.local_key p

let analyze ?(is_global = fun (_ : Path.t) -> false)
    (str : Typedtree.structure) =
  let out = ref [] in
  let seen = Hashtbl.create 16 in
  (* stamped ident -> allocation fact, for tracked local mutables *)
  let mutables : (string, alloc) Hashtbl.t = Hashtbl.create 16 in
  (* stamped ident -> tracked mutables its RHS captured *)
  let captures : (string, alloc list) Hashtbl.t = Hashtbl.create 16 in
  let encl = ref "" in
  let resolve_path p =
    match stamp_of p with
    | None -> []
    | Some k -> begin
        match Hashtbl.find_opt mutables k with
        | Some a -> [ a ]
        | None -> (
            match Hashtbl.find_opt captures k with Some l -> l | None -> [])
      end
  in
  let escaping (e : Typedtree.expression) =
    List.concat_map resolve_path (idents_in e)
  in
  let report kind (bloc : Location.t) allocs =
    List.iter
      (fun a ->
        let key = (a.a_name, a.a_line, a.a_col, kind) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          out :=
            {
              esc_kind = kind;
              esc_what = a.a_what;
              esc_name = a.a_name;
              esc_line = a.a_line;
              esc_col = a.a_col;
              esc_encl = !encl;
              esc_bline = bloc.loc_start.pos_lnum;
              esc_bcol = bloc.loc_start.pos_cnum - bloc.loc_start.pos_bol;
            }
            :: !out
        end)
      allocs
  in
  let check_apply (e : Typedtree.expression) (f : Typedtree.expression) args =
    (match boundary_head f with
    | Some head ->
        List.iter
          (fun (_, arg) ->
          match arg with
            | Some a ->
                report (Fork_boundary head) e.Typedtree.exp_loc (escaping a)
            | None -> ())
          args
    | None -> ());
    match f.Typedtree.exp_desc with
    | Typedtree.Texp_ident (p, _, _) when Effects.writer_head (tyname p) ->
      begin
        match
          List.find_map
            (fun (lbl, arg) ->
              match (lbl, arg) with
              | Asttypes.Nolabel, Some (a : Typedtree.expression) -> Some a
              | _ -> None)
            args
        with
        | None -> ()
        | Some target -> begin
            match
              List.find_opt (fun p -> is_global p) (idents_in target)
            with
            | None -> ()
            | Some gp ->
                let values =
                  List.concat_map
                    (fun (_, arg) ->
                      match arg with
                      | Some a when a != target -> escaping a
                      | _ -> [])
                    args
                in
                report (Stored_global (tyname gp)) e.Typedtree.exp_loc values
          end
      end
    | _ -> ()
  in
  let track_binding (vb : Typedtree.value_binding) =
    (* Capture set first — computed against the env *before* the RHS's
       own allocations are visible. *)
    let captured = escaping vb.Typedtree.vb_expr in
    let bound = Typedtree.pat_bound_idents vb.Typedtree.vb_pat in
    (match Effects.alloc_head vb.Typedtree.vb_expr with
    | Some what ->
        let loc = vb.Typedtree.vb_pat.Typedtree.pat_loc in
        List.iter
          (fun id ->
            Hashtbl.replace mutables (Ident.unique_name id)
              {
                a_what = what;
                a_name = Ident.name id;
                a_line = loc.loc_start.pos_lnum;
                a_col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
              })
          bound
    | None ->
        if captured <> [] then
          List.iter
            (fun id -> Hashtbl.replace captures (Ident.unique_name id) captured)
            bound)
  in
  let iter =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          match e.Typedtree.exp_desc with
          | Typedtree.Texp_let (_, vbs, body) ->
              List.iter
                (fun vb ->
                  track_binding vb;
                  self.Tast_iterator.expr self vb.Typedtree.vb_expr)
                vbs;
              self.Tast_iterator.expr self body
          | Typedtree.Texp_apply (f, args) ->
              check_apply e f args;
              Tast_iterator.default_iterator.expr self e
          | _ -> Tast_iterator.default_iterator.expr self e);
      structure_item =
        (fun self si ->
          match si.Typedtree.str_desc with
          | Typedtree.Tstr_value (_, vbs) ->
              (* Top-level bindings are global sites, not locals: name
                 the enclosure, skip tracking, descend. *)
              List.iter
                (fun (vb : Typedtree.value_binding) ->
                  let saved = !encl in
                  (match Typedtree.pat_bound_idents vb.Typedtree.vb_pat with
                  | id :: _ -> encl := Ident.name id
                  | [] -> ());
                  self.Tast_iterator.expr self vb.Typedtree.vb_expr;
                  encl := saved)
                vbs
          | _ -> Tast_iterator.default_iterator.structure_item self si);
    }
  in
  iter.Tast_iterator.structure iter str;
  List.rev !out
