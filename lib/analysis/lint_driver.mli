(** The cqlint driver: walk [lib/], [bin/] and [bench/], run the
    enabled rules — the typed, whole-library pass where [.cmt] files
    exist, the Parsetree rules everywhere — apply suppressions and the
    committed baseline, and produce a report.

    The typed pass loads each library's [-bin-annot] output, builds
    one interprocedural call graph over everything it found, and
    evaluates R1' (which subsumes the Parsetree R1 for covered files),
    R6, R7 and R8. A module whose cmt is missing or unreadable falls
    back to the Parsetree rules and is listed in [degraded] — reduced
    precision is always reported, never silent.

    The baseline file grandfathers pre-existing findings without
    touching the offending lines. One finding per line:

    {v R1 lib/cq/join_tree.ml rec:build — reason text v}

    (rule, root-relative file, stable key, em-dash — or [--] — then a
    mandatory reason). [#]-comments and blank lines are ignored.
    Matching is by (rule, file, key), never by line number, so
    unrelated edits don't invalidate the baseline; entries that no
    longer match anything are reported as stale. *)

val solver_dirs : string list
(** The worst-case-exponential libraries R1/R4b/R5/R6 apply to:
    [core cq relational folang covergame lp linsep]. *)

type config = {
  root : string;  (** directory containing [lib/] (and [bin]/[bench]) *)
  rules : Lint_finding.rule list;  (** enabled rules *)
  baseline : string option;  (** baseline file path, if any *)
  typed : bool;  (** load cmts and run the typed pass (default true) *)
}

val default_config : root:string -> config

type report = {
  findings : Lint_finding.t list;  (** survivors, sorted *)
  files_checked : int;
  suppressed : int;  (** silenced by reasoned allow-directives *)
  baselined : int;  (** grandfathered by the baseline file *)
  stale_baseline : string list;
      (** baseline entries that matched no finding (file still exists) *)
  missing_file_baseline : string list;
      (** baseline entries whose file no longer exists — deletable,
          never fixable *)
  typed_modules : int;  (** modules the typed pass loaded cmts for *)
  degraded : string list;
      (** library sources with no readable annotation — Parsetree
          fallback *)
}

val lint_source :
  rules:Lint_finding.rule list ->
  solver:bool ->
  Lint_source.t ->
  Lint_finding.t list
(** Run the per-file Parsetree rules on one parsed source (R1 and R4b
    gated on [solver]) and apply its suppression directives. This is
    the unit the linter's own tests drive. *)

val run : config -> (report, string) result
(** Lint the tree under [root]. [Error] on unreadable or unparsable
    sources and on malformed baseline files — internal errors,
    distinct from findings (exit 2 vs 1). *)

val callgraph : config -> (Callgraph.t, string) result
(** Build (only) the whole-library call graph, for
    [--dump-callgraph]. *)

val par_report : config -> (string, string) result
(** Generate the shard-safety report ({!Shard_report.generate}) for the
    tree under [root] — the exact bytes R11 expects to find committed
    at [docs/SHARD_SAFETY.md]. [Error] when no cmts are loadable. *)

val taint_report : config -> (string, string) result
(** Generate the exactness-boundary report
    ({!Protocol_rules.exactness_report}) — the exact bytes R11 expects
    committed at [docs/EXACTNESS.md]. [Error] when no cmts are
    loadable. *)

type baseline_entry = {
  b_rule : Lint_finding.rule;
  b_file : string;
  b_key : string;
  b_reason : string;
}

val parse_baseline : string -> (baseline_entry list, string) result
(** Parse baseline file contents (not a path). Every entry must carry
    a reason. *)

val baseline_line : Lint_finding.t -> string
(** Render a finding as a baseline line with a [TODO] reason — the
    [--write-baseline] starting point; reasons must be filled in by a
    human. *)
