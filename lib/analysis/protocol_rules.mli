(** The protocol-discipline rules, evaluated over {!Taint}'s summaries
    and dominance/release walks of the anchored bodies:

    - {b R12} — float taint: the {!Taint} summary of every exported
      [lib/core]/[lib/linsep] entry point must be clean (no
      unsanitized float source reaches the returned verdict), and no
      float-tainted value may flow into a serialization head
      ([Model_io.save]/[to_string], [Wal.append]). The finding's
      message carries the witness chain.
    - {b R13} — journal-before-ack: inside [lib/service], every
      mutation of a client-observable job field ([ji_state]) and every
      [Ok] ack constructed by an ack entry point ([Service.submit])
      must be dominated by a [Wal.append] on all paths — computed with
      interprocedural "definitely journals" summaries, so journaling
      through a helper ([Service.journal]) counts.
    - {b R14} — resource release: a handle acquired by
      [Unix.openfile]/[open_in*]/[open_out*]/[Unix.socket]/[accept]/
      [Isolate.spawn] and bound locally must be released
      ([close*]/[Isolate.await]/[kill]/[poll]) or guarded by a
      [Fun.protect ~finally] that mentions it, on every syntactic
      path. A handle that escapes — returned, stored in a structure,
      aliased, or passed to a {e defined} function — is skipped (the
      quiet direction); exception paths are Fun.protect's job and are
      documented, not enforced.

    The [?in_scope]/[?sink_scope] hooks exist for the compiled-fixture
    tests, which live outside the default directory scopes.

    The exactness report ({!exactness_report}) is the committed
    [docs/EXACTNESS.md]: every core/linsep entry point labelled
    [exact] (no float reachability at all), [certified] (floats below,
    clean summary — the PR 6 numeric tier), or [TAINTED] with its
    witness. [Lint_driver]'s R11 drift check keeps the committed copy
    honest. *)

val r12_float_taint :
  ?sink_scope:(Typed_rules.source -> bool) ->
  Taint.t ->
  Callgraph.t ->
  Typed_rules.source list ->
  Lint_finding.t list

val r13_journal :
  ?in_scope:(Typed_rules.source -> bool) ->
  ?ack_funs:string list ->
  ?observable_fields:string list ->
  Taint.t ->
  Callgraph.t ->
  Typed_rules.source list ->
  Lint_finding.t list

val r14_release :
  ?in_scope:(Typed_rules.source -> bool) ->
  Taint.t ->
  Callgraph.t ->
  Typed_rules.source list ->
  Lint_finding.t list

val run :
  rules:Lint_finding.rule list ->
  Taint.t ->
  Callgraph.t ->
  Typed_rules.source list ->
  Lint_finding.t list
(** The enabled subset of R12-R14 with default scopes, unfiltered and
    unsorted — the driver merges these into the per-file stream before
    suppression/baseline application. *)

val exactness_report :
  Taint.t -> Callgraph.t -> Typed_rules.source list -> string
(** The byte-deterministic exactness-boundary report ([--taint-report],
    committed as [docs/EXACTNESS.md]). *)

(**/**)

val serialization_heads : string list
val acquire_heads : string list
val release_heads : string list
(** Sink/handle tables, exposed for tests. *)
