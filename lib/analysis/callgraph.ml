(* Whole-library call graph over Typedtree, for the typed lint rules.

   Version discipline (4.14..5.x, same as the Parsetree rules):
   traversal is delegated to [Tast_iterator.default_iterator]; the only
   constructors matched are ones whose shape is stable across the
   supported range ([Texp_ident], [Texp_let], [Texp_while],
   [Texp_for], [Tstr_value], [Tstr_module], [Tstr_recmodule]); binding
   names come from [pat_bound_idents] rather than from [Tpat_var]
   (whose arity changed in 5.x); [Path.t] is always matched with a
   wildcard fallback (5.x added [Pextra_ty]).

   The graph is a *mention* graph: node A has an edge to node B when
   A's body mentions B — applied, partially applied, or merely
   referenced. That over-approximates "calls" in the quiet direction
   (mentioning a ticking function counts as ticking through it, even
   if the mention never runs), which is the same over-approximation
   the Parsetree R1 made for its one-level closure; what the typed
   graph adds is *resolution*: a mention is credited to the definition
   the typechecker bound it to, across modules, shadowing and opens —
   never to whatever happens to share its name in the same file. *)

type node_kind =
  | Def  (** a [let]-bound value (any nesting depth) *)
  | Loop of string  (** a [while]/[for] body — ["while"] or ["for"] *)
  | External  (** mentioned but defined outside the loaded cmts *)

type node = {
  id : int;
  name : string;
      (** qualified display name: ["Cq_sep.decide"], nested
          ["Cq_sep.decide.go"], loops ["Cq_sep.decide:while@14"];
          externals keep their resolved path name, ["Budget.tick"] *)
  modname : string;  (** enclosing compilation unit; [""] for externals *)
  kind : node_kind;
  short : string;  (** unqualified binding name, for finding keys *)
  encl : string;
      (** nearest enclosing binding name, for loop keys ([while@encl]) *)
  line : int;
  col : int;
  is_rec : bool;  (** bound in a [let rec] group *)
  toplevel : bool;  (** bound at the structure top level of its module *)
}

type t = {
  g_nodes : node array;
  g_succs : int list array;  (* mention edges, deduplicated, sorted *)
  g_mentions : (int * string * int * int) list;
  g_by_global : (string, int) Hashtbl.t;
  g_by_local : (string, int) Hashtbl.t;  (* stamped ident keys → def node *)
  g_at : (string * int * int, int) Hashtbl.t;  (* (mod, line, col) → node *)
  g_scc_of : int array;
  g_scc_count : int;
  g_scc_cyclic : bool array;
}

(* --- path resolution keys -------------------------------------------- *)

let rec local_key (p : Path.t) =
  match p with
  | Path.Pident id -> Some (Ident.unique_name id)
  | Path.Pdot (p, s) -> begin
      match local_key p with Some k -> Some (k ^ "." ^ s) | None -> None
    end
  | _ -> None

(* The implicit [open Stdlib] makes the same function resolve as
   [Hashtbl.fold] or [Stdlib.Hashtbl.fold] depending on how it was
   written; normalize so sinks and targets match both spellings. *)
let strip_stdlib name =
  let prefix = "Stdlib." in
  let n = String.length prefix in
  if String.length name > n && String.sub name 0 n = prefix then
    String.sub name n (String.length name - n)
  else name

let global_name (p : Path.t) =
  let rec head = function
    | Path.Pident id -> Some id
    | Path.Pdot (p, _) -> head p
    | _ -> None
  in
  match head p with
  | Some id when Ident.global id -> Some (strip_stdlib (Path.name p))
  | _ -> None

(* --- construction ----------------------------------------------------- *)

type builder = {
  mutable b_nodes : node list;  (* reversed *)
  mutable b_count : int;
  b_edges : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable b_mentions : (int * string * int * int) list;
  b_global : (string, int) Hashtbl.t;
  b_local : (string, int) Hashtbl.t;  (* stamped ident keys → def node *)
  b_external : (string, int) Hashtbl.t;
}

let new_node b ~name ~modname ~kind ~short ~encl ~line ~col ~is_rec ~toplevel =
  let id = b.b_count in
  b.b_count <- id + 1;
  b.b_nodes <-
    { id; name; modname; kind; short; encl; line; col; is_rec; toplevel }
    :: b.b_nodes;
  id

let add_edge b src dst =
  if src >= 0 then begin
    let tbl =
      match Hashtbl.find_opt b.b_edges src with
      | Some t -> t
      | None ->
          let t = Hashtbl.create 8 in
          Hashtbl.add b.b_edges src t;
          t
    in
    Hashtbl.replace tbl dst ()
  end

let external_node b name =
  match Hashtbl.find_opt b.b_external name with
  | Some id -> id
  | None ->
      let id =
        new_node b ~name ~modname:"" ~kind:External ~short:name ~encl:""
          ~line:0 ~col:0 ~is_rec:false ~toplevel:false
      in
      Hashtbl.add b.b_external name id;
      id

type ctx = {
  c_mod : string;
  mutable c_stack : int list;  (* innermost node first; [] at toplevel *)
  mutable c_names : string list;  (* enclosing binding names *)
  mutable c_modpath : string list;  (* nested module display path *)
  mutable c_moduniq : string list;  (* stamped keys of nested modules *)
}

let current ctx = match ctx.c_stack with [] -> -1 | n :: _ -> n
let enclosing ctx = match ctx.c_names with [] -> "<toplevel>" | n :: _ -> n

let display_prefix ctx =
  String.concat "." (ctx.c_mod :: List.rev ctx.c_modpath)

let qualify ctx short =
  match ctx.c_names with
  | [] -> display_prefix ctx ^ "." ^ short
  | ns ->
      display_prefix ctx ^ "." ^ String.concat "." (List.rev ns) ^ "."
      ^ short

let walk_module b ctx (str : Typedtree.structure) =
  let record_mention path (loc : Location.t) =
    let src = current ctx in
    if src >= 0 then begin
      match local_key path with
      | Some k when Hashtbl.mem b.b_local k ->
          add_edge b src (Hashtbl.find b.b_local k)
      | _ -> begin
          match global_name path with
          | Some g when Hashtbl.mem b.b_global g ->
              add_edge b src (Hashtbl.find b.b_global g)
          | Some g ->
              b.b_mentions <-
                ( src, g, loc.loc_start.pos_lnum,
                  loc.loc_start.pos_cnum - loc.loc_start.pos_bol )
                :: b.b_mentions;
              add_edge b src (external_node b g)
          | None -> ()
        end
    end
  in
  let register_binding ~is_rec (vb : Typedtree.value_binding) =
    let idents = Typedtree.pat_bound_idents vb.vb_pat in
    let short = match idents with [] -> "_" | id :: _ -> Ident.name id in
    let toplevel = ctx.c_stack = [] in
    let loc = vb.Typedtree.vb_pat.Typedtree.pat_loc in
    let id =
      new_node b ~name:(qualify ctx short) ~modname:ctx.c_mod ~kind:Def
        ~short ~encl:(enclosing ctx) ~line:loc.loc_start.pos_lnum
        ~col:(loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
        ~is_rec ~toplevel
    in
    List.iter
      (fun ident ->
        Hashtbl.replace b.b_local (Ident.unique_name ident) id;
        if toplevel then begin
          Hashtbl.replace b.b_global
            (display_prefix ctx ^ "." ^ Ident.name ident)
            id;
          (* members of nested *local* modules are also reached through
             the stamped module ident: [M.f] → ["M/123.f"] *)
          match ctx.c_moduniq with
          | [] -> ()
          | _ ->
              Hashtbl.replace b.b_local
                (String.concat "."
                   (List.rev ctx.c_moduniq @ [ Ident.name ident ]))
                id
        end)
      idents;
    (* evaluating the enclosing body evaluates (or closes over) the
       binding: keep the parent connected so ticks inside `let _ = ...`
       bindings are not lost *)
    add_edge b (current ctx) id;
    id
  in
  let process_bindings self (rf : Asttypes.rec_flag) vbs =
    let is_rec = rf = Asttypes.Recursive in
    let ids = List.map (register_binding ~is_rec) vbs in
    List.iter2
      (fun (vb : Typedtree.value_binding) id ->
        ctx.c_stack <- id :: ctx.c_stack;
        ctx.c_names <-
          (match Typedtree.pat_bound_idents vb.vb_pat with
          | [] -> "_"
          | i :: _ -> Ident.name i)
          :: ctx.c_names;
        self.Tast_iterator.expr self vb.Typedtree.vb_expr;
        ctx.c_stack <- List.tl ctx.c_stack;
        ctx.c_names <- List.tl ctx.c_names)
      vbs ids
  in
  let enter_loop kind (loc : Location.t) =
    let line = loc.loc_start.pos_lnum in
    let name =
      Printf.sprintf "%s:%s@%d"
        (match ctx.c_names with
        | [] -> display_prefix ctx
        | ns -> display_prefix ctx ^ "." ^ String.concat "." (List.rev ns))
        kind line
    in
    let id =
      new_node b ~name ~modname:ctx.c_mod ~kind:(Loop kind) ~short:kind
        ~encl:(enclosing ctx) ~line
        ~col:(loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
        ~is_rec:false ~toplevel:false
    in
    add_edge b (current ctx) id;
    ctx.c_stack <- id :: ctx.c_stack
  in
  let exit_loop () = ctx.c_stack <- List.tl ctx.c_stack in
  let iter =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          match e.Typedtree.exp_desc with
          | Typedtree.Texp_ident (path, lid, _) ->
              record_mention path lid.Location.loc
          | Typedtree.Texp_let (rf, vbs, body) ->
              process_bindings self rf vbs;
              self.Tast_iterator.expr self body
          | Typedtree.Texp_while (cond, body) ->
              self.Tast_iterator.expr self cond;
              enter_loop "while" e.Typedtree.exp_loc;
              self.Tast_iterator.expr self body;
              exit_loop ()
          | Typedtree.Texp_for (_, _, lo, hi, _, body) ->
              self.Tast_iterator.expr self lo;
              self.Tast_iterator.expr self hi;
              enter_loop "for" e.Typedtree.exp_loc;
              self.Tast_iterator.expr self body;
              exit_loop ()
          | _ -> Tast_iterator.default_iterator.expr self e);
      structure_item =
        (fun self si ->
          match si.Typedtree.str_desc with
          | Typedtree.Tstr_value (rf, vbs) -> process_bindings self rf vbs
          | Typedtree.Tstr_module mb ->
              self.Tast_iterator.module_binding self mb
          | Typedtree.Tstr_recmodule mbs ->
              List.iter (self.Tast_iterator.module_binding self) mbs
          | _ -> Tast_iterator.default_iterator.structure_item self si);
      module_binding =
        (fun self mb ->
          let display =
            match mb.Typedtree.mb_name.Location.txt with
            | Some n -> n
            | None -> "_"
          in
          let uniq =
            match mb.Typedtree.mb_id with
            | Some id -> Ident.unique_name id
            | None -> "_"
          in
          ctx.c_modpath <- display :: ctx.c_modpath;
          ctx.c_moduniq <- uniq :: ctx.c_moduniq;
          self.Tast_iterator.module_expr self mb.Typedtree.mb_expr;
          ctx.c_modpath <- List.tl ctx.c_modpath;
          ctx.c_moduniq <- List.tl ctx.c_moduniq);
    }
  in
  iter.Tast_iterator.structure iter str

(* --- Tarjan SCC (iterative: explicit frames, no native stack) --------- *)

let sccs ~n ~succs =
  let index = Array.make (max n 1) (-1) in
  let low = Array.make (max n 1) 0 in
  let on_stack = Array.make (max n 1) false in
  let stack = ref [] in
  let next = ref 0 in
  let scc_of = Array.make (max n 1) (-1) in
  let cyclic_sccs = ref [] in
  let nscc = ref 0 in
  let push v frames =
    index.(v) <- !next;
    low.(v) <- !next;
    incr next;
    stack := v :: !stack;
    on_stack.(v) <- true;
    (v, ref (succs v)) :: frames
  in
  let visit v0 =
    let frames = ref (push v0 []) in
    while !frames <> [] do
      match !frames with
      | [] -> ()
      | (v, rest) :: tl -> begin
          match !rest with
          | w :: ws ->
              rest := ws;
              if index.(w) = -1 then frames := push w !frames
              else if on_stack.(w) then low.(v) <- min low.(v) index.(w)
          | [] ->
              frames := tl;
              (match tl with
              | (p, _) :: _ -> low.(p) <- min low.(p) low.(v)
              | [] -> ());
              if low.(v) = index.(v) then begin
                let id = !nscc in
                incr nscc;
                let size = ref 0 in
                let stop = ref false in
                while not !stop do
                  match !stack with
                  | [] -> stop := true
                  | w :: rest ->
                      stack := rest;
                      on_stack.(w) <- false;
                      scc_of.(w) <- id;
                      incr size;
                      if w = v then stop := true
                done;
                if !size > 1 then cyclic_sccs := id :: !cyclic_sccs
              end
        end
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  (scc_of, !nscc, !cyclic_sccs)

let build impls =
  let b =
    {
      b_nodes = [];
      b_count = 0;
      b_edges = Hashtbl.create 512;
      b_mentions = [];
      b_global = Hashtbl.create 512;
      b_local = Hashtbl.create 1024;
      b_external = Hashtbl.create 128;
    }
  in
  List.iter
    (fun (modname, str) ->
      walk_module b
        { c_mod = modname; c_stack = []; c_names = []; c_modpath = [];
          c_moduniq = [] }
        str)
    impls;
  let n = b.b_count in
  let dummy =
    { id = -1; name = ""; modname = ""; kind = External; short = "";
      encl = ""; line = 0; col = 0; is_rec = false; toplevel = false }
  in
  let g_nodes = Array.make n dummy in
  List.iter (fun node -> g_nodes.(node.id) <- node) b.b_nodes;
  let g_succs = Array.make n [] in
  Hashtbl.iter
    (fun src tbl ->
      g_succs.(src) <-
        List.sort Int.compare
          (Hashtbl.fold (fun d () acc -> d :: acc) tbl []))
    b.b_edges;
  let scc_of, nscc, cyclic_ids = sccs ~n ~succs:(fun v -> g_succs.(v)) in
  let g_scc_cyclic = Array.make (max nscc 1) false in
  List.iter (fun id -> g_scc_cyclic.(id) <- true) cyclic_ids;
  Array.iteri
    (fun v ws -> if List.mem v ws then g_scc_cyclic.(scc_of.(v)) <- true)
    g_succs;
  let g_at = Hashtbl.create (max n 16) in
  Array.iter
    (fun node ->
      if node.kind <> External then
        Hashtbl.replace g_at (node.modname, node.line, node.col) node.id)
    g_nodes;
  {
    g_nodes;
    g_succs;
    g_mentions = b.b_mentions;
    g_by_global = b.b_global;
    g_by_local = b.b_local;
    g_at;
    g_scc_of = scc_of;
    g_scc_count = nscc;
    g_scc_cyclic;
  }

(* --- queries ---------------------------------------------------------- *)

let size g = Array.length g.g_nodes
let nodes g = Array.to_list g.g_nodes
let node g id = g.g_nodes.(id)
let succs g id = g.g_succs.(id)
let mentions g = g.g_mentions
let find_global g name = Hashtbl.find_opt g.g_by_global name
let cyclic g id = size g > 0 && g.g_scc_cyclic.(g.g_scc_of.(id))
let scc_of g id = g.g_scc_of.(id)
let scc_count g = g.g_scc_count

(* The same two-step resolution [record_mention] uses during
   construction: stamped local idents first (shadowing-correct), then
   dotted globals. Externals resolve to [None] — callers classify them
   by name instead. *)
let resolve g (p : Path.t) =
  match local_key p with
  | Some k when Hashtbl.mem g.g_by_local k -> Hashtbl.find_opt g.g_by_local k
  | _ -> begin
      match global_name p with
      | Some n -> Hashtbl.find_opt g.g_by_global n
      | None -> None
    end

let node_at g ~modname ~line ~col = Hashtbl.find_opt g.g_at (modname, line, col)

(* Bounded-depth BFS closure over an adjacency function. The cap
   bounds analysis work on adversarial graphs; at the default cap (64)
   a missed path needs a call chain deeper than any in this library. *)
let closure ~n ~adj ~depth roots =
  let seen = Array.make (max n 1) false in
  let frontier = ref (List.filter (fun v -> v >= 0 && v < n) roots) in
  List.iter (fun v -> seen.(v) <- true) !frontier;
  let d = ref 0 in
  while !frontier <> [] && !d < depth do
    incr d;
    frontier :=
      List.concat_map
        (fun v ->
          List.filter
            (fun w ->
              if seen.(w) then false
              else begin
                seen.(w) <- true;
                true
              end)
            (adj v))
        !frontier
  done;
  fun v -> v >= 0 && v < max n 1 && seen.(v)

let reachable_from ?(depth = 64) g roots =
  closure ~n:(size g) ~adj:(fun v -> g.g_succs.(v)) ~depth roots

let reachers ?(depth = 64) g ~target =
  let n = size g in
  let preds = Array.make (max n 1) [] in
  Array.iteri
    (fun v ws -> List.iter (fun w -> preds.(w) <- v :: preds.(w)) ws)
    g.g_succs;
  let roots = ref [] in
  Array.iter
    (fun node -> if node.name = target then roots := node.id :: !roots)
    g.g_nodes;
  closure ~n ~adj:(fun v -> preds.(v)) ~depth !roots

let reaches ?depth g ~target src = (reachers ?depth g ~target) src

(* Graphviz rendering of the SCC condensation: one box per SCC
   (labelled with up to three member names), one edge per inter-SCC
   mention. Externals are elided — they are leaves by construction and
   double the node count. Everything is sorted, so the output is
   byte-deterministic. *)
let dump_dot g buf =
  let members = Array.make g.g_scc_count [] in
  Array.iter
    (fun node ->
      if node.kind <> External then
        let s = g.g_scc_of.(node.id) in
        members.(s) <- node.name :: members.(s))
    g.g_nodes;
  Buffer.add_string buf "digraph cqlint {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  Array.iteri
    (fun s names ->
      match List.sort String.compare names with
      | [] -> ()
      | sorted ->
          let shown = List.filteri (fun i _ -> i < 3) sorted in
          let extra = List.length sorted - List.length shown in
          let label =
            String.concat "\\n" shown
            ^ (if extra > 0 then Printf.sprintf "\\n(+%d more)" extra else "")
          in
          let attrs =
            if g.g_scc_cyclic.(s) then ", style=bold, color=firebrick"
            else ""
          in
          Buffer.add_string buf
            (Printf.sprintf "  s%d [label=\"%s\"%s];\n" s label attrs))
    members;
  let edges = Hashtbl.create 256 in
  Array.iteri
    (fun v ws ->
      if g.g_nodes.(v).kind <> External then
        List.iter
          (fun w ->
            if g.g_nodes.(w).kind <> External then begin
              let sv = g.g_scc_of.(v) and sw = g.g_scc_of.(w) in
              if sv <> sw then Hashtbl.replace edges (sv, sw) ()
            end)
          ws)
    g.g_succs;
  let sorted_edges =
    List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) edges [])
  in
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf (Printf.sprintf "  s%d -> s%d;\n" a b))
    sorted_edges;
  Buffer.add_string buf "}\n"

let dump g buf =
  let ns = Array.copy g.g_nodes in
  Array.sort (fun a b -> String.compare a.name b.name) ns;
  Array.iter
    (fun node ->
      if node.kind <> External then begin
        let kind =
          match node.kind with
          | Def -> if node.is_rec then "rec" else "def"
          | Loop k -> k
          | External -> "ext"
        in
        Buffer.add_string buf
          (Printf.sprintf "%s [%s%s]\n" node.name kind
             (if cyclic g node.id then " cyclic" else ""));
        List.iter
          (fun s ->
            Buffer.add_string buf
              (Printf.sprintf "  -> %s%s\n" g.g_nodes.(s).name
                 (match g.g_nodes.(s).kind with
                 | External -> " (external)"
                 | _ -> "")))
          (List.sort
             (fun a b ->
               String.compare g.g_nodes.(a).name g.g_nodes.(b).name)
             g.g_succs.(node.id))
      end)
    ns
