(** Interprocedural effect inference: every {!Callgraph} node gets a
    lattice-valued effect signature

    {v Pure ⊑ ReadsCache(sites) ⊑ WritesGlobal(sites) ⊑ Io ⊑ Forks v}

    computed by a single bottom-up pass over the Tarjan SCC
    condensation (ascending SCC id = callees first, see
    {!Callgraph.scc_of}). Sites are top-level mutable bindings — the
    same program-lifetime state R5 polices — annotated with their
    [Runtime_state] registration status, which is what turns a raw
    signature into a shard-safety verdict: an entry point is
    {e shard-safe} when it is pure or touches only registered caches
    (reset/validated per worker by the sharding layer's contract).

    [Budget], [Guard] and [Runtime_state] are exempt by contract:
    their nodes are Pure and effect-opaque (budget bookkeeping is
    per-shard state). Thunks passed through them still contribute —
    the caller mentions the thunk body directly. *)

type site = {
  site_node : int;  (** Callgraph node id of the top-level binding *)
  site_name : string;  (** qualified display name, e.g. ["Nsep.tier"] *)
  site_what : string;  (** allocation head: ["ref"], ["Hashtbl"], ... *)
  site_registered : string option;
      (** [Runtime_state.register ~name] it appears in, if any *)
}

type esig = {
  e_reads : int list;  (** accessed site indexes, sorted, deduplicated *)
  e_writes : int list;  (** mutated site indexes (also listed in reads) *)
  e_io : bool;
  e_forks : bool;
}

type level = Pure | Reads_cache | Writes_global | Io | Forks

type t

val analyze : Callgraph.t -> (string * Typedtree.structure) list -> t
(** [analyze g impls] — [impls] must be the same [(modname,
    structure)] list [g] was built from, so source anchors round-trip
    through {!Callgraph.node_at}. *)

val signature : t -> int -> esig
(** Final (post-fixpoint) signature of a Callgraph node. *)

val sites : t -> site array
val site : t -> int -> site

val accesses : t -> esig -> (site * bool) list
(** Touched sites in index order, [true] = written. *)

val unregistered_writes : t -> esig -> site list
(** The sites that make a signature [Writes_global] — written and not
    [Runtime_state]-registered. Empty iff writes are all registered. *)

val level : t -> esig -> level
(** Collapse a signature to its lattice level. Writes to {e registered}
    sites stay at [Reads_cache] — registration is the discipline that
    makes the mutation shard-local by contract. *)

val shard_safe : t -> esig -> bool
(** [Pure], or [Reads_cache] with every touched site registered. *)

val level_name : level -> string

val describe : t -> esig -> string
(** One-line rendering, e.g. ["reads-cache(nsep.tier, nsep.stats!)"] —
    ["!"] marks written sites; registered sites print their registry
    name, unregistered ones their qualified binding name. *)

(**/**)

val io_external : string -> bool
val fork_external : string -> bool
(** Name classifiers for external nodes, exposed for tests. *)

val alloc_head : Typedtree.expression -> string option
val writer_head : string -> bool
(** Mutable-allocation and mutating-application tables, shared with
    {!Escape}. *)
