(* R12/R13/R14 and the exactness-boundary report. See
   protocol_rules.mli for the contracts; Taint supplies the summaries
   and the anchored bodies, this module supplies the sink scopes, the
   must-journal dominance walk and the must-release walk. *)

let starts_with ~prefix s =
  let n = String.length prefix in
  String.length s >= n && String.sub s 0 n = prefix

let is_arrow ty =
  let rec go ty =
    match Types.get_desc ty with
    | Types.Tarrow _ -> true
    | Types.Tpoly (t, _) -> go t
    | _ -> false
  in
  go ty

let head_name (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Callgraph.global_name p
  | _ -> None

let head_node g (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
      match Callgraph.resolve g p with
      | Some id when (Callgraph.node g id).Callgraph.kind = Callgraph.Def ->
          Some id
      | _ -> None)
  | _ -> None

(* Immediate sub-expressions, one level deep — the version-stable way
   through constructors (functions, records, letops) whose shape moved
   across the 4.14-5.2 matrix. *)
let child_exprs (e : Typedtree.expression) =
  let acc = ref [] in
  let iter =
    {
      Tast_iterator.default_iterator with
      expr = (fun _ ce -> acc := ce :: !acc);
    }
  in
  Tast_iterator.default_iterator.expr iter e;
  List.rev !acc

let loc_line (loc : Location.t) = loc.loc_start.pos_lnum
let loc_col (loc : Location.t) = loc.loc_start.pos_cnum - loc.loc_start.pos_bol

let by_module sources =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (s : Typed_rules.source) -> Hashtbl.replace tbl s.s_mod s)
    sources;
  tbl

(* --- R12: float taint -------------------------------------------------- *)

let serialization_heads = [ "Model_io.save"; "Model_io.to_string"; "Wal.append" ]

let default_sink_scope (s : Typed_rules.source) =
  starts_with ~prefix:"lib/core/" s.s_file
  || starts_with ~prefix:"lib/linsep/" s.s_file

let r12_float_taint ?(sink_scope = default_sink_scope) tnt g sources =
  let entry_findings =
    List.filter_map
      (fun ((s : Typed_rules.source), name, node) ->
        if not (sink_scope s) then None
        else
          match Taint.return_taint tnt node with
          | None -> None
          | Some why ->
              let n = Callgraph.node g node in
              Some
                (Lint_finding.v ~rule:Lint_finding.R12 ~file:s.s_file
                   ~line:n.Callgraph.line ~col:n.Callgraph.col
                   ~key:("taint:" ^ name)
                   (Printf.sprintf
                      "uncertified float reaches the return value of %s \
                       [%s]; re-derive the verdict with \
                       Certify.hyperplane/farkas or convert exactly with \
                       Rat.of_float"
                      name why)))
      (Typed_rules.entry_points g sources)
  in
  let mods = by_module sources in
  let sink_findings = ref [] in
  Taint.scan_calls tnt
    ~heads:(fun n -> List.mem n serialization_heads)
    (fun ~node ~head ~loc ~args ->
      match List.find_map (fun w -> w) args with
      | None -> ()
      | Some why -> (
          let n = Callgraph.node g node in
          match Hashtbl.find_opt mods n.Callgraph.modname with
          | None -> ()
          | Some (s : Typed_rules.source) ->
              sink_findings :=
                Lint_finding.v ~rule:Lint_finding.R12 ~file:s.s_file
                  ~line:(loc_line loc) ~col:(loc_col loc)
                  ~key:
                    (Printf.sprintf "taint-sink:%s@%s" head n.Callgraph.short)
                  (Printf.sprintf
                     "float-tainted value flows into %s [%s]; serialized \
                      payloads must be exact"
                     head why)
                :: !sink_findings));
  entry_findings @ List.rev !sink_findings

(* --- R13: journal-before-ack ------------------------------------------- *)

let default_service_scope (s : Typed_rules.source) =
  starts_with ~prefix:"lib/service/" s.s_file

type jctx = {
  jc_g : Callgraph.t;
  jc_djs : bool array;  (* "calling this node definitely journals" *)
  jc_heads : string -> bool;
}

(* Does evaluating [e] unconditionally append to the WAL? A must-
   analysis: the fallback for unhandled shapes is [false], function
   values defer their bodies, and branches conjoin. *)
let rec dj ctx (e : Typedtree.expression) =
  if is_arrow e.exp_type then false
  else
    match e.exp_desc with
    | Texp_apply (hd, args) -> (
        let arg_dj =
          List.exists
            (fun (_, a) -> match a with Some a -> dj ctx a | None -> false)
            args
        in
        match head_name hd with
        | Some n when ctx.jc_heads n -> true
        | _ -> (
            match head_node ctx.jc_g hd with
            | Some id -> ctx.jc_djs.(id) || arg_dj
            | None -> arg_dj))
    | Texp_let (_, vbs, b) ->
        List.exists (fun (vb : Typedtree.value_binding) -> dj ctx vb.vb_expr) vbs
        || dj ctx b
    | Texp_sequence (a, b) -> dj ctx a || dj ctx b
    | Texp_ifthenelse (c, a, b) -> (
        dj ctx c
        || match b with Some b -> dj ctx a && dj ctx b | None -> false)
    | Texp_match (scr, cases, _) ->
        dj ctx scr
        || cases <> []
           && List.for_all
                (fun (c : Typedtree.computation Typedtree.case) ->
                  c.c_guard = None && dj ctx c.c_rhs)
                cases
    | Texp_try (b, cases) ->
        dj ctx b
        && List.for_all
             (fun (c : Typedtree.value Typedtree.case) -> dj ctx c.c_rhs)
             cases
    | Texp_construct (_, _, es) | Texp_tuple es -> List.exists (dj ctx) es
    | Texp_variant (_, Some e) | Texp_field (e, _, _) -> dj ctx e
    | Texp_setfield (r, _, _, v) -> dj ctx r || dj ctx v
    | _ -> false

(* Calling a function definitely journals when every body under its
   parameter spine does. *)
let rec dj_def ctx (e : Typedtree.expression) =
  if is_arrow e.exp_type then
    match child_exprs e with
    | [] -> false
    | cs -> List.for_all (dj_def ctx) cs
  else dj ctx e

(* The dominance walk: thread "a Wal.append has definitely happened"
   through evaluation order, emit a finding at every observable site
   reached with the flag down. Returns the post-state. *)
let rec jwalk ctx ~emit ~ack s (e : Typedtree.expression) =
  if is_arrow e.exp_type then begin
    (* A function value: its body runs later, under an unknown journal
       state — walk it pessimistically. *)
    List.iter
      (fun c -> ignore (jwalk ctx ~emit ~ack false c))
      (child_exprs e);
    s
  end
  else
    match e.exp_desc with
    | Texp_sequence (a, b) -> jwalk ctx ~emit ~ack (jwalk ctx ~emit ~ack s a) b
    | Texp_let (_, vbs, b) ->
        let s' =
          List.fold_left
            (fun s (vb : Typedtree.value_binding) ->
              jwalk ctx ~emit ~ack s vb.vb_expr)
            s vbs
        in
        jwalk ctx ~emit ~ack s' b
    | Texp_ifthenelse (c, a, bo) -> (
        let sc = jwalk ctx ~emit ~ack s c in
        let pa = jwalk ctx ~emit ~ack sc a in
        match bo with
        | Some b -> pa && jwalk ctx ~emit ~ack sc b
        | None -> sc)
    | Texp_match (scr, cases, _) -> (
        let ss = jwalk ctx ~emit ~ack s scr in
        let posts =
          List.map
            (fun (c : Typedtree.computation Typedtree.case) ->
              (match c.c_guard with
              | Some gd -> ignore (jwalk ctx ~emit ~ack ss gd)
              | None -> ());
              jwalk ctx ~emit ~ack ss c.c_rhs)
            cases
        in
        match posts with [] -> ss | l -> List.fold_left ( && ) true l)
    | Texp_try (b, cases) ->
        let pb = jwalk ctx ~emit ~ack s b in
        List.fold_left
          (fun acc (c : Typedtree.value Typedtree.case) ->
            (* the body may have raised before journaling *)
            acc && jwalk ctx ~emit ~ack s c.c_rhs)
          pb cases
    | Texp_while (c, b) ->
        let sc = jwalk ctx ~emit ~ack s c in
        ignore (jwalk ctx ~emit ~ack sc b);
        sc
    | Texp_for (_, _, lo, hi, _, b) ->
        let s' = jwalk ctx ~emit ~ack (jwalk ctx ~emit ~ack s lo) hi in
        ignore (jwalk ctx ~emit ~ack s' b);
        s'
    | Texp_setfield (r, _, lbl, v) ->
        ignore (jwalk ctx ~emit ~ack s r);
        ignore (jwalk ctx ~emit ~ack s v);
        if not s then emit (`Setfield lbl.Types.lbl_name) e.exp_loc;
        s
    | Texp_construct (_, cd, es) ->
        List.iter (fun e -> ignore (jwalk ctx ~emit ~ack s e)) es;
        if ack && cd.Types.cstr_name = "Ok" && not s then
          emit `Ack e.exp_loc;
        s || List.exists (dj ctx) es
    | _ ->
        List.iter
          (fun c ->
            let s0 = if is_arrow c.Typedtree.exp_type then false else s in
            ignore (jwalk ctx ~emit ~ack s0 c))
          (child_exprs e);
        s || dj ctx e

let r13_journal ?(in_scope = default_service_scope)
    ?(ack_funs = [ "Service.submit" ]) ?(observable_fields = [ "ji_state" ])
    tnt g sources =
  let bodies = Taint.bodies tnt in
  let djs = Array.make (Callgraph.size g) false in
  let ctx = { jc_g = g; jc_djs = djs; jc_heads = (fun n -> n = "Wal.append") } in
  (* Bottom-up summaries; bodies come in ascending SCC order, so one
     extra sweep settles within-SCC recursion. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (id, body) ->
        if (not djs.(id)) && dj_def ctx body then begin
          djs.(id) <- true;
          changed := true
        end)
      bodies
  done;
  let mods = by_module sources in
  let findings = ref [] in
  List.iter
    (fun (id, body) ->
      let n = Callgraph.node g id in
      match Hashtbl.find_opt mods n.Callgraph.modname with
      | Some (s : Typed_rules.source)
        when in_scope s && n.Callgraph.toplevel ->
          let ack = List.mem n.Callgraph.name ack_funs in
          let emit what (loc : Location.t) =
            let key, msg =
              match what with
              | `Setfield lbl ->
                  if not (List.mem lbl observable_fields) then ("", "")
                  else
                    ( Printf.sprintf "journal:%s@%s" lbl n.Callgraph.short,
                      Printf.sprintf
                        "client-observable field %s is mutated before any \
                         Wal.append on this path; journal the event first \
                         so recovery replays it"
                        lbl )
              | `Ack ->
                  ( Printf.sprintf "journal:ok@%s" n.Callgraph.short,
                    "Ok ack constructed before any Wal.append on this \
                     path; acknowledged jobs must survive a crash" )
            in
            if key <> "" then
              findings :=
                Lint_finding.v ~rule:Lint_finding.R13 ~file:s.s_file
                  ~line:(loc_line loc) ~col:(loc_col loc) ~key msg
                :: !findings
          in
          ignore (jwalk ctx ~emit ~ack false body)
      | _ -> ())
    bodies;
  List.rev !findings

(* --- R14: resource release --------------------------------------------- *)

let acquire_heads =
  [
    "Unix.openfile"; "Unix.socket"; "Unix.accept"; "open_in"; "open_in_bin";
    "open_in_gen"; "open_out"; "open_out_bin"; "open_out_gen";
    "Isolate.spawn";
  ]

let release_heads =
  [
    "Unix.close"; "close_in"; "close_in_noerr"; "close_out";
    "close_out_noerr"; "Isolate.await"; "Isolate.kill"; "Isolate.poll";
  ]

let mentions stamps (e : Typedtree.expression) =
  let found = ref false in
  let iter =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self ce ->
          (match ce.Typedtree.exp_desc with
          | Texp_ident (p, _, _) -> (
              match Callgraph.local_key p with
              | Some k when List.mem k stamps -> found := true
              | _ -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr self ce);
    }
  in
  iter.Tast_iterator.expr iter e;
  !found

(* Does the handle escape the analyzed scope — returned, aliased,
   stored, or passed to a defined function? Escaped handles are
   someone else's to close (the quiet direction). Mentions in argument
   position of an unknown external (Unix.read, comparisons, the
   Fun.protect closures) are uses, not escapes. *)
let escapes g stamps (body : Typedtree.expression) =
  let esc = ref false in
  let is_stamp p =
    match Callgraph.local_key p with
    | Some k -> List.mem k stamps
    | None -> false
  in
  let rec go escaping (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> if escaping && is_stamp p then esc := true
    | Texp_apply (hd, args) ->
        go true hd;
        let escaping_args =
          match head_name hd with
          | Some _ -> head_node g hd <> None  (* defined: escape; external: use *)
          | None -> true  (* computed head: conservative *)
        in
        List.iter
          (fun (_, a) -> match a with Some a -> go escaping_args a | None -> ())
          args
    | Texp_tuple es | Texp_construct (_, _, es) -> List.iter (go true) es
    | Texp_setfield (r, _, _, v) ->
        go true r;
        go true v
    | Texp_let (_, vbs, b) ->
        List.iter
          (fun (vb : Typedtree.value_binding) -> go true vb.vb_expr)
          vbs;
        go escaping b
    | Texp_sequence (a, b) ->
        go escaping a;
        go escaping b
    | Texp_ifthenelse (c, a, b) ->
        go escaping c;
        go escaping a;
        (match b with Some b -> go escaping b | None -> ())
    | Texp_match (scr, cases, _) ->
        go escaping scr;
        List.iter
          (fun (c : Typedtree.computation Typedtree.case) ->
            go escaping c.c_rhs)
          cases
    | Texp_try (b, cases) ->
        go escaping b;
        List.iter
          (fun (c : Typedtree.value Typedtree.case) -> go escaping c.c_rhs)
          cases
    | Texp_while (c, b) ->
        go escaping c;
        go escaping b
    | Texp_for (_, _, lo, hi, _, b) ->
        go escaping lo;
        go escaping hi;
        go escaping b
    | Texp_field (r, _, _) -> go escaping r
    | _ ->
        if is_arrow e.exp_type then
          (* closure: capture keeps the current context — a lambda
             handed to an external (List.iter, Fun.protect) is a use *)
          List.iter (go escaping) (child_exprs e)
        else List.iter (go true) (child_exprs e)
  in
  go true body;
  !esc

(* Must-release: on every syntactic path through [e], some release
   head (or a Fun.protect ~finally) is applied to the handle.
   Exception paths are Fun.protect's job (documented, not enforced). *)
let rec released g stamps (e : Typedtree.expression) =
  if is_arrow e.exp_type then false
  else
    match e.exp_desc with
    | Texp_apply (hd, args) -> (
        let some_arg f =
          List.exists
            (fun (_, a) -> match a with Some a -> f a | None -> false)
            args
        in
        match head_name hd with
        | Some n when List.mem n release_heads ->
            some_arg (mentions stamps) || some_arg (released g stamps)
        | Some "Fun.protect" ->
            List.exists
              (fun ((l, a) : Asttypes.arg_label * _) ->
                match (l, a) with
                | Asttypes.Labelled "finally", Some fin ->
                    mentions stamps fin
                | _ -> false)
              args
            || some_arg (released g stamps)
        | _ -> some_arg (released g stamps))
    | Texp_let (_, vbs, b) ->
        List.exists
          (fun (vb : Typedtree.value_binding) -> released g stamps vb.vb_expr)
          vbs
        || released g stamps b
    | Texp_sequence (a, b) -> released g stamps a || released g stamps b
    | Texp_ifthenelse (c, a, b) -> (
        released g stamps c
        ||
        match b with
        | Some b -> released g stamps a && released g stamps b
        | None -> false)
    | Texp_match (scr, cases, _) ->
        released g stamps scr
        || cases <> []
           && List.for_all
                (fun (c : Typedtree.computation Typedtree.case) ->
                  c.c_guard = None && released g stamps c.c_rhs)
                cases
    | Texp_try (b, cases) ->
        released g stamps b
        && List.for_all
             (fun (c : Typedtree.value Typedtree.case) ->
               released g stamps c.c_rhs)
             cases
    | Texp_construct (_, _, es) | Texp_tuple es ->
        List.exists (released g stamps) es
    | Texp_variant (_, Some e) | Texp_field (e, _, _) -> released g stamps e
    | Texp_setfield (r, _, _, v) ->
        released g stamps r || released g stamps v
    | _ -> false

let r14_release ?(in_scope = fun _ -> true) tnt g sources =
  let mods = by_module sources in
  let findings = ref [] in
  List.iter
    (fun (id, body) ->
      let n = Callgraph.node g id in
      match Hashtbl.find_opt mods n.Callgraph.modname with
      | Some (s : Typed_rules.source) when in_scope s ->
          let rec scan (e : Typedtree.expression) =
            (match e.exp_desc with
            | Texp_let (Asttypes.Nonrecursive, vbs, letbody) ->
                List.iter
                  (fun (vb : Typedtree.value_binding) ->
                    match vb.vb_expr.exp_desc with
                    | Texp_apply (hd, _) -> (
                        match head_name hd with
                        | Some hn when List.mem hn acquire_heads ->
                            let stamps =
                              List.map Ident.unique_name
                                (Typedtree.pat_bound_idents vb.vb_pat)
                            in
                            if
                              stamps <> []
                              && (not (escapes g stamps letbody))
                              && not (released g stamps letbody)
                            then
                              let short =
                                match String.rindex_opt hn '.' with
                                | Some i ->
                                    String.sub hn (i + 1)
                                      (String.length hn - i - 1)
                                | None -> hn
                              in
                              findings :=
                                Lint_finding.v ~rule:Lint_finding.R14
                                  ~file:s.s_file
                                  ~line:(loc_line vb.vb_pat.pat_loc)
                                  ~col:(loc_col vb.vb_pat.pat_loc)
                                  ~key:
                                    (Printf.sprintf "leak:%s@%s" short
                                       n.Callgraph.short)
                                  (Printf.sprintf
                                     "handle from %s is not released on \
                                      every path; close it in a Fun.protect \
                                      ~finally (or reap the Isolate child)"
                                     hn)
                                :: !findings
                        | _ -> ())
                    | _ -> ())
                  vbs
            | _ -> ());
            let iter =
              {
                Tast_iterator.default_iterator with
                expr = (fun _ ce -> scan ce);
              }
            in
            Tast_iterator.default_iterator.expr iter e
          in
          scan body
      | _ -> ())
    (Taint.bodies tnt);
  List.rev !findings

(* --- the exactness report ---------------------------------------------- *)

let report_header =
  "# Exactness-boundary report\n\n\
   Generated by cqlint's float-taint inference (R12) — do not edit by\n\
   hand. Regenerate with:\n\n\
   ```\n\
   dune exec bin/lint.exe -- --root . --taint-report > docs/EXACTNESS.md\n\
   ```\n\n\
   Every exported `lib/core`/`lib/linsep` entry point is classified\n\
   against the paper's exactness guarantee:\n\n\
   - **exact** — no float reachability at all: the answer is computed\n\
     in `Rat` end to end;\n\
   - **certified** — the float-first tier (PR 6) runs below it, but\n\
     every verdict is re-derived exactly (`Certify.hyperplane`/`farkas`\n\
     or exact `Rat.of_float`) before it can reach the caller: the\n\
     taint summary is clean;\n\
   - **TAINTED** — an unsanitized float source reaches the return\n\
     value; the witness names the source. This is an R12 finding and\n\
     fails CI.\n"

let exactness_report tnt g sources =
  let eps =
    List.filter
      (fun ((s : Typed_rules.source), _, _) -> default_sink_scope s)
      (Typed_rules.entry_points g sources)
  in
  let by_mod = Hashtbl.create 16 in
  List.iter
    (fun ((s : Typed_rules.source), name, node) ->
      let prev =
        match Hashtbl.find_opt by_mod s.s_mod with Some l -> l | None -> []
      in
      Hashtbl.replace by_mod s.s_mod ((s, name, node) :: prev))
    eps;
  let mods =
    List.sort_uniq compare
      (List.map (fun ((s : Typed_rules.source), _, _) -> s.s_mod) eps)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf report_header;
  List.iter
    (fun m ->
      let entries =
        List.sort
          (fun (_, a, _) (_, b, _) -> compare a b)
          (Hashtbl.find by_mod m)
      in
      let file =
        match entries with
        | ((s : Typed_rules.source), _, _) :: _ -> s.s_file
        | [] -> ""
      in
      Buffer.add_string buf (Printf.sprintf "\n## %s — `%s`\n\n" m file);
      Buffer.add_string buf "| entry point | verdict |\n|---|---|\n";
      List.iter
        (fun (_, name, node) ->
          let verdict =
            match Taint.return_taint tnt node with
            | Some why -> Printf.sprintf "**TAINTED** — %s" why
            | None ->
                if Taint.touches_float tnt node then "certified" else "exact"
          in
          Buffer.add_string buf (Printf.sprintf "| `%s` | %s |\n" name verdict))
        entries)
    mods;
  let total = List.length eps in
  let tainted =
    List.length
      (List.filter (fun (_, _, n) -> Taint.return_taint tnt n <> None) eps)
  in
  let certified =
    List.length
      (List.filter
         (fun (_, _, n) ->
           Taint.return_taint tnt n = None && Taint.touches_float tnt n)
         eps)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "\n---\n\n%d entry points: %d exact, %d certified, %d tainted.\n"
       total
       (total - tainted - certified)
       certified tainted);
  Buffer.contents buf

(* --- driver entry ------------------------------------------------------ *)

let run ~rules tnt g sources =
  let on r = List.mem r rules in
  (if on Lint_finding.R12 then r12_float_taint tnt g sources else [])
  @ (if on Lint_finding.R13 then r13_journal tnt g sources else [])
  @ if on Lint_finding.R14 then r14_release tnt g sources else []
