type rule =
  | R0
  | R1
  | R2
  | R3
  | R4
  | R5
  | R6
  | R7
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14

let all_rules =
  [ R1; R2; R3; R4; R5; R6; R7; R8; R9; R10; R11; R12; R13; R14 ]

let rule_to_string = function
  | R0 -> "R0"
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"
  | R8 -> "R8"
  | R9 -> "R9"
  | R10 -> "R10"
  | R11 -> "R11"
  | R12 -> "R12"
  | R13 -> "R13"
  | R14 -> "R14"

let rule_of_string = function
  | "R0" | "r0" -> Some R0
  | "R1" | "r1" -> Some R1
  | "R2" | "r2" -> Some R2
  | "R3" | "r3" -> Some R3
  | "R4" | "r4" -> Some R4
  | "R5" | "r5" -> Some R5
  | "R6" | "r6" -> Some R6
  | "R7" | "r7" -> Some R7
  | "R8" | "r8" -> Some R8
  | "R9" | "r9" -> Some R9
  | "R10" | "r10" -> Some R10
  | "R11" | "r11" -> Some R11
  | "R12" | "r12" -> Some R12
  | "R13" | "r13" -> Some R13
  | "R14" | "r14" -> Some R14
  | _ -> None

let rule_doc = function
  | R0 -> "well-formed cqlint directives (malformed/unreasoned suppressions)"
  | R1 ->
      "budget discipline: while/for loops and self-recursive functions in \
       solver libraries must Budget.tick"
  | R2 ->
      "exception hygiene: only Guard-convertible or local raises; _b entry \
       points must wrap their body in Guard.run"
  | R3 ->
      "comparison safety: no polymorphic =/compare/Hashtbl.hash on domain \
       values (Rat.t, Bigint.t, structural keys)"
  | R4 ->
      "interface hygiene: every module has an .mli; solver entry points have \
       budgeted _b counterparts"
  | R5 ->
      "state registration: top-level mutable state in solver libraries must \
       register with Runtime_state for abort-safety reset/validate"
  | R6 ->
      "determinism (typed): no PRNG, wall-clock, or order-dependent Hashtbl \
       iteration reachable from a solver's exported surface"
  | R7 ->
      "marshal safety (typed): types crossing Isolate's fork result channel \
       must be transitively closure- and custom-block-free"
  | R8 ->
      "_b drift (typed): budgeted _b entry points must match their \
       unbudgeted twin modulo ?budget and the Guard.failure result wrapper"
  | R9 ->
      "effect signatures (typed): exported solver entry points must not \
       write unregistered global state; pure / registered-cache-only \
       signatures are certified shard-safe"
  | R10 ->
      "fork-time aliasing (typed): locally-created mutable state must not \
       escape across an Isolate.run/spawn or runner boundary"
  | R11 ->
      "report drift: the committed docs/SHARD_SAFETY.md and \
       docs/EXACTNESS.md reports must match what --par-report / \
       --taint-report regenerate from the current tree"
  | R12 ->
      "float taint (typed): no uncertified float may reach a core/linsep \
       entry point's return value or a serialized payload; \
       Certify.hyperplane/farkas and exact Rat.of_float sanitize"
  | R13 ->
      "journal-before-ack (typed): client-observable service state changes \
       and Ok acks must be dominated by a Wal.append on every path"
  | R14 ->
      "resource release (typed): Unix/channel/Isolate handles acquired in a \
       function must be released (close/await/Fun.protect) on every path"

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  key : string;
  message : string;
}

let v ~rule ~file ~line ~col ~key message =
  { rule; file; line; col; key; message }

let make ~rule ~file ~(loc : Location.t) ~key message =
  let p = loc.loc_start in
  v ~rule ~file ~line:p.pos_lnum ~col:(p.pos_cnum - p.pos_bol) ~key message

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = Stdlib.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.key b.key

let to_text f =
  Printf.sprintf "%s:%d:%d: %s [%s] %s" f.file f.line f.col
    (rule_to_string f.rule) f.key f.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf
    "{\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"key\":\"%s\",\"message\":\"%s\"}"
    (rule_to_string f.rule) (json_escape f.file) f.line f.col
    (json_escape f.key) (json_escape f.message)

let list_to_json fs =
  match fs with
  | [] -> "[]"
  | fs ->
      let body = String.concat ",\n  " (List.map to_json fs) in
      Printf.sprintf "[\n  %s\n]" body
