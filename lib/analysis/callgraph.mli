(** Whole-library interprocedural call graph built from [.cmt] typed
    trees — the substrate of the typed lint rules (R1′ tick
    reachability, R6 determinism, R7 marshal safety).

    Nodes are value definitions (at any nesting depth), [while]/[for]
    loop bodies, and externals (values mentioned but not defined in
    the loaded set). Edges are typechecker-resolved *mentions*: an
    identifier occurrence is credited to the definition its [Path.t]
    resolves to — across modules, shadowing and [open]s — which is
    precisely what the Parsetree rules' name matching cannot do.
    Mentions over-approximate calls in the quiet direction, matching
    the Parsetree R1's closure discipline. *)

type node_kind =
  | Def  (** a [let]-bound value (any nesting depth) *)
  | Loop of string  (** a [while]/[for] body: ["while"] or ["for"] *)
  | External  (** mentioned but not defined in the loaded cmts *)

type node = {
  id : int;
  name : string;  (** qualified display name, e.g. ["Cq_sep.decide"] *)
  modname : string;  (** compilation unit; [""] for externals *)
  kind : node_kind;
  short : string;  (** unqualified binding name, for finding keys *)
  encl : string;  (** nearest enclosing binding name ([while@encl] keys) *)
  line : int;
  col : int;
  is_rec : bool;  (** bound in a [let rec] group *)
  toplevel : bool;  (** bound at its module's structure top level *)
}

type t

val build : (string * Typedtree.structure) list -> t
(** [build [(modname, structure); ...]] walks every loaded module and
    assembles one graph. Modules referenced but absent from the list
    contribute [External] nodes only — degraded but never wrong-way
    resolution. *)

val size : t -> int
val nodes : t -> node list
val node : t -> int -> node
val succs : t -> int -> int list

val mentions : t -> (int * string * int * int) list
(** Every mention of an external, as [(node, resolved dotted name,
    line, col)] — the sink-matching input of R6. *)

val find_global : t -> string -> int option
(** Look up a definition by dotted name, e.g. ["Cq_sep.decide"]. *)

val cyclic : t -> int -> bool
(** The node sits in a nontrivial SCC (mutual recursion) or carries a
    self-edge (direct recursion). *)

val scc_of : t -> int -> int
(** The node's Tarjan SCC id. Ids are emitted in reverse topological
    order of the condensation: every mention edge leaving an SCC lands
    in an SCC with a {e smaller} id, so processing SCCs in ascending id
    order visits callees before callers — the substrate of
    {!Effects}'s single-pass bottom-up fixpoint. *)

val scc_count : t -> int
(** Number of SCCs (valid SCC ids are [0 .. scc_count - 1]). *)

val resolve : t -> Path.t -> int option
(** Resolve a typechecker path to the definition node it was credited
    to during construction: stamped local idents first (so shadowing
    resolves the way the typechecker saw it), then dotted global names.
    [None] for externals and unresolvable paths. *)

val node_at : t -> modname:string -> line:int -> col:int -> int option
(** Recover a definition or loop node from its source anchor — the
    binding pattern's (or the loop expression's) start position. Lets a
    second Typedtree walk re-attribute work to the graph's nodes
    without rebuilding it. *)

val reachable_from : ?depth:int -> t -> int list -> int -> bool
(** Forward closure from a root set, as a membership predicate. BFS
    with a depth cap (default 64) and memoized visited set — cycle
    safe by construction. *)

val reachers : ?depth:int -> t -> target:string -> int -> bool
(** Predicate for "can this node reach a node named [target]?",
    computed once by reverse BFS from every node carrying that name
    (defined or external). *)

val reaches : ?depth:int -> t -> target:string -> int -> bool
(** One-off convenience wrapper over {!reachers}. *)

val dump : t -> Buffer.t -> unit
(** Deterministic (name-sorted) textual dump of definitions, loops and
    their resolved edges, for [--dump-callgraph]. *)

val dump_dot : t -> Buffer.t -> unit
(** Graphviz rendering of the SCC condensation ([--dump-callgraph
    --dot]): one box per SCC labelled with up to three member names
    (cyclic SCCs bold), one edge per inter-SCC mention, externals
    elided. Deterministic, for diffing taint-path findings. *)

(**/**)

val local_key : Path.t -> string option
val global_name : Path.t -> string option
(** Path→key helpers shared with {!Typed_rules} (stamped idents for
    local paths, dotted names for paths rooted in a persistent
    module). *)
