(** Lint findings: what a rule reported, where, and under which stable
    key (the key, not the line number, is what the baseline file
    matches on, so findings survive unrelated edits). *)

(** The rule catalogue. [R0] is the meta-rule guarding the linter's
    own directive syntax: a [(* cqlint: allow ... *)] comment that does
    not parse — in particular one missing the mandatory reason — is
    itself a finding, so suppressions cannot silently rot. *)
type rule =
  | R0  (** well-formed [cqlint] directives (always on) *)
  | R1  (** budget discipline: solver loops and recursion must tick *)
  | R2  (** exception hygiene: Guard-convertible raises, guarded [_b] *)
  | R3  (** comparison safety: no polymorphic compare/hash on domain types *)
  | R4  (** interface hygiene: [.mli] coverage and [_b] counterparts *)
  | R5  (** state registration: top-level mutable solver state registers
            with [Runtime_state] *)
  | R6  (** determinism (typed): no PRNG/wall-clock/Hashtbl-order on paths
            from a solver's exported surface *)
  | R7  (** marshal safety (typed): Isolate-crossing result types are
            closure- and custom-block-free *)
  | R8  (** [_b] drift (typed): budgeted twins agree modulo [?budget] and
            the result wrapper *)
  | R9  (** effect signatures (typed): exported entry points must not write
            unregistered globals; pure/registered-cache signatures are
            certified shard-safe *)
  | R10  (** fork-time aliasing (typed): local mutable state must not escape
             across an [Isolate]/runner boundary *)
  | R11  (** report drift: committed [docs/SHARD_SAFETY.md] /
             [docs/EXACTNESS.md] match [--par-report] / [--taint-report]
             regeneration *)
  | R12  (** float taint (typed): no uncertified float reaches a
             core/linsep entry point's return or a serialized payload;
             [Certify.*] and exact [Rat.of_float] sanitize *)
  | R13  (** journal-before-ack (typed): observable service state changes
             and [Ok] acks are dominated by [Wal.append] on every path *)
  | R14  (** resource release (typed): acquired Unix/channel/[Isolate]
             handles are released on every path *)

val all_rules : rule list
(** [R1; ...; R14] — the toggleable rules ([R0] is always enabled).
    [R6]-[R10] and [R12]-[R14] (and the interprocedural upgrade of
    [R1]) only fire when the typed pass has [.cmt] input; [R11]
    additionally needs a lint root with a [docs/] directory. *)

val rule_to_string : rule -> string
val rule_of_string : string -> rule option

val rule_doc : rule -> string
(** One-line description for [--help] and reports. *)

type t = {
  rule : rule;
  file : string;  (** path as reported, relative to the lint root *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as in [Lexing.position] *)
  key : string;
      (** stable, line-independent identity within [file], e.g.
          [rec:solve], [while@drain#1], [val:generate] *)
  message : string;
}

val make :
  rule:rule -> file:string -> loc:Location.t -> key:string -> string -> t

val v :
  rule:rule -> file:string -> line:int -> col:int -> key:string -> string -> t

val compare : t -> t -> int
(** Orders by file, then line, column, rule, key. *)

val to_text : t -> string
(** [file:line:col: RULE [key] message] — one line, compiler-style. *)

val json_escape : string -> string
(** JSON string-body escaping, shared with the SARIF writer. *)

val to_json : t -> string
(** One finding as a JSON object (no trailing newline). *)

val list_to_json : t list -> string
(** A JSON array of findings, one per line, suitable for artifacts. *)
