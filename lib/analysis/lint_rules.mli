(** The cqlint rule catalogue, one entry point per rule.

    Each rule takes a parsed {!Lint_source.t} and returns raw findings
    — suppression filtering ({!Lint_source.apply}) and baseline
    matching ({!Lint_driver}) happen on top. The [solver] flag marks
    files in the worst-case-exponential solver libraries (the driver
    derives it from the directory; the tests set it explicitly). *)

val r1_budget : Lint_source.t -> Lint_finding.t list
(** R1, solver implementations only: every [while]/[for] loop and
    every self-recursive [let rec] binding must contain a
    [Budget.tick] call, or mention a same-file function that ticks
    directly (one level of intra-file call-graph closure). *)

val r2_exceptions : Lint_source.t -> Lint_finding.t list
(** R2, implementations: [raise] only exceptions {!Guard.run} converts
    ([Invalid_argument]/[Failure]/[Not_found]), [Budget.Exhausted],
    [Exit], or exceptions declared in the same file (local control
    flow); and every toplevel [_b] binding must wrap its body in
    [Guard.run]/[Guard.run_result] or delegate to another [_b]. *)

val r3_comparisons : Lint_source.t -> Lint_finding.t list
(** R3, implementations: no [Hashtbl.hash]; no polymorphic
    [=]/[<>]/[compare] applied to a [Rat]/[Bigint]-valued operand; no
    default [Hashtbl] operations keyed by a [Rat]/[Bigint] value. *)

val r5_state : Lint_source.t -> Lint_finding.t list
(** R5, solver implementations only: a top-level [let] binding whose
    right-hand side allocates a mutable container ([ref ...],
    [Hashtbl.create], [Queue.create], [Buffer.create], [Array.make],
    ...) must be registered with [Runtime_state.register] somewhere in
    the same file (detected by the binding's name occurring inside a
    [register] call's arguments). Local mutable state inside function
    bodies is exempt — it cannot outlive an abort. *)

val r4_missing_mli :
  dir:string -> ml:string list -> mli:string list -> Lint_finding.t list
(** R4a: every [.ml] basename in [ml] needs a matching basename in
    [mli]. Findings point at [dir/<file>.ml] line 1. *)

val r4_interface : Lint_source.t -> Lint_finding.t list
(** R4b, solver interfaces: every exported val taking a
    [Labeling.training] argument (a decision-procedure entry point)
    needs a budgeted [<name>_b] counterpart in the same signature,
    unless it is itself budgeted (takes [?budget]) or is the [_b]
    variant. *)
