(* Interprocedural effect inference over the whole-library mention
   graph: every Callgraph node gets a lattice-valued effect signature

     Pure ⊑ ReadsCache(sites) ⊑ WritesGlobal(sites) ⊑ Io ⊑ Forks

   where "sites" are the top-level mutable bindings already policed by
   R5 (refs, Hashtbls, Buffers, ... created at a module's structure
   top level) together with their Runtime_state registration status.

   The analysis is three source passes plus one graph pass:

     1. site catalogue  — top-level mutable allocations, per module;
     2. registry map    — [Runtime_state.register ~name:"..."] call
                          sites: every catalogued site mentioned in
                          the call's arguments (reset closure,
                          validate closure) carries that registry name;
     3. local effects   — a Typedtree walk re-attributed to Callgraph
                          nodes via {!Callgraph.node_at}: site reads
                          (any resolved mention of a site), site
                          writes (a writer head applied with the site
                          in target position), runner-field forks;
     4. propagation     — one bottom-up pass over the Tarjan SCC
                          condensation in ascending SCC-id order
                          (callees first, see {!Callgraph.scc_of}):
                          an SCC's signature is the join of its
                          members' local effects and the final
                          signatures of all out-of-SCC callees.

   Externals are classified by resolved name (Unix.fork forks,
   Printf.printf does io, Printf.sprintf does not, ...) and enter the
   propagation as leaf signatures.

   The runtime-contract exemption: nodes in [Budget], [Guard] and
   [Runtime_state] are Pure by fiat and effect-opaque — budget/guard
   bookkeeping is per-shard state by contract (forked workers get
   their own), and thunks passed into them are mentioned directly by
   the caller, so real effects still flow. [Isolate] is analyzed like
   any other module and comes out Forks through its Unix.fork mention.

   Version discipline matches [Callgraph]: only 4.14..5.x-stable
   constructors are matched, binding names come from
   [pat_bound_idents], and [Path.t]/constant matches carry wildcard
   arms. *)

type site = {
  site_node : int;  (* Callgraph node of the top-level binding *)
  site_name : string;  (* qualified display name, e.g. "Nsep.s_decided" *)
  site_what : string;  (* "ref", "Hashtbl", "Buffer", ... *)
  site_registered : string option;  (* Runtime_state registry name *)
}

type esig = {
  e_reads : int list;  (* site indexes, sorted, deduplicated *)
  e_writes : int list;  (* ditto; writes are also reads *)
  e_io : bool;
  e_forks : bool;
}

type level = Pure | Reads_cache | Writes_global | Io | Forks

type t = {
  t_sites : site array;
  t_sigs : esig array;  (* indexed by Callgraph node id *)
}

let empty_sig = { e_reads = []; e_writes = []; e_io = false; e_forks = false }

(* --- small sorted-int-set ops ----------------------------------------- *)

let rec union a b =
  match (a, b) with
  | [], l | l, [] -> l
  | x :: xs, y :: ys ->
      if x < y then x :: union xs b
      else if y < x then y :: union a ys
      else x :: union xs ys

let add_elt x l = union [ x ] l

let join a b =
  {
    e_reads = union a.e_reads b.e_reads;
    e_writes = union a.e_writes b.e_writes;
    e_io = a.e_io || b.e_io;
    e_forks = a.e_forks || b.e_forks;
  }

(* --- module exemption -------------------------------------------------- *)

let exempt_modules = [ "Budget"; "Guard"; "Runtime_state" ]
let exempt_module m = List.mem m exempt_modules

(* --- external classification ------------------------------------------ *)

let starts_with p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Process-state-free Sys members; the rest of Sys reads the
   environment, the clock, or the file system. *)
let pure_sys =
  [ "Sys.max_array_length"; "Sys.max_string_length"; "Sys.max_floatarray_length";
    "Sys.word_size"; "Sys.int_size"; "Sys.big_endian"; "Sys.ocaml_version";
    "Sys.backend_type"; "Sys.opaque_identity"; "Sys.unix"; "Sys.win32";
    "Sys.cygwin" ]

let fork_external name =
  match name with
  | "Unix.fork" | "Isolate.run" | "Isolate.spawn" | "Isolate.runner" -> true
  | _ -> false

let io_external name =
  if fork_external name then false
  else
    starts_with "print_" name || starts_with "prerr_" name
    || starts_with "output" name || starts_with "input" name
    || starts_with "open_" name || starts_with "read_line" name
    || starts_with "close_" name || starts_with "flush" name
    || starts_with "seek_" name || starts_with "pos_" name
    || starts_with "set_binary_mode_" name
    ||
    match name with
    | "exit" | "at_exit" -> true
    | "Printf.printf" | "Printf.eprintf" | "Printf.fprintf"
    | "Printf.ifprintf" | "Printf.kfprintf" ->
        true
    | "Format.printf" | "Format.eprintf" ->
        (* Format.fprintf/asprintf/pp_* write to a caller-supplied
           formatter or a fresh buffer — not ambient io. *)
        true
    | _ ->
        (starts_with "Format.print_" name || starts_with "Format.open_" name)
        || (starts_with "Sys." name && not (List.mem name pure_sys))
        || starts_with "Unix." name
        || starts_with "Filename.temp_" name
        || starts_with "Filename.open_temp_" name
        || starts_with "Out_channel." name
        || starts_with "In_channel." name
        || starts_with "Random." name
        (* the global PRNG is ambient process state *)

let external_sig name =
  if fork_external name then { empty_sig with e_forks = true }
  else if io_external name then { empty_sig with e_io = true }
  else empty_sig

(* --- mutable-allocation heads (typed mirror of R5's table) ------------- *)

let mutable_makers =
  [ "Hashtbl"; "Queue"; "Stack"; "Buffer"; "Array"; "Weak"; "Atomic";
    "Dynarray"; "Bytes" ]

let maker_fns = [ "create"; "make"; "make_matrix"; "init" ]

let tyname p =
  match Callgraph.global_name p with Some n -> n | None -> Path.name p

(* [alloc_head e] is [Some what] when [e] is a mutable allocation:
   [ref x] or [M.create/make/... args] for a catalogued maker. *)
let alloc_head (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_apply (f, _) -> begin
      match f.Typedtree.exp_desc with
      | Typedtree.Texp_ident (p, _, _) -> begin
          match tyname p with
          | "ref" -> Some "ref"
          | n -> begin
              match String.split_on_char '.' n with
              | [ m; fn ] when List.mem m mutable_makers && List.mem fn maker_fns
                ->
                  Some m
              | _ -> None
            end
        end
      | _ -> None
    end
  | _ -> None

(* --- writer heads ------------------------------------------------------ *)

(* Applications that mutate their first positional argument. The set
   errs on the side of coverage: a name listed here only upgrades an
   already-recorded read into a write. *)
let writer_head name =
  match name with
  | ":=" | "incr" | "decr" -> true
  | _ -> begin
      match String.split_on_char '.' name with
      | [ "Hashtbl"; ("add" | "replace" | "remove" | "reset" | "clear"
                     | "filter_map_inplace" | "add_seq" | "replace_seq") ]
      | [ "Array"; ("set" | "fill" | "blit" | "sort" | "fast_sort"
                   | "stable_sort" | "unsafe_set") ]
      | [ "Bytes"; ("set" | "fill" | "blit" | "unsafe_set" | "blit_string") ]
      | [ "Queue"; ("push" | "add" | "pop" | "take" | "clear" | "transfer"
                   | "add_seq") ]
      | [ "Stack"; ("push" | "pop" | "clear") ]
      | [ "Weak"; ("set" | "fill" | "blit") ]
      | [ "Atomic"; ("set" | "incr" | "decr" | "exchange" | "fetch_and_add"
                    | "compare_and_set") ] ->
          true
      | [ "Buffer"; fn ] ->
          starts_with "add" fn
          || (match fn with
             | "clear" | "reset" | "truncate" -> true
             | _ -> false)
      | [ "Dynarray"; fn ] ->
          starts_with "add" fn
          || (match fn with
             | "set" | "clear" | "remove_last" | "truncate" | "fit_capacity"
             | "ensure_capacity" | "append" ->
                 true
             | _ -> false)
      | _ -> false
    end

(* --- pass 1: site catalogue -------------------------------------------- *)

(* Top-level here means "not under any value binding": a binding in a
   nested [module M = struct ... end] is still program-lifetime global
   state. Mirrors exactly the positions [Callgraph] marks [toplevel]. *)
let collect_sites g impls =
  let sites = ref [] in
  List.iter
    (fun (modname, str) ->
      if not (exempt_module modname) then begin
        let rec str_item (si : Typedtree.structure_item) =
          match si.Typedtree.str_desc with
          | Typedtree.Tstr_value (_, vbs) ->
              List.iter
                (fun (vb : Typedtree.value_binding) ->
                  match alloc_head vb.Typedtree.vb_expr with
                  | None -> ()
                  | Some what -> begin
                      let loc = vb.Typedtree.vb_pat.Typedtree.pat_loc in
                      match
                        Callgraph.node_at g ~modname
                          ~line:loc.Location.loc_start.pos_lnum
                          ~col:
                            (loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
                      with
                      | None -> ()
                      | Some id ->
                          let n = Callgraph.node g id in
                          sites :=
                            {
                              site_node = id;
                              site_name = n.Callgraph.name;
                              site_what = what;
                              site_registered = None;
                            }
                            :: !sites
                    end)
                vbs
          | Typedtree.Tstr_module mb -> module_binding mb
          | Typedtree.Tstr_recmodule mbs -> List.iter module_binding mbs
          | _ -> ()
        and module_binding (mb : Typedtree.module_binding) =
          module_expr mb.Typedtree.mb_expr
        and module_expr (me : Typedtree.module_expr) =
          match me.Typedtree.mod_desc with
          | Typedtree.Tmod_structure s -> List.iter str_item s.Typedtree.str_items
          | Typedtree.Tmod_constraint (me, _, _, _) -> module_expr me
          | _ -> ()
        in
        List.iter str_item str.Typedtree.str_items
      end)
    impls;
  Array.of_list (List.rev !sites)

(* --- pass 2: registry map ---------------------------------------------- *)

let idents_in (e : Typedtree.expression) =
  let acc = ref [] in
  let iter =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Typedtree.exp_desc with
          | Typedtree.Texp_ident (p, _, _) -> acc := p :: !acc
          | _ -> ());
          Tast_iterator.default_iterator.expr self e);
    }
  in
  iter.Tast_iterator.expr iter e;
  !acc

let mark_registered g sites impls =
  let by_node = Hashtbl.create 16 in
  Array.iteri (fun i s -> Hashtbl.replace by_node s.site_node i) sites;
  let registered = Hashtbl.create 16 in
  List.iter
    (fun (_modname, str) ->
      let iter =
        {
          Tast_iterator.default_iterator with
          expr =
            (fun self e ->
              (match e.Typedtree.exp_desc with
              | Typedtree.Texp_apply (f, args) -> begin
                  match f.Typedtree.exp_desc with
                  | Typedtree.Texp_ident (p, _, _)
                    when tyname p = "Runtime_state.register" -> begin
                      let name =
                        List.find_map
                          (fun (lbl, arg) ->
                            match (lbl, arg) with
                            | ( Asttypes.Labelled "name",
                                Some (a : Typedtree.expression) ) -> begin
                                match a.Typedtree.exp_desc with
                                | Typedtree.Texp_constant
                                    (Asttypes.Const_string (s, _, _)) ->
                                    Some s
                                | _ -> None
                              end
                            | _ -> None)
                          args
                      in
                      match name with
                      | None -> ()
                      | Some reg_name ->
                          List.iter
                            (fun (_, arg) ->
                              match arg with
                              | None -> ()
                              | Some a ->
                                  List.iter
                                    (fun p ->
                                      match Callgraph.resolve g p with
                                      | Some id
                                        when Hashtbl.mem by_node id ->
                                          Hashtbl.replace registered
                                            (Hashtbl.find by_node id)
                                            reg_name
                                      | _ -> ())
                                    (idents_in a))
                            args
                    end
                  | _ -> ()
                end
              | _ -> ());
              Tast_iterator.default_iterator.expr self e);
        }
      in
      iter.Tast_iterator.structure iter str)
    impls;
  Array.mapi
    (fun i s ->
      match Hashtbl.find_opt registered i with
      | Some name -> { s with site_registered = Some name }
      | None -> s)
    sites

(* --- pass 3: local effects --------------------------------------------- *)

(* A [.run] field selection on a [*runner]-shaped record — the same
   boundary R7 watches. An application through it hands the thunk to
   whatever worker the runner wraps, possibly a fork. *)
let runner_field_head (f : Typedtree.expression) =
  match f.Typedtree.exp_desc with
  | Typedtree.Texp_field (_, _, ld) when ld.Types.lbl_name = "run" -> begin
      match Types.get_desc ld.Types.lbl_res with
      | Types.Tconstr (p, _, _)
        when String.ends_with ~suffix:"runner" (tyname p) ->
          true
      | _ -> false
    end
  | _ -> false

let local_effects g sites impls =
  let n = Callgraph.size g in
  let locals = Array.make (max n 1) empty_sig in
  let site_of_node = Hashtbl.create 16 in
  Array.iteri (fun i s -> Hashtbl.replace site_of_node s.site_node i) sites;
  let record id f = if id >= 0 && id < n then locals.(id) <- f locals.(id) in
  List.iter
    (fun (modname, str) ->
      let stack = ref [] in
      let cur () = match !stack with [] -> -1 | v :: _ -> v in
      let push_at (loc : Location.t) =
        let id =
          match
            Callgraph.node_at g ~modname ~line:loc.loc_start.pos_lnum
              ~col:(loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
          with
          | Some id -> id
          | None -> cur ()  (* degraded: attribute to the enclosing node *)
        in
        stack := id :: !stack
      in
      let pop () = stack := List.tl !stack in
      let note_read p =
        match Callgraph.resolve g p with
        | Some id -> begin
            match Hashtbl.find_opt site_of_node id with
            | Some s ->
                record (cur ()) (fun l ->
                    { l with e_reads = add_elt s l.e_reads })
            | None -> ()
          end
        | None -> ()
      in
      let note_writes (target : Typedtree.expression) =
        List.iter
          (fun p ->
            match Callgraph.resolve g p with
            | Some id -> begin
                match Hashtbl.find_opt site_of_node id with
                | Some s ->
                    record (cur ()) (fun l ->
                        {
                          l with
                          e_reads = add_elt s l.e_reads;
                          e_writes = add_elt s l.e_writes;
                        })
                | None -> ()
              end
            | None -> ())
          (idents_in target)
      in
      let check_apply (f : Typedtree.expression) args =
        (match f.Typedtree.exp_desc with
        | Typedtree.Texp_ident (p, _, _) when writer_head (tyname p) -> begin
            match
              List.find_map
                (fun (lbl, arg) ->
                  match (lbl, arg) with
                  | Asttypes.Nolabel, Some a -> Some a
                  | _ -> None)
                args
            with
            | Some target -> note_writes target
            | None -> ()
          end
        | _ -> ());
        if runner_field_head f then
          record (cur ()) (fun l -> { l with e_forks = true })
      in
      let process_bindings self (vbs : Typedtree.value_binding list) =
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            push_at vb.Typedtree.vb_pat.Typedtree.pat_loc;
            self.Tast_iterator.expr self vb.Typedtree.vb_expr;
            pop ())
          vbs
      in
      let iter =
        {
          Tast_iterator.default_iterator with
          expr =
            (fun self e ->
              match e.Typedtree.exp_desc with
              | Typedtree.Texp_ident (p, _, _) -> note_read p
              | Typedtree.Texp_let (_, vbs, body) ->
                  process_bindings self vbs;
                  self.Tast_iterator.expr self body
              | Typedtree.Texp_while (cond, body) ->
                  self.Tast_iterator.expr self cond;
                  push_at e.Typedtree.exp_loc;
                  self.Tast_iterator.expr self body;
                  pop ()
              | Typedtree.Texp_for (_, _, lo, hi, _, body) ->
                  self.Tast_iterator.expr self lo;
                  self.Tast_iterator.expr self hi;
                  push_at e.Typedtree.exp_loc;
                  self.Tast_iterator.expr self body;
                  pop ()
              | Typedtree.Texp_apply (f, args) ->
                  check_apply f args;
                  Tast_iterator.default_iterator.expr self e
              | _ -> Tast_iterator.default_iterator.expr self e);
          structure_item =
            (fun self si ->
              match si.Typedtree.str_desc with
              | Typedtree.Tstr_value (_, vbs) -> process_bindings self vbs
              | _ -> Tast_iterator.default_iterator.structure_item self si);
        }
      in
      iter.Tast_iterator.structure iter str)
    impls;
  locals

(* --- pass 4: SCC propagation ------------------------------------------- *)

let propagate g locals =
  let n = Callgraph.size g in
  let sigs = Array.make (max n 1) empty_sig in
  let exempt id = exempt_module (Callgraph.node g id).Callgraph.modname in
  let nscc = Callgraph.scc_count g in
  let members = Array.make (max nscc 1) [] in
  for v = n - 1 downto 0 do
    let s = Callgraph.scc_of g v in
    members.(s) <- v :: members.(s)
  done;
  (* Ascending SCC id = callees first (see Callgraph.scc_of). Within
     one SCC every member reaches every other, so the join of all
     members' locals plus all out-of-SCC callee signatures is the
     exact least fixpoint — no iteration needed. *)
  for s = 0 to nscc - 1 do
    let acc = ref empty_sig in
    List.iter
      (fun v ->
        if not (exempt v) then begin
          (match (Callgraph.node g v).Callgraph.kind with
          | Callgraph.External ->
              acc := join !acc (external_sig (Callgraph.node g v).Callgraph.name)
          | _ -> acc := join !acc locals.(v));
          List.iter
            (fun w ->
              if Callgraph.scc_of g w <> s then acc := join !acc sigs.(w))
            (Callgraph.succs g v)
        end)
      members.(s);
    List.iter
      (fun v -> sigs.(v) <- (if exempt v then empty_sig else !acc))
      members.(s)
  done;
  sigs

(* --- entry point ------------------------------------------------------- *)

let analyze g impls =
  let sites = collect_sites g impls in
  let sites = mark_registered g sites impls in
  let locals = local_effects g sites impls in
  { t_sites = sites; t_sigs = propagate g locals }

(* --- queries ----------------------------------------------------------- *)

let signature t id = t.t_sigs.(id)
let sites t = t.t_sites
let site t i = t.t_sites.(i)

let accesses t s =
  List.map
    (fun i -> (t.t_sites.(i), List.mem i s.e_writes))
    (union s.e_reads s.e_writes)

let unregistered_writes t s =
  List.filter_map
    (fun i ->
      let site = t.t_sites.(i) in
      if site.site_registered = None then Some site else None)
    s.e_writes

let level t s =
  if s.e_forks then Forks
  else if s.e_io then Io
  else if unregistered_writes t s <> [] then Writes_global
  else if s.e_reads <> [] || s.e_writes <> [] then Reads_cache
  else Pure

let level_name = function
  | Pure -> "pure"
  | Reads_cache -> "reads-cache"
  | Writes_global -> "writes-global"
  | Io -> "io"
  | Forks -> "forks"

(* Shard-safe: no ambient effect a concurrent shard could observe —
   pure, or touching only Runtime_state-registered caches (which the
   sharding layer resets/validates per worker by contract). *)
let shard_safe t s =
  match level t s with
  | Pure -> true
  | Reads_cache ->
      List.for_all
        (fun (site, _) -> site.site_registered <> None)
        (accesses t s)
  | Writes_global | Io | Forks -> false

let site_display site =
  match site.site_registered with
  | Some name -> name
  | None -> site.site_name

let describe t s =
  let lv = level t s in
  match lv with
  | Pure -> "pure"
  | Io -> "io"
  | Forks -> "forks"
  | Reads_cache | Writes_global ->
      Printf.sprintf "%s(%s)" (level_name lv)
        (String.concat ", "
           (List.map
              (fun (site, written) ->
                site_display site ^ if written then "!" else "")
              (accesses t s)))
