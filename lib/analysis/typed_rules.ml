(* The typed rules (R1', R6, R7, R8), on top of the whole-library
   mention graph built by [Callgraph] from dune's [-bin-annot] output.

   Version discipline matches [Callgraph]: only 4.14..5.x-stable
   Typedtree/Types constructors are matched ([Texp_apply] with its
   argument list wildcarded, [Texp_ident], [Texp_field] at arity 3,
   [Tstr_type], [Tsig_value]); binding names come from
   [pat_bound_idents]; [Path.t] and [type_kind] matches always carry a
   wildcard arm ([Pextra_ty] and the [Type_abstract] payload are 5.x
   additions). *)

type source = {
  s_mod : string;  (* compilation unit name, e.g. "Cq_sep" *)
  s_file : string;  (* root-relative .ml path findings attach to *)
  s_mli : string option;  (* root-relative .mli path, for R8 findings *)
  s_solver : bool;  (* in a worst-case-exponential library dir *)
  s_impl : Typedtree.structure;
  s_intf : Typedtree.signature option;
}

(* Per-(file, base) [#n] disambiguation, matching the Parsetree rules'
   [fresh_key] so suppression and baseline keys stay compatible. *)
let keyed () =
  let tbl = Hashtbl.create 16 in
  fun file base ->
    let k = (file, base) in
    let n = match Hashtbl.find_opt tbl k with Some n -> n + 1 | None -> 1 in
    Hashtbl.replace tbl k n;
    if n = 1 then base else Printf.sprintf "%s#%d" base n

let solver_files sources =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s -> if s.s_solver then Hashtbl.replace tbl s.s_mod s.s_file)
    sources;
  tbl

(* --- R1': interprocedural tick reachability --------------------------- *)

let tick_target = "Budget.tick"

let r1_tick g sources =
  let file_of = solver_files sources in
  let reach = Callgraph.reachers g ~target:tick_target in
  let fresh = keyed () in
  List.filter_map
    (fun (n : Callgraph.node) ->
      match Hashtbl.find_opt file_of n.modname with
      | None -> None
      | Some file ->
          let mk base msg =
            Some
              (Lint_finding.v ~rule:Lint_finding.R1 ~file ~line:n.line
                 ~col:n.col ~key:(fresh file base) msg)
          in
          if reach n.id then None
          else begin
            match n.kind with
            | Callgraph.Loop kind ->
                mk
                  (Printf.sprintf "%s@%s" kind n.encl)
                  (Printf.sprintf
                     "%s loop in solver code cannot reach Budget.tick \
                      through the whole-library call graph (inside `%s`): \
                      tick in the body, or through any helper on its call \
                      path — cross-module helpers count"
                     kind n.encl)
            (* Only [let rec] members: a mention cycle necessarily
               passes through one (inner non-rec bindings land in the
               same SCC via the parent edge, and flagging them too
               would report each cycle several times). *)
            | Callgraph.Def when n.is_rec && Callgraph.cyclic g n.id ->
                mk
                  (Printf.sprintf "rec:%s" n.short)
                  (Printf.sprintf
                     "recursive `%s` in solver code (a cycle of the call \
                      graph) never reaches Budget.tick: an adversarial \
                      input can recurse past any deadline; tick once per \
                      call or per expansion step"
                     n.short)
            | _ -> None
          end)
    (Callgraph.nodes g)

(* --- R6: determinism --------------------------------------------------- *)

(* Calls whose result depends on process state rather than on the
   input: the static counterpart of the chaos tests' rerun-agreement
   check. [Budget.Clock] is exempt by construction — it lives in
   lib/runtime, not in a solver dir, and mentions of it resolve to the
   Budget module, not to a sink name. *)
let sink_of name =
  let starts p =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  if starts "Random." then
    Some
      ( "the global PRNG",
        "thread explicit, seeded state through the solver or drop the \
         randomness" )
  else
    match name with
    | "Unix.time" | "Unix.gettimeofday" | "Sys.time" ->
        Some
          ( "the wall clock",
            "read time through Budget.Clock, the runtime's sanctioned clock"
          )
    | "Hashtbl.iter" | "Hashtbl.fold" ->
        Some
          ( "order-dependent Hashtbl iteration",
            "collect the keys, sort them, and fold in sorted order so the \
             result is independent of insertion history" )
    | _ -> None

(* The root set results flow out of: every value a solver module's
   interface exports. Without a cmti (or for an .ml-only module) every
   top-level definition is a root — degraded towards more coverage,
   never less. *)
let exported_roots g sources =
  List.concat_map
    (fun s ->
      if not s.s_solver then []
      else
        match s.s_intf with
        | Some sg ->
            List.filter_map
              (fun (item : Typedtree.signature_item) ->
                match item.Typedtree.sig_desc with
                | Typedtree.Tsig_value vd ->
                    Callgraph.find_global g
                      (s.s_mod ^ "." ^ vd.Typedtree.val_name.Location.txt)
                | _ -> None)
              sg.Typedtree.sig_items
        | None ->
            List.filter_map
              (fun (n : Callgraph.node) ->
                if n.modname = s.s_mod && n.toplevel && n.kind = Callgraph.Def
                then Some n.id
                else None)
              (Callgraph.nodes g))
    sources

let r6_determinism g sources =
  let file_of = solver_files sources in
  let covered = Callgraph.reachable_from g (exported_roots g sources) in
  let fresh = keyed () in
  let ms =
    List.sort
      (fun (a, an, al, ac) (b, bn, bl, bc) ->
        Stdlib.compare
          ((Callgraph.node g a).Callgraph.modname, al, ac, an)
          ((Callgraph.node g b).Callgraph.modname, bl, bc, bn))
      (Callgraph.mentions g)
  in
  List.filter_map
    (fun (src, name, line, col) ->
      let n = Callgraph.node g src in
      match (Hashtbl.find_opt file_of n.modname, sink_of name) with
      | Some file, Some (what, fix) when covered src ->
          let owner =
            match n.kind with Callgraph.Loop _ -> n.encl | _ -> n.short
          in
          Some
            (Lint_finding.v ~rule:Lint_finding.R6 ~file ~line ~col
               ~key:(fresh file (Printf.sprintf "det:%s@%s" name owner))
               (Printf.sprintf
                  "`%s` (%s) sits on a path reachable from the solver's \
                   exported surface (via `%s`): solver results must be \
                   bit-for-bit deterministic across reruns and fork \
                   workers; %s"
                  name what owner fix))
      | _ -> None)
    ms

(* --- R7: marshal safety ------------------------------------------------ *)

(* Type names for diagnostics and the safe/unsafe tables: dotted names
   for globals, [Path.name] for predefs ([int], [list], ...) and
   module-local types. *)
let tyname p =
  match Callgraph.global_name p with Some n -> n | None -> Path.name p

(* Declarations defined in the loaded library set, so abstract heads
   can be expanded instead of flagged. Keyed by the stamped type ident
   (same-module references), by [Mod.path.t] (cross-module references)
   and, for types in single-level local modules, by the stamped module
   ident ([M/7.t]) that [Callgraph.local_key] produces for [M.t]. *)
let type_table sources =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let display = ref [ s.s_mod ] in
      let uniq = ref [] in
      let register (td : Typedtree.type_declaration) =
        let name = Ident.name td.Typedtree.typ_id in
        let decl = td.Typedtree.typ_type in
        Hashtbl.replace tbl (Ident.unique_name td.Typedtree.typ_id) decl;
        Hashtbl.replace tbl
          (String.concat "." (List.rev (name :: !display)))
          decl;
        match !uniq with
        | [ m ] -> Hashtbl.replace tbl (m ^ "." ^ name) decl
        | _ -> ()
      in
      let iter =
        {
          Tast_iterator.default_iterator with
          structure_item =
            (fun self si ->
              (match si.Typedtree.str_desc with
              | Typedtree.Tstr_type (_, tds) -> List.iter register tds
              | _ -> ());
              Tast_iterator.default_iterator.structure_item self si);
          module_binding =
            (fun self mb ->
              let name =
                match mb.Typedtree.mb_name.Location.txt with
                | Some n -> n
                | None -> "_"
              in
              let u =
                match mb.Typedtree.mb_id with
                | Some id -> Ident.unique_name id
                | None -> "_"
              in
              display := name :: !display;
              uniq := u :: !uniq;
              Tast_iterator.default_iterator.module_binding self mb;
              display := List.tl !display;
              uniq := List.tl !uniq);
        }
      in
      iter.Tast_iterator.structure iter s.s_impl)
    sources;
  tbl

let lookup_decl tbl p =
  let by k = Hashtbl.find_opt tbl k in
  match Callgraph.local_key p with
  | Some k when by k <> None -> by k
  | _ -> ( match Callgraph.global_name p with Some g -> by g | None -> None)

(* Heads that marshal structurally (possibly via their arguments,
   which are always checked first). *)
let safe_heads =
  [ "int"; "char"; "string"; "bytes"; "float"; "bool"; "unit"; "int32";
    "int64"; "nativeint"; "list"; "option"; "array"; "ref"; "result";
    "Either.t"; "Queue.t"; "Stack.t"; "Buffer.t"; "Hashtbl.t" ]

let unsafe_heads =
  [ ("exn", "exception values lose identity across Marshal");
    ("lazy_t", "an unforced lazy is a closure");
    ("Lazy.t", "an unforced lazy is a closure");
    ("Seq.t", "a sequence is a closure");
    ("in_channel", "channels are custom blocks");
    ("out_channel", "channels are custom blocks");
    ("Unix.file_descr", "file descriptors are process-local");
    ("Mutex.t", "mutexes are custom blocks");
    ("Condition.t", "condition variables are custom blocks");
    ("Domain.t", "domains are process-local") ]

(* [Set.Make]/[Map.Make] instances: the values are plain constructor
   trees (the comparison closure lives in the module, not the value),
   but the functor body's declarations are not in our cmt set, so the
   head looks abstract. Recognized by module-name convention — the one
   deliberate blind spot (a non-stdlib functor whose module happens to
   end in "Set" is waved through). *)
let functor_container name =
  match List.rev (String.split_on_char '.' name) with
  | "t" :: m :: _ ->
      String.ends_with ~suffix:"Set" m || String.ends_with ~suffix:"Map" m
  | _ -> false

let rec violation tbl ~depth ~seen ty =
  if depth <= 0 then None
  else
    match Types.get_desc ty with
    | Types.Tarrow _ -> Some "a function (closure)"
    | Types.Tobject _ -> Some "an object (methods are closures)"
    | Types.Tpackage _ -> Some "a first-class module"
    | Types.Ttuple args -> violation_list tbl ~depth ~seen args
    | Types.Tpoly (t, _) -> violation tbl ~depth ~seen t
    | Types.Tvariant row ->
        violation_list tbl ~depth ~seen
          (List.concat_map
             (fun (_, f) ->
               match Types.row_field_repr f with
               | Types.Rpresent (Some t) -> [ t ]
               | Types.Reither (_, ts, _) -> ts
               | _ -> [])
             (Types.row_fields row))
    | Types.Tconstr (p, args, _) -> begin
        match violation_list tbl ~depth ~seen args with
        | Some _ as v -> v
        | None -> begin
            let name = tyname p in
            match List.assoc_opt name unsafe_heads with
            | Some why -> Some (Printf.sprintf "`%s` (%s)" name why)
            | None ->
                if
                  List.mem name safe_heads
                  || functor_container name
                  || List.mem name seen
                then None
                else begin
                  match lookup_decl tbl p with
                  | Some decl ->
                      violation_decl tbl ~depth:(depth - 1)
                        ~seen:(name :: seen) decl
                  | None ->
                      Some
                        (Printf.sprintf
                           "`%s`, an abstract type not known to be \
                            marshal-safe"
                           name)
                end
          end
      end
    (* Tvar/Tunivar: polymorphic holes are checked where they are
       instantiated; Tnil/Tfield only occur under Tobject. *)
    | _ -> None

and violation_list tbl ~depth ~seen tys =
  List.find_map (fun t -> violation tbl ~depth ~seen t) tys

and violation_decl tbl ~depth ~seen (decl : Types.type_declaration) =
  let labels lds =
    violation_list tbl ~depth ~seen
      (List.map (fun (ld : Types.label_declaration) -> ld.Types.ld_type) lds)
  in
  match decl.Types.type_manifest with
  | Some t -> violation tbl ~depth ~seen t
  | None -> begin
      match decl.Types.type_kind with
      | Types.Type_variant (cds, _) ->
          List.find_map
            (fun (cd : Types.constructor_declaration) ->
              match cd.Types.cd_args with
              | Types.Cstr_tuple ts -> violation_list tbl ~depth ~seen ts
              | Types.Cstr_record lds -> labels lds)
            cds
      | Types.Type_record (lds, _) -> labels lds
      | Types.Type_open -> Some "an extensible variant (payloads unknown)"
      | _ -> None (* abstract with no manifest: nothing concrete to flag *)
    end

(* A result-channel crossing: a (possibly partial) application whose
   head is [Isolate.run] or a [.run] field of a [Guard.runner]-shaped
   record. The ok component of the application's result type is what
   the fork worker will marshal back. *)
let r7_marshal tbl sources =
  let fresh = keyed () in
  let findings = ref [] in
  let scan s =
    let names = ref [] in
    let encl () = match !names with [] -> "<toplevel>" | n :: _ -> n in
    let site_head (f : Typedtree.expression) =
      match f.Typedtree.exp_desc with
      | Typedtree.Texp_ident (p, _, _) ->
          let n = tyname p in
          if n = "Isolate.run" || n = "Isolate.spawn" then Some n else None
      | Typedtree.Texp_field (_, _, ld) when ld.Types.lbl_name = "run" ->
          begin
            match Types.get_desc ld.Types.lbl_res with
            | Types.Tconstr (p, _, _)
              when String.ends_with ~suffix:"runner" (tyname p) ->
                Some (tyname p ^ ".run")
            | _ -> None
          end
      | _ -> None
    in
    let rec codomain ty =
      match Types.get_desc ty with
      | Types.Tarrow (_, _, r, _) -> codomain r
      | _ -> ty
    in
    let check_site (e : Typedtree.expression) f =
      match site_head f with
      | None -> ()
      | Some via -> begin
          (* Isolate.run : ... -> (ok, failure) result;
             Isolate.spawn : ... -> ok Isolate.worker. Either way [ok]
             is what the worker marshals back. *)
          let ok_component =
            match Types.get_desc (codomain e.Typedtree.exp_type) with
            | Types.Tconstr (p, [ ok; _err ], _) when tyname p = "result" ->
                Some ok
            | Types.Tconstr (p, [ ok ], _)
              when tyname p = "Isolate.worker" || tyname p = "worker" ->
                Some ok
            | _ -> None
          in
          match ok_component with
          | Some ok ->
              begin
                match violation tbl ~depth:40 ~seen:[] ok with
                | None -> ()
                | Some what ->
                    let loc = e.Typedtree.exp_loc in
                    findings :=
                      Lint_finding.v ~rule:Lint_finding.R7 ~file:s.s_file
                        ~line:loc.Location.loc_start.pos_lnum
                        ~col:
                          (loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
                        ~key:
                          (fresh s.s_file
                             (Printf.sprintf "marshal:%s" (encl ())))
                        (Printf.sprintf
                           "result crossing %s contains %s: the fork \
                            worker marshals its result back to the \
                            parent, which cannot decode this; return a \
                            closure-free summary and rebuild the rich \
                            value on the parent side (inside `%s`)"
                           via what (encl ()))
                      :: !findings
              end
          | None -> ()
        end
    in
    let iter =
      {
        Tast_iterator.default_iterator with
        expr =
          (fun self e ->
            (match e.Typedtree.exp_desc with
            | Typedtree.Texp_apply (f, _) -> check_site e f
            | _ -> ());
            Tast_iterator.default_iterator.expr self e);
        value_binding =
          (fun self vb ->
            let name =
              match Typedtree.pat_bound_idents vb.Typedtree.vb_pat with
              | [] -> "_"
              | i :: _ -> Ident.name i
            in
            names := name :: !names;
            Tast_iterator.default_iterator.value_binding self vb;
            names := List.tl !names);
      }
    in
    iter.Tast_iterator.structure iter s.s_impl
  in
  List.iter scan sources;
  List.rev !findings

(* --- R8: _b signature drift ------------------------------------------- *)

let render ty =
  Printtyp.reset ();
  Format.asprintf "%a" Printtyp.type_expr ty

let rec spine ty =
  match Types.get_desc ty with
  | Types.Tarrow (lbl, a, r, _) ->
      let args, cod = spine r in
      ((lbl, a) :: args, cod)
  | Types.Tpoly (t, _) -> spine t
  | _ -> ([], ty)

let label_name = function
  | Asttypes.Nolabel -> "an unlabeled argument"
  | Asttypes.Labelled l -> "~" ^ l
  | Asttypes.Optional l -> "?" ^ l

let r8_drift sources =
  List.concat_map
    (fun s ->
      if not s.s_solver then []
      else
        match s.s_intf with
        | None -> []
        | Some sg ->
            let file = match s.s_mli with Some f -> f | None -> s.s_file in
            let vals =
              List.filter_map
                (fun (it : Typedtree.signature_item) ->
                  match it.Typedtree.sig_desc with
                  | Typedtree.Tsig_value vd ->
                      Some (vd.Typedtree.val_name.Location.txt, vd)
                  | _ -> None)
                sg.Typedtree.sig_items
            in
            List.filter_map
              (fun ((name, vd) : string * Typedtree.value_description) ->
                if not (String.ends_with ~suffix:"_b" name) then None
                else begin
                  let base = String.sub name 0 (String.length name - 2) in
                  match List.assoc_opt base vals with
                  | None -> None
                  | Some base_vd ->
                      let mk msg =
                        let loc = vd.Typedtree.val_loc in
                        Some
                          (Lint_finding.v ~rule:Lint_finding.R8 ~file
                             ~line:loc.Location.loc_start.pos_lnum
                             ~col:
                               (loc.loc_start.pos_cnum
                              - loc.loc_start.pos_bol)
                             ~key:("drift:" ^ name)
                             (Printf.sprintf
                                "budgeted `%s` drifted from `%s`: %s — \
                                 the twins must agree modulo ?budget and \
                                 the (_, Guard.failure) result wrapper, \
                                 or callers silently get different \
                                 semantics per entry point"
                                name base msg))
                      in
                      let b_args, b_cod =
                        spine vd.Typedtree.val_val.Types.val_type
                      in
                      let args, cod =
                        spine base_vd.Typedtree.val_val.Types.val_type
                      in
                      let budget, rest =
                        List.partition
                          (fun (l, _) -> l = Asttypes.Optional "budget")
                          b_args
                      in
                      if budget = [] then
                        mk "it takes no ?budget:Budget.t argument"
                      else begin
                        match Types.get_desc b_cod with
                        | Types.Tconstr (p, [ ok; err ], _)
                          when tyname p = "result" ->
                            let err_ok =
                              match Types.get_desc err with
                              | Types.Tconstr (pe, _, _) ->
                                  String.ends_with ~suffix:"failure"
                                    (tyname pe)
                              | _ -> false
                            in
                            if not err_ok then
                              mk
                                (Printf.sprintf
                                   "its error channel is `%s`, not \
                                    Guard.failure"
                                   (render err))
                            else if List.length rest <> List.length args
                            then
                              mk
                                (Printf.sprintf
                                   "it takes %d non-budget argument(s) \
                                    but `%s` takes %d"
                                   (List.length rest) base
                                   (List.length args))
                            else begin
                              let mism =
                                List.find_map
                                  (fun ((bl, bt), (l, t)) ->
                                    if bl <> l then
                                      Some
                                        (Printf.sprintf
                                           "argument labels differ (%s \
                                            vs %s)"
                                           (label_name bl) (label_name l))
                                    else if render bt <> render t then
                                      Some
                                        (Printf.sprintf
                                           "argument %s has type `%s` vs \
                                            `%s`"
                                           (label_name l) (render bt)
                                           (render t))
                                    else None)
                                  (List.combine rest args)
                              in
                              match mism with
                              | Some m -> mk m
                              | None ->
                                  if render ok <> render cod then
                                    mk
                                      (Printf.sprintf
                                         "its ok type is `%s` but `%s` \
                                          returns `%s`"
                                         (render ok) base (render cod))
                                  else None
                            end
                        | _ ->
                            mk
                              (Printf.sprintf
                                 "it returns `%s`, not a (_, \
                                  Guard.failure) result"
                                 (render b_cod))
                      end
                end)
              vals)
    sources

(* --- R9: effect signatures on exported entry points -------------------- *)

(* [exported_roots], but keeping the provenance: which module exports
   which name, and which graph node it resolved to. The shard-safety
   report and R9 both consume this.

   Coordinator modules live outside the solver dirs (they orchestrate
   rather than solve) but their exports are exactly the surfaces a
   concurrent caller reaches first, so they are certified alongside
   the solver entry points. *)
let coordinator_modules = [ "Shardexec" ]

let entry_points g sources =
  List.concat_map
    (fun s ->
      if (not s.s_solver) && not (List.mem s.s_mod coordinator_modules) then []
      else
        match s.s_intf with
        | Some sg ->
            List.filter_map
              (fun (item : Typedtree.signature_item) ->
                match item.Typedtree.sig_desc with
                | Typedtree.Tsig_value vd ->
                    let name = vd.Typedtree.val_name.Location.txt in
                    Option.map
                      (fun id -> (s, name, id))
                      (Callgraph.find_global g (s.s_mod ^ "." ^ name))
                | _ -> None)
              sg.Typedtree.sig_items
        | None ->
            List.filter_map
              (fun (n : Callgraph.node) ->
                if n.modname = s.s_mod && n.toplevel && n.kind = Callgraph.Def
                then Some (s, n.short, n.id)
                else None)
              (Callgraph.nodes g))
    sources

let r9_effects g eff sources =
  let fresh = keyed () in
  List.filter_map
    (fun (s, name, id) ->
      let es = Effects.signature eff id in
      match Effects.unregistered_writes eff es with
      | [] -> None
      | bad ->
          let n = Callgraph.node g id in
          Some
            (Lint_finding.v ~rule:Lint_finding.R9 ~file:s.s_file ~line:n.line
               ~col:n.col
               ~key:(fresh s.s_file ("effect:" ^ name))
               (Printf.sprintf
                  "exported entry point `%s` writes unregistered global \
                   state (%s) — inferred effect %s: a concurrent shard \
                   would observe or clobber the mutation; register the \
                   cache with Runtime_state (with a validator) or localize \
                   the state"
                  name
                  (String.concat ", "
                     (List.map
                        (fun (site : Effects.site) ->
                          Printf.sprintf "`%s` (%s)" site.Effects.site_name
                            site.Effects.site_what)
                        bad))
                  (Effects.describe eff es))))
    (entry_points g sources)

(* --- R10: local mutable state escaping a fork boundary ----------------- *)

(* Runs on every loaded module, not just solver dirs: the runtime and
   service layers are exactly where Isolate boundaries live. *)
let r10_escape sources =
  List.concat_map
    (fun s ->
      let fresh = keyed () in
      List.filter_map
        (fun (e : Escape.escape) ->
          match e.Escape.esc_kind with
          | Escape.Stored_global _ -> None
          | Escape.Fork_boundary head ->
              Some
                (Lint_finding.v ~rule:Lint_finding.R10 ~file:s.s_file
                   ~line:e.Escape.esc_line ~col:e.Escape.esc_col
                   ~key:
                     (fresh s.s_file
                        (Printf.sprintf "escape:%s@%s" e.Escape.esc_name
                           e.Escape.esc_encl))
                   (Printf.sprintf
                      "local mutable `%s` (%s) escapes across `%s` (line \
                       %d): after the fork the worker mutates a copy and \
                       the writes are lost at the merge — move the \
                       allocation inside the thunk or return the data \
                       through the result channel"
                      e.Escape.esc_name e.Escape.esc_what head
                      e.Escape.esc_bline)))
        (Escape.analyze s.s_impl))
    sources

(* --- entry point ------------------------------------------------------- *)

let run ?effects g sources =
  let eff =
    match effects with
    | Some e -> e
    | None ->
        Effects.analyze g (List.map (fun s -> (s.s_mod, s.s_impl)) sources)
  in
  let tbl = type_table sources in
  r1_tick g sources @ r6_determinism g sources @ r7_marshal tbl sources
  @ r8_drift sources @ r9_effects g eff sources @ r10_escape sources
