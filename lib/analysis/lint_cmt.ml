(* Loading dune's -bin-annot output for the typed lint pass.

   Version discipline: [Cmt_format.read_cmt] and the [binary_annots]
   constructors matched here are stable across 4.14..5.x. Everything
   else about a cmt (its marshalled environment, shapes, ...) is
   ignored; a cmt written by a different compiler version fails the
   magic-number check inside [read_cmt] and is reported as missing
   (degraded coverage), never as a crash. *)

type unit_info = {
  u_module : string;
  u_ml : string option;
  u_mli : string option;
  u_impl : Typedtree.structure option;
  u_intf : Typedtree.signature option;
}

let module_name_of_source file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

let read_annots path =
  if not (Sys.file_exists path) then Error (path ^ ": no such file")
  else
    match (Cmt_format.read_cmt path).Cmt_format.cmt_annots with
    | annots -> Ok annots
    | exception e -> Error (Printf.sprintf "%s: %s" path (Printexc.to_string e))

let read_impl path =
  match read_annots path with
  | Error _ as e -> e
  | Ok (Cmt_format.Implementation str) -> Ok str
  | Ok _ -> Error (path ^ ": not an implementation cmt")

let read_intf path =
  match read_annots path with
  | Error _ as e -> e
  | Ok (Cmt_format.Interface sg) -> Ok sg
  | Ok _ -> Error (path ^ ": not an interface cmti")

(* Dune puts a library's annotations in `<dir>/.<libname>.objs/byte/`.
   When linting from a source checkout (rather than from inside
   `_build/default`, where the @lint alias runs), fall back to the
   default build context. *)
let obj_dir_candidates ~root ~rel_dir ~lib_name =
  let objs base =
    Filename.concat
      (Filename.concat base rel_dir)
      (Filename.concat ("." ^ lib_name ^ ".objs") "byte")
  in
  [ objs root; objs (Filename.concat root (Filename.concat "_build" "default")) ]

let find_obj_dir ~root ~rel_dir ~lib_name =
  List.find_opt Sys.file_exists (obj_dir_candidates ~root ~rel_dir ~lib_name)

let load_units ~root ~rel_dir ~lib_name ~ml ~mli =
  let obj_dir = find_obj_dir ~root ~rel_dir ~lib_name in
  let bases =
    List.sort_uniq String.compare
      (List.map Filename.remove_extension (ml @ mli))
  in
  List.map
    (fun base ->
      let has l ext = List.mem (base ^ ext) l in
      let rel ext =
        if has (if ext = ".ml" then ml else mli) ext then
          Some (Filename.concat rel_dir (base ^ ext))
        else None
      in
      let annot reader ext =
        match obj_dir with
        | None -> None
        | Some d -> begin
            match reader (Filename.concat d (base ^ ext)) with
            | Ok x -> Some x
            | Error _ -> None
          end
      in
      {
        u_module = String.capitalize_ascii base;
        u_ml = rel ".ml";
        u_mli = rel ".mli";
        u_impl = (if has ml ".ml" then annot read_impl ".cmt" else None);
        u_intf = (if has mli ".mli" then annot read_intf ".cmti" else None);
      })
    bases

let degraded_sources units =
  List.concat_map
    (fun u ->
      let miss src annot = match (src, annot) with
        | Some p, None -> [ p ]
        | _ -> []
      in
      miss u.u_ml u.u_impl @ miss u.u_mli u.u_intf)
    units
