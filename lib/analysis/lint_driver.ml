let solver_dirs =
  [ "core"; "cq"; "relational"; "folang"; "covergame"; "lp"; "linsep" ]

type config = {
  root : string;
  rules : Lint_finding.rule list;
  baseline : string option;
  typed : bool;
}

let default_config ~root =
  { root; rules = Lint_finding.all_rules; baseline = None; typed = true }

type report = {
  findings : Lint_finding.t list;
  files_checked : int;
  suppressed : int;
  baselined : int;
  stale_baseline : string list;
  missing_file_baseline : string list;
  typed_modules : int;
  degraded : string list;
}

(* --- baseline --------------------------------------------------------- *)

type baseline_entry = {
  b_rule : Lint_finding.rule;
  b_file : string;
  b_key : string;
  b_reason : string;
}

let split_reason_line line =
  (* " — " (em dash) or " -- " separates entry from reason. *)
  let try_sep sep =
    let n = String.length line and sn = String.length sep in
    let rec go i =
      if i + sn > n then None
      else if String.sub line i sn = sep then
        Some (String.sub line 0 i, String.sub line (i + sn) (n - i - sn))
      else go (i + 1)
    in
    go 0
  in
  match try_sep " \xe2\x80\x94 " with
  | Some _ as r -> r
  | None -> try_sep " -- "

let parse_baseline contents =
  let lines = String.split_on_char '\n' contents in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> begin
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) acc rest
        else
          match split_reason_line trimmed with
          | None ->
              Error
                (Printf.sprintf
                   "baseline line %d: missing the mandatory \xe2\x80\x94 \
                    reason separator: %S"
                   lineno trimmed)
          | Some (entry, reason) -> begin
              let reason = String.trim reason in
              if reason = "" then
                Error
                  (Printf.sprintf
                     "baseline line %d: empty reason (every grandfathered \
                      finding needs a justification)"
                     lineno)
              else
                match
                  String.split_on_char ' ' (String.trim entry)
                  |> List.filter (fun s -> s <> "")
                with
                | [ rule; file; key ] -> begin
                    match Lint_finding.rule_of_string rule with
                    | Some b_rule ->
                        go (lineno + 1)
                          ({ b_rule; b_file = file; b_key = key;
                             b_reason = reason }
                          :: acc)
                          rest
                    | None ->
                        Error
                          (Printf.sprintf "baseline line %d: unknown rule %S"
                             lineno rule)
                  end
                | _ ->
                    Error
                      (Printf.sprintf
                         "baseline line %d: expected `RULE file key \
                          \xe2\x80\x94 reason`, got %S"
                         lineno trimmed)
            end
      end
  in
  go 1 [] lines

let baseline_line (f : Lint_finding.t) =
  Printf.sprintf "%s %s %s \xe2\x80\x94 TODO: justify or fix"
    (Lint_finding.rule_to_string f.rule)
    f.file f.key

let matches_baseline entries (f : Lint_finding.t) =
  List.exists
    (fun e ->
      e.b_rule = f.Lint_finding.rule
      && e.b_file = f.Lint_finding.file
      && e.b_key = f.Lint_finding.key)
    entries

(* --- per-file runs ---------------------------------------------------- *)

let lint_source_counted ?(extra = []) ~rules ~solver (src : Lint_source.t) =
  let enabled r = List.mem r rules in
  let raw =
    List.concat
      [
        (if solver && enabled Lint_finding.R1 then Lint_rules.r1_budget src
         else []);
        (if enabled Lint_finding.R2 then Lint_rules.r2_exceptions src else []);
        (if enabled Lint_finding.R3 then Lint_rules.r3_comparisons src
         else []);
        (if solver && enabled Lint_finding.R4 then Lint_rules.r4_interface src
         else []);
        (if solver && enabled Lint_finding.R5 then Lint_rules.r5_state src
         else []);
      ]
  in
  (* R0 findings (malformed directives) ride along unconditionally: a
     broken suppression must never pass silently. [extra] is the typed
     findings attributed to this file — suppression directives govern
     them exactly like the Parsetree findings. *)
  Lint_source.apply src (raw @ extra)

let lint_source ~rules ~solver src =
  fst (lint_source_counted ~rules ~solver src)

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))

let list_dir path =
  match Sys.readdir path with
  | entries ->
      Array.sort String.compare entries;
      Ok (Array.to_list entries)
  | exception Sys_error msg -> Error msg

let ( let* ) = Result.bind

(* --- directory scan --------------------------------------------------- *)

type dirspec = {
  ds_rel : string;  (* root-relative, e.g. "lib/core" or "bin" *)
  ds_path : string;  (* filesystem path *)
  ds_solver : bool;
  ds_lib : bool;  (* library dir: .mli discipline + typed pass *)
  ds_ml : string list;
  ds_mli : string list;
}

(* [bin]/[bench] hold executables: no .mli discipline, no solver
   rules, no cmt loading — R0/R2/R3 apply. *)
let exec_dirs = [ "bin"; "bench" ]

let scan_dirs root =
  let lib_dir = Filename.concat root "lib" in
  let* subdirs = list_dir lib_dir in
  let subdirs =
    List.filter (fun d -> Sys.is_directory (Filename.concat lib_dir d)) subdirs
  in
  let spec ~rel ~path ~solver ~lib =
    let* entries = list_dir path in
    Ok
      {
        ds_rel = rel;
        ds_path = path;
        ds_solver = solver;
        ds_lib = lib;
        ds_ml = List.filter (fun f -> Filename.check_suffix f ".ml") entries;
        ds_mli = List.filter (fun f -> Filename.check_suffix f ".mli") entries;
      }
  in
  let* libs =
    List.fold_left
      (fun acc d ->
        let* acc = acc in
        let* s =
          spec
            ~rel:(Filename.concat "lib" d)
            ~path:(Filename.concat lib_dir d)
            ~solver:(List.mem d solver_dirs) ~lib:true
        in
        Ok (s :: acc))
      (Ok []) subdirs
  in
  let* execs =
    List.fold_left
      (fun acc d ->
        let* acc = acc in
        let path = Filename.concat root d in
        if Sys.file_exists path && Sys.is_directory path then
          let* s = spec ~rel:d ~path ~solver:false ~lib:false in
          Ok (s :: acc)
        else Ok acc)
      (Ok []) exec_dirs
  in
  Ok (List.rev libs @ List.rev execs)

(* --- typed pass ------------------------------------------------------- *)

(* The library name names the [.objs] directory the cmts live in; read
   it from the dir's dune file rather than assuming it matches the
   directory name. *)
let lib_name_of_dune path =
  match read_file path with
  | Error _ -> None
  | Ok s ->
      let len = String.length s in
      let is_word c =
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_'
      in
      let rec find i =
        if i + 5 > len then None
        else if String.sub s i 5 = "(name" then begin
          let j = ref (i + 5) in
          while
            !j < len && (s.[!j] = ' ' || s.[!j] = '\n' || s.[!j] = '\t')
          do
            incr j
          done;
          let k = ref !j in
          while !k < len && is_word s.[!k] do
            incr k
          done;
          if !k > !j then Some (String.sub s !j (!k - !j)) else None
        end
        else find (i + 1)
      in
      find 0

let load_typed ~root dirs =
  List.fold_left
    (fun (sources, degraded) ds ->
      if not ds.ds_lib then (sources, degraded)
      else
        match lib_name_of_dune (Filename.concat ds.ds_path "dune") with
        | None ->
            ( sources,
              degraded
              @ List.map (Filename.concat ds.ds_rel) (ds.ds_ml @ ds.ds_mli) )
        | Some lib_name ->
            let units =
              Lint_cmt.load_units ~root ~rel_dir:ds.ds_rel ~lib_name
                ~ml:ds.ds_ml ~mli:ds.ds_mli
            in
            let srcs =
              List.filter_map
                (fun (u : Lint_cmt.unit_info) ->
                  match (u.u_impl, u.u_ml) with
                  | Some impl, Some file ->
                      Some
                        {
                          Typed_rules.s_mod = u.u_module;
                          s_file = file;
                          s_mli = u.u_mli;
                          s_solver = ds.ds_solver;
                          s_impl = impl;
                          s_intf = u.u_intf;
                        }
                  | _ -> None)
                units
            in
            (sources @ srcs, degraded @ Lint_cmt.degraded_sources units))
    ([], []) dirs

let impls_of sources =
  List.map
    (fun (s : Typed_rules.source) -> (s.Typed_rules.s_mod, s.s_impl))
    sources

let build_graph sources = Callgraph.build (impls_of sources)

let callgraph config =
  let* dirs = scan_dirs config.root in
  let sources, _ = load_typed ~root:config.root dirs in
  Ok (build_graph sources)

(* --- the shard-safety report and R11 ----------------------------------- *)

let shard_report_file = "docs/SHARD_SAFETY.md"

let par_report config =
  let* dirs = scan_dirs config.root in
  let sources, _ = load_typed ~root:config.root dirs in
  match sources with
  | [] ->
      Error
        "no typed input: run `dune build` first so .cmt files exist under \
         _build"
  | srcs ->
      let g = build_graph srcs in
      let eff = Effects.analyze g (impls_of srcs) in
      Ok (Shard_report.generate g eff srcs)

let taint_report_file = "docs/EXACTNESS.md"

let taint_report config =
  let* dirs = scan_dirs config.root in
  let sources, _ = load_typed ~root:config.root dirs in
  match sources with
  | [] ->
      Error
        "no typed input: run `dune build` first so .cmt files exist under \
         _build"
  | srcs ->
      let g = build_graph srcs in
      let tnt = Taint.analyze g (impls_of srcs) in
      Ok (Protocol_rules.exactness_report tnt g srcs)

(* R11 lives here rather than in [Typed_rules]: drift is a property of
   the lint root (the committed file), not of the typed trees. The
   finding attaches to the report file itself, which is never scanned,
   so the caller appends it to the stream directly — suppression
   directives cannot apply, the baseline still can. *)
let r11_drift config g eff srcs =
  let want = Shard_report.generate g eff srcs in
  let mk msg =
    [
      Lint_finding.v ~rule:Lint_finding.R11 ~file:shard_report_file ~line:1
        ~col:0 ~key:"drift:par-report" msg;
    ]
  in
  match read_file (Filename.concat config.root shard_report_file) with
  | Error _ ->
      mk
        "the shard-safety report is missing: generate it with `dune exec \
         bin/lint.exe -- --root . --par-report > docs/SHARD_SAFETY.md` and \
         commit it"
  | Ok have ->
      if have = want then []
      else
        mk
          "the shard-safety report is stale: an entry point's inferred \
           effect signature changed; regenerate with `dune exec bin/lint.exe \
           -- --root . --par-report > docs/SHARD_SAFETY.md` and review which \
           entry points gained or lost shard-safety before committing"

(* Same committed-report discipline for the exactness boundary: R11
   with key [drift:taint-report] against [docs/EXACTNESS.md]. *)
let r11_taint_drift config tnt g srcs =
  let want = Protocol_rules.exactness_report tnt g srcs in
  let mk msg =
    [
      Lint_finding.v ~rule:Lint_finding.R11 ~file:taint_report_file ~line:1
        ~col:0 ~key:"drift:taint-report" msg;
    ]
  in
  match read_file (Filename.concat config.root taint_report_file) with
  | Error _ ->
      mk
        "the exactness report is missing: generate it with `dune exec \
         bin/lint.exe -- --root . --taint-report > docs/EXACTNESS.md` and \
         commit it"
  | Ok have ->
      if have = want then []
      else
        mk
          "the exactness report is stale: an entry point's taint verdict \
           changed; regenerate with `dune exec bin/lint.exe -- --root . \
           --taint-report > docs/EXACTNESS.md` and review which entry \
           points moved across the exactness boundary before committing"

(* --- the tree run ----------------------------------------------------- *)

let run config =
  let* baseline =
    match config.baseline with
    | None -> Ok []
    | Some path ->
        let* contents = read_file path in
        parse_baseline contents
  in
  let* dirs = scan_dirs config.root in
  let typed_sources, degraded =
    if config.typed then load_typed ~root:config.root dirs else ([], [])
  in
  (* One graph + one effect pass feed the typed rules, R11's drift
     check, and (via [par_report]) the report itself. *)
  let typed_findings, r11_findings =
    match typed_sources with
    | [] -> ([], [])
    | srcs ->
        let g = build_graph srcs in
        let eff = Effects.analyze g (impls_of srcs) in
        (* The taint pass feeds both the protocol rules and the
           exactness half of R11's drift check; compute it once, and
           only when something enabled wants it. *)
        let need_taint =
          List.exists
            (fun r -> List.mem r config.rules)
            [
              Lint_finding.R11; Lint_finding.R12; Lint_finding.R13;
              Lint_finding.R14;
            ]
        in
        let tnt =
          if need_taint then Some (Taint.analyze g (impls_of srcs)) else None
        in
        let proto =
          match tnt with
          | Some tnt -> Protocol_rules.run ~rules:config.rules tnt g srcs
          | None -> []
        in
        ( List.filter
            (fun (f : Lint_finding.t) -> List.mem f.rule config.rules)
            (Typed_rules.run ~effects:eff g srcs)
          @ proto,
          if List.mem Lint_finding.R11 config.rules then
            r11_drift config g eff srcs
            @ (match tnt with
              | Some tnt -> r11_taint_drift config tnt g srcs
              | None -> [])
          else [] )
  in
  let typed_by_file = Hashtbl.create 32 in
  List.iter
    (fun (f : Lint_finding.t) ->
      let prev =
        match Hashtbl.find_opt typed_by_file f.file with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace typed_by_file f.file (f :: prev))
    typed_findings;
  let typed_covered = Hashtbl.create 32 in
  List.iter
    (fun (s : Typed_rules.source) ->
      Hashtbl.replace typed_covered s.Typed_rules.s_file ())
    typed_sources;
  let enabled r = List.mem r config.rules in
  let* per_dir =
    List.fold_left
      (fun acc ds ->
        let* acc = acc in
        let structural =
          if ds.ds_lib && enabled Lint_finding.R4 then
            Lint_rules.r4_missing_mli ~dir:ds.ds_rel ~ml:ds.ds_ml
              ~mli:ds.ds_mli
          else []
        in
        let* file_findings =
          List.fold_left
            (fun acc file ->
              let* acc = acc in
              let fs_path = Filename.concat ds.ds_path file in
              let rel_path = Filename.concat ds.ds_rel file in
              let* src = Lint_source.load ~path:rel_path fs_path in
              (* The typed pass subsumes R1 for files it has a cmt
                 for; files without one keep the Parsetree R1
                 (degraded, but never silent). *)
              let eff_rules =
                if Hashtbl.mem typed_covered rel_path then
                  List.filter (fun r -> r <> Lint_finding.R1) config.rules
                else config.rules
              in
              let extra =
                match Hashtbl.find_opt typed_by_file rel_path with
                | Some l -> List.rev l
                | None -> []
              in
              let findings, nsup =
                lint_source_counted ~extra ~rules:eff_rules
                  ~solver:ds.ds_solver src
              in
              Ok ((1, nsup, findings) :: acc))
            (Ok [])
            (ds.ds_ml @ ds.ds_mli)
        in
        Ok ((structural, file_findings) :: acc))
      (Ok []) dirs
  in
  let files_checked =
    List.fold_left
      (fun n (_, per_file) ->
        List.fold_left (fun n (c, _, _) -> n + c) n per_file)
      0 per_dir
  in
  let suppressed =
    List.fold_left
      (fun n (_, per_file) ->
        List.fold_left (fun n (_, s, _) -> n + s) n per_file)
      0 per_dir
  in
  let all =
    r11_findings
    @ List.concat_map
        (fun (structural, per_file) ->
          structural @ List.concat_map (fun (_, _, fs) -> fs) per_file)
        per_dir
  in
  (* Suppression filtering already happened per file; now apply the
     baseline. *)
  let kept, grandfathered =
    List.partition (fun f -> not (matches_baseline baseline f)) all
  in
  let unmatched =
    List.filter
      (fun e ->
        not
          (List.exists
             (fun (f : Lint_finding.t) ->
               e.b_rule = f.rule && e.b_file = f.file && e.b_key = f.key)
             all))
      baseline
  in
  (* An unmatched entry whose file is gone is a distinct defect from a
     fixed finding in a live file: the entry can only be deleted. *)
  let missing_file, stale =
    List.partition
      (fun e ->
        not (Sys.file_exists (Filename.concat config.root e.b_file)))
      unmatched
  in
  let render e =
    Printf.sprintf "%s %s %s"
      (Lint_finding.rule_to_string e.b_rule)
      e.b_file e.b_key
  in
  Ok
    {
      findings = List.sort Lint_finding.compare kept;
      files_checked;
      suppressed;
      baselined = List.length grandfathered;
      stale_baseline = List.map render stale;
      missing_file_baseline = List.map render missing_file;
      typed_modules = List.length typed_sources;
      degraded;
    }
