let solver_dirs =
  [ "core"; "cq"; "relational"; "folang"; "covergame"; "lp"; "linsep" ]

type config = {
  root : string;
  rules : Lint_finding.rule list;
  baseline : string option;
}

let default_config ~root = { root; rules = Lint_finding.all_rules; baseline = None }

type report = {
  findings : Lint_finding.t list;
  files_checked : int;
  suppressed : int;
  baselined : int;
  stale_baseline : string list;
}

(* --- baseline --------------------------------------------------------- *)

type baseline_entry = {
  b_rule : Lint_finding.rule;
  b_file : string;
  b_key : string;
  b_reason : string;
}

let split_reason_line line =
  (* " — " (em dash) or " -- " separates entry from reason. *)
  let try_sep sep =
    let n = String.length line and sn = String.length sep in
    let rec go i =
      if i + sn > n then None
      else if String.sub line i sn = sep then
        Some (String.sub line 0 i, String.sub line (i + sn) (n - i - sn))
      else go (i + 1)
    in
    go 0
  in
  match try_sep " \xe2\x80\x94 " with
  | Some _ as r -> r
  | None -> try_sep " -- "

let parse_baseline contents =
  let lines = String.split_on_char '\n' contents in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> begin
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) acc rest
        else
          match split_reason_line trimmed with
          | None ->
              Error
                (Printf.sprintf
                   "baseline line %d: missing the mandatory \xe2\x80\x94 \
                    reason separator: %S"
                   lineno trimmed)
          | Some (entry, reason) -> begin
              let reason = String.trim reason in
              if reason = "" then
                Error
                  (Printf.sprintf
                     "baseline line %d: empty reason (every grandfathered \
                      finding needs a justification)"
                     lineno)
              else
                match
                  String.split_on_char ' ' (String.trim entry)
                  |> List.filter (fun s -> s <> "")
                with
                | [ rule; file; key ] -> begin
                    match Lint_finding.rule_of_string rule with
                    | Some b_rule ->
                        go (lineno + 1)
                          ({ b_rule; b_file = file; b_key = key;
                             b_reason = reason }
                          :: acc)
                          rest
                    | None ->
                        Error
                          (Printf.sprintf "baseline line %d: unknown rule %S"
                             lineno rule)
                  end
                | _ ->
                    Error
                      (Printf.sprintf
                         "baseline line %d: expected `RULE file key \
                          \xe2\x80\x94 reason`, got %S"
                         lineno trimmed)
            end
      end
  in
  go 1 [] lines

let baseline_line (f : Lint_finding.t) =
  Printf.sprintf "%s %s %s \xe2\x80\x94 TODO: justify or fix"
    (Lint_finding.rule_to_string f.rule)
    f.file f.key

let matches_baseline entries (f : Lint_finding.t) =
  List.exists
    (fun e ->
      e.b_rule = f.Lint_finding.rule
      && e.b_file = f.Lint_finding.file
      && e.b_key = f.Lint_finding.key)
    entries

(* --- per-file and tree runs ------------------------------------------ *)

let lint_source_counted ~rules ~solver (src : Lint_source.t) =
  let enabled r = List.mem r rules in
  let raw =
    List.concat
      [
        (if solver && enabled Lint_finding.R1 then Lint_rules.r1_budget src
         else []);
        (if enabled Lint_finding.R2 then Lint_rules.r2_exceptions src else []);
        (if enabled Lint_finding.R3 then Lint_rules.r3_comparisons src
         else []);
        (if solver && enabled Lint_finding.R4 then Lint_rules.r4_interface src
         else []);
        (if solver && enabled Lint_finding.R5 then Lint_rules.r5_state src
         else []);
      ]
  in
  (* R0 findings (malformed directives) ride along unconditionally:
     a broken suppression must never pass silently. *)
  Lint_source.apply src raw

let lint_source ~rules ~solver src =
  fst (lint_source_counted ~rules ~solver src)

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))

let list_dir path =
  match Sys.readdir path with
  | entries ->
      Array.sort String.compare entries;
      Ok (Array.to_list entries)
  | exception Sys_error msg -> Error msg

let ( let* ) = Result.bind

let run config =
  let lib_dir = Filename.concat config.root "lib" in
  let* baseline =
    match config.baseline with
    | None -> Ok []
    | Some path ->
        let* contents = read_file path in
        parse_baseline contents
  in
  let* subdirs = list_dir lib_dir in
  let subdirs =
    List.filter
      (fun d -> Sys.is_directory (Filename.concat lib_dir d))
      subdirs
  in
  let enabled r = List.mem r config.rules in
  let* per_dir =
    List.fold_left
      (fun acc dir ->
        let* acc = acc in
        let dir_path = Filename.concat lib_dir dir in
        let* entries = list_dir dir_path in
        let ml = List.filter (fun f -> Filename.check_suffix f ".ml") entries in
        let mli =
          List.filter (fun f -> Filename.check_suffix f ".mli") entries
        in
        let solver = List.mem dir solver_dirs in
        let structural =
          if enabled Lint_finding.R4 then
            Lint_rules.r4_missing_mli
              ~dir:(Filename.concat "lib" dir)
              ~ml ~mli
          else []
        in
        let* file_findings =
          List.fold_left
            (fun acc file ->
              let* acc = acc in
              let fs_path = Filename.concat dir_path file in
              let rel_path =
                Filename.concat (Filename.concat "lib" dir) file
              in
              let* src = Lint_source.load ~path:rel_path fs_path in
              let findings, nsup =
                lint_source_counted ~rules:config.rules ~solver src
              in
              Ok ((1, nsup, findings) :: acc))
            (Ok []) (ml @ mli)
        in
        Ok ((structural, file_findings) :: acc))
      (Ok []) subdirs
  in
  let files_checked =
    List.fold_left
      (fun n (_, per_file) ->
        List.fold_left (fun n (c, _, _) -> n + c) n per_file)
      0 per_dir
  in
  let suppressed =
    List.fold_left
      (fun n (_, per_file) ->
        List.fold_left (fun n (_, s, _) -> n + s) n per_file)
      0 per_dir
  in
  let all =
    List.concat_map
      (fun (structural, per_file) ->
        structural @ List.concat_map (fun (_, _, fs) -> fs) per_file)
      per_dir
  in
  (* Suppression filtering already happened per file; now apply the
     baseline. *)
  let kept, grandfathered =
    List.partition (fun f -> not (matches_baseline baseline f)) all
  in
  let stale =
    List.filter_map
      (fun e ->
        if
          List.exists
            (fun (f : Lint_finding.t) ->
              e.b_rule = f.rule && e.b_file = f.file && e.b_key = f.key)
            all
        then None
        else
          Some
            (Printf.sprintf "%s %s %s"
               (Lint_finding.rule_to_string e.b_rule)
               e.b_file e.b_key))
      baseline
  in
  Ok
    {
      findings = List.sort Lint_finding.compare kept;
      files_checked;
      suppressed;
      baselined = List.length grandfathered;
      stale_baseline = stale;
    }
