(* SARIF 2.1.0 output, the minimal subset GitHub code scanning
   ingests: one run, one driver, the rule catalogue, and one result
   per finding with a physical location and a stable fingerprint (the
   baseline key, so annotations track findings across unrelated
   edits). Hand-rolled like the JSON output — no dependencies. *)

let esc = Lint_finding.json_escape

let rule_ids =
  Lint_finding.R0 :: Lint_finding.all_rules
  |> List.map (fun r ->
         Printf.sprintf
           "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"}}"
           (Lint_finding.rule_to_string r)
           (esc (Lint_finding.rule_doc r)))

let result (f : Lint_finding.t) =
  Printf.sprintf
    "{\"ruleId\":\"%s\",\"level\":\"error\",\"message\":{\"text\":\"%s\"},\
     \"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\
     \"region\":{\"startLine\":%d,\"startColumn\":%d}}}],\
     \"partialFingerprints\":{\"cqlintKey\":\"%s\"}}"
    (Lint_finding.rule_to_string f.rule)
    (esc f.message) (esc f.file) f.line
    (f.col + 1) (* SARIF columns are 1-based *)
    (esc (f.file ^ "#" ^ f.key))

let to_sarif findings =
  Printf.sprintf
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
     \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"cqlint\",\
     \"informationUri\":\"docs/LINT.md\",\"rules\":[%s]}},\"results\":[%s]}]}"
    (String.concat "," rule_ids)
    (String.concat "," (List.map result findings))
