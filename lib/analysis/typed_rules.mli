(** The typed lint rules, evaluated over {!Callgraph}'s whole-library
    mention graph and the loaded typed trees:

    - {b R1'} — interprocedural budget discipline: every [while]/[for]
      loop and every call-graph cycle in a solver module must reach
      [Budget.tick], through any number of (cross-module) helpers.
      Reported under [R1] with the same keys as the Parsetree rule, so
      existing suppressions and baseline entries keep working.
    - {b R6} — determinism: no PRNG, wall-clock read, or
      order-dependent [Hashtbl] iteration on any path reachable from a
      solver module's exported surface ([Budget.Clock] is exempt: it
      lives outside the solver dirs).
    - {b R7} — marshal safety: the ok type of every application of
      [Isolate.run] (or of a [Guard.runner]'s [.run] field) must be
      transitively closure-free and custom-block-free, walked through
      the library's own type declarations.
    - {b R8} — [_b] drift: each budgeted [_b] entry point in an
      interface must agree with its unbudgeted twin modulo the
      [?budget] argument and the [(_, Guard.failure) result] wrapper.
    - {b R9} — effect signatures: every exported solver entry point
      gets an inferred {!Effects} signature; writing a global that is
      not [Runtime_state]-registered is a finding. Pure and
      registered-cache-only entry points are certified shard-safe in
      the [--par-report] output.
    - {b R10} — fork-time aliasing: a locally-created mutable value
      ({!Escape}) must not cross an [Isolate.run]/[Isolate.spawn] or
      runner-field boundary, directly or captured in a closure.

    (R11, shard-safety {e drift}, lives in {!Lint_driver}: it compares
    the committed report file against regeneration, which needs the
    lint root rather than typed trees.)

    Suppression directives and the baseline are applied by the caller
    (the driver merges these findings into the per-file stream before
    [Lint_source.apply]). *)

type source = {
  s_mod : string;  (** compilation unit name, e.g. ["Cq_sep"] *)
  s_file : string;  (** root-relative [.ml] path findings attach to *)
  s_mli : string option;  (** root-relative [.mli] path (R8 findings) *)
  s_solver : bool;  (** in a worst-case-exponential library dir *)
  s_impl : Typedtree.structure;
  s_intf : Typedtree.signature option;
}

val run : ?effects:Effects.t -> Callgraph.t -> source list -> Lint_finding.t list
(** All typed findings over the loaded set, unfiltered and unsorted.
    The graph must have been built from exactly the [s_impl]s of
    [sources] (plus any extra context modules). [?effects] lets the
    driver share one {!Effects.analyze} pass with the shard-safety
    report; omitted, it is computed here. *)

val exported_roots : Callgraph.t -> source list -> int list
(** R6's root set: nodes for every value exported by a solver module's
    interface — or, without a [cmti], every top-level definition of
    the module (degrading towards more coverage). Exposed for tests
    and [--dump-callgraph] diagnostics. *)

val entry_points : Callgraph.t -> source list -> (source * string * int) list
(** {!exported_roots} with provenance: [(module source, exported name,
    graph node)] — the shared input of R9 and {!Shard_report}. *)
