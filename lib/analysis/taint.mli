(** Interprocedural float-taint inference over the {!Callgraph}: every
    top-level binding gets a {e return-taint} summary — does the value
    it evaluates to derive from uncertified floating point? — computed
    bottom-up over the Tarjan SCC condensation in the style of
    {!Effects}, plus a coarser {e float-reachability} bit used to
    separate "exact" from "certified" entry points in the
    [--taint-report].

    The per-body evaluation is a small dataflow interpretation, not a
    reachability query: local [let]/[match] bindings carry the taint
    of their right-hand side, application results carry the callee's
    {e summary} (never the arguments' taint — that is what lets
    [Certify.hyperplane w] launder a float weight vector into an exact
    certificate), and conditions are deliberately dropped. The
    resulting blind spots all point the quiet way and are documented
    in [docs/LINT.md] (R12):

    - control-only dependence ([if float_gap < eps then ... ]) is not
      taint — verdicts must carry their certificates for the analysis
      to see them, which the library's API style enforces;
    - taint stored into an initially-clean mutable local is not
      tracked — initialize accumulators from a value of their final
      provenance;
    - exception payloads are not tracked through [raise].

    Sources are float literals, float primitives, [Float.*],
    [Rat.to_float] and the float-valued constants ([infinity], [nan],
    ...); unknown externals propagate the disjunction of their
    argument taints (so [ref]/[!]/[Array.get] behave naturally).
    Sanitizers — [Certify.hyperplane]/[hyperplane_b]/[farkas] and the
    exact [Rat.of_float] — return clean by contract, as do the trusted
    exact/bookkeeping modules ([Rat], [Bigint], [Budget], [Guard],
    [Runtime_state], string formatting). *)

type t

val analyze : Callgraph.t -> (string * Typedtree.structure) list -> t
(** [analyze g impls] — [impls] must be the same [(modname,
    structure)] list [g] was built from (anchors round-trip through
    {!Callgraph.node_at}). *)

val return_taint : t -> int -> string option
(** Post-fixpoint summary of a top-level binding node: [Some witness]
    when its return value derives from an unsanitized float source;
    the witness names the source and the chain it travelled. [None]
    for clean nodes and for nodes the pass did not anchor (nested
    bindings, loops, externals). *)

val touches_float : t -> int -> bool
(** The node's body, or any defined callee's (outside the exempt
    runtime-bookkeeping modules), mentions a float source at all —
    clean summaries over a float-touching body are the "certified"
    rows of the exactness report. *)

val bodies : t -> (int * Typedtree.expression) list
(** The anchored top-level bindings, as [(Callgraph node, defining
    expression)], in ascending SCC order (callees first) — the walk
    substrate shared with {!Protocol_rules}. *)

val scan_calls :
  t ->
  heads:(string -> bool) ->
  (node:int -> head:string -> loc:Location.t -> args:string option list -> unit) ->
  unit
(** Visit every application of a matching external head anywhere under
    an anchored body, with the taint of each positional argument
    evaluated in the local environment at that point — the
    serialization-sink scan of R12. [node] is the enclosing top-level
    binding. *)

(**/**)

val source_head : string -> bool
val sanitizer_head : string -> bool
(** Name classifiers, exposed for tests. *)
