(** The shard-safety report: deterministic markdown mapping every
    exported solver entry point ({!Typed_rules.entry_points}) to its
    inferred {!Effects} signature and shard-safety verdict.

    [bin/lint.exe --par-report] prints it; the committed copy at
    [docs/SHARD_SAFETY.md] is the contract the sharding layer consumes,
    and R11 ({!Lint_driver}) fails when the two differ. *)

val generate : Callgraph.t -> Effects.t -> Typed_rules.source list -> string
(** Byte-deterministic for a fixed tree: modules and entries sorted,
    no timestamps. Ends with a newline. *)
