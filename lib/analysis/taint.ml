(* Interprocedural float-taint inference. See taint.mli for the
   contract and the documented blind spots; the shape of the pass —
   anchor top-level bindings to Callgraph nodes, then one bottom-up
   fixpoint over the SCC condensation — is Effects', the per-body
   evaluation is a small taint interpreter instead of an effect
   join. *)

(* --- name tables ------------------------------------------------------ *)

(* Applications whose result is float-derived by definition. Names are
   post-[Callgraph.global_name], i.e. with the implicit [Stdlib.]
   stripped. *)
let float_op_heads =
  [
    "+."; "-."; "*."; "/."; "~-."; "~+."; "**"; "sqrt"; "exp"; "log";
    "log10"; "log1p"; "expm1"; "cos"; "sin"; "tan"; "acos"; "asin";
    "atan"; "atan2"; "cosh"; "sinh"; "tanh"; "ceil"; "floor"; "abs_float";
    "mod_float"; "frexp"; "ldexp"; "modf"; "float"; "float_of_int";
    "float_of_string"; "float_of_string_opt"; "Rat.to_float";
  ]

(* Float-valued constants referenced as bare idents. *)
let float_value_idents =
  [
    "infinity"; "neg_infinity"; "nan"; "max_float"; "min_float";
    "epsilon_float";
  ]

let source_head n =
  List.mem n float_op_heads
  || List.mem n float_value_idents
  || (String.length n > 6 && String.sub n 0 6 = "Float.")

(* Certification boundary: these launder float inputs into exact
   answers by re-deriving them in Rat — their results are clean no
   matter what flows in. *)
let sanitizer_head n =
  match n with
  | "Certify.hyperplane" | "Certify.hyperplane_b" | "Certify.farkas"
  | "Rat.of_float" ->
      true
  | _ -> false

(* Modules whose results are clean by contract: the exact arithmetic
   core (what a sanitizer returns), runtime bookkeeping (budget
   deadlines are floats but never data), and string rendering (once
   text, a float cannot re-enter arithmetic without float_of_string —
   itself a source). *)
let trusted_modules =
  [
    "Certify"; "Rat"; "Bigint"; "Budget"; "Guard"; "Runtime_state";
    "Printf"; "Format"; "String"; "Bytes"; "Buffer"; "Char"; "Digest";
    "Marshal"; "Filename"; "Sys"; "Unix"; "Wal";
  ]

(* Modules whose float mentions do not count towards float
   reachability: budget bookkeeping is timing, not data. *)
let float_exempt_modules = [ "Budget"; "Guard"; "Runtime_state" ]

let module_of n = match String.index_opt n '.' with
  | Some i -> String.sub n 0 i
  | None -> n

let trusted_head n = List.mem (module_of n) trusted_modules

(* --- analysis state --------------------------------------------------- *)

type t = {
  t_graph : Callgraph.t;
  t_ret : string option array;  (* return-taint witness per node *)
  t_flo : bool array;  (* float reachability per node *)
  t_bodies : (int * Typedtree.expression) list;  (* ascending SCC order *)
}

let return_taint t id = t.t_ret.(id)
let touches_float t id = t.t_flo.(id)
let bodies t = t.t_bodies

(* Local environments map stamped ident keys to witnesses; absent =
   clean. Stamps are globally unique, so one mutable table per body is
   safe across branches and shadowing. *)
type env = (string, string) Hashtbl.t

let ( <|> ) a b = match a with Some _ -> a | None -> b ()

let anchor (e : Typedtree.expression) =
  let p = e.exp_loc.Location.loc_start in
  Printf.sprintf "%s:%d" p.Lexing.pos_fname p.Lexing.pos_lnum

let head_name (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Callgraph.global_name p
  | _ -> None

let bind_idents (env : env) pat w =
  List.iter
    (fun id ->
      let k = Ident.unique_name id in
      match w with
      | Some why -> Hashtbl.replace env k why
      | None -> Hashtbl.remove env k)
    (Typedtree.pat_bound_idents pat)

(* --- the taint interpreter -------------------------------------------- *)

let rec eval t (env : env) (e : Typedtree.expression) : string option =
  match e.exp_desc with
  | Texp_constant (Asttypes.Const_float _) ->
      Some (Printf.sprintf "float literal at %s" (anchor e))
  | Texp_constant _ -> None
  | Texp_ident (p, _, _) -> ident_taint t env e p
  | Texp_apply (hd, args) -> apply_taint t env e hd args
  | Texp_let (_, vbs, body) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          bind_idents env vb.vb_pat (eval t env vb.vb_expr))
        vbs;
      eval t env body
  | Texp_match (scr, cases, _) ->
      let ts = eval t env scr in
      List.fold_left
        (fun acc (c : Typedtree.computation Typedtree.case) ->
          bind_idents env c.c_lhs ts;
          acc <|> fun () -> eval t env c.c_rhs)
        None cases
  | Texp_try (body, cases) ->
      (* Exception payloads are not tracked (documented blind spot):
         handler bindings start clean. *)
      List.fold_left
        (fun acc (c : Typedtree.value Typedtree.case) ->
          acc <|> fun () -> eval t env c.c_rhs)
        (eval t env body) cases
  | Texp_ifthenelse (_, a, b) ->
      (* Conditions are control, not data: floats may decide how fast
         or whether to escalate, never what the answer is. *)
      (eval t env a <|> fun () ->
       match b with Some b -> eval t env b | None -> None)
  | Texp_sequence (_, b) -> eval t env b
  | Texp_tuple es ->
      List.fold_left (fun acc e -> acc <|> fun () -> eval t env e) None es
  | Texp_construct (_, _, es) ->
      List.fold_left (fun acc e -> acc <|> fun () -> eval t env e) None es
  | Texp_variant (_, eo) -> (
      match eo with Some e -> eval t env e | None -> None)
  | Texp_field (r, _, _) -> eval t env r
  | Texp_setfield _ -> None
  | Texp_while _ | Texp_for _ -> None
  | _ -> children_or t env e

(* Fallback for constructors whose shape is not stable across the
   4.14–5.2 matrix (functions, records, letops, ...): the taint of the
   value is over-approximated by the disjunction of its immediate
   sub-expressions — for a function that is exactly the body, i.e. the
   summary of a later application. *)
and children_or t env e =
  let acc = ref None in
  let iter =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun _ ce -> acc := !acc <|> fun () -> eval t env ce);
    }
  in
  Tast_iterator.default_iterator.expr iter e;
  !acc

and ident_taint t env e p =
  match Callgraph.local_key p with
  | Some k when Hashtbl.mem env k -> Some (Hashtbl.find env k)
  | _ -> (
      match Callgraph.global_name p with
      | Some n when sanitizer_head n -> None
      | Some n when source_head n ->
          Some (Printf.sprintf "%s at %s" n (anchor e))
      | Some n when trusted_head n -> None
      | _ -> (
          match Callgraph.resolve t.t_graph p with
          | Some id -> t.t_ret.(id)
          | None -> None))

and apply_taint t env e hd args =
  let arg_or () =
    List.fold_left
      (fun acc (_, a) ->
        acc <|> fun () ->
        match a with Some a -> eval t env a | None -> None)
      None args
  in
  match hd.exp_desc with
  | Texp_ident (p, _, _) -> (
      match Callgraph.global_name p with
      | Some n when sanitizer_head n -> None
      | Some n when source_head n ->
          Some (Printf.sprintf "result of %s at %s" n (anchor e))
      | Some n when trusted_head n -> None
      | _ -> (
          match Callgraph.local_key p with
          | Some k when Hashtbl.mem env k -> Some (Hashtbl.find env k)
          | _ -> (
              match Callgraph.resolve t.t_graph p with
              | Some id ->
                  (* Defined callee: the summary only. Arguments are
                     deliberately dropped — that is what makes a
                     sanitizing wrapper sanitize. *)
                  t.t_ret.(id)
              | None ->
                  (* Unknown external: conservative argument
                     propagation (ref, !, Array.get, comparisons). *)
                  arg_or ())))
  | _ -> (eval t env hd <|> arg_or)

(* --- float reachability ----------------------------------------------- *)

let local_floats t (e : Typedtree.expression) =
  let found = ref false in
  let callee_hit p =
    match Callgraph.resolve t.t_graph p with
    | Some id ->
        t.t_flo.(id)
        && not
             (List.mem
                (Callgraph.node t.t_graph id).Callgraph.modname
                float_exempt_modules)
    | None -> false
  in
  let name_hit p =
    match Callgraph.global_name p with
    | Some n -> source_head n || sanitizer_head n
    | None -> false
  in
  let iter =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self ce ->
          (match ce.Typedtree.exp_desc with
          | Texp_constant (Asttypes.Const_float _) -> found := true
          | Texp_ident (p, _, _) ->
              if name_hit p || callee_hit p then found := true
          | _ -> ());
          Tast_iterator.default_iterator.expr self ce);
    }
  in
  iter.Tast_iterator.expr iter e;
  !found

(* --- anchoring and the fixpoint --------------------------------------- *)

let toplevel_bodies g impls =
  let acc = ref [] in
  List.iter
    (fun (modname, (str : Typedtree.structure)) ->
      List.iter
        (fun (si : Typedtree.structure_item) ->
          match si.str_desc with
          | Typedtree.Tstr_value (_, vbs) ->
              List.iter
                (fun (vb : Typedtree.value_binding) ->
                  let loc = vb.Typedtree.vb_pat.Typedtree.pat_loc in
                  match
                    Callgraph.node_at g ~modname
                      ~line:loc.Location.loc_start.pos_lnum
                      ~col:
                        (loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
                  with
                  | Some id -> acc := (id, vb.Typedtree.vb_expr) :: !acc
                  | None -> ())
                vbs
          | _ -> ())
        str.str_items)
    impls;
  (* Ascending SCC id visits callees before callers. *)
  List.stable_sort
    (fun (a, _) (b, _) -> compare (Callgraph.scc_of g a) (Callgraph.scc_of g b))
    (List.rev !acc)

let analyze g impls =
  let n = Callgraph.size g in
  let t =
    {
      t_graph = g;
      t_ret = Array.make n None;
      t_flo = Array.make n false;
      t_bodies = toplevel_bodies g impls;
    }
  in
  (* Group bodies by SCC and run each group to a fixpoint: the domain
     is monotone (None → Some, false → true), so each group needs at
     most |group| + 1 rounds; witnesses are written once on the
     false→true edge and never rewritten, keeping chains stable. *)
  let rec groups l =
    match l with
    | [] -> []
    | (id, _) :: _ ->
        let scc = Callgraph.scc_of g id in
        let same, rest =
          List.partition (fun (i, _) -> Callgraph.scc_of g i = scc) l
        in
        same :: groups rest
  in
  List.iter
    (fun group ->
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun (id, body) ->
            let summary_name =
              (Callgraph.node g id).Callgraph.name
            in
            (if t.t_ret.(id) = None then
               let env = Hashtbl.create 16 in
               match eval t env body with
               | Some why ->
                   t.t_ret.(id) <-
                     Some (Printf.sprintf "%s \xe2\x86\x90 %s" summary_name why);
                   changed := true
               | None -> ());
            if (not t.t_flo.(id)) && local_floats t body then begin
              t.t_flo.(id) <- true;
              changed := true
            end)
          group
      done)
    (groups t.t_bodies);
  t

(* --- serialization-sink scan ------------------------------------------ *)

let scan_calls t ~heads k =
  List.iter
    (fun (node, body) ->
      let env : env = Hashtbl.create 16 in
      let rec scan (e : Typedtree.expression) =
        (match e.exp_desc with
        | Texp_let (_, vbs, _) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                bind_idents env vb.vb_pat (eval t env vb.vb_expr))
              vbs
        | Texp_match (scr, cases, _) ->
            let ts = eval t env scr in
            List.iter
              (fun (c : Typedtree.computation Typedtree.case) ->
                bind_idents env c.c_lhs ts)
              cases
        | Texp_apply (hd, args) -> (
            match head_name hd with
            | Some n when heads n ->
                let arg_taints =
                  List.filter_map
                    (fun ((_, a) : _ * Typedtree.expression option) ->
                      Option.map (eval t env) a)
                    args
                in
                k ~node ~head:n ~loc:e.exp_loc ~args:arg_taints
            | _ -> ())
        | _ -> ());
        let iter =
          {
            Tast_iterator.default_iterator with
            expr = (fun _ ce -> scan ce);
          }
        in
        Tast_iterator.default_iterator.expr iter e
      in
      scan body)
    t.t_bodies
