(* Hard isolation: run a solver thunk in a forked worker process.

   Cooperative budgets only work when the solver ticks; a loop that
   forgets to, a native-stack overflow, or an allocation storm the GC
   cannot satisfy still takes the calling process down. Forking buys a
   hard guarantee: the parent SIGKILLs the worker once the deadline
   plus a grace period passes, and every abnormal exit — signal, OOM
   kill, marshal failure — maps onto a structured {!Guard.failure}.

   Protocol: the worker runs [Guard.run budget f], marshals the whole
   [('a, failure) result] (with [Marshal.Closures], safe because both
   ends are the same process image) onto a pipe, and [_exit]s — never
   [exit], which would run [at_exit] handlers and flush the parent's
   buffered output a second time. The parent drains the pipe (either
   blocking under a [select] deadline, or incrementally through the
   non-blocking {!poll} used by supervisor pools) and decodes.

   Reaping discipline: a worker is [waitpid]ed exactly once, with
   EINTR retried, on *every* path out of {!await}/{!poll} — normal
   completion, kill-by-deadline, undecodable results, and even an
   unexpected exception while draining (the [finalize]/[abandon] pair
   below). Repeated runs therefore cannot accumulate zombies. *)

(* Worker exit codes past the normal protocol. *)
let exit_ok = 0
let exit_report_failed = 2
let exit_oom_reporting = 3

let write_all fd bytes =
  let n = Bytes.length bytes in
  let rec go off =
    if off < n then begin
      let written =
        try Unix.write fd bytes off (n - off)
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (off + written)
    end
  in
  go 0

let rec waitpid_no_eintr pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_no_eintr pid

let child_main ~budget ~fd f =
  let result =
    match Guard.run budget f with
    | r -> r
    | exception e ->
        (* Guard.run propagates unknown exceptions; a worker must not
           die with an unstructured error, so fold them here. *)
        Error
          (Guard.Solver_error ("isolate: worker raised " ^ Printexc.to_string e))
  in
  match Marshal.to_bytes result [ Marshal.Closures ] with
  | bytes -> ( try write_all fd bytes; Unix.close fd; exit_ok with _ -> exit_report_failed)
  | exception Out_of_memory -> exit_oom_reporting
  | exception _ -> exit_report_failed

let default_grace = 1.0

(* Hooks run in the freshly forked child, before the worker computes.
   A daemon registers closing its listening socket here: otherwise a
   worker that outlives a crashed parent keeps the socket open, and
   the restarted daemon's liveness probe concludes a daemon is still
   running. Hook failures are swallowed — they must not turn into
   bogus worker results. *)
let child_hooks : (unit -> unit) list ref = ref []
let at_fork_child f = child_hooks := f :: !child_hooks

let () =
  Runtime_state.register ~name:"isolate.child_hooks" ~kind:`Config (fun () ->
      child_hooks := [])

(* Every fresh worker first drops the caches it inherited from the
   parent image: a chaos-poisoned or merely stale memo table
   (cq_sep.chain_cache, struct_iso.intern, ...) must never leak into a
   shard result. Configuration-kind state (the numeric-tier selector,
   this hook list itself) survives — the child keeps the semantics the
   operator chose. *)
let run_child_hooks () =
  Runtime_state.reset_caches ();
  List.iter (fun f -> try f () with _ -> ()) !child_hooks

type 'a worker = {
  w_pid : int;
  mutable w_fd : Unix.file_descr option;  (* read end; None once closed *)
  w_buf : Buffer.t;
  w_chunk : Bytes.t;
  w_kill_deadline : float option;
  mutable w_killed : bool;
  mutable w_result : ('a, Guard.failure) result option;  (* memoized *)
}

let spawn (type a) ?budget ?timeout ?(grace = default_grace) (f : unit -> a) :
    a worker =
  if grace < 0.0 then invalid_arg "Isolate.spawn: negative grace";
  (match timeout with
  | Some s when s < 0.0 -> invalid_arg "Isolate.spawn: negative timeout"
  | _ -> ());
  let budget = match budget with Some b -> b | None -> Budget.installed () in
  let kill_after =
    match timeout with Some s -> Some s | None -> Budget.remaining_time budget
  in
  let read_fd, write_fd = Unix.pipe () in
  (* Anything sitting in the parent's buffers would be flushed by both
     processes otherwise. *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (* The worker: compute, report, vanish. *)
      run_child_hooks ();
      let code =
        match Unix.close read_fd with
        | () -> child_main ~budget ~fd:write_fd f
        | exception _ -> exit_report_failed
      in
      Unix._exit code
  | pid ->
      Unix.close write_fd;
      {
        w_pid = pid;
        w_fd = Some read_fd;
        w_buf = Buffer.create 4096;
        w_chunk = Bytes.create 65536;
        w_kill_deadline =
          Option.map (fun s -> Budget.Clock.now () +. s +. grace) kill_after;
        w_killed = false;
        w_result = None;
      }

let pid w = w.w_pid
let poll_fd w = w.w_fd
let kill_deadline w = w.w_kill_deadline

let force_kill w =
  if w.w_result = None && not w.w_killed then begin
    (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
    w.w_killed <- true
  end

let close_fd w =
  match w.w_fd with
  | None -> ()
  | Some fd ->
      w.w_fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

(* EOF reached (or the worker abandoned): reap and decode. Reaping
   happens before any decoding, so an undecodable result can never
   leave a zombie behind. *)
let finalize (type a) (w : a worker) : (a, Guard.failure) result =
  close_fd w;
  let status = waitpid_no_eintr w.w_pid in
  let result : (a, Guard.failure) result =
    if w.w_killed then Error Guard.Timeout
    else begin
      match status with
      | Unix.WEXITED code when code = exit_ok -> begin
          match
            (Marshal.from_bytes (Buffer.to_bytes w.w_buf) 0
              : (a, Guard.failure) result)
          with
          | result -> result
          | exception _ ->
              Error (Guard.Solver_error "isolate: undecodable worker result")
        end
      | Unix.WEXITED code when code = exit_oom_reporting ->
          Error (Guard.Limit_exceeded "isolate: worker out of memory")
      | Unix.WEXITED code ->
          Error
            (Guard.Solver_error
               (Printf.sprintf "isolate: worker exited with code %d" code))
      | Unix.WSIGNALED signal when signal = Sys.sigkill ->
          (* Not our kill — most likely the kernel's OOM killer. *)
          Error
            (Guard.Limit_exceeded
               "isolate: worker killed (out of memory, most likely)")
      | Unix.WSIGNALED signal when signal = Sys.sigsegv ->
          Error
            (Guard.Limit_exceeded
               "isolate: worker crashed (native stack exhaustion, most \
                likely)")
      | Unix.WSIGNALED signal ->
          Error
            (Guard.Solver_error
               (Printf.sprintf "isolate: worker killed by signal %d" signal))
      | Unix.WSTOPPED _ ->
          Error (Guard.Solver_error "isolate: worker stopped unexpectedly")
    end
  in
  w.w_result <- Some result;
  result

(* Last-resort cleanup when draining fails with an unexpected
   exception: kill the worker and reap it before re-raising, so no
   path — not even a broken select/read — leaks a zombie. *)
let abandon w =
  force_kill w;
  if w.w_result = None then ignore (finalize w)

let read_step w fd =
  match Unix.read fd w.w_chunk 0 (Bytes.length w.w_chunk) with
  | 0 -> `Eof
  | n ->
      Buffer.add_subbytes w.w_buf w.w_chunk 0 n;
      `More
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> `More

let poll (type a) (w : a worker) : (a, Guard.failure) result option =
  match w.w_result with
  | Some r -> Some r
  | None -> begin
      match w.w_fd with
      | None -> Some (finalize w)
      | Some fd ->
          (match w.w_kill_deadline with
          | Some d when (not w.w_killed) && Budget.Clock.now () >= d ->
              force_kill w
          | _ -> ());
          let rec pump () =
            match Unix.select [ fd ] [] [] 0.0 with
            | [], _, _ -> None
            | _ :: _, _, _ -> begin
                match read_step w fd with
                | `Eof -> Some (finalize w)
                | `More -> pump ()
              end
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump ()
          in
          (match pump () with
          | r -> r
          | exception e -> abandon w; raise e)
    end

let await (type a) (w : a worker) : (a, Guard.failure) result =
  match w.w_result with
  | Some r -> r
  | None -> begin
      match w.w_fd with
      | None -> finalize w
      | Some fd ->
          (* Drain the pipe to EOF. Past the kill deadline, SIGKILL the
             worker and keep draining briefly — death closes the pipe's
             write end, so EOF arrives promptly. *)
          let rec drain () =
            let wait =
              if w.w_killed then 1.0
              else
                match w.w_kill_deadline with
                | None -> -1.0 (* block until the worker reports *)
                | Some d -> Float.max 0.0 (d -. Budget.Clock.now ())
            in
            match Unix.select [ fd ] [] [] wait with
            | [], _, _ -> if not w.w_killed then begin force_kill w; drain () end
            | _ :: _, _, _ -> begin
                match read_step w fd with `Eof -> () | `More -> drain ()
              end
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
          in
          (match drain () with
          | () -> finalize w
          | exception e -> abandon w; raise e)
    end

let run ?budget ?timeout ?grace f = await (spawn ?budget ?timeout ?grace f)

let runner ?grace () =
  { Guard.run = (fun budget f -> run ~budget ?grace f) }
