(* Hard isolation: run a solver thunk in a forked worker process.

   Cooperative budgets only work when the solver ticks; a loop that
   forgets to, a native-stack overflow, or an allocation storm the GC
   cannot satisfy still takes the calling process down. Forking buys a
   hard guarantee: the parent SIGKILLs the worker once the deadline
   plus a grace period passes, and every abnormal exit — signal, OOM
   kill, marshal failure — maps onto a structured {!Guard.failure}.

   Protocol: the worker runs [Guard.run budget f], marshals the whole
   [('a, failure) result] (with [Marshal.Closures], safe because both
   ends are the same process image) onto a pipe, and [_exit]s — never
   [exit], which would run [at_exit] handlers and flush the parent's
   buffered output a second time. The parent drains the pipe under a
   [select] deadline and decodes. *)

(* Worker exit codes past the normal protocol. *)
let exit_ok = 0
let exit_report_failed = 2
let exit_oom_reporting = 3

let write_all fd bytes =
  let n = Bytes.length bytes in
  let rec go off =
    if off < n then begin
      let written =
        try Unix.write fd bytes off (n - off)
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (off + written)
    end
  in
  go 0

let rec waitpid_no_eintr pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_no_eintr pid

let child_main ~budget ~fd f =
  let result =
    match Guard.run budget f with
    | r -> r
    | exception e ->
        (* Guard.run propagates unknown exceptions; a worker must not
           die with an unstructured error, so fold them here. *)
        Error
          (Guard.Solver_error ("isolate: worker raised " ^ Printexc.to_string e))
  in
  match Marshal.to_bytes result [ Marshal.Closures ] with
  | bytes -> ( try write_all fd bytes; Unix.close fd; exit_ok with _ -> exit_report_failed)
  | exception Out_of_memory -> exit_oom_reporting
  | exception _ -> exit_report_failed

let default_grace = 1.0

let run (type a) ?budget ?timeout ?(grace = default_grace) (f : unit -> a) :
    (a, Guard.failure) result =
  if grace < 0.0 then invalid_arg "Isolate.run: negative grace";
  (match timeout with
  | Some s when s < 0.0 -> invalid_arg "Isolate.run: negative timeout"
  | _ -> ());
  let budget = match budget with Some b -> b | None -> Budget.installed () in
  let kill_after =
    match timeout with Some s -> Some s | None -> Budget.remaining_time budget
  in
  let read_fd, write_fd = Unix.pipe () in
  (* Anything sitting in the parent's buffers would be flushed by both
     processes otherwise. *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (* The worker: compute, report, vanish. *)
      let code =
        match Unix.close read_fd with
        | () -> child_main ~budget ~fd:write_fd f
        | exception _ -> exit_report_failed
      in
      Unix._exit code
  | pid ->
      Unix.close write_fd;
      let kill_deadline =
        Option.map (fun s -> Budget.Clock.now () +. s +. grace) kill_after
      in
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 65536 in
      let killed = ref false in
      let kill () =
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        killed := true
      in
      (* Drain the pipe to EOF. Past the kill deadline, SIGKILL the
         worker and keep draining briefly — death closes the pipe's
         write end, so EOF arrives promptly. *)
      let rec drain () =
        let wait =
          if !killed then 1.0
          else
            match kill_deadline with
            | None -> -1.0 (* block until the worker reports *)
            | Some d -> Float.max 0.0 (d -. Budget.Clock.now ())
        in
        match Unix.select [ read_fd ] [] [] wait with
        | [], _, _ -> if not !killed then begin kill (); drain () end
        | _ :: _, _, _ -> begin
            match Unix.read read_fd chunk 0 (Bytes.length chunk) with
            | 0 -> () (* EOF *)
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                drain ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
          end
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      Unix.close read_fd;
      let status = waitpid_no_eintr pid in
      if !killed then Error Guard.Timeout
      else begin
        match status with
        | Unix.WEXITED code when code = exit_ok -> begin
            match
              (Marshal.from_bytes (Buffer.to_bytes buf) 0
                : (a, Guard.failure) result)
            with
            | result -> result
            | exception _ ->
                Error
                  (Guard.Solver_error "isolate: undecodable worker result")
          end
        | Unix.WEXITED code when code = exit_oom_reporting ->
            Error (Guard.Limit_exceeded "isolate: worker out of memory")
        | Unix.WEXITED code ->
            Error
              (Guard.Solver_error
                 (Printf.sprintf "isolate: worker exited with code %d" code))
        | Unix.WSIGNALED signal when signal = Sys.sigkill ->
            (* Not our kill — most likely the kernel's OOM killer. *)
            Error
              (Guard.Limit_exceeded
                 "isolate: worker killed (out of memory, most likely)")
        | Unix.WSIGNALED signal when signal = Sys.sigsegv ->
            Error
              (Guard.Limit_exceeded
                 "isolate: worker crashed (native stack exhaustion, most \
                  likely)")
        | Unix.WSIGNALED signal ->
            Error
              (Guard.Solver_error
                 (Printf.sprintf "isolate: worker killed by signal %d" signal))
        | Unix.WSTOPPED _ ->
            Error (Guard.Solver_error "isolate: worker stopped unexpectedly")
      end

let runner ?grace () =
  { Guard.run = (fun budget f -> run ~budget ?grace f) }
