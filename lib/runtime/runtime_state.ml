(* The abort-safety registry for top-level mutable solver state.

   Budgeted computations can be aborted at any tick (deadline, fuel,
   chaos injection), so a cache or memo table that lives at module top
   level must be resettable and self-checkable from one choke point —
   otherwise a chaos test has no way to prove an abort left it sound.
   cqlint rule R5 rejects top-level mutable state in solver directories
   that never registers here.

   Entries carry a [kind]: [`Cache] for state that is semantically
   transparent (resetting it costs recomputation, never correctness)
   and [`Config] for ambient configuration whose value IS the
   semantics (the numeric-tier selector, registered hook lists).
   {!reset_caches} — the fork-child hygiene hook — resets only the
   former: a freshly forked shard worker must drop inherited memo
   tables but keep the tier the operator selected. *)

type kind = [ `Cache | `Config ]

type entry = {
  name : string;
  kind : kind;
  reset : unit -> unit;
  validate : unit -> bool;
}

let registry : entry list ref = ref []

let register ~name ?(kind = `Cache) ?(validate = fun () -> true) reset =
  if List.exists (fun e -> String.equal e.name name) !registry then
    invalid_arg
      (Printf.sprintf "Runtime_state.register: duplicate name %S" name);
  registry := { name; kind; reset; validate } :: !registry

let names () =
  List.sort String.compare (List.map (fun e -> e.name) !registry)

let registered name = List.exists (fun e -> String.equal e.name name) !registry
let reset_all () = List.iter (fun e -> e.reset ()) !registry

let reset_caches () =
  List.iter (fun e -> if e.kind = `Cache then e.reset ()) !registry

let validate_all () =
  !registry
  |> List.filter_map (fun e -> if e.validate () then None else Some e.name)
  |> List.sort String.compare
