(** Run a solver under a {!Budget}, converting resource exhaustion and
    internal failures into a structured result.

    [Guard.run] is the single choke point that makes the library's
    entry points total: whatever happens inside — the deadline passes,
    the fuel runs out, a limit trips, the solver rejects its input, the
    stack overflows — the caller gets [Error failure] instead of an
    uncaught exception or a hang. *)

(** Equal to {!Budget.failure} (re-exported so callers of budgeted
    entry points never need to open [Budget]). *)
type failure = Budget.failure =
  | Timeout
  | Fuel_exhausted of string
  | Limit_exceeded of string
  | Solver_error of string

val failure_to_string : failure -> string
val pp_failure : Format.formatter -> failure -> unit

val is_resource_failure : failure -> bool
(** [true] for [Timeout]/[Fuel_exhausted]/[Limit_exceeded] — failures a
    bigger budget could fix — and [false] for [Solver_error]. *)

val run : Budget.t -> (unit -> 'a) -> ('a, failure) result
(** [run budget f] installs [budget] as the ambient budget, runs [f],
    and restores the previously installed budget (so guarded runs
    nest). Returns [Error]:
    - with the failure carried by {!Budget.Exhausted} when a
      cooperative {!Budget.tick} aborted the run;
    - [Limit_exceeded "stack overflow"] on [Stack_overflow];
    - [Limit_exceeded "out of memory"] on [Out_of_memory];
    - [Solver_error msg] on
      [Invalid_argument]/[Failure]/[Not_found]/[Division_by_zero].
    Other exceptions propagate unchanged. *)

type runner = { run : 'a. Budget.t -> (unit -> 'a) -> ('a, failure) result }
(** A pluggable execution strategy for budgeted calls. Code that wants
    to offer a choice of {!run}, hard process isolation
    ({!Isolate.runner}) or retries ({!retrying}) takes a [runner]
    instead of calling {!run} directly — the record's polymorphic field
    lets one runner serve calls of every result type. *)

val runner : runner
(** The in-process default: [runner.run] is {!run}. *)

val retrying :
  ?attempts:int -> ?factor:float -> ?extend_deadline:bool ->
  ?backoff:float -> ?jitter_seed:int -> runner -> runner
(** [retrying inner] wraps a runner with a bounded retry policy for
    resource failures: on [Fuel_exhausted]/[Limit_exceeded] (and on
    [Timeout] when [extend_deadline] is set) the call is re-run under
    {!Budget.escalate}[ ~factor ~extend_deadline] of the previous
    budget, up to [attempts] total attempts (default 2; [factor]
    defaults to 4.0). [Solver_error]s are never retried — a rejected
    input does not become valid under a bigger budget.

    [backoff] (default 0: no delay) sleeps before each re-run, doubling
    per attempt: attempt [k+1] waits [backoff * 2^(k-1)] seconds,
    through {!Budget.Clock.sleep} so tests can intercept it. With
    [jitter_seed], each delay is scaled by a deterministic draw from
    [[1/2, 1)] — an xorshift stream derived from the seed alone, the
    same scheme as the budget's chaos injection — so a herd of workers
    seeded differently (say, by job id) cannot retry in lockstep.
    @raise Invalid_argument when [attempts < 1] or [backoff < 0]. *)

val run_result : Budget.t -> (unit -> ('a, failure) result) -> ('a, failure) result
(** [run_result budget f] is {!run} for an [f] that already returns a
    result, flattening the two error layers. *)

val solver_error : ('a, unit, string, 'b) format4 -> 'a
(** [solver_error fmt ...] raises {!Budget.Exhausted} carrying
    [Solver_error msg]: the structured way for library code to reject
    an input or report an internal failure. Under {!run} the caller
    gets [Error (Solver_error msg)]; outside any guarded run the
    exception propagates (and names the failing solver in [msg], which
    should be token-precise: ["Module.fn: what, got what"]). *)
